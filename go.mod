module montsalvat

go 1.22
