package montsalvat

// Benchmarks regenerating the paper's evaluation. One benchmark per
// table/figure (§6) runs the corresponding experiment of internal/bench
// at reduced scale with real busy-wait cost charging, so ns/op reflects
// the simulated platform. The substrate benchmarks below measure the
// primitive costs the figures are built from.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and regenerate the full-scale paper tables with:
//
//	go run ./cmd/montsalvat-bench

import (
	"fmt"
	"testing"

	"montsalvat/internal/bench"
	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/cycles"
	"montsalvat/internal/demo"
	"montsalvat/internal/fabric"
	"montsalvat/internal/heap"
	"montsalvat/internal/mee"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// benchExperiment runs one paper experiment end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Quick: true, Spin: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkFig3ProxyCreation(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4aRMI(b *testing.B)           { benchExperiment(b, "fig4a") }
func BenchmarkFig4bSerialization(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig5aGC(b *testing.B)            { benchExperiment(b, "fig5a") }
func BenchmarkFig5bGCConsistency(b *testing.B) { benchExperiment(b, "fig5b") }
func BenchmarkFig6Synthetic(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7PalDB(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig9GraphChi(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10PalDBvsJVM(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11GraphChivsJVM(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12SPECjvm(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkTable1Ratios(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkAblationSwitchless(b *testing.B) { benchExperiment(b, "ablation-switchless") }
func BenchmarkAblationDispatch(b *testing.B)   { benchExperiment(b, "ablation-dispatch") }
func BenchmarkAblationTCB(b *testing.B)        { benchExperiment(b, "ablation-tcb") }
func BenchmarkAblationTransition(b *testing.B) { benchExperiment(b, "ablation-transition") }

// Substrate benchmarks: the primitive costs underneath the figures.

// BenchmarkMEELine measures one cache-line encrypt+decrypt round trip —
// the unit of all enclave memory traffic.
func BenchmarkMEELine(b *testing.B) {
	eng, err := mee.New()
	if err != nil {
		b.Fatal(err)
	}
	var line [mee.LineBytes]byte
	ct := make([]byte, mee.LineBytes)
	out := make([]byte, mee.LineBytes)
	b.SetBytes(mee.LineBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag, err := eng.EncryptLine(ct, line[:], uint64(i), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.DecryptLine(out, ct, uint64(i), uint64(i), tag); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEcallTransition measures one enclave round trip without
// spinning (pure dispatch) — compare with simcfg.EcallCycles.
func BenchmarkEcallTransition(b *testing.B) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := sgx.Create(simcfg.ForTest(), clk, 4)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.AddPages([]byte("bench image")); err != nil {
		b.Fatal(err)
	}
	signer, err := sgx.NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	ss, err := signer.Sign(e.Measurement())
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Init(ss); err != nil {
		b.Fatal(err)
	}
	noop := func() error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Ecall(1, noop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeapAllocPlain and BenchmarkHeapAllocEPC compare allocation on
// the untrusted and enclave heaps.
func BenchmarkHeapAllocPlain(b *testing.B) {
	h, err := heap.NewPlain(heap.Config{InitialSemi: 64 << 20, MaxSemi: 512 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Alloc(1, 1, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapAllocEPC(b *testing.B) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := sgx.Create(simcfg.ForTest(), clk, 4)
	if err != nil {
		b.Fatal(err)
	}
	h, err := heap.New(heap.Config{InitialSemi: 64 << 20, MaxSemi: 512 << 20}, func(size int) (heap.Backend, error) {
		return e.NewMemory(size)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Alloc(1, 1, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGCPlain and BenchmarkGCEPC measure one stop-and-copy cycle
// over 10k live objects, outside and inside the enclave (Fig. 5a's
// primitive).
func benchmarkGC(b *testing.B, inEnclave bool) {
	b.Helper()
	var (
		h   *heap.Heap
		err error
	)
	cfg := heap.Config{InitialSemi: 16 << 20, MaxSemi: 64 << 20}
	if inEnclave {
		clk := cycles.New(simcfg.CPUHz, false)
		e, cerr := sgx.Create(simcfg.ForTest(), clk, 4)
		if cerr != nil {
			b.Fatal(cerr)
		}
		h, err = heap.New(cfg, func(size int) (heap.Backend, error) {
			return e.NewMemory(size)
		})
	} else {
		h, err = heap.NewPlain(cfg)
	}
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		addr, err := h.Alloc(1, 0, 40)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.NewHandle(addr); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGCPlain(b *testing.B) { benchmarkGC(b, false) }
func BenchmarkGCEPC(b *testing.B)   { benchmarkGC(b, true) }

// BenchmarkWireRoundTrip measures serialization of a typical relay
// argument vector.
func BenchmarkWireRoundTrip(b *testing.B) {
	args := []wire.Value{
		wire.Int(42),
		wire.Str("a sixteen-byte s"),
		wire.List(wire.Int(1), wire.Str("two"), wire.Ref("Account", 7)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := wire.MarshalList(args)
		if _, err := wire.UnmarshalList(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBankEndToEnd runs the complete Listing 1 application —
// pipeline, enclave creation, execution — per iteration.
func BenchmarkBankEndToEnd(b *testing.B) {
	prog := demo.MustBankProgram()
	signer, err := sgx.NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := world.DefaultOptions()
		opts.Signer = signer
		w, _, err := core.NewPartitionedWorld(prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.RunMain(); err != nil {
			b.Fatal(err)
		}
		w.Close()
	}
}

// runKVCycles runs the secure KV demo to completion under the given
// telemetry layer and platform config and returns the charged
// simulated-cycle total.
func runKVCycles(tb testing.TB, tel *telemetry.Telemetry, cfg simcfg.Config) int64 {
	tb.Helper()
	opts := world.DefaultOptions()
	opts.Cfg = cfg
	opts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), opts)
	if err != nil {
		tb.Fatal(err)
	}
	defer w.Close()
	if _, err := w.RunMain(); err != nil {
		tb.Fatal(err)
	}
	return w.Clock().Total()
}

// runFabricCycles boots a small fabric under the given fleet, drives a
// fixed sequential write/read load through the router, and returns the
// summed charged cycles of the primaries. The load is single-client and
// the shipping path synchronous, so the total is deterministic.
func runFabricCycles(tb testing.TB, fleet *telemetry.Fleet) int64 {
	tb.Helper()
	f, err := fabric.New(fabric.Options{Shards: 2, Replicas: 1, Fleet: fleet})
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	client := f.Client(fabric.RouterConfig{})
	defer client.Close()
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("neutral:%04d", i)
		if err := client.Put(k, "v"); err != nil {
			tb.Fatal(err)
		}
		if _, _, err := client.Get(k); err != nil {
			tb.Fatal(err)
		}
	}
	var total int64
	for _, c := range f.ShardBusyCycles() {
		total += c
	}
	return total
}

// TestTelemetryCycleNeutral is the deterministic half of the telemetry
// overhead guard: instrumentation observes the simulated platform but
// never charges it, so the cycle ledger of a fully instrumented run
// must equal the uninstrumented run exactly — on the frame RMI path,
// on the zero-copy ring path, and across the sharded fabric (sessions,
// shipping, the event journal). Wall-clock overhead (the
// <2%-when-disabled budget) is measured with the benchmarks below, not
// asserted in CI where machine noise would dominate.
func TestTelemetryCycleNeutral(t *testing.T) {
	fullTel := func() *telemetry.Telemetry {
		return telemetry.New(telemetry.Options{TraceSampleRate: 1, TraceBuffer: 1024, EventBuffer: 1024})
	}

	off := runKVCycles(t, nil, simcfg.ForTest())
	on := runKVCycles(t, fullTel(), simcfg.ForTest())
	if off != on {
		t.Fatalf("telemetry changed the simulated-cycle ledger: off=%d on=%d", off, on)
	}
	if off == 0 {
		t.Fatal("KV demo charged no cycles")
	}

	ringCfg := simcfg.ForTest()
	ringCfg.Rings = true
	ringOff := runKVCycles(t, nil, ringCfg)
	ringOn := runKVCycles(t, fullTel(), ringCfg)
	if ringOff != ringOn {
		t.Fatalf("telemetry changed the ring-path cycle ledger: off=%d on=%d", ringOff, ringOn)
	}
	if ringOff == 0 {
		t.Fatal("ring-path KV demo charged no cycles")
	}

	fabOff := runFabricCycles(t, nil)
	fabOn := runFabricCycles(t, telemetry.NewFleet(telemetry.Options{TraceSampleRate: 1, TraceBuffer: 4096, EventBuffer: 4096}))
	if fabOff != fabOn {
		t.Fatalf("fleet observability changed the fabric cycle ledger: off=%d on=%d", fabOff, fabOn)
	}
	if fabOff == 0 {
		t.Fatal("fabric load charged no cycles")
	}
}

// BenchmarkRMITelemetryOff / On / RateZero compare the proxy-call hot
// path without telemetry, with full-rate tracing, and with metrics but
// no tracing. Compare Off vs RateZero for the disabled-overhead budget.
func benchmarkRMITelemetry(b *testing.B, tel *telemetry.Telemetry) {
	b.Helper()
	opts := world.DefaultOptions()
	opts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	err = w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("bench"), wire.Int(0))
		if err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.Call(acct, "updateBalance", wire.Int(1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRMITelemetryOff(b *testing.B) { benchmarkRMITelemetry(b, nil) }
func BenchmarkRMITelemetryOn(b *testing.B) {
	benchmarkRMITelemetry(b, telemetry.New(telemetry.Options{TraceSampleRate: 1, TraceBuffer: 1024}))
}
func BenchmarkRMITelemetryRateZero(b *testing.B) {
	benchmarkRMITelemetry(b, telemetry.New(telemetry.Options{TraceSampleRate: 0}))
}

// BenchmarkRMIRoundTrip measures one proxy method invocation crossing
// into the enclave and back.
func BenchmarkRMIRoundTrip(b *testing.B) {
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	err = w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("bench"), wire.Int(0))
		if err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.Call(acct, "updateBalance", wire.Int(1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
