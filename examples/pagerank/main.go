// PageRank: the paper's GraphChi macro-benchmark (§6.5) as a runnable
// example.
//
// The GraphChi workflow (Fig. 8) is partitioned along its two phases:
// FastSharder (@Untrusted) splits an R-MAT graph into shards on the host
// filesystem at native speed, and GraphChiEngine (@Trusted) computes
// PageRank inside the enclave, streaming shards in through the shim. The
// same computation is then run unpartitioned inside the enclave to show
// the speedup partitioning buys.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"montsalvat"
	"montsalvat/internal/graphchi"
	"montsalvat/internal/rmat"
)

const (
	numVertices = 10000
	numEdges    = 50000
	numShards   = 4
	iterations  = 4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pagerank:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("GraphChi PageRank on an R-MAT graph (%d vertices, %d edges, %d shards)\n\n",
		numVertices, numEdges, numShards)
	graph, err := rmat.Generate(numVertices, numEdges, 7)
	if err != nil {
		return err
	}

	type phase struct{ shard, engine time.Duration }
	var ranks []float64

	runWorld := func(partitioned bool, inEnclave bool) (phase, error) {
		var ph phase
		prog, st, err := graphProgram(partitioned)
		if err != nil {
			return ph, err
		}
		st.graph = graph

		var w *montsalvat.World
		if partitioned {
			w, _, err = montsalvat.NewPartitionedWorld(prog, montsalvat.BenchOptions())
		} else {
			w, _, err = montsalvat.NewUnpartitionedWorld(prog, montsalvat.BenchOptions(), inEnclave)
		}
		if err != nil {
			return ph, err
		}
		defer w.Close()

		if _, err := w.RunMain(); err != nil {
			return ph, err
		}
		ph.shard = st.shardTime
		ph.engine = st.engineTime
		ranks = st.ranks
		return ph, nil
	}

	part, err := runWorld(true, false)
	if err != nil {
		return err
	}
	fmt.Printf("partitioned      sharding (untrusted) %8v   engine (enclave) %8v\n", part.shard.Round(time.Microsecond), part.engine.Round(time.Microsecond))

	noPart, err := runWorld(false, true)
	if err != nil {
		return err
	}
	fmt.Printf("unpartitioned    sharding (enclave)   %8v   engine (enclave) %8v\n", noPart.shard.Round(time.Microsecond), noPart.engine.Round(time.Microsecond))

	native, err := runWorld(false, false)
	if err != nil {
		return err
	}
	fmt.Printf("no SGX           sharding (native)    %8v   engine (native)  %8v\n\n", native.shard.Round(time.Microsecond), native.engine.Round(time.Microsecond))

	// Report the top-ranked vertices.
	type vr struct {
		v int
		r float64
	}
	top := make([]vr, 0, len(ranks))
	for v, r := range ranks {
		top = append(top, vr{v: v, r: r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top PageRank vertices:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  vertex %5d  rank %.6f\n", top[i].v, top[i].r)
	}
	return nil
}

// graphState is shared between the wrapper class bodies of one world.
type graphState struct {
	graph      rmat.Graph
	set        graphchi.ShardSet
	shardTime  time.Duration
	engineTime time.Duration
	ranks      []float64
}

// graphProgram wraps the GraphChi library in FastSharder/GraphChiEngine
// classes, annotated per the paper's scheme when partitioned.
func graphProgram(partitioned bool) (*montsalvat.Program, *graphState, error) {
	st := &graphState{}
	sharderAnn := montsalvat.Neutral
	engineAnn := montsalvat.Neutral
	if partitioned {
		sharderAnn = montsalvat.Untrusted
		engineAnn = montsalvat.Trusted
	}

	p := montsalvat.NewProgram()
	sharder := montsalvat.NewClass("FastSharder", sharderAnn)
	if err := sharder.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			return montsalvat.Null(), nil
		},
	}); err != nil {
		return nil, nil, err
	}
	if err := sharder.AddMethod(&montsalvat.Method{
		Name: "shard", Public: true, Returns: montsalvat.KindInt,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			start := time.Now()
			set, stats, err := graphchi.Shard(env.FS(), st.graph, numShards, "pagerank")
			if err != nil {
				return montsalvat.Null(), err
			}
			st.set = set
			st.shardTime = time.Since(start)
			return montsalvat.Int(int64(stats.EdgesSharded)), nil
		},
	}); err != nil {
		return nil, nil, err
	}
	if err := p.AddClass(sharder); err != nil {
		return nil, nil, err
	}

	engine := montsalvat.NewClass("GraphChiEngine", engineAnn)
	if err := engine.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			return montsalvat.Null(), nil
		},
	}); err != nil {
		return nil, nil, err
	}
	if err := engine.AddMethod(&montsalvat.Method{
		Name: "pagerank", Public: true, Returns: montsalvat.KindFloat,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			start := time.Now()
			ranks, _, err := graphchi.RunPageRank(env.FS(), st.set, graphchi.PageRankConfig{Iterations: iterations}, env.MemTouch)
			if err != nil {
				return montsalvat.Null(), err
			}
			st.ranks = ranks
			st.engineTime = time.Since(start)
			var sum float64
			for _, r := range ranks {
				sum += r
			}
			return montsalvat.Float(sum), nil
		},
	}); err != nil {
		return nil, nil, err
	}
	if err := p.AddClass(engine); err != nil {
		return nil, nil, err
	}

	mainC := montsalvat.NewClass("Main", montsalvat.Untrusted)
	if err := mainC.AddMethod(&montsalvat.Method{
		Name: montsalvat.MainMethodName, Static: true, Public: true,
		Allocates: []string{"FastSharder", "GraphChiEngine"},
		Calls: []montsalvat.MethodRef{
			{Class: "FastSharder", Method: "shard"},
			{Class: "GraphChiEngine", Method: "pagerank"},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			sh, err := env.New("FastSharder")
			if err != nil {
				return montsalvat.Null(), err
			}
			if _, err := env.Call(sh, "shard"); err != nil {
				return montsalvat.Null(), err
			}
			eng, err := env.New("GraphChiEngine")
			if err != nil {
				return montsalvat.Null(), err
			}
			return env.Call(eng, "pagerank")
		},
	}); err != nil {
		return nil, nil, err
	}
	if err := p.AddClass(mainC); err != nil {
		return nil, nil, err
	}
	p.MainClass = "Main"
	return p, st, nil
}
