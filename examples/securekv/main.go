// Secure key-value store: the paper's §6.7 use case, built with the
// public montsalvat API.
//
// "The classes/business logic for storing and retrieving key/value pairs
// ... can be secured in the enclave, while classes for network-related
// functionality are kept out of the enclave."
//
// KVStore is @Trusted: the table and its entries live on the enclave
// heap, encrypted by the MEE; every key and value crosses the boundary
// through the generated relay methods. FrontEnd is @Untrusted: it parses
// "requests" and forwards operations through the KVStore proxy. The
// workload is reproduced under the RTWU-style partitioning and then
// unpartitioned for comparison.
//
//	go run ./examples/securekv
package main

import (
	"fmt"
	"os"

	"montsalvat"
)

const requests = 300

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "securekv:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Secure KV store (paper §6.7): storage logic in the enclave, front end outside")

	prog, err := kvProgram()
	if err != nil {
		return err
	}
	w, _, err := montsalvat.NewPartitionedWorld(prog, montsalvat.DefaultOptions())
	if err != nil {
		return err
	}
	defer w.Close()
	w.StartGCHelpers()

	result, err := w.RunMain()
	if err != nil {
		return err
	}
	vals, _ := result.AsList()
	hits, _ := vals[0].AsInt()
	misses, _ := vals[1].AsInt()
	stored, _ := vals[2].AsInt()
	fmt.Printf("served %d requests: %d hits, %d misses, %d entries resident in the enclave\n",
		requests, hits, misses, stored)

	s := w.Stats()
	fmt.Printf("boundary crossings: %d ecalls (every put/get is a relay into the enclave)\n", s.Enclave.Ecalls)
	fmt.Printf("enclave heap: %d B live, %d GC cycles, %d MEE lines encrypted\n",
		s.TrustedHeap.LiveBytes, s.TrustedHeap.Collections, s.Enclave.MEE.LinesEncrypted)

	// Persist the store's master secret sealed to this enclave image:
	// only the identical enclave on this machine can recover it after a
	// restart.
	secret, err := montsalvat.NewPlatformSecret()
	if err != nil {
		return err
	}
	blob, err := w.Enclave().Seal(secret, montsalvat.SealToMRENCLAVE, []byte("kv-master-key-0xC0FFEE"), []byte("securekv/v1"))
	if err != nil {
		return err
	}
	if err := w.HostFS().WriteAt("kv.sealed", 0, blob); err != nil {
		return err
	}
	recovered, err := w.Enclave().Unseal(secret, montsalvat.SealToMRENCLAVE, blob, []byte("securekv/v1"))
	if err != nil {
		return err
	}
	fmt.Printf("master key sealed to enclave identity (%d-byte blob on untrusted disk), recovered %d bytes after unseal\n",
		len(blob), len(recovered))
	return nil
}

func kvProgram() (*montsalvat.Program, error) {
	p := montsalvat.NewProgram()

	// Entry is a trusted key/value cell.
	entry := montsalvat.NewClass("Entry", montsalvat.Trusted)
	for _, f := range []montsalvat.Field{
		{Name: "key", Kind: montsalvat.FieldString},
		{Name: "value", Kind: montsalvat.FieldString},
	} {
		if err := entry.AddField(f); err != nil {
			return nil, err
		}
	}
	if err := entry.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Params: []montsalvat.Param{
			{Name: "k", Kind: montsalvat.KindString},
			{Name: "v", Kind: montsalvat.KindString},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			if err := env.SetField(self, "key", args[0]); err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.Null(), env.SetField(self, "value", args[1])
		},
	}); err != nil {
		return nil, err
	}
	for _, m := range []string{"key", "value"} {
		field := m
		if err := entry.AddMethod(&montsalvat.Method{
			Name: "get" + field, Public: true, Returns: montsalvat.KindString,
			Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
				return env.GetField(self, field)
			},
		}); err != nil {
			return nil, err
		}
	}
	if err := p.AddClass(entry); err != nil {
		return nil, err
	}

	// KVStore holds Entry objects in an enclave-resident list.
	store := montsalvat.NewClass("KVStore", montsalvat.Trusted)
	if err := store.AddField(montsalvat.Field{Name: "entries", Kind: montsalvat.FieldRef, ClassName: "List"}); err != nil {
		return nil, err
	}
	if err := store.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Allocates: []string{"List"},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			list, err := env.New("List")
			if err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.Null(), env.SetField(self, "entries", list)
		},
	}); err != nil {
		return nil, err
	}
	if err := store.AddMethod(&montsalvat.Method{
		Name: "put", Public: true,
		Params: []montsalvat.Param{
			{Name: "k", Kind: montsalvat.KindString},
			{Name: "v", Kind: montsalvat.KindString},
		},
		Allocates: []string{"Entry"},
		Calls: []montsalvat.MethodRef{
			{Class: "List", Method: "add"},
			{Class: "List", Method: "size"},
			{Class: "List", Method: "get"},
			{Class: "List", Method: "set"},
			{Class: "Entry", Method: "getkey"},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			list, err := env.GetField(self, "entries")
			if err != nil {
				return montsalvat.Null(), err
			}
			// Overwrite existing key if present.
			idx, err := kvFind(env, list, args[0])
			if err != nil {
				return montsalvat.Null(), err
			}
			e, err := env.New("Entry", args[0], args[1])
			if err != nil {
				return montsalvat.Null(), err
			}
			if idx >= 0 {
				return env.Call(list, "set", montsalvat.Int(idx), e)
			}
			return env.Call(list, "add", e)
		},
	}); err != nil {
		return nil, err
	}
	if err := store.AddMethod(&montsalvat.Method{
		Name: "get", Public: true,
		Params:  []montsalvat.Param{{Name: "k", Kind: montsalvat.KindString}},
		Returns: montsalvat.KindString,
		Calls: []montsalvat.MethodRef{
			{Class: "List", Method: "size"},
			{Class: "List", Method: "get"},
			{Class: "Entry", Method: "getkey"},
			{Class: "Entry", Method: "getvalue"},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			list, err := env.GetField(self, "entries")
			if err != nil {
				return montsalvat.Null(), err
			}
			idx, err := kvFind(env, list, args[0])
			if err != nil {
				return montsalvat.Null(), err
			}
			if idx < 0 {
				return montsalvat.Null(), nil
			}
			e, err := env.Call(list, "get", montsalvat.Int(idx))
			if err != nil {
				return montsalvat.Null(), err
			}
			return env.Call(e, "getvalue")
		},
	}); err != nil {
		return nil, err
	}
	if err := store.AddMethod(&montsalvat.Method{
		Name: "size", Public: true, Returns: montsalvat.KindInt,
		Calls: []montsalvat.MethodRef{{Class: "List", Method: "size"}},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			list, err := env.GetField(self, "entries")
			if err != nil {
				return montsalvat.Null(), err
			}
			return env.Call(list, "size")
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(store); err != nil {
		return nil, err
	}

	// FrontEnd (untrusted) drives the workload: a mix of puts and gets
	// with some misses.
	front := montsalvat.NewClass("FrontEnd", montsalvat.Untrusted)
	if err := front.AddMethod(&montsalvat.Method{
		Name: montsalvat.MainMethodName, Static: true, Public: true,
		Returns:   montsalvat.KindList,
		Allocates: []string{"KVStore"},
		Calls: []montsalvat.MethodRef{
			{Class: "KVStore", Method: "put"},
			{Class: "KVStore", Method: "get"},
			{Class: "KVStore", Method: "size"},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			store, err := env.New("KVStore")
			if err != nil {
				return montsalvat.Null(), err
			}
			var hits, misses int64
			for i := 0; i < requests; i++ {
				key := montsalvat.Str(fmt.Sprintf("user:%04d", i%64))
				switch {
				case i%3 == 0:
					val := montsalvat.Str(fmt.Sprintf("session-token-%08x", i*2654435761))
					if _, err := env.Call(store, "put", key, val); err != nil {
						return montsalvat.Null(), err
					}
				default:
					got, err := env.Call(store, "get", key)
					if err != nil {
						return montsalvat.Null(), err
					}
					if got.IsNull() {
						misses++
					} else {
						hits++
					}
				}
			}
			size, err := env.Call(store, "size")
			if err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.List(montsalvat.Int(hits), montsalvat.Int(misses), size), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(front); err != nil {
		return nil, err
	}
	p.MainClass = "FrontEnd"
	return p, nil
}

// kvFind scans the entry list for a key (runs inside the enclave as part
// of KVStore's methods) and returns its index or -1.
func kvFind(env montsalvat.Env, list, key montsalvat.Value) (int64, error) {
	sz, err := env.Call(list, "size")
	if err != nil {
		return 0, err
	}
	n, _ := sz.AsInt()
	want, _ := key.AsStr()
	for i := int64(0); i < n; i++ {
		e, err := env.Call(list, "get", montsalvat.Int(i))
		if err != nil {
			return 0, err
		}
		k, err := env.Call(e, "getkey")
		if err != nil {
			return 0, err
		}
		got, _ := k.AsStr()
		if got == want {
			return i, nil
		}
	}
	return -1, nil
}
