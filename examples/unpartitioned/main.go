// Unpartitioned deployment (paper §5.6): sometimes it is easier to run
// the whole application as one native image inside the enclave — no
// annotations, no bytecode transformation, a single image linked entirely
// into the enclave object.
//
// This example builds a small log-processing application (every class
// handles sensitive data, so none qualifies as untrusted), runs it whole
// inside the enclave, and contrasts the costs with the NoSGX baseline:
// identical results, but the enclave run pays an ecall for main, shim
// ocalls for every file operation, and MEE encryption for all heap
// traffic.
//
//	go run ./examples/unpartitioned
package main

import (
	"fmt"
	"os"
	"strings"

	"montsalvat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "unpartitioned:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Unpartitioned native image (paper §5.6): whole application in the enclave")

	for _, inEnclave := range []bool{true, false} {
		prog, err := logProgram()
		if err != nil {
			return err
		}
		w, img, err := montsalvat.NewUnpartitionedWorld(prog, montsalvat.DefaultOptions(), inEnclave)
		if err != nil {
			return err
		}
		result, err := w.RunMain()
		if err != nil {
			w.Close()
			return err
		}
		vals, _ := result.AsList()
		lines, _ := vals[0].AsInt()
		alerts, _ := vals[1].AsInt()
		s := w.Stats()

		label := "NoSGX    "
		detail := "no enclave"
		if inEnclave {
			meas := img.Measurement()
			label = "SGX      "
			detail = fmt.Sprintf("measurement %x..., %d ecall, %d shim ocalls, %d MEE lines",
				meas[:6], s.Enclave.Ecalls, s.Enclave.Ocalls, s.Enclave.MEE.LinesEncrypted)
		}
		fmt.Printf("%s processed %d lines, flagged %d alerts  (%s)\n", label, lines, alerts, detail)
		w.Close()
	}
	return nil
}

// logProgram builds an application whose single LogAnalyzer class ingests
// a log file and counts alert lines. Nothing is annotated: the whole
// image is the TCB.
func logProgram() (*montsalvat.Program, error) {
	p := montsalvat.NewProgram()
	analyzer := montsalvat.NewClass("LogAnalyzer", montsalvat.Neutral)
	if err := analyzer.AddField(montsalvat.Field{Name: "alerts", Kind: montsalvat.FieldInt}); err != nil {
		return nil, err
	}
	if err := analyzer.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			return montsalvat.Null(), env.SetField(self, "alerts", montsalvat.Int(0))
		},
	}); err != nil {
		return nil, err
	}
	if err := analyzer.AddMethod(&montsalvat.Method{
		Name: "ingest", Public: true,
		Params:  []montsalvat.Param{{Name: "file", Kind: montsalvat.KindString}},
		Returns: montsalvat.KindInt,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			name, _ := args[0].AsStr()
			size, err := env.FS().Size(name)
			if err != nil {
				return montsalvat.Null(), err
			}
			data, err := env.FS().ReadAt(name, 0, int(size))
			if err != nil {
				return montsalvat.Null(), err
			}
			env.MemTouch(len(data))
			lines := strings.Split(string(data), "\n")
			var alerts int64
			var count int64
			for _, line := range lines {
				if line == "" {
					continue
				}
				count++
				if strings.Contains(line, "FAILED LOGIN") {
					alerts++
				}
			}
			cur, err := env.GetField(self, "alerts")
			if err != nil {
				return montsalvat.Null(), err
			}
			prev, _ := cur.AsInt()
			if err := env.SetField(self, "alerts", montsalvat.Int(prev+alerts)); err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.Int(count), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := analyzer.AddMethod(&montsalvat.Method{
		Name: "alerts", Public: true, Returns: montsalvat.KindInt,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			return env.GetField(self, "alerts")
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(analyzer); err != nil {
		return nil, err
	}

	mainC := montsalvat.NewClass("Main", montsalvat.Neutral)
	if err := mainC.AddMethod(&montsalvat.Method{
		Name: montsalvat.MainMethodName, Static: true, Public: true,
		Returns:   montsalvat.KindList,
		Allocates: []string{"LogAnalyzer"},
		Calls: []montsalvat.MethodRef{
			{Class: "LogAnalyzer", Method: "ingest"},
			{Class: "LogAnalyzer", Method: "alerts"},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			// Produce the input log, then analyse it.
			var sb strings.Builder
			for i := 0; i < 500; i++ {
				if i%17 == 0 {
					fmt.Fprintf(&sb, "2026-07-04T10:%02d:00 FAILED LOGIN user=%d\n", i%60, i)
				} else {
					fmt.Fprintf(&sb, "2026-07-04T10:%02d:00 ok user=%d\n", i%60, i)
				}
			}
			if err := env.FS().WriteAt("auth.log", 0, []byte(sb.String())); err != nil {
				return montsalvat.Null(), err
			}

			an, err := env.New("LogAnalyzer")
			if err != nil {
				return montsalvat.Null(), err
			}
			lines, err := env.Call(an, "ingest", montsalvat.Str("auth.log"))
			if err != nil {
				return montsalvat.Null(), err
			}
			alerts, err := env.Call(an, "alerts")
			if err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.List(lines, alerts), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainC); err != nil {
		return nil, err
	}
	p.MainClass = "Main"
	return p, nil
}
