// Quickstart: the paper's Listing 1 bank application, written against the
// public montsalvat API.
//
// Two classes are annotated @Trusted (Account, AccountRegistry) and run
// inside the simulated SGX enclave; Person and Main are @Untrusted and
// run outside. Montsalvat partitions the program, generates proxies and
// relay methods, builds the two native images, creates and attests the
// enclave, and runs main — transfers cross the enclave boundary as
// remote method invocations on proxy objects.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"montsalvat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := bankProgram()
	if err != nil {
		return err
	}

	w, build, err := montsalvat.NewPartitionedWorld(prog, montsalvat.DefaultOptions())
	if err != nil {
		return err
	}
	defer w.Close()
	w.StartGCHelpers()

	fmt.Println("Montsalvat quickstart: the Listing 1 bank application")
	rep := build.Transform.Report
	fmt.Printf("build: %d trusted / %d untrusted classes, %d relays, %d methods stripped\n",
		rep.TrustedClasses, rep.UntrustedClasses, rep.RelaysAdded, rep.MethodsStripped)
	meas := build.TrustedImage.Measurement()
	fmt.Printf("enclave measurement: %x...\n\n", meas[:8])

	result, err := w.RunMain()
	if err != nil {
		return err
	}
	vals, _ := result.AsList()
	alice, _ := vals[0].AsInt()
	bob, _ := vals[1].AsInt()
	size, _ := vals[2].AsInt()
	fmt.Printf("after transfer: Alice=%d, Bob=%d, accounts registered=%d\n", alice, bob, size)

	s := w.Stats()
	fmt.Printf("\nenclave transitions: %d ecalls, %d ocalls\n", s.Enclave.Ecalls, s.Enclave.Ocalls)
	fmt.Printf("mirror-proxy registry: %d mirrors in enclave, %d proxies outside\n",
		s.Trusted.RegistrySize, s.Untrusted.WeakListLen)
	fmt.Printf("MEE traffic: %d cache lines encrypted\n", s.Enclave.MEE.LinesEncrypted)
	return nil
}

// bankProgram declares Listing 1 with the public API.
func bankProgram() (*montsalvat.Program, error) {
	p := montsalvat.NewProgram()

	account := montsalvat.NewClass("Account", montsalvat.Trusted)
	if err := account.AddField(montsalvat.Field{Name: "owner", Kind: montsalvat.FieldString}); err != nil {
		return nil, err
	}
	if err := account.AddField(montsalvat.Field{Name: "balance", Kind: montsalvat.FieldInt}); err != nil {
		return nil, err
	}
	if err := account.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Params: []montsalvat.Param{{Name: "s", Kind: montsalvat.KindString}, {Name: "b", Kind: montsalvat.KindInt}},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			if err := env.SetField(self, "owner", args[0]); err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.Null(), env.SetField(self, "balance", args[1])
		},
	}); err != nil {
		return nil, err
	}
	if err := account.AddMethod(&montsalvat.Method{
		Name: "updateBalance", Public: true,
		Params: []montsalvat.Param{{Name: "v", Kind: montsalvat.KindInt}},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			cur, err := env.GetField(self, "balance")
			if err != nil {
				return montsalvat.Null(), err
			}
			b, _ := cur.AsInt()
			v, _ := args[0].AsInt()
			return montsalvat.Null(), env.SetField(self, "balance", montsalvat.Int(b+v))
		},
	}); err != nil {
		return nil, err
	}
	if err := account.AddMethod(&montsalvat.Method{
		Name: "getBalance", Public: true, Returns: montsalvat.KindInt,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			return env.GetField(self, "balance")
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(account); err != nil {
		return nil, err
	}

	person := montsalvat.NewClass("Person", montsalvat.Untrusted)
	if err := person.AddField(montsalvat.Field{Name: "name", Kind: montsalvat.FieldString}); err != nil {
		return nil, err
	}
	if err := person.AddField(montsalvat.Field{Name: "account", Kind: montsalvat.FieldRef, ClassName: "Account"}); err != nil {
		return nil, err
	}
	if err := person.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Params:    []montsalvat.Param{{Name: "s", Kind: montsalvat.KindString}, {Name: "v", Kind: montsalvat.KindInt}},
		Allocates: []string{"Account"},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			if err := env.SetField(self, "name", args[0]); err != nil {
				return montsalvat.Null(), err
			}
			// Trusted object inside an untrusted one: this creates a
			// proxy here and the mirror inside the enclave.
			acct, err := env.New("Account", args[0], args[1])
			if err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.Null(), env.SetField(self, "account", acct)
		},
	}); err != nil {
		return nil, err
	}
	if err := person.AddMethod(&montsalvat.Method{
		Name: "getAccount", Public: true, Returns: montsalvat.KindRef,
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			return env.GetField(self, "account")
		},
	}); err != nil {
		return nil, err
	}
	if err := person.AddMethod(&montsalvat.Method{
		Name: "transfer", Public: true,
		Params: []montsalvat.Param{
			{Name: "p", Kind: montsalvat.KindRef, ClassName: "Person"},
			{Name: "v", Kind: montsalvat.KindInt},
		},
		Calls: []montsalvat.MethodRef{
			{Class: "Person", Method: "getAccount"},
			{Class: "Account", Method: "updateBalance"},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			v, _ := args[1].AsInt()
			theirs, err := env.Call(args[0], "getAccount")
			if err != nil {
				return montsalvat.Null(), err
			}
			if _, err := env.Call(theirs, "updateBalance", montsalvat.Int(v)); err != nil {
				return montsalvat.Null(), err
			}
			mine, err := env.GetField(self, "account")
			if err != nil {
				return montsalvat.Null(), err
			}
			_, err = env.Call(mine, "updateBalance", montsalvat.Int(-v))
			return montsalvat.Null(), err
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(person); err != nil {
		return nil, err
	}

	registry := montsalvat.NewClass("AccountRegistry", montsalvat.Trusted)
	if err := registry.AddField(montsalvat.Field{Name: "reg", Kind: montsalvat.FieldRef, ClassName: "List"}); err != nil {
		return nil, err
	}
	if err := registry.AddMethod(&montsalvat.Method{
		Name: montsalvat.CtorName, Public: true,
		Allocates: []string{"List"},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			list, err := env.New("List")
			if err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.Null(), env.SetField(self, "reg", list)
		},
	}); err != nil {
		return nil, err
	}
	if err := registry.AddMethod(&montsalvat.Method{
		Name: "addAccount", Public: true,
		Params: []montsalvat.Param{{Name: "a", Kind: montsalvat.KindRef, ClassName: "Account"}},
		Calls:  []montsalvat.MethodRef{{Class: "List", Method: "add"}},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			list, err := env.GetField(self, "reg")
			if err != nil {
				return montsalvat.Null(), err
			}
			return env.Call(list, "add", args[0])
		},
	}); err != nil {
		return nil, err
	}
	if err := registry.AddMethod(&montsalvat.Method{
		Name: "size", Public: true, Returns: montsalvat.KindInt,
		Calls: []montsalvat.MethodRef{{Class: "List", Method: "size"}},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			list, err := env.GetField(self, "reg")
			if err != nil {
				return montsalvat.Null(), err
			}
			return env.Call(list, "size")
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(registry); err != nil {
		return nil, err
	}

	mainClass := montsalvat.NewClass("Main", montsalvat.Untrusted)
	if err := mainClass.AddMethod(&montsalvat.Method{
		Name: montsalvat.MainMethodName, Static: true, Public: true,
		Returns:   montsalvat.KindList,
		Allocates: []string{"Person", "AccountRegistry"},
		Calls: []montsalvat.MethodRef{
			{Class: "Person", Method: "transfer"},
			{Class: "Person", Method: "getAccount"},
			{Class: "AccountRegistry", Method: "addAccount"},
			{Class: "AccountRegistry", Method: "size"},
			{Class: "Account", Method: "getBalance"},
		},
		Body: func(env montsalvat.Env, self montsalvat.Value, args []montsalvat.Value) (montsalvat.Value, error) {
			p1, err := env.New("Person", montsalvat.Str("Alice"), montsalvat.Int(100))
			if err != nil {
				return montsalvat.Null(), err
			}
			p2, err := env.New("Person", montsalvat.Str("Bob"), montsalvat.Int(25))
			if err != nil {
				return montsalvat.Null(), err
			}
			if _, err := env.Call(p1, "transfer", p2, montsalvat.Int(25)); err != nil {
				return montsalvat.Null(), err
			}
			reg, err := env.New("AccountRegistry")
			if err != nil {
				return montsalvat.Null(), err
			}
			a1, err := env.Call(p1, "getAccount")
			if err != nil {
				return montsalvat.Null(), err
			}
			if _, err := env.Call(reg, "addAccount", a1); err != nil {
				return montsalvat.Null(), err
			}
			aliceBal, err := env.Call(a1, "getBalance")
			if err != nil {
				return montsalvat.Null(), err
			}
			a2, err := env.Call(p2, "getAccount")
			if err != nil {
				return montsalvat.Null(), err
			}
			bobBal, err := env.Call(a2, "getBalance")
			if err != nil {
				return montsalvat.Null(), err
			}
			size, err := env.Call(reg, "size")
			if err != nil {
				return montsalvat.Null(), err
			}
			return montsalvat.List(aliceBal, bobBal, size), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainClass); err != nil {
		return nil, err
	}
	p.MainClass = "Main"
	return p, nil
}
