package montsalvat

import (
	"bytes"
	"testing"
)

// TestFacadeAttestAndSeal exercises the attestation + sealing surface of
// the public API end to end: build, attest, seal, restart, unseal.
func TestFacadeAttestAndSeal(t *testing.T) {
	prog := counterProgram(t)
	w, build, err := NewPartitionedWorld(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	platform, err := NewAttestationPlatform()
	if err != nil {
		t.Fatal(err)
	}
	quote, err := platform.Quote(w.Enclave(), []byte("session-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.Verify(quote, build.TrustedImage.Measurement()); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	secret, err := NewPlatformSecret()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := w.Enclave().Seal(secret, SealToMRENCLAVE, []byte("persistent state"), nil)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh world built from the same program has the same
	// measurement, so it can unseal the blob (same platform).
	w2, build2, err := NewPartitionedWorld(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if build2.TrustedImage.Measurement() != build.TrustedImage.Measurement() {
		t.Fatal("rebuild changed the measurement")
	}
	plain, err := w2.Enclave().Unseal(secret, SealToMRENCLAVE, blob, nil)
	if err != nil {
		t.Fatalf("Unseal after restart: %v", err)
	}
	if !bytes.Equal(plain, []byte("persistent state")) {
		t.Fatalf("unsealed %q", plain)
	}

	// A different program (different measurement) cannot unseal.
	other := counterProgram(t)
	c, _ := other.Class("Counter")
	if err := c.AddMethod(&Method{Name: "extra", Public: true}); err != nil {
		t.Fatal(err)
	}
	w3, _, err := NewPartitionedWorld(other, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if _, err := w3.Enclave().Unseal(secret, SealToMRENCLAVE, blob, nil); err == nil {
		t.Fatal("foreign enclave unsealed the blob")
	}
}
