# Montsalvat (Go reproduction) — common tasks.

GO ?= go

.PHONY: all build test race cover bench bench-smoke bench-scale-smoke bench-ring-smoke bench-orderly bench-full serve-smoke obs-smoke crash-smoke fabric-smoke obs-fabric-smoke commit-smoke orderly-smoke fuzz vet fmt examples clean

all: build test

build:
	$(GO) build ./...

# Tier-1: full suite, vet, and a race pass over the boundary-crossing
# packages (worker-pool mailboxes, batching queues, and the telemetry
# instruments they all publish into are concurrent).
test:
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/sgx/... ./internal/ring/... ./internal/world/... ./internal/serve/... ./internal/telemetry/... ./internal/persist/... ./internal/fabric/... ./internal/orderly/...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# testing.B benchmarks (quick experiment scale + substrate benchmarks).
bench:
	$(GO) test -bench=. -benchmem -run=NONE .

# Short-mode dispatch-layer assertions: transition counts and the >=30%
# cycle-reduction bar for batched+switchless routing.
bench-smoke:
	$(GO) test -run TestDispatchSmoke -v ./internal/bench/

# Parallel-scaling sanity check: boot the gateway in-process and compare
# 1-client vs 2-client attested throughput through the worker pool and
# the sharded crossing engine; fails on zero parallel throughput or any
# request error.
bench-scale-smoke:
	$(GO) run ./cmd/montsalvat-serve -clients 2 -requests 32

# Zero-copy data plane check: run the bounded ring-vs-frame payload
# sweep (virtual cost accounting, quick scale) — fails if the ring path
# or its fallback routes misbehave at any payload size.
bench-ring-smoke:
	$(GO) run ./cmd/montsalvat-bench -experiment ring-sweep -quick -spin=false

# Regenerate every paper table/figure at full scale (minutes).
bench-full:
	$(GO) run ./cmd/montsalvat-bench

# End-to-end gateway check: boot the enclave gateway over the secure KV
# program, fire a 32-session attested load burst at it over loopback,
# drain, and fail on any handshake failure or request error.
serve-smoke:
	$(GO) run ./cmd/montsalvat-serve -smoke -sessions 32 -requests 16

# Observability check: same gateway smoke with the live introspection
# endpoint up — the run scrapes its own /metrics and /traces and fails
# unless the core metric families and a sampled cross-boundary trace
# (ecall with nested ocall) are present.
obs-smoke:
	$(GO) run ./cmd/montsalvat-serve -smoke -sessions 16 -requests 16 -metrics-addr 127.0.0.1:0

# Durability check: boot a durable gateway (sealed WAL + checkpoints +
# monotonic-counter rollback protection), kill and recover the enclave
# twice with attested sessions re-established after each crash, and fail
# unless every acked write survives both.
crash-smoke:
	$(GO) run ./cmd/montsalvat-serve -crash-smoke -sessions 8 -requests 16

# Fabric check: boot a 4-shard x 1-replica fabric in one process, drive
# a concurrent routed load burst, kill one primary mid-run, promote its
# replica, and fail unless every acked write reads back afterwards.
fabric-smoke:
	$(GO) run ./cmd/montsalvat-fabric -shards 4 -replicas 1 -load -failover -clients 4 -requests 32

# Fleet observability check: run the fabric load + failover drill with
# the observability plane mounted (2 replicas so a ship fan-out spans 3
# Worlds) and -obs-check asserting its two core promises: one trace ID
# spanning at least three Worlds, and a complete kill -> promote-begin
# -> promote-commit -> epoch-bump timeline in the event journal.
obs-fabric-smoke:
	$(GO) run ./cmd/montsalvat-fabric -shards 3 -replicas 2 -load -failover -clients 4 -requests 24 -metrics-addr 127.0.0.1:0 -obs-check

# Group-commit check: the same fabric load + failover drill on the
# pipelined durable-write path — batched WAL commits, watermark-gated
# acks — with -obs-check additionally asserting that traced
# commit-leader spans parent the batched ship spans (so the trace
# attributes every replica delta to the commit round that shipped it).
commit-smoke:
	$(GO) run ./cmd/montsalvat-fabric -shards 3 -replicas 2 -load -failover -clients 4 -requests 24 -group-commit -metrics-addr 127.0.0.1:0 -obs-check

# Model-check smoke: bounded exhaustive exploration of the boundary,
# recovery, and failover state machines. The serve side sweeps the
# in-process world alphabet (exhaustive depth 6, a deep states-bounded
# pass, lockrank-armed passes over world and served gateway); the
# fabric side exhausts the two-shard failover alphabet. Fails on any
# invariant violation, printing the shrunk trace as a replayable seed.
orderly-smoke:
	$(GO) run ./cmd/montsalvat-serve -orderly-check
	$(GO) run ./cmd/montsalvat-fabric -orderly-check

# Model-checker throughput: the orderly explorer's budgeted deep mode,
# recording distinct states/sec per configuration to BENCH_orderly.json.
bench-orderly:
	$(GO) run ./cmd/montsalvat-bench -json BENCH_orderly.json -suite orderly -quick -spin=false

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/wire/
	$(GO) test -run=NONE -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/wire/

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/securekv
	$(GO) run ./examples/pagerank
	$(GO) run ./examples/unpartitioned

clean:
	$(GO) clean ./...
