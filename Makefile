# Montsalvat (Go reproduction) — common tasks.

GO ?= go

.PHONY: all build test race cover bench bench-smoke bench-full fuzz vet fmt examples clean

all: build test

build:
	$(GO) build ./...

# Tier-1: full suite, vet, and a race pass over the boundary-crossing
# packages (worker-pool mailboxes and batching queues are concurrent).
test:
	$(GO) test ./...
	$(GO) vet ./...
	$(GO) test -race ./internal/sgx/... ./internal/world/...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# testing.B benchmarks (quick experiment scale + substrate benchmarks).
bench:
	$(GO) test -bench=. -benchmem -run=NONE .

# Short-mode dispatch-layer assertions: transition counts and the >=30%
# cycle-reduction bar for batched+switchless routing.
bench-smoke:
	$(GO) test -run TestDispatchSmoke -v ./internal/bench/

# Regenerate every paper table/figure at full scale (minutes).
bench-full:
	$(GO) run ./cmd/montsalvat-bench

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/wire/

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/securekv
	$(GO) run ./examples/pagerank
	$(GO) run ./examples/unpartitioned

clean:
	$(GO) clean ./...
