# Montsalvat (Go reproduction) — common tasks.

GO ?= go

.PHONY: all build test race cover bench bench-full fuzz vet fmt examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# testing.B benchmarks (quick experiment scale + substrate benchmarks).
bench:
	$(GO) test -bench=. -benchmem -run=NONE .

# Regenerate every paper table/figure at full scale (minutes).
bench-full:
	$(GO) run ./cmd/montsalvat-bench

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/wire/

vet:
	$(GO) vet ./...
	gofmt -l .

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/securekv
	$(GO) run ./examples/pagerank
	$(GO) run ./examples/unpartitioned

clean:
	$(GO) clean ./...
