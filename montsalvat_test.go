package montsalvat

import (
	"testing"
)

// counterProgram builds a minimal annotated program through the public
// facade: a trusted Counter driven by an untrusted main.
func counterProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()

	counter := NewClass("Counter", Trusted)
	if err := counter.AddField(Field{Name: "n", Kind: FieldInt}); err != nil {
		t.Fatal(err)
	}
	if err := counter.AddMethod(&Method{
		Name: CtorName, Public: true,
		Body: func(env Env, self Value, args []Value) (Value, error) {
			return Null(), env.SetField(self, "n", Int(0))
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := counter.AddMethod(&Method{
		Name: "inc", Public: true,
		Params: []Param{{Name: "by", Kind: KindInt}},
		Body: func(env Env, self Value, args []Value) (Value, error) {
			cur, err := env.GetField(self, "n")
			if err != nil {
				return Null(), err
			}
			n, _ := cur.AsInt()
			by, _ := args[0].AsInt()
			return Null(), env.SetField(self, "n", Int(n+by))
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := counter.AddMethod(&Method{
		Name: "value", Public: true, Returns: KindInt,
		Body: func(env Env, self Value, args []Value) (Value, error) {
			return env.GetField(self, "n")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(counter); err != nil {
		t.Fatal(err)
	}

	mainC := NewClass("App", Untrusted)
	if err := mainC.AddMethod(&Method{
		Name: MainMethodName, Static: true, Public: true,
		Returns:   KindInt,
		Allocates: []string{"Counter"},
		Calls: []MethodRef{
			{Class: "Counter", Method: "inc"},
			{Class: "Counter", Method: "value"},
		},
		Body: func(env Env, self Value, args []Value) (Value, error) {
			c, err := env.New("Counter")
			if err != nil {
				return Null(), err
			}
			for i := 1; i <= 10; i++ {
				if _, err := env.Call(c, "inc", Int(int64(i))); err != nil {
					return Null(), err
				}
			}
			return env.Call(c, "value")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	p.MainClass = "App"
	return p
}

func TestFacadePartitionedRun(t *testing.T) {
	w, build, err := NewPartitionedWorld(counterProgram(t), DefaultOptions())
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	defer w.Close()
	if w.Mode() != ModePartitioned {
		t.Fatalf("mode = %v", w.Mode())
	}

	result, err := w.RunMain()
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if !result.Equal(Int(55)) {
		t.Fatalf("result = %v, want 55", result)
	}
	// Every inc crossed into the enclave.
	if got := w.Stats().Enclave.Ecalls; got < 11 {
		t.Fatalf("ecalls = %d, want >= 11", got)
	}
	// The build artefacts are exposed.
	if build.EDL() == "" || build.EdgeC() == "" {
		t.Fatal("EDL/EdgeC empty")
	}
	if build.TCB().TrustedMethods == 0 {
		t.Fatal("TCB empty")
	}
}

func TestFacadeModesAgree(t *testing.T) {
	var results []Value
	w, _, err := NewPartitionedWorld(counterProgram(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	results = append(results, r)

	for _, inEnclave := range []bool{true, false} {
		w, img, err := NewUnpartitionedWorld(counterProgram(t), DefaultOptions(), inEnclave)
		if err != nil {
			t.Fatal(err)
		}
		if img == nil {
			t.Fatal("nil image")
		}
		r, err := w.RunMain()
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if !results[i].Equal(results[0]) {
			t.Fatalf("mode %d: %v != %v", i, results[i], results[0])
		}
	}
}

func TestFacadeBuildOnly(t *testing.T) {
	build, err := BuildPartitioned(counterProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if build.TrustedImage == nil || build.UntrustedImage == nil {
		t.Fatal("images missing")
	}
	if build.TrustedImage.Measurement() == build.UntrustedImage.Measurement() {
		t.Fatal("trusted and untrusted images share a measurement")
	}
}

func TestFacadeFS(t *testing.T) {
	fs := NewMemFS()
	if err := fs.WriteAt("f", 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt("f", 0, 4)
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadAt = %q, %v", got, err)
	}
	dir, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.WriteAt("g", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestBenchOptionsSpin(t *testing.T) {
	opts := BenchOptions()
	if !opts.Cfg.Spin {
		t.Fatal("BenchOptions does not spin")
	}
	if DefaultOptions().Cfg.Spin {
		t.Fatal("DefaultOptions spins")
	}
}
