package main

import (
	"strings"
	"testing"
)

// TestLoadMode boots the in-process fabric and drives the load burst:
// the same path CI's fabric-smoke target runs, at reduced scale.
func TestLoadMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-shards", "2", "-replicas", "0", "-load", "-clients", "2", "-requests", "8"}, &out)
	if err != nil {
		t.Fatalf("run -load: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"fabric: 2 shards x 0 replicas", "load: OK"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestLoadFailoverMode adds the failover drill: one primary dies after
// the first phase, its replica is promoted, and every acked write must
// still read back.
func TestLoadFailoverMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-shards", "2", "-replicas", "1", "-load", "-failover", "-clients", "2", "-requests", "8"}, &out)
	if err != nil {
		t.Fatalf("run -load -failover: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"failover: promoted replica", "1 promotions", "load: OK"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadFlags rejects unknown flags and inconsistent combinations.
func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-failover"}, &out); err == nil {
		t.Fatal("-failover without -load accepted")
	}
	if err := run([]string{"-load", "-failover", "-replicas", "0"}, &out); err == nil {
		t.Fatal("-failover without replicas accepted")
	}
}
