// Command montsalvat-fabric runs the sharded enclave fabric in one
// process: N enclave gateways each owning a partition of the demo KV
// keyspace, R warm-standby replicas per shard fed by synchronous
// checkpoint shipping over attested peer channels, and a consistent-hash
// router in front.
//
// Usage:
//
//	montsalvat-fabric -shards 4 -replicas 1        # serve until SIGINT
//	montsalvat-fabric -shards 4 -replicas 1 -load  # load burst + verify, exit
//	montsalvat-fabric -shards 2 -replicas 1 -load -failover
//	                                               # load, kill a primary
//	                                               # mid-run, promote its
//	                                               # replica, verify
//	montsalvat-fabric -metrics-addr :9415          # fabric metrics endpoint
//
// With -load the process is its own client: concurrent routers drive
// the keyspace through attested sessions, every acknowledged write is
// read back, and the run fails if any is missing. With -failover one
// primary is killed after the first load phase and its replica promoted
// — acked writes must survive the switch.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"montsalvat/internal/fabric"
	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "montsalvat-fabric:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("montsalvat-fabric", flag.ContinueOnError)
	var (
		shards      = fs.Int("shards", 2, "number of primary shards")
		replicas    = fs.Int("replicas", 1, "warm standbys per shard")
		load        = fs.Bool("load", false, "drive a load burst through the router, verify, exit")
		failover    = fs.Bool("failover", false, "with -load: kill one primary mid-run and promote its replica")
		clients     = fs.Int("clients", 4, "load: concurrent router clients")
		requests    = fs.Int("requests", 64, "load: writes per client per phase")
		attestSeed  = fs.String("attest-seed", "montsalvat-fabric-demo", "attestation platform seed")
		metricsAddr = fs.String("metrics-addr", "", "telemetry HTTP endpoint address (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failover && !*load {
		return fmt.Errorf("-failover requires -load")
	}
	if *failover && *replicas < 1 {
		return fmt.Errorf("-failover needs -replicas >= 1")
	}

	var tel *telemetry.Telemetry
	if *metricsAddr != "" {
		tel = telemetry.New(telemetry.Options{})
	}
	start := time.Now()
	f, err := fabric.New(fabric.Options{
		Shards:    *shards,
		Replicas:  *replicas,
		Platform:  sgx.NewPlatformFromSeed([]byte(*attestSeed)),
		Telemetry: tel,
	})
	if err != nil {
		return err
	}
	defer f.Close()

	t := f.Table()
	fmt.Fprintf(out, "fabric: %d shards x %d replicas up in %v (table epoch %d)\n",
		*shards, *replicas, time.Since(start).Round(time.Millisecond), t.Epoch)
	for _, s := range t.Shards {
		fmt.Fprintf(out, "fabric: shard %d on %s measurement %x\n", s.ID, s.Addr, s.Measurement[:8])
	}

	var stopObs func()
	if tel != nil {
		ms, err := telemetry.Serve(*metricsAddr, tel)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "telemetry on http://%s/metrics\n", ms.Addr())
		stopObs = func() { _ = ms.Close() }
		defer stopObs()
	}

	if *load {
		return runLoad(out, f, *clients, *requests, *failover)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)
	<-stop
	fmt.Fprintln(out, "draining...")
	return nil
}

// runLoad drives phases of writes through concurrent routers, killing
// and promoting one shard between phases when failover is set. Every
// acknowledged write is read back at the end.
func runLoad(out io.Writer, f *fabric.Fabric, clients, requests int, failover bool) error {
	var (
		ackedMu sync.Mutex
		acked   = map[string]string{}
	)
	phase := func(name string, tolerant bool) error {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := f.Client(fabric.RouterConfig{})
				defer r.Close()
				for i := 0; i < requests; i++ {
					k := fmt.Sprintf("%s:c%d:k%05d", name, c, i)
					v := fmt.Sprintf("v%d-%d", c, i)
					if err := r.Put(k, v); err != nil {
						if tolerant {
							continue // a dark shard refuses; unacked writes carry no promise
						}
						errs <- fmt.Errorf("%s put %s: %w", name, k, err)
						return
					}
					ackedMu.Lock()
					acked[k] = v
					ackedMu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		ackedMu.Lock()
		n := len(acked)
		ackedMu.Unlock()
		fmt.Fprintf(out, "load: phase %s done in %v (%d acked writes total)\n",
			name, time.Since(start).Round(time.Millisecond), n)
		return nil
	}

	if err := phase("p1", false); err != nil {
		return err
	}
	if failover {
		victim := f.Table().Shards[len(f.Table().Shards)-1].ID
		exp, err := f.KillShard(victim)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "failover: killed shard %d (acked through stamp %d, lsn %d)\n", victim, exp.Stamp, exp.LSN)
		start := time.Now()
		if err := f.Promote(victim, exp); err != nil {
			return fmt.Errorf("promote shard %d: %w", victim, err)
		}
		fmt.Fprintf(out, "failover: promoted replica in %v (table epoch %d)\n",
			time.Since(start).Round(time.Millisecond), f.Table().Epoch)
		if err := phase("p2", false); err != nil {
			return err
		}
	}

	verify := f.Client(fabric.RouterConfig{})
	defer verify.Close()
	ackedMu.Lock()
	defer ackedMu.Unlock()
	for k, want := range acked {
		v, ok, err := verify.Get(k)
		if err != nil || !ok || v != want {
			return fmt.Errorf("acked write lost: %q = (%q, %v, %v), want %q", k, v, ok, err, want)
		}
	}
	st := f.Stats()
	fmt.Fprintf(out, "load: verified %d acked writes across %d shards\n", len(acked), st.Shards)
	fmt.Fprintf(out, "fabric: %d ship rounds (%d B), %d promotions, %d stale rejections, %d peer handshakes\n",
		st.ShipRounds, st.ShipBytes, st.Promotions, st.StalePromotionsRejected, st.PeerHandshakes)
	fmt.Fprintln(out, "load: OK")
	return nil
}
