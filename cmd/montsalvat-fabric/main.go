// Command montsalvat-fabric runs the sharded enclave fabric in one
// process: N enclave gateways each owning a partition of the demo KV
// keyspace, R warm-standby replicas per shard fed by synchronous
// checkpoint shipping over attested peer channels, and a consistent-hash
// router in front.
//
// Usage:
//
//	montsalvat-fabric -shards 4 -replicas 1        # serve until SIGINT
//	montsalvat-fabric -shards 4 -replicas 1 -load  # load burst + verify, exit
//	montsalvat-fabric -shards 2 -replicas 1 -load -failover
//	                                               # load, kill a primary
//	                                               # mid-run, promote its
//	                                               # replica, verify
//	montsalvat-fabric -metrics-addr :9415          # fleet observability endpoint
//	montsalvat-fabric -load -group-commit          # pipelined durable-write path
//
// With -load the process is its own client: concurrent routers drive
// the keyspace through attested sessions, every acknowledged write is
// read back, and the run fails if any is missing. With -failover one
// primary is killed after the first load phase and its replica promoted
// — acked writes must survive the switch.
//
// -group-commit switches the shards to the pipelined durable-write
// path: concurrent puts are journaled as batched WAL records (one seal
// per group) and acks are gated on the replica watermark instead of an
// inline ship round. -commit-records and -commit-delay tune the batch
// window. With -obs-check, the run additionally asserts that traced
// commit-leader spans parent the batched ship spans.
//
// -metrics-addr mounts the fabric-wide observability plane: one
// endpoint serving shard-labeled montsalvat_fabric_* metrics
// (/metrics, /snapshot), the fleet-shared trace ring (/traces), and
// the structured event journal (/events). With -failover the event
// journal is dumped as a one-line-per-event failover timeline at the
// end of the run. -obs-check additionally asserts the plane's two core
// promises — a single trace ID spanning at least three Worlds, and a
// complete kill → promote-begin → promote-commit → epoch-bump
// timeline — and fails the run if either is missing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"montsalvat/internal/fabric"
	"montsalvat/internal/orderly"
	"montsalvat/internal/sgx"
	"montsalvat/internal/smoke"
	"montsalvat/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "montsalvat-fabric:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("montsalvat-fabric", flag.ContinueOnError)
	var (
		shards      = fs.Int("shards", 2, "number of primary shards")
		replicas    = fs.Int("replicas", 1, "warm standbys per shard")
		load        = fs.Bool("load", false, "drive a load burst through the router, verify, exit")
		failover    = fs.Bool("failover", false, "with -load: kill one primary mid-run and promote its replica")
		clients     = fs.Int("clients", 4, "load: concurrent router clients")
		requests    = fs.Int("requests", 64, "load: writes per client per phase")
		attestSeed  = fs.String("attest-seed", "montsalvat-fabric-demo", "attestation platform seed")
		metricsAddr = fs.String("metrics-addr", "", "fleet observability HTTP endpoint address (empty disables)")
		traceSample = fs.Float64("trace-sample", 1, "fraction of routed operations traced (0 disables tracing)")
		obsCheck    = fs.Bool("obs-check", false, "with -load: assert cross-World trace propagation and (with -failover) a complete promotion timeline")
		orderlyChk  = fs.Bool("orderly-check", false, "model-check the fabric failover state machine (bounded exhaustive exploration), exit")

		groupCommit   = fs.Bool("group-commit", false, "durable writes: group-commit WAL batching + pipelined replication (acks gated on the replica watermark)")
		commitRecords = fs.Int("commit-records", 0, "with -group-commit: max records per commit batch (0 = engine default)")
		commitDelay   = fs.Duration("commit-delay", 0, "with -group-commit: max time a commit leader holds the batch window open (0 = yield-based window)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *orderlyChk {
		return orderly.RunCheck(out, orderly.FabricCheckPasses())
	}
	if *failover && !*load {
		return fmt.Errorf("-failover requires -load")
	}
	if *failover && *replicas < 1 {
		return fmt.Errorf("-failover needs -replicas >= 1")
	}
	if *obsCheck && !*load {
		return fmt.Errorf("-obs-check requires -load")
	}

	var fleet *telemetry.Fleet
	if *metricsAddr != "" || *obsCheck {
		fleet = telemetry.NewFleet(telemetry.Options{TraceSampleRate: *traceSample, TraceBuffer: 4096})
	}
	start := time.Now()
	f, err := fabric.New(fabric.Options{
		Shards:           *shards,
		Replicas:         *replicas,
		Platform:         sgx.NewPlatformFromSeed([]byte(*attestSeed)),
		Fleet:            fleet,
		GroupCommit:      *groupCommit,
		CommitMaxRecords: *commitRecords,
		CommitMaxDelay:   *commitDelay,
	})
	if err != nil {
		return err
	}
	defer f.Close()

	t := f.Table()
	fmt.Fprintf(out, "fabric: %d shards x %d replicas up in %v (table epoch %d)\n",
		*shards, *replicas, time.Since(start).Round(time.Millisecond), t.Epoch)
	for _, s := range t.Shards {
		fmt.Fprintf(out, "fabric: shard %d on %s measurement %x\n", s.ID, s.Addr, s.Measurement[:8])
	}

	if fleet != nil && *metricsAddr != "" {
		ms, err := telemetry.Serve(*metricsAddr, fleet.Telemetry())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fleet observability on http://%s/metrics (+ /traces /events /snapshot)\n", ms.Addr())
		defer func() { _ = ms.Close() }()
	}

	if *load {
		// The commit-leader trace assertion needs the pipelined ack
		// path to actually run: group commit on and at least one
		// replica to ship to.
		checkCommit := *groupCommit && *replicas >= 1
		return runLoad(out, f, fleet, *clients, *requests, *failover, *obsCheck, checkCommit)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)
	<-stop
	fmt.Fprintln(out, "draining...")
	return nil
}

// runLoad drives phases of writes through concurrent routers, killing
// and promoting one shard between phases when failover is set. Every
// acknowledged write is read back at the end. With a fleet attached,
// failover runs end by dumping the event journal as a timeline, and
// obsCheck asserts the observability-plane invariants.
func runLoad(out io.Writer, f *fabric.Fabric, fleet *telemetry.Fleet, clients, requests int, failover, obsCheck, checkCommit bool) error {
	acked := smoke.NewLedger()
	phase := func(name string, tolerant bool) error {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := f.Client(fabric.RouterConfig{})
				defer r.Close()
				for i := 0; i < requests; i++ {
					k := fmt.Sprintf("%s:c%d:k%05d", name, c, i)
					v := fmt.Sprintf("v%d-%d", c, i)
					if err := r.Put(k, v); err != nil {
						if tolerant {
							continue // a dark shard refuses; unacked writes carry no promise
						}
						errs <- fmt.Errorf("%s put %s: %w", name, k, err)
						return
					}
					acked.Ack(k, v)
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		fmt.Fprintf(out, "load: phase %s done in %v (%d acked writes total)\n",
			name, time.Since(start).Round(time.Millisecond), acked.Len())
		return nil
	}

	if err := phase("p1", false); err != nil {
		return err
	}
	if failover {
		victim := f.Table().Shards[len(f.Table().Shards)-1].ID
		exp, err := f.KillShard(victim)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "failover: killed shard %d (acked through stamp %d, lsn %d)\n", victim, exp.Stamp, exp.LSN)
		start := time.Now()
		if err := f.Promote(victim, exp); err != nil {
			return fmt.Errorf("promote shard %d: %w", victim, err)
		}
		fmt.Fprintf(out, "failover: promoted replica in %v (table epoch %d)\n",
			time.Since(start).Round(time.Millisecond), f.Table().Epoch)
		if err := phase("p2", false); err != nil {
			return err
		}
	}

	verify := f.Client(fabric.RouterConfig{})
	defer verify.Close()
	if err := acked.Verify(verify.Get); err != nil {
		return err
	}
	st := f.Stats()
	fmt.Fprintf(out, "load: verified %d acked writes across %d shards\n", acked.Len(), st.Shards)
	fmt.Fprintf(out, "fabric: %d ship rounds (%d B), %d promotions, %d stale rejections, %d peer handshakes\n",
		st.ShipRounds, st.ShipBytes, st.Promotions, st.StalePromotionsRejected, st.PeerHandshakes)

	if fleet != nil && failover {
		printTimeline(out, fleet)
	}
	if obsCheck {
		if err := checkObservability(out, fleet, failover, checkCommit); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "load: OK")
	return nil
}

// printTimeline dumps the fleet event journal as a one-line-per-event
// failover timeline, offsets relative to the oldest retained event.
func printTimeline(out io.Writer, fleet *telemetry.Fleet) {
	events := fleet.Telemetry().Events().Dump()
	if len(events) == 0 {
		return
	}
	fmt.Fprintf(out, "timeline: %d events\n", len(events))
	base := events[0].TimeNS
	for _, ev := range events {
		fmt.Fprintf(out, "  %s\n", ev.Line(base))
	}
}

// checkObservability asserts the fleet plane's core promises over the
// run that just completed:
//
//  1. cross-World tracing — at least one trace ID whose spans landed on
//     three or more distinct fabric nodes (router excluded), i.e. the
//     trace followed a request across Worlds rather than staying local;
//  2. with failover, timeline completeness — the event journal holds
//     kill, promote-begin, promote-commit, and epoch-bump events for
//     the failover in strictly increasing Seq order;
//  3. with group commit on the pipelined replication path, batched-ship
//     attribution — at least one commit-leader span exists and parents
//     at least one ship span, i.e. the trace shows which commit round a
//     replica delta was shipped for. (Only a subset of ship spans have
//     commit-leader parents: attach-time catch-up ships are trace
//     roots, and sync-fallback ships parent the journaling mutation.)
func checkObservability(out io.Writer, fleet *telemetry.Fleet, failover, checkCommit bool) error {
	if fleet == nil {
		return fmt.Errorf("obs-check: no fleet attached")
	}
	spans := fleet.Telemetry().Tracer().Dump()
	worlds := map[uint64]map[string]bool{}
	for _, sp := range spans {
		if sp.Node == "" || sp.Node == "router" {
			continue
		}
		m := worlds[sp.TraceID]
		if m == nil {
			m = map[string]bool{}
			worlds[sp.TraceID] = m
		}
		m[sp.Node] = true
	}
	var bestTrace uint64
	best := 0
	for id, m := range worlds {
		if len(m) > best {
			best, bestTrace = len(m), id
		}
	}
	if best < 3 {
		return fmt.Errorf("obs-check: no trace spans 3 Worlds (best trace covers %d; need -replicas >= 2 or a redirect)", best)
	}
	nodes := make([]string, 0, best)
	for n := range worlds[bestTrace] {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintf(out, "obs-check: trace %d spans %d Worlds: %s\n", bestTrace, best, strings.Join(nodes, ", "))

	if failover {
		seqs, err := smoke.FailoverTimeline(fleet.Telemetry().Events().Dump(), 1)
		if err != nil {
			return fmt.Errorf("obs-check: failover timeline incomplete: %w", err)
		}
		fmt.Fprintf(out, "obs-check: failover timeline complete (kill %d -> promote-begin %d -> promote-commit %d -> epoch-bump %d)\n",
			seqs[0], seqs[1], seqs[2], seqs[3])
	}

	if checkCommit {
		leaders := map[uint64]bool{}
		nLeaders := 0
		for _, sp := range spans {
			if sp.Name == "commit-leader" {
				leaders[sp.SpanID] = true
				nLeaders++
			}
		}
		if nLeaders == 0 {
			return fmt.Errorf("obs-check: group commit ran but no commit-leader span was traced")
		}
		parented := 0
		for _, sp := range spans {
			if strings.HasPrefix(sp.Name, "ship ") && leaders[sp.ParentID] {
				parented++
			}
		}
		if parented == 0 {
			return fmt.Errorf("obs-check: %d commit-leader spans but none parents a ship span", nLeaders)
		}
		fmt.Fprintf(out, "obs-check: %d commit-leader spans parent %d batched ship spans\n", nLeaders, parented)
	}
	return nil
}
