package main

import (
	"strings"
	"testing"
)

func TestAllSubcommands(t *testing.T) {
	for _, cmd := range []string{"build", "edl", "edgec", "run", "modes", "attest", "help"} {
		cmd := cmd
		t.Run(cmd, func(t *testing.T) {
			if err := run([]string{cmd}); err != nil {
				t.Fatalf("run(%s): %v", cmd, err)
			}
		})
	}
}

func TestDefaultIsBuild(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run(): %v", err)
	}
}

func TestGraphCommand(t *testing.T) {
	for _, which := range []string{"trusted", "untrusted"} {
		if err := run([]string{"graph", which}); err != nil {
			t.Fatalf("graph %s: %v", which, err)
		}
	}
	if err := run([]string{"graph", "sideways"}); err == nil {
		t.Fatal("accepted bad graph target")
	}
}

func TestGraphDOTShape(t *testing.T) {
	build, err := buildDemo()
	if err != nil {
		t.Fatal(err)
	}
	dot := renderDOT(build.UntrustedImage)
	for _, want := range []string{
		"digraph reachability",
		`"Main.main" [label="Main.main" shape=box penwidth=2];`, // entry point
		`"Account.<init>" [label="Account.<init>" style=dashed`, // proxy node
		`"Main.main" -> "Person.transfer";`,                     // call edge
		`"Main.main" -> "Person.<init>" [style=dotted];`,        // alloc edge
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Pruned elements never appear in the trusted graph.
	tdot := renderDOT(build.TrustedImage)
	if strings.Contains(tdot, "Person.") {
		t.Fatalf("trusted graph contains pruned Person proxy:\n%s", tdot)
	}
}

func TestUnknownCommand(t *testing.T) {
	err := run([]string{"frobnicate"})
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}
