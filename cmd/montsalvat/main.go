// Command montsalvat drives the Montsalvat pipeline on the paper's
// illustrative bank application (Listing 1) and prints the artefacts of
// every phase: the transformation report, the per-image reachability
// analysis, the generated EDL and edge routines, the enclave measurement,
// and the runtime statistics of an actual partitioned run.
//
// Usage:
//
//	montsalvat build    inspect the build pipeline artefacts
//	montsalvat edl      print the generated EDL file
//	montsalvat edgec    print the generated C edge routines
//	montsalvat run      run the partitioned bank demo
//	montsalvat modes    run the demo in all three deployment modes
//	montsalvat attest   demonstrate remote attestation of the enclave
package main

import (
	"fmt"
	"os"

	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/sgx"
	"montsalvat/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "montsalvat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	cmd := "build"
	if len(args) > 0 {
		cmd = args[0]
	}
	switch cmd {
	case "build":
		return cmdBuild()
	case "edl":
		return cmdEDL()
	case "edgec":
		return cmdEdgeC()
	case "run":
		return cmdRun()
	case "modes":
		return cmdModes()
	case "attest":
		return cmdAttest()
	case "graph":
		which := "trusted"
		if len(args) > 1 {
			which = args[1]
		}
		return cmdGraph(which)
	case "help", "-h", "--help":
		fmt.Println("usage: montsalvat [build|edl|edgec|run|modes|attest|graph [trusted|untrusted]]")
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: build, edl, edgec, run, modes, attest, graph)", cmd)
	}
}

func buildDemo() (*core.BuildResult, error) {
	return core.BuildPartitioned(demo.MustBankProgram())
}

func cmdBuild() error {
	build, err := buildDemo()
	if err != nil {
		return err
	}
	rep := build.Transform.Report
	fmt.Println("== Phase 2: bytecode transformation ==")
	fmt.Printf("  trusted classes:          %d\n", rep.TrustedClasses)
	fmt.Printf("  untrusted classes:        %d\n", rep.UntrustedClasses)
	fmt.Printf("  neutral classes:          %d\n", rep.NeutralClasses)
	fmt.Printf("  proxies in trusted set:   %d\n", rep.ProxiesInTrustedSet)
	fmt.Printf("  proxies in untrusted set: %d\n", rep.ProxiesInUntrustedSet)
	fmt.Printf("  methods stripped:         %d\n", rep.MethodsStripped)
	fmt.Printf("  relay methods added:      %d\n", rep.RelaysAdded)
	fmt.Printf("  ecall routines:           %d\n", len(build.Transform.Interface.Ecalls()))
	fmt.Printf("  ocall routines:           %d\n", len(build.Transform.Interface.Ocalls()))
	fmt.Println()

	tRep := build.TrustedImage.Report()
	uRep := build.UntrustedImage.Report()
	fmt.Println("== Phase 3: native image partitioning (points-to analysis) ==")
	fmt.Printf("  trusted image:   %d/%d classes, %d/%d methods compiled, %d proxies pruned\n",
		tRep.ReachableClasses, tRep.TotalClasses, tRep.CompiledMethods, tRep.TotalMethods, tRep.ProxiesPruned)
	fmt.Printf("  untrusted image: %d/%d classes, %d/%d methods compiled, %d proxies kept\n",
		uRep.ReachableClasses, uRep.TotalClasses, uRep.CompiledMethods, uRep.TotalMethods, uRep.ProxiesKept)
	meas := build.TrustedImage.Measurement()
	fmt.Printf("  enclave measurement (MRENCLAVE): %x\n", meas[:16])
	fmt.Println()

	tcb := build.TCB()
	fmt.Println("== Trusted computing base ==")
	fmt.Printf("  in enclave: %d classes, %d methods (of %d / %d total)\n",
		tcb.TrustedClasses, tcb.TrustedMethods, tcb.TotalClasses, tcb.TotalMethods)
	return nil
}

func cmdEDL() error {
	build, err := buildDemo()
	if err != nil {
		return err
	}
	fmt.Print(build.EDL())
	return nil
}

func cmdEdgeC() error {
	build, err := buildDemo()
	if err != nil {
		return err
	}
	fmt.Print(build.EdgeC())
	return nil
}

func cmdRun() error {
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		return err
	}
	defer w.Close()
	w.StartGCHelpers()

	result, err := w.RunMain()
	if err != nil {
		return err
	}
	fmt.Printf("main returned: %v  (alice=75, bob=50, registry size=1)\n", result)

	s := w.Stats()
	fmt.Printf("ecalls: %d, ocalls: %d\n", s.Enclave.Ecalls, s.Enclave.Ocalls)
	fmt.Printf("trusted registry (mirrors): %d, untrusted weak list (proxies): %d\n",
		s.Trusted.RegistrySize, s.Untrusted.WeakListLen)
	fmt.Printf("MEE lines encrypted: %d, EPC resident pages: %d\n",
		s.Enclave.MEE.LinesEncrypted, s.Enclave.Residency.ResidentPages)
	fmt.Printf("simulated cycles: %d\n", s.Cycles)
	fmt.Println()
	fmt.Print(w.RenderTransitionReport())
	return nil
}

func cmdModes() error {
	type outcome struct {
		mode   string
		result string
		cycles int64
	}
	var outs []outcome

	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		return err
	}
	r, err := w.RunMain()
	if err != nil {
		return err
	}
	outs = append(outs, outcome{mode: "partitioned", result: r.String(), cycles: w.Stats().Cycles})
	w.Close()

	for _, inEnclave := range []bool{true, false} {
		w, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), inEnclave)
		if err != nil {
			return err
		}
		r, err := w.RunMain()
		if err != nil {
			return err
		}
		outs = append(outs, outcome{mode: w.Mode().String(), result: r.String(), cycles: w.Stats().Cycles})
		w.Close()
	}
	for _, o := range outs {
		fmt.Printf("%-18s result=%s cycles=%d\n", o.mode, o.result, o.cycles)
	}
	fmt.Println("all modes compute identical results; only the costs differ")
	return nil
}

func cmdAttest() error {
	w, build, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		return err
	}
	defer w.Close()

	platform, err := sgx.NewPlatform()
	if err != nil {
		return err
	}
	nonce := []byte("verifier-nonce-1234")
	quote, err := platform.Quote(w.Enclave(), nonce)
	if err != nil {
		return err
	}
	fmt.Printf("quote over MRENCLAVE %x...\n", quote.Measurement[:8])
	if err := platform.Verify(quote, build.TrustedImage.Measurement()); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Println("quote verified: enclave runs the expected trusted image")

	// Demonstrate detection of a tampered image.
	forged := quote
	forged.ReportData = []byte("tampered")
	if err := platform.Verify(forged, build.TrustedImage.Measurement()); err != nil {
		fmt.Println("tampered quote rejected:", err)
	}

	// Sealing: persist a secret bound to this enclave's identity.
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		return err
	}
	blob, err := w.Enclave().Seal(secret, sgx.SealToMRENCLAVE, []byte("database master key"), []byte("v1"))
	if err != nil {
		return err
	}
	fmt.Printf("sealed %d bytes under MRENCLAVE policy (blob: %d bytes)\n", 19, len(blob))
	plain, err := w.Enclave().Unseal(secret, sgx.SealToMRENCLAVE, blob, []byte("v1"))
	if err != nil {
		return err
	}
	fmt.Printf("unsealed after restart: %q\n", plain)
	return nil
}
