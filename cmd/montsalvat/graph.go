package main

import (
	"fmt"
	"strings"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/image"
)

// cmdGraph renders the reachable call graph of one image as Graphviz DOT
// — the paper's Fig. 2 ("determining reachable methods for the
// relayAccount / main entry points"). Entry points are boxes, proxy-class
// methods are dashed, call edges are solid and allocation edges dotted.
func cmdGraph(which string) error {
	build, err := buildDemo()
	if err != nil {
		return err
	}
	var img *image.Image
	switch which {
	case "trusted":
		img = build.TrustedImage
	case "untrusted":
		img = build.UntrustedImage
	default:
		return fmt.Errorf("graph: want trusted or untrusted, got %q", which)
	}
	fmt.Print(renderDOT(img))
	return nil
}

func renderDOT(img *image.Image) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Reachable methods of the %s image (paper Fig. 2).\n", img.Kind())
	sb.WriteString("digraph reachability {\n")
	sb.WriteString("    rankdir=LR;\n")
	sb.WriteString("    node [fontname=\"monospace\" shape=ellipse];\n")

	entry := make(map[classmodel.MethodRef]bool)
	for _, ep := range img.EntryPoints() {
		entry[ep] = true
	}

	prog := img.Program()
	for _, c := range img.Classes() {
		if classmodel.IsBuiltin(c.Name) {
			continue
		}
		for _, m := range c.Methods {
			ref := classmodel.MethodRef{Class: c.Name, Method: m.Name}
			if !img.MethodCompiled(ref) {
				continue
			}
			attrs := []string{fmt.Sprintf("label=%q", ref.String())}
			if entry[ref] {
				attrs = append(attrs, "shape=box", "penwidth=2")
			}
			if c.Proxy {
				attrs = append(attrs, "style=dashed", `color=gray40`)
			}
			fmt.Fprintf(&sb, "    %q [%s];\n", nodeID(ref), strings.Join(attrs, " "))
			for _, call := range m.Calls {
				if !img.MethodCompiled(call) {
					continue
				}
				fmt.Fprintf(&sb, "    %q -> %q;\n", nodeID(ref), nodeID(call))
			}
			for _, alloc := range m.Allocates {
				ctor := classmodel.MethodRef{Class: alloc, Method: classmodel.CtorName}
				if ac, ok := prog.Class(alloc); !ok || classmodel.IsBuiltin(ac.Name) {
					continue
				}
				if !img.MethodCompiled(ctor) {
					continue
				}
				fmt.Fprintf(&sb, "    %q -> %q [style=dotted];\n", nodeID(ref), nodeID(ctor))
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func nodeID(ref classmodel.MethodRef) string {
	return ref.Class + "." + ref.Method
}
