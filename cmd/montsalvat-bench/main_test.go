package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig3", "fig12", "table1", "ablation-tcb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %s:\n%s", want, out)
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "table1", "-quick", "-spin=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "gain over SCONE+JVM") || !strings.Contains(out, "montecarlo") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestProfileDispatch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-profile-dispatch", "-quick", "-spin=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dispatch profile",
		"boundary calls by route",
		"montsalvat_boundary_dispatch_ns",
		"KVStore.relay$put",
		"AuditLog.relay$record",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "fig99"}, &sb); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

func TestCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "ablation-tcb", "-quick", "-spin=false", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# ablation-tcb:", "series,classes,methods", "partitioned+shim,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestBadFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-format", "yaml"}, &sb); err == nil {
		t.Fatal("accepted bad format")
	}
}
