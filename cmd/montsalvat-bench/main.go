// Command montsalvat-bench regenerates the tables and figures of the
// paper's evaluation (§6).
//
// Usage:
//
//	montsalvat-bench                      # run every experiment
//	montsalvat-bench -experiment fig7     # one experiment
//	montsalvat-bench -list                # list experiment IDs
//	montsalvat-bench -quick               # reduced problem sizes
//	montsalvat-bench -spin=false          # virtual-only cost accounting
//	montsalvat-bench -profile-dispatch    # telemetry-instrumented dispatch profile
//
// With -spin (the default), simulated costs — enclave transitions, MEE
// traffic — are charged as real busy-wait time so wall-clock measurements
// reflect them; -spin=false keeps runs fast and fully deterministic.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"montsalvat/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "montsalvat-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("montsalvat-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment ID (see -list) or \"all\"")
		quick      = fs.Bool("quick", false, "reduced problem sizes")
		spin       = fs.Bool("spin", true, "charge simulated costs as real busy-wait time")
		list       = fs.Bool("list", false, "list experiment IDs and exit")
		format     = fs.String("format", "text", "output format: text or csv")
		profile    = fs.Bool("profile-dispatch", false, "run the KV demo with full-rate telemetry and print the dispatch profile")
		jsonPath   = fs.String("json", "", "run a perf suite (see -suite) and append a machine-readable entry to this file (e.g. BENCH_rmi.json)")
		suite      = fs.String("suite", "rmi", "perf suite for -json: rmi (BENCH_rmi.json), ring (rmi plus payload sweep), persist (BENCH_persist.json), fabric (BENCH_fabric.json), obs (BENCH_obs.json) or orderly (BENCH_orderly.json)")
		label      = fs.String("label", "run", "entry label for -json records")
		sweep      = fs.Bool("payload-sweep", false, "with -json -suite rmi: include the ring payload sweep in the entry")
		groupc     = fs.Bool("group-commit", false, "run fabric experiments on the pipelined group-commit ack path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want text or csv)", *format)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(out, "%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}

	opts := bench.Options{Quick: *quick, Spin: *spin, GroupCommit: *groupc}
	if *jsonPath != "" {
		switch *suite {
		case "rmi":
			return writeRMIPerf(opts, *jsonPath, *label, *sweep, out)
		case "ring":
			return writeRMIPerf(opts, *jsonPath, *label, true, out)
		case "persist":
			return writeRecoveryPerf(opts, *jsonPath, *label, out)
		case "fabric":
			return writeFabricPerf(opts, *jsonPath, *label, out)
		case "obs":
			return writeObsPerf(opts, *jsonPath, *label, out)
		case "orderly":
			return writeOrderlyPerf(opts, *jsonPath, *label, out)
		default:
			return fmt.Errorf("unknown -suite %q (want rmi, ring, persist, fabric, obs or orderly)", *suite)
		}
	}
	if *profile {
		report, err := bench.DispatchProfile(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, report)
		return nil
	}
	experiments := bench.All()
	if *experiment != "all" {
		e, err := bench.ByID(*experiment)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	}

	for _, e := range experiments {
		start := time.Now()
		table, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *format == "csv" {
			fmt.Fprintf(out, "# %s: %s\n", table.ID, table.Title)
			fmt.Fprint(out, table.RenderCSV())
			fmt.Fprintln(out)
			continue
		}
		fmt.Fprint(out, table.Render())
		fmt.Fprintf(out, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeRMIPerf runs the RMI perf suite and appends the labelled entry to
// the trajectory file, creating it when absent. With sweep, the entry
// additionally carries the ring-vs-frame payload sweep.
func writeRMIPerf(opts bench.Options, path, label string, sweep bool, out io.Writer) error {
	run := bench.RMIPerf
	if sweep {
		run = bench.RingPerf
	}
	entry, err := run(opts, label)
	if err != nil {
		return err
	}
	var file bench.RMIPerfFile
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// First record: start a fresh trajectory.
	default:
		return err
	}
	file.Schema = bench.RMIPerfSchema
	file.Entries = append(file.Entries, *entry)
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: appended %q (single %.0f ops/s, 8-goroutine speedup %.2fx)\n",
		path, label, entry.SingleOpsPerSec, speedupAt(entry, 8))
	if n := len(entry.PayloadSweep); n > 0 {
		top := entry.PayloadSweep[n-1]
		fmt.Fprintf(out, "%s: payload sweep %d points, ring %.2fx at %d B (crypto share %.0f%%)\n",
			path, n, top.Speedup, top.PayloadBytes, top.RingCryptoShare*100)
	}
	return nil
}

// writeRecoveryPerf runs the durability recovery suite and appends the
// labelled entry to the trajectory file, creating it when absent.
func writeRecoveryPerf(opts bench.Options, path, label string, out io.Writer) error {
	entry, err := bench.RecoveryPerf(opts, label)
	if err != nil {
		return err
	}
	var file bench.RecoveryPerfFile
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// First record: start a fresh trajectory.
	default:
		return err
	}
	file.Schema = bench.RecoveryPerfSchema
	file.Entries = append(file.Entries, *entry)
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	if len(entry.Points) > 0 {
		worst := entry.Points[0]
		for _, p := range entry.Points {
			if p.RecoverMS > worst.RecoverMS {
				worst = p
			}
		}
		fmt.Fprintf(out, "%s: appended %q (%d points, worst recovery %.1fms at %d records / interval %d)\n",
			path, label, len(entry.Points), worst.RecoverMS, worst.Records, worst.CkptInterval)
	} else {
		fmt.Fprintf(out, "%s: appended %q (no recovery points)\n", path, label)
	}
	if n := len(entry.GroupCommit); n > 0 {
		best := entry.GroupCommit[0]
		var baseAtBest float64
		for _, p := range entry.GroupCommit {
			if p.Grouped && p.PutsPerSec > best.PutsPerSec {
				best = p
			}
		}
		for _, p := range entry.GroupCommit {
			if !p.Grouped && p.Writers == best.Writers {
				baseAtBest = p.PutsPerSec
			}
		}
		line := fmt.Sprintf("%s: group-commit sweep %d cells, best %.0f puts/s at %d writers (batch %.1f, ack p99 %.0fus)",
			path, n, best.PutsPerSec, best.Writers, best.MeanBatch, best.AckP99US)
		if baseAtBest > 0 {
			line += fmt.Sprintf(", %.2fx over single-seal", best.PutsPerSec/baseAtBest)
		}
		fmt.Fprintln(out, line)
	}
	return nil
}

// writeFabricPerf runs the fabric suite (shard scaling + failover) and
// appends the labelled entry to the trajectory file, creating it when
// absent.
func writeFabricPerf(opts bench.Options, path, label string, out io.Writer) error {
	entry, err := bench.FabricPerf(opts, label)
	if err != nil {
		return err
	}
	var file bench.FabricPerfFile
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// First record: start a fresh trajectory.
	default:
		return err
	}
	file.Schema = bench.FabricPerfSchema
	file.Entries = append(file.Entries, *entry)
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	top := entry.Scale[len(entry.Scale)-1]
	worst := entry.Failover[0]
	for _, p := range entry.Failover {
		if p.PromoteMS > worst.PromoteMS {
			worst = p
		}
	}
	fmt.Fprintf(out, "%s: appended %q (%.2fx put speedup at %d shards, worst promote %.1fms at %d records)\n",
		path, label, top.PutSpeedup, top.Shards, worst.PromoteMS, worst.Records)
	return nil
}

// writeObsPerf runs the observability-overhead suite and appends the
// labelled entry to the trajectory file, creating it when absent.
func writeObsPerf(opts bench.Options, path, label string, out io.Writer) error {
	entry, err := bench.ObsPerf(opts, label)
	if err != nil {
		return err
	}
	var file bench.ObsPerfFile
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// First record: start a fresh trajectory.
	default:
		return err
	}
	file.Schema = bench.ObsPerfSchema
	file.Entries = append(file.Entries, *entry)
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	worst := entry.Points[len(entry.Points)-1]
	fmt.Fprintf(out, "%s: appended %q (%d modes, cycle delta %+.0f/op, %s wall overhead %.1f%%)\n",
		path, label, len(entry.Points), worst.CycleDelta, worst.Mode, worst.WallOverhead*100)
	return nil
}

// writeOrderlyPerf runs the model-checker throughput suite (the orderly
// explorer's budgeted deep mode) and appends the labelled entry to the
// trajectory file, creating it when absent.
func writeOrderlyPerf(opts bench.Options, path, label string, out io.Writer) error {
	entry, err := bench.OrderlyPerf(opts, label)
	if err != nil {
		return err
	}
	var file bench.OrderlyPerfFile
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// First record: start a fresh trajectory.
	default:
		return err
	}
	file.Schema = bench.OrderlyPerfSchema
	file.Entries = append(file.Entries, *entry)
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	for _, p := range entry.Points {
		fmt.Fprintf(out, "%s: appended %q (%s depth<=%d: %d states, %.0f states/s, %d resets)\n",
			path, label, p.Config, p.MaxDepth, p.States, p.StatesPerSec, p.Resets)
	}
	return nil
}

// speedupAt returns the measured speedup at a goroutine count, or 0.
func speedupAt(e *bench.RMIPerfEntry, goroutines int) float64 {
	for _, p := range e.Scaling {
		if p.Goroutines == goroutines {
			return p.Speedup
		}
	}
	return 0
}
