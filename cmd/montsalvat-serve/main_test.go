package main

import (
	"strings"
	"testing"
)

// TestSmokeMode boots the in-process gateway + load burst: the same
// path CI's serve-smoke target runs, at reduced scale.
func TestSmokeMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-smoke", "-sessions", "4", "-requests", "8"}, &out)
	if err != nil {
		t.Fatalf("run -smoke: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"smoke: OK", "throughput", "latency p99", "handshake failures  0"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestSmokeModeObservability runs the smoke with the introspection
// endpoint up: the run must scrape its own /metrics and /traces and
// find the core families plus a sampled nested-ocall trace.
func TestSmokeModeObservability(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-smoke", "-sessions", "2", "-requests", "8", "-metrics-addr", "127.0.0.1:0"}, &out)
	if err != nil {
		t.Fatalf("run -smoke -metrics-addr: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"telemetry on http://", "nested ocall present", "smoke: OK"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadFlags rejects unknown flags.
func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
