package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/demo"
	"montsalvat/internal/persist"
	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// durableGateway is the crash-smoke fixture: a served KVStore whose
// acked puts are journaled through a persist.Manager, plus the restore
// path Server.Recover drives after the enclave is killed.
type durableGateway struct {
	w      *world.World
	srv    *serve.Server
	kv     *persist.WorldKV
	fs     shim.FS
	secret sgx.PlatformSecret
	ctrs   *sgx.MemCounterStore
	tel    *telemetry.Telemetry
	out    io.Writer

	mu  sync.Mutex
	mgr *persist.Manager
}

func (g *durableGateway) manager() *persist.Manager {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.mgr
}

// openManager builds a Manager over the gateway's durable storage and
// the world's current enclave incarnation.
func (g *durableGateway) openManager() (*persist.Manager, error) {
	ctr, err := sgx.NewMonotonicCounter(g.secret, g.ctrs, "gateway-kv")
	if err != nil {
		return nil, err
	}
	opts := persist.Options{
		FS:           g.fs,
		Enclave:      g.w.Enclave(),
		Secret:       g.secret,
		Counter:      ctr,
		Dir:          "p/",
		BeforeCommit: g.w.Flush,
	}
	if g.tel != nil {
		opts.Telemetry = g.tel.Registry()
	}
	return persist.Open(opts)
}

// newStore creates and pins a fresh KVStore in the current enclave.
func (g *durableGateway) newStore() (wire.Value, error) {
	var ref wire.Value
	err := g.w.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.KVStoreCls)
		if err != nil {
			return err
		}
		ref = v
		return nil
	})
	if err != nil {
		return wire.Value{}, err
	}
	if err := g.w.Untrusted().Pin(ref); err != nil {
		return wire.Value{}, err
	}
	return ref, nil
}

// bootStore wires the persist side up against the current enclave:
// fresh store object, fresh Manager, recover from the untrusted files.
func (g *durableGateway) bootStore() error {
	ref, err := g.newStore()
	if err != nil {
		return err
	}
	g.kv.SetRef(ref)
	m, err := g.openManager()
	if err != nil {
		return err
	}
	if err := m.Register(g.kv); err != nil {
		return err
	}
	rep, err := m.Recover()
	if err != nil {
		return err
	}
	fmt.Fprintf(g.out, "crash-smoke: %s\n", rep)
	g.mu.Lock()
	g.mgr = m
	g.mu.Unlock()
	return nil
}

// restore is the Server.Recover callback: the simulated machine
// restart — enclave teardown, rebuild, re-attestation by the next
// client, durable state recovery.
func (g *durableGateway) restore() error {
	g.w.Kill()
	if err := g.w.Restart(); err != nil {
		return err
	}
	return g.bootStore()
}

// runCrashSmoke boots a durable gateway in-process, writes through
// attested sessions, kills and recovers the enclave twice, and fails
// unless every acked write survives both crashes and new sessions
// re-establish against the recovered gateway.
func runCrashSmoke(out io.Writer, platform *sgx.Platform, sessions, requests int, cfg gatewayConfig) error {
	tel := cfg.newTelemetry()
	w, err := buildWorld(cfg, tel)
	if err != nil {
		return err
	}
	defer w.Close()
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		return err
	}
	g := &durableGateway{
		w:      w,
		fs:     shim.NewMemFS(),
		secret: secret,
		ctrs:   sgx.NewMemCounterStore(),
		tel:    tel,
		out:    out,
	}
	g.kv = persist.NewWorldKV("kv", w)
	if err := g.bootStore(); err != nil {
		return err
	}

	srv, err := serve.New(serve.Options{
		World:       w,
		Platform:    platform,
		MaxInFlight: cfg.maxInflight,
		MaxSessions: cfg.maxSessions,
		Telemetry:   tel,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
		Journal: func(m serve.Mutation) error {
			if m.Op != serve.MutationCall || m.Class != demo.KVStoreCls || m.Method != "put" {
				return nil
			}
			key, _ := m.Args[0].AsStr()
			val, _ := m.Args[1].AsStr()
			_, err := g.manager().Append("kv", persist.OpPut, key, []byte(val))
			return err
		},
	})
	if err != nil {
		return err
	}
	g.srv = srv
	srv.Export("kv", func(env classmodel.Env) (wire.Value, error) {
		ref := g.kv.Ref()
		if ref.IsNull() {
			return wire.Value{}, errors.New("store not initialised")
		}
		return ref, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	client := serve.ClientConfig{Platform: platform, Measurement: srv.Measurement()}
	meas := srv.Measurement()
	fmt.Fprintf(out, "crash-smoke: durable gateway on %s, measurement %x\n", addr, meas[:8])

	acked := map[string]string{}
	writeBurst := func(round int) error {
		for s := 0; s < sessions; s++ {
			c, err := serve.Dial(addr, client)
			if err != nil {
				return fmt.Errorf("round %d session %d: %w", round, s, err)
			}
			h, err := c.Bind("kv")
			if err != nil {
				c.Close()
				return fmt.Errorf("round %d bind: %w", round, err)
			}
			for i := 0; i < requests; i++ {
				k := fmt.Sprintf("r%d:s%d:k%04d", round, s, i)
				v := fmt.Sprintf("v%d-%d-%d", round, s, i)
				if _, err := c.Call(h, "put", wire.Str(k), wire.Str(v)); err != nil {
					c.Close()
					return fmt.Errorf("round %d put: %w", round, err)
				}
				acked[k] = v
			}
			c.Close()
		}
		return nil
	}
	verifyAll := func(stage string) error {
		c, err := serve.Dial(addr, client)
		if err != nil {
			return fmt.Errorf("%s: dial: %w", stage, err)
		}
		defer c.Close()
		h, err := c.Bind("kv")
		if err != nil {
			return fmt.Errorf("%s: bind: %w", stage, err)
		}
		for k, want := range acked {
			v, err := c.Call(h, "get", wire.Str(k))
			if err != nil {
				return fmt.Errorf("%s: get %q: %w", stage, k, err)
			}
			if got, _ := v.AsStr(); got != want {
				return fmt.Errorf("%s: %q = %q, want %q", stage, k, got, want)
			}
		}
		fmt.Fprintf(out, "crash-smoke: %s: all %d acked writes present\n", stage, len(acked))
		return nil
	}
	crash := func(n int) error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return srv.Recover(ctx, func() error {
			// The gateway must reject new sessions with the typed retry
			// signal while the enclave is down.
			if _, dialErr := serve.Dial(addr, client); !errors.Is(dialErr, serve.ErrRecovering) {
				return fmt.Errorf("dial during recovery %d: %v, want ErrRecovering", n, dialErr)
			}
			return g.restore()
		})
	}

	if err := writeBurst(1); err != nil {
		return err
	}
	if err := g.manager().Checkpoint(); err != nil {
		return err
	}
	if err := writeBurst(2); err != nil { // these live only in the WAL tail
		return err
	}
	if err := crash(1); err != nil {
		return fmt.Errorf("first recovery: %w", err)
	}
	if err := verifyAll("after first crash"); err != nil {
		return err
	}
	if err := writeBurst(3); err != nil {
		return err
	}
	if err := crash(2); err != nil {
		return fmt.Errorf("second recovery: %w", err)
	}
	if err := verifyAll("after second crash"); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveDone; err != nil {
		return err
	}
	st := srv.Stats()
	if st.Recoveries != 2 {
		return fmt.Errorf("crash-smoke failed: %d recoveries, want 2", st.Recoveries)
	}
	if st.RejectedRecovering < 2 {
		return fmt.Errorf("crash-smoke failed: %d mid-recovery rejections, want >= 2", st.RejectedRecovering)
	}
	fmt.Fprintf(out, "crash-smoke: %d sessions served, %d recoveries, %d mid-recovery rejections\n",
		st.SessionsTotal, st.Recoveries, st.RejectedRecovering)
	fmt.Fprintln(out, "crash-smoke: OK")
	return nil
}
