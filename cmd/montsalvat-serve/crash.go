package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/smoke"
	"montsalvat/internal/wire"
)

// runCrashSmoke boots a durable gateway in-process (the shared
// smoke.Gateway stack), writes through attested sessions, kills and
// recovers the enclave twice, and fails unless every acked write
// survives both crashes and new sessions re-establish against the
// recovered gateway.
func runCrashSmoke(out io.Writer, platform *sgx.Platform, sessions, requests int, cfg gatewayConfig) error {
	tel := cfg.newTelemetry()
	w, err := buildWorld(cfg, tel)
	if err != nil {
		return err
	}
	defer w.Close()
	g, err := smoke.StartGateway(smoke.GatewayOptions{
		World:       w,
		Platform:    platform,
		MaxInFlight: cfg.maxInflight,
		MaxSessions: cfg.maxSessions,
		Telemetry:   tel,
		Durable:     true,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, "crash-smoke: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	client := g.ClientConfig()
	fmt.Fprintf(out, "crash-smoke: durable gateway on %s, measurement %x\n", g.Addr(), client.Measurement[:8])

	acked := smoke.NewLedger()
	writeBurst := func(round int) error {
		for s := 0; s < sessions; s++ {
			c, err := serve.Dial(g.Addr(), client)
			if err != nil {
				return fmt.Errorf("round %d session %d: %w", round, s, err)
			}
			h, err := c.Bind("kv")
			if err != nil {
				c.Close()
				return fmt.Errorf("round %d bind: %w", round, err)
			}
			for i := 0; i < requests; i++ {
				k := fmt.Sprintf("r%d:s%d:k%04d", round, s, i)
				v := fmt.Sprintf("v%d-%d-%d", round, s, i)
				if _, err := c.Call(h, "put", wire.Str(k), wire.Str(v)); err != nil {
					c.Close()
					return fmt.Errorf("round %d put: %w", round, err)
				}
				acked.Ack(k, v)
			}
			c.Close()
		}
		return nil
	}
	verifyAll := func(stage string) error {
		c, err := serve.Dial(g.Addr(), client)
		if err != nil {
			return fmt.Errorf("%s: dial: %w", stage, err)
		}
		defer c.Close()
		h, err := c.Bind("kv")
		if err != nil {
			return fmt.Errorf("%s: bind: %w", stage, err)
		}
		if err := acked.Verify(func(key string) (string, bool, error) {
			v, err := c.Call(h, "get", wire.Str(key))
			if err != nil {
				return "", false, err
			}
			if v.IsNull() {
				return "", false, nil
			}
			got, _ := v.AsStr()
			return got, true, nil
		}); err != nil {
			return fmt.Errorf("%s: %w", stage, err)
		}
		fmt.Fprintf(out, "crash-smoke: %s: all %d acked writes present\n", stage, acked.Len())
		return nil
	}
	crash := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// CrashRecover's default during step asserts the gateway
		// rejects new sessions with the typed retry signal mid-drain.
		return g.CrashRecover(ctx, nil)
	}

	if err := writeBurst(1); err != nil {
		return err
	}
	if err := g.Manager().Checkpoint(); err != nil {
		return err
	}
	if err := writeBurst(2); err != nil { // these live only in the WAL tail
		return err
	}
	if err := crash(); err != nil {
		return fmt.Errorf("first recovery: %w", err)
	}
	if err := verifyAll("after first crash"); err != nil {
		return err
	}
	if err := writeBurst(3); err != nil {
		return err
	}
	if err := crash(); err != nil {
		return fmt.Errorf("second recovery: %w", err)
	}
	if err := verifyAll("after second crash"); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := g.W.Stats()
	if st.Recoveries != 2 {
		return fmt.Errorf("crash-smoke failed: %d recoveries, want 2", st.Recoveries)
	}
	if st.RejectedRecovering < 2 {
		return fmt.Errorf("crash-smoke failed: %d mid-recovery rejections, want >= 2", st.RejectedRecovering)
	}
	fmt.Fprintf(out, "crash-smoke: %d sessions served, %d recoveries, %d mid-recovery rejections\n",
		st.SessionsTotal, st.Recoveries, st.RejectedRecovering)
	fmt.Fprintln(out, "crash-smoke: OK")
	return nil
}
