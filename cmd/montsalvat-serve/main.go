// Command montsalvat-serve runs the enclave gateway over the secure
// key-value store program (paper §6.7): a partitioned world whose
// trusted KVStore lives on the enclave heap, served to network clients
// over attested, encrypted sessions.
//
// Usage:
//
//	montsalvat-serve                          # serve on :7415
//	montsalvat-serve -addr 127.0.0.1:0        # serve on an ephemeral port
//	montsalvat-serve -load -addr HOST:PORT    # run the load generator
//	montsalvat-serve -smoke                   # in-process server + load burst
//	montsalvat-serve -crash-smoke             # durable gateway kill/recover cycle
//	montsalvat-serve -metrics-addr :9415      # live introspection endpoint
//
// Server and load generator share the simulated attestation platform
// through -attest-seed, and the client derives the expected enclave
// measurement by rebuilding the same program (native image builds are
// deterministic), so a gateway serving a different program fails
// attestation instead of serving.
//
// With -metrics-addr, the gateway exposes /metrics (Prometheus text),
// /traces (sampled boundary-transition spans as JSON), /snapshot and
// /healthz. -trace-sample controls how many boundary-call roots are
// traced; -snapshot-interval logs a periodic JSON metrics snapshot for
// headless runs. In -smoke mode with -metrics-addr, the smoke run also
// scrapes its own endpoint and fails unless the core metric families
// and a sampled cross-boundary trace are present.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"montsalvat/internal/bench"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/orderly"
	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/world"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "montsalvat-serve:", err)
		os.Exit(1)
	}
}

// gatewayConfig carries the server-side knobs from flags to the boot
// helpers.
type gatewayConfig struct {
	maxInflight int
	maxSessions int
	switchless  bool
	batching    bool

	metricsAddr      string
	traceSample      float64
	snapshotInterval time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("montsalvat-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7415", "gateway listen (or -load target) address")
		load       = fs.Bool("load", false, "run the load generator against -addr instead of serving")
		smoke      = fs.Bool("smoke", false, "boot an in-process gateway, run a load burst, verify, exit")
		crashSmoke = fs.Bool("crash-smoke", false, "boot a durable in-process gateway, kill and recover the enclave twice under load, verify, exit")
		orderlyChk = fs.Bool("orderly-check", false, "model-check the world and gateway state machines (bounded exhaustive exploration), exit")
		sessions   = fs.Int("sessions", 8, "load generator: concurrent attested sessions")
		requests   = fs.Int("requests", 64, "load generator: requests per session")
		clients    = fs.Int("clients", 0, "scaling benchmark: boot an in-process gateway, compare 1-client vs N-client throughput, exit")
		attestSeed = fs.String("attest-seed", "montsalvat-serve-demo", "shared attestation platform seed")
		cfg        gatewayConfig
	)
	fs.IntVar(&cfg.maxInflight, "max-inflight", 32, "server: bound on concurrently executing requests")
	fs.IntVar(&cfg.maxSessions, "max-sessions", 64, "server: bound on concurrent sessions")
	fs.BoolVar(&cfg.switchless, "switchless", true, "server: switchless boundary routing")
	fs.BoolVar(&cfg.batching, "batching", true, "server: transition batching")
	fs.StringVar(&cfg.metricsAddr, "metrics-addr", "", "server: telemetry HTTP endpoint address (empty disables)")
	fs.Float64Var(&cfg.traceSample, "trace-sample", 0.01, "server: fraction of boundary-call roots traced (0..1)")
	fs.DurationVar(&cfg.snapshotInterval, "snapshot-interval", 0, "server: periodic metrics snapshot log interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	platform := sgx.NewPlatformFromSeed([]byte(*attestSeed))

	if *clients > 0 {
		return runScale(out, platform, *clients, *requests, cfg)
	}
	if *load {
		return runLoad(out, *addr, platform, *sessions, *requests)
	}
	if *crashSmoke {
		return runCrashSmoke(out, platform, *sessions, *requests, cfg)
	}
	if *orderlyChk {
		return orderly.RunCheck(out, orderly.ServeCheckPasses())
	}
	if *smoke {
		// The observability smoke asserts a sampled trace is present, so
		// unless the operator pinned a rate, trace every call.
		sampleSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "trace-sample" {
				sampleSet = true
			}
		})
		if !sampleSet {
			cfg.traceSample = 1
		}
		return runSmoke(out, platform, *sessions, *requests, cfg)
	}
	return runServer(out, *addr, platform, cfg, nil)
}

// newTelemetry builds the observability bundle for the config, or nil
// when both the endpoint and the snapshot logger are off — the world
// and gateway then run the zero-overhead uninstrumented paths.
func (c gatewayConfig) newTelemetry() *telemetry.Telemetry {
	if c.metricsAddr == "" && c.snapshotInterval <= 0 {
		return nil
	}
	return telemetry.New(telemetry.Options{
		TraceSampleRate: c.traceSample,
		TraceBuffer:     4096,
	})
}

// buildWorld boots the partitioned KV world the gateway serves.
func buildWorld(cfg gatewayConfig, tel *telemetry.Telemetry) (*world.World, error) {
	prog, err := demo.KVProgram()
	if err != nil {
		return nil, err
	}
	opts := world.DefaultOptions()
	opts.Cfg = simcfg.Default()
	opts.Cfg.Switchless = cfg.switchless
	opts.Cfg.Batching = cfg.batching
	opts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(prog, opts)
	if err != nil {
		return nil, err
	}
	w.StartGCHelpers()
	return w, nil
}

// startObservability brings up the introspection endpoint and snapshot
// logger the config asks for. The returned stop function is safe to
// call when nothing was started.
func startObservability(out io.Writer, cfg gatewayConfig, tel *telemetry.Telemetry) (addr string, stop func(), err error) {
	stopLog := tel.StartSnapshotLogger(cfg.snapshotInterval, func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
	})
	if cfg.metricsAddr == "" {
		return "", stopLog, nil
	}
	ms, err := telemetry.Serve(cfg.metricsAddr, tel)
	if err != nil {
		stopLog()
		return "", nil, err
	}
	fmt.Fprintf(out, "telemetry on http://%s/metrics (traces at /traces, sample rate %g)\n",
		ms.Addr(), cfg.traceSample)
	return ms.Addr().String(), func() { stopLog(); _ = ms.Close() }, nil
}

// expectedMeasurement derives the enclave measurement a client must
// demand: it builds the same trusted image (builds are deterministic).
func expectedMeasurement() ([32]byte, error) {
	prog, err := demo.KVProgram()
	if err != nil {
		return [32]byte{}, err
	}
	build, err := core.BuildPartitioned(prog)
	if err != nil {
		return [32]byte{}, err
	}
	return build.TrustedImage.Measurement(), nil
}

// runServer serves until SIGINT/SIGTERM, then drains. ready, when
// non-nil, receives the bound address once listening (used by -smoke
// and tests).
func runServer(out io.Writer, addr string, platform *sgx.Platform, cfg gatewayConfig, ready chan<- string) error {
	tel := cfg.newTelemetry()
	w, err := buildWorld(cfg, tel)
	if err != nil {
		return err
	}
	defer w.Close()
	srv, err := serve.New(serve.Options{
		World:       w,
		Platform:    platform,
		MaxInFlight: cfg.maxInflight,
		MaxSessions: cfg.maxSessions,
		Telemetry:   tel,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	_, stopObs, err := startObservability(out, cfg, tel)
	if err != nil {
		_ = ln.Close()
		return err
	}
	defer stopObs()
	meas := srv.Measurement()
	fmt.Fprintf(out, "enclave gateway serving %q on %s\n", demo.KVStoreCls, ln.Addr())
	fmt.Fprintf(out, "enclave measurement %x\n", meas[:8])
	if ready != nil {
		ready <- ln.Addr().String()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	select {
	case err := <-serveDone:
		return err
	case <-stop:
	}
	fmt.Fprintln(out, "draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}
	printStats(out, srv)
	return nil
}

func runLoad(out io.Writer, addr string, platform *sgx.Platform, sessions, requests int) error {
	meas, err := expectedMeasurement()
	if err != nil {
		return err
	}
	res, err := bench.ServeLoad(bench.ServeLoadOptions{
		Addr:     addr,
		Client:   serve.ClientConfig{Platform: platform, Measurement: meas},
		Sessions: sessions,
		Requests: requests,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.String())
	if res.HandshakeFailures > 0 {
		return fmt.Errorf("%d sessions failed attestation", res.HandshakeFailures)
	}
	return nil
}

// runScale boots a gateway in-process and measures ServeLoad throughput
// at one attested client and at N, reporting the parallel speedup — the
// end-to-end check that concurrent sessions' proxy calls really execute
// in parallel through the worker pool and the sharded crossing engine.
func runScale(out io.Writer, platform *sgx.Platform, clients, requests int, cfg gatewayConfig) error {
	tel := cfg.newTelemetry()
	w, err := buildWorld(cfg, tel)
	if err != nil {
		return err
	}
	defer w.Close()
	srv, err := serve.New(serve.Options{
		World:       w,
		Platform:    platform,
		MaxInFlight: cfg.maxInflight,
		MaxSessions: cfg.maxSessions,
		Telemetry:   tel,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	fmt.Fprintf(out, "scale: gateway on %s, %d requests/client\n", ln.Addr(), requests)

	client := serve.ClientConfig{Platform: platform, Measurement: srv.Measurement()}
	run := func(n int) (bench.ServeLoadResult, error) {
		res, err := bench.ServeLoad(bench.ServeLoadOptions{
			Addr:     ln.Addr().String(),
			Client:   client,
			Sessions: n,
			Requests: requests,
		})
		if err != nil {
			return res, err
		}
		if res.HandshakeFailures > 0 || res.Errors > 0 {
			return res, fmt.Errorf("%d handshake failures, %d request errors at %d clients",
				res.HandshakeFailures, res.Errors, n)
		}
		return res, nil
	}
	solo, err := run(1)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scale:  1 client : %8.0f req/s  p50 %v\n", solo.Throughput, solo.P50.Round(time.Microsecond))
	par, err := run(clients)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scale: %2d clients: %8.0f req/s  p50 %v  speedup %.2fx\n",
		clients, par.Throughput, par.P50.Round(time.Microsecond), par.Throughput/solo.Throughput)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveDone; err != nil {
		return err
	}
	if par.Throughput <= 0 {
		return fmt.Errorf("scale failed: zero parallel throughput at %d clients", clients)
	}
	return nil
}

// runSmoke boots a gateway in-process, fires a load burst at it over
// loopback TCP, drains, and fails on any handshake failure or request
// error — the CI end-to-end check. With -metrics-addr it additionally
// scrapes the introspection endpoint mid-run and asserts the core
// metric families and a sampled cross-boundary trace.
func runSmoke(out io.Writer, platform *sgx.Platform, sessions, requests int, cfg gatewayConfig) error {
	tel := cfg.newTelemetry()
	w, err := buildWorld(cfg, tel)
	if err != nil {
		return err
	}
	defer w.Close()
	srv, err := serve.New(serve.Options{
		World:       w,
		Platform:    platform,
		MaxInFlight: cfg.maxInflight,
		MaxSessions: cfg.maxSessions,
		Telemetry:   tel,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	obsAddr, stopObs, err := startObservability(out, cfg, tel)
	if err != nil {
		_ = ln.Close()
		return err
	}
	defer stopObs()
	meas := srv.Measurement()
	fmt.Fprintf(out, "smoke: gateway on %s, measurement %x\n", ln.Addr(), meas[:8])
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	res, err := bench.ServeLoad(bench.ServeLoadOptions{
		Addr:     ln.Addr().String(),
		Client:   serve.ClientConfig{Platform: platform, Measurement: srv.Measurement()},
		Sessions: sessions,
		Requests: requests,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.String())

	if obsAddr != "" {
		if err := scrapeCheck(out, obsAddr); err != nil {
			return fmt.Errorf("observability smoke: %w", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveDone; err != nil {
		return err
	}
	printStats(out, srv)

	if res.HandshakeFailures > 0 {
		return fmt.Errorf("smoke failed: %d handshake failures", res.HandshakeFailures)
	}
	if res.Errors > 0 {
		return fmt.Errorf("smoke failed: %d request errors", res.Errors)
	}
	want := sessions * requests
	if res.Requests != want {
		return fmt.Errorf("smoke failed: completed %d/%d requests", res.Requests, want)
	}
	st := srv.Stats()
	if st.HandshakeFailures > 0 {
		return fmt.Errorf("smoke failed: server counted %d handshake failures", st.HandshakeFailures)
	}
	if st.PeakInFlight > cfg.maxInflight {
		return fmt.Errorf("smoke failed: peak in-flight %d exceeds bound %d", st.PeakInFlight, cfg.maxInflight)
	}
	fmt.Fprintln(out, "smoke: OK")
	return nil
}

// coreMetrics are the families the observability smoke demands from a
// live scrape: transition routing, latency distribution, GC releases,
// typed admission rejections, enclave transition counts.
var coreMetrics = []string{
	"montsalvat_boundary_calls_total",
	"montsalvat_boundary_dispatch_ns_count",
	"montsalvat_sgx_ecalls_total",
	"montsalvat_sgx_ocalls_total",
	"montsalvat_gc_sweeps_total",
	`montsalvat_serve_rejected_total{reason="overloaded"}`,
	"montsalvat_serve_requests_total",
	"montsalvat_serve_request_ns_count",
}

// scrapeCheck pulls /metrics and /traces off a live endpoint and fails
// unless every core metric family and one sampled cross-boundary trace
// with a nested ocall span are present.
func scrapeCheck(out io.Writer, addr string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for _, name := range coreMetrics {
		if !strings.Contains(text, name) {
			return fmt.Errorf("/metrics missing %s", name)
		}
	}

	resp, err = client.Get("http://" + addr + "/traces")
	if err != nil {
		return err
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var spans []telemetry.Span
	if err := json.Unmarshal(body, &spans); err != nil {
		return fmt.Errorf("/traces: %w", err)
	}
	var nested bool
	for _, sp := range spans {
		if sp.Dir == "ocall" && sp.ParentID != 0 {
			nested = true
			break
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("/traces: no sampled spans")
	}
	if !nested {
		return fmt.Errorf("/traces: no nested ocall span among %d spans", len(spans))
	}
	fmt.Fprintf(out, "smoke: scraped %d metric families' worth of text, %d sampled spans (nested ocall present)\n",
		len(coreMetrics), len(spans))
	return nil
}

func printStats(out io.Writer, srv *serve.Server) {
	st := srv.Stats()
	fmt.Fprintf(out, "gateway: %d sessions served, %d requests, peak in-flight %d\n",
		st.SessionsTotal, st.Requests, st.PeakInFlight)
	fmt.Fprintf(out, "gateway: rejects overload=%d draining=%d deadline=%d foreign=%d session-busy=%d, handshake failures=%d\n",
		st.RejectedOverload, st.RejectedDraining, st.RejectedDeadline, st.RejectedForeign, st.RejectedSessionBusy, st.HandshakeFailures)
	fmt.Fprintf(out, "gateway: %d B in, %d B out\n", st.BytesIn, st.BytesOut)
}
