// Command montsalvat-serve runs the enclave gateway over the secure
// key-value store program (paper §6.7): a partitioned world whose
// trusted KVStore lives on the enclave heap, served to network clients
// over attested, encrypted sessions.
//
// Usage:
//
//	montsalvat-serve                          # serve on :7415
//	montsalvat-serve -addr 127.0.0.1:0        # serve on an ephemeral port
//	montsalvat-serve -load -addr HOST:PORT    # run the load generator
//	montsalvat-serve -smoke                   # in-process server + load burst
//
// Server and load generator share the simulated attestation platform
// through -attest-seed, and the client derives the expected enclave
// measurement by rebuilding the same program (native image builds are
// deterministic), so a gateway serving a different program fails
// attestation instead of serving.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"montsalvat/internal/bench"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/world"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "montsalvat-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("montsalvat-serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7415", "gateway listen (or -load target) address")
		load        = fs.Bool("load", false, "run the load generator against -addr instead of serving")
		smoke       = fs.Bool("smoke", false, "boot an in-process gateway, run a load burst, verify, exit")
		sessions    = fs.Int("sessions", 8, "load generator: concurrent attested sessions")
		requests    = fs.Int("requests", 64, "load generator: requests per session")
		attestSeed  = fs.String("attest-seed", "montsalvat-serve-demo", "shared attestation platform seed")
		maxInflight = fs.Int("max-inflight", 32, "server: bound on concurrently executing requests")
		maxSessions = fs.Int("max-sessions", 64, "server: bound on concurrent sessions")
		switchless  = fs.Bool("switchless", true, "server: switchless boundary routing")
		batching    = fs.Bool("batching", true, "server: transition batching")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	platform := sgx.NewPlatformFromSeed([]byte(*attestSeed))

	if *load {
		return runLoad(out, *addr, platform, *sessions, *requests)
	}
	if *smoke {
		return runSmoke(out, platform, *sessions, *requests, *maxInflight, *maxSessions, *switchless, *batching)
	}
	return runServer(out, *addr, platform, *maxInflight, *maxSessions, *switchless, *batching, nil)
}

// buildWorld boots the partitioned KV world the gateway serves.
func buildWorld(switchless, batching bool) (*world.World, error) {
	prog, err := demo.KVProgram()
	if err != nil {
		return nil, err
	}
	opts := world.DefaultOptions()
	opts.Cfg = simcfg.Default()
	opts.Cfg.Switchless = switchless
	opts.Cfg.Batching = batching
	w, _, err := core.NewPartitionedWorld(prog, opts)
	if err != nil {
		return nil, err
	}
	w.StartGCHelpers()
	return w, nil
}

// expectedMeasurement derives the enclave measurement a client must
// demand: it builds the same trusted image (builds are deterministic).
func expectedMeasurement() ([32]byte, error) {
	prog, err := demo.KVProgram()
	if err != nil {
		return [32]byte{}, err
	}
	build, err := core.BuildPartitioned(prog)
	if err != nil {
		return [32]byte{}, err
	}
	return build.TrustedImage.Measurement(), nil
}

// runServer serves until SIGINT/SIGTERM, then drains. ready, when
// non-nil, receives the bound address once listening (used by -smoke
// and tests).
func runServer(out io.Writer, addr string, platform *sgx.Platform, maxInflight, maxSessions int, switchless, batching bool, ready chan<- string) error {
	w, err := buildWorld(switchless, batching)
	if err != nil {
		return err
	}
	defer w.Close()
	srv, err := serve.New(serve.Options{
		World:       w,
		Platform:    platform,
		MaxInFlight: maxInflight,
		MaxSessions: maxSessions,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	meas := srv.Measurement()
	fmt.Fprintf(out, "enclave gateway serving %q on %s\n", demo.KVStoreCls, ln.Addr())
	fmt.Fprintf(out, "enclave measurement %x\n", meas[:8])
	if ready != nil {
		ready <- ln.Addr().String()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	select {
	case err := <-serveDone:
		return err
	case <-stop:
	}
	fmt.Fprintln(out, "draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}
	printStats(out, srv)
	return nil
}

func runLoad(out io.Writer, addr string, platform *sgx.Platform, sessions, requests int) error {
	meas, err := expectedMeasurement()
	if err != nil {
		return err
	}
	res, err := bench.ServeLoad(bench.ServeLoadOptions{
		Addr:     addr,
		Client:   serve.ClientConfig{Platform: platform, Measurement: meas},
		Sessions: sessions,
		Requests: requests,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.String())
	if res.HandshakeFailures > 0 {
		return fmt.Errorf("%d sessions failed attestation", res.HandshakeFailures)
	}
	return nil
}

// runSmoke boots a gateway in-process, fires a load burst at it over
// loopback TCP, drains, and fails on any handshake failure or request
// error — the CI end-to-end check.
func runSmoke(out io.Writer, platform *sgx.Platform, sessions, requests, maxInflight, maxSessions int, switchless, batching bool) error {
	w, err := buildWorld(switchless, batching)
	if err != nil {
		return err
	}
	defer w.Close()
	srv, err := serve.New(serve.Options{
		World:       w,
		Platform:    platform,
		MaxInFlight: maxInflight,
		MaxSessions: maxSessions,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	meas := srv.Measurement()
	fmt.Fprintf(out, "smoke: gateway on %s, measurement %x\n", ln.Addr(), meas[:8])
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	res, err := bench.ServeLoad(bench.ServeLoadOptions{
		Addr:     ln.Addr().String(),
		Client:   serve.ClientConfig{Platform: platform, Measurement: srv.Measurement()},
		Sessions: sessions,
		Requests: requests,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.String())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveDone; err != nil {
		return err
	}
	printStats(out, srv)

	if res.HandshakeFailures > 0 {
		return fmt.Errorf("smoke failed: %d handshake failures", res.HandshakeFailures)
	}
	if res.Errors > 0 {
		return fmt.Errorf("smoke failed: %d request errors", res.Errors)
	}
	want := sessions * requests
	if res.Requests != want {
		return fmt.Errorf("smoke failed: completed %d/%d requests", res.Requests, want)
	}
	st := srv.Stats()
	if st.HandshakeFailures > 0 {
		return fmt.Errorf("smoke failed: server counted %d handshake failures", st.HandshakeFailures)
	}
	if st.PeakInFlight > maxInflight {
		return fmt.Errorf("smoke failed: peak in-flight %d exceeds bound %d", st.PeakInFlight, maxInflight)
	}
	fmt.Fprintln(out, "smoke: OK")
	return nil
}

func printStats(out io.Writer, srv *serve.Server) {
	st := srv.Stats()
	fmt.Fprintf(out, "gateway: %d sessions served, %d requests, peak in-flight %d\n",
		st.SessionsTotal, st.Requests, st.PeakInFlight)
	fmt.Fprintf(out, "gateway: rejects overload=%d draining=%d deadline=%d foreign=%d, handshake failures=%d\n",
		st.RejectedOverload, st.RejectedDraining, st.RejectedDeadline, st.RejectedForeign, st.HandshakeFailures)
	fmt.Fprintf(out, "gateway: %d B in, %d B out\n", st.BytesIn, st.BytesOut)
}
