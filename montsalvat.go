// Package montsalvat is a Go reproduction of "Montsalvat: Intel SGX
// Shielding for GraalVM Native Images" (Yuhala et al., Middleware '21).
//
// Montsalvat partitions annotated applications into a trusted part that
// runs inside an (here: simulated) Intel SGX enclave and an untrusted
// part that runs outside, connected by an RMI-like proxy/relay mechanism
// with synchronised garbage collection.
//
// # Quick start
//
//	prog := montsalvat.NewProgram()
//	acct := montsalvat.NewClass("Account", montsalvat.Trusted)
//	// ... declare fields, methods and the untrusted main class ...
//	w, build, err := montsalvat.NewPartitionedWorld(prog, montsalvat.DefaultOptions())
//	if err != nil { ... }
//	defer w.Close()
//	result, err := w.RunMain()
//
// The package re-exports the curated public surface of the internal
// packages: the partitioning language (annotations + program model), the
// build pipeline (transform → native images → SGX application), the
// runtime (worlds, execution environments, statistics), and the
// simulated platform substrates (enclave, filesystem shim).
package montsalvat

import (
	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/heap"
	"montsalvat/internal/image"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// Partitioning language (§5.1): class annotations and the program model.
type (
	// Annotation marks a class @Trusted, @Untrusted or @Neutral.
	Annotation = classmodel.Annotation
	// Program is a closed-world set of classes plus the main entry point.
	Program = classmodel.Program
	// Class is an application class declaration.
	Class = classmodel.Class
	// Field declares a class member field.
	Field = classmodel.Field
	// FieldKind is the storage category of a field.
	FieldKind = classmodel.FieldKind
	// Method declares a class method; Body is its implementation.
	Method = classmodel.Method
	// MethodRef names a method for call edges.
	MethodRef = classmodel.MethodRef
	// Param declares a method parameter.
	Param = classmodel.Param
	// Body is an executable method implementation.
	Body = classmodel.Body
	// Env is the runtime interface available to method bodies.
	Env = classmodel.Env
)

// Annotations.
const (
	Neutral   = classmodel.Neutral
	Trusted   = classmodel.Trusted
	Untrusted = classmodel.Untrusted
)

// Field kinds.
const (
	FieldInt    = classmodel.FieldInt
	FieldFloat  = classmodel.FieldFloat
	FieldBool   = classmodel.FieldBool
	FieldString = classmodel.FieldString
	FieldBytes  = classmodel.FieldBytes
	FieldValue  = classmodel.FieldValue
	FieldRef    = classmodel.FieldRef
)

// Method name conventions.
const (
	// CtorName is the constructor method name ("<init>").
	CtorName = classmodel.CtorName
	// StaticInitName is the build-time static initializer ("<clinit>").
	StaticInitName = classmodel.StaticInitName
	// MainMethodName is the application entry point name.
	MainMethodName = classmodel.MainMethodName
)

// NewProgram creates an empty program.
func NewProgram() *Program { return classmodel.NewProgram() }

// NewClass creates a class with the given annotation.
func NewClass(name string, ann Annotation) *Class { return classmodel.NewClass(name, ann) }

// Values crossing the enclave boundary.
type (
	Value = wire.Value
	// Kind identifies a value's dynamic type (method parameter and
	// return declarations).
	Kind = wire.Kind
)

// Value kinds.
const (
	KindNull   = wire.KindNull
	KindBool   = wire.KindBool
	KindInt    = wire.KindInt
	KindFloat  = wire.KindFloat
	KindString = wire.KindString
	KindBytes  = wire.KindBytes
	KindList   = wire.KindList
	KindMap    = wire.KindMap
	KindRef    = wire.KindRef
)

// Value constructors.
var (
	Null  = wire.Null
	Bool  = wire.Bool
	Int   = wire.Int
	Float = wire.Float
	Str   = wire.Str
	Bytes = wire.Bytes
	List  = wire.List
	Ref   = wire.Ref
)

// Build pipeline (§5.2-§5.4).
type (
	// BuildResult carries the transformation output and the two images.
	BuildResult = core.BuildResult
	// Image is one built native image.
	Image = image.Image
	// TCB summarises the trusted computing base of a build.
	TCB = core.TCB
)

// BuildPartitioned runs annotation validation, bytecode transformation
// and native-image partitioning without starting a world.
func BuildPartitioned(prog *Program) (*BuildResult, error) {
	return core.BuildPartitioned(prog)
}

// Runtime (§5.4-§5.6).
type (
	// World hosts a running (possibly partitioned) application.
	World = world.World
	// Options configures a World.
	Options = world.Options
	// Mode is the deployment configuration.
	Mode = world.Mode
	// Stats aggregates runtime statistics.
	Stats = world.Stats
	// HeapConfig sizes an isolate heap.
	HeapConfig = heap.Config
	// PlatformConfig carries the simulated SGX platform parameters.
	PlatformConfig = simcfg.Config
	// FS is the filesystem surface available to applications.
	FS = shim.FS
)

// Deployment modes.
const (
	ModePartitioned      = world.ModePartitioned
	ModeUnpartitionedSGX = world.ModeUnpartitionedSGX
	ModeNoSGX            = world.ModeNoSGX
)

// DefaultOptions returns options with the paper's platform parameters and
// deterministic (non-spinning) cost accounting.
func DefaultOptions() Options { return world.DefaultOptions() }

// BenchOptions returns options whose simulated costs are charged as real
// busy-wait time, so wall-clock measurements reflect them.
func BenchOptions() Options {
	opts := world.DefaultOptions()
	opts.Cfg = simcfg.ForBench()
	return opts
}

// NewPartitionedWorld runs the full Montsalvat pipeline on an annotated
// program and returns the running world plus the build artefacts.
func NewPartitionedWorld(prog *Program, opts Options) (*World, *BuildResult, error) {
	return core.NewPartitionedWorld(prog, opts)
}

// NewUnpartitionedWorld builds the whole application into a single native
// image running inside the enclave (§5.6) or without SGX.
func NewUnpartitionedWorld(prog *Program, opts Options, inEnclave bool) (*World, *Image, error) {
	w, img, err := core.NewUnpartitionedWorld(prog, opts, inEnclave)
	return w, img, err
}

// NewMemFS returns an in-memory filesystem for hermetic runs.
func NewMemFS() FS { return shim.NewMemFS() }

// NewDirFS returns a filesystem rooted at a host directory.
func NewDirFS(root string) (FS, error) { return shim.NewDirFS(root) }

// Attestation and sealing (§4; SGX SDK facilities).
type (
	// Enclave is the simulated SGX enclave behind a World (World.Enclave).
	Enclave = sgx.Enclave
	// AttestationPlatform issues and verifies enclave quotes.
	AttestationPlatform = sgx.Platform
	// AttestationQuote binds an enclave identity to report data.
	AttestationQuote = sgx.Quote
	// PlatformSecret is the per-machine hardware seal secret.
	PlatformSecret = sgx.PlatformSecret
	// SealPolicy selects the identity sealed data binds to.
	SealPolicy = sgx.SealPolicy
)

// Seal policies.
const (
	// SealToMRENCLAVE binds sealed data to the exact enclave image.
	SealToMRENCLAVE = sgx.SealToMRENCLAVE
	// SealToMRSIGNER binds sealed data to the enclave author.
	SealToMRSIGNER = sgx.SealToMRSIGNER
)

// NewAttestationPlatform creates an attestation platform with a fresh
// attestation key.
func NewAttestationPlatform() (*AttestationPlatform, error) { return sgx.NewPlatform() }

// NewPlatformSecret generates a per-machine seal secret.
func NewPlatformSecret() (PlatformSecret, error) { return sgx.NewPlatformSecret() }
