// Package mee implements the memory-encryption-engine analog of the SGX
// simulation.
//
// On real SGX hardware, all EPC pages in DRAM are encrypted and only
// decrypted by the MEE when loaded into a CPU cache line (paper §2.1). The
// simulator reproduces this with real cryptographic work: every 64-byte
// cache line written to simulated EPC memory is encrypted with AES-CTR
// under a per-enclave key, and authenticated with a keyed tag bound to the
// line address and a version counter (a flat stand-in for the MEE's
// integrity tree). Reads decrypt and verify.
//
// Doing real AES work (rather than only bookkeeping) means memory-bound
// enclave workloads in the benchmarks are genuinely slower than their
// untrusted counterparts, through the same mechanism as on hardware.
package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// LineBytes is the MEE granularity: one CPU cache line.
const LineBytes = 64

// TagBytes is the size of the per-line integrity tag.
const TagBytes = 8

// ErrIntegrity is returned when a line fails integrity verification,
// indicating tampering with (or corruption of) encrypted enclave memory.
var ErrIntegrity = errors.New("mee: integrity verification failed")

// Stats holds cumulative MEE counters. Values are monotonically
// increasing; read them with the accessor on Engine for a consistent copy.
type Stats struct {
	// LinesEncrypted and LinesDecrypted count cache-line operations.
	LinesEncrypted uint64
	LinesDecrypted uint64
	// BytesEncrypted and BytesDecrypted count payload bytes processed.
	BytesEncrypted uint64
	BytesDecrypted uint64
	// IntegrityFailures counts failed verifications.
	IntegrityFailures uint64
}

// Engine encrypts and authenticates cache lines under a per-enclave key.
// It is safe for concurrent use.
type Engine struct {
	block cipher.Block // AES-128, data key
	tagK  cipher.Block // AES-128, tag key

	linesEnc atomic.Uint64
	linesDec atomic.Uint64
	bytesEnc atomic.Uint64
	bytesDec atomic.Uint64
	integErr atomic.Uint64
}

// New creates an Engine with a freshly generated random key, modelling the
// per-boot enclave memory-encryption key derived by the CPU.
func New() (*Engine, error) {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, fmt.Errorf("mee: generate key: %w", err)
	}
	return NewWithKey(key[:])
}

// NewWithKey creates an Engine from a 32-byte key (16 bytes for data
// encryption, 16 for tag derivation). Deterministic keys are useful in
// tests.
func NewWithKey(key []byte) (*Engine, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("mee: key must be 32 bytes, got %d", len(key))
	}
	dataBlock, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, fmt.Errorf("mee: data cipher: %w", err)
	}
	tagBlock, err := aes.NewCipher(key[16:])
	if err != nil {
		return nil, fmt.Errorf("mee: tag cipher: %w", err)
	}
	return &Engine{block: dataBlock, tagK: tagBlock}, nil
}

// Tag is a per-line integrity tag.
type Tag [TagBytes]byte

// EncryptLine encrypts exactly LineBytes from src into dst (which may
// alias src) using a keystream bound to (addr, version), and returns the
// integrity tag for the ciphertext. The version must be incremented by the
// caller on every write to the same address to guarantee keystream
// freshness (the EPC layer does this).
func (e *Engine) EncryptLine(dst, src []byte, addr uint64, version uint64) (Tag, error) {
	if len(src) != LineBytes || len(dst) != LineBytes {
		return Tag{}, fmt.Errorf("mee: line must be %d bytes, got src=%d dst=%d", LineBytes, len(src), len(dst))
	}
	e.xorKeystream(dst, src, addr, version)
	e.linesEnc.Add(1)
	e.bytesEnc.Add(LineBytes)
	return e.tag(dst, addr, version), nil
}

// DecryptLine verifies the tag for the ciphertext in src and decrypts it
// into dst (which may alias src). It returns ErrIntegrity if the tag does
// not match.
func (e *Engine) DecryptLine(dst, src []byte, addr uint64, version uint64, tag Tag) error {
	if len(src) != LineBytes || len(dst) != LineBytes {
		return fmt.Errorf("mee: line must be %d bytes, got src=%d dst=%d", LineBytes, len(src), len(dst))
	}
	if e.tag(src, addr, version) != tag {
		e.integErr.Add(1)
		return fmt.Errorf("%w (addr=%#x version=%d)", ErrIntegrity, addr, version)
	}
	e.xorKeystream(dst, src, addr, version)
	e.linesDec.Add(1)
	e.bytesDec.Add(LineBytes)
	return nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		LinesEncrypted:    e.linesEnc.Load(),
		LinesDecrypted:    e.linesDec.Load(),
		BytesEncrypted:    e.bytesEnc.Load(),
		BytesDecrypted:    e.bytesDec.Load(),
		IntegrityFailures: e.integErr.Load(),
	}
}

// xorKeystream applies the CTR keystream for (addr, version) to one line.
func (e *Engine) xorKeystream(dst, src []byte, addr uint64, version uint64) {
	var ctr [aes.BlockSize]byte
	var ks [LineBytes]byte
	binary.LittleEndian.PutUint64(ctr[0:8], addr)
	// The top bytes carry the version and block index so that every
	// (addr, version, block) triple yields a unique counter block.
	for blk := 0; blk < LineBytes/aes.BlockSize; blk++ {
		binary.LittleEndian.PutUint64(ctr[8:16], version<<8|uint64(blk))
		e.block.Encrypt(ks[blk*aes.BlockSize:(blk+1)*aes.BlockSize], ctr[:])
	}
	for i := 0; i < LineBytes; i++ {
		dst[i] = src[i] ^ ks[i]
	}
}

// tag computes the keyed integrity tag for one ciphertext line: an AES
// encryption (under the tag key) of the XOR-folded ciphertext mixed with
// the line address and version — a Carter-Wegman-style MAC that is cheap
// (one block op) yet binds content, location and freshness.
func (e *Engine) tag(ct []byte, addr uint64, version uint64) Tag {
	var fold [aes.BlockSize]byte
	for i, b := range ct {
		fold[i%aes.BlockSize] ^= b
	}
	// Mix in position and freshness.
	binary.LittleEndian.PutUint64(fold[0:8], binary.LittleEndian.Uint64(fold[0:8])^addr)
	binary.LittleEndian.PutUint64(fold[8:16], binary.LittleEndian.Uint64(fold[8:16])^version)
	var out [aes.BlockSize]byte
	e.tagK.Encrypt(out[:], fold[:])
	var t Tag
	copy(t[:], out[:TagBytes])
	return t
}
