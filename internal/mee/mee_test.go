package mee

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	e, err := NewWithKey(key)
	if err != nil {
		t.Fatalf("NewWithKey: %v", err)
	}
	return e
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineBytes)
	for i := range plain {
		plain[i] = byte(i)
	}
	ct := make([]byte, LineBytes)
	tag, err := e.EncryptLine(ct, plain, 0x1000, 1)
	if err != nil {
		t.Fatalf("EncryptLine: %v", err)
	}
	if bytes.Equal(ct, plain) {
		t.Fatal("ciphertext equals plaintext")
	}
	out := make([]byte, LineBytes)
	if err := e.DecryptLine(out, ct, 0x1000, 1, tag); err != nil {
		t.Fatalf("DecryptLine: %v", err)
	}
	if !bytes.Equal(out, plain) {
		t.Fatalf("round trip mismatch: got %x want %x", out, plain)
	}
}

func TestDecryptDetectsTampering(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineBytes)
	ct := make([]byte, LineBytes)
	tag, err := e.EncryptLine(ct, plain, 64, 3)
	if err != nil {
		t.Fatalf("EncryptLine: %v", err)
	}
	ct[5] ^= 0x80
	out := make([]byte, LineBytes)
	err = e.DecryptLine(out, ct, 64, 3, tag)
	if err == nil {
		t.Fatal("DecryptLine accepted tampered ciphertext")
	}
	if got := e.Stats().IntegrityFailures; got != 1 {
		t.Fatalf("IntegrityFailures = %d, want 1", got)
	}
}

func TestDecryptDetectsReplay(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineBytes)
	plain[0] = 0xaa
	ct := make([]byte, LineBytes)
	oldTag, err := e.EncryptLine(ct, plain, 128, 1)
	if err != nil {
		t.Fatalf("EncryptLine: %v", err)
	}
	oldCT := append([]byte(nil), ct...)

	// Overwrite the same address with fresh data (version bump).
	plain[0] = 0xbb
	if _, err := e.EncryptLine(ct, plain, 128, 2); err != nil {
		t.Fatalf("EncryptLine v2: %v", err)
	}

	// Replaying the stale ciphertext against the current version fails.
	out := make([]byte, LineBytes)
	if err := e.DecryptLine(out, oldCT, 128, 2, oldTag); err == nil {
		t.Fatal("DecryptLine accepted replayed stale line")
	}
}

func TestDecryptDetectsRelocation(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineBytes)
	ct := make([]byte, LineBytes)
	tag, err := e.EncryptLine(ct, plain, 0, 1)
	if err != nil {
		t.Fatalf("EncryptLine: %v", err)
	}
	out := make([]byte, LineBytes)
	if err := e.DecryptLine(out, ct, 64, 1, tag); err == nil {
		t.Fatal("DecryptLine accepted line moved to a different address")
	}
}

func TestEncryptRejectsBadSizes(t *testing.T) {
	e := testEngine(t)
	if _, err := e.EncryptLine(make([]byte, 10), make([]byte, 10), 0, 1); err == nil {
		t.Fatal("EncryptLine accepted short line")
	}
	if err := e.DecryptLine(make([]byte, 10), make([]byte, 10), 0, 1, Tag{}); err == nil {
		t.Fatal("DecryptLine accepted short line")
	}
}

func TestNewWithKeyValidatesLength(t *testing.T) {
	if _, err := NewWithKey(make([]byte, 16)); err == nil {
		t.Fatal("NewWithKey accepted 16-byte key")
	}
}

func TestNewGeneratesDistinctKeys(t *testing.T) {
	e1, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e2, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	plain := make([]byte, LineBytes)
	ct1 := make([]byte, LineBytes)
	ct2 := make([]byte, LineBytes)
	if _, err := e1.EncryptLine(ct1, plain, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.EncryptLine(ct2, plain, 0, 1); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("two fresh engines produced identical ciphertext")
	}
}

func TestStatsCount(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineBytes)
	ct := make([]byte, LineBytes)
	tag, _ := e.EncryptLine(ct, plain, 0, 1)
	out := make([]byte, LineBytes)
	if err := e.DecryptLine(out, ct, 0, 1, tag); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.LinesEncrypted != 1 || s.LinesDecrypted != 1 {
		t.Fatalf("stats = %+v, want 1 enc / 1 dec", s)
	}
	if s.BytesEncrypted != LineBytes || s.BytesDecrypted != LineBytes {
		t.Fatalf("stats bytes = %+v, want %d each", s, LineBytes)
	}
}

// Property: any line round-trips at any (addr, version).
func TestQuickRoundTrip(t *testing.T) {
	e := testEngine(t)
	f := func(data [LineBytes]byte, addr uint64, version uint64) bool {
		ct := make([]byte, LineBytes)
		tag, err := e.EncryptLine(ct, data[:], addr, version)
		if err != nil {
			return false
		}
		out := make([]byte, LineBytes)
		if err := e.DecryptLine(out, ct, addr, version, tag); err != nil {
			return false
		}
		return bytes.Equal(out, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: in-place encryption (dst aliasing src) round-trips.
func TestQuickInPlace(t *testing.T) {
	e := testEngine(t)
	f := func(data [LineBytes]byte, addr uint64, version uint64) bool {
		buf := append([]byte(nil), data[:]...)
		tag, err := e.EncryptLine(buf, buf, addr, version)
		if err != nil {
			return false
		}
		if err := e.DecryptLine(buf, buf, addr, version, tag); err != nil {
			return false
		}
		return bytes.Equal(buf, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
