package jvm

import (
	"testing"

	"montsalvat/internal/specjvm"
)

func TestModelStrings(t *testing.T) {
	tests := []struct {
		m    Model
		want string
	}{
		{NoSGXJVM, "NoSGX+JVM"},
		{NoSGXNI, "NoSGX-NI"},
		{SGXNI, "SGX-NI"},
		{SCONEJVM, "SCONE+JVM"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%+v.String() = %q, want %q", tt.m, got, tt.want)
		}
	}
}

func TestInEnclave(t *testing.T) {
	if NoSGXNI.InEnclave() || NoSGXJVM.InEnclave() {
		t.Fatal("native models claim enclave")
	}
	if !SGXNI.InEnclave() || !SCONEJVM.InEnclave() {
		t.Fatal("enclave models deny enclave")
	}
}

func TestApplyOverheadStructure(t *testing.T) {
	w := specjvm.Work{BytesTouched: 1 << 30, DRAMBytes: 1 << 28, AllocBytes: 1 << 24}
	base := int64(1_000_000_000)

	ni := NoSGXNI.Apply(base, w, 0)
	if ni.Startup != 0 || ni.Interp != 0 || ni.MEE != 0 || ni.Syscalls != 0 {
		t.Fatalf("NoSGX-NI overheads: %+v", ni)
	}
	if ni.GC == 0 {
		t.Fatal("NoSGX-NI has no GC cost")
	}

	jvmNative := NoSGXJVM.Apply(base, w, 0)
	if jvmNative.Startup == 0 || jvmNative.Interp == 0 {
		t.Fatalf("NoSGX+JVM missing JVM overheads: %+v", jvmNative)
	}
	if jvmNative.MEE != 0 {
		t.Fatal("native JVM charged MEE")
	}

	sgxNI := SGXNI.Apply(base, w, 0)
	if sgxNI.MEE == 0 {
		t.Fatal("SGX-NI has no MEE cost")
	}
	if sgxNI.GC <= ni.GC {
		t.Fatal("enclave GC not dearer than native GC")
	}

	scone := SCONEJVM.Apply(base, w, 100)
	if scone.Syscalls == 0 {
		t.Fatal("SCONE has no syscall cost")
	}
	// Heap inflation: the JVM's enclave MEE traffic exceeds the NI's.
	if scone.MEE <= sgxNI.MEE {
		t.Fatalf("JVM heap inflation missing: scone MEE %d <= NI MEE %d", scone.MEE, sgxNI.MEE)
	}
}

func TestOrderingForComputeBoundWork(t *testing.T) {
	// Compute-bound workload (little traffic/allocation): the paper's
	// ordering NoSGX-NI <= SGX-NI <= SCONE+JVM must hold, with
	// NoSGX+JVM between the native and SCONE extremes.
	w := specjvm.Work{BytesTouched: 1 << 24, DRAMBytes: 1 << 20, AllocBytes: 1 << 18}
	base := int64(2_000_000_000)
	totals := map[string]int64{}
	for _, m := range []Model{NoSGXNI, NoSGXJVM, SGXNI, SCONEJVM} {
		totals[m.String()] = m.Apply(base, w, 0).Total()
	}
	if !(totals["NoSGX-NI"] < totals["SGX-NI"]) {
		t.Fatalf("NoSGX-NI %d !< SGX-NI %d", totals["NoSGX-NI"], totals["SGX-NI"])
	}
	if !(totals["SGX-NI"] < totals["SCONE+JVM"]) {
		t.Fatalf("SGX-NI %d !< SCONE+JVM %d", totals["SGX-NI"], totals["SCONE+JVM"])
	}
	if !(totals["NoSGX-NI"] < totals["NoSGX+JVM"]) {
		t.Fatalf("NoSGX-NI %d !< NoSGX+JVM %d", totals["NoSGX-NI"], totals["NoSGX+JVM"])
	}
	if !(totals["NoSGX+JVM"] < totals["SCONE+JVM"]) {
		t.Fatalf("NoSGX+JVM %d !< SCONE+JVM %d", totals["NoSGX+JVM"], totals["SCONE+JVM"])
	}
}

func TestAllocationHeavyWorkFavoursJVM(t *testing.T) {
	// Table 1's Monte-Carlo anomaly: with an allocation-dominated
	// profile, SGX-NI must be SLOWER than SCONE+JVM.
	w := specjvm.Work{BytesTouched: 1 << 25, DRAMBytes: 0, AllocBytes: 800 << 20}
	base := int64(100_000_000)
	ni := SGXNI.Apply(base, w, 0).Total()
	scone := SCONEJVM.Apply(base, w, 0).Total()
	if ni <= scone {
		t.Fatalf("SGX-NI %d <= SCONE+JVM %d; anomaly not reproduced", ni, scone)
	}
}

func TestRunnerProducesResults(t *testing.T) {
	r := NewRunner(0)
	k, err := specjvm.KernelByName("sor")
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(SGXNI, k, 64)
	if res.Kernel != "sor" || res.Size != 64 {
		t.Fatalf("result meta: %+v", res)
	}
	if res.Duration <= 0 || res.WallBase <= 0 {
		t.Fatalf("durations: %+v", res)
	}
	if res.Overheads.Total() <= res.Overheads.Base {
		t.Fatal("SGX model charged no overhead")
	}
	// Default size kicks in for size <= 0.
	res2 := r.Run(NoSGXNI, k, 0)
	if res2.Size != k.DefaultSize {
		t.Fatalf("default size = %d", res2.Size)
	}
}

func TestTable1Shape(t *testing.T) {
	// Run all six kernels at reduced sizes and verify the Table 1
	// qualitative shape: every kernel beats SCONE+JVM under SGX-NI
	// except montecarlo, which loses.
	r := NewRunner(0)
	for _, k := range specjvm.Kernels() {
		size := k.DefaultSize / 4
		ni := r.Run(SGXNI, k, size)
		scone := r.Run(SCONEJVM, k, size)
		gain := float64(scone.Overheads.Total()) / float64(ni.Overheads.Total())
		if k.Name == "montecarlo" {
			if gain >= 1 {
				t.Errorf("%s: gain = %.2f, want < 1 (paper: 0.25)", k.Name, gain)
			}
		} else if gain <= 1 {
			t.Errorf("%s: gain = %.2f, want > 1", k.Name, gain)
		}
	}
}
