// Package jvm models the runtime configurations the paper compares in
// §6.6: GraalVM native images versus a HotSpot JVM, running natively,
// inside a bare enclave, or inside a SCONE container in the enclave.
//
// A Model converts the measured base compute of a workload plus its Work
// profile (memory traffic, allocation) into total simulated cycles by
// charging the documented overheads:
//
//   - JVM runs pay class loading plus an interpretation/JIT compute
//     overhead ("the JVM spends some time for class loading, bytecode
//     interpretation and dynamic compilation; these operations are absent
//     in native images", §6.6);
//   - enclave runs pay MEE cost for the workload's DRAM traffic, with
//     the JVM's heap inflation multiplying that traffic ("the in-enclave
//     JVM increases the number of objects in the enclave heap, which
//     leads to more data exchange between the EPC and CPU", §6.6);
//   - allocation pays GC cost per byte: the native image's serial
//     stop-and-copy collector is far more expensive per allocated byte
//     than HotSpot's generational collectors ([28], the cause of
//     Table 1's Monte-Carlo anomaly), and its copy traffic also crosses
//     the MEE inside an enclave;
//   - SCONE relays system calls asynchronously at a per-call cost.
package jvm

import (
	"fmt"
	"time"

	"montsalvat/internal/simcfg"
	"montsalvat/internal/specjvm"
)

// RuntimeKind selects the language runtime.
type RuntimeKind int

// Runtime kinds.
const (
	// NativeImage is an AOT-compiled GraalVM native image.
	NativeImage RuntimeKind = iota + 1
	// HotSpotJVM is a conventional JVM (class loading + JIT).
	HotSpotJVM
)

func (k RuntimeKind) String() string {
	if k == NativeImage {
		return "native-image"
	}
	return "jvm"
}

// Platform selects where the runtime executes.
type Platform int

// Platforms.
const (
	// Native runs outside any enclave.
	Native Platform = iota + 1
	// SGX runs inside a bare enclave (Montsalvat-style).
	SGX
	// SCONE runs inside an enclave under a SCONE container (libc
	// replacement + asynchronous system calls).
	SCONE
)

func (p Platform) String() string {
	switch p {
	case Native:
		return "native"
	case SGX:
		return "sgx"
	default:
		return "scone"
	}
}

// Model is one runtime configuration.
type Model struct {
	Runtime  RuntimeKind
	Platform Platform
}

// The four configurations of Fig. 12.
var (
	NoSGXJVM = Model{Runtime: HotSpotJVM, Platform: Native}
	NoSGXNI  = Model{Runtime: NativeImage, Platform: Native}
	SGXNI    = Model{Runtime: NativeImage, Platform: SGX}
	SCONEJVM = Model{Runtime: HotSpotJVM, Platform: SCONE}
)

func (m Model) String() string {
	switch m {
	case NoSGXJVM:
		return "NoSGX+JVM"
	case NoSGXNI:
		return "NoSGX-NI"
	case SGXNI:
		return "SGX-NI"
	case SCONEJVM:
		return "SCONE+JVM"
	default:
		return fmt.Sprintf("%s/%s", m.Runtime, m.Platform)
	}
}

// InEnclave reports whether the platform runs inside an enclave.
func (m Model) InEnclave() bool { return m.Platform == SGX || m.Platform == SCONE }

// Overheads breaks total cycles down by cause.
type Overheads struct {
	// Base is the workload's own compute.
	Base int64
	// Startup is class loading / verification (JVM only).
	Startup int64
	// Interp is interpretation/JIT compute overhead (JVM only).
	Interp int64
	// MEE is memory-encryption cost on DRAM traffic (enclave only).
	MEE int64
	// GC is allocation + collection cost.
	GC int64
	// Syscalls is SCONE's asynchronous syscall relay cost.
	Syscalls int64
}

// Total sums all components.
func (o Overheads) Total() int64 {
	return o.Base + o.Startup + o.Interp + o.MEE + o.GC + o.Syscalls
}

// Apply charges the model's overheads for a workload with the given
// measured base compute cycles, work profile and relayed system calls.
func (m Model) Apply(baseCycles int64, w specjvm.Work, syscalls int64) Overheads {
	o := Overheads{Base: baseCycles}

	if m.Runtime == HotSpotJVM {
		o.Startup = simcfg.JVMStartupCycles
		o.Interp = int64(float64(baseCycles) * simcfg.JVMComputeOverhead)
	}

	if m.InEnclave() {
		dram := float64(w.DRAMBytes)
		if m.Runtime == HotSpotJVM {
			dram *= simcfg.JVMHeapInflation
		}
		o.MEE = int64(dram / simcfg.MEEBytesPerCycle)
	}

	switch {
	case m.Runtime == NativeImage && m.InEnclave():
		o.GC = int64(float64(w.AllocBytes) * simcfg.NIAllocEnclaveCyclesPerByte)
	case m.Runtime == NativeImage:
		o.GC = int64(float64(w.AllocBytes) * simcfg.NIAllocCyclesPerByte)
	case m.InEnclave():
		o.GC = int64(float64(w.AllocBytes) * simcfg.JVMAllocEnclaveCyclesPerByte)
	default:
		o.GC = int64(float64(w.AllocBytes) * simcfg.JVMAllocCyclesPerByte)
	}

	if m.Platform == SCONE {
		o.Syscalls = syscalls * simcfg.SCONESyscallCycles
	}
	return o
}

// Measurement is the model-independent base of one kernel run: the
// measured compute plus the work profile. Applying different models to
// the SAME measurement keeps cross-model comparisons free of run-to-run
// measurement noise.
type Measurement struct {
	Kernel   string
	Size     int
	Checksum float64
	// Wall is the measured Go execution time of the kernel itself.
	Wall time.Duration
	// BaseCycles is Wall at the modelled clock.
	BaseCycles int64
	Work       specjvm.Work
}

// Result is one modelled kernel run.
type Result struct {
	Model    Model
	Kernel   string
	Size     int
	Checksum float64
	// WallBase is the measured Go execution time of the kernel itself.
	WallBase time.Duration
	// Overheads is the cycle breakdown; Duration is Overheads.Total()
	// at the modelled clock.
	Overheads Overheads
	Duration  time.Duration
}

// Runner executes kernels under runtime models.
type Runner struct {
	hz float64
}

// NewRunner creates a runner converting wall time to cycles at the
// modelled clock frequency (simcfg.CPUHz when hz <= 0).
func NewRunner(hz float64) *Runner {
	if hz <= 0 {
		hz = simcfg.CPUHz
	}
	return &Runner{hz: hz}
}

// Hz returns the modelled clock frequency.
func (r *Runner) Hz() float64 { return r.hz }

// Measure runs the kernel (taking the fastest of three runs to suppress
// scheduling noise) and returns the model-independent measurement.
func (r *Runner) Measure(k specjvm.Kernel, size int) Measurement {
	if size <= 0 {
		size = k.DefaultSize
	}
	var (
		best time.Duration
		cs   float64
		work specjvm.Work
	)
	for i := 0; i < 3; i++ {
		start := time.Now()
		cs, work = k.Run(size)
		wall := time.Since(start)
		if i == 0 || wall < best {
			best = wall
		}
	}
	return Measurement{
		Kernel:     k.Name,
		Size:       size,
		Checksum:   cs,
		Wall:       best,
		BaseCycles: int64(best.Seconds() * r.hz),
		Work:       work,
	}
}

// ApplyTo charges a model's overheads onto a measurement.
func (r *Runner) ApplyTo(m Model, meas Measurement) Result {
	o := m.Apply(meas.BaseCycles, meas.Work, 0)
	return Result{
		Model:     m,
		Kernel:    meas.Kernel,
		Size:      meas.Size,
		Checksum:  meas.Checksum,
		WallBase:  meas.Wall,
		Overheads: o,
		Duration:  time.Duration(float64(o.Total()) / r.hz * float64(time.Second)),
	}
}

// Run measures a kernel and applies the model in one step.
func (r *Runner) Run(m Model, k specjvm.Kernel, size int) Result {
	return r.ApplyTo(m, r.Measure(k, size))
}
