// Package registry implements the mirror–proxy registry and the weak
// reference list that Montsalvat's GC synchronisation is built on (§5.2,
// §5.5).
//
// Each runtime owns one Registry mapping proxy identity hashes to strong
// handles of the local mirror objects ("code to add the mirror object
// strong reference and associated proxy hash to a global registry, which
// we call the mirror-proxy registry"). Entries are reference counted by
// the number of live proxy instances in the opposite runtime, so that a
// hash exported more than once is only released when the last proxy dies.
//
// Each runtime also owns one WeakList tracking (weak reference, hash)
// pairs for the proxy objects living locally ("When a proxy object is
// created, Montsalvat stores a weak reference and the hash of the former
// in a global list"). The GC helper periodically sweeps the list for
// dead proxies and releases the corresponding mirrors in the opposite
// registry (§5.5).
package registry

import (
	"fmt"
	"sort"
	"sync"

	"montsalvat/internal/heap"
)

// Registry is one runtime's mirror–proxy registry. It is safe for
// concurrent use (the GC helper thread and the mutator both touch it).
type Registry struct {
	mu      sync.Mutex
	heap    *heap.Heap
	entries map[int64]*entry
}

type entry struct {
	handle heap.Handle
	count  int
}

// New creates a registry whose strong references live on h.
func New(h *heap.Heap) *Registry {
	return &Registry{heap: h, entries: make(map[int64]*entry)}
}

// Export records that a proxy instance for hash now exists in the
// opposite runtime, keeping the local mirror object (already referenced
// by handle) strongly reachable. Re-exports of a live hash increment the
// reference count and release the redundant handle.
func (r *Registry) Export(hash int64, handle heap.Handle) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[hash]; ok {
		e.count++
		// The existing strong handle already pins the mirror.
		if err := r.heap.Release(handle); err != nil {
			return fmt.Errorf("registry: release duplicate handle: %w", err)
		}
		return nil
	}
	r.entries[hash] = &entry{handle: handle, count: 1}
	return nil
}

// Resolve returns the strong handle of the mirror for hash.
func (r *Registry) Resolve(hash int64) (heap.Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[hash]
	if !ok {
		return 0, false
	}
	return e.handle, true
}

// Release records the death of one proxy instance for hash. When the
// last instance dies the strong handle is dropped, making the mirror
// "eligible for GC if it is not strongly referenced anywhere else"
// (§5.5). It reports whether the entry was fully removed.
func (r *Registry) Release(hash int64) (removed bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[hash]
	if !ok {
		return false, fmt.Errorf("registry: release of unknown hash %d", hash)
	}
	e.count--
	if e.count > 0 {
		return false, nil
	}
	delete(r.entries, hash)
	if err := r.heap.Release(e.handle); err != nil {
		return true, fmt.Errorf("registry: drop mirror handle: %w", err)
	}
	return true, nil
}

// Size returns the number of registered mirrors (Fig. 5b's
// mirror-objs-in series).
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Hashes returns the registered hashes in ascending order.
func (r *Registry) Hashes() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, 0, len(r.entries))
	for h := range r.entries {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WeakList tracks the proxies living in one runtime via weak references.
// It is safe for concurrent use.
type WeakList struct {
	mu      sync.Mutex
	heap    *heap.Heap
	entries []weakEntry
}

type weakEntry struct {
	weak heap.WeakRef
	hash int64
}

// NewWeakList creates a weak list over h.
func NewWeakList(h *heap.Heap) *WeakList {
	return &WeakList{heap: h}
}

// Track registers a freshly created proxy object.
func (l *WeakList) Track(w heap.WeakRef, hash int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, weakEntry{weak: w, hash: hash})
}

// Len returns the number of tracked (live or not-yet-swept) proxies.
func (l *WeakList) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// LiveHash returns the address of a live proxy for hash, so a runtime can
// reuse a canonical proxy instance instead of duplicating it.
func (l *WeakList) LiveHash(hash int64) (heap.Addr, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if e.hash != hash {
			continue
		}
		addr, ok, err := l.heap.WeakGet(e.weak)
		if err == nil && ok {
			return addr, true
		}
	}
	return 0, false
}

// SweepDead scans for "null referents of weak references" (§5.5):
// entries whose proxy has been collected are removed from the list, their
// weak references released, and their hashes returned so the caller can
// release the mirrors in the opposite runtime's registry.
func (l *WeakList) SweepDead() ([]int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var dead []int64
	kept := l.entries[:0]
	for _, e := range l.entries {
		_, alive, err := l.heap.WeakGet(e.weak)
		if err != nil {
			return nil, fmt.Errorf("registry: sweep: %w", err)
		}
		if alive {
			kept = append(kept, e)
			continue
		}
		dead = append(dead, e.hash)
		if err := l.heap.ReleaseWeak(e.weak); err != nil {
			return nil, fmt.Errorf("registry: sweep: %w", err)
		}
	}
	// Zero the tail so dropped entries do not pin the backing array.
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = weakEntry{}
	}
	l.entries = kept
	return dead, nil
}
