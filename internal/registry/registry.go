// Package registry implements the mirror–proxy registry and the weak
// reference list that Montsalvat's GC synchronisation is built on (§5.2,
// §5.5).
//
// Each runtime owns one Registry mapping proxy identity hashes to strong
// handles of the local mirror objects ("code to add the mirror object
// strong reference and associated proxy hash to a global registry, which
// we call the mirror-proxy registry"). Entries are reference counted by
// the number of live proxy instances in the opposite runtime, so that a
// hash exported more than once is only released when the last proxy dies.
//
// The registry is lock-striped: entries are spread over numShards shards
// keyed by identity hash, each with its own mutex, so concurrently
// crossing goroutines touching different objects do not serialise on one
// lock. Aggregate views (Size, Hashes) fold over the shards at read
// time. Strong-handle drops triggered inside a shard critical section
// (duplicate exports, last-instance releases) are deferred until after
// the shard unlocks and routed through a releaser hook, so a caller may
// guard heap access with its own lock without ever nesting it inside a
// shard lock.
//
// Each runtime also owns one WeakList tracking (weak reference, hash)
// pairs for the proxy objects living locally ("When a proxy object is
// created, Montsalvat stores a weak reference and the hash of the former
// in a global list"). The GC helper periodically sweeps the list for
// dead proxies and releases the corresponding mirrors in the opposite
// registry (§5.5).
package registry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/heap"
	"montsalvat/internal/lockrank"
)

// numShards is the stripe count of a Registry. Identity hashes are
// assigned sequentially by the world, so hash & (numShards-1)
// distributes entries uniformly.
const numShards = 16

// regShard is one stripe: a mutex plus the entries whose hash maps here.
type regShard struct {
	mu      sync.Mutex
	entries map[int64]*entry
}

// Registry is one runtime's mirror–proxy registry. It is safe for
// concurrent use (the GC helper thread and any number of mutators).
type Registry struct {
	heap   *heap.Heap
	shards [numShards]regShard

	// release drops a strong handle once an entry no longer needs it.
	// It always runs outside every shard lock. Defaults to a direct
	// heap release; the world overrides it to take the owning runtime's
	// heap lock first.
	release func(heap.Handle) error

	// waits counts shard-lock acquisitions that found the lock held —
	// the registry's contention telemetry.
	waits atomic.Uint64

	// observe, when set, receives the wall-clock nanoseconds each
	// mutating critical section held its shard lock. Set it before
	// concurrent use.
	observe func(holdNS int64)
}

type entry struct {
	handle heap.Handle
	count  int
}

// New creates a registry whose strong references live on h.
func New(h *heap.Heap) *Registry {
	r := &Registry{heap: h}
	r.release = h.Release
	for i := range r.shards {
		r.shards[i].entries = make(map[int64]*entry)
	}
	return r
}

// SetReleaser replaces the hook that drops strong handles. The hook is
// always invoked outside every shard lock, so it may take the caller's
// heap lock without ordering against the registry. Call before
// concurrent use.
func (r *Registry) SetReleaser(release func(heap.Handle) error) {
	r.release = release
}

// SetHoldObserver installs a callback receiving the held-nanoseconds of
// every mutating shard critical section (lock hold-time telemetry).
// Call before concurrent use; a nil observer disables measurement.
func (r *Registry) SetHoldObserver(observe func(holdNS int64)) {
	r.observe = observe
}

// Waits reports how many shard-lock acquisitions contended.
func (r *Registry) Waits() uint64 { return r.waits.Load() }

func (r *Registry) shard(hash int64) *regShard {
	return &r.shards[uint64(hash)&(numShards-1)]
}

// lock acquires a shard mutex, counting contended acquisitions.
func (r *Registry) lock(s *regShard) {
	if !s.mu.TryLock() {
		r.waits.Add(1)
		s.mu.Lock()
	}
}

func (r *Registry) holdStart() time.Time {
	if r.observe == nil {
		return time.Time{}
	}
	return time.Now()
}

func (r *Registry) holdEnd(t0 time.Time) {
	if r.observe != nil {
		r.observe(time.Since(t0).Nanoseconds())
	}
}

// Export records that a proxy instance for hash now exists in the
// opposite runtime, keeping the local mirror object (already referenced
// by handle) strongly reachable. Re-exports of a live hash increment the
// reference count and release the redundant handle.
func (r *Registry) Export(hash int64, handle heap.Handle) error {
	s := r.shard(hash)
	r.lock(s)
	t0 := r.holdStart()
	var drop heap.Handle
	if e, ok := s.entries[hash]; ok {
		e.count++
		// The existing strong handle already pins the mirror; the
		// redundant one is dropped below, outside the shard lock.
		drop = handle
	} else {
		s.entries[hash] = &entry{handle: handle, count: 1}
	}
	r.holdEnd(t0)
	s.mu.Unlock()
	if drop != 0 {
		if err := r.release(drop); err != nil {
			return fmt.Errorf("registry: release duplicate handle: %w", err)
		}
	}
	return nil
}

// Resolve returns the strong handle of the mirror for hash.
func (r *Registry) Resolve(hash int64) (heap.Handle, bool) {
	s := r.shard(hash)
	r.lock(s)
	e, ok := s.entries[hash]
	var h heap.Handle
	if ok {
		h = e.handle
	}
	s.mu.Unlock()
	return h, ok
}

// Release records the death of one proxy instance for hash. When the
// last instance dies the strong handle is dropped, making the mirror
// "eligible for GC if it is not strongly referenced anywhere else"
// (§5.5). It reports whether the entry was fully removed.
func (r *Registry) Release(hash int64) (removed bool, err error) {
	s := r.shard(hash)
	r.lock(s)
	t0 := r.holdStart()
	e, ok := s.entries[hash]
	var drop heap.Handle
	if ok {
		e.count--
		if e.count <= 0 {
			delete(s.entries, hash)
			drop = e.handle
			removed = true
		}
	}
	r.holdEnd(t0)
	s.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("registry: release of unknown hash %d", hash)
	}
	if drop != 0 {
		if err := r.release(drop); err != nil {
			return true, fmt.Errorf("registry: drop mirror handle: %w", err)
		}
	}
	return removed, nil
}

// Size returns the number of registered mirrors (Fig. 5b's
// mirror-objs-in series), folded over the shards.
func (r *Registry) Size() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Hashes returns the registered hashes in ascending order.
func (r *Registry) Hashes() []int64 {
	var out []int64
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for h := range s.entries {
			out = append(out, h)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WeakList tracks the proxies living in one runtime via weak references.
// Its own mutex guards the entry list, so Track/Len may run from any
// goroutine; LiveHash and SweepDead additionally dereference weak
// references on the runtime's heap, which is not thread-safe — callers
// must hold the lock guarding that heap (the runtime's heap lock) across
// those two calls.
type WeakList struct {
	mu      lockrank.Mutex
	heap    *heap.Heap
	entries []weakEntry
}

type weakEntry struct {
	weak heap.WeakRef
	hash int64
}

// NewWeakList creates a weak list over h.
func NewWeakList(h *heap.Heap) *WeakList {
	l := &WeakList{heap: h}
	l.mu.SetRank(lockrank.RankWorldWeaks, "registry.WeakList.mu")
	return l
}

// Track registers a freshly created proxy object.
func (l *WeakList) Track(w heap.WeakRef, hash int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, weakEntry{weak: w, hash: hash})
}

// Len returns the number of tracked (live or not-yet-swept) proxies.
func (l *WeakList) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// LiveHash returns the address of a live proxy for hash, so a runtime can
// reuse a canonical proxy instance instead of duplicating it. The caller
// must hold the heap's lock.
func (l *WeakList) LiveHash(hash int64) (heap.Addr, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if e.hash != hash {
			continue
		}
		addr, ok, err := l.heap.WeakGet(e.weak)
		if err == nil && ok {
			return addr, true
		}
	}
	return 0, false
}

// SweepDead scans for "null referents of weak references" (§5.5):
// entries whose proxy has been collected are removed from the list, their
// weak references released, and their hashes returned so the caller can
// release the mirrors in the opposite runtime's registry. The caller
// must hold the heap's lock.
func (l *WeakList) SweepDead() ([]int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var dead []int64
	kept := l.entries[:0]
	for _, e := range l.entries {
		_, alive, err := l.heap.WeakGet(e.weak)
		if err != nil {
			return nil, fmt.Errorf("registry: sweep: %w", err)
		}
		if alive {
			kept = append(kept, e)
			continue
		}
		dead = append(dead, e.hash)
		if err := l.heap.ReleaseWeak(e.weak); err != nil {
			return nil, fmt.Errorf("registry: sweep: %w", err)
		}
	}
	// Zero the tail so dropped entries do not pin the backing array.
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = weakEntry{}
	}
	l.entries = kept
	return dead, nil
}
