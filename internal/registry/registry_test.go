package registry

import (
	"testing"

	"montsalvat/internal/heap"
)

func testHeap(t *testing.T) *heap.Heap {
	t.Helper()
	h, err := heap.NewPlain(heap.Config{InitialSemi: 1 << 16, MaxSemi: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func allocHandle(t *testing.T, h *heap.Heap) heap.Handle {
	t.Helper()
	addr, err := h.Alloc(1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := h.NewHandle(addr)
	if err != nil {
		t.Fatal(err)
	}
	return hd
}

func TestExportResolveRelease(t *testing.T) {
	h := testHeap(t)
	r := New(h)
	hd := allocHandle(t, h)
	if err := r.Export(42, hd); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Resolve(42)
	if !ok || got != hd {
		t.Fatalf("Resolve = %v, %v", got, ok)
	}
	if r.Size() != 1 {
		t.Fatalf("Size = %d", r.Size())
	}
	removed, err := r.Release(42)
	if err != nil || !removed {
		t.Fatalf("Release = %v, %v", removed, err)
	}
	if _, ok := r.Resolve(42); ok {
		t.Fatal("resolved released hash")
	}
	if _, err := r.Release(42); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestRefCounting(t *testing.T) {
	h := testHeap(t)
	r := New(h)
	hd1 := allocHandle(t, h)
	if err := r.Export(7, hd1); err != nil {
		t.Fatal(err)
	}
	// Re-export: the duplicate handle is released, count rises to 2.
	hd2 := allocHandle(t, h)
	if err := r.Export(7, hd2); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1 {
		t.Fatalf("Size = %d, want 1", r.Size())
	}
	removed, err := r.Release(7)
	if err != nil || removed {
		t.Fatalf("first release: removed=%v err=%v, want kept", removed, err)
	}
	if _, ok := r.Resolve(7); !ok {
		t.Fatal("entry vanished while count > 0")
	}
	removed, err = r.Release(7)
	if err != nil || !removed {
		t.Fatalf("second release: removed=%v err=%v", removed, err)
	}
}

func TestReleaseFreesMirror(t *testing.T) {
	h := testHeap(t)
	r := New(h)
	addr, err := h.Alloc(1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := h.NewHandle(addr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := h.NewWeak(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Export(1, hd); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, alive, _ := h.WeakGet(w); !alive {
		t.Fatal("registry did not keep mirror alive")
	}
	if _, err := r.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, alive, _ := h.WeakGet(w); alive {
		t.Fatal("mirror survived registry release")
	}
}

func TestHashes(t *testing.T) {
	h := testHeap(t)
	r := New(h)
	for _, hash := range []int64{30, 10, 20} {
		if err := r.Export(hash, allocHandle(t, h)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Hashes()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("Hashes = %v", got)
	}
}

func TestWeakListSweep(t *testing.T) {
	h := testHeap(t)
	l := NewWeakList(h)

	// Proxy A stays referenced; proxy B becomes garbage.
	addrA, _ := h.Alloc(1, 0, 8)
	hdA, _ := h.NewHandle(addrA)
	wA, _ := h.NewWeak(addrA)
	l.Track(wA, 100)

	addrB, _ := h.Alloc(1, 0, 8)
	wB, _ := h.NewWeak(addrB)
	l.Track(wB, 200)

	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	dead, err := l.SweepDead()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != 200 {
		t.Fatalf("dead = %v, want [200]", dead)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after sweep = %d, want 1", l.Len())
	}
	// A second sweep finds nothing new.
	dead, err = l.SweepDead()
	if err != nil || len(dead) != 0 {
		t.Fatalf("second sweep = %v, %v", dead, err)
	}
	_ = hdA
}

func TestLiveHash(t *testing.T) {
	h := testHeap(t)
	l := NewWeakList(h)
	addr, _ := h.Alloc(1, 0, 8)
	hd, _ := h.NewHandle(addr)
	w, _ := h.NewWeak(addr)
	l.Track(w, 5)

	got, ok := l.LiveHash(5)
	if !ok || got != addr {
		t.Fatalf("LiveHash = %v, %v", got, ok)
	}
	if _, ok := l.LiveHash(6); ok {
		t.Fatal("found unknown hash")
	}
	// After the proxy dies, LiveHash misses.
	if err := h.Release(hd); err != nil {
		t.Fatal(err)
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.LiveHash(5); ok {
		t.Fatal("LiveHash returned dead proxy")
	}
}

func TestSweepScalesToManyEntries(t *testing.T) {
	h := testHeap(t)
	l := NewWeakList(h)
	var handles []heap.Handle
	for i := 0; i < 500; i++ {
		addr, err := h.Alloc(1, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		w, err := h.NewWeak(addr)
		if err != nil {
			t.Fatal(err)
		}
		l.Track(w, int64(i))
		if i%2 == 0 {
			hd, err := h.NewHandle(addr)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, hd)
		}
	}
	if err := h.Collect(); err != nil {
		t.Fatal(err)
	}
	dead, err := l.SweepDead()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 250 {
		t.Fatalf("dead = %d, want 250", len(dead))
	}
	if l.Len() != 250 {
		t.Fatalf("Len = %d, want 250", l.Len())
	}
	_ = handles
}
