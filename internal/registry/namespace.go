package registry

import (
	"sync"
)

// Namespace is a session-scoped handle table used by the enclave gateway
// (internal/serve): each network session owns one Namespace mapping
// opaque session-local handles to the (class, identity hash) pairs of the
// world objects the session created. Handles are allocated per session,
// so one client can neither guess nor collide with another client's
// objects — a request carrying a handle its own namespace never issued is
// rejected before it reaches the world. World identity hashes never
// leave the gateway.
//
// A Namespace is safe for concurrent use (one session may pipeline
// requests served by several gateway workers). Lookups dominate the
// request path — every call and release resolves a handle — so reads
// take a shared lock and only Add/Remove/Drain write-lock.
//
// A namespace may carry an origin: the identity of the domain whose
// objects it names — in the distributed fabric, the shard World a
// cross-shard proxy handle was issued by. The origin extends the
// foreign-ref check across shard boundaries: a handle is only
// resolvable through LookupFrom when the caller presents the origin the
// namespace was created for, so a handle can never silently cross from
// one shard's handle space into another's even when the numeric handle
// happens to exist in both.
type Namespace struct {
	origin   string
	mu       sync.RWMutex
	next     int64
	byHandle map[int64]NSEntry
	byHash   map[int64]int64 // identity hash -> handle (canonicalisation)
	drained  bool
}

// NSEntry names one session-owned object.
type NSEntry struct {
	// Handle is the session-local identifier issued to the client.
	Handle int64
	// Class is the object's class name.
	Class string
	// Hash is the world identity hash behind the handle.
	Hash int64
	// Origin is the domain the issuing namespace belongs to ("" for
	// plain session namespaces; a shard identity for fabric peer
	// namespaces).
	Origin string
}

// NewNamespace creates an empty session namespace with no origin.
func NewNamespace() *Namespace {
	return NewNamespaceFor("")
}

// NewNamespaceFor creates an empty namespace owned by origin — the
// shard-tagged variant the fabric peer channels use so cross-shard
// handles stay pinned to the shard that issued them.
func NewNamespaceFor(origin string) *Namespace {
	return &Namespace{
		origin:   origin,
		byHandle: make(map[int64]NSEntry),
		byHash:   make(map[int64]int64),
	}
}

// Origin returns the domain this namespace was created for ("" for
// plain session namespaces).
func (ns *Namespace) Origin() string { return ns.origin }

// Add issues a handle for (class, hash). An object already named by this
// namespace keeps its canonical handle: added reports false and the
// caller must drop whatever duplicate retention it took for the object.
// After Drain the namespace is closed and Add reports added=false with
// handle 0.
func (ns *Namespace) Add(class string, hash int64) (handle int64, added bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.drained {
		return 0, false
	}
	if h, ok := ns.byHash[hash]; ok {
		return h, false
	}
	ns.next++
	h := ns.next
	ns.byHandle[h] = NSEntry{Handle: h, Class: class, Hash: hash}
	ns.byHash[hash] = h
	return h, true
}

// Lookup resolves a handle issued by this namespace.
func (ns *Namespace) Lookup(handle int64) (NSEntry, bool) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	e, ok := ns.byHandle[handle]
	if ok {
		e.Origin = ns.origin
	}
	return e, ok
}

// LookupFrom resolves a handle only when the caller presents the origin
// the namespace was created for. This is the cross-shard foreign-ref
// check: a fabric peer channel resolves handles with its own shard
// identity, so a handle smuggled from another shard's namespace — even
// one whose numeric value happens to be live here — is refused instead
// of silently resolving to an unrelated object.
func (ns *Namespace) LookupFrom(origin string, handle int64) (NSEntry, bool) {
	if origin != ns.origin {
		return NSEntry{}, false
	}
	return ns.Lookup(handle)
}

// Remove forgets a handle, returning its entry so the caller can drop
// the retention it holds for the object.
func (ns *Namespace) Remove(handle int64) (NSEntry, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	e, ok := ns.byHandle[handle]
	if !ok {
		return NSEntry{}, false
	}
	delete(ns.byHandle, handle)
	delete(ns.byHash, e.Hash)
	e.Origin = ns.origin
	return e, true
}

// Len returns the number of live handles.
func (ns *Namespace) Len() int {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return len(ns.byHandle)
}

// Drain empties the namespace and closes it against further Adds,
// returning every live entry so session teardown can release the
// session's objects through the GC-release path exactly once.
func (ns *Namespace) Drain() []NSEntry {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]NSEntry, 0, len(ns.byHandle))
	for _, e := range ns.byHandle {
		e.Origin = ns.origin
		out = append(out, e)
	}
	ns.byHandle = make(map[int64]NSEntry)
	ns.byHash = make(map[int64]int64)
	ns.drained = true
	return out
}
