package registry

import (
	"sync"
	"testing"
)

func TestNamespaceAddLookupRemove(t *testing.T) {
	ns := NewNamespace()
	h1, added := ns.Add("KVStore", 101)
	if !added || h1 == 0 {
		t.Fatalf("Add = (%d, %v), want fresh handle", h1, added)
	}
	h2, added := ns.Add("Entry", 202)
	if !added || h2 == h1 {
		t.Fatalf("second Add = (%d, %v)", h2, added)
	}
	e, ok := ns.Lookup(h1)
	if !ok || e.Class != "KVStore" || e.Hash != 101 || e.Handle != h1 {
		t.Fatalf("Lookup(%d) = %+v, %v", h1, e, ok)
	}
	if _, ok := ns.Lookup(h1 + 1000); ok {
		t.Fatal("lookup of never-issued handle succeeded")
	}
	if ns.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ns.Len())
	}
	re, ok := ns.Remove(h1)
	if !ok || re.Hash != 101 {
		t.Fatalf("Remove = %+v, %v", re, ok)
	}
	if _, ok := ns.Lookup(h1); ok {
		t.Fatal("removed handle still resolves")
	}
	if _, ok := ns.Remove(h1); ok {
		t.Fatal("double remove succeeded")
	}
}

// TestNamespaceCanonicalises: adding the same hash twice keeps one
// handle, so teardown releases each object exactly once.
func TestNamespaceCanonicalises(t *testing.T) {
	ns := NewNamespace()
	h1, added := ns.Add("KVStore", 7)
	if !added {
		t.Fatal("first add not fresh")
	}
	h2, added := ns.Add("KVStore", 7)
	if added || h2 != h1 {
		t.Fatalf("duplicate add = (%d, %v), want (%d, false)", h2, added, h1)
	}
	if ns.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ns.Len())
	}
	// After removal the hash can be renamed.
	ns.Remove(h1)
	h3, added := ns.Add("KVStore", 7)
	if !added || h3 == h1 {
		t.Fatalf("re-add = (%d, %v)", h3, added)
	}
}

func TestNamespaceDrainCloses(t *testing.T) {
	ns := NewNamespace()
	ns.Add("A", 1)
	ns.Add("B", 2)
	entries := ns.Drain()
	if len(entries) != 2 {
		t.Fatalf("Drain returned %d entries, want 2", len(entries))
	}
	if ns.Len() != 0 {
		t.Fatalf("Len after drain = %d", ns.Len())
	}
	if h, added := ns.Add("C", 3); added || h != 0 {
		t.Fatalf("Add after drain = (%d, %v), want closed", h, added)
	}
	if again := ns.Drain(); len(again) != 0 {
		t.Fatalf("second Drain returned %d entries", len(again))
	}
}

// TestNamespaceOrigin pins the cross-shard foreign-ref check: handles
// only resolve through LookupFrom when the caller presents the origin
// the namespace was created for, so a handle from one shard's namespace
// can never silently resolve inside another's.
func TestNamespaceOrigin(t *testing.T) {
	ns := NewNamespaceFor("shard-0")
	if got := ns.Origin(); got != "shard-0" {
		t.Fatalf("Origin = %q, want shard-0", got)
	}
	h, added := ns.Add("KVStore", 42)
	if !added {
		t.Fatal("Add not fresh")
	}
	e, ok := ns.LookupFrom("shard-0", h)
	if !ok || e.Origin != "shard-0" || e.Hash != 42 {
		t.Fatalf("LookupFrom(shard-0) = %+v, %v", e, ok)
	}
	// Same numeric handle presented with another shard's identity — or
	// with no identity at all — must be refused.
	if _, ok := ns.LookupFrom("shard-1", h); ok {
		t.Fatal("handle resolved across shard namespaces")
	}
	if _, ok := ns.LookupFrom("", h); ok {
		t.Fatal("handle resolved without an origin")
	}
	// Plain namespaces keep the old behaviour: empty origin matches.
	plain := NewNamespace()
	ph, _ := plain.Add("KVStore", 7)
	if _, ok := plain.LookupFrom("", ph); !ok {
		t.Fatal("plain namespace refused its own origin")
	}
	if _, ok := plain.LookupFrom("shard-0", ph); ok {
		t.Fatal("plain namespace resolved a shard-tagged lookup")
	}
	// Entries surfaced by Lookup/Remove/Drain carry the origin tag.
	if le, _ := ns.Lookup(h); le.Origin != "shard-0" {
		t.Fatalf("Lookup entry origin = %q", le.Origin)
	}
	re, _ := ns.Remove(h)
	if re.Origin != "shard-0" {
		t.Fatalf("Remove entry origin = %q", re.Origin)
	}
	ns.Add("KVStore", 43)
	for _, de := range ns.Drain() {
		if de.Origin != "shard-0" {
			t.Fatalf("Drain entry origin = %q", de.Origin)
		}
	}
}

// TestNamespaceConcurrent exercises the lock under parallel sessions'
// worth of traffic (race detector is the oracle).
func TestNamespaceConcurrent(t *testing.T) {
	ns := NewNamespace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				hash := int64(g*1000 + i)
				h, _ := ns.Add("C", hash)
				if e, ok := ns.Lookup(h); ok && e.Hash != hash {
					t.Errorf("lookup(%d) = hash %d, want %d", h, e.Hash, hash)
				}
				if i%3 == 0 {
					ns.Remove(h)
				}
			}
		}(g)
	}
	wg.Wait()
	if ns.Len() == 0 {
		t.Fatal("expected surviving handles")
	}
}

// BenchmarkNamespaceLookupParallel guards the RWMutex read path: session
// request dispatch does a Lookup per call, so read-mostly traffic from
// many goroutines must not serialise on the namespace. A regression back
// to an exclusive lock shows up here as a collapse in parallel ops/s.
func BenchmarkNamespaceLookupParallel(b *testing.B) {
	ns := NewNamespace()
	handles := make([]int64, 1024)
	for i := range handles {
		h, _ := ns.Add("C", int64(i))
		handles[i] = h
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h := handles[i&(len(handles)-1)]
			if _, ok := ns.Lookup(h); !ok {
				b.Fatal("lost handle")
			}
			i++
		}
	})
}

// BenchmarkNamespaceMixed is the same traffic with a 1/64 write mix —
// the realistic session profile (mostly calls, occasional export).
func BenchmarkNamespaceMixed(b *testing.B) {
	ns := NewNamespace()
	handles := make([]int64, 1024)
	for i := range handles {
		h, _ := ns.Add("C", int64(i))
		handles[i] = h
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%64 == 0 {
				h, _ := ns.Add("C", int64(100000+i))
				ns.Remove(h)
			} else {
				ns.Lookup(handles[i&(len(handles)-1)])
			}
			i++
		}
	})
}
