// Package simcfg centralises every calibrated constant of the Montsalvat
// simulation. Each constant is annotated with the paper value (or cited
// source) it is derived from, so the provenance of the cost model is
// auditable in one place.
//
// Two kinds of cost exist in the simulation:
//
//   - transition costs (ecall/ocall), charged in CPU cycles;
//   - memory-traffic costs (MEE encryption/decryption, EPC paging), charged
//     per byte moved in or out of the enclave page cache.
//
// Tests use the deterministic virtual clock (no spinning); benchmarks spin
// so that wall-clock time reflects the charged cycles.
package simcfg

import "time"

// CPU and SGX platform constants, from the paper's experimental setup
// (§6.1: quad-core Intel Xeon E3-1270 @ 3.80 GHz, EPC 128 MB of which
// 93.5 MB usable) and §2.1 (transitions cost up to 13,100 cycles).
const (
	// CPUHz is the modelled clock frequency (§6.1: 3.80 GHz).
	CPUHz = 3.8e9

	// CacheLineBytes is the MEE encryption granularity: the MEE
	// encrypts/decrypts EPC data at CPU cache-line granularity (§2.1).
	CacheLineBytes = 64

	// PageBytes is the EPC page size used by the SGX paging mechanism.
	PageBytes = 4096

	// DefaultEPCBytes is the usable EPC size (§6.1: 93.5 MB usable
	// by enclaves on the evaluation machine).
	DefaultEPCBytes = 93*1024*1024 + 512*1024

	// EcallCycles is the cost of entering an enclave. §2.1 (citing
	// sgx-perf [55] and Plinius [59]): "These calls induce costly context
	// switches that last up to 13,100 CPU cycles".
	EcallCycles = 13100

	// OcallCycles is the cost of exiting an enclave. Ocalls are measured
	// slightly cheaper than ecalls (sgx-perf [55] reports ~8,000-10,000
	// cycles for the exit path).
	OcallCycles = 8600

	// SwitchlessCallCycles models the future-work switchless-call mode
	// (§7, citing [51]): a worker-thread mailbox avoids the context
	// switch, leaving only cross-core cache-coherence latency.
	SwitchlessCallCycles = 1200

	// EPCPageEvictCycles is the cost of evicting one EPC page (EWB):
	// re-encryption with a paging key plus version-tree update. VAULT
	// [50] reports tens of thousands of cycles per page; we charge the
	// crypto work for the page plus this fixed kernel-driver overhead.
	EPCPageEvictCycles = 12000

	// EPCPageLoadCycles is the fixed cost of loading a page back (ELDU).
	EPCPageLoadCycles = 14000

	// MEEBytesPerCycle approximates MEE throughput: on-the-fly AES plus
	// integrity-tree verification sustains roughly 1 byte/cycle extra
	// cost relative to plain DRAM access (HotCalls [56] measures 2-6x
	// slowdown on enclave memory-bound workloads). The simulator also
	// performs real AES-CTR work; this constant is used only by the
	// virtual ledger.
	MEEBytesPerCycle = 1.0

	// Modelled costs of AOT-compiled local operations, charged to the
	// virtual ledger so that virtual time is a complete model: the
	// micro-benchmarks compare these few-cycle operations against
	// multi-thousand-cycle enclave transitions (the paper's 3-4 orders
	// of magnitude, §6.2-§6.3).
	LocalCallCycles   = 12 // compiled call + dispatch
	LocalAllocCycles  = 10 // TLAB-style bump allocation
	FieldAccessCycles = 4  // compiled field load/store

	// Java-serialization cost per value element crossing the boundary
	// (§6.3/Fig. 4b). Reflective serialization of an object costs on the
	// order of 100 ns (~400 cycles); reconstructing it is cheaper.
	// Performing either inside the enclave is several times dearer
	// (MEE-taxed buffer construction) — the asymmetry behind the paper's
	// 10x (in->out) vs 3x (out->in) serialization overheads.
	SerializeCyclesPerValue   = 400
	DeserializeCyclesPerValue = 80
	EnclaveSerializeFactor    = 3.5
)

// Boundary dispatch layer constants (internal/boundary): adaptive
// switchless routing and transition batching on the proxy-call hot path.
const (
	// DefaultSwitchlessWorkers is the resident-worker count per pool
	// direction when Config.SwitchlessWorkers is unset. The SDK default
	// is a small number of workers per direction; two suffice for the
	// evaluation workloads without wasting TCS slots.
	DefaultSwitchlessWorkers = 2

	// SwitchlessCutoffCycles is the adaptive-routing threshold: routines
	// whose moving-average body cost exceeds this keep full transitions,
	// because a resident worker blocked on a long call (GC helper, bulk
	// I/O) starves the mailbox. Set a few times the full round-trip
	// transition cost, so only genuinely long calls are excluded.
	SwitchlessCutoffCycles = 50_000

	// SwitchlessEWMAWeight is the weight of the newest observation in
	// the per-routine exponentially-weighted moving average of body
	// cycles used by the adaptive routing policy.
	SwitchlessEWMAWeight = 0.25

	// DefaultBatchWatermark is the queue depth at which pending
	// result-independent relay calls are flushed in one batched
	// transition when Config.BatchWatermark is unset.
	DefaultBatchWatermark = 32
)

// Zero-copy ring data plane constants (internal/ring): per-worker
// shared-memory SPSC submission/completion rings replacing the
// marshal-copy path. Arguments are encoded straight into an untrusted
// ring slot and sealed in place with AES-GCM, so the per-byte cost is
// one streaming crypto pass instead of an MEE-taxed buffer copy.
const (
	// RingSubmitCycles is the hand-off cost of publishing a submission
	// (or completion) while the other side is actively polling: a
	// cross-core cache-line transfer of the ring indices, well under the
	// switchless mailbox hand-off (HotCalls [56] measures ~600 cycles
	// for a polled shared-memory call; the index bump alone is cheaper).
	RingSubmitCycles = 200

	// RingDoorbellCycles is charged instead of RingSubmitCycles when the
	// resident consumer has gone to sleep and the producer must ring the
	// doorbell — a futex-style wake, the same scale as the switchless
	// mailbox hand-off.
	RingDoorbellCycles = 1200

	// RingCryptoBytesPerCycle is the streaming AES-GCM rate of the
	// in-place slot seal (AES-NI/CLMUL pipelines sustain ~0.5
	// cycles/byte on bulk buffers). It is charged once per direction —
	// encrypt-on-write into the untrusted slot; the trusted-side open
	// is pipelined with the streaming read and not charged separately —
	// versus MEEBytesPerCycle (1 cycle/byte) per marshal copy on the
	// frame path. The simulator also performs real AES-256-GCM work in
	// the slot; this constant is used only by the virtual ledger.
	RingCryptoBytesPerCycle = 2.0

	// DefaultRingWorkers is the number of SPSC rings (each with one
	// resident consumer worker) per direction when Config.RingWorkers is
	// unset — mirroring DefaultSwitchlessWorkers, since trusted-side
	// consumers pin TCS slots just like switchless workers.
	DefaultRingWorkers = 2

	// DefaultRingSlots is the submission-queue depth per ring when
	// Config.RingSlots is unset (io_uring's default SQ depth region).
	DefaultRingSlots = 64

	// DefaultRingSlotBytes is the plaintext payload capacity of one ring
	// slot when Config.RingSlotBytes is unset. Calls whose encoded
	// request exceeds it fall back to the frame path.
	DefaultRingSlotBytes = 64 << 10
)

// JVM / SCONE runtime-model constants. §6.6 attributes the SCONE+JVM
// slowdown to (1) class loading, bytecode interpretation and dynamic
// compilation and (2) the in-enclave JVM inflating the enclave heap,
// causing more MEE traffic; Table 1's Monte-Carlo anomaly is attributed
// to the native image's serial GC losing to HotSpot's collectors [28].
const (
	// JVMStartupCycles is the flat class-loading/verification cost per
	// run (SPECjvm-style runs amortise most JVM startup, so this term is
	// modest).
	JVMStartupCycles = 20_000_000

	// JVMComputeOverhead is the net compute slowdown of the JVM relative
	// to an AOT native image over a benchmark run: interpretation and
	// JIT compilation of the warm-up phase plus residual dynamic-dispatch
	// overhead.
	JVMComputeOverhead = 0.25

	// JVMHeapInflation is the multiplier on DRAM traffic inside the
	// enclave when a full JVM shares the enclave heap with the
	// application ("the in-enclave JVM increases the number of objects in
	// the enclave heap, which leads to more data exchange between the EPC
	// and CPU", §6.6).
	JVMHeapInflation = 2.9

	// SCONESyscallCycles is the cost of one relayed system call through
	// SCONE's asynchronous syscall interface (sgx-perf [55] measures
	// 10k-25k cycles per relayed call under queue contention).
	SCONESyscallCycles = 22000

	// Allocation + garbage-collection cost per allocated byte. The
	// native image embeds a serial stop-and-copy GC (§6.4) that streams
	// the heap on every cycle; HotSpot's generational collectors touch
	// only live young data (TLAB allocation is nearly free), so the
	// native image pays substantially more per allocated byte — the
	// cause of Table 1's Monte-Carlo result (0.25x). Inside an enclave
	// the GC's copy traffic additionally crosses the MEE, quadrupling
	// the native-image cost.
	NIAllocCyclesPerByte         = 1.0
	NIAllocEnclaveCyclesPerByte  = 4.0
	JVMAllocCyclesPerByte        = 0.25
	JVMAllocEnclaveCyclesPerByte = 0.5
)

// Config carries the tunable parameters of one simulated platform.
// The zero value is not valid; use Default.
type Config struct {
	// CPUHz is the modelled core frequency used to convert cycles to time.
	CPUHz float64

	// EcallCycles and OcallCycles are per-transition costs.
	EcallCycles int64
	OcallCycles int64

	// Switchless enables the reduced-cost transition mode (§7 future
	// work); when true both transition directions cost
	// SwitchlessCallCycles, and partitioned worlds start resident
	// switchless worker pools in both directions with the boundary
	// dispatch layer routing short relay calls through them.
	Switchless bool

	// SwitchlessWorkers sizes each resident worker pool when Switchless
	// is set (<=0 means DefaultSwitchlessWorkers).
	SwitchlessWorkers int

	// Batching coalesces result-independent relay calls (void-returning
	// proxy calls, registry releases) into single batched transitions,
	// flushed on result dependency, the watermark, or World.Flush.
	Batching bool

	// BatchWatermark is the pending-call count that triggers a batch
	// flush (<=0 means DefaultBatchWatermark).
	BatchWatermark int

	// Rings enables the zero-copy ring data plane: partitioned worlds
	// start per-worker SPSC submission/completion rings in both
	// directions and the boundary dispatcher routes fitting proxy calls
	// through them, falling back to the frame path when a payload
	// exceeds the slot capacity or every ring producer is busy.
	Rings bool

	// RingWorkers is the ring (and resident consumer) count per
	// direction when Rings is set (<=0 means DefaultRingWorkers).
	RingWorkers int

	// RingSlots is the submission-queue depth per ring (<=0 means
	// DefaultRingSlots).
	RingSlots int

	// RingSlotBytes is the plaintext payload capacity of one slot (<=0
	// means DefaultRingSlotBytes).
	RingSlotBytes int

	// EPCBytes is the usable EPC size; enclave heaps larger than this
	// trigger paging.
	EPCBytes int

	// EnclaveHeapBytes and EnclaveStackBytes bound the enclave (§6.1:
	// 4 GB heap, 8 MB stack). The simulator enforces the heap bound.
	EnclaveHeapBytes  int
	EnclaveStackBytes int

	// Spin selects real busy-wait charging (benchmarks) versus pure
	// virtual accounting (tests).
	Spin bool

	// SleepCharges, together with Spin, charges costs as timer waits
	// instead of busy-waits: stall-dominated costs (transitions, MEE
	// traffic) release the core while they elapse, so concurrently
	// crossing goroutines overlap their charged time. The concurrency
	// benchmarks use it to measure lock scaling on hosts with few cores.
	// Ignored when Spin is false.
	SleepCharges bool

	// GCHelperInterval is the scan period of the GC helper threads
	// (§5.5 "periodically (e.g., every second)"; tests use milliseconds).
	GCHelperInterval time.Duration
}

// Default returns the configuration matching the paper's evaluation
// platform (§6.1).
func Default() Config {
	return Config{
		CPUHz:             CPUHz,
		EcallCycles:       EcallCycles,
		OcallCycles:       OcallCycles,
		EPCBytes:          DefaultEPCBytes,
		EnclaveHeapBytes:  4 << 30,
		EnclaveStackBytes: 8 << 20,
		Spin:              false,
		GCHelperInterval:  time.Second,
	}
}

// ForBench returns a configuration with real busy-wait cost charging and a
// fast GC-helper scan interval suitable for benchmarks.
func ForBench() Config {
	cfg := Default()
	cfg.Spin = true
	cfg.GCHelperInterval = 20 * time.Millisecond
	return cfg
}

// ForTest returns a deterministic configuration with virtual-only cost
// accounting and a fast GC-helper interval.
func ForTest() Config {
	cfg := Default()
	cfg.GCHelperInterval = 2 * time.Millisecond
	return cfg
}

// TransitionCycles returns the cycle cost of a transition entering
// (in=true) or exiting (in=false) the enclave under this configuration.
func (c Config) TransitionCycles(in bool) int64 {
	if c.Switchless {
		return SwitchlessCallCycles
	}
	if in {
		return c.EcallCycles
	}
	return c.OcallCycles
}
