// Package specjvm implements the six SPECjvm2008 micro-benchmarks used in
// the paper's Fig. 12 and Table 1: mpegaudio, fft, monte_carlo, sor, lu
// and sparse.
//
// Five of the kernels are the SciMark 2.0 numerical kernels that
// SPECjvm2008 embeds (scimark.fft, .sor, .monte_carlo, .lu, .sparse); the
// mpegaudio kernel is a polyphase synthesis filterbank plus DCT-32 — the
// dominant computation of MPEG-1 Layer III audio decoding — over
// synthetic PCM data (SPEC's copyrighted audio input is substituted per
// the reproduction rules; see DESIGN.md).
//
// Every kernel performs real computation and returns a checksum (for
// correctness tests) plus a Work profile: the memory traffic and managed
// allocation the equivalent Java workload generates. The profile is what
// the runtime cost models in internal/jvm charge for (MEE traffic for
// bytes touched inside an enclave, GC copy work for allocation).
package specjvm

import (
	"fmt"
	"math"
)

// Work profiles the resource demands of one kernel run.
type Work struct {
	// BytesTouched is the total memory traffic of the kernel: bytes
	// streamed through the CPU cache hierarchy.
	BytesTouched int64
	// DRAMBytes estimates the portion of BytesTouched that reaches DRAM
	// (cache misses). Only this traffic crosses the MEE inside an
	// enclave — cached data is plaintext in the CPU package (§2.1) — so
	// cache-resident kernels (SOR, LU) pay far less enclave tax than
	// streaming kernels (FFT at large sizes).
	DRAMBytes int64
	// AllocBytes is the managed-heap allocation the equivalent Java
	// workload performs (boxed values, temporary objects). It drives
	// the GC-cost terms of the runtime models.
	AllocBytes int64
}

// l3CacheBytes is the last-level cache of the paper's Xeon E3-1270
// (§6.1: 8 MB L3); working sets beyond it stream to DRAM.
const l3CacheBytes = 8 << 20

// Kernel is one micro-benchmark.
type Kernel struct {
	// Name matches the paper's label (mpegaudio, fft, montecarlo, sor,
	// lu, sparse).
	Name string
	// DefaultSize is the problem size of the default workload.
	DefaultSize int
	// Run executes the kernel at the given size and returns a checksum
	// and the work profile. Run must be deterministic for a given size.
	Run func(size int) (float64, Work)
}

// Kernels returns the six benchmarks in the paper's order.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "mpegaudio", DefaultSize: 512, Run: MpegAudio},
		{Name: "fft", DefaultSize: 1 << 19, Run: FFT},
		{Name: "montecarlo", DefaultSize: 2_000_000, Run: MonteCarlo},
		{Name: "sor", DefaultSize: 500, Run: SOR},
		{Name: "lu", DefaultSize: 350, Run: LU},
		{Name: "sparse", DefaultSize: 50_000, Run: Sparse},
	}
}

// KernelByName finds a kernel.
func KernelByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("specjvm: unknown kernel %q", name)
}

// lcg is the deterministic random source shared by the kernels.
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed*6364136223846793005 + 1442695040888963407} }

func (r *lcg) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

// float64 returns a uniform value in [0, 1).
func (r *lcg) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// FFT runs a radix-2 complex FFT (forward + inverse) over size complex
// points and reports the round-trip RMS error scaled into a checksum.
// size must be a power of two.
func FFT(size int) (float64, Work) {
	n := size
	if n < 2 || n&(n-1) != 0 {
		n = 1 << 10
	}
	re := make([]float64, n)
	im := make([]float64, n)
	rng := newLCG(42)
	orig := make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = rng.float64() - 0.5
		orig[i] = re[i]
	}
	fftTransform(re, im, false)
	fftTransform(re, im, true)
	var rms float64
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		d := re[i]*inv - orig[i]
		rms += d * d
	}
	rms = math.Sqrt(rms / float64(n))
	logN := int64(math.Log2(float64(n)))
	touched := 2 * logN * int64(n) * 16 * 2
	// Beyond the L3 the butterfly passes stream to DRAM; below it only
	// the bit-reversal shuffle misses.
	dram := touched / 10
	if int64(n)*24 > l3CacheBytes {
		dram = touched / 2
	}
	return rms + sum(re)*inv, Work{
		// Two transforms, each log2(n) passes over 2 arrays of 8-byte
		// doubles, read+write.
		BytesTouched: touched,
		DRAMBytes:    dram,
		AllocBytes:   int64(n) * 16, // the complex work arrays
	}
}

func fftTransform(re, im []float64, inverse bool) {
	n := len(re)
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			curRe, curIm := 1.0, 0.0
			for j := 0; j < length/2; j++ {
				uRe, uIm := re[i+j], im[i+j]
				vRe := re[i+j+length/2]*curRe - im[i+j+length/2]*curIm
				vIm := re[i+j+length/2]*curIm + im[i+j+length/2]*curRe
				re[i+j], im[i+j] = uRe+vRe, uIm+vIm
				re[i+j+length/2], im[i+j+length/2] = uRe-vRe, uIm-vIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// SOR runs 10 iterations of successive over-relaxation on a size x size
// grid and returns the grid checksum.
func SOR(size int) (float64, Work) {
	const iterations = 10
	const omega = 1.25
	n := size
	if n < 3 {
		n = 3
	}
	g := make([][]float64, n)
	rng := newLCG(7)
	for i := range g {
		g[i] = make([]float64, n)
		for j := range g[i] {
			g[i][j] = rng.float64()
		}
	}
	oneMinus := 1.0 - omega
	for it := 0; it < iterations; it++ {
		for i := 1; i < n-1; i++ {
			gi := g[i]
			gim := g[i-1]
			gip := g[i+1]
			for j := 1; j < n-1; j++ {
				gi[j] = omega*0.25*(gim[j]+gip[j]+gi[j-1]+gi[j+1]) + oneMinus*gi[j]
			}
		}
	}
	var cs float64
	for i := range g {
		cs += sum(g[i])
	}
	gridBytes := int64(n) * int64(n) * 8
	touched := int64(iterations) * gridBytes * 5
	// A cache-resident grid only misses on the initial load; a larger
	// grid streams every iteration.
	dram := 2 * gridBytes
	if gridBytes > l3CacheBytes {
		dram = int64(iterations) * gridBytes * 2
	}
	return cs / float64(n*n), Work{
		BytesTouched: touched,
		DRAMBytes:    dram,
		AllocBytes:   gridBytes,
	}
}

// MonteCarlo estimates pi from size random samples. The Java workload
// allocates a boxed sample per iteration (SciMark's MonteCarlo integrates
// with a synchronized Random and transient objects), so the allocation
// profile is heavy — the cause of the paper's Table 1 anomaly where the
// native image's serial GC loses to HotSpot (0.25x).
func MonteCarlo(size int) (float64, Work) {
	if size < 1 {
		size = 1
	}
	rng := newLCG(1234)
	hits := 0
	for i := 0; i < size; i++ {
		x := rng.float64() - 0.5
		y := rng.float64() - 0.5
		if x*x+y*y <= 0.25 {
			hits++
		}
	}
	pi := 4 * float64(hits) / float64(size)
	return pi, Work{
		BytesTouched: int64(size) * 16,
		DRAMBytes:    0, // the sampler state is register/cache resident
		// Boxed coordinates plus per-iteration Random/iterator garbage
		// in the Java workload: the allocation-heavy profile behind
		// Table 1's anomaly.
		AllocBytes: int64(size) * 96,
	}
}

// LU factorises a size x size matrix with partial pivoting and returns
// the sum of the diagonal of the factorisation.
func LU(size int) (float64, Work) {
	n := size
	if n < 2 {
		n = 2
	}
	a := make([][]float64, n)
	rng := newLCG(99)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.float64() - 0.5
		}
		a[i][i] += float64(n) // diagonally dominant: stable pivots
	}
	piv := make([]int, n)
	for j := 0; j < n; j++ {
		p := j
		for i := j + 1; i < n; i++ {
			if math.Abs(a[i][j]) > math.Abs(a[p][j]) {
				p = i
			}
		}
		piv[j] = p
		a[j], a[p] = a[p], a[j]
		if a[j][j] == 0 {
			continue
		}
		inv := 1.0 / a[j][j]
		for i := j + 1; i < n; i++ {
			a[i][j] *= inv
			f := a[i][j]
			row := a[i]
			base := a[j]
			for k := j + 1; k < n; k++ {
				row[k] -= f * base[k]
			}
		}
	}
	var cs float64
	for i := 0; i < n; i++ {
		cs += a[i][i]
	}
	touched := int64(n) * int64(n) * int64(n) / 3 * 16
	matBytes := int64(n) * int64(n) * 8
	dram := touched / 10
	if matBytes > l3CacheBytes {
		dram = touched / 2
	}
	return cs / float64(n), Work{
		BytesTouched: touched,
		DRAMBytes:    dram,
		AllocBytes:   matBytes + int64(n)*8,
	}
}

// Sparse multiplies a compressed-row sparse matrix (about 5 nonzeros per
// row) with a dense vector for 25 iterations.
func Sparse(size int) (float64, Work) {
	const iterations = 25
	const nzPerRow = 5
	n := size
	if n < 1 {
		n = 1
	}
	nz := n * nzPerRow
	val := make([]float64, nz)
	col := make([]int, nz)
	rowPtr := make([]int, n+1)
	rng := newLCG(555)
	for i := 0; i < n; i++ {
		rowPtr[i] = i * nzPerRow
		for k := 0; k < nzPerRow; k++ {
			idx := i*nzPerRow + k
			val[idx] = rng.float64()
			col[idx] = int(rng.next() % uint64(n))
		}
	}
	rowPtr[n] = nz
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1.0 / float64(i+1)
	}
	for it := 0; it < iterations; it++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				s += val[k] * x[col[k]]
			}
			y[i] = s
		}
		x, y = y, x
	}
	touched := int64(iterations) * int64(nz) * 28 // val + col + x gather + y
	dram := touched * 15 / 100                    // random gathers miss; the rest streams from cache
	if int64(n)*8 > l3CacheBytes {
		dram = touched / 2
	}
	return sum(x) / float64(n), Work{
		BytesTouched: touched,
		DRAMBytes:    dram,
		AllocBytes:   int64(nz)*12 + int64(n)*24,
	}
}

// MpegAudio decodes size frames of synthetic PCM through the dominant
// MPEG-1 Layer III decode computation: a DCT-32 subband analysis followed
// by a 512-tap polyphase synthesis window per frame.
func MpegAudio(frames int) (float64, Work) {
	const (
		subbands   = 32
		granule    = 36 // samples per subband per frame
		windowTaps = 512
	)
	if frames < 1 {
		frames = 1
	}
	window := make([]float64, windowTaps)
	for i := range window {
		// The D[] synthesis window shape (approximated analytically).
		window[i] = math.Sin(math.Pi*float64(i)/float64(windowTaps)) / float64(subbands)
	}
	fifo := make([]float64, windowTaps)
	in := make([]float64, subbands)
	out := make([]float64, subbands)
	rng := newLCG(2021)
	var cs float64
	for f := 0; f < frames; f++ {
		for g := 0; g < granule; g++ {
			for s := 0; s < subbands; s++ {
				in[s] = rng.float64() - 0.5
			}
			dct32(in, out)
			// Shift the synthesis FIFO and apply the window.
			copy(fifo[subbands:], fifo[:windowTaps-subbands])
			copy(fifo[:subbands], out)
			for s := 0; s < subbands; s++ {
				var acc float64
				for t := s; t < windowTaps; t += subbands {
					acc += fifo[t] * window[t]
				}
				cs += acc
			}
		}
	}
	work := int64(frames) * granule * (subbands*subbands*16 + windowTaps*16)
	return cs / float64(frames), Work{
		BytesTouched: work,
		DRAMBytes:    work / 20, // the FIFO and window are cache resident
		AllocBytes:   int64(frames) * granule * subbands * 16,
	}
}

// dct32 computes a 32-point DCT-II directly (the butterfly-optimised
// versions compute the same values).
func dct32(in, out []float64) {
	for k := 0; k < 32; k++ {
		var acc float64
		for n := 0; n < 32; n++ {
			acc += in[n] * math.Cos(math.Pi/32*(float64(n)+0.5)*float64(k))
		}
		out[k] = acc
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
