package specjvm

import (
	"math"
	"testing"
)

func TestKernelsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, k := range Kernels() {
		names[k.Name] = true
	}
	for _, want := range []string{"mpegaudio", "fft", "montecarlo", "sor", "lu", "sparse"} {
		if !names[want] {
			t.Fatalf("kernel %s missing", want)
		}
	}
	if len(names) != 6 {
		t.Fatalf("kernels = %v", names)
	}
}

func TestKernelByName(t *testing.T) {
	k, err := KernelByName("fft")
	if err != nil || k.Name != "fft" {
		t.Fatalf("KernelByName(fft) = %v, %v", k, err)
	}
	if _, err := KernelByName("ghost"); err == nil {
		t.Fatal("found nonexistent kernel")
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			size := k.DefaultSize / 8
			if size < 4 {
				size = 4
			}
			cs1, w1 := k.Run(size)
			cs2, w2 := k.Run(size)
			if cs1 != cs2 {
				t.Fatalf("checksums differ: %v vs %v", cs1, cs2)
			}
			if w1 != w2 {
				t.Fatalf("work profiles differ: %+v vs %+v", w1, w2)
			}
			if w1.BytesTouched <= 0 || w1.AllocBytes <= 0 {
				t.Fatalf("degenerate work profile: %+v", w1)
			}
			if w1.DRAMBytes > w1.BytesTouched {
				t.Fatalf("DRAM traffic exceeds total traffic: %+v", w1)
			}
			if math.IsNaN(cs1) || math.IsInf(cs1, 0) {
				t.Fatalf("checksum = %v", cs1)
			}
		})
	}
}

func TestFFTRoundTripIsAccurate(t *testing.T) {
	// The checksum includes the round-trip RMS error plus a data term;
	// the RMS part must be tiny, so forward+inverse must reconstruct the
	// input. Verify directly.
	n := 1 << 10
	re := make([]float64, n)
	im := make([]float64, n)
	orig := make([]float64, n)
	rng := newLCG(9)
	for i := range re {
		re[i] = rng.float64()
		orig[i] = re[i]
	}
	fftTransform(re, im, false)
	fftTransform(re, im, true)
	for i := range re {
		if math.Abs(re[i]/float64(n)-orig[i]) > 1e-9 {
			t.Fatalf("fft round trip error at %d: %v vs %v", i, re[i]/float64(n), orig[i])
		}
		if math.Abs(im[i]) > 1e-6*float64(n) {
			t.Fatalf("imaginary residue at %d: %v", i, im[i])
		}
	}
}

func TestFFTParsevalEnergy(t *testing.T) {
	// Parseval: sum |x|^2 == (1/N) sum |X|^2.
	n := 1 << 8
	re := make([]float64, n)
	im := make([]float64, n)
	rng := newLCG(3)
	var inputEnergy float64
	for i := range re {
		re[i] = rng.float64() - 0.5
		inputEnergy += re[i] * re[i]
	}
	fftTransform(re, im, false)
	var spectralEnergy float64
	for i := range re {
		spectralEnergy += re[i]*re[i] + im[i]*im[i]
	}
	spectralEnergy /= float64(n)
	if math.Abs(inputEnergy-spectralEnergy) > 1e-8*inputEnergy {
		t.Fatalf("Parseval violated: %v vs %v", inputEnergy, spectralEnergy)
	}
}

func TestMonteCarloConvergesToPi(t *testing.T) {
	pi, _ := MonteCarlo(2_000_000)
	if math.Abs(pi-math.Pi) > 0.01 {
		t.Fatalf("pi estimate = %v", pi)
	}
}

func TestSORConverges(t *testing.T) {
	// SOR smooths the random grid: the checksum (mean) must stay within
	// the initial value range and be finite.
	cs, _ := SOR(64)
	if cs <= 0 || cs >= 1 {
		t.Fatalf("SOR mean = %v, want in (0,1)", cs)
	}
}

func TestLUReconstruction(t *testing.T) {
	// For a diagonally dominant matrix the pivots are all positive and
	// roughly n, so the mean diagonal is near n-ish magnitude. Sanity:
	// finite and positive.
	cs, _ := LU(64)
	if cs <= 0 || math.IsInf(cs, 0) || math.IsNaN(cs) {
		t.Fatalf("LU checksum = %v", cs)
	}
}

func TestSparseProducesFiniteResult(t *testing.T) {
	cs, _ := Sparse(5000)
	if math.IsNaN(cs) || math.IsInf(cs, 0) {
		t.Fatalf("sparse checksum = %v", cs)
	}
}

func TestMpegAudioScalesWithFrames(t *testing.T) {
	_, w1 := MpegAudio(4)
	_, w8 := MpegAudio(8)
	if w8.BytesTouched != 2*w1.BytesTouched {
		t.Fatalf("work does not scale: %d vs %d", w1.BytesTouched, w8.BytesTouched)
	}
}

func TestDegenerateSizes(t *testing.T) {
	// Tiny/invalid sizes must not panic.
	for _, k := range Kernels() {
		if cs, _ := k.Run(1); math.IsNaN(cs) {
			t.Fatalf("%s(1) produced NaN", k.Name)
		}
		if cs, _ := k.Run(0); math.IsNaN(cs) {
			t.Fatalf("%s(0) produced NaN", k.Name)
		}
	}
}

func TestWorkScalesMonotonically(t *testing.T) {
	for _, k := range Kernels() {
		small := k.DefaultSize / 16
		if small < 4 {
			small = 4
		}
		_, ws := k.Run(small)
		_, wl := k.Run(small * 2)
		if wl.BytesTouched <= ws.BytesTouched {
			t.Fatalf("%s: work not monotone: %d -> %d", k.Name, ws.BytesTouched, wl.BytesTouched)
		}
	}
}

// TestLUFactorisationCorrect reconstructs P*A from the in-place L,U
// factors on a small matrix and compares against the original.
func TestLUFactorisationCorrect(t *testing.T) {
	const n = 8
	// Rebuild the same input LU() uses.
	rng := newLCG(99)
	orig := make([][]float64, n)
	for i := range orig {
		orig[i] = make([]float64, n)
		for j := range orig[i] {
			orig[i][j] = rng.float64() - 0.5
		}
		orig[i][i] += float64(n)
	}
	// Re-run the factorisation steps (mirroring LU's algorithm) while
	// tracking the permutation.
	a := make([][]float64, n)
	for i := range a {
		a[i] = append([]float64(nil), orig[i]...)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for j := 0; j < n; j++ {
		p := j
		for i := j + 1; i < n; i++ {
			if math.Abs(a[i][j]) > math.Abs(a[p][j]) {
				p = i
			}
		}
		a[j], a[p] = a[p], a[j]
		perm[j], perm[p] = perm[p], perm[j]
		inv := 1.0 / a[j][j]
		for i := j + 1; i < n; i++ {
			a[i][j] *= inv
			f := a[i][j]
			for k := j + 1; k < n; k++ {
				a[i][k] -= f * a[j][k]
			}
		}
	}
	// Verify L*U == P*orig.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var lu float64
			for k := 0; k <= i && k <= j; k++ {
				l := a[i][k]
				if k == i {
					l = 1
				}
				if k <= j {
					lu += l * a[k][j]
				}
			}
			want := orig[perm[i]][j]
			if math.Abs(lu-want) > 1e-9 {
				t.Fatalf("LU reconstruction (%d,%d): %v != %v", i, j, lu, want)
			}
		}
	}
}
