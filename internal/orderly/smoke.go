package orderly

import (
	"fmt"
	"io"
	"time"
)

// CheckPass is one exploration pass of a smoke schedule. Passes over
// the same Config share one StateSet, so the reported distinct-state
// count is a true union (a deep bounded pass only pays for states the
// exhaustive pass has not already visited).
type CheckPass struct {
	// Label names the pass in the report.
	Label string
	// Config selects the registered system configuration.
	Config string
	// MaxDepth / MinDepth / MaxStates / LockCheck are forwarded to
	// Options (see Explore).
	MaxDepth  int
	MinDepth  int
	MaxStates int
	LockCheck bool
}

// ServeCheckPasses is the gateway-side smoke schedule (-orderly-check
// in montsalvat-serve): an exhaustive depth-6 sweep of the 12-action
// world alphabet, a deep states-bounded pass that pushes the distinct
// state union past the 10k mark, a shallow pass with the lockrank
// shims armed, and a served-gateway pass exercising the session and
// recovery alphabet over real TCP.
func ServeCheckPasses() []CheckPass {
	return []CheckPass{
		{Label: "world exhaustive", Config: "world", MaxDepth: 6},
		{Label: "world deep", Config: "world", MinDepth: 10, MaxDepth: 10, MaxStates: 10500},
		{Label: "world lock-check", Config: "world", MaxDepth: 3, LockCheck: true},
		{Label: "gateway lock-check", Config: "gateway", MaxDepth: 3, LockCheck: true},
	}
}

// FabricCheckPasses is the fabric-side smoke schedule (-orderly-check
// in montsalvat-fabric): the two-shard failover alphabet explored
// exhaustively, plus a lock-check pass.
func FabricCheckPasses() []CheckPass {
	return []CheckPass{
		{Label: "fabric exhaustive", Config: "fabric", MaxDepth: 5},
		{Label: "fabric lock-check", Config: "fabric", MaxDepth: 4, LockCheck: true},
	}
}

// RunCheck executes a smoke schedule, reporting one line per pass and
// a distinct-state total at the end. The first invariant violation
// stops the run: the shrunk trace is printed as a replayable seed and
// the returned error is non-nil. Exploration malfunctions (build
// failures, replay divergence) also fail the run.
func RunCheck(out io.Writer, passes []CheckPass) error {
	sets := map[string]*StateSet{}
	start := time.Now()
	for _, p := range passes {
		build, err := Config(p.Config)
		if err != nil {
			return err
		}
		set := sets[p.Config]
		if set == nil {
			set = NewStateSet()
			sets[p.Config] = set
		}
		res, err := Explore(Options{
			Build:     build,
			MaxDepth:  p.MaxDepth,
			MinDepth:  p.MinDepth,
			MaxStates: p.MaxStates,
			States:    set,
			LockCheck: p.LockCheck,
		})
		if err != nil {
			return fmt.Errorf("orderly-check: %s: %w", p.Label, err)
		}
		bounded := ""
		if res.Bounded {
			bounded = " (bounded)"
		}
		fmt.Fprintf(out, "orderly-check: %-20s depth=%d states=%d transitions=%d resets=%d elapsed=%v%s\n",
			p.Label, p.MaxDepth, res.States, res.Transitions, res.Resets,
			res.Elapsed.Round(time.Millisecond), bounded)
		if v := res.Violation; v != nil {
			fmt.Fprintf(out, "orderly-check: VIOLATION in %s: %v\n", p.Label, v.Err)
			fmt.Fprintf(out, "orderly-check: replay seed: %s\n", FormatSeed(p.Config, v.Trace))
			return fmt.Errorf("orderly-check: %s: %w", p.Label, v.Err)
		}
	}
	distinct := 0
	for _, set := range sets {
		distinct += set.Len()
	}
	fmt.Fprintf(out, "orderly-check: %d distinct states across %d passes in %v: OK\n",
		distinct, len(passes), time.Since(start).Round(time.Millisecond))
	return nil
}
