package orderly

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"montsalvat/internal/demo"
	"montsalvat/internal/serve"
	"montsalvat/internal/sgx"
	"montsalvat/internal/smoke"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// GatewayConfig tunes the gateway system. The zero value is the
// checked production configuration.
type GatewayConfig struct {
	// Break plants a deliberate invariant violation (test-only).
	// BreakSkipDrain makes the recovery action skip the
	// reject-while-draining assertion's enforcement, accepting
	// whatever Dial returns mid-drain.
	Break string
}

// BreakSkipDrain inverts the drain invariant: recovery *requires*
// that a mid-drain Dial succeeds, which the gateway (correctly)
// never allows — so the checker must flag the very first recovery.
const BreakSkipDrain = "skip-drain"

// gwPlatform is the attestation platform every gateway build shares:
// sessions re-attest against the same attestation key across rebuilds.
var gwPlatform = sgx.NewPlatformFromSeed([]byte("orderly-gateway-platform"))

// gatewaySystem drives an attested TCP gateway (internal/serve)
// through the session alphabet: open/close, journaled puts, handle
// minting, cross-session foreign probes, checkpoint, and the full
// kill→drain→recover cycle. The gateway stack itself — world behind a
// loopback listener, journaled durable store, crash/restore plumbing —
// is the shared smoke.Gateway, the same bring-up the command-line
// smoke runs use. Its invariants are the session-namespace isolation
// check (a handle minted by one session must never resolve in
// another's), the drain check (no session admitted while recovery is
// draining), and the acked-durability audit after every recovery.
type gatewaySystem struct {
	cfg GatewayConfig
	wld *world.World
	gw  *smoke.Gateway

	sessions []*serve.Client
	binds    []serve.Handle
	minted   []int64 // handle ID of each session's minted object (0 = none)

	opened     int // sessions ever opened (model)
	recoveries int
	probes     int
	counts     map[string]int
	applied    map[string]string
	acked      map[string]string
}

// GatewayBuilder returns a Builder for the gateway system.
func GatewayBuilder(cfg GatewayConfig) Builder {
	return func() (System, error) {
		w, err := newOrderlyWorld()
		if err != nil {
			return nil, err
		}
		gw, err := smoke.StartGateway(smoke.GatewayOptions{
			World:    w,
			Platform: gwPlatform,
			Durable:  true,
		})
		if err != nil {
			w.Close()
			return nil, err
		}
		return &gatewaySystem{
			cfg:     cfg,
			wld:     w,
			gw:      gw,
			counts:  map[string]int{},
			applied: map[string]string{},
			acked:   map[string]string{},
		}, nil
	}
}

func (g *gatewaySystem) Alphabet() []Action {
	haveSession := func() bool { return len(g.sessions) > 0 }
	return []Action{
		{Name: "session-open", Enabled: func() bool { return len(g.sessions) < 2 }, Apply: g.actOpen},
		{Name: "session-close", Enabled: haveSession, Apply: g.actClose},
		{Name: "call-put", Enabled: haveSession, Apply: g.actPut},
		{Name: "mint", Enabled: func() bool { return len(g.sessions) > 0 && g.minted[len(g.minted)-1] == 0 }, Apply: g.actMint},
		{Name: "foreign-probe", Enabled: g.probeEnabled, Apply: g.actProbe},
		{Name: "checkpoint", Enabled: func() bool { return true }, Apply: g.actCheckpoint},
		{Name: "crash-recover", Enabled: func() bool { return true }, Apply: g.actRecover},
	}
}

func (g *gatewaySystem) actOpen() error {
	c, err := serve.Dial(g.gw.Addr(), g.gw.ClientConfig())
	if err != nil {
		return err
	}
	h, err := c.Bind("kv")
	if err != nil {
		c.Close()
		return err
	}
	g.sessions = append(g.sessions, c)
	g.binds = append(g.binds, h)
	g.minted = append(g.minted, 0)
	g.opened++
	return nil
}

func (g *gatewaySystem) actClose() error {
	last := len(g.sessions) - 1
	g.sessions[last].Close()
	g.sessions = g.sessions[:last]
	g.binds = g.binds[:last]
	g.minted = g.minted[:last]
	// Session teardown runs on the connection goroutine after the
	// client closes; barrier on the gauge so the next action never
	// races the namespace drain and unpin.
	return g.gw.Settle(len(g.sessions))
}

func (g *gatewaySystem) actPut() error {
	last := len(g.sessions) - 1
	g.counts["a"]++
	val := fmt.Sprintf("a#%d", g.counts["a"])
	if _, err := g.sessions[last].Call(g.binds[last], "put", wire.Str("a"), wire.Str(val)); err != nil {
		return err
	}
	g.applied["a"] = val
	g.acked["a"] = val // the Journal hook ran before the call acked
	return nil
}

// actMint creates a fresh session-owned object on the newest session:
// its handle exists in that session's namespace only, which is what
// the foreign probe needs on the other side.
func (g *gatewaySystem) actMint() error {
	last := len(g.sessions) - 1
	h, err := g.sessions[last].New(demo.KVStoreCls)
	if err != nil {
		return err
	}
	g.minted[last] = h.ID
	return nil
}

// probeEnabled: two sessions, the newer one holds a minted handle the
// older one never issued (if the older session minted too, the numeric
// ID may legitimately exist in both namespaces).
func (g *gatewaySystem) probeEnabled() bool {
	return len(g.sessions) == 2 && g.minted[1] != 0 && g.minted[0] == 0
}

// actProbe asserts the session-namespace invariant: presenting
// session 2's minted handle on session 1 must be rejected as a
// foreign ref — never resolved, never executed.
func (g *gatewaySystem) actProbe() error {
	foreign := serve.Handle{Class: demo.KVStoreCls, ID: g.minted[1]}
	_, err := g.sessions[0].Call(foreign, "size")
	g.probes++
	if err == nil {
		return Violated("session-namespace", "foreign handle %d from another session resolved and executed", foreign.ID)
	}
	if !errors.Is(err, serve.ErrForeignRef) {
		return Violated("session-namespace", "foreign handle %d rejected with %v, want ErrForeignRef", foreign.ID, err)
	}
	return nil
}

func (g *gatewaySystem) actCheckpoint() error {
	return g.gw.Manager().Checkpoint()
}

// actRecover runs the full crash cycle through the shared gateway:
// kill the enclave, drain, restore durable state — asserting that new
// sessions are rejected with the typed retry signal mid-drain — then
// audit that every acked write survived into the recovered store
// through a fresh session.
func (g *gatewaySystem) actRecover() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var drainViolation error
	err := g.gw.CrashRecover(ctx, func() error {
		drainErr := g.gw.AssertRecoveringRejected()
		if g.cfg.Break == BreakSkipDrain {
			// Deliberately inverted: demand mid-drain admission.
			if drainErr == nil {
				drainViolation = Violated("recovery-drain", "mid-drain dial rejected (planted inversion)")
			}
		} else if drainErr != nil {
			drainViolation = Violated("recovery-drain", "%v", drainErr)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if drainViolation != nil {
		return drainViolation
	}
	// Recovery invalidated every session and handle.
	for _, c := range g.sessions {
		c.Close()
	}
	g.sessions, g.binds, g.minted = nil, nil, nil
	if err := g.gw.Settle(0); err != nil {
		return err
	}
	g.recoveries++
	// Durability audit through a fresh attested session.
	c, err := serve.Dial(g.gw.Addr(), g.gw.ClientConfig())
	if err != nil {
		return err
	}
	defer c.Close()
	h, err := c.Bind("kv")
	if err != nil {
		return err
	}
	applied := map[string]string{}
	for _, key := range worldKeys {
		v, err := c.Call(h, "get", wire.Str(key))
		if err != nil {
			return err
		}
		if !v.IsNull() {
			got, _ := v.AsStr()
			applied[key] = got
		}
	}
	for key, want := range g.acked {
		if got, ok := applied[key]; !ok || got != want {
			return Violated("acked-durability", "acked write %s=%q recovered as %q (present=%v)", key, want, got, ok)
		}
	}
	g.applied = applied
	g.opened++ // the audit session
	c.Close()
	return g.gw.Settle(0)
}

func (g *gatewaySystem) Hash() uint64 {
	h := fnv.New64a()
	st := g.gw.Manager().Stats()
	fmt.Fprintf(h, "sess=%d opened=%d rec=%d probes=%d lsn=%d ckpt=%d|",
		len(g.sessions), g.opened, g.recoveries, g.probes, st.LastLSN, st.Checkpoints)
	for i, m := range g.minted {
		fmt.Fprintf(h, "mint:%d=%v|", i, m != 0)
	}
	hashStringMap(h, "applied", g.applied)
	hashStringMap(h, "acked", g.acked)
	hashIntMap(h, "counts", g.counts)
	return h.Sum64()
}

func (g *gatewaySystem) Check() error {
	st := g.gw.Manager().Stats()
	if st.Watermark > st.LastLSN {
		return Violated("watermark", "checkpoint watermark %d ahead of last LSN %d", st.Watermark, st.LastLSN)
	}
	ss := g.gw.W.Stats()
	if ss.Sessions != len(g.sessions) {
		return Violated("session-accounting", "gateway reports %d active sessions, model has %d", ss.Sessions, len(g.sessions))
	}
	return nil
}

func (g *gatewaySystem) Close() {
	for _, c := range g.sessions {
		c.Close()
	}
	g.sessions = nil
	if g.gw != nil {
		g.gw.Close()
	}
	if g.wld != nil {
		g.wld.Close()
	}
}
