package orderly

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"montsalvat/internal/lockrank"
)

// Options configures one exploration.
type Options struct {
	// Build constructs the system under test.
	Build Builder
	// MaxDepth is the iterative-deepening target: the explorer runs
	// complete depth-first rounds at depth MinDepth, ..., MaxDepth.
	MaxDepth int
	// MinDepth is the first deepening round (default 1). Setting
	// MinDepth == MaxDepth runs a single direct DFS round — the deep
	// states-bounded passes use it to skip re-exploring the shallow
	// prefix rounds an earlier exhaustive pass already covered.
	MinDepth int
	// States, when set, is a shared distinct-state accumulator:
	// several passes (different depths, lock-check on or off) union
	// their canonical hashes into it, and MaxStates bounds the union.
	States *StateSet
	// MaxStates stops the exploration once this many distinct
	// canonical states have been seen (0 = unbounded).
	MaxStates int
	// Budget bounds wall-clock time (0 = unbounded). The deep bench
	// mode uses it to measure states/sec at a fixed spend.
	Budget time.Duration
	// LockCheck arms the lockrank shims for the duration of the
	// exploration, folding lock-hierarchy inversions into the checked
	// invariants. It taxes every instrumented lock acquisition, so
	// the deepest world sweeps leave it off and a dedicated shallower
	// pass turns it on.
	LockCheck bool
	// Progress, when set, is called after every completed deepening
	// round with the round depth and cumulative distinct states.
	Progress func(depth, states int)
}

// Violation is a falsified invariant with its action trace.
type Violation struct {
	// Trace is the 1-minimal action sequence reproducing the
	// violation (the shrinker's output).
	Trace []string
	// Raw is the trace the explorer originally hit, before shrinking.
	Raw []string
	// Err is the violated invariant.
	Err error
}

// Result summarises one exploration.
type Result struct {
	// States is the number of distinct canonical state hashes seen.
	States int
	// Transitions counts frontier action applications (new edges);
	// Replays counts prefix re-applications paid for backtracking;
	// Resets counts system rebuilds.
	Transitions int64
	Replays     int64
	Resets      int64
	// MaxDepth is the deepest fully completed deepening round.
	MaxDepth int
	// Elapsed is wall-clock exploration time.
	Elapsed time.Duration
	// Bounded reports that MaxStates or Budget stopped the
	// exploration before the depth-MaxDepth round completed.
	Bounded bool
	// Violation is the first falsified invariant, nil when every
	// explored interleaving upheld every invariant.
	Violation *Violation
}

// StatesPerSec is the exploration rate the deep bench mode records.
func (r *Result) StatesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.States) / r.Elapsed.Seconds()
}

// StateSet is a concurrency-safe set of canonical state hashes shared
// across exploration passes.
type StateSet struct {
	mu sync.Mutex
	m  map[uint64]struct{}
}

// NewStateSet returns an empty set.
func NewStateSet() *StateSet {
	return &StateSet{m: make(map[uint64]struct{})}
}

// Add records a canonical hash.
func (s *StateSet) Add(h uint64) {
	s.mu.Lock()
	s.m[h] = struct{}{}
	s.mu.Unlock()
}

// Len reports the number of distinct hashes recorded.
func (s *StateSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// errStop unwinds the DFS when a bound (states, budget) is reached.
var errStop = errors.New("orderly: exploration bound reached")

// violationErr unwinds the DFS carrying the falsified invariant.
type violationErr struct{ v *Violation }

func (e *violationErr) Error() string { return e.v.Err.Error() }

// Explore enumerates every interleaving of the system's enabled
// actions up to MaxDepth, checking invariants after each step. On
// violation the trace is shrunk to a 1-minimal reproduction before
// returning. A non-nil error reports an exploration malfunction
// (build failure, replay divergence), not a violation.
func Explore(opts Options) (*Result, error) {
	if opts.Build == nil {
		return nil, errors.New("orderly: Options.Build is required")
	}
	if opts.MaxDepth <= 0 {
		return nil, errors.New("orderly: Options.MaxDepth must be positive")
	}
	if opts.MinDepth > opts.MaxDepth {
		return nil, errors.New("orderly: Options.MinDepth exceeds MaxDepth")
	}
	if opts.LockCheck {
		defer lockrank.Enable()()
	}
	states := opts.States
	if states == nil {
		states = NewStateSet()
	}
	e := &explorer{
		opts:   opts,
		states: states,
		res:    &Result{},
	}
	if opts.Budget > 0 {
		e.deadline = time.Now().Add(opts.Budget)
	}
	start := time.Now()
	err := e.run()
	e.res.Elapsed = time.Since(start)
	e.res.States = e.states.Len()
	if e.sys != nil {
		e.sys.Close()
		e.sys = nil
	}
	var verr *violationErr
	switch {
	case err == nil || errors.Is(err, errStop):
		// Exhausted or bounded: res already says which.
	case errors.As(err, &verr):
		v := verr.v
		shrunk, serr := Shrink(opts.Build, v.Raw, opts.LockCheck)
		if serr != nil {
			// The violation stands even if shrinking misbehaved;
			// fall back to the raw trace.
			shrunk = append([]string(nil), v.Raw...)
		}
		v.Trace = shrunk
		e.res.Violation = v
	default:
		return nil, err
	}
	return e.res, nil
}

// explorer is the DFS state machine. The system cannot snapshot, so
// the invariant maintained throughout is positional: on entry to
// dfs() the live system sits exactly at the state reached by applying
// e.trace from a fresh build, unless dirty is set, in which case the
// next step rebuilds and replays the prefix first.
type explorer struct {
	opts     Options
	sys      System
	acts     []Action
	trace    []int
	visited  map[uint64]int // canonical hash -> shallowest depth seen this round
	states   *StateSet
	dirty    bool
	deadline time.Time
	res      *Result
}

func (e *explorer) run() error {
	first := e.opts.MinDepth
	if first < 1 {
		first = 1
	}
	for depth := first; depth <= e.opts.MaxDepth; depth++ {
		// Fresh visited map per round: a state first reached at depth
		// d in round d must be re-expanded in round d+1, where its
		// successors fit.
		e.visited = make(map[uint64]int)
		e.trace = e.trace[:0]
		if err := e.rebuild(); err != nil {
			return err
		}
		e.dirty = false
		if err := e.dfs(depth); err != nil {
			if errors.Is(err, errStop) {
				e.res.Bounded = true
				return err
			}
			return err
		}
		e.res.MaxDepth = depth
		if e.opts.Progress != nil {
			e.opts.Progress(depth, e.states.Len())
		}
	}
	return nil
}

// rebuild tears down the live system and replays e.trace from a
// fresh build, restoring the DFS position.
func (e *explorer) rebuild() error {
	if e.sys != nil {
		e.sys.Close()
		e.sys = nil
	}
	sys, err := e.opts.Build()
	if err != nil {
		return fmt.Errorf("orderly: build: %w", err)
	}
	e.sys = sys
	e.acts = sys.Alphabet()
	e.res.Resets++
	for step, ai := range e.trace {
		a := e.acts[ai]
		if a.Enabled != nil && !a.Enabled() {
			return fmt.Errorf("orderly: replay divergence at step %d: action %s no longer enabled", step, a.Name)
		}
		if err := a.Apply(); err != nil {
			return fmt.Errorf("orderly: replay divergence at step %d: action %s failed: %w", step, a.Name, err)
		}
		e.res.Replays++
	}
	return nil
}

// atNode restores the live system to the state of the current DFS
// node if a child excursion left it elsewhere.
func (e *explorer) atNode() error {
	if !e.dirty {
		return nil
	}
	if err := e.rebuild(); err != nil {
		return err
	}
	e.dirty = false
	return nil
}

func (e *explorer) dfs(remaining int) error {
	if remaining == 0 {
		return nil
	}
	if e.opts.MaxStates > 0 && e.states.Len() >= e.opts.MaxStates {
		return errStop
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		return errStop
	}
	if err := e.atNode(); err != nil {
		return err
	}
	// Snapshot enabledness at the node: guards are pure state
	// predicates, so the set is identical after any replay back to
	// this node.
	enabled := make([]bool, len(e.acts))
	for i, a := range e.acts {
		enabled[i] = a.Enabled == nil || a.Enabled()
	}
	for i := range e.acts {
		if !enabled[i] {
			continue
		}
		if err := e.atNode(); err != nil {
			return err
		}
		a := e.acts[i]
		if err := a.Apply(); err != nil {
			return e.violation(i, wrapActionErr(a.Name, err))
		}
		e.dirty = true // live system is now one step past the node
		e.res.Transitions++
		if err := e.postStepCheck(); err != nil {
			return e.violation(i, err)
		}
		h := e.sys.Hash()
		e.states.Add(h)
		depth := len(e.trace) + 1
		if prev, seen := e.visited[h]; !seen || depth < prev {
			e.visited[h] = depth
			e.trace = append(e.trace, i)
			e.dirty = false // child state is the new node state
			err := e.dfs(remaining - 1)
			e.trace = e.trace[:len(e.trace)-1]
			e.dirty = true
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// postStepCheck runs the system's invariant check and folds in any
// lock-hierarchy inversions the shims recorded during the step.
func (e *explorer) postStepCheck() error {
	if err := e.sys.Check(); err != nil {
		return err
	}
	if e.opts.LockCheck {
		if vs := lockrank.TakeViolations(); len(vs) > 0 {
			return Violated("lock-hierarchy", "%s", vs[0])
		}
	}
	return nil
}

// violation wraps the falsified invariant with the trace that reached
// it (the current prefix plus the violating action).
func (e *explorer) violation(act int, err error) error {
	raw := make([]string, 0, len(e.trace)+1)
	for _, ai := range e.trace {
		raw = append(raw, e.acts[ai].Name)
	}
	raw = append(raw, e.acts[act].Name)
	return &violationErr{v: &Violation{Raw: raw, Err: err}}
}

// wrapActionErr types an action failure as a violation: an enabled
// action must succeed. Crash-injection errors surface through the
// actions that arm them, which convert the expected crash into a
// state change rather than returning it.
func wrapActionErr(name string, err error) error {
	if invariantName(err) != "" {
		return err
	}
	return &InvariantError{Invariant: "action:" + name, Detail: err}
}
