package orderly

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"
)

// toySystem is a deterministic counter machine for exercising the
// explorer without a World: three counters with guarded actions and a
// plantable invariant. Cheap enough that exhaustive exploration and
// shrinking run in microseconds.
type toySystem struct {
	a, b, c int
	// boomAt trips the invariant when a reaches it (0 = never).
	boomAt int
	// needC requires action "boom-guard" to have run for the
	// violation to arm, making shrink keep two actions.
	needC bool
}

func toyBuilder(boomAt int, needC bool) Builder {
	return func() (System, error) {
		return &toySystem{boomAt: boomAt, needC: needC}, nil
	}
}

func (s *toySystem) Alphabet() []Action {
	return []Action{
		{Name: "inc-a", Apply: func() error { s.a++; return nil }},
		{Name: "inc-b", Apply: func() error { s.b++; return nil }},
		{Name: "dec-b", Enabled: func() bool { return s.b > 0 }, Apply: func() error { s.b--; return nil }},
		{Name: "boom-guard", Apply: func() error { s.c = 1; return nil }},
	}
}

func (s *toySystem) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d,%d,%d", s.a, s.b, s.c)
	return h.Sum64()
}

func (s *toySystem) Check() error {
	if s.boomAt > 0 && s.a >= s.boomAt && (!s.needC || s.c == 1) {
		return Violated("toy-boom", "a=%d reached %d", s.a, s.boomAt)
	}
	return nil
}

func (s *toySystem) Close() {}

func TestExploreExhaustiveCounts(t *testing.T) {
	res, err := Explore(Options{Build: toyBuilder(0, false), MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation.Err)
	}
	if res.MaxDepth != 4 {
		t.Fatalf("MaxDepth = %d, want 4", res.MaxDepth)
	}
	// Reachable states within 4 steps: a in 0..4, c in {0,1}, b
	// bounded by remaining steps. Count them directly: all (a,b,c)
	// with a + c + b_min_cost <= 4 where b is net inc-b minus dec-b;
	// reaching net b requires at least b steps, so a+b+c <= 4 over
	// naturals with c <= 1 — minus the initial state (not counted:
	// states are hashes *after* a step, but the initial state is
	// re-reached by inc-b,dec-b within depth 4).
	// C(a+b+c<=4) = 35 triples with c<=1: enumerate.
	want := 0
	for a := 0; a <= 4; a++ {
		for b := 0; b <= 4; b++ {
			for c := 0; c <= 1; c++ {
				if a+b+c <= 4 && a+b+c > 0 {
					want++
				}
			}
		}
	}
	// The initial state (0,0,0) is also counted: inc-b then dec-b
	// returns to it at depth 2.
	want++
	if res.States != want {
		t.Fatalf("States = %d, want %d", res.States, want)
	}
	if res.Transitions == 0 || res.Resets == 0 {
		t.Fatalf("expected nonzero transitions (%d) and resets (%d)", res.Transitions, res.Resets)
	}
}

func TestExploreFindsAndShrinksViolation(t *testing.T) {
	// Violation requires a >= 2 and the guard: minimal trace is
	// [boom-guard inc-a inc-a] in some order ending at the trip.
	res, err := Explore(Options{Build: toyBuilder(2, true), MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation found")
	}
	v := res.Violation
	if invariantName(v.Err) != "toy-boom" {
		t.Fatalf("violated %q, want toy-boom", invariantName(v.Err))
	}
	if len(v.Trace) != 3 {
		t.Fatalf("shrunk trace %v, want exactly 3 actions (2x inc-a + boom-guard)", v.Trace)
	}
	counts := map[string]int{}
	for _, a := range v.Trace {
		counts[a]++
	}
	if counts["inc-a"] != 2 || counts["boom-guard"] != 1 {
		t.Fatalf("shrunk trace %v, want two inc-a and one boom-guard", v.Trace)
	}
	// The shrunk trace must itself reproduce.
	out, err := replayNames(toyBuilder(2, true), v.Trace, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil || invariantName(out.Violation.Err) != "toy-boom" {
		t.Fatalf("shrunk trace does not reproduce: %+v", out.Violation)
	}
}

func TestShrinkIsOneMinimal(t *testing.T) {
	// A deliberately padded trace: only [inc-a inc-a boom-guard]
	// matters (in any order).
	raw := []string{"inc-b", "inc-a", "inc-b", "boom-guard", "dec-b", "inc-a", "inc-b"}
	shrunk, err := Shrink(toyBuilder(2, true), raw, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk) != 3 {
		t.Fatalf("shrunk to %v, want 3 actions", shrunk)
	}
	// 1-minimality: removing any single action stops the violation.
	for i := range shrunk {
		cand := append(append([]string{}, shrunk[:i]...), shrunk[i+1:]...)
		out, err := replayNames(toyBuilder(2, true), cand, false)
		if err != nil {
			t.Fatal(err)
		}
		if out.Violation != nil {
			t.Fatalf("removing %q still violates: trace %v not 1-minimal", shrunk[i], shrunk)
		}
	}
}

func TestExploreMaxStatesBound(t *testing.T) {
	res, err := Explore(Options{Build: toyBuilder(0, false), MaxDepth: 6, MaxStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bounded {
		t.Fatal("expected Bounded with MaxStates=5")
	}
	if res.States < 5 {
		t.Fatalf("States = %d, want >= 5", res.States)
	}
}

func TestSeedRoundTrip(t *testing.T) {
	seed := FormatSeed("world", []string{"ocall-put", "kill", "recover"})
	if want := "orderly:v1:world:ocall-put,kill,recover"; seed != want {
		t.Fatalf("seed %q, want %q", seed, want)
	}
	config, trace, err := ParseSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	if config != "world" || !reflect.DeepEqual(trace, []string{"ocall-put", "kill", "recover"}) {
		t.Fatalf("parsed (%q, %v)", config, trace)
	}
	if _, _, err := ParseSeed("not-a-seed"); err == nil {
		t.Fatal("want error for malformed seed")
	}
	if _, _, err := ParseSeed("orderly:v1::x"); err == nil {
		t.Fatal("want error for empty config")
	}
	// Empty trace is legal (a config smoke boot).
	config, trace, err = ParseSeed("orderly:v1:fabric:")
	if err != nil || config != "fabric" || len(trace) != 0 {
		t.Fatalf("empty-trace seed: (%q, %v, %v)", config, trace, err)
	}
}

func TestReplayDeterminismToy(t *testing.T) {
	trace := []string{"inc-a", "inc-b", "boom-guard", "dec-b", "inc-a"}
	first, err := replayNames(toyBuilder(0, false), trace, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := replayNames(toyBuilder(0, false), trace, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Hashes, again.Hashes) {
			t.Fatalf("replay %d diverged: %v vs %v", i, first.Hashes, again.Hashes)
		}
	}
}

func TestConfigsRegistered(t *testing.T) {
	got := strings.Join(Configs(), ",")
	if got != "fabric,gateway,world" {
		t.Fatalf("Configs() = %s", got)
	}
	if _, err := Config("nope"); err == nil {
		t.Fatal("want error for unknown config")
	}
}
