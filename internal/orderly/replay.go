package orderly

import (
	"fmt"

	"montsalvat/internal/lockrank"
)

// replayOutcome is the observable result of running a named action
// trace against a fresh system.
type replayOutcome struct {
	// Hashes holds the canonical state hash after every applied step
	// (the determinism fingerprint: same trace ⇒ same sequence).
	Hashes []uint64
	// Violation is the first falsified invariant, with Raw set to the
	// applied prefix that triggered it. Nil when the trace ran clean.
	Violation *Violation
	// DisabledAt is the index of the first action whose guard
	// rejected it (-1 when every action was enabled). The remainder
	// of the trace is not applied.
	DisabledAt int
}

// replayNames applies a trace of action names to a fresh system,
// checking invariants after every step. Unknown action names are
// errors; disabled actions stop the replay (reported via DisabledAt,
// since a shrunk candidate that disables its own suffix simply fails
// to reproduce).
func replayNames(build Builder, trace []string, lockCheck bool) (*replayOutcome, error) {
	if lockCheck {
		defer lockrank.Enable()()
	}
	sys, err := build()
	if err != nil {
		return nil, fmt.Errorf("orderly: build: %w", err)
	}
	defer sys.Close()
	acts := sys.Alphabet()
	byName := make(map[string]*Action, len(acts))
	for i := range acts {
		byName[acts[i].Name] = &acts[i]
	}
	out := &replayOutcome{DisabledAt: -1}
	if lockCheck {
		// Drop inversions recorded during build; steps own their own.
		lockrank.TakeViolations()
	}
	for step, name := range trace {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("orderly: step %d: unknown action %q", step, name)
		}
		if a.Enabled != nil && !a.Enabled() {
			out.DisabledAt = step
			return out, nil
		}
		verr := a.Apply()
		if verr != nil {
			verr = wrapActionErr(name, verr)
		} else if verr = sys.Check(); verr == nil && lockCheck {
			if vs := lockrank.TakeViolations(); len(vs) > 0 {
				verr = Violated("lock-hierarchy", "%s", vs[0])
			}
		}
		if verr != nil {
			out.Violation = &Violation{
				Raw: append([]string(nil), trace[:step+1]...),
				Err: verr,
			}
			return out, nil
		}
		out.Hashes = append(out.Hashes, sys.Hash())
	}
	return out, nil
}
