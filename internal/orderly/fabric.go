package orderly

import (
	"fmt"
	"hash/fnv"

	"montsalvat/internal/fabric"
	"montsalvat/internal/smoke"
	"montsalvat/internal/telemetry"
)

// FabricConfig tunes the fabric system. The zero value is the
// checked production configuration.
type FabricConfig struct {
	// Break plants a deliberate invariant violation (test-only).
	// BreakEpochDrift makes the model expect an extra epoch bump, so
	// the epoch invariant trips on the first promotion.
	Break string
}

// BreakEpochDrift desynchronises the model's epoch expectation.
const BreakEpochDrift = "epoch-drift"

// fabricSystem drives a two-shard, one-replica-each fabric through
// the failover alphabet: routed puts per shard, checkpoints,
// kill-shard, promote. Its invariants are the acked ⇒ replicated
// audit (after promotion every acked write of the failed shard must
// be served by the promoted replica — the shipper watermark may not
// ack writes the standby has not durably applied), the epoch
// discipline (the table epoch bumps exactly once per promotion and
// never otherwise), and the failover timeline (the fleet event
// journal must order kill → promote-begin → promote-commit →
// epoch-bump for every completed failover).
type fabricSystem struct {
	cfg   FabricConfig
	fab   *fabric.Fabric
	fleet *telemetry.Fleet
	rt    *fabric.Router

	// key0/key1 are probe-chosen keys owned by shard 0 / shard 1.
	key0, key1 string

	alive0    bool // shard 0 primary alive (the only shard we fail)
	standbys  int  // shard 0 standbys left; promote consumes one for good
	expect    fabric.Expectation
	failovers int
	baseEpoch uint64
	counts    map[string]int
	acked     map[string]string
}

// FabricBuilder returns a Builder for the fabric system.
func FabricBuilder(cfg FabricConfig) Builder {
	return func() (System, error) {
		signer, build, err := worldFixture()
		if err != nil {
			return nil, err
		}
		fleet := telemetry.NewFleet(telemetry.Options{TraceSampleRate: 1})
		fab, err := fabric.New(fabric.Options{
			Shards:   2,
			Replicas: 1,
			Fleet:    fleet,
			Signer:   signer,
			Build:    build,
			Logf:     func(string, ...any) {},
		})
		if err != nil {
			return nil, err
		}
		s := &fabricSystem{
			cfg:      cfg,
			fab:      fab,
			fleet:    fleet,
			rt:       fab.Client(fabric.RouterConfig{}),
			alive0:   true,
			standbys: 1, // fabric.Options.Replicas: promotion has no backfill
			counts:   map[string]int{},
			acked:    map[string]string{},
		}
		// Probe the consistent-hash ring for one key per shard. The
		// ring is a pure function of the shard ids, so the same keys
		// come out on every build.
		t := fab.Table()
		for i := 0; s.key0 == "" || s.key1 == ""; i++ {
			k := fmt.Sprintf("k%d", i)
			switch t.Owner(k) {
			case 0:
				if s.key0 == "" {
					s.key0 = k
				}
			case 1:
				if s.key1 == "" {
					s.key1 = k
				}
			}
			if i > 1024 {
				s.Close()
				return nil, fmt.Errorf("orderly: no key found for both shards in 1024 probes")
			}
		}
		s.baseEpoch = fab.Stats().Epoch
		return s, nil
	}
}

func (s *fabricSystem) Alphabet() []Action {
	return []Action{
		{Name: "put-shard0", Enabled: func() bool { return s.alive0 }, Apply: func() error { return s.actPut(s.key0) }},
		{Name: "put-shard1", Enabled: func() bool { return true }, Apply: func() error { return s.actPut(s.key1) }},
		{Name: "ckpt-shard0", Enabled: func() bool { return s.alive0 }, Apply: func() error { return s.fab.Checkpoint(0) }},
		{Name: "ckpt-shard1", Enabled: func() bool { return true }, Apply: func() error { return s.fab.Checkpoint(1) }},
		// kill-shard is gated on a remaining standby: promotion consumes
		// the standby for good (there is no backfill), and killing the
		// last incarnation would darken the shard for the rest of the
		// trace — a reachable but inert subtree not worth exploring.
		{Name: "kill-shard", Enabled: func() bool { return s.alive0 && s.standbys > 0 }, Apply: s.actKill},
		{Name: "promote", Enabled: func() bool { return !s.alive0 }, Apply: s.actPromote},
		{Name: "get-audit", Enabled: func() bool { return true }, Apply: s.actAudit},
	}
}

func (s *fabricSystem) actPut(key string) error {
	s.counts[key]++
	val := fmt.Sprintf("%s#%d", key, s.counts[key])
	if err := s.rt.Put(key, val); err != nil {
		return err
	}
	s.acked[key] = val
	return nil
}

func (s *fabricSystem) actKill() error {
	exp, err := s.fab.KillShard(0)
	if err != nil {
		return err
	}
	s.expect = exp
	s.alive0 = false
	return nil
}

// actPromote promotes shard 0's standby and audits the failover
// invariants: the acked writes of the failed shard must be served by
// the promoted replica (acked ⇒ replicated — this is exactly the
// promise the shipper watermark makes), the table epoch must bump by
// one, and the fleet event journal must order the failover timeline.
func (s *fabricSystem) actPromote() error {
	if err := s.fab.Promote(0, s.expect); err != nil {
		return err
	}
	s.alive0 = true
	s.standbys--
	s.failovers++
	wantEpoch := s.baseEpoch + uint64(s.failovers)
	if s.cfg.Break == BreakEpochDrift {
		wantEpoch++ // deliberately wrong
	}
	if got := s.fab.Stats().Epoch; got != wantEpoch {
		return Violated("epoch-bump", "table epoch %d after %d failovers, want %d", got, s.failovers, wantEpoch)
	}
	if err := s.checkTimeline(); err != nil {
		return err
	}
	// Durability-across-failover audit through the router (which
	// refreshes its table on the epoch bump).
	if want, ok := s.acked[s.key0]; ok {
		got, found, err := s.rt.Get(s.key0)
		if err != nil {
			return err
		}
		if !found || got != want {
			return Violated("acked-replicated", "acked write %s=%q served as %q (found=%v) after failover", s.key0, want, got, found)
		}
	}
	return nil
}

// checkTimeline asserts the failover ordering invariant over the
// fleet event journal via the shared matcher: for every completed
// failover there must be a strictly ordered kill → promote-begin →
// promote-commit → epoch-bump chain, chains consumed greedily in
// sequence order.
func (s *fabricSystem) checkTimeline() error {
	events := s.fleet.Telemetry().Events().Dump()
	if _, err := smoke.FailoverTimeline(events, s.failovers); err != nil {
		return Violated("failover-order", "%v", err)
	}
	return nil
}

// actAudit reads every acked key back through the router: acked
// writes must be served whichever primaries currently own them.
func (s *fabricSystem) actAudit() error {
	for _, key := range []string{s.key0, s.key1} {
		want, ok := s.acked[key]
		if !ok {
			continue
		}
		if key == s.key0 && !s.alive0 {
			continue // owner down: served again after promote
		}
		got, found, err := s.rt.Get(key)
		if err != nil {
			return err
		}
		if !found || got != want {
			return Violated("acked-durability", "acked write %s=%q served as %q (found=%v)", key, want, got, found)
		}
	}
	return nil
}

func (s *fabricSystem) Hash() uint64 {
	h := fnv.New64a()
	st := s.fab.Stats()
	fmt.Fprintf(h, "alive0=%v standbys=%d failovers=%d epoch=%d ships=%d|",
		s.alive0, s.standbys, s.failovers, st.Epoch, st.ShipRounds)
	hashStringMap(h, "acked", s.acked)
	hashIntMap(h, "counts", s.counts)
	return h.Sum64()
}

func (s *fabricSystem) Check() error {
	st := s.fab.Stats()
	if uint64(s.failovers) != st.Promotions {
		return Violated("promotion-accounting", "fabric reports %d promotions, model has %d", st.Promotions, s.failovers)
	}
	return nil
}

func (s *fabricSystem) Close() {
	if s.rt != nil {
		s.rt.Close()
	}
	if s.fab != nil {
		s.fab.Close()
	}
}
