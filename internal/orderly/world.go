package orderly

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/heap"
	"montsalvat/internal/persist"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// Deliberate invariant mutations for the checker's own tests: a
// model checker that has never caught a planted bug proves nothing.
const (
	// BreakAckLostWrite acks a put whose journal append died at an
	// injected crash point — the "acked ⇒ durable" lie.
	BreakAckLostWrite = "ack-lost-write"
	// BreakLeakBaseline shifts the quiescent live-object baseline by
	// one — the refcount-drain invariant trips on the first quiesce.
	BreakLeakBaseline = "leak-baseline"
)

// WorldConfig tunes the world system. The zero value is the checked
// production configuration.
type WorldConfig struct {
	// Break plants one deliberate invariant violation (test-only);
	// see the Break* constants.
	Break string
}

// worldFx holds the fixtures every world build shares: the program is
// compiled once, the images are immutable, and the signer memoizes
// SIGSTRUCTs per measurement — together they take a rebuild from
// hundreds of milliseconds (RSA keygen + signing) to ~100µs, which is
// what makes replay-from-scratch backtracking affordable.
var worldFx struct {
	once   sync.Once
	err    error
	signer *sgx.Signer
	build  *core.BuildResult
}

func worldFixture() (*sgx.Signer, *core.BuildResult, error) {
	worldFx.once.Do(func() {
		signer, err := sgx.NewSigner()
		if err != nil {
			worldFx.err = err
			return
		}
		// A small hash-index fan-out keeps the KVStore constructor —
		// which the explorer pays on every backtracking reset — off the
		// reset critical path without changing the serving surface.
		prog, err := demo.KVProgramWithBuckets(8)
		if err != nil {
			worldFx.err = err
			return
		}
		build, err := core.BuildPartitioned(prog)
		if err != nil {
			worldFx.err = err
			return
		}
		worldFx.signer, worldFx.build = signer, build
	})
	return worldFx.signer, worldFx.build, worldFx.err
}

// orderlyWorldOptions is the world configuration every orderly system
// boots: shared signer and images, small heaps (cheap kill/restart),
// batching and rings on so those planes are part of the explored
// surface, GC helpers off — sweeps are explorer actions, not
// background timers.
func orderlyWorldOptions() (world.Options, error) {
	signer, _, err := worldFixture()
	if err != nil {
		return world.Options{}, err
	}
	cfg := simcfg.ForTest()
	cfg.Batching = true
	cfg.Rings = true
	// One small ring per direction: the default geometry (2 workers x
	// 64 slots x 64 KiB) allocates 16 MB of slot buffers per world,
	// which dominates the ~1 ms rebuild the explorer pays per edge.
	// 8 x 4 KiB slots still fit the ring-put payload.
	cfg.RingWorkers = 1
	cfg.RingSlots = 8
	cfg.RingSlotBytes = 4 << 10
	// The EPC residency tracker and arena are sized per world and the
	// arena is zeroed on allocation, so a small modelled EPC keeps
	// rebuilds cheap; orderly heaps max out at 256 KiB per semispace, so a
	// 4 MB EPC still never pages.
	cfg.EPCBytes = 2 << 20
	return world.Options{
		Cfg:           cfg,
		TrustedHeap:   heap.Config{InitialSemi: 128 << 10, MaxSemi: 256 << 10},
		UntrustedHeap: heap.Config{InitialSemi: 128 << 10, MaxSemi: 256 << 10},
		NumTCS:        8,
		Signer:        signer,
	}, nil
}

// journalEntry is one enqueued-but-unflushed group-commit mutation.
type journalEntry struct{ key, val string }

// worldKeys is the bounded key universe; per-key version counters
// make the value of a state a function of how many puts each key has
// seen, so interleavings that only reorder independent actions
// collapse to one canonical state.
var worldKeys = []string{"a", "b", "r"}

// worldSystem drives one partitioned World and its durable manager
// through the boundary and recovery alphabet: ecall (get), nested
// ocall (put with its audit-log callback), group-commit enqueue and
// window close, batch flush, ring submit, GC sweep, checkpoint,
// crash-point arming, kill, recover, quiesce.
type worldSystem struct {
	cfg    WorldConfig
	w      *world.World
	fs     shim.FS
	secret sgx.PlatformSecret
	ctrs   *sgx.MemCounterStore
	kv     *persist.WorldKV
	mgr    *persist.Manager
	store  wire.Value

	// Model state, rebuilt only through actions — the canonical hash
	// is computed from it plus the live counters.
	alive       bool
	armed       bool
	incarnation int
	counts      map[string]int    // puts per key (value version source)
	applied     map[string]string // in-enclave contents
	acked       map[string]string // durability promises
	durable     map[string]string // exact post-recovery prediction
	pending     []journalEntry    // group queue mirror
	baseline    int               // quiescent live-object count
}

// WorldBuilder returns a Builder for the world system.
func WorldBuilder(cfg WorldConfig) Builder {
	return func() (System, error) {
		s := &worldSystem{
			cfg:     cfg,
			fs:      shim.NewMemFS(),
			ctrs:    sgx.NewMemCounterStore(),
			counts:  map[string]int{},
			applied: map[string]string{},
			acked:   map[string]string{},
			durable: map[string]string{},
		}
		secret, err := sgx.NewPlatformSecret()
		if err != nil {
			return nil, err
		}
		s.secret = secret
		if err := s.bootWorld(); err != nil {
			return nil, err
		}
		if err := s.bootStore(); err != nil {
			s.w.Close()
			return nil, err
		}
		if err := s.drain(); err != nil {
			s.w.Close()
			return nil, err
		}
		s.baseline = s.w.LiveObjects()
		s.alive = true
		return s, nil
	}
}

func (s *worldSystem) bootWorld() error {
	w, err := newOrderlyWorld()
	if err != nil {
		return err
	}
	s.w = w
	return nil
}

// newOrderlyWorld boots one exploration-tuned partitioned World from
// the shared fixture; the gateway system serves one through a
// smoke.Gateway, the world system drives one directly.
func newOrderlyWorld() (*world.World, error) {
	_, build, err := worldFixture()
	if err != nil {
		return nil, err
	}
	opts, err := orderlyWorldOptions()
	if err != nil {
		return nil, err
	}
	return world.NewPartitioned(opts, build.TrustedImage, build.UntrustedImage, build.Transform.Interface)
}

// bootStore wires the durable side to the current enclave
// incarnation: fresh store object, fresh manager over the same
// untrusted files and counter store, recovery replay.
func (s *worldSystem) bootStore() error {
	var ref wire.Value
	err := s.w.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.KVStoreCls)
		if err != nil {
			return err
		}
		ref = v
		return nil
	})
	if err != nil {
		return err
	}
	if err := s.w.Untrusted().Pin(ref); err != nil {
		return err
	}
	s.store = ref
	if s.kv == nil {
		s.kv = persist.NewWorldKV("kv", s.w)
	}
	s.kv.SetRef(ref)
	ctr, err := sgx.NewMonotonicCounter(s.secret, s.ctrs, "orderly-kv")
	if err != nil {
		return err
	}
	m, err := persist.Open(persist.Options{
		FS:           s.fs,
		Enclave:      s.w.Enclave(),
		Secret:       s.secret,
		Counter:      ctr,
		Dir:          "p/",
		BeforeCommit: s.w.Flush,
		GroupCommit:  true,
		// The explorer owns the schedule: a leadership term must not
		// depend on what the Go scheduler ran during the yield.
		Yield: func() {},
	})
	if err != nil {
		return err
	}
	if err := m.Register(s.kv); err != nil {
		return err
	}
	if _, err := m.Recover(); err != nil {
		return err
	}
	s.mgr = m
	return nil
}

func (s *worldSystem) Alphabet() []Action {
	alive := func() bool { return s.alive }
	return []Action{
		{Name: "ecall-get", Enabled: alive, Apply: s.actGet},
		{Name: "ocall-put", Enabled: alive, Apply: func() error { return s.durablePut("a", 0) }},
		{Name: "ring-put", Enabled: alive, Apply: func() error { return s.durablePut("r", 2048) }},
		{Name: "group-put", Enabled: alive, Apply: s.actGroupPut},
		{Name: "window-close", Enabled: func() bool { return s.alive && len(s.pending) > 0 }, Apply: s.actWindowClose},
		{Name: "batch-flush", Enabled: alive, Apply: func() error { return s.w.Flush() }},
		{Name: "gc-sweep", Enabled: alive, Apply: s.actSweep},
		{Name: "checkpoint", Enabled: alive, Apply: s.actCheckpoint},
		{Name: "arm-crash", Enabled: func() bool { return s.alive && !s.armed }, Apply: s.actArm},
		{Name: "kill", Enabled: alive, Apply: s.actKill},
		{Name: "recover", Enabled: func() bool { return !s.alive }, Apply: s.actRecover},
		{Name: "quiesce", Enabled: alive, Apply: s.checkQuiesce},
	}
}

// nextVal is the deterministic value generator: key#version, padded
// to size so the ring-put payload rides a ring slot rather than an
// inline frame.
func (s *worldSystem) nextVal(key string, size int) string {
	s.counts[key]++
	v := fmt.Sprintf("%s#%d", key, s.counts[key])
	if size > len(v) {
		v += strings.Repeat("x", size-len(v))
	}
	return v
}

func (s *worldSystem) execPut(key, val string) error {
	return s.w.Exec(false, func(env classmodel.Env) error {
		_, err := env.Call(s.store, "put", wire.Str(key), wire.Str(val))
		return err
	})
}

func (s *worldSystem) readBack(key string) (val string, miss bool, err error) {
	err = s.w.Exec(false, func(env classmodel.Env) error {
		v, err := env.Call(s.store, "get", wire.Str(key))
		if err != nil {
			return err
		}
		if v.IsNull() {
			miss = true
			return nil
		}
		val, _ = v.AsStr()
		return nil
	})
	return val, miss, err
}

// processCrashed models an injected crash-point firing: the process
// is gone — enclave state, commit queue, and injector with it.
func (s *worldSystem) processCrashed() {
	s.alive = false
	s.armed = false
	s.pending = nil
	s.w.Kill()
}

// durablePut applies a put in-enclave (the nested-ocall path: the
// trusted store reports to the untrusted audit log mid-ecall), then
// journals it. The write is acked only if the append survives; an
// armed crash point firing mid-append kills the process with the
// write applied but unpromised.
func (s *worldSystem) durablePut(key string, pad int) error {
	val := s.nextVal(key, pad)
	if err := s.execPut(key, val); err != nil {
		return err
	}
	s.applied[key] = val
	if _, err := s.mgr.Append("kv", persist.OpPut, key, []byte(val)); err != nil {
		if persist.IsCrash(err) {
			s.processCrashed()
			if s.cfg.Break == BreakAckLostWrite {
				s.acked[key] = val // deliberately wrong: crash beat the append
			}
			return nil
		}
		return err
	}
	// The Append elected this caller leader of a commit term, and a
	// leader drains the whole queue: any enqueued group mutations
	// were committed (and thus acked) in the same term.
	for _, p := range s.pending {
		s.acked[p.key] = p.val
		s.durable[p.key] = p.val
	}
	s.pending = nil
	s.acked[key] = val
	s.durable[key] = val
	return nil
}

func (s *worldSystem) actGet() error {
	got, miss, err := s.readBack("a")
	if err != nil {
		return err
	}
	want, ok := s.applied["a"]
	if miss == ok || (ok && got != want) {
		return Violated("read-your-writes", "get(a) = %q (miss=%v), want %q (present=%v)", got, miss, want, ok)
	}
	return nil
}

func (s *worldSystem) actGroupPut() error {
	val := s.nextVal("b", 0)
	if err := s.execPut("b", val); err != nil {
		return err
	}
	s.applied["b"] = val
	if err := s.mgr.GroupEnqueue("kv", persist.OpPut, "b", []byte(val)); err != nil {
		return err
	}
	s.pending = append(s.pending, journalEntry{key: "b", val: val})
	return nil
}

func (s *worldSystem) actWindowClose() error {
	want := len(s.pending)
	n, err := s.mgr.GroupFlush()
	if err != nil {
		if persist.IsCrash(err) {
			// The whole group fails together: nothing was acked.
			s.processCrashed()
			return nil
		}
		return err
	}
	if n != want {
		return Violated("group-queue", "window close committed %d records, %d were enqueued", n, want)
	}
	for _, p := range s.pending {
		s.acked[p.key] = p.val
		s.durable[p.key] = p.val
	}
	s.pending = nil
	return nil
}

func (s *worldSystem) actSweep() error {
	if err := s.w.SweepOnce(s.w.Trusted()); err != nil {
		return err
	}
	return s.w.SweepOnce(s.w.Untrusted())
}

func (s *worldSystem) actCheckpoint() error {
	if err := s.mgr.Checkpoint(); err != nil {
		if persist.IsCrash(err) {
			s.processCrashed()
			return nil
		}
		return err
	}
	// The snapshot walks the live store, so it captures the full
	// applied state — including group-enqueued writes whose window has
	// not closed. Those writes become durable without ever being
	// acked, which is legal: acked ⇒ durable does not read backwards.
	s.durable = map[string]string{}
	for k, v := range s.applied {
		s.durable[k] = v
	}
	return nil
}

func (s *worldSystem) actArm() error {
	s.mgr.CrashInjector().Arm(persist.CrashBeforeAppend)
	s.armed = true
	return nil
}

func (s *worldSystem) actKill() error {
	s.w.Kill()
	s.alive = false
	s.armed = false // the injector dies with the manager
	s.pending = nil // enqueued writes die with the process
	return nil
}

// actRecover restarts the enclave, recovers durable state through a
// fresh manager, and audits the durability promises: recovery must
// reproduce the modelled durable timeline exactly (checkpoint
// snapshot plus every surviving journal append, in order), which in
// particular means every acked write comes back at its acked version
// or a later applied one.
func (s *worldSystem) actRecover() error {
	if err := s.w.Restart(); err != nil {
		return err
	}
	if err := s.bootStore(); err != nil {
		return err
	}
	s.incarnation++
	recovered := map[string]string{}
	for _, key := range worldKeys {
		v, miss, err := s.readBack(key)
		if err != nil {
			return err
		}
		if !miss {
			recovered[key] = v
		}
	}
	for _, key := range worldKeys {
		want, wantOK := s.durable[key]
		got, gotOK := recovered[key]
		if wantOK != gotOK || got != want {
			return Violated("durable-state", "recovered %s=%q (present=%v), durable timeline says %q (present=%v)", key, got, gotOK, want, wantOK)
		}
	}
	s.applied = recovered
	s.alive = true
	return nil
}

// drain flushes the transition batch queues and runs full sweep
// rounds until transient cross-boundary references are gone.
func (s *worldSystem) drain() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := s.actSweep(); err != nil {
			return err
		}
		if err := s.w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// checkQuiesce drains and asserts the refcount invariant: at
// quiescence the object tables and weak lists hold exactly the
// permanent references (the pinned store and its audit proxy), so the
// live count returns to the boot baseline.
func (s *worldSystem) checkQuiesce() error {
	if err := s.drain(); err != nil {
		return err
	}
	want := s.baseline
	if s.cfg.Break == BreakLeakBaseline {
		want++ // deliberately wrong baseline
	}
	if got := s.w.LiveObjects(); got != want {
		return Violated("refcount-drain", "%d live cross-boundary objects at quiescence, want %d", got, want)
	}
	return nil
}

func (s *worldSystem) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "alive=%v armed=%v inc=%d|", s.alive, s.armed, s.incarnation)
	if s.alive {
		st := s.mgr.Stats()
		fmt.Fprintf(h, "lsn=%d ckpt=%d wm=%d gq=%d live=%d|",
			st.LastLSN, st.Checkpoints, st.Watermark, s.mgr.GroupPending(), s.w.LiveObjects())
	}
	hashStringMap(h, "applied", s.applied)
	hashStringMap(h, "acked", s.acked)
	hashStringMap(h, "durable", s.durable)
	for _, p := range s.pending {
		fmt.Fprintf(h, "pend:%s=%s|", p.key, p.val)
	}
	hashIntMap(h, "counts", s.counts)
	return h.Sum64()
}

func (s *worldSystem) Check() error {
	// acked ⇒ durable, version-ordered: an acked write may be
	// superseded in the durable timeline by a later applied write (a
	// checkpoint snapshots unacked in-store state), but the timeline
	// may never hold an OLDER version than was acked — that would be
	// an acknowledged write that cannot survive recovery.
	for key, ackedVal := range s.acked {
		if valVersion(s.durable[key]) < valVersion(ackedVal) {
			return Violated("acked-durability", "acked write %s=%q but durable timeline has %q", key, ackedVal, s.durable[key])
		}
	}
	if !s.alive {
		return nil
	}
	if got := s.mgr.GroupPending(); got != len(s.pending) {
		return Violated("group-queue", "%d mutations parked in the commit queue, model has %d", got, len(s.pending))
	}
	st := s.mgr.Stats()
	if st.Watermark > st.LastLSN {
		return Violated("watermark", "checkpoint watermark %d ahead of last LSN %d", st.Watermark, st.LastLSN)
	}
	return nil
}

func (s *worldSystem) Close() {
	if s.w != nil {
		s.w.Close()
	}
}

// valVersion extracts the version counter from a key#n[xxx...] value
// (0 for a missing value).
func valVersion(val string) int {
	i := strings.IndexByte(val, '#')
	if i < 0 {
		return 0
	}
	n := 0
	for _, c := range val[i+1:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func hashStringMap(h interface{ Write([]byte) (int, error) }, tag string, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s:%s=%s|", tag, k, m[k])
	}
}

func hashIntMap(h interface{ Write([]byte) (int, error) }, tag string, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s:%s=%d|", tag, k, m[k])
	}
}
