// Package orderly is an explicit-state model checker for the
// boundary, recovery, and failover state machines (DESIGN.md §17).
//
// The simulator's concurrency tests sample schedules; orderly
// enumerates them. A System adapts one running configuration — a
// partitioned World with its durable manager, a served gateway, or a
// two-shard fabric — to a bounded alphabet of atomic actions (ecall,
// nested ocall, batch flush, ring submit, GC sweep, session
// open/close, checkpoint, group-commit window close, kill/recover,
// kill-shard/promote). The Explorer drives the system through every
// interleaving of that alphabet up to a configurable depth using
// depth-first search with canonical state hashing and iterative
// deepening, asserting machine-checked invariants after every step:
//
//   - no handle crosses session or peer namespaces;
//   - object-table refcounts drain to zero at quiescence;
//   - every acked write survives recovery and is covered by the
//     replica watermark (acked ⇒ durable ∧ replicated);
//   - no crossing proceeds while a recovery drain is in progress;
//   - the failover timeline is always kill → promote-begin →
//     promote-commit → epoch-bump;
//   - the lock hierarchy is never inverted (internal/lockrank shims).
//
// The real system cannot snapshot a World, so backtracking replays:
// every DFS edge rebuilds the configuration from scratch and replays
// the prefix. That is affordable because the systems are built for
// it — shared signers memoize SIGSTRUCTs, prebuilt images are reused
// across boots, and heaps are kept small — so a World reset costs on
// the order of a hundred microseconds.
//
// On violation the failing trace is shrunk to a 1-minimal action
// sequence and printed as a replayable seed
// ("orderly:v1:<config>:<action>,<action>,..."); ReplaySeed runs it
// back deterministically.
package orderly

import (
	"errors"
	"fmt"
	"sort"
)

// Action is one atomic, synchronous step of a System's alphabet. The
// explorer treats Apply as a transition function: it must leave the
// system in a state whose Hash is a deterministic function of the
// action sequence applied since Build. Names appear in seeds and must
// not contain ',' or ':'.
type Action struct {
	Name string
	// Enabled guards the action (nil means always enabled): the
	// explorer only branches on enabled actions, so guards prune the
	// schedule space (recover only fires on a dead enclave, promote
	// only after a kill).
	Enabled func() bool
	// Apply performs the action. A non-nil error is a violation: the
	// action was enabled, so it must either succeed or prove an
	// invariant broken.
	Apply func() error
}

// System adapts one running configuration to the explorer.
type System interface {
	// Alphabet returns the bounded action set, bound to this
	// instance. Action order and names must be identical across
	// instances built by the same Builder (replay depends on it).
	Alphabet() []Action
	// Hash returns the canonical state hash. It must cover exactly
	// the semantically meaningful state — model-tracked contents,
	// durability watermarks, liveness flags, live-object counts — so
	// that commuting interleavings collapse to one state, and it must
	// be deterministic across rebuilds of the same action sequence.
	Hash() uint64
	// Check asserts the cheap global invariants after every step.
	// Expensive invariants (recovery durability audits, quiescence
	// drains) live inside the actions that make them meaningful.
	Check() error
	// Close tears the configuration down; the explorer calls it
	// before every rebuild.
	Close()
}

// Builder constructs a fresh System in its initial state. The
// explorer calls it once per backtrack edge, so it must be cheap and
// deterministic (share signers, images, and programs across builds).
type Builder func() (System, error)

// InvariantError is a machine-checked invariant violation. Invariant
// names the property ("refcount-drain", "acked-durability",
// "lock-hierarchy", ...); the shrinker uses it to keep a candidate
// trace only when it reproduces the same violated property.
type InvariantError struct {
	Invariant string
	Detail    error
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("invariant %s violated: %v", e.Invariant, e.Detail)
}

func (e *InvariantError) Unwrap() error { return e.Detail }

// Violated builds an InvariantError.
func Violated(invariant, format string, args ...any) *InvariantError {
	return &InvariantError{Invariant: invariant, Detail: fmt.Errorf(format, args...)}
}

// invariantName extracts the violated property name, or "" when the
// error is not a typed invariant (any violation then matches).
func invariantName(err error) string {
	var ie *InvariantError
	if errors.As(err, &ie) {
		return ie.Invariant
	}
	return ""
}

// Configs lists the registered system configurations, the first seed
// component.
func Configs() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Config returns the Builder registered under name.
func Config(name string) (Builder, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("orderly: unknown config %q (have %v)", name, Configs())
	}
	return b(), nil
}

// builders maps config name to a builder constructor. Constructors
// (rather than Builders) so each Config call can capture fresh
// per-exploration state while sharing the expensive fixtures.
var builders = map[string]func() Builder{
	"world":   func() Builder { return WorldBuilder(WorldConfig{}) },
	"gateway": func() Builder { return GatewayBuilder(GatewayConfig{}) },
	"fabric":  func() Builder { return FabricBuilder(FabricConfig{}) },
}
