package orderly

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestWorldReplayDeterminism replays a trace that crosses every
// interesting regime — nested-ocall put, group window, checkpoint of
// an open window, crash, recovery — and demands an identical canonical
// hash sequence on every run. Replay determinism is the foundation the
// explorer's backtracking and the shrinker both stand on.
func TestWorldReplayDeterminism(t *testing.T) {
	seed := FormatSeed("world", []string{
		"ocall-put", "group-put", "window-close", "ring-put",
		"checkpoint", "kill", "recover", "ecall-get", "quiesce",
	})
	first, err := ReplaySeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	if first.Violation != nil {
		t.Fatalf("clean trace violated: %v", first.Violation.Err)
	}
	if len(first.Hashes) != 9 {
		t.Fatalf("got %d hashes, want 9", len(first.Hashes))
	}
	for i := 0; i < 2; i++ {
		again, err := ReplaySeed(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Hashes, again.Hashes) {
			t.Fatalf("replay %d diverged:\n  %v\n  %v", i, first.Hashes, again.Hashes)
		}
	}
}

// TestWorldMutationAckLostWrite plants the classic durability bug — a
// write acked although its journal append died in a crash — and
// demands the checker catch it with a shrunk, replayable trace. The
// minimal reproduction is arming the crash point and issuing the put:
// two actions, found and certified by the shrinker.
func TestWorldMutationAckLostWrite(t *testing.T) {
	res, err := Explore(Options{Build: WorldBuilder(WorldConfig{Break: BreakAckLostWrite}), MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("planted ack-lost-write bug not caught")
	}
	if got := invariantName(v.Err); got != "acked-durability" {
		t.Fatalf("violated %q, want acked-durability (%v)", got, v.Err)
	}
	if len(v.Trace) != 2 {
		t.Fatalf("shrunk trace %v, want the 2-action minimum", v.Trace)
	}
	if v.Trace[0] != "arm-crash" {
		t.Fatalf("shrunk trace %v, want arm-crash first", v.Trace)
	}
	assertSeedReproduces(t, FormatSeed("world", v.Trace), WorldBuilder(WorldConfig{Break: BreakAckLostWrite}), "acked-durability")
}

// TestWorldMutationLeakBaseline plants a shifted quiescence baseline;
// the refcount-drain invariant must trip on the very first quiesce.
func TestWorldMutationLeakBaseline(t *testing.T) {
	res, err := Explore(Options{Build: WorldBuilder(WorldConfig{Break: BreakLeakBaseline}), MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("planted leak-baseline bug not caught")
	}
	if got := invariantName(v.Err); got != "refcount-drain" {
		t.Fatalf("violated %q, want refcount-drain (%v)", got, v.Err)
	}
	if !reflect.DeepEqual(v.Trace, []string{"quiesce"}) {
		t.Fatalf("shrunk trace %v, want [quiesce]", v.Trace)
	}
}

// TestGatewayMutationSkipDrain inverts the recovery-drain assertion:
// the gateway correctly rejects mid-drain sessions, so demanding
// admission must be flagged on the first crash-recover.
func TestGatewayMutationSkipDrain(t *testing.T) {
	res, err := Explore(Options{Build: GatewayBuilder(GatewayConfig{Break: BreakSkipDrain}), MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("planted skip-drain inversion not caught")
	}
	if got := invariantName(v.Err); got != "recovery-drain" {
		t.Fatalf("violated %q, want recovery-drain (%v)", got, v.Err)
	}
	if !reflect.DeepEqual(v.Trace, []string{"crash-recover"}) {
		t.Fatalf("shrunk trace %v, want [crash-recover]", v.Trace)
	}
}

// TestFabricMutationEpochDrift desynchronises the model's epoch
// expectation; the epoch-bump invariant must trip on the first
// promotion, and the shrunk trace must be the minimal kill+promote
// pair.
func TestFabricMutationEpochDrift(t *testing.T) {
	res, err := Explore(Options{Build: FabricBuilder(FabricConfig{Break: BreakEpochDrift}), MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("planted epoch-drift bug not caught")
	}
	if got := invariantName(v.Err); got != "epoch-bump" {
		t.Fatalf("violated %q, want epoch-bump (%v)", got, v.Err)
	}
	if !reflect.DeepEqual(v.Trace, []string{"kill-shard", "promote"}) {
		t.Fatalf("shrunk trace %v, want [kill-shard promote]", v.Trace)
	}
}

// assertSeedReproduces replays a shrunk trace against the same broken
// build and fails unless it pins the same violated invariant — a
// printed seed that does not reproduce is worse than no seed.
func assertSeedReproduces(t *testing.T, seed string, build Builder, invariant string) {
	t.Helper()
	_, trace, err := ParseSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := replayNames(build, trace, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil || invariantName(out.Violation.Err) != invariant {
		t.Fatalf("seed %q does not reproduce %s: %+v", seed, invariant, out.Violation)
	}
}

// TestCorpusReplay replays every seed in testdata/corpus against the
// production configurations. The corpus holds interleavings the
// explorer once flagged (model gaps and real near-misses); each must
// now replay clean and deterministically, with the lockrank shims
// armed. A violation here is a regression.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.seed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty regression corpus")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var seed string
			for _, line := range strings.Split(string(raw), "\n") {
				line = strings.TrimSpace(line)
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				seed = line
				break
			}
			if seed == "" {
				t.Fatalf("%s holds no seed", f)
			}
			first, err := ReplaySeed(seed)
			if err != nil {
				t.Fatal(err)
			}
			if first.Violation != nil {
				t.Fatalf("corpus seed %q violated: %v", seed, first.Violation.Err)
			}
			again, err := ReplaySeed(seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.Hashes, again.Hashes) {
				t.Fatalf("corpus seed %q replay diverged", seed)
			}
		})
	}
}

// TestSmokeSchedulesShallow sanity-checks RunCheck's plumbing on a
// shallow schedule: per-pass reporting, shared per-config state sets,
// and the OK summary. The full CI schedules run via `make
// orderly-smoke`.
func TestSmokeSchedulesShallow(t *testing.T) {
	var sb strings.Builder
	passes := []CheckPass{
		{Label: "world shallow", Config: "world", MaxDepth: 2},
		{Label: "world again", Config: "world", MaxDepth: 2},
		{Label: "fabric shallow", Config: "fabric", MaxDepth: 2},
	}
	if err := RunCheck(&sb, passes); err != nil {
		t.Fatalf("RunCheck: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"world shallow", "world again", "fabric shallow", ": OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunCheck output missing %q:\n%s", want, out)
		}
	}
}
