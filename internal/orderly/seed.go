package orderly

import (
	"fmt"
	"strings"
)

// Seeds name a reproducible exploration outcome:
//
//	orderly:v1:<config>:<action>,<action>,...
//
// The config component selects a registered Builder; the trace is the
// comma-separated action-name sequence. Violations print as seeds so
// a failure in CI replays locally with one command, and the
// regression corpus (internal/orderly/testdata/corpus) is a directory
// of seed files replayed by `go test`.

const seedPrefix = "orderly:v1:"

// FormatSeed renders a replayable seed.
func FormatSeed(config string, trace []string) string {
	return seedPrefix + config + ":" + strings.Join(trace, ",")
}

// ParseSeed splits a seed into its config name and action trace.
func ParseSeed(seed string) (config string, trace []string, err error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(seed), seedPrefix)
	if !ok {
		return "", nil, fmt.Errorf("orderly: seed %q: want prefix %q", seed, seedPrefix)
	}
	config, rest, ok := strings.Cut(body, ":")
	if !ok || config == "" {
		return "", nil, fmt.Errorf("orderly: seed %q: want %s<config>:<actions>", seed, seedPrefix)
	}
	if rest == "" {
		return config, nil, nil
	}
	for _, name := range strings.Split(rest, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return "", nil, fmt.Errorf("orderly: seed %q: empty action name", seed)
		}
		trace = append(trace, name)
	}
	return config, trace, nil
}

// ReplayReport is the outcome of replaying one seed.
type ReplayReport struct {
	Config string
	Trace  []string
	// Hashes is the canonical state hash after each applied step.
	Hashes []uint64
	// Violation is non-nil when the replay falsified an invariant.
	Violation *Violation
}

// ReplaySeed parses a seed, builds its registered configuration, and
// replays the trace with invariant checking (lock shims armed). An
// action disabled mid-trace is an error: a published seed must apply
// in full or pin a violation.
func ReplaySeed(seed string) (*ReplayReport, error) {
	config, trace, err := ParseSeed(seed)
	if err != nil {
		return nil, err
	}
	build, err := Config(config)
	if err != nil {
		return nil, err
	}
	out, err := replayNames(build, trace, true)
	if err != nil {
		return nil, err
	}
	if out.DisabledAt >= 0 {
		return nil, fmt.Errorf("orderly: seed %q: action %q disabled at step %d",
			seed, trace[out.DisabledAt], out.DisabledAt)
	}
	return &ReplayReport{
		Config:    config,
		Trace:     trace,
		Hashes:    out.Hashes,
		Violation: out.Violation,
	}, nil
}
