package orderly

// Shrink reduces a violating action trace to a 1-minimal reproduction:
// removing any single remaining action either stops the violation,
// changes which invariant fails, or disables a later action's guard.
// Greedy single-element elimination iterated to fixpoint — traces are
// bounded by exploration depth, so the O(n²) replay cost is trivial
// next to one exploration round.
func Shrink(build Builder, trace []string, lockCheck bool) ([]string, error) {
	base, err := replayNames(build, trace, lockCheck)
	if err != nil {
		return nil, err
	}
	if base.Violation == nil {
		return nil, &nonReproducibleError{trace: trace}
	}
	// The violating step ends the meaningful trace; drop any suffix.
	cur := append([]string(nil), base.Violation.Raw...)
	want := invariantName(base.Violation.Err)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := make([]string, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			out, err := replayNames(build, cand, lockCheck)
			if err != nil {
				return nil, err
			}
			if out.Violation == nil || invariantName(out.Violation.Err) != want {
				continue
			}
			cur = append([]string(nil), out.Violation.Raw...)
			changed = true
			i--
		}
	}
	return cur, nil
}

// nonReproducibleError reports a trace that no longer violates when
// replayed — a determinism bug in the system adapter, worth surfacing
// loudly rather than silently returning the raw trace.
type nonReproducibleError struct{ trace []string }

func (e *nonReproducibleError) Error() string {
	return "orderly: violation did not reproduce on replay (non-deterministic system?)"
}
