package boundary

import (
	"sync"
	"sync/atomic"
)

// maxPooledCap bounds the capacity of buffers kept by a BufPool: a rare
// huge marshal must not pin its buffer in the pool forever.
const maxPooledCap = 1 << 20

// bufClasses are the pooled capacity classes, covering scalar-only call
// frames (256 B) through large blob payloads (1 MiB). A request is
// served from the smallest class that fits, so under mixed traffic the
// arenas stay dense instead of every pooled buffer drifting toward the
// largest allocation ever seen.
var bufClasses = [...]int{256, 4096, 65536, 1 << 20}

// getClass returns the index of the smallest class covering a requested
// capacity, or -1 when the request exceeds the largest class.
func getClass(capacity int) int {
	for i, class := range bufClasses {
		if capacity <= class {
			return i
		}
	}
	return -1
}

// putClass returns the index of the largest class a buffer's capacity
// covers — the class it can still serve Get requests for — or -1 for
// buffers below the smallest class. A buffer grown by append past its
// origin class is thus re-filed upward, never returned to a class it
// can no longer satisfy.
func putClass(capacity int) int {
	for i := len(bufClasses) - 1; i >= 0; i-- {
		if capacity >= bufClasses[i] {
			return i
		}
	}
	return -1
}

// BufPoolStats counts pool traffic for the miss-rate gauge.
type BufPoolStats struct {
	// Hits are Gets served by a pooled buffer of sufficient capacity.
	Hits uint64
	// Misses are Gets that allocated: an empty class, or a request
	// beyond the largest class.
	Misses uint64
}

// MissRate returns Misses/(Hits+Misses) in [0,1]. Before any Get the
// rate is defined as 0, never NaN — the gauge exported from an idle
// pool must read as "no misses", not poison downstream aggregation.
func (s BufPoolStats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// BufPool recycles marshal buffers on the proxy-call hot path. Returned
// buffers have zero length and at least the requested capacity, so a
// size-precomputed encode (wire.SizeValues + wire.AppendValues) never
// reallocates. Each size class is an independent sync.Pool, which is
// itself sharded per-P — concurrent workers draw from local arenas
// without contending on a shared free list.
type BufPool struct {
	classes [len(bufClasses)]sync.Pool

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewBufPool creates an empty pool.
func NewBufPool() *BufPool {
	p := &BufPool{}
	for i := range p.classes {
		p.classes[i].New = func() any { return new([]byte) }
	}
	return p
}

// Get returns a zero-length buffer with capacity >= capacity, drawn from
// the smallest size class that fits. Requests beyond the largest class
// allocate directly and are never pooled.
func (p *BufPool) Get(capacity int) []byte {
	i := getClass(capacity)
	if i < 0 {
		p.misses.Add(1)
		return make([]byte, 0, capacity)
	}
	buf := *p.classes[i].Get().(*[]byte)
	if cap(buf) < capacity {
		p.misses.Add(1)
		return make([]byte, 0, bufClasses[i])
	}
	p.hits.Add(1)
	return buf[:0]
}

// Put recycles a buffer into the largest class its capacity covers —
// re-classified by CURRENT capacity, so a buffer that grew under append
// since it was borrowed lands in the class it can actually serve. The
// caller must not touch buf afterwards; any slice aliasing it (e.g. a
// decoded view) must have been copied first. Nil, undersized, and
// oversized buffers are dropped.
func (p *BufPool) Put(buf []byte) {
	if buf == nil || cap(buf) > maxPooledCap {
		return
	}
	if i := putClass(cap(buf)); i >= 0 {
		p.classes[i].Put(&buf)
	}
	// Below the smallest class: not worth keeping.
}

// Stats snapshots the pool's hit/miss counters.
func (p *BufPool) Stats() BufPoolStats {
	return BufPoolStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}

// ResetStats zeroes the hit/miss counters without touching the pooled
// buffers, so a benchmark run can measure its own pool behaviour instead
// of inheriting warm-up traffic. Concurrent Gets racing the reset land
// on one side or the other of the zeroing; the counters never go
// negative and MissRate stays in [0,1].
func (p *BufPool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
}
