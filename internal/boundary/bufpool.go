package boundary

import "sync"

// maxPooledCap bounds the capacity of buffers kept by a BufPool: a rare
// huge marshal must not pin its buffer in the pool forever.
const maxPooledCap = 1 << 20

// bufClasses are the pooled capacity classes, covering scalar-only call
// frames (256 B) through large blob payloads (1 MiB). A request is
// served from the smallest class that fits, so under mixed traffic the
// arenas stay dense instead of every pooled buffer drifting toward the
// largest allocation ever seen.
var bufClasses = [...]int{256, 4096, 65536, 1 << 20}

// BufPool recycles marshal buffers on the proxy-call hot path. Returned
// buffers have zero length and at least the requested capacity, so a
// size-precomputed encode (wire.SizeValues + wire.AppendValues) never
// reallocates. Each size class is an independent sync.Pool, which is
// itself sharded per-P — concurrent workers draw from local arenas
// without contending on a shared free list.
type BufPool struct {
	classes [len(bufClasses)]sync.Pool
}

// NewBufPool creates an empty pool.
func NewBufPool() *BufPool {
	p := &BufPool{}
	for i := range p.classes {
		p.classes[i].New = func() any { return new([]byte) }
	}
	return p
}

// Get returns a zero-length buffer with capacity >= capacity, drawn from
// the smallest size class that fits. Requests beyond the largest class
// allocate directly and are never pooled.
func (p *BufPool) Get(capacity int) []byte {
	for i, class := range bufClasses {
		if capacity <= class {
			buf := *p.classes[i].Get().(*[]byte)
			if cap(buf) < capacity {
				return make([]byte, 0, class)
			}
			return buf[:0]
		}
	}
	return make([]byte, 0, capacity)
}

// Put recycles a buffer into the largest class its capacity covers. The
// caller must not touch buf afterwards; any slice aliasing it (e.g. a
// decoded view) must have been copied first. Nil, undersized, and
// oversized buffers are dropped.
func (p *BufPool) Put(buf []byte) {
	if buf == nil || cap(buf) > maxPooledCap {
		return
	}
	for i := len(bufClasses) - 1; i >= 0; i-- {
		if cap(buf) >= bufClasses[i] {
			p.classes[i].Put(&buf)
			return
		}
	}
	// Below the smallest class: not worth keeping.
}
