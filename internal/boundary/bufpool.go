package boundary

import "sync"

// maxPooledCap bounds the capacity of buffers kept by a BufPool: a rare
// huge marshal must not pin its buffer in the pool forever.
const maxPooledCap = 1 << 20

// BufPool recycles marshal buffers on the proxy-call hot path. Returned
// buffers have zero length and at least the requested capacity, so a
// size-precomputed encode (wire.SizeValues + wire.AppendValues) never
// reallocates.
type BufPool struct {
	pool sync.Pool
}

// NewBufPool creates an empty pool.
func NewBufPool() *BufPool {
	return &BufPool{pool: sync.Pool{New: func() any { return new([]byte) }}}
}

// Get returns a zero-length buffer with capacity >= capacity.
func (p *BufPool) Get(capacity int) []byte {
	buf := *p.pool.Get().(*[]byte)
	if cap(buf) < capacity {
		return make([]byte, 0, capacity)
	}
	return buf[:0]
}

// Put recycles a buffer. The caller must not touch buf afterwards; any
// slice aliasing it (e.g. a decoded view) must have been copied first.
// Nil and oversized buffers are dropped.
func (p *BufPool) Put(buf []byte) {
	if buf == nil || cap(buf) > maxPooledCap {
		return
	}
	p.pool.Put(&buf)
}
