// Package boundary is the dispatch layer for cross-runtime calls: every
// transition a partitioned world makes — proxy relay invocations, GC
// sweep releases, batched call frames — is routed through a Dispatcher
// rather than hitting the raw ecall/ocall transport directly.
//
// The layer implements the two transition-avoidance levers of the
// paper's §7 future work:
//
//   - switchless routing (Tian et al., SysTEX'18): when resident worker
//     pools are attached, short calls are posted to a mailbox instead of
//     paying a full context switch. Routing is adaptive — a per-routine
//     exponentially-weighted moving average of body cycles keeps long
//     calls (GC helper, bulk I/O) on regular transitions, where they
//     cannot starve the mailbox; saturated pools fall back to a full
//     transition, which also keeps nested relay chains deadlock-free.
//   - transition batching (Queue): result-independent relay calls are
//     coalesced and flushed in one transition; see queue.go.
//
// The package is mechanism-only: it never inspects call payloads, so
// the world layer stays the single owner of marshalling and dispatch
// semantics.
package boundary

import (
	"errors"
	"sync"
	"sync/atomic"

	"montsalvat/internal/cycles"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
)

// Transport performs full enclave transitions. *sgx.Enclave satisfies
// it.
type Transport interface {
	Ecall(id int, fn func() error) error
	Ocall(id int, fn func() error) error
}

// Pool is a switchless worker mailbox for one transition direction.
// *sgx.SwitchlessPool (ecalls) and *sgx.HostPool (ocalls) satisfy it.
type Pool interface {
	// TryCall runs fn via a resident worker, or returns
	// sgx.ErrPoolBusy/sgx.ErrPoolStopped without running it.
	TryCall(id int, fn func() error) error
	Stop()
}

// Stats counts how the dispatcher routed calls.
type Stats struct {
	// FullCalls crossed with a regular transition (including routings
	// rejected by the adaptive policy and pool fallbacks).
	FullCalls uint64
	// SwitchlessCalls went through a resident-worker mailbox.
	SwitchlessCalls uint64
	// FallbackCalls are the subset of FullCalls that wanted a
	// switchless route but found the pool saturated or stopped.
	FallbackCalls uint64
}

// Dispatcher routes cross-runtime calls over a Transport, optionally
// diverting short calls through switchless pools.
type Dispatcher struct {
	transport Transport
	clock     *cycles.Clock
	ecallPool Pool
	ocallPool Pool
	cutoff    float64

	mu  sync.Mutex
	avg map[int]float64 // routine id -> EWMA of body cycles

	full       atomic.Uint64
	switchless atomic.Uint64
	fallback   atomic.Uint64
}

// NewDispatcher builds a dispatcher over a transport. The clock feeds
// the adaptive policy's cost observations; nil disables observation
// (every call then looks short). Pools are attached with UsePools.
func NewDispatcher(t Transport, clock *cycles.Clock) *Dispatcher {
	return &Dispatcher{
		transport: t,
		clock:     clock,
		cutoff:    simcfg.SwitchlessCutoffCycles,
		avg:       make(map[int]float64),
	}
}

// UsePools attaches resident worker pools: ecallPool serves
// untrusted→trusted calls, ocallPool trusted→untrusted. Either may be
// nil; that direction then always uses full transitions.
func (d *Dispatcher) UsePools(ecallPool, ocallPool Pool) {
	d.ecallPool = ecallPool
	d.ocallPool = ocallPool
}

// Invoke crosses the boundary in the given direction (in=true enters
// the enclave) and runs fn on the other side. long forces a full
// transition regardless of the adaptive policy — callers use it for
// calls known to hold a worker for a long time (GC helper loops).
func (d *Dispatcher) Invoke(in bool, id int, long bool, fn func() error) error {
	wrapped := d.observed(id, fn)
	if pool := d.pool(in); pool != nil && !long && d.prefersSwitchless(id) {
		err := pool.TryCall(id, wrapped)
		if !errors.Is(err, sgx.ErrPoolBusy) && !errors.Is(err, sgx.ErrPoolStopped) {
			d.switchless.Add(1)
			return err
		}
		d.fallback.Add(1)
	}
	d.full.Add(1)
	if in {
		return d.transport.Ecall(id, wrapped)
	}
	return d.transport.Ocall(id, wrapped)
}

// Close stops any attached pools.
func (d *Dispatcher) Close() {
	if d.ecallPool != nil {
		d.ecallPool.Stop()
	}
	if d.ocallPool != nil {
		d.ocallPool.Stop()
	}
}

// Stats returns a snapshot of the routing counters.
func (d *Dispatcher) Stats() Stats {
	return Stats{
		FullCalls:       d.full.Load(),
		SwitchlessCalls: d.switchless.Load(),
		FallbackCalls:   d.fallback.Load(),
	}
}

// RoutineCost returns the current moving-average body cost of a routine
// in cycles (0 when never observed).
func (d *Dispatcher) RoutineCost(id int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.avg[id]
}

func (d *Dispatcher) pool(in bool) Pool {
	if in {
		return d.ecallPool
	}
	return d.ocallPool
}

// prefersSwitchless applies the adaptive policy: routines are assumed
// short until observed otherwise. Observations under concurrency blend
// in cycles charged by unrelated threads — acceptable noise for a
// routing heuristic.
func (d *Dispatcher) prefersSwitchless(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.avg[id] <= d.cutoff
}

// observed wraps fn to record its body cost (cycles charged between
// entry and return, excluding the transition itself) into the EWMA.
func (d *Dispatcher) observed(id int, fn func() error) func() error {
	if d.clock == nil {
		return fn
	}
	return func() error {
		start := d.clock.Total()
		err := fn()
		cost := float64(d.clock.Total() - start)
		d.mu.Lock()
		if old, ok := d.avg[id]; ok {
			d.avg[id] = old + simcfg.SwitchlessEWMAWeight*(cost-old)
		} else {
			d.avg[id] = cost
		}
		d.mu.Unlock()
		return err
	}
}
