// Package boundary is the dispatch layer for cross-runtime calls: every
// transition a partitioned world makes — proxy relay invocations, GC
// sweep releases, batched call frames — is routed through a Dispatcher
// rather than hitting the raw ecall/ocall transport directly.
//
// The layer implements the two transition-avoidance levers of the
// paper's §7 future work:
//
//   - switchless routing (Tian et al., SysTEX'18): when resident worker
//     pools are attached, short calls are posted to a mailbox instead of
//     paying a full context switch. Routing is adaptive — a per-routine
//     exponentially-weighted moving average of body cycles keeps long
//     calls (GC helper, bulk I/O) on regular transitions, where they
//     cannot starve the mailbox; saturated pools fall back to a full
//     transition, which also keeps nested relay chains deadlock-free.
//   - transition batching (Queue): result-independent relay calls are
//     coalesced and flushed in one transition; see queue.go.
//
// The package is mechanism-only: it never inspects call payloads, so
// the world layer stays the single owner of marshalling and dispatch
// semantics.
package boundary

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/cycles"
	"montsalvat/internal/ring"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
)

// Transport performs full enclave transitions. *sgx.Enclave satisfies
// it.
type Transport interface {
	Ecall(id int, fn func() error) error
	Ocall(id int, fn func() error) error
}

// Pool is a switchless worker mailbox for one transition direction.
// *sgx.SwitchlessPool (ecalls) and *sgx.HostPool (ocalls) satisfy it.
type Pool interface {
	// TryCall runs fn via a resident worker, or returns
	// sgx.ErrPoolBusy/sgx.ErrPoolStopped without running it.
	TryCall(id int, fn func() error) error
	Stop()
}

// Stats counts how the dispatcher routed calls.
type Stats struct {
	// FullCalls crossed with a regular transition (including routings
	// rejected by the adaptive policy and pool fallbacks).
	FullCalls uint64
	// SwitchlessCalls went through a resident-worker mailbox.
	SwitchlessCalls uint64
	// FallbackCalls are the subset of FullCalls that wanted a
	// switchless route but found the pool saturated or stopped.
	FallbackCalls uint64
}

// Dispatcher routes cross-runtime calls over a Transport, optionally
// diverting short calls through switchless pools.
type Dispatcher struct {
	transport  Transport
	clock      *cycles.Clock
	ecallPool  Pool
	ocallPool  Pool
	ecallRings *ring.Group
	ocallRings *ring.Group
	cutoff     float64

	mu  sync.Mutex
	avg map[int]float64 // routine id -> EWMA of body cycles

	full         atomic.Uint64
	switchless   atomic.Uint64
	fallback     atomic.Uint64
	ringCalls    atomic.Uint64
	ringFallback atomic.Uint64
	ringOversize atomic.Uint64

	// Telemetry instruments, resolved once by SetTelemetry. All nil when
	// observability is off; every use is nil-safe, so the disabled cost
	// is one pointer comparison per call.
	hDispatchNS *telemetry.Histogram
	hBodyCycles *telemetry.Histogram
}

// NewDispatcher builds a dispatcher over a transport. The clock feeds
// the adaptive policy's cost observations; nil disables observation
// (every call then looks short). Pools are attached with UsePools.
func NewDispatcher(t Transport, clock *cycles.Clock) *Dispatcher {
	return &Dispatcher{
		transport: t,
		clock:     clock,
		cutoff:    simcfg.SwitchlessCutoffCycles,
		avg:       make(map[int]float64),
	}
}

// UsePools attaches resident worker pools: ecallPool serves
// untrusted→trusted calls, ocallPool trusted→untrusted. Either may be
// nil; that direction then always uses full transitions.
func (d *Dispatcher) UsePools(ecallPool, ocallPool Pool) {
	d.ecallPool = ecallPool
	d.ocallPool = ocallPool
}

// SetTelemetry attaches a metrics registry. The dispatcher resolves its
// instruments once here; the routing counters themselves stay private
// atomics and are absorbed by a collector at scrape time (see
// world.initTelemetry), so the hot path gains no extra writes.
func (d *Dispatcher) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	d.hDispatchNS = reg.Histogram("montsalvat_boundary_dispatch_ns")
	d.hBodyCycles = reg.Histogram("montsalvat_boundary_body_cycles")
}

// Invoke crosses the boundary in the given direction (in=true enters
// the enclave) and runs fn on the other side. long forces a full
// transition regardless of the adaptive policy — callers use it for
// calls known to hold a worker for a long time (GC helper loops).
func (d *Dispatcher) Invoke(in bool, id int, long bool, fn func() error) error {
	return d.InvokeSpan(in, id, long, nil, fn)
}

// InvokeSpan is Invoke carrying an optional trace span for the
// transition. The span (nil for unsampled calls) receives the routing
// decision, direction and routine id here, and the far-side body cost
// from the observation wrapper; the caller owns Finish.
func (d *Dispatcher) InvokeSpan(in bool, id int, long bool, sp *telemetry.Span, fn func() error) error {
	sp.SetDir(in)
	sp.SetRoutine(id)
	var start time.Time
	if d.hDispatchNS != nil {
		start = time.Now()
	}
	err := d.route(in, id, long, sp, d.observed(id, sp, fn))
	if d.hDispatchNS != nil {
		d.hDispatchNS.ObserveDuration(time.Since(start))
	}
	return err
}

func (d *Dispatcher) route(in bool, id int, long bool, sp *telemetry.Span, wrapped func() error) error {
	if pool := d.pool(in); pool != nil && !long && d.prefersSwitchless(id) {
		err := pool.TryCall(id, wrapped)
		if !errors.Is(err, sgx.ErrPoolBusy) && !errors.Is(err, sgx.ErrPoolStopped) {
			d.switchless.Add(1)
			sp.SetRoute("switchless")
			return err
		}
		d.fallback.Add(1)
		sp.SetRoute("fallback-full")
	} else {
		sp.SetRoute("full")
	}
	d.full.Add(1)
	if in {
		return d.transport.Ecall(id, wrapped)
	}
	return d.transport.Ocall(id, wrapped)
}

// Close stops any attached pools and ring groups.
func (d *Dispatcher) Close() {
	if d.ecallPool != nil {
		d.ecallPool.Stop()
	}
	if d.ocallPool != nil {
		d.ocallPool.Stop()
	}
	d.ecallRings.Close()
	d.ocallRings.Close()
}

// Stats returns a snapshot of the routing counters.
func (d *Dispatcher) Stats() Stats {
	return Stats{
		FullCalls:       d.full.Load(),
		SwitchlessCalls: d.switchless.Load(),
		FallbackCalls:   d.fallback.Load(),
	}
}

// RoutineCost returns the current moving-average body cost of a routine
// in cycles (0 when never observed).
func (d *Dispatcher) RoutineCost(id int) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.avg[id]
}

func (d *Dispatcher) pool(in bool) Pool {
	if in {
		return d.ecallPool
	}
	return d.ocallPool
}

// prefersSwitchless applies the adaptive policy: routines are assumed
// short until observed otherwise. Observations under concurrency blend
// in cycles charged by unrelated threads — acceptable noise for a
// routing heuristic.
func (d *Dispatcher) prefersSwitchless(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.avg[id] <= d.cutoff
}

// observed wraps fn to record its body cost (cycles charged between
// entry and return, excluding the transition itself) into the EWMA,
// the body-cycles histogram and the span.
func (d *Dispatcher) observed(id int, sp *telemetry.Span, fn func() error) func() error {
	if d.clock == nil {
		return fn
	}
	return func() error {
		start := d.clock.Total()
		err := fn()
		spent := d.clock.Total() - start
		sp.SetBodyCycles(spent)
		d.hBodyCycles.Observe(spent)
		cost := float64(spent)
		d.mu.Lock()
		if old, ok := d.avg[id]; ok {
			d.avg[id] = old + simcfg.SwitchlessEWMAWeight*(cost-old)
		} else {
			d.avg[id] = cost
		}
		d.mu.Unlock()
		return err
	}
}
