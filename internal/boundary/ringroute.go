package boundary

import (
	"errors"
	"time"

	"montsalvat/internal/ring"
	"montsalvat/internal/telemetry"
)

// Ring routing: the zero-copy data plane (internal/ring) is a third
// route next to "switchless" and "full". Unlike those, it is not a
// transition at all — the payload is encoded straight into a shared
// slot, sealed in place, and served by a resident consumer — so the
// dispatcher only arbitrates WHETHER a call may ride a ring and keeps
// the routing counters; the payload mechanics stay in the world layer's
// fill/done callbacks and the ring package. Any reason a call cannot
// ride (no group attached, payload over the slot capacity, every
// producer busy, group stopped) reports "didn't run" and the caller
// falls through to Invoke's frame path, mirroring the switchless
// fallback discipline that keeps nested relay chains deadlock-free.

// RingStats counts ring-route outcomes at the dispatcher level.
type RingStats struct {
	// RingCalls rode a ring end to end (including batch submissions).
	RingCalls uint64
	// RingFallbacks wanted the ring but found it busy or stopped.
	RingFallbacks uint64
	// RingOversize exceeded the slot payload capacity and went to the
	// frame path.
	RingOversize uint64
}

// UseRings attaches the zero-copy ring groups: ecalls serves
// untrusted→trusted submissions, ocalls trusted→untrusted. Either may
// be nil; that direction then never routes through rings. The
// dispatcher takes ownership: Close also closes attached groups.
func (d *Dispatcher) UseRings(ecalls, ocalls *ring.Group) {
	d.ecallRings = ecalls
	d.ocallRings = ocalls
}

func (d *Dispatcher) rings(in bool) *ring.Group {
	if in {
		return d.ecallRings
	}
	return d.ocallRings
}

// HasRings reports whether a ring group is attached for the direction,
// so callers can skip preparing slot encodes entirely when the ring
// path is off.
func (d *Dispatcher) HasRings(in bool) bool {
	return d.rings(in) != nil
}

// InvokeRing tries to cross the boundary through a ring slot: fill
// encodes the request directly into the slot, done receives the opened
// response in place. need is the exact encoded request size. The bool
// reports whether the ring carried the call — (false, nil) means
// nothing ran and the caller must fall back to InvokeSpan; when true,
// the error is the remote handler's (or done's).
func (d *Dispatcher) InvokeRing(in bool, id, need int, sp *telemetry.Span, fill func(slot []byte) ([]byte, error), done func(resp []byte) error) (bool, error) {
	g := d.rings(in)
	if g == nil {
		return false, nil
	}
	sp.SetDir(in)
	sp.SetRoutine(id)
	var start time.Time
	if d.hDispatchNS != nil {
		start = time.Now()
	}
	err := g.TryCall(id, need, sp, fill, done)
	switch {
	case errors.Is(err, ring.ErrTooLarge):
		d.ringOversize.Add(1)
		return false, nil
	case errors.Is(err, ring.ErrBusy), errors.Is(err, ring.ErrStopped):
		d.ringFallback.Add(1)
		sp.SetRoute("ring-fallback")
		return false, nil
	}
	d.ringCalls.Add(1)
	sp.SetRoute("ring")
	if d.hDispatchNS != nil {
		d.hDispatchNS.ObserveDuration(time.Since(start))
	}
	return true, err
}

// InvokeRingBatch tries to submit a set of void calls as individual
// ring entries consumed in shared wakeups (adaptive batching). Same
// ran/fell-back contract as InvokeRing; on (false, nil) the caller
// flushes the batch through the frame path instead. All-or-nothing:
// if any entry is oversized, none ride.
func (d *Dispatcher) InvokeRingBatch(in bool, entries []ring.BatchEntry) (bool, error) {
	g := d.rings(in)
	if g == nil {
		return false, nil
	}
	err := g.TryBatch(entries)
	switch {
	case errors.Is(err, ring.ErrTooLarge):
		d.ringOversize.Add(1)
		return false, nil
	case errors.Is(err, ring.ErrBusy), errors.Is(err, ring.ErrStopped):
		d.ringFallback.Add(1)
		return false, nil
	}
	d.ringCalls.Add(uint64(len(entries)))
	return true, err
}

// RingStats returns a snapshot of the ring routing counters.
func (d *Dispatcher) RingStats() RingStats {
	return RingStats{
		RingCalls:     d.ringCalls.Load(),
		RingFallbacks: d.ringFallback.Load(),
		RingOversize:  d.ringOversize.Load(),
	}
}
