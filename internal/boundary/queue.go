package boundary

import (
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/telemetry"
)

// Entry is one queued cross-runtime call: the routing key (EDL routine
// id) plus the already-marshalled invocation the flusher packs into a
// batched frame. Only result-independent calls may be queued — the
// caller observes nothing of a queued call until a flush, so errors are
// deferred to the flushing caller.
type Entry struct {
	ID     int
	Class  string
	Method string
	Hash   int64
	Args   []byte

	// EnqueuedNS is the wall clock at Enqueue, stamped only when
	// telemetry is attached (zero otherwise) — it feeds the queue-wait
	// histogram and batch flush spans.
	EnqueuedNS int64
}

// Queue coalesces result-independent calls from one runtime into
// batched transitions. Enqueued entries are flushed — in order — by the
// run callback when the watermark is reached, a result-dependent call
// needs the queue empty first, or World.Flush is called explicitly.
type Queue struct {
	watermark int
	run       func([]Entry) error

	mu      sync.Mutex
	pending []Entry

	// flushMu serializes flushes so concurrent flushers cannot reorder
	// two drained batches relative to each other. It is taken before
	// draining pending (never while holding mu).
	flushMu sync.Mutex

	flushes atomic.Uint64
	batched atomic.Uint64

	hWait *telemetry.Histogram // oldest-entry wait per flush
	hSize *telemetry.Histogram // calls per flushed batch
}

// NewQueue builds a queue flushing through run at the given watermark.
func NewQueue(watermark int, run func([]Entry) error) *Queue {
	return &Queue{watermark: watermark, run: run}
}

// SetTelemetry attaches the queue-wait and batch-size histograms.
// Enqueue stamps entries with a wall clock only once these are set.
func (q *Queue) SetTelemetry(wait, size *telemetry.Histogram) {
	q.hWait = wait
	q.hSize = size
}

// Enqueue appends a call, flushing first the moment the queue reaches
// the watermark. The returned error is a flush error; the enqueued call
// itself reports nothing until a later flush.
func (q *Queue) Enqueue(e Entry) error {
	if q.hWait != nil {
		e.EnqueuedNS = time.Now().UnixNano()
	}
	q.mu.Lock()
	q.pending = append(q.pending, e)
	full := len(q.pending) >= q.watermark
	q.mu.Unlock()
	if full {
		return q.Flush()
	}
	return nil
}

// Flush drains the queue and runs the drained batch in one transition.
// A no-op on an empty queue. Errors from individual batched calls are
// joined by the run callback.
func (q *Queue) Flush() error {
	q.flushMu.Lock()
	defer q.flushMu.Unlock()
	q.mu.Lock()
	batch := q.pending
	q.pending = nil
	q.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	q.flushes.Add(1)
	q.batched.Add(uint64(len(batch)))
	q.hSize.Observe(int64(len(batch)))
	if q.hWait != nil && batch[0].EnqueuedNS != 0 {
		q.hWait.Observe(time.Now().UnixNano() - batch[0].EnqueuedNS)
	}
	return q.run(batch)
}

// Len returns the number of calls waiting to be flushed.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// QueueStats counts batching activity.
type QueueStats struct {
	// Flushes is the number of batched transitions performed.
	Flushes uint64
	// BatchedCalls is the total number of calls they carried.
	BatchedCalls uint64
}

// Stats returns a snapshot of the batching counters.
func (q *Queue) Stats() QueueStats {
	return QueueStats{Flushes: q.flushes.Load(), BatchedCalls: q.batched.Load()}
}
