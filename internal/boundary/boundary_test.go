package boundary

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"montsalvat/internal/cycles"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
)

// fakeTransport counts full transitions without charging anything.
type fakeTransport struct {
	mu     sync.Mutex
	ecalls map[int]int
	ocalls map[int]int
}

func newFakeTransport() *fakeTransport {
	return &fakeTransport{ecalls: make(map[int]int), ocalls: make(map[int]int)}
}

func (t *fakeTransport) Ecall(id int, fn func() error) error {
	t.mu.Lock()
	t.ecalls[id]++
	t.mu.Unlock()
	return fn()
}

func (t *fakeTransport) Ocall(id int, fn func() error) error {
	t.mu.Lock()
	t.ocalls[id]++
	t.mu.Unlock()
	return fn()
}

// fakePool serves or rejects switchless calls.
type fakePool struct {
	mu      sync.Mutex
	calls   int
	stopped bool
	reject  error // returned without running fn when non-nil
}

func (p *fakePool) TryCall(id int, fn func() error) error {
	p.mu.Lock()
	if p.reject != nil {
		err := p.reject
		p.mu.Unlock()
		return err
	}
	p.calls++
	p.mu.Unlock()
	return fn()
}

func (p *fakePool) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

func TestDispatcherFullWithoutPools(t *testing.T) {
	tr := newFakeTransport()
	d := NewDispatcher(tr, nil)
	if err := d.Invoke(true, 1, false, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Invoke(false, 2, false, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if tr.ecalls[1] != 1 || tr.ocalls[2] != 1 {
		t.Fatalf("transport counts: %v %v", tr.ecalls, tr.ocalls)
	}
	st := d.Stats()
	if st.FullCalls != 2 || st.SwitchlessCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDispatcherRoutesShortCallsSwitchless(t *testing.T) {
	tr := newFakeTransport()
	epool, opool := &fakePool{}, &fakePool{}
	d := NewDispatcher(tr, nil)
	d.UsePools(epool, opool)
	for i := 0; i < 5; i++ {
		if err := d.Invoke(true, 1, false, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := d.Invoke(false, 2, false, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if epool.calls != 5 || opool.calls != 5 {
		t.Fatalf("pool calls = %d/%d, want 5/5", epool.calls, opool.calls)
	}
	if len(tr.ecalls)+len(tr.ocalls) != 0 {
		t.Fatalf("unexpected full transitions: %v %v", tr.ecalls, tr.ocalls)
	}
	if st := d.Stats(); st.SwitchlessCalls != 10 || st.FullCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDispatcherLongFlagForcesFull(t *testing.T) {
	tr := newFakeTransport()
	epool := &fakePool{}
	d := NewDispatcher(tr, nil)
	d.UsePools(epool, nil)
	if err := d.Invoke(true, 9, true, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if epool.calls != 0 || tr.ecalls[9] != 1 {
		t.Fatalf("long call touched the pool (%d) or skipped the transport (%v)", epool.calls, tr.ecalls)
	}
}

func TestDispatcherAdaptivePolicy(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	tr := newFakeTransport()
	epool := &fakePool{}
	d := NewDispatcher(tr, clk)
	d.UsePools(epool, nil)

	// First call is optimistically switchless; its body then reveals a
	// cost above the cutoff, so later calls take full transitions.
	heavy := func() error {
		clk.Charge(2 * simcfg.SwitchlessCutoffCycles)
		return nil
	}
	for i := 0; i < 3; i++ {
		if err := d.Invoke(true, 5, false, heavy); err != nil {
			t.Fatal(err)
		}
	}
	if epool.calls != 1 {
		t.Fatalf("pool served %d heavy calls, want only the probe", epool.calls)
	}
	if tr.ecalls[5] != 2 {
		t.Fatalf("full transitions = %d, want 2", tr.ecalls[5])
	}
	if cost := d.RoutineCost(5); cost < simcfg.SwitchlessCutoffCycles {
		t.Fatalf("RoutineCost = %g, want above cutoff", cost)
	}

	// A cheap routine stays switchless throughout.
	for i := 0; i < 3; i++ {
		if err := d.Invoke(true, 6, false, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if epool.calls != 4 {
		t.Fatalf("cheap routine not switchless: pool calls = %d", epool.calls)
	}
}

func TestDispatcherFallsBackWhenPoolUnavailable(t *testing.T) {
	for _, reject := range []error{sgx.ErrPoolBusy, sgx.ErrPoolStopped} {
		tr := newFakeTransport()
		epool := &fakePool{reject: reject}
		d := NewDispatcher(tr, nil)
		d.UsePools(epool, nil)
		if err := d.Invoke(true, 3, false, func() error { return nil }); err != nil {
			t.Fatalf("%v: %v", reject, err)
		}
		if tr.ecalls[3] != 1 {
			t.Fatalf("%v: no full-transition fallback", reject)
		}
		if st := d.Stats(); st.FallbackCalls != 1 || st.FullCalls != 1 || st.SwitchlessCalls != 0 {
			t.Fatalf("%v: stats = %+v", reject, st)
		}
	}
}

func TestDispatcherPropagatesBodyError(t *testing.T) {
	tr := newFakeTransport()
	d := NewDispatcher(tr, nil)
	d.UsePools(&fakePool{}, nil)
	boom := errors.New("boom")
	if err := d.Invoke(true, 1, false, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Body errors are not pool-availability errors: no fallback retry.
	if st := d.Stats(); st.SwitchlessCalls != 1 || st.FullCalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDispatcherClose(t *testing.T) {
	epool, opool := &fakePool{}, &fakePool{}
	d := NewDispatcher(newFakeTransport(), nil)
	d.UsePools(epool, opool)
	d.Close()
	if !epool.stopped || !opool.stopped {
		t.Fatal("Close did not stop the pools")
	}
}

func TestQueueOrderAndWatermark(t *testing.T) {
	var got []int64
	var batches []int
	q := NewQueue(4, func(es []Entry) error {
		batches = append(batches, len(es))
		for _, e := range es {
			got = append(got, e.Hash)
		}
		return nil
	})
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(Entry{Hash: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, h := range got {
		if h != int64(i) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
	if len(batches) != 3 || batches[0] != 4 || batches[1] != 4 || batches[2] != 2 {
		t.Fatalf("batches = %v, want [4 4 2]", batches)
	}
	if st := q.Stats(); st.Flushes != 3 || st.BatchedCalls != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after flush", q.Len())
	}
}

func TestQueueFlushEmptyIsNoop(t *testing.T) {
	q := NewQueue(4, func(es []Entry) error { return errors.New("must not run") })
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Flushes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueConcurrentEnqueueKeepsAllCalls(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int64]bool)
	q := NewQueue(8, func(es []Entry) error {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range es {
			if seen[e.Hash] {
				return fmt.Errorf("hash %d flushed twice", e.Hash)
			}
			seen[e.Hash] = true
		}
		return nil
	})
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := q.Enqueue(Entry{Hash: int64(w*per + i)}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != workers*per {
		t.Fatalf("flushed %d calls, want %d", len(seen), workers*per)
	}
}

func TestBufPoolReuse(t *testing.T) {
	p := NewBufPool()
	buf := p.Get(100)
	if len(buf) != 0 || cap(buf) < 100 {
		t.Fatalf("Get: len=%d cap=%d", len(buf), cap(buf))
	}
	buf = append(buf, 1, 2, 3)
	p.Put(buf)
	again := p.Get(2)
	if len(again) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(again))
	}
	// Oversized buffers are dropped rather than pinned.
	p.Put(make([]byte, 0, maxPooledCap+1))
	p.Put(nil)
}

func TestBufPoolSizeClasses(t *testing.T) {
	p := NewBufPool()
	// A buffer recycled into a small class must not satisfy a larger
	// request with insufficient capacity.
	p.Put(make([]byte, 0, 256))
	big := p.Get(10000)
	if cap(big) < 10000 {
		t.Fatalf("Get(10000): cap=%d", cap(big))
	}
	// Each class hands back at least its class size, so repeated small
	// requests reuse one allocation.
	for want, n := range map[int]int{256: 1, 4096: 300, 65536: 5000, 1 << 20: 70000} {
		buf := p.Get(n)
		if cap(buf) < want {
			t.Fatalf("Get(%d): cap=%d, want >= %d", n, cap(buf), want)
		}
		p.Put(buf)
		if again := p.Get(n); cap(again) < n {
			t.Fatalf("recycled Get(%d): cap=%d", n, cap(again))
		}
	}
	// Beyond the largest class: exact allocation, never pooled.
	huge := p.Get(maxPooledCap + 1)
	if cap(huge) < maxPooledCap+1 {
		t.Fatalf("huge Get: cap=%d", cap(huge))
	}
	p.Put(huge)
}
