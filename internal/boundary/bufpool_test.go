package boundary

import (
	"math"
	"testing"
)

// TestBufPoolClassification pins the class mapping on both sides of
// the pool: Get draws from the smallest covering class, Put re-files by
// CURRENT capacity — so a buffer grown by append since it was borrowed
// lands in the class it can actually serve, never back in its origin
// class.
func TestBufPoolClassification(t *testing.T) {
	for _, tc := range []struct {
		capacity int
		wantGet  int // class index Get draws from
		wantPut  int // class index Put files into
	}{
		{capacity: 1, wantGet: 0, wantPut: -1},
		{capacity: 256, wantGet: 0, wantPut: 0},
		{capacity: 257, wantGet: 1, wantPut: 0},
		{capacity: 4096, wantGet: 1, wantPut: 1},
		{capacity: 5000, wantGet: 2, wantPut: 1},
		{capacity: 65536, wantGet: 2, wantPut: 2},
		{capacity: 65537, wantGet: 3, wantPut: 2},
		{capacity: 1 << 20, wantGet: 3, wantPut: 3},
		{capacity: 1<<20 + 1, wantGet: -1, wantPut: 3},
	} {
		if got := getClass(tc.capacity); got != tc.wantGet {
			t.Errorf("getClass(%d) = %d, want %d", tc.capacity, got, tc.wantGet)
		}
		if got := putClass(tc.capacity); got != tc.wantPut {
			t.Errorf("putClass(%d) = %d, want %d", tc.capacity, got, tc.wantPut)
		}
	}
}

// TestBufPoolGrownBufferReclassified is the grow-then-put audit case: a
// buffer borrowed from the 256 class that grew to 8 KiB under append
// must come back out of a larger class, with its full capacity.
func TestBufPoolGrownBufferReclassified(t *testing.T) {
	p := NewBufPool()
	buf := p.Get(100)                        // 256 class
	buf = append(buf, make([]byte, 8192)...) // growth reallocates past 4096
	grownCap := cap(buf)
	if grownCap < 8192 {
		t.Fatalf("append did not grow: cap=%d", grownCap)
	}
	p.Put(buf)
	// The grown buffer must satisfy a request its origin class could not.
	again := p.Get(5000)
	if cap(again) < 5000 {
		t.Fatalf("Get(5000) after grown Put: cap=%d", cap(again))
	}
}

func TestBufPoolStats(t *testing.T) {
	p := NewBufPool()
	if s := p.Stats(); s.Hits != 0 || s.Misses != 0 || s.MissRate() != 0 {
		t.Fatalf("fresh pool stats %+v", s)
	}
	b1 := p.Get(100) // empty class: miss
	p.Put(b1)
	p.Get(100)              // recycled: hit
	p.Get(maxPooledCap + 1) // beyond largest class: miss
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses", s)
	}
	if got := s.MissRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("miss rate %f, want 2/3", got)
	}
}

// TestBufPoolIdleMissRateZero pins the idle-gauge contract: before any
// Get — and again right after a stats reset — MissRate is exactly 0,
// never NaN. The world telemetry collector exports this value scaled to
// basis points; a NaN here would convert to a garbage gauge sample.
func TestBufPoolIdleMissRateZero(t *testing.T) {
	p := NewBufPool()
	if r := p.Stats().MissRate(); r != 0 || math.IsNaN(r) {
		t.Fatalf("idle miss rate = %v, want exactly 0", r)
	}
	if bps := int64(p.Stats().MissRate() * 10000); bps != 0 {
		t.Fatalf("idle miss-rate gauge = %d bps, want 0", bps)
	}
}

// TestBufPoolResetStats: the reset hook gives benchmarks clean per-run
// numbers — counters return to zero (and MissRate to 0, not NaN) while
// pooled buffers stay warm.
func TestBufPoolResetStats(t *testing.T) {
	p := NewBufPool()
	b := p.Get(100) // miss
	p.Put(b)
	b = p.Get(100) // hit
	p.Put(b)
	if s := p.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("pre-reset stats %+v", s)
	}
	p.ResetStats()
	s := p.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("post-reset stats %+v, want zeros", s)
	}
	if r := s.MissRate(); r != 0 || math.IsNaN(r) {
		t.Fatalf("post-reset miss rate = %v, want exactly 0", r)
	}
	// The pool itself was not drained: the buffer recycled before the
	// reset still serves the next Get as a hit.
	p.Get(100)
	if s := p.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("post-reset traffic stats %+v, want 1 hit", s)
	}
}
