package graphchi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"montsalvat/internal/shim"
)

// RunConnectedComponents computes weakly connected components over the
// shard set with label propagation — a second GraphChi program besides
// PageRank (GraphChi ships both as example applications). Every vertex
// starts with its own id as label; each iteration propagates the minimum
// label across every edge (in both directions, for weak connectivity)
// until a fixpoint. The returned slice maps vertex id to its component
// label (the smallest vertex id in the component).
//
// Like RunPageRank, shards stream through the supplied FS (ocalls when
// enclosed) and the touch hook charges the memory traffic.
func RunConnectedComponents(fs shim.FS, set ShardSet, maxIterations int, touch func(n int)) ([]int32, EngineStats, error) {
	var stats EngineStats
	if touch == nil {
		touch = func(int) {}
	}
	n := set.NumVertices
	if n == 0 {
		return nil, stats, errors.New("graphchi: empty shard set")
	}
	if maxIterations <= 0 {
		maxIterations = n // label propagation converges in <= diameter iterations
	}

	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}

	for it := 0; it < maxIterations; it++ {
		changed := false
		touch(4 * n)
		stats.BytesStreamed += int64(4 * n)
		for s := 0; s < set.NumShards; s++ {
			size := set.EdgeCounts[s] * edgeBytes
			if size == 0 {
				continue
			}
			name := set.shardFile(s)
			for off := 0; off < size; off += readBlockBytes {
				blk := readBlockBytes
				if off+blk > size {
					blk = size - off
				}
				data, err := fs.ReadAt(name, int64(off), blk)
				if err != nil {
					return nil, stats, fmt.Errorf("graphchi: shard %d: %w", s, err)
				}
				stats.ReadOps++
				stats.BytesRead += int64(blk)
				for i := 0; i+edgeBytes <= len(data); i += edgeBytes {
					src := int32(binary.LittleEndian.Uint32(data[i:]))
					dst := int32(binary.LittleEndian.Uint32(data[i+4:]))
					if labels[src] < labels[dst] {
						labels[dst] = labels[src]
						changed = true
					} else if labels[dst] < labels[src] {
						labels[src] = labels[dst]
						changed = true
					}
					stats.EdgesProcessed++
				}
				touch(blk + (blk/edgeBytes)*8)
				stats.BytesStreamed += int64(blk + (blk/edgeBytes)*8)
			}
		}
		if !changed {
			break
		}
	}
	return labels, stats, nil
}
