// Package graphchi implements a GraphChi-style out-of-core graph engine
// (Kyrola et al., OSDI'12), the second macro-benchmark of the paper
// (§6.5).
//
// The workflow matches the paper's Fig. 8: a FastSharder splits the input
// edge list into interval shards on disk (phase 1, I/O heavy — the part
// the Montsalvat partitioning moves OUT of the enclave), and the engine
// processes the shards iteratively to compute PageRank (phase 2, memory
// and CPU heavy — the part kept inside the enclave).
//
// All file I/O goes through a shim.FS, so shard writes become ocalls when
// the sharder runs inside an enclave, and shard reads become ocalls when
// the engine does. The engine reports the bytes it streams so the caller
// can charge MEE cost via a touch hook.
package graphchi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"montsalvat/internal/rmat"
	"montsalvat/internal/shim"
)

const (
	edgeBytes = 8
	// writeChunkEdges is the sharder's write-buffer size per shard: the
	// out-of-core design streams edges to disk in small buffered writes
	// rather than holding whole shards in memory, so shard construction
	// is I/O-operation heavy (the behaviour Fig. 9's partitioning
	// exploits).
	writeChunkEdges = 64
	// readBlockBytes is the engine's shard read granularity.
	readBlockBytes = 1 << 16
)

// ErrBadShardCount rejects non-positive shard counts.
var ErrBadShardCount = errors.New("graphchi: number of shards must be positive")

// ShardSet describes the on-disk sharded graph.
type ShardSet struct {
	// Prefix names the shard files: "<prefix>.shardN" plus
	// "<prefix>.deg" for the out-degree table.
	Prefix      string
	NumShards   int
	NumVertices int
	// UpperBounds[i] is the exclusive upper vertex bound of shard i's
	// destination interval.
	UpperBounds []int32
	// EdgeCounts[i] is the number of edges in shard i.
	EdgeCounts []int
}

func (s ShardSet) shardFile(i int) string {
	return fmt.Sprintf("%s.shard%d", s.Prefix, i)
}

func (s ShardSet) degreeFile() string { return s.Prefix + ".deg" }

// SharderStats counts FastSharder activity.
type SharderStats struct {
	EdgesSharded int
	BytesWritten int64
	// WriteOps counts FS writes (ocalls when the sharder is enclosed).
	WriteOps int
	// BytesRead and ReadOps account the sort pass.
	BytesRead int64
	ReadOps   int
}

// Shard is the FastSharder: it partitions the edges into numShards
// destination intervals, streams them to shard files, sorts each shard by
// source vertex, and writes the out-degree table.
func Shard(fs shim.FS, g rmat.Graph, numShards int, prefix string) (ShardSet, SharderStats, error) {
	var stats SharderStats
	if numShards < 1 {
		return ShardSet{}, stats, ErrBadShardCount
	}
	set := ShardSet{
		Prefix:      prefix,
		NumShards:   numShards,
		NumVertices: g.NumVertices,
		UpperBounds: make([]int32, numShards),
		EdgeCounts:  make([]int, numShards),
	}
	per := (g.NumVertices + numShards - 1) / numShards
	for i := 0; i < numShards; i++ {
		ub := (i + 1) * per
		if ub > g.NumVertices {
			ub = g.NumVertices
		}
		set.UpperBounds[i] = int32(ub)
	}
	shardOf := func(dst int32) int {
		s := int(dst) / per
		if s >= numShards {
			s = numShards - 1
		}
		return s
	}

	// Remove stale shard files from previous runs.
	for i := 0; i < numShards; i++ {
		if err := fs.Remove(set.shardFile(i)); err != nil && !errors.Is(err, shim.ErrNotFound) {
			return ShardSet{}, stats, err
		}
	}

	// Phase 1a: stream edges to shard files in chunks.
	chunks := make([][]byte, numShards)
	flush := func(i int) error {
		if len(chunks[i]) == 0 {
			return nil
		}
		if _, err := fs.Append(set.shardFile(i), chunks[i]); err != nil {
			return err
		}
		stats.WriteOps++
		stats.BytesWritten += int64(len(chunks[i]))
		chunks[i] = chunks[i][:0]
		return nil
	}
	for _, e := range g.Edges {
		s := shardOf(e.Dst)
		chunks[s] = binary.LittleEndian.AppendUint32(chunks[s], uint32(e.Src))
		chunks[s] = binary.LittleEndian.AppendUint32(chunks[s], uint32(e.Dst))
		set.EdgeCounts[s]++
		stats.EdgesSharded++
		if len(chunks[s]) >= writeChunkEdges*edgeBytes {
			if err := flush(s); err != nil {
				return ShardSet{}, stats, err
			}
		}
	}
	for i := 0; i < numShards; i++ {
		if err := flush(i); err != nil {
			return ShardSet{}, stats, err
		}
	}

	// Phase 1b: sort each shard by source vertex (read, sort, rewrite).
	for i := 0; i < numShards; i++ {
		if set.EdgeCounts[i] == 0 {
			continue
		}
		name := set.shardFile(i)
		size := set.EdgeCounts[i] * edgeBytes
		data, err := fs.ReadAt(name, 0, size)
		if err != nil {
			return ShardSet{}, stats, err
		}
		stats.ReadOps++
		stats.BytesRead += int64(size)
		edges := decodeEdges(data)
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].Src != edges[b].Src {
				return edges[a].Src < edges[b].Src
			}
			return edges[a].Dst < edges[b].Dst
		})
		if err := fs.WriteAt(name, 0, encodeEdges(edges)); err != nil {
			return ShardSet{}, stats, err
		}
		stats.WriteOps++
		stats.BytesWritten += int64(size)
	}

	// Out-degree table for the PageRank normalisation.
	deg := g.OutDegrees()
	degBuf := make([]byte, 4*len(deg))
	for v, d := range deg {
		binary.LittleEndian.PutUint32(degBuf[4*v:], uint32(d))
	}
	if err := fs.WriteAt(set.degreeFile(), 0, degBuf); err != nil {
		return ShardSet{}, stats, err
	}
	stats.WriteOps++
	stats.BytesWritten += int64(len(degBuf))

	return set, stats, nil
}

// EngineStats counts engine activity.
type EngineStats struct {
	EdgesProcessed int64
	BytesRead      int64
	// ReadOps counts FS reads (ocalls when the engine is enclosed).
	ReadOps int
	// BytesStreamed is the memory traffic of rank computation (charged
	// to the MEE inside an enclave via the touch hook).
	BytesStreamed int64
}

// PageRankConfig parameterises the computation.
type PageRankConfig struct {
	// Iterations of the power method (default 4, as GraphChi's example).
	Iterations int
	// Damping is the PageRank damping factor (default 0.85).
	Damping float64
}

func (c *PageRankConfig) defaults() {
	if c.Iterations <= 0 {
		c.Iterations = 4
	}
	if c.Damping <= 0 || c.Damping >= 1 {
		c.Damping = 0.85
	}
}

// RunPageRank executes PageRank over the shard set, shard at a time —
// the GraphChiEngine of Fig. 8. touch (optional) receives the bytes each
// step streams through memory.
func RunPageRank(fs shim.FS, set ShardSet, cfg PageRankConfig, touch func(n int)) ([]float64, EngineStats, error) {
	cfg.defaults()
	var stats EngineStats
	if touch == nil {
		touch = func(int) {}
	}
	n := set.NumVertices
	if n == 0 {
		return nil, stats, errors.New("graphchi: empty shard set")
	}

	// Load the out-degree table.
	degBuf, err := fs.ReadAt(set.degreeFile(), 0, 4*n)
	if err != nil {
		return nil, stats, fmt.Errorf("graphchi: degree table: %w", err)
	}
	stats.ReadOps++
	stats.BytesRead += int64(len(degBuf))
	deg := make([]int, n)
	for v := range deg {
		deg[v] = int(binary.LittleEndian.Uint32(degBuf[4*v:]))
	}

	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1.0 / float64(n)
	}
	next := make([]float64, n)

	base := (1 - cfg.Damping) / float64(n)
	for it := 0; it < cfg.Iterations; it++ {
		for v := range next {
			next[v] = base
		}
		touch(16 * n) // rank vectors streamed
		stats.BytesStreamed += int64(16 * n)
		for s := 0; s < set.NumShards; s++ {
			size := set.EdgeCounts[s] * edgeBytes
			if size == 0 {
				continue
			}
			name := set.shardFile(s)
			// Out-of-core: stream the shard in blocks.
			for off := 0; off < size; off += readBlockBytes {
				blk := readBlockBytes
				if off+blk > size {
					blk = size - off
				}
				data, err := fs.ReadAt(name, int64(off), blk)
				if err != nil {
					return nil, stats, fmt.Errorf("graphchi: shard %d: %w", s, err)
				}
				stats.ReadOps++
				stats.BytesRead += int64(blk)
				for _, e := range decodeEdges(data) {
					if d := deg[e.Src]; d > 0 {
						next[e.Dst] += cfg.Damping * ranks[e.Src] / float64(d)
					}
					stats.EdgesProcessed++
				}
				touch(blk + (blk/edgeBytes)*16) // edge data + rank updates
				stats.BytesStreamed += int64(blk + (blk/edgeBytes)*16)
			}
		}
		ranks, next = next, ranks
	}
	return ranks, stats, nil
}

// ReferencePageRank computes PageRank directly from an in-memory edge
// list with the same update rule, for verification.
func ReferencePageRank(g rmat.Graph, cfg PageRankConfig) []float64 {
	cfg.defaults()
	n := g.NumVertices
	deg := g.OutDegrees()
	ranks := make([]float64, n)
	for v := range ranks {
		ranks[v] = 1.0 / float64(n)
	}
	next := make([]float64, n)
	base := (1 - cfg.Damping) / float64(n)
	for it := 0; it < cfg.Iterations; it++ {
		for v := range next {
			next[v] = base
		}
		for _, e := range g.Edges {
			if d := deg[e.Src]; d > 0 {
				next[e.Dst] += cfg.Damping * ranks[e.Src] / float64(d)
			}
		}
		ranks, next = next, ranks
	}
	return ranks
}

func decodeEdges(data []byte) []rmat.Edge {
	edges := make([]rmat.Edge, len(data)/edgeBytes)
	for i := range edges {
		edges[i].Src = int32(binary.LittleEndian.Uint32(data[i*edgeBytes:]))
		edges[i].Dst = int32(binary.LittleEndian.Uint32(data[i*edgeBytes+4:]))
	}
	return edges
}

func encodeEdges(edges []rmat.Edge) []byte {
	out := make([]byte, len(edges)*edgeBytes)
	for i, e := range edges {
		binary.LittleEndian.PutUint32(out[i*edgeBytes:], uint32(e.Src))
		binary.LittleEndian.PutUint32(out[i*edgeBytes+4:], uint32(e.Dst))
	}
	return out
}
