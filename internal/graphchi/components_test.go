package graphchi

import (
	"testing"

	"montsalvat/internal/rmat"
	"montsalvat/internal/shim"
)

// referenceComponents computes weakly connected components with
// union-find for verification.
func referenceComponents(g rmat.Graph) []int32 {
	parent := make([]int32, g.NumVertices)
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(e.Src), find(e.Dst)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	// The minimum vertex id of each set is its label only if the forest
	// is rooted at the minimum; normalise by mapping each root to the
	// minimum member.
	min := make(map[int32]int32)
	for v := range parent {
		r := find(int32(v))
		if cur, ok := min[r]; !ok || int32(v) < cur {
			min[r] = int32(v)
		}
	}
	out := make([]int32, g.NumVertices)
	for v := range out {
		out[v] = min[find(int32(v))]
	}
	return out
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	g, err := rmat.Generate(300, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	fs := shim.NewMemFS()
	set, _, err := Shard(fs, g, 3, "cc")
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := RunConnectedComponents(fs, set, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceComponents(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if stats.EdgesProcessed == 0 || stats.ReadOps == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestConnectedComponentsTwoIslands(t *testing.T) {
	g := rmat.Graph{
		NumVertices: 6,
		Edges: []rmat.Edge{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, // island {0,1,2}
			{Src: 4, Dst: 3}, {Src: 4, Dst: 5}, // island {3,4,5}
		},
	}
	fs := shim.NewMemFS()
	set, _, err := Shard(fs, g, 2, "islands")
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := RunConnectedComponents(fs, set, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 2} {
		if labels[v] != 0 {
			t.Fatalf("label[%d] = %d, want 0", v, labels[v])
		}
	}
	for _, v := range []int{3, 4, 5} {
		if labels[v] != 3 {
			t.Fatalf("label[%d] = %d, want 3", v, labels[v])
		}
	}
}

func TestConnectedComponentsTouch(t *testing.T) {
	g, err := rmat.Generate(64, 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	fs := shim.NewMemFS()
	set, _, err := Shard(fs, g, 2, "cct")
	if err != nil {
		t.Fatal(err)
	}
	var touched int64
	_, stats, err := RunConnectedComponents(fs, set, 0, func(n int) { touched += int64(n) })
	if err != nil {
		t.Fatal(err)
	}
	if touched != stats.BytesStreamed {
		t.Fatalf("touch %d != streamed %d", touched, stats.BytesStreamed)
	}
}
