package graphchi

import (
	"math"
	"testing"

	"montsalvat/internal/rmat"
	"montsalvat/internal/shim"
)

func testGraph(t *testing.T, v, e int) rmat.Graph {
	t.Helper()
	g, err := rmat.Generate(v, e, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShardPreservesEdges(t *testing.T) {
	fs := shim.NewMemFS()
	g := testGraph(t, 100, 1000)
	set, stats, err := Shard(fs, g, 4, "g")
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	if stats.EdgesSharded != 1000 {
		t.Fatalf("EdgesSharded = %d", stats.EdgesSharded)
	}
	total := 0
	seen := make(map[rmat.Edge]int)
	for s := 0; s < set.NumShards; s++ {
		total += set.EdgeCounts[s]
		size := set.EdgeCounts[s] * edgeBytes
		if size == 0 {
			continue
		}
		data, err := fs.ReadAt(set.shardFile(s), 0, size)
		if err != nil {
			t.Fatal(err)
		}
		edges := decodeEdges(data)
		var upper int32 = set.UpperBounds[s]
		var lower int32
		if s > 0 {
			lower = set.UpperBounds[s-1]
		}
		prev := int32(-1)
		for _, e := range edges {
			if e.Dst < lower || e.Dst >= upper {
				t.Fatalf("shard %d edge %+v outside interval [%d,%d)", s, e, lower, upper)
			}
			if e.Src < prev {
				t.Fatalf("shard %d not sorted by src", s)
			}
			prev = e.Src
			seen[e]++
		}
	}
	if total != 1000 {
		t.Fatalf("shard edge counts sum to %d", total)
	}
	// Multiset equality with the input.
	want := make(map[rmat.Edge]int)
	for _, e := range g.Edges {
		want[e]++
	}
	if len(seen) != len(want) {
		t.Fatalf("distinct edges %d != %d", len(seen), len(want))
	}
	for e, c := range want {
		if seen[e] != c {
			t.Fatalf("edge %+v count %d != %d", e, seen[e], c)
		}
	}
}

func TestShardWriteOpsScaleWithEdges(t *testing.T) {
	fs := shim.NewMemFS()
	small := testGraph(t, 256, 2000)
	_, sSmall, err := Shard(fs, small, 2, "s")
	if err != nil {
		t.Fatal(err)
	}
	big := testGraph(t, 256, 20000)
	_, sBig, err := Shard(fs, big, 2, "b")
	if err != nil {
		t.Fatal(err)
	}
	if sBig.WriteOps <= sSmall.WriteOps {
		t.Fatalf("write ops did not scale: %d vs %d", sSmall.WriteOps, sBig.WriteOps)
	}
	if sBig.BytesWritten <= sSmall.BytesWritten {
		t.Fatalf("bytes written did not scale")
	}
}

func TestShardValidation(t *testing.T) {
	fs := shim.NewMemFS()
	g := testGraph(t, 16, 32)
	if _, _, err := Shard(fs, g, 0, "x"); err == nil {
		t.Fatal("accepted 0 shards")
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	fs := shim.NewMemFS()
	g := testGraph(t, 200, 2000)
	cfg := PageRankConfig{Iterations: 5}
	want := ReferencePageRank(g, cfg)

	for _, shards := range []int{1, 2, 3, 6} {
		set, _, err := Shard(fs, g, shards, "pr")
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunPageRank(fs, set, cfg, nil)
		if err != nil {
			t.Fatalf("RunPageRank(%d shards): %v", shards, err)
		}
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12 {
				t.Fatalf("%d shards: rank[%d] = %v, want %v", shards, v, got[v], want[v])
			}
		}
	}
}

func TestPageRankOnKnownGraph(t *testing.T) {
	// A 3-cycle has the uniform stationary distribution.
	g := rmat.Graph{
		NumVertices: 3,
		Edges: []rmat.Edge{
			{Src: 0, Dst: 1},
			{Src: 1, Dst: 2},
			{Src: 2, Dst: 0},
		},
	}
	fs := shim.NewMemFS()
	set, _, err := Shard(fs, g, 2, "cycle")
	if err != nil {
		t.Fatal(err)
	}
	ranks, _, err := RunPageRank(fs, set, PageRankConfig{Iterations: 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range ranks {
		if math.Abs(r-1.0/3) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want 1/3", v, r)
		}
	}
}

func TestPageRankPrefersHighInDegree(t *testing.T) {
	// A star pointing at vertex 0: vertex 0 must out-rank the leaves.
	edges := make([]rmat.Edge, 0, 9)
	for v := int32(1); v < 10; v++ {
		edges = append(edges, rmat.Edge{Src: v, Dst: 0})
	}
	g := rmat.Graph{NumVertices: 10, Edges: edges}
	fs := shim.NewMemFS()
	set, _, err := Shard(fs, g, 3, "star")
	if err != nil {
		t.Fatal(err)
	}
	ranks, _, err := RunPageRank(fs, set, PageRankConfig{Iterations: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 10; v++ {
		if ranks[0] <= ranks[v] {
			t.Fatalf("rank[0]=%v not above leaf rank[%d]=%v", ranks[0], v, ranks[v])
		}
	}
}

func TestEngineStatsAndTouch(t *testing.T) {
	fs := shim.NewMemFS()
	g := testGraph(t, 300, 5000)
	set, _, err := Shard(fs, g, 4, "st")
	if err != nil {
		t.Fatal(err)
	}
	var touched int64
	cfg := PageRankConfig{Iterations: 3}
	_, stats, err := RunPageRank(fs, set, cfg, func(n int) { touched += int64(n) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.EdgesProcessed != int64(3*5000) {
		t.Fatalf("EdgesProcessed = %d, want %d", stats.EdgesProcessed, 3*5000)
	}
	if stats.ReadOps == 0 || stats.BytesRead == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if touched != stats.BytesStreamed {
		t.Fatalf("touch %d != BytesStreamed %d", touched, stats.BytesStreamed)
	}
}

func TestReShardOverwritesOldFiles(t *testing.T) {
	fs := shim.NewMemFS()
	g1 := testGraph(t, 100, 5000)
	if _, _, err := Shard(fs, g1, 2, "re"); err != nil {
		t.Fatal(err)
	}
	g2 := testGraph(t, 100, 500)
	set, _, err := Shard(fs, g2, 2, "re")
	if err != nil {
		t.Fatal(err)
	}
	cfg := PageRankConfig{Iterations: 3}
	got, _, err := RunPageRank(fs, set, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferencePageRank(g2, cfg)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("stale shard data: rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestMoreShardsMoreReadOps(t *testing.T) {
	fs := shim.NewMemFS()
	g := testGraph(t, 500, 20000)
	cfg := PageRankConfig{Iterations: 2}
	set1, _, err := Shard(fs, g, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	_, st1, err := RunPageRank(fs, set1, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	set6, _, err := Shard(fs, g, 6, "b")
	if err != nil {
		t.Fatal(err)
	}
	_, st6, err := RunPageRank(fs, set6, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st6.ReadOps < st1.ReadOps {
		t.Fatalf("read ops fell with more shards: %d vs %d", st1.ReadOps, st6.ReadOps)
	}
	if st1.EdgesProcessed != st6.EdgesProcessed {
		t.Fatalf("edge counts differ across shard counts")
	}
}
