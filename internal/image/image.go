// Package image implements the Montsalvat native-image builder.
//
// GraalVM native-image "takes as input compiled application classes
// (bytecode) ... performs points-to analysis to find the reachable program
// elements ... Only reachable methods are then compiled ahead-of-time into
// the final native image" (paper §5.3). This package reproduces that
// phase over the classmodel: given one of the transformed class sets, it
// derives the entry points (relay methods and, for the untrusted image,
// the application main), runs the reachability analysis, prunes
// unreachable classes and methods — including unnecessary proxies — and
// produces a relocatable Image whose deterministic byte serialisation is
// what gets measured into the enclave (the trusted.o / enclave.so of
// Fig. 1).
//
// The closed-world assumption is enforced at run time: looking up a
// method that was not reachable at build time fails with
// ErrClosedWorld, the analog of a missing method in an AOT-compiled
// binary.
package image

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/pointsto"
)

// ErrClosedWorld is returned when code invokes a program element that the
// build-time analysis did not include in the image.
var ErrClosedWorld = errors.New("image: closed-world violation: element not compiled into image")

// Build-time validation errors.
var (
	errMissingMain   = errors.New("image: untrusted image requires a main entry point")
	errTrustedMain   = errors.New("image: trusted image must not contain the main entry point (§5.3)")
	errNoEntryPoints = errors.New("image: no entry points")
)

// Kind labels which side of the partition an image serves.
type Kind int

// Image kinds.
const (
	// TrustedImage is linked into the enclave (trusted.o).
	TrustedImage Kind = iota + 1
	// UntrustedImage hosts the application main (untrusted.o).
	UntrustedImage
)

func (k Kind) String() string {
	if k == TrustedImage {
		return "trusted"
	}
	return "untrusted"
}

// Report summarises a build.
type Report struct {
	Kind             Kind
	EntryPoints      int
	TotalClasses     int
	ReachableClasses int
	TotalMethods     int
	CompiledMethods  int
	// ProxiesPruned counts proxy classes removed because no reachable
	// method used them (§5.2: "The points-to analysis of GraalVM
	// native-image automatically prunes/removes proxies for classes that
	// are not reachable").
	ProxiesPruned int
	ProxiesKept   int
}

// Image is a built native image: the compiled subset of a class set.
type Image struct {
	kind    Kind
	program *classmodel.Program
	reach   *pointsto.Result

	classIDs map[string]int32
	entries  []classmodel.MethodRef
	report   Report
	payload  []byte
}

// Build compiles a class set into an image. Entry points are derived per
// §5.3: every relay method (the @CEntryPoint analog) of a non-proxy
// class, plus — for the untrusted image — the application main method.
// Use BuildWithConfig to force additional reflection roots in.
func Build(kind Kind, prog *classmodel.Program) (*Image, error) {
	return BuildWithConfig(kind, prog, Config{})
}

// Kind returns which side of the partition the image serves.
func (img *Image) Kind() Kind { return img.kind }

// Program returns the class set the image was built from.
func (img *Image) Program() *classmodel.Program { return img.program }

// EntryPoints returns the image's entry points.
func (img *Image) EntryPoints() []classmodel.MethodRef {
	return append([]classmodel.MethodRef(nil), img.entries...)
}

// Report returns the build report.
func (img *Image) Report() Report { return img.report }

// ClassID returns the compiled class identifier, or an ErrClosedWorld
// error if the class was not reachable at build time.
func (img *Image) ClassID(name string) (int32, error) {
	id, ok := img.classIDs[name]
	if !ok {
		return 0, fmt.Errorf("%w: class %s", ErrClosedWorld, name)
	}
	return id, nil
}

// Classes returns the reachable classes in deterministic order.
func (img *Image) Classes() []*classmodel.Class {
	names := img.reach.Classes()
	out := make([]*classmodel.Class, 0, len(names))
	for _, name := range names {
		if c, ok := img.program.Class(name); ok {
			out = append(out, c)
		}
	}
	return out
}

// Lookup resolves a method, enforcing the closed-world assumption.
func (img *Image) Lookup(ref classmodel.MethodRef) (*classmodel.Class, *classmodel.Method, error) {
	c, m, ok := img.program.Lookup(ref)
	if !ok {
		return nil, nil, fmt.Errorf("%w: method %s", ErrClosedWorld, ref)
	}
	if !img.reach.MethodReachable(ref) {
		return nil, nil, fmt.Errorf("%w: method %s (pruned at build time)", ErrClosedWorld, ref)
	}
	return c, m, nil
}

// MethodCompiled reports whether a method was compiled into the image.
func (img *Image) MethodCompiled(ref classmodel.MethodRef) bool {
	return img.reach.MethodReachable(ref)
}

// Bytes returns the deterministic serialised form of the image — the
// relocatable object file content that is added to the enclave and
// measured (Fig. 1: trusted.o linked into enclave.so).
func (img *Image) Bytes() []byte {
	return append([]byte(nil), img.payload...)
}

// Measurement returns the MRENCLAVE an enclave loaded with exactly this
// image will report: the EADD/EEXTEND hash chain over the image bytes,
// starting from the empty-enclave measurement. Verifiers compare
// attestation quotes against this value.
func (img *Image) Measurement() [32]byte {
	empty := sha256.Sum256(nil)
	h := sha256.New()
	h.Write(empty[:])
	h.Write(img.payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// serialize renders a deterministic description of every compiled program
// element: class names, annotations, fields, reachable method signatures
// and their call/allocation edges.
func (img *Image) serialize() []byte {
	buf := make([]byte, 0, 4096)
	appendStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	appendStr("montsalvat-image-v1")
	buf = append(buf, byte(img.kind))
	names := img.reach.Classes()
	sort.Strings(names)
	for _, name := range names {
		c, ok := img.program.Class(name)
		if !ok {
			continue
		}
		appendStr(c.Name)
		buf = append(buf, byte(c.Ann))
		if c.Proxy {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		for _, f := range c.Fields {
			appendStr(f.Name)
			buf = append(buf, byte(f.Kind))
			appendStr(f.ClassName)
		}
		for _, m := range c.Methods {
			ref := classmodel.MethodRef{Class: c.Name, Method: m.Name}
			if !img.reach.MethodReachable(ref) {
				continue
			}
			appendStr(m.Name)
			flags := byte(0)
			if m.Static {
				flags |= 1
			}
			if m.Relay {
				flags |= 2
			}
			if m.EntryPoint {
				flags |= 4
			}
			buf = append(buf, flags)
			for _, p := range m.Params {
				appendStr(p.Name)
				buf = append(buf, byte(p.Kind))
			}
			buf = append(buf, byte(m.Returns))
			for _, call := range m.Calls {
				appendStr(call.Class)
				appendStr(call.Method)
			}
			for _, alloc := range m.Allocates {
				appendStr(alloc)
			}
		}
	}
	return buf
}
