package image

import (
	"errors"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/demo"
	"montsalvat/internal/transform"
)

func bankSets(t *testing.T) *transform.Result {
	t.Helper()
	p := demo.MustBankProgram()
	if err := classmodel.AddBuiltins(p); err != nil {
		t.Fatal(err)
	}
	res, err := transform.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildBothImages(t *testing.T) {
	sets := bankSets(t)
	tImg, err := Build(TrustedImage, sets.Trusted)
	if err != nil {
		t.Fatalf("trusted build: %v", err)
	}
	uImg, err := Build(UntrustedImage, sets.Untrusted)
	if err != nil {
		t.Fatalf("untrusted build: %v", err)
	}
	if tImg.Kind() != TrustedImage || uImg.Kind() != UntrustedImage {
		t.Fatal("kinds wrong")
	}
	// Untrusted image entry points include main.
	foundMain := false
	for _, ep := range uImg.EntryPoints() {
		if ep.Class == demo.Main && ep.Method == classmodel.MainMethodName {
			foundMain = true
		}
	}
	if !foundMain {
		t.Fatal("main not an entry point of the untrusted image")
	}
	// Trusted image entry points are exactly the relays.
	for _, ep := range tImg.EntryPoints() {
		if !transform.IsRelayName(ep.Method) {
			t.Fatalf("non-relay trusted entry point %s", ep)
		}
	}
}

func TestProxyPruning(t *testing.T) {
	sets := bankSets(t)
	tImg, err := Build(TrustedImage, sets.Trusted)
	if err != nil {
		t.Fatal(err)
	}
	// No trusted class calls Person or Main: both proxies pruned (§5.3).
	if _, err := tImg.ClassID(demo.Person); !errors.Is(err, ErrClosedWorld) {
		t.Fatalf("Person: %v, want pruned", err)
	}
	if _, err := tImg.ClassID(demo.Main); !errors.Is(err, ErrClosedWorld) {
		t.Fatalf("Main: %v, want pruned", err)
	}
	rep := tImg.Report()
	if rep.ProxiesPruned != 2 || rep.ProxiesKept != 0 {
		t.Fatalf("pruning report: %+v", rep)
	}
	// The untrusted image keeps Account/AccountRegistry proxies (used by
	// main).
	uImg, err := Build(UntrustedImage, sets.Untrusted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uImg.ClassID(demo.Account); err != nil {
		t.Fatalf("Account proxy pruned from untrusted image: %v", err)
	}
	if uImg.Report().ProxiesKept != 2 {
		t.Fatalf("untrusted report: %+v", uImg.Report())
	}
}

func TestLookupEnforcesClosedWorld(t *testing.T) {
	sets := bankSets(t)
	uImg, err := Build(UntrustedImage, sets.Untrusted)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := uImg.Lookup(classmodel.MethodRef{Class: demo.Person, Method: "transfer"}); err != nil {
		t.Fatalf("reachable method rejected: %v", err)
	}
	if _, _, err := uImg.Lookup(classmodel.MethodRef{Class: "Ghost", Method: "x"}); !errors.Is(err, ErrClosedWorld) {
		t.Fatalf("unknown class: %v", err)
	}
}

func TestMeasurementDeterministicAndSensitive(t *testing.T) {
	sets1 := bankSets(t)
	sets2 := bankSets(t)
	img1, err := Build(TrustedImage, sets1.Trusted)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := Build(TrustedImage, sets2.Trusted)
	if err != nil {
		t.Fatal(err)
	}
	if img1.Measurement() != img2.Measurement() {
		t.Fatal("identical builds produced different measurements")
	}
	// Adding a method changes the measurement.
	acct, _ := sets2.Trusted.Class(demo.Account)
	if err := acct.AddMethod(&classmodel.Method{
		Name: "backdoor", Public: true, EntryPoint: true, Relay: true, RelayFor: "getBalance",
		Calls: []classmodel.MethodRef{{Class: demo.Account, Method: "getBalance"}},
	}); err != nil {
		t.Fatal(err)
	}
	img3, err := Build(TrustedImage, sets2.Trusted)
	if err != nil {
		t.Fatal(err)
	}
	if img3.Measurement() == img1.Measurement() {
		t.Fatal("tampered image has identical measurement")
	}
}

func TestTrustedImageRejectsMain(t *testing.T) {
	sets := bankSets(t)
	sets.Trusted.MainClass = demo.Account
	sets.Trusted.MainMethod = "getBalance"
	if _, err := Build(TrustedImage, sets.Trusted); err == nil {
		t.Fatal("trusted image accepted a main entry point")
	}
}

func TestUntrustedImageRequiresMain(t *testing.T) {
	sets := bankSets(t)
	sets.Untrusted.MainClass = ""
	if _, err := Build(UntrustedImage, sets.Untrusted); err == nil {
		t.Fatal("untrusted image accepted missing main")
	}
}

func TestNoEntryPoints(t *testing.T) {
	p := classmodel.NewProgram()
	if err := p.AddClass(classmodel.NewClass("Lonely", classmodel.Neutral)); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(TrustedImage, p); err == nil {
		t.Fatal("image with no entry points accepted")
	}
}

func TestClassIDsStableAndPositive(t *testing.T) {
	sets := bankSets(t)
	img, err := Build(UntrustedImage, sets.Untrusted)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]string)
	for _, c := range img.Classes() {
		id, err := img.ClassID(c.Name)
		if err != nil {
			t.Fatal(err)
		}
		if id <= 0 {
			t.Fatalf("class %s id = %d", c.Name, id)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("id %d used by %s and %s", id, prev, c.Name)
		}
		seen[id] = c.Name
	}
}
