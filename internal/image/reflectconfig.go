package image

import (
	"encoding/json"
	"fmt"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/pointsto"
)

// Config tunes an image build.
//
// GraalVM native-image makes a closed-world assumption; "to support
// dynamic features such as reflection, the user provides a list of the
// classes, fields, and methods that can be accessed dynamically. Each
// element of this list is then always included in the native image, in
// addition to all classes, fields and methods transitively reachable from
// these elements. This list can be provided through e.g., CLI options,
// programmatically, or a JSON file" (paper §2.2).
type Config struct {
	// ExtraRoots are methods forced into the image (reflection roots):
	// they become additional analysis entry points even when no static
	// call edge reaches them.
	ExtraRoots []classmodel.MethodRef
}

// reflectConfigJSON is the on-disk format of the reflection
// configuration, shaped after GraalVM's reflect-config.json.
type reflectConfigJSON []struct {
	Name    string `json:"name"` // class name
	Methods []struct {
		Name string `json:"name"`
	} `json:"methods"`
	// AllDeclaredMethods forces every method of the class in (GraalVM's
	// allDeclaredMethods flag).
	AllDeclaredMethods bool `json:"allDeclaredMethods"`
}

// ParseReflectConfig parses a reflect-config.json document against a
// program, returning the method roots it names.
func ParseReflectConfig(data []byte, prog *classmodel.Program) ([]classmodel.MethodRef, error) {
	var cfg reflectConfigJSON
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("image: reflect config: %w", err)
	}
	var roots []classmodel.MethodRef
	for _, entry := range cfg {
		c, ok := prog.Class(entry.Name)
		if !ok {
			return nil, fmt.Errorf("image: reflect config names unknown class %s", entry.Name)
		}
		if entry.AllDeclaredMethods {
			for _, m := range c.Methods {
				roots = append(roots, classmodel.MethodRef{Class: c.Name, Method: m.Name})
			}
			continue
		}
		for _, m := range entry.Methods {
			if _, ok := c.Method(m.Name); !ok {
				return nil, fmt.Errorf("image: reflect config names unknown method %s.%s", entry.Name, m.Name)
			}
			roots = append(roots, classmodel.MethodRef{Class: entry.Name, Method: m.Name})
		}
	}
	return roots, nil
}

// BuildWithConfig compiles a class set like Build, additionally forcing
// the configured reflection roots into the image.
func BuildWithConfig(kind Kind, prog *classmodel.Program, cfg Config) (*Image, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("image: %w", err)
	}
	entries, err := deriveEntryPoints(kind, prog)
	if err != nil {
		return nil, err
	}
	for _, root := range cfg.ExtraRoots {
		if _, _, ok := prog.Lookup(root); !ok {
			return nil, fmt.Errorf("%w: reflection root %s", ErrClosedWorld, root)
		}
		entries = append(entries, root)
	}
	return finishBuild(kind, prog, entries)
}

// deriveEntryPoints computes the §5.3 entry points of a class set.
func deriveEntryPoints(kind Kind, prog *classmodel.Program) ([]classmodel.MethodRef, error) {
	var entries []classmodel.MethodRef
	for _, c := range prog.Classes() {
		if c.Proxy {
			continue
		}
		for _, m := range c.Methods {
			if m.EntryPoint {
				entries = append(entries, classmodel.MethodRef{Class: c.Name, Method: m.Name})
			}
		}
	}
	if kind == UntrustedImage {
		if prog.MainClass == "" {
			return nil, errMissingMain
		}
		entries = append(entries, classmodel.MethodRef{Class: prog.MainClass, Method: prog.MainMethod})
	} else if prog.MainClass != "" {
		return nil, errTrustedMain
	}
	if len(entries) == 0 {
		return nil, errNoEntryPoints
	}
	return entries, nil
}

// finishBuild runs the analysis and assembles the image.
func finishBuild(kind Kind, prog *classmodel.Program, entries []classmodel.MethodRef) (*Image, error) {
	reach, err := pointsto.Analyze(prog, entries)
	if err != nil {
		return nil, fmt.Errorf("image: %w", err)
	}
	img := &Image{
		kind:     kind,
		program:  prog,
		reach:    reach,
		classIDs: make(map[string]int32),
		entries:  entries,
	}
	for i, name := range reach.Classes() {
		img.classIDs[name] = int32(i + 1)
	}
	rep := Report{Kind: kind, EntryPoints: len(entries)}
	for _, c := range prog.Classes() {
		rep.TotalClasses++
		rep.TotalMethods += len(c.Methods)
		if reach.ClassReachable(c.Name) {
			rep.ReachableClasses++
			if c.Proxy {
				rep.ProxiesKept++
			}
		} else if c.Proxy {
			rep.ProxiesPruned++
		}
	}
	rep.CompiledMethods = reach.Report().ReachableMethods
	img.report = rep
	img.payload = img.serialize()
	return img, nil
}
