package image

import (
	"errors"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/wire"
)

// reflectProgram has a main plus a method that is only reachable
// dynamically (no static call edge).
func reflectProgram(t *testing.T) *classmodel.Program {
	t.Helper()
	p := classmodel.NewProgram()
	c := classmodel.NewClass("App", classmodel.Neutral)
	if err := c.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMethod(&classmodel.Method{
		Name: "invokedReflectively", Static: true, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Int(99), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMethod(&classmodel.Method{
		Name: "alsoDynamic", Static: true, Public: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(c); err != nil {
		t.Fatal(err)
	}
	p.MainClass = "App"
	return p
}

func TestReflectionRootForcedIn(t *testing.T) {
	p := reflectProgram(t)
	// Without a config, the dynamic method is pruned.
	plain, err := Build(UntrustedImage, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MethodCompiled(classmodel.MethodRef{Class: "App", Method: "invokedReflectively"}) {
		t.Fatal("dynamic method kept without reflection config")
	}
	// With the config, it is always included (§2.2).
	img, err := BuildWithConfig(UntrustedImage, p, Config{
		ExtraRoots: []classmodel.MethodRef{{Class: "App", Method: "invokedReflectively"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !img.MethodCompiled(classmodel.MethodRef{Class: "App", Method: "invokedReflectively"}) {
		t.Fatal("reflection root pruned")
	}
	// The measurement reflects the larger image.
	if img.Measurement() == plain.Measurement() {
		t.Fatal("reflection root did not change the image")
	}
}

func TestBuildWithConfigRejectsUnknownRoot(t *testing.T) {
	p := reflectProgram(t)
	_, err := BuildWithConfig(UntrustedImage, p, Config{
		ExtraRoots: []classmodel.MethodRef{{Class: "Ghost", Method: "x"}},
	})
	if !errors.Is(err, ErrClosedWorld) {
		t.Fatalf("err = %v, want ErrClosedWorld", err)
	}
}

func TestParseReflectConfig(t *testing.T) {
	p := reflectProgram(t)
	doc := []byte(`[
		{"name": "App", "methods": [{"name": "invokedReflectively"}]}
	]`)
	roots, err := ParseReflectConfig(doc, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0] != (classmodel.MethodRef{Class: "App", Method: "invokedReflectively"}) {
		t.Fatalf("roots = %v", roots)
	}
}

func TestParseReflectConfigAllDeclaredMethods(t *testing.T) {
	p := reflectProgram(t)
	doc := []byte(`[{"name": "App", "allDeclaredMethods": true}]`)
	roots, err := ParseReflectConfig(doc, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 3 {
		t.Fatalf("roots = %v, want all 3 methods", roots)
	}
	img, err := BuildWithConfig(UntrustedImage, p, Config{ExtraRoots: roots})
	if err != nil {
		t.Fatal(err)
	}
	if !img.MethodCompiled(classmodel.MethodRef{Class: "App", Method: "alsoDynamic"}) {
		t.Fatal("allDeclaredMethods root pruned")
	}
}

func TestParseReflectConfigErrors(t *testing.T) {
	p := reflectProgram(t)
	tests := []struct {
		name string
		doc  string
	}{
		{name: "malformed json", doc: `{not json`},
		{name: "unknown class", doc: `[{"name": "Ghost"}]`},
		{name: "unknown method", doc: `[{"name": "App", "methods": [{"name": "nope"}]}]`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseReflectConfig([]byte(tt.doc), p); err == nil {
				t.Fatal("accepted invalid config")
			}
		})
	}
}
