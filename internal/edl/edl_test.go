package edl

import (
	"strings"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/wire"
)

func TestAddAndLookup(t *testing.T) {
	f := NewFile()
	r, err := f.Add(Ecall, "Account", "relay$updateBalance",
		[]classmodel.Param{{Name: "v", Kind: wire.KindInt}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != 1 {
		t.Fatalf("first routine ID = %d, want 1", r.ID)
	}
	if r.Name != "ecall_relay_Account_relay_updateBalance" {
		t.Fatalf("Name = %q", r.Name)
	}
	got, ok := f.Lookup(Ecall, "Account", "relay$updateBalance")
	if !ok || got.ID != r.ID {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := f.Lookup(Ocall, "Account", "relay$updateBalance"); ok {
		t.Fatal("found routine in wrong direction")
	}
}

func TestIDsAreUniqueAcrossDirections(t *testing.T) {
	f := NewFile()
	r1, _ := f.Add(Ecall, "A", "m1", nil, false)
	r2, _ := f.Add(Ocall, "B", "m2", nil, false)
	r3, _ := f.Add(Ecall, "C", "m3", nil, true)
	if r1.ID == r2.ID || r2.ID == r3.ID || r1.ID == r3.ID {
		t.Fatalf("duplicate IDs: %d %d %d", r1.ID, r2.ID, r3.ID)
	}
}

func TestDuplicateRejected(t *testing.T) {
	f := NewFile()
	if _, err := f.Add(Ecall, "A", "m", nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(Ecall, "A", "m", nil, false); err == nil {
		t.Fatal("duplicate accepted")
	}
	// Same name in the other direction is fine.
	if _, err := f.Add(Ocall, "A", "m", nil, false); err != nil {
		t.Fatal(err)
	}
}

func TestRenderEDL(t *testing.T) {
	f := NewFile()
	if _, err := f.Add(Ecall, "Account", "relay$<init>", []classmodel.Param{
		{Name: "s", Kind: wire.KindString},
		{Name: "b", Kind: wire.KindInt},
	}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(Ocall, "Person", "relay$getAccount", nil, true); err != nil {
		t.Fatal(err)
	}
	text := f.Render()
	for _, want := range []string{
		"enclave {",
		"trusted {",
		"untrusted {",
		"public void ecall_relay_Account_relay__init_(int hash, [user_check] const char* s, int64_t b);",
		"uint64_t ocall_relay_Person_relay_getAccount(int hash);",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("EDL missing %q:\n%s", want, text)
		}
	}
}

func TestRenderEdgeC(t *testing.T) {
	f := NewFile()
	if _, err := f.Add(Ecall, "AccountRegistry", "relay$addAccount",
		[]classmodel.Param{{Name: "acc", Kind: wire.KindRef, ClassName: "Account"}}, false); err != nil {
		t.Fatal(err)
	}
	text := f.RenderEdgeC()
	// Listing 6 shape: fetch the isolate, forward hash + args.
	for _, want := range []string{
		"void ecall_relay_AccountRegistry_relay_addAccount(int hash, int acc)",
		"Isolate ctx = getEnclaveIsolate();",
		"relay_AccountRegistry_relay_addAccount(ctx, hash, acc);",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("edge C missing %q:\n%s", want, text)
		}
	}
}

func TestAccessorsCopy(t *testing.T) {
	f := NewFile()
	if _, err := f.Add(Ecall, "A", "m", nil, false); err != nil {
		t.Fatal(err)
	}
	ecalls := f.Ecalls()
	ecalls[0].Name = "mutated"
	if got := f.Ecalls()[0].Name; got == "mutated" {
		t.Fatal("Ecalls returns internal slice")
	}
	if len(f.Ocalls()) != 0 {
		t.Fatal("unexpected ocalls")
	}
}

func TestDirectionString(t *testing.T) {
	if Ecall.String() != "ecall" || Ocall.String() != "ocall" {
		t.Fatal("Direction.String broken")
	}
}
