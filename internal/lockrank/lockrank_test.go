package lockrank

import (
	"strings"
	"sync"
	"testing"
)

func ranked(rank int32, name string) *Mutex {
	m := &Mutex{}
	m.SetRank(rank, name)
	return m
}

func TestOrderedAcquisitionClean(t *testing.T) {
	defer Enable()()
	outer := ranked(RankFabricAck, "ackMu")
	inner := ranked(RankManager, "m.mu")
	outer.Lock()
	inner.Lock()
	inner.Unlock()
	outer.Unlock()
	if v := TakeViolations(); len(v) != 0 {
		t.Fatalf("clean ordering reported violations: %v", v)
	}
}

func TestInversionDetected(t *testing.T) {
	defer Enable()()
	outer := ranked(RankFabricAck, "ackMu")
	inner := ranked(RankManager, "m.mu")
	inner.Lock()
	outer.Lock() // inversion: outer rank acquired while holding inner
	outer.Unlock()
	inner.Unlock()
	v := TakeViolations()
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	if !strings.Contains(v[0], "ackMu") || !strings.Contains(v[0], "m.mu") {
		t.Fatalf("violation names missing: %q", v[0])
	}
}

func TestEqualRankDetected(t *testing.T) {
	defer Enable()()
	a := ranked(RankWorldHeap, "heapMu(t)")
	b := ranked(RankWorldHeap, "heapMu(u)")
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	if v := TakeViolations(); len(v) != 1 {
		t.Fatalf("want same-rank violation, got %v", v)
	}
}

func TestDisabledIsSilent(t *testing.T) {
	outer := ranked(RankFabricAck, "ackMu")
	inner := ranked(RankManager, "m.mu")
	inner.Lock()
	outer.Lock()
	outer.Unlock()
	inner.Unlock()
	if v := TakeViolations(); len(v) != 0 {
		t.Fatalf("disabled checker recorded violations: %v", v)
	}
}

func TestTryLockAndConcurrency(t *testing.T) {
	defer Enable()()
	m := ranked(RankWorldTable, "shard")
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()

	// Concurrent goroutines each take the same ordered pair; per-
	// goroutine tracking must not cross wires.
	outer := ranked(RankFabricNode, "n.mu")
	inner := ranked(RankShipState, "ship.mu")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				outer.Lock()
				inner.Lock()
				inner.Unlock()
				outer.Unlock()
			}
		}()
	}
	wg.Wait()
	if v := TakeViolations(); len(v) != 0 {
		t.Fatalf("concurrent ordered use reported violations: %v", v)
	}
}
