// Package lockrank provides ranked mutex shims for checking the
// crossing engine's documented lock hierarchies at runtime.
//
// The engine documents two acquisition orders (DESIGN.md §12, §16 and
// the field comments in world/runtime.go and fabric/shard.go):
//
//	fabric/persist:  ackMu > n.mu > shipper ioMu > shipper mu
//	                 > group queue > manager mutex
//	world:           pin < heap < {weaks, table shard}
//
// Both read outermost-first: a goroutine holding an outer lock may take
// an inner one, never the reverse. lockrank.Mutex is a drop-in
// replacement for sync.Mutex at those sites; each instance carries a
// rank from the table below, and while checking is enabled every
// acquisition is validated against the ranks the goroutine already
// holds. An inversion — acquiring a rank at or above one already held —
// is recorded as a violation the orderly explorer surfaces as an
// invariant failure.
//
// Checking is off by default: an unranked or disabled mutex costs one
// atomic load over sync.Mutex, so production paths (heapMu is taken on
// every field access) pay nothing measurable. Enable flips the global
// switch; it is meant for the model checker and for tests, not for
// serving builds.
package lockrank

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Ranks, outermost (acquired first) to innermost. The two documented
// chains compose into one total order because persist's manager mutex
// is held across world Execs (checkpoint snapshots drive the store
// through the boundary), so every world rank sits inside every
// fabric/persist rank.
const (
	RankFabricAck  int32 = 10  // fabric shardNode.ackMu
	RankFabricNode int32 = 20  // fabric shardNode.mu
	RankShipIO     int32 = 30  // fabric shipper.ioMu
	RankShipState  int32 = 40  // fabric shipper.mu
	RankGroupQueue int32 = 50  // persist groupCommitter.mu
	RankManager    int32 = 60  // persist Manager.mu
	RankWorldPin   int32 = 70  // world Runtime.pinMu
	RankWorldHeap  int32 = 80  // world Runtime.heapMu
	RankWorldWeaks int32 = 90  // registry WeakList.mu
	RankWorldTable int32 = 100 // world object-table shard mu
)

// maxViolations bounds the retained violation log; a broken hierarchy
// trips on every crossing, and one report per site is plenty.
const maxViolations = 32

var (
	enabled atomic.Bool

	stateMu    sync.Mutex
	held       map[uint64][]holding
	violations []string
	dropped    uint64
)

type holding struct {
	rank int32
	name string
}

// Enable turns hierarchy checking on, clearing any previous held-lock
// bookkeeping and violation log. The returned function disables it
// again.
func Enable() (disable func()) {
	stateMu.Lock()
	held = make(map[uint64][]holding)
	violations = nil
	dropped = 0
	stateMu.Unlock()
	enabled.Store(true)
	return func() { enabled.Store(false) }
}

// Enabled reports whether hierarchy checking is on.
func Enabled() bool { return enabled.Load() }

// TakeViolations drains and returns the recorded hierarchy violations.
func TakeViolations() []string {
	stateMu.Lock()
	defer stateMu.Unlock()
	v := violations
	violations = nil
	if dropped > 0 {
		v = append(v, fmt.Sprintf("lockrank: %d further violations dropped", dropped))
		dropped = 0
	}
	return v
}

// Mutex is a sync.Mutex carrying a lock-hierarchy rank. The zero value
// is an unranked mutex: usable, never checked. SetRank must be called
// before first use to participate in checking.
type Mutex struct {
	mu   sync.Mutex
	rank int32
	name string
}

// SetRank assigns the mutex's position in the hierarchy and a name for
// violation reports. Call once, at construction, before any Lock.
func (m *Mutex) SetRank(rank int32, name string) {
	m.rank = rank
	m.name = name
}

// Lock acquires the mutex, recording the rank when checking is on.
func (m *Mutex) Lock() {
	if m.rank != 0 && enabled.Load() {
		acquire(m.rank, m.name)
	}
	m.mu.Lock()
}

// TryLock attempts the acquisition without blocking.
func (m *Mutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	if m.rank != 0 && enabled.Load() {
		acquire(m.rank, m.name)
	}
	return true
}

// Unlock releases the mutex and drops its rank from the holder's set.
func (m *Mutex) Unlock() {
	m.mu.Unlock()
	if m.rank != 0 && enabled.Load() {
		release(m.rank)
	}
}

// acquire validates rank against everything the goroutine already
// holds and pushes it. Ordering rule: ranks are acquired strictly
// ascending, so an acquisition at or below a held rank is an inversion.
func acquire(rank int32, name string) {
	g := gid()
	stateMu.Lock()
	defer stateMu.Unlock()
	hs := held[g]
	for _, h := range hs {
		if h.rank >= rank {
			if len(violations) < maxViolations {
				violations = append(violations, fmt.Sprintf(
					"lock hierarchy inverted: acquired %s (rank %d) while holding %s (rank %d)",
					name, rank, h.name, h.rank))
			} else {
				dropped++
			}
			break
		}
	}
	if held == nil {
		held = make(map[uint64][]holding)
	}
	held[g] = append(hs, holding{rank, name})
}

// release pops the newest matching rank. Tolerant of enable/disable
// races: a rank acquired before Enable simply is not found.
func release(rank int32) {
	g := gid()
	stateMu.Lock()
	defer stateMu.Unlock()
	hs := held[g]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].rank == rank {
			hs = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(hs) == 0 {
		delete(held, g)
	} else {
		held[g] = hs
	}
}

// gid extracts the current goroutine's id from its stack header
// ("goroutine N [running]:"). Only called while checking is enabled;
// the stack capture costs ~1µs, irrelevant next to the crossings the
// checker drives.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	id := uint64(0)
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
