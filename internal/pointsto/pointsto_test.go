package pointsto

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"montsalvat/internal/classmodel"
)

// buildProgram assembles a program from a terse spec: class -> method ->
// (calls, allocates). All classes are neutral; annotations are irrelevant
// to reachability.
type methodSpec struct {
	calls  []classmodel.MethodRef
	allocs []string
	static bool
}

func buildProgram(t *testing.T, spec map[string]map[string]methodSpec) *classmodel.Program {
	t.Helper()
	p := classmodel.NewProgram()
	for clsName, methods := range spec {
		c := classmodel.NewClass(clsName, classmodel.Neutral)
		for mName, ms := range methods {
			if err := c.AddMethod(&classmodel.Method{
				Name:      mName,
				Static:    ms.static || mName == classmodel.StaticInitName,
				Public:    true,
				Calls:     ms.calls,
				Allocates: ms.allocs,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func ref(c, m string) classmodel.MethodRef { return classmodel.MethodRef{Class: c, Method: m} }

func TestLinearChain(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"A": {"a": {calls: []classmodel.MethodRef{ref("B", "b")}}},
		"B": {"b": {calls: []classmodel.MethodRef{ref("C", "c")}}},
		"C": {"c": {}},
		"D": {"dead": {}},
	})
	r, err := Analyze(p, []classmodel.MethodRef{ref("A", "a")})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []classmodel.MethodRef{ref("A", "a"), ref("B", "b"), ref("C", "c")} {
		if !r.MethodReachable(m) {
			t.Fatalf("%s not reachable", m)
		}
	}
	if r.MethodReachable(ref("D", "dead")) {
		t.Fatal("dead method reachable")
	}
	if r.ClassReachable("D") {
		t.Fatal("dead class reachable")
	}
}

func TestDiamond(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"A": {"a": {calls: []classmodel.MethodRef{ref("B", "b"), ref("C", "c")}}},
		"B": {"b": {calls: []classmodel.MethodRef{ref("D", "d")}}},
		"C": {"c": {calls: []classmodel.MethodRef{ref("D", "d")}}},
		"D": {"d": {}},
	})
	r, err := Analyze(p, []classmodel.MethodRef{ref("A", "a")})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Report().ReachableMethods; got != 4 {
		t.Fatalf("ReachableMethods = %d, want 4", got)
	}
}

func TestUnreachedMethodsOfReachableClassPruned(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"A": {"a": {calls: []classmodel.MethodRef{ref("B", "used")}}},
		"B": {
			"used":   {},
			"unused": {},
		},
	})
	r, err := Analyze(p, []classmodel.MethodRef{ref("A", "a")})
	if err != nil {
		t.Fatal(err)
	}
	if !r.MethodReachable(ref("B", "used")) {
		t.Fatal("used method not reachable")
	}
	if r.MethodReachable(ref("B", "unused")) {
		t.Fatal("unused method of reachable class kept")
	}
	if !r.ClassReachable("B") {
		t.Fatal("class B should be reachable")
	}
}

func TestAllocationPullsCtorAndClinit(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"Main": {"main": {allocs: []string{"Obj"}, static: true}},
		"Obj": {
			classmodel.CtorName:       {},
			classmodel.StaticInitName: {},
			"helper":                  {},
		},
	})
	r, err := Analyze(p, []classmodel.MethodRef{ref("Main", "main")})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ClassInstantiated("Obj") {
		t.Fatal("Obj not instantiated")
	}
	if !r.MethodReachable(ref("Obj", classmodel.CtorName)) {
		t.Fatal("constructor not reachable")
	}
	if !r.MethodReachable(ref("Obj", classmodel.StaticInitName)) {
		t.Fatal("<clinit> not reachable")
	}
	if r.MethodReachable(ref("Obj", "helper")) {
		t.Fatal("uncalled helper reachable")
	}
}

func TestRefFieldTypeReachable(t *testing.T) {
	p := classmodel.NewProgram()
	other := classmodel.NewClass("Other", classmodel.Neutral)
	if err := p.AddClass(other); err != nil {
		t.Fatal(err)
	}
	obj := classmodel.NewClass("Obj", classmodel.Neutral)
	if err := obj.AddField(classmodel.Field{Name: "o", Kind: classmodel.FieldRef, ClassName: "Other"}); err != nil {
		t.Fatal(err)
	}
	if err := obj.AddMethod(&classmodel.Method{Name: classmodel.CtorName, Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(obj); err != nil {
		t.Fatal(err)
	}
	mainC := classmodel.NewClass("Main", classmodel.Neutral)
	if err := mainC.AddMethod(&classmodel.Method{Name: "main", Static: true, Public: true, Allocates: []string{"Obj"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(mainC); err != nil {
		t.Fatal(err)
	}

	r, err := Analyze(p, []classmodel.MethodRef{ref("Main", "main")})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ClassReachable("Other") {
		t.Fatal("ref field type not reachable")
	}
	if r.ClassInstantiated("Other") {
		t.Fatal("ref field type spuriously instantiated")
	}
}

func TestCyclicCallGraphTerminates(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"A": {"a": {calls: []classmodel.MethodRef{ref("B", "b")}}},
		"B": {"b": {calls: []classmodel.MethodRef{ref("A", "a")}}},
	})
	r, err := Analyze(p, []classmodel.MethodRef{ref("A", "a")})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Report().ReachableMethods; got != 2 {
		t.Fatalf("ReachableMethods = %d, want 2", got)
	}
}

func TestMultipleEntryPoints(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"A": {"relay1": {}, "relay2": {}},
		"B": {"dead": {}},
	})
	r, err := Analyze(p, []classmodel.MethodRef{ref("A", "relay1"), ref("A", "relay2")})
	if err != nil {
		t.Fatal(err)
	}
	if !r.MethodReachable(ref("A", "relay1")) || !r.MethodReachable(ref("A", "relay2")) {
		t.Fatal("entry points not reachable")
	}
	if got := r.Report().EntryPoints; got != 2 {
		t.Fatalf("EntryPoints = %d, want 2", got)
	}
}

func TestUnknownEntryPoint(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{"A": {"a": {}}})
	if _, err := Analyze(p, []classmodel.MethodRef{ref("Ghost", "x")}); err == nil {
		t.Fatal("accepted unknown entry point")
	}
}

func TestUnresolvedCallEdge(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"A": {"a": {calls: []classmodel.MethodRef{ref("Ghost", "x")}}},
	})
	if _, err := Analyze(p, []classmodel.MethodRef{ref("A", "a")}); err == nil {
		t.Fatal("accepted unresolved call edge")
	}
}

func TestDeterministicOrder(t *testing.T) {
	p := buildProgram(t, map[string]map[string]methodSpec{
		"Z": {"z": {}},
		"A": {"a": {calls: []classmodel.MethodRef{ref("Z", "z"), ref("M", "m")}}},
		"M": {"m": {}},
	})
	r, err := Analyze(p, []classmodel.MethodRef{ref("A", "a")})
	if err != nil {
		t.Fatal(err)
	}
	ms := r.Methods()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Class > ms[i].Class {
			t.Fatalf("Methods() not sorted: %v", ms)
		}
	}
	cs := r.Classes()
	if len(cs) != 3 || cs[0] != "A" || cs[1] != "M" || cs[2] != "Z" {
		t.Fatalf("Classes() = %v", cs)
	}
}

// Property: reachability is monotonic — adding an entry point never
// shrinks the reachable set.
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 12
		// Random call graph over n single-method classes.
		p := classmodel.NewProgram()
		edges := make([][]classmodel.MethodRef, n)
		for i := 0; i < n; i++ {
			for k := 0; k < r.Intn(3); k++ {
				target := r.Intn(n)
				edges[i] = append(edges[i], ref("C"+strconv.Itoa(target), "m"))
			}
		}
		for i := 0; i < n; i++ {
			c := classmodel.NewClass("C"+strconv.Itoa(i), classmodel.Neutral)
			if err := c.AddMethod(&classmodel.Method{Name: "m", Public: true, Calls: edges[i]}); err != nil {
				return false
			}
			if err := p.AddClass(c); err != nil {
				return false
			}
		}
		e1 := ref("C"+strconv.Itoa(r.Intn(n)), "m")
		e2 := ref("C"+strconv.Itoa(r.Intn(n)), "m")
		r1, err := Analyze(p, []classmodel.MethodRef{e1})
		if err != nil {
			return false
		}
		r2, err := Analyze(p, []classmodel.MethodRef{e1, e2})
		if err != nil {
			return false
		}
		for _, m := range r1.Methods() {
			if !r2.MethodReachable(m) {
				return false
			}
		}
		return r2.Report().ReachableMethods >= r1.Report().ReachableMethods
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
