// Package pointsto implements the closed-world reachability analysis used
// by the native-image builder.
//
// GraalVM native-image "leverages a points-to analysis approach to find
// all the reachable application methods that are compiled into the final
// native image" (paper §2.2); "points-to analysis starts with all entry
// points and iteratively processes all transitively reachable classes,
// fields and methods" (§5.3). This package is that analysis over the
// classmodel: a worklist fixpoint over declared call and allocation
// edges. Its results drive dead-code elimination — in particular the
// pruning of proxy classes that no reachable method uses (§5.2).
package pointsto

import (
	"fmt"
	"sort"

	"montsalvat/internal/classmodel"
)

// Result is the fixpoint of the reachability analysis.
type Result struct {
	methods       map[classmodel.MethodRef]bool
	instantiated  map[string]bool
	reachableCls  map[string]bool
	entryPoints   []classmodel.MethodRef
	programMethod int // total methods in the analysed program
}

// Analyze computes the reachable closure of the program from the given
// entry points. Every entry point must resolve.
func Analyze(p *classmodel.Program, entryPoints []classmodel.MethodRef) (*Result, error) {
	r := &Result{
		methods:      make(map[classmodel.MethodRef]bool),
		instantiated: make(map[string]bool),
		reachableCls: make(map[string]bool),
		entryPoints:  append([]classmodel.MethodRef(nil), entryPoints...),
	}
	for _, c := range p.Classes() {
		r.programMethod += len(c.Methods)
	}

	var work []classmodel.MethodRef
	pushMethod := func(ref classmodel.MethodRef) {
		if !r.methods[ref] {
			r.methods[ref] = true
			work = append(work, ref)
		}
	}
	markClass := func(name string) error {
		if r.reachableCls[name] {
			return nil
		}
		r.reachableCls[name] = true
		c, ok := p.Class(name)
		if !ok {
			return fmt.Errorf("pointsto: unknown class %s", name)
		}
		// Reaching a class makes its static initializer reachable
		// (GraalVM runs it at build time, §2.2).
		if _, ok := c.Method(classmodel.StaticInitName); ok {
			pushMethod(classmodel.MethodRef{Class: name, Method: classmodel.StaticInitName})
		}
		return nil
	}

	for _, ep := range entryPoints {
		if _, _, ok := p.Lookup(ep); !ok {
			return nil, fmt.Errorf("pointsto: entry point %s not found", ep)
		}
		if err := markClass(ep.Class); err != nil {
			return nil, err
		}
		pushMethod(ep)
	}

	for len(work) > 0 {
		ref := work[len(work)-1]
		work = work[:len(work)-1]
		_, m, ok := p.Lookup(ref)
		if !ok {
			return nil, fmt.Errorf("pointsto: unresolved method %s", ref)
		}
		if err := markClass(ref.Class); err != nil {
			return nil, err
		}
		for _, call := range m.Calls {
			if _, _, ok := p.Lookup(call); !ok {
				return nil, fmt.Errorf("pointsto: %s calls unresolved %s", ref, call)
			}
			if err := markClass(call.Class); err != nil {
				return nil, err
			}
			pushMethod(call)
		}
		for _, alloc := range m.Allocates {
			ac, ok := p.Class(alloc)
			if !ok {
				return nil, fmt.Errorf("pointsto: %s allocates unknown class %s", ref, alloc)
			}
			if err := markClass(alloc); err != nil {
				return nil, err
			}
			if !r.instantiated[alloc] {
				r.instantiated[alloc] = true
				// Instantiation makes the constructor reachable and the
				// classes of reference-typed fields reachable.
				if _, ok := ac.Method(classmodel.CtorName); ok {
					pushMethod(classmodel.MethodRef{Class: alloc, Method: classmodel.CtorName})
				}
				for _, f := range ac.Fields {
					if f.Kind == classmodel.FieldRef {
						if err := markClass(f.ClassName); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return r, nil
}

// MethodReachable reports whether a method is in the reachable closure.
func (r *Result) MethodReachable(ref classmodel.MethodRef) bool { return r.methods[ref] }

// ClassReachable reports whether a class is referenced by reachable code.
func (r *Result) ClassReachable(name string) bool { return r.reachableCls[name] }

// ClassInstantiated reports whether any reachable method allocates the
// class.
func (r *Result) ClassInstantiated(name string) bool { return r.instantiated[name] }

// Methods returns the reachable methods in deterministic order.
func (r *Result) Methods() []classmodel.MethodRef {
	out := make([]classmodel.MethodRef, 0, len(r.methods))
	for ref := range r.methods {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// Classes returns the reachable classes in sorted order.
func (r *Result) Classes() []string {
	out := make([]string, 0, len(r.reachableCls))
	for name := range r.reachableCls {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EntryPoints returns the entry points the analysis started from.
func (r *Result) EntryPoints() []classmodel.MethodRef {
	return append([]classmodel.MethodRef(nil), r.entryPoints...)
}

// Report summarises the analysis for logs and the CLI.
type Report struct {
	EntryPoints      int
	ReachableMethods int
	TotalMethods     int
	ReachableClasses int
	Instantiated     int
}

// Report returns summary statistics.
func (r *Result) Report() Report {
	return Report{
		EntryPoints:      len(r.entryPoints),
		ReachableMethods: len(r.methods),
		TotalMethods:     r.programMethod,
		ReachableClasses: len(r.reachableCls),
		Instantiated:     len(r.instantiated),
	}
}
