package shim

import (
	"bytes"
	"errors"
	"testing"

	"montsalvat/internal/cycles"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
)

// fsContract exercises the FS interface against any implementation.
func fsContract(t *testing.T, fs FS) {
	t.Helper()

	// WriteAt creates and extends.
	if err := fs.WriteAt("a.txt", 0, []byte("hello")); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := fs.WriteAt("a.txt", 10, []byte("world")); err != nil {
		t.Fatalf("WriteAt extend: %v", err)
	}
	size, err := fs.Size("a.txt")
	if err != nil || size != 15 {
		t.Fatalf("Size = %d, %v; want 15", size, err)
	}
	// The gap reads as zeros.
	got, err := fs.ReadAt("a.txt", 0, 15)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	want := append([]byte("hello"), 0, 0, 0, 0, 0)
	want = append(want, []byte("world")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadAt = %q, want %q", got, want)
	}

	// Append returns the previous size.
	off, err := fs.Append("a.txt", []byte("!!"))
	if err != nil || off != 15 {
		t.Fatalf("Append = %d, %v; want 15", off, err)
	}

	// Missing files.
	if _, err := fs.ReadAt("nope", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadAt missing: %v", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size missing: %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove missing: %v", err)
	}

	// List + Remove.
	if err := fs.WriteAt("b.txt", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil || len(names) != 2 || names[0] != "a.txt" || names[1] != "b.txt" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := fs.Remove("b.txt"); err != nil {
		t.Fatal(err)
	}
	names, _ = fs.List()
	if len(names) != 1 {
		t.Fatalf("List after remove = %v", names)
	}

	// Read past EOF fails.
	if _, err := fs.ReadAt("a.txt", 16, 10); err == nil {
		t.Fatal("read past EOF accepted")
	}
}

func TestMemFSContract(t *testing.T) {
	fsContract(t, NewMemFS())
}

func TestDirFSContract(t *testing.T) {
	fs, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fsContract(t, fs)
}

func TestDirFSRejectsTraversal(t *testing.T) {
	fs, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../evil", "/abs", ""} {
		if err := fs.WriteAt(name, 0, []byte("x")); err == nil {
			t.Fatalf("accepted path %q", name)
		}
	}
}

func TestDirFSRequiresDirectory(t *testing.T) {
	if _, err := NewDirFS("/nonexistent-montsalvat-dir"); err == nil {
		t.Fatal("accepted missing root")
	}
}

func testEnclave(t *testing.T) *sgx.Enclave {
	t.Helper()
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := sgx.Create(simcfg.ForTest(), clk, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPages([]byte("img")); err != nil {
		t.Fatal(err)
	}
	signer, err := sgx.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := signer.Sign(e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(ss); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTrustedShimRelaysOcalls(t *testing.T) {
	e := testEnclave(t)
	host := NewMemFS()
	ts := NewTrustedShim(e, host)

	// Shim calls are only legal from enclave code.
	err := e.Ecall(1, func() error {
		if err := ts.WriteAt("secret.db", 0, []byte("ciphertext")); err != nil {
			return err
		}
		data, err := ts.ReadAt("secret.db", 0, 10)
		if err != nil {
			return err
		}
		if string(data) != "ciphertext" {
			t.Errorf("read %q", data)
		}
		if _, err := ts.Append("secret.db", []byte("++")); err != nil {
			return err
		}
		size, err := ts.Size("secret.db")
		if err != nil {
			return err
		}
		if size != 12 {
			t.Errorf("size = %d", size)
		}
		names, err := ts.List()
		if err != nil {
			return err
		}
		if len(names) != 1 {
			t.Errorf("names = %v", names)
		}
		return ts.Remove("secret.db")
	})
	if err != nil {
		t.Fatal(err)
	}

	st := ts.Stats()
	if st.Ocalls != 6 {
		t.Fatalf("shim ocalls = %d, want 6", st.Ocalls)
	}
	if st.BytesOut != 12 { // 10-byte write + 2-byte append
		t.Fatalf("BytesOut = %d, want 12", st.BytesOut)
	}
	if st.BytesIn < 10 {
		t.Fatalf("BytesIn = %d, want >= 10", st.BytesIn)
	}
	es := e.Stats()
	if es.Ocalls != 6 {
		t.Fatalf("enclave ocalls = %d, want 6", es.Ocalls)
	}
	if es.OcallsByID[OcallWriteAt] != 1 || es.OcallsByID[OcallReadAt] != 1 {
		t.Fatalf("per-id ocalls = %v", es.OcallsByID)
	}
}

func TestTrustedShimOutsideEnclaveFails(t *testing.T) {
	e := testEnclave(t)
	ts := NewTrustedShim(e, NewMemFS())
	if err := ts.WriteAt("x", 0, []byte("y")); !errors.Is(err, sgx.ErrOcallOutside) {
		t.Fatalf("err = %v, want ErrOcallOutside", err)
	}
}

func TestTrustedShimChargesTransitionCost(t *testing.T) {
	e := testEnclave(t)
	ts := NewTrustedShim(e, NewMemFS())
	clk := e.Clock()
	before := clk.Total()
	err := e.Ecall(1, func() error {
		return ts.WriteAt("f", 0, make([]byte, 4096))
	})
	if err != nil {
		t.Fatal(err)
	}
	charged := clk.Total() - before
	// At least the ecall + ocall transitions plus the 4 KB boundary copy.
	min := int64(simcfg.EcallCycles + simcfg.OcallCycles + 4096)
	if charged < min {
		t.Fatalf("charged %d cycles, want >= %d", charged, min)
	}
}

func TestTrustedShimPropagatesErrors(t *testing.T) {
	e := testEnclave(t)
	ts := NewTrustedShim(e, NewMemFS())
	err := e.Ecall(1, func() error {
		_, err := ts.ReadAt("missing", 0, 4)
		return err
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}
