// Package shim implements Montsalvat's libc shim and its untrusted
// helper (paper §5.4).
//
// SGX enclaves cannot issue system calls, so "we leverage an approach
// which involves redefining unsupported libc routines as wrappers for
// ocalls. These redefined libc routines in the enclave constitute
// Montsalvat's shim library. The latter intercepts calls to unsupported
// libc routines and relays them to the untrusted runtime. A shim helper
// library in the untrusted runtime then invokes the real libc routines."
//
// FS is the file abstraction used by application code in both runtimes.
// The untrusted runtime uses a real FS implementation directly (MemFS for
// hermetic tests and benchmarks, DirFS over the host filesystem).
// TrustedShim wraps an FS so that every operation performed from inside
// the enclave pays one ocall transition plus the MEE cost of copying the
// data buffer across the enclave boundary — this per-write ocall tax is
// what partitioning removes in Fig. 6 (I/O-intensive) and Fig. 7 (PalDB
// writes).
package shim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"montsalvat/internal/cycles"
	"montsalvat/internal/sgx"
	"montsalvat/internal/simcfg"
)

// ErrNotFound is returned for operations on nonexistent files.
var ErrNotFound = errors.New("shim: file not found")

// Ocall identifiers of the shim edge routines. They live in a reserved
// range so they never collide with application relay routines.
const (
	OcallWriteAt = 9001 + iota
	OcallAppend
	OcallReadAt
	OcallSize
	OcallRemove
	OcallList
)

// FS is the filesystem surface exposed to application code. WriteAt
// beyond the current size extends the file with zeros.
type FS interface {
	// WriteAt writes data at off, creating or extending the file.
	WriteAt(name string, off int64, data []byte) error
	// Append writes data at the end of the file (creating it) and
	// returns the offset it was written at.
	Append(name string, data []byte) (int64, error)
	// ReadAt reads exactly n bytes at off.
	ReadAt(name string, off int64, n int) ([]byte, error)
	// Size returns the file size.
	Size(name string) (int64, error)
	// Remove deletes the file.
	Remove(name string) error
	// List returns all file names, sorted.
	List() ([]string, error)
}

// MemFS is an in-memory FS, safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data []byte
}

var _ FS = (*MemFS)(nil)

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// WriteAt implements FS.
func (fs *MemFS) WriteAt(name string, off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("shim: negative offset %d", off)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		f = &memFile{}
		fs.files[name] = f
	}
	f.extend(off + int64(len(data)))
	copy(f.data[off:], data)
	return nil
}

// Append implements FS.
func (fs *MemFS) Append(name string, data []byte) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		f = &memFile{}
		fs.files[name] = f
	}
	off := int64(len(f.data))
	f.extend(off + int64(len(data)))
	copy(f.data[off:], data)
	return off, nil
}

// extend grows the file to newLen bytes, doubling capacity so that
// incremental writers (e.g. record-at-a-time store builds) stay linear.
func (f *memFile) extend(newLen int64) {
	if int64(len(f.data)) >= newLen {
		return
	}
	if int64(cap(f.data)) >= newLen {
		f.data = f.data[:newLen]
		return
	}
	newCap := int64(cap(f.data)) * 2
	if newCap < newLen {
		newCap = newLen
	}
	if newCap < 1024 {
		newCap = 1024
	}
	grown := make([]byte, newLen, newCap)
	copy(grown, f.data)
	f.data = grown
}

// ReadAt implements FS.
func (fs *MemFS) ReadAt(name string, off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("shim: invalid read off=%d n=%d", off, n)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off+int64(n) > int64(len(f.data)) {
		return nil, fmt.Errorf("shim: read past EOF: %s off=%d n=%d size=%d", name, off, n, len(f.data))
	}
	out := make([]byte, n)
	copy(out, f.data[off:])
	return out, nil
}

// Size implements FS.
func (fs *MemFS) Size(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(f.data)), nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(fs.files, name)
	return nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// DirFS is an FS rooted at a host directory. File names must be simple
// relative paths (no traversal).
type DirFS struct {
	root string
}

var _ FS = (*DirFS)(nil)

// NewDirFS returns an FS over the given directory.
func NewDirFS(root string) (*DirFS, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, fmt.Errorf("shim: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("shim: %s is not a directory", root)
	}
	return &DirFS{root: root}, nil
}

func (fs *DirFS) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "..") || filepath.IsAbs(name) {
		return "", fmt.Errorf("shim: invalid file name %q", name)
	}
	return filepath.Join(fs.root, name), nil
}

// WriteAt implements FS.
func (fs *DirFS) WriteAt(name string, off int64, data []byte) error {
	p, err := fs.path(name)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("shim: %w", err)
	}
	defer f.Close()
	if _, err := f.WriteAt(data, off); err != nil {
		return fmt.Errorf("shim: %w", err)
	}
	return nil
}

// Append implements FS.
func (fs *DirFS) Append(name string, data []byte) (int64, error) {
	p, err := fs.path(name)
	if err != nil {
		return 0, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("shim: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("shim: %w", err)
	}
	off := info.Size()
	if _, err := f.Write(data); err != nil {
		return 0, fmt.Errorf("shim: %w", err)
	}
	return off, nil
}

// ReadAt implements FS.
func (fs *DirFS) ReadAt(name string, off int64, n int) ([]byte, error) {
	p, err := fs.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("shim: %w", err)
	}
	defer f.Close()
	out := make([]byte, n)
	if _, err := f.ReadAt(out, off); err != nil {
		return nil, fmt.Errorf("shim: %w", err)
	}
	return out, nil
}

// Size implements FS.
func (fs *DirFS) Size(name string) (int64, error) {
	p, err := fs.path(name)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(p)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return 0, fmt.Errorf("shim: %w", err)
	}
	return info.Size(), nil
}

// Remove implements FS.
func (fs *DirFS) Remove(name string) error {
	p, err := fs.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return fmt.Errorf("shim: %w", err)
	}
	return nil
}

// List implements FS.
func (fs *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.root)
	if err != nil {
		return nil, fmt.Errorf("shim: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stats counts shim activity.
type Stats struct {
	// Ocalls counts relayed libc operations.
	Ocalls uint64
	// BytesIn and BytesOut count data copied into and out of the
	// enclave by shim operations.
	BytesIn  uint64
	BytesOut uint64
}

// TrustedShim is the in-enclave shim library: an FS whose every operation
// is relayed to the untrusted helper via an ocall, paying the transition
// plus the boundary copy of the data buffer.
type TrustedShim struct {
	enclave *sgx.Enclave
	helper  FS
	clock   *cycles.Clock

	mu    sync.Mutex
	stats Stats
}

var _ FS = (*TrustedShim)(nil)

// NewTrustedShim wraps the untrusted helper FS for use inside enclave e.
func NewTrustedShim(e *sgx.Enclave, helper FS) *TrustedShim {
	return &TrustedShim{enclave: e, helper: helper, clock: e.Clock()}
}

// Stats returns a snapshot of shim counters.
func (s *TrustedShim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *TrustedShim) relay(id int, bytesOut, bytesIn int, fn func() error) error {
	err := s.enclave.Ocall(id, fn)
	if err != nil {
		return err
	}
	// Copying buffers across the boundary streams them through the MEE.
	s.clock.ChargeBytes(bytesOut+bytesIn, simcfg.MEEBytesPerCycle)
	s.mu.Lock()
	s.stats.Ocalls++
	s.stats.BytesOut += uint64(bytesOut)
	s.stats.BytesIn += uint64(bytesIn)
	s.mu.Unlock()
	return nil
}

// WriteAt implements FS.
func (s *TrustedShim) WriteAt(name string, off int64, data []byte) error {
	return s.relay(OcallWriteAt, len(data), 0, func() error {
		return s.helper.WriteAt(name, off, data)
	})
}

// Append implements FS.
func (s *TrustedShim) Append(name string, data []byte) (int64, error) {
	var off int64
	err := s.relay(OcallAppend, len(data), 0, func() error {
		var err error
		off, err = s.helper.Append(name, data)
		return err
	})
	return off, err
}

// ReadAt implements FS.
func (s *TrustedShim) ReadAt(name string, off int64, n int) ([]byte, error) {
	var out []byte
	err := s.relay(OcallReadAt, 0, n, func() error {
		var err error
		out, err = s.helper.ReadAt(name, off, n)
		return err
	})
	return out, err
}

// Size implements FS.
func (s *TrustedShim) Size(name string) (int64, error) {
	var size int64
	err := s.relay(OcallSize, 0, 8, func() error {
		var err error
		size, err = s.helper.Size(name)
		return err
	})
	return size, err
}

// Remove implements FS.
func (s *TrustedShim) Remove(name string) error {
	return s.relay(OcallRemove, 0, 0, func() error {
		return s.helper.Remove(name)
	})
}

// List implements FS.
func (s *TrustedShim) List() ([]string, error) {
	var names []string
	err := s.relay(OcallList, 0, 0, func() error {
		var err error
		names, err = s.helper.List()
		return err
	})
	return names, err
}
