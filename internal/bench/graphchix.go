package bench

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/graphchi"
	"montsalvat/internal/heap"
	"montsalvat/internal/jvm"
	"montsalvat/internal/rmat"
	"montsalvat/internal/shim"
	"montsalvat/internal/specjvm"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// graphchiState carries the Go-side engine state shared by the wrapper
// class bodies of one world.
type graphchiState struct {
	graph rmat.Graph
	set   graphchi.ShardSet
	// timings are recorded by the bodies so the harness can report the
	// sharding/engine breakdown of Fig. 9.
	shardTime  time.Duration
	engineTime time.Duration
	rankSum    float64
}

// pageRankIterations matches GraphChi's example PageRank configuration.
const pageRankIterations = 4

// graphchiProgram wraps the GraphChi library in the FastSharder and
// GraphChiEngine classes of Fig. 8 (§6.5: "we make the GraphChiEngine
// trusted and the FastSharder untrusted"). Durations are captured from
// inside the bodies so transitions and shim ocalls are attributed to the
// right phase.
func graphchiProgram(sharderAnn, engineAnn classmodel.Annotation, st *graphchiState, clock func() meter) (*classmodel.Program, error) {
	p := classmodel.NewProgram()

	sharder := classmodel.NewClass("FastSharder", sharderAnn)
	if err := sharder.AddMethod(&classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := sharder.AddMethod(&classmodel.Method{
		Name: "shard", Public: true,
		Params:  []classmodel.Param{{Name: "numShards", Kind: wire.KindInt}},
		Returns: wire.KindInt,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			n, _ := args[0].AsInt()
			m := clock()
			set, stats, err := graphchi.Shard(env.FS(), st.graph, int(n), "bench-graph")
			if err != nil {
				return wire.Value{}, err
			}
			st.shardTime = m.elapsed()
			st.set = set
			return wire.Int(int64(stats.EdgesSharded)), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(sharder); err != nil {
		return nil, err
	}

	engine := classmodel.NewClass("GraphChiEngine", engineAnn)
	if err := engine.AddMethod(&classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := engine.AddMethod(&classmodel.Method{
		Name: "pagerank", Public: true,
		Params:  []classmodel.Param{{Name: "iterations", Kind: wire.KindInt}},
		Returns: wire.KindFloat,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			if st.set.NumVertices == 0 {
				return wire.Value{}, errors.New("pagerank before sharding")
			}
			it, _ := args[0].AsInt()
			m := clock()
			ranks, _, err := graphchi.RunPageRank(env.FS(), st.set, graphchi.PageRankConfig{Iterations: int(it)}, env.MemTouch)
			if err != nil {
				return wire.Value{}, err
			}
			st.engineTime = m.elapsed()
			var sum float64
			for _, r := range ranks {
				sum += r
			}
			st.rankSum = sum
			return wire.Float(sum), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(engine); err != nil {
		return nil, err
	}

	mainC := classmodel.NewClass("GCMain", classmodel.Untrusted)
	if err := mainC.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Allocates: []string{"FastSharder", "GraphChiEngine"},
		Calls: []classmodel.MethodRef{
			{Class: "FastSharder", Method: "shard"},
			{Class: "GraphChiEngine", Method: "pagerank"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainC); err != nil {
		return nil, err
	}
	p.MainClass = "GCMain"
	return p, nil
}

// graphchiConfig is one Fig. 9 / Fig. 11 configuration.
type graphchiConfig struct {
	name        string
	partitioned bool
	inEnclave   bool
}

// graphchiRun is the outcome of one sharded PageRank execution.
type graphchiRun struct {
	total  time.Duration
	shard  time.Duration
	engine time.Duration
	// cycles is the deterministic simulated-cost component (transitions,
	// MEE traffic) of the run.
	cycles int64
}

// runGraphChi shards and ranks one graph under one configuration.
func runGraphChi(opts Options, cfg graphchiConfig, g rmat.Graph, numShards int) (graphchiRun, error) {
	sharderAnn := classmodel.Neutral
	engineAnn := classmodel.Neutral
	if cfg.partitioned {
		sharderAnn = classmodel.Untrusted
		engineAnn = classmodel.Trusted
	}
	st := &graphchiState{graph: g}
	var w *world.World
	prog, err := graphchiProgram(sharderAnn, engineAnn, st, func() meter {
		return startMeter(w.Clock())
	})
	if err != nil {
		return graphchiRun{}, err
	}
	wopts := world.DefaultOptions()
	wopts.Cfg = opts.Config()
	wopts.TrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}
	wopts.UntrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}
	if cfg.partitioned {
		w, _, err = core.NewPartitionedWorld(prog, wopts)
	} else {
		w, _, err = core.NewUnpartitionedWorld(prog, wopts, cfg.inEnclave)
	}
	if err != nil {
		return graphchiRun{}, fmt.Errorf("graphchi %s: %w", cfg.name, err)
	}
	defer w.Close()

	m := startMeter(w.Clock())
	err = w.ExecMain(func(env classmodel.Env) error {
		sh, err := env.New("FastSharder")
		if err != nil {
			return err
		}
		if _, err := env.Call(sh, "shard", wire.Int(int64(numShards))); err != nil {
			return err
		}
		eng, err := env.New("GraphChiEngine")
		if err != nil {
			return err
		}
		_, err = env.Call(eng, "pagerank", wire.Int(pageRankIterations))
		return err
	})
	if err != nil {
		return graphchiRun{}, fmt.Errorf("graphchi %s: %w", cfg.name, err)
	}
	return graphchiRun{
		total:  m.elapsed(),
		shard:  st.shardTime,
		engine: st.engineTime,
		cycles: w.Clock().Total(),
	}, nil
}

// Fig9 regenerates the partitioned GraphChi PageRank comparison (§6.5,
// Fig. 9): three graph sizes, shard counts 1-6, with the
// sharding/engine breakdown.
func Fig9(opts Options) (*Table, error) {
	type graphSpec struct {
		label    string
		vertices int
		edges    int
	}
	var graphs []graphSpec
	var shardCounts []int
	if opts.Quick {
		graphs = []graphSpec{{label: "5k-V,50k-E", vertices: 5000, edges: 50000}}
		shardCounts = []int{1, 3}
	} else {
		graphs = []graphSpec{
			{label: "6.25k-V,25k-E", vertices: 6250, edges: 25000},
			{label: "12.5k-V,50k-E", vertices: 12500, edges: 50000},
			{label: "25k-V,100k-E", vertices: 25000, edges: 100000},
		}
		shardCounts = []int{1, 2, 3, 4, 5, 6}
	}

	var columns []string
	for _, g := range graphs {
		for _, s := range shardCounts {
			columns = append(columns, g.label+"/s"+strconv.Itoa(s))
		}
	}
	t := &Table{
		ID:      "fig9",
		Title:   "GraphChi PageRank run time (total, with sharding/engine breakdown)",
		XLabel:  "config \\ graph/shards",
		Unit:    "seconds",
		Columns: columns,
	}

	configs := []graphchiConfig{
		{name: "NoSGX"},
		{name: "NoPart", inEnclave: true},
		{name: "Part", partitioned: true},
	}
	totals := map[string][]float64{}
	shards := map[string][]float64{}
	engines := map[string][]float64{}
	for _, cfg := range configs {
		for _, gs := range graphs {
			g, err := rmat.Generate(gs.vertices, gs.edges, 2021)
			if err != nil {
				return nil, err
			}
			for _, ns := range shardCounts {
				run, err := runGraphChi(opts, cfg, g, ns)
				if err != nil {
					return nil, err
				}
				totals[cfg.name] = append(totals[cfg.name], run.total.Seconds())
				shards[cfg.name] = append(shards[cfg.name], run.shard.Seconds())
				engines[cfg.name] = append(engines[cfg.name], run.engine.Seconds())
			}
		}
	}
	for _, cfg := range configs {
		t.AddRow(cfg.name+" total", totals[cfg.name]...)
		t.AddRow(cfg.name+" sharding", shards[cfg.name]...)
		t.AddRow(cfg.name+" engine", engines[cfg.name]...)
	}
	addRatioNote(t, "NoPart total", "Part total")
	addRatioNote(t, "Part sharding", "NoSGX sharding")
	return t, nil
}

// Fig11 compares GraphChi native images with JVM baselines on the largest
// graph (§6.6, Fig. 11).
func Fig11(opts Options) (*Table, error) {
	vertices := opts.scale(25000, 5000)
	edges := opts.scale(100000, 50000)
	var shardCounts []int
	if opts.Quick {
		shardCounts = []int{1, 3}
	} else {
		shardCounts = []int{1, 2, 3, 4, 5, 6}
	}
	g, err := rmat.Generate(vertices, edges, 2021)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig11",
		Title:   fmt.Sprintf("GraphChi PageRank, %dk vertices %dk edges: native images vs JVM", vertices/1000, edges/1000),
		XLabel:  "config \\ shards",
		Unit:    "seconds",
		Columns: intColumns(shardCounts),
	}

	for _, cfg := range []graphchiConfig{
		{name: "NoSGX-NI"},
		{name: "Part-NI", partitioned: true},
		{name: "NoPart-NI", inEnclave: true},
	} {
		values := make([]float64, 0, len(shardCounts))
		for _, ns := range shardCounts {
			run, err := runGraphChi(opts, cfg, g, ns)
			if err != nil {
				return nil, err
			}
			values = append(values, run.total.Seconds())
		}
		t.AddRow(cfg.name, values...)
	}

	// JVM baselines from the runtime cost models over the measured
	// library run.
	for _, m := range []jvm.Model{jvm.NoSGXJVM, jvm.SCONEJVM} {
		values := make([]float64, 0, len(shardCounts))
		for _, ns := range shardCounts {
			d, err := graphchiUnderModel(m, g, ns)
			if err != nil {
				return nil, err
			}
			values = append(values, d.Seconds())
		}
		t.AddRow(m.String(), values...)
	}

	addGainNote(t, "SCONE+JVM", "Part-NI")
	addGainNote(t, "SCONE+JVM", "NoPart-NI")
	return t, nil
}

// graphchiUnderModel runs the GraphChi workload as plain Go and applies a
// jvm runtime model: shard/engine I/O operations become relayed syscalls,
// the streamed shard and rank data is the DRAM traffic, and the Java
// version's per-edge object churn drives the GC term.
func graphchiUnderModel(m jvm.Model, g rmat.Graph, numShards int) (time.Duration, error) {
	fs := shim.NewMemFS()
	start := time.Now()
	set, sstats, err := graphchi.Shard(fs, g, numShards, "model-graph")
	if err != nil {
		return 0, err
	}
	_, estats, err := graphchi.RunPageRank(fs, set, graphchi.PageRankConfig{Iterations: pageRankIterations}, nil)
	if err != nil {
		return 0, err
	}
	wall := time.Since(start)

	work := specjvm.Work{
		BytesTouched: sstats.BytesWritten + sstats.BytesRead + estats.BytesRead + estats.BytesStreamed,
		DRAMBytes:    sstats.BytesWritten + estats.BytesStreamed,
		// Per-edge boxing/iterator garbage in the Java implementation.
		AllocBytes: estats.EdgesProcessed*32 + int64(len(g.Edges))*24,
	}
	syscalls := int64(sstats.WriteOps + sstats.ReadOps + estats.ReadOps)
	runner := jvm.NewRunner(0)
	base := int64(wall.Seconds() * runner.Hz())
	total := m.Apply(base, work, syscalls).Total()
	return time.Duration(float64(total) / runner.Hz() * float64(time.Second)), nil
}
