package bench

import (
	"strings"
	"testing"

	"montsalvat/internal/rmat"
)

// quickOpts runs experiments at reduced scale with virtual cost
// accounting — deterministic and fast.
func quickOpts() Options { return Options{Quick: true} }

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6", "fig7",
		"fig9", "fig10", "fig11", "fig12", "table1",
		"ablation-switchless", "ablation-dispatch", "ablation-tcb",
		"ablation-transition", "concurrent-rmi", "ring-sweep", "recovery",
		"group-commit", "fabric-scale", "failover", "obs-overhead",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, err := ByID("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	proxyOut, _ := tab.Row("proxy-out->in")
	proxyIn, _ := tab.Row("proxy-in->out")
	concOut, _ := tab.Row("concrete-out")
	concIn, _ := tab.Row("concrete-in")
	for i := range proxyOut.Values {
		// Paper §6.2: proxy creation is orders of magnitude dearer than
		// concrete creation on the same side. We require >= 100x.
		if proxyOut.Values[i] < 100*concOut.Values[i] {
			t.Errorf("col %d: proxy-out %.3g < 100x concrete-out %.3g", i, proxyOut.Values[i], concOut.Values[i])
		}
		if proxyIn.Values[i] < 50*concIn.Values[i] {
			t.Errorf("col %d: proxy-in %.3g < 50x concrete-in %.3g", i, proxyIn.Values[i], concIn.Values[i])
		}
	}
	// Concrete creation inside the enclave is dearer than outside (MEE).
	var inSum, outSum float64
	for i := range concIn.Values {
		inSum += concIn.Values[i]
		outSum += concOut.Values[i]
	}
	if inSum <= outSum {
		t.Errorf("concrete-in total %.3g <= concrete-out total %.3g", inSum, outSum)
	}
}

func TestFig4aShape(t *testing.T) {
	tab, err := Fig4a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	proxyOut, _ := tab.Row("proxy-out->in")
	concOut, _ := tab.Row("concrete-out")
	for i := range proxyOut.Values {
		if proxyOut.Values[i] < 100*concOut.Values[i] {
			t.Errorf("col %d: RMI %.3g < 100x concrete %.3g", i, proxyOut.Values[i], concOut.Values[i])
		}
	}
}

func TestFig4bShape(t *testing.T) {
	tab, err := Fig4b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ser, _ := tab.Row("proxy-in->out+s")
	plain, _ := tab.Row("proxy-in->out")
	// Serialized RMIs cost more, and the gap widens with list size.
	last := len(ser.Values) - 1
	if ser.Values[last] <= plain.Values[last] {
		t.Errorf("serialized RMI %.3g <= plain %.3g", ser.Values[last], plain.Values[last])
	}
	ratioFirst := ser.Values[0] / plain.Values[0]
	ratioLast := ser.Values[last] / plain.Values[last]
	if ratioLast <= ratioFirst*0.8 {
		t.Errorf("serialization ratio fell with list size: %.2f -> %.2f", ratioFirst, ratioLast)
	}
}

func TestFig5aShape(t *testing.T) {
	tab, err := Fig5a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	in, _ := tab.Row("GC-in (concrete-in)")
	out, _ := tab.Row("GC-out (concrete-out)")
	var inSum, outSum float64
	for i := range in.Values {
		inSum += in.Values[i]
		outSum += out.Values[i]
	}
	// Paper §6.4: "the enclave adds an order of magnitude more overhead
	// to the garbage collection operation". Require >= 3x in aggregate.
	if inSum < 3*outSum {
		t.Errorf("GC-in total %.3g < 3x GC-out total %.3g", inSum, outSum)
	}
}

func TestFig5bConsistency(t *testing.T) {
	tab, err := Fig5b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	proxies, _ := tab.Row("proxy-objs-out")
	mirrors, _ := tab.Row("mirror-objs-in")
	rose := false
	fell := false
	for i := range proxies.Values {
		if proxies.Values[i] != mirrors.Values[i] {
			t.Errorf("step %d: proxies %v != mirrors %v", i, proxies.Values[i], mirrors.Values[i])
		}
		if i > 0 && proxies.Values[i] > proxies.Values[i-1] {
			rose = true
		}
		if i > 0 && proxies.Values[i] < proxies.Values[i-1] {
			fell = true
		}
	}
	if !rose || !fell {
		t.Error("timeline did not both rise and fall")
	}
}

func TestFig6Shape(t *testing.T) {
	tab, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"CPU-intensive", "I/O-intensive"} {
		row, ok := tab.Row(name)
		if !ok {
			t.Fatalf("missing row %s", name)
		}
		first := row.Values[0]
		last := row.Values[len(row.Values)-1]
		// Runtime improves as classes move out of the enclave (with a
		// little wall-noise slack for loaded machines).
		if last >= 1.1*first {
			t.Errorf("%s: 0%%-untrusted %.3g <= 100%%-untrusted %.3g, want improvement", name, first, last)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tab, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	noSGX, _ := tab.Row("NoSGX")
	noPart, _ := tab.Row("NoPart")
	rtwu, _ := tab.Row("Part(RTWU)")
	wtru, _ := tab.Row("Part(WTRU)")
	var sums [4]float64
	for i := range noSGX.Values {
		sums[0] += noSGX.Values[i]
		sums[1] += noPart.Values[i]
		sums[2] += rtwu.Values[i]
		sums[3] += wtru.Values[i]
	}
	// Paper Fig. 7: RTWU clearly beats NoPart and runs close to native
	// (no-SGX); WTRU is close to NoPart.
	if sums[0] > 1.5*sums[2] {
		t.Errorf("NoSGX %.3g not close to RTWU %.3g", sums[0], sums[2])
	}
	if !(sums[2] < sums[1]) {
		t.Errorf("RTWU %.3g !< NoPart %.3g", sums[2], sums[1])
	}
	if sums[1] > 0 && sums[2] > 0 {
		rtwuGain := sums[1] / sums[2]
		wtruGain := sums[1] / sums[3]
		if rtwuGain < 1.3 {
			t.Errorf("RTWU gain over NoPart = %.2f, want >= 1.3 (paper: 2.5)", rtwuGain)
		}
		if wtruGain > rtwuGain {
			t.Errorf("WTRU gain %.2f exceeds RTWU gain %.2f", wtruGain, rtwuGain)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	noPart, _ := tab.Row("NoPart total")
	part, _ := tab.Row("Part total")
	noSGXShard, _ := tab.Row("NoSGX sharding")
	partShard, _ := tab.Row("Part sharding")
	noPartShard, _ := tab.Row("NoPart sharding")
	var sums [5]float64
	for i := range noPart.Values {
		sums[0] += noPart.Values[i]
		sums[1] += part.Values[i]
		sums[2] += noSGXShard.Values[i]
		sums[3] += partShard.Values[i]
		sums[4] += noPartShard.Values[i]
	}
	// Wall-clock assertions are sanity bounds only: the tight Part vs
	// NoPart gaps invert under machine load (e.g. when the whole suite
	// runs alongside `go test -bench`), so the strict comparison below
	// uses the deterministic cycle ledger instead.
	if sums[1] > 1.5*sums[0] {
		t.Errorf("Part total %.3g not below NoPart total %.3g", sums[1], sums[0])
	}
	if sums[3] > 1.5*sums[4] {
		t.Errorf("Part sharding %.3g not below NoPart sharding %.3g", sums[3], sums[4])
	}
	if sums[3] > 3*sums[2] {
		t.Errorf("Part sharding %.3g not close to native %.3g", sums[3], sums[2])
	}

	// Deterministic: partitioning strictly reduces the simulated cost
	// (the sharder's ocalls disappear), and NoSGX charges nothing.
	g, err := rmat.Generate(3000, 30000, 2021)
	if err != nil {
		t.Fatal(err)
	}
	partRun, err := runGraphChi(quickOpts(), graphchiConfig{name: "Part", partitioned: true}, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	noPartRun, err := runGraphChi(quickOpts(), graphchiConfig{name: "NoPart", inEnclave: true}, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	noSGXRun, err := runGraphChi(quickOpts(), graphchiConfig{name: "NoSGX"}, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if partRun.cycles >= noPartRun.cycles {
		t.Errorf("Part cycles %d >= NoPart cycles %d", partRun.cycles, noPartRun.cycles)
	}
	if noSGXRun.cycles >= partRun.cycles {
		t.Errorf("NoSGX cycles %d >= Part cycles %d", noSGXRun.cycles, partRun.cycles)
	}
}

func TestFig10Shape(t *testing.T) {
	tab, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	scone, _ := tab.Row("SCONE+JVM")
	rtwu, _ := tab.Row("Part(RTWU)")
	noPart, _ := tab.Row("NoPart-NI")
	var sums [3]float64
	for i := range scone.Values {
		sums[0] += scone.Values[i]
		sums[1] += rtwu.Values[i]
		sums[2] += noPart.Values[i]
	}
	// Paper: RTWU 6.6x and NoPart 2.6x faster than SCONE+JVM.
	if sums[1] <= 0 || sums[0]/sums[1] < 2 {
		t.Errorf("RTWU gain over SCONE = %.2f, want >= 2 (paper: 6.6)", sums[0]/sums[1])
	}
	if sums[2] <= 0 || sums[0]/sums[2] < 1.2 {
		t.Errorf("NoPart gain over SCONE = %.2f, want >= 1.2 (paper: 2.6)", sums[0]/sums[2])
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	scone, _ := tab.Row("SCONE+JVM")
	part, _ := tab.Row("Part-NI")
	noPart, _ := tab.Row("NoPart-NI")
	noSGX, _ := tab.Row("NoSGX-NI")
	var sums [4]float64
	for i := range scone.Values {
		sums[0] += scone.Values[i]
		sums[1] += part.Values[i]
		sums[2] += noPart.Values[i]
		sums[3] += noSGX.Values[i]
	}
	// Paper Fig. 11 ordering: NoSGX-NI < Part-NI < NoPart-NI < SCONE+JVM,
	// with 10% wall-noise tolerance on the adjacent (tight) pairs; the
	// deterministic Part-vs-NoPart cycle comparison is covered by
	// TestFig9Shape.
	// NoSGX vs Part is the tightest pair (the gap is only the engine's
	// enclave tax); allow generous wall noise — the strict version is
	// the cycle-ledger assertion in TestFig9Shape.
	if sums[3] > 1.4*sums[1] {
		t.Errorf("NoSGX %.3g not below Part %.3g", sums[3], sums[1])
	}
	// Part vs NoPart wall times are within tens of percent at quick
	// scale and invert under machine load; the strict, deterministic
	// version of this claim is TestFig9Shape's cycle-ledger check.
	if sums[1] > 1.5*sums[2] {
		t.Errorf("Part %.3g not below NoPart %.3g", sums[1], sums[2])
	}
	if !(sums[2] < sums[0]) {
		t.Errorf("NoPart %.3g !< SCONE %.3g", sums[2], sums[0])
	}
}

func TestFig12AndTable1Shape(t *testing.T) {
	tab, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ni, _ := tab.Row("NoSGX-NI")
	sgx, _ := tab.Row("SGX-NI")
	for i := range ni.Values {
		if sgx.Values[i] < ni.Values[i] {
			t.Errorf("kernel %s: SGX-NI %.3g < NoSGX-NI %.3g", tab.Columns[i], sgx.Values[i], ni.Values[i])
		}
	}

	t1, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	gains, _ := t1.Row("gain over SCONE+JVM")
	for i, col := range t1.Columns {
		if col == "montecarlo" {
			if gains.Values[i] >= 1 {
				t.Errorf("montecarlo gain %.2f >= 1, want the paper's anomaly (< 1)", gains.Values[i])
			}
		} else if gains.Values[i] <= 1 {
			t.Errorf("%s gain %.2f <= 1", col, gains.Values[i])
		}
	}
}

func TestAblations(t *testing.T) {
	sw, err := AblationSwitchless(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := sw.Row("regular ecall/ocall")
	fast, _ := sw.Row("switchless")
	for i := range reg.Values {
		if fast.Values[i] >= reg.Values[i] {
			t.Errorf("switchless %.3g >= regular %.3g", fast.Values[i], reg.Values[i])
		}
	}

	tcb, err := AblationTCB(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	partRow, _ := tcb.Row("partitioned+shim")
	wholeRow, _ := tcb.Row("whole-app (LibOS-style)")
	if partRow.Values[1] >= wholeRow.Values[1] {
		t.Errorf("partitioned TCB %v not smaller than whole-app %v", partRow.Values, wholeRow.Values)
	}

	tr, err := AblationTransitionCost(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rmi, _ := tr.Row("RMI (proxy-out->in)")
	if rmi.Values[len(rmi.Values)-1] <= rmi.Values[0] {
		t.Errorf("RMI latency did not grow with transition cost: %v", rmi.Values)
	}
}

// TestDispatchSmoke is the `make bench-smoke` entry point: short-mode
// transition-count and cycle assertions for the dispatch modes. The
// acceptance bar is the issue's: batching + switchless must cut total
// simulated cycles on the proxy-call workload by >= 30% versus
// full-transition dispatch, with strictly fewer enclave transitions.
func TestDispatchSmoke(t *testing.T) {
	const invocations = 300
	runs := make(map[string]dispatchRun)
	for _, mode := range []string{"full transitions", "batched", "batched+switchless"} {
		var switchless, batching bool
		switch mode {
		case "batched":
			batching = true
		case "batched+switchless":
			switchless, batching = true, true
		}
		run, err := runDispatchMode(quickOpts(), switchless, batching, invocations)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if run.Cycles <= 0 || run.Transitions == 0 {
			t.Fatalf("%s: empty measurement %+v", mode, run)
		}
		runs[mode] = run
		t.Logf("%-20s %12d cycles  %6d transitions", mode, run.Cycles, run.Transitions)
	}
	full := runs["full transitions"]
	// Full dispatch pays one transition per call; batching folds the void
	// calls into watermark-sized frames.
	if full.Transitions < invocations {
		t.Fatalf("full dispatch made %d transitions for %d calls", full.Transitions, invocations)
	}
	for _, mode := range []string{"batched", "batched+switchless"} {
		if got := runs[mode].Transitions; got >= full.Transitions {
			t.Errorf("%s transitions = %d, want < %d (full)", mode, got, full.Transitions)
		}
	}
	best := runs["batched+switchless"]
	if reduction := 1 - float64(best.Cycles)/float64(full.Cycles); reduction < 0.30 {
		t.Errorf("batched+switchless cycle reduction = %.1f%%, want >= 30%%", 100*reduction)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", XLabel: "series", Unit: "s", Columns: []string{"a", "b"}}
	tab.AddRow("row1", 1.5, 0.25)
	tab.AddNote("hello %d", 42)
	out := tab.Render()
	for _, want := range []string{"== x: demo ==", "row1", "1.5", "0.25", "note: hello 42", "unit: s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSweepHelper(t *testing.T) {
	got := sweep(10, 100, 10)
	if len(got) != 10 || got[0] != 10 || got[9] != 100 {
		t.Fatalf("sweep = %v", got)
	}
	if got := sweep(5, 5, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("single sweep = %v", got)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b,c"}}
	tab.AddRow("row,1", 1.5, 0.25)
	out := tab.RenderCSV()
	want := "series,a,\"b,c\"\n\"row,1\",1.5,0.25\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}
