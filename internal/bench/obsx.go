package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/world"
)

// DispatchProfile runs the secure KV demo workload with full-rate
// transition telemetry attached and renders what an operator would see
// on the live introspection endpoint: boundary calls by route, latency
// and size distributions, and a sampled cross-boundary trace with its
// nested ocall children. It backs the montsalvat-bench
// -profile-dispatch flag; it is intentionally not a registered
// experiment (the experiment list regenerates paper figures, this
// inspects the machinery).
func DispatchProfile(opts Options) (string, error) {
	tel := telemetry.New(telemetry.Options{
		TraceSampleRate: 1,
		TraceBuffer:     4096,
		Seed:            1,
	})
	wopts := world.DefaultOptions()
	wopts.Cfg = opts.Config()
	wopts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), wopts)
	if err != nil {
		return "", err
	}
	defer w.Close()

	m := startMeter(w.Clock())
	if _, err := w.RunMain(); err != nil {
		return "", err
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		return "", err
	}
	elapsed := m.elapsed()

	snap := tel.Registry().Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "== dispatch profile: secure KV demo (%d requests) ==\n", demo.KVRequests)
	fmt.Fprintf(&sb, "elapsed             %v\n\n", elapsed.Round(time.Microsecond))

	sb.WriteString("boundary calls by route\n")
	routes := make([]string, 0, 4)
	for name := range snap.Counters {
		if strings.HasPrefix(name, "montsalvat_boundary_calls_total{") {
			routes = append(routes, name)
		}
	}
	sort.Strings(routes)
	for _, name := range routes {
		fmt.Fprintf(&sb, "  %-44s %d\n", name, snap.Counters[name])
	}
	fmt.Fprintf(&sb, "  %-44s %d\n", "montsalvat_sgx_ecalls_total", snap.Counters["montsalvat_sgx_ecalls_total"])
	fmt.Fprintf(&sb, "  %-44s %d\n", "montsalvat_sgx_ocalls_total", snap.Counters["montsalvat_sgx_ocalls_total"])

	sb.WriteString("\nlatency and size distributions\n")
	for _, h := range []struct{ name, unit string }{
		{"montsalvat_boundary_dispatch_ns", "ns"},
		{"montsalvat_boundary_body_cycles", "cycles"},
		{"montsalvat_boundary_marshal_bytes", "bytes"},
	} {
		hs, ok := snap.Histograms[h.name]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "  %-36s n=%-6d p50=%-8d p95=%-8d p99=%-8d max=%d %s\n",
			h.name, hs.Count, hs.P50, hs.P95, hs.P99, hs.Max, h.unit)
	}

	sb.WriteString("\nsampled trace (one put ecall with its nested audit ocall)\n")
	writeProfileTrace(&sb, tel.Tracer().Dump())
	return sb.String(), nil
}

// writeProfileTrace picks the last relay root that has children and
// renders its span tree, oldest child first.
func writeProfileTrace(sb *strings.Builder, spans []telemetry.Span) {
	children := make(map[uint64][]telemetry.Span, len(spans))
	for _, sp := range spans {
		if sp.ParentID != 0 {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		}
	}
	var root *telemetry.Span
	for i := range spans {
		sp := &spans[i]
		if sp.ParentID == 0 && len(children[sp.SpanID]) > 0 {
			root = sp // keep the newest qualifying root
		}
	}
	if root == nil {
		sb.WriteString("  (no sampled trace with nested spans in the ring)\n")
		return
	}
	var render func(sp telemetry.Span, depth int)
	render = func(sp telemetry.Span, depth int) {
		fmt.Fprintf(sb, "  %s%s dir=%s route=%s bytes=%d cycles=%d span=%x parent=%x\n",
			strings.Repeat("  ", depth), sp.Name, sp.Dir, sp.Route,
			sp.MarshalBytes, sp.BodyCycles, sp.SpanID, sp.ParentID)
		kids := children[sp.SpanID]
		sort.Slice(kids, func(a, b int) bool { return kids[a].StartNS < kids[b].StartNS })
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	fmt.Fprintf(sb, "  trace %x\n", root.TraceID)
	render(*root, 1)
}

// obsMode is one telemetry configuration of the overhead experiment.
type obsMode struct {
	name string
	tel  func() *telemetry.Telemetry
}

func obsModes() []obsMode {
	return []obsMode{
		{"disabled", func() *telemetry.Telemetry { return nil }},
		{"metrics", func() *telemetry.Telemetry {
			return telemetry.New(telemetry.Options{})
		}},
		{"metrics+trace", func() *telemetry.Telemetry {
			return telemetry.New(telemetry.Options{TraceSampleRate: 1, TraceBuffer: 4096})
		}},
	}
}

// obsRun executes the demo KV workload once under one telemetry mode
// and returns the charged virtual cycles and wall time of the run.
func obsRun(opts Options, tel *telemetry.Telemetry) (cycles int64, wall time.Duration, err error) {
	wopts := world.DefaultOptions()
	wopts.Cfg = opts.Config()
	wopts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), wopts)
	if err != nil {
		return 0, 0, err
	}
	defer w.Close()
	c0 := w.Clock().Total()
	start := time.Now()
	if _, err := w.RunMain(); err != nil {
		return 0, 0, err
	}
	return w.Clock().Total() - c0, time.Since(start), nil
}

// ObsOverhead measures what the observability plane costs on the
// boundary hot path: the demo KV workload with telemetry disabled,
// with the metrics registry attached, and with full-rate tracing on
// top. The charged virtual cycles — the simulation's cost model — must
// be identical across modes (the disabled path is additionally pinned
// by TestTelemetryCycleNeutral); the wall-clock row shows the real
// implementation cost of the enabled instruments.
func ObsOverhead(opts Options) (*Table, error) {
	modes := obsModes()
	reps := opts.scale(5, 2)
	t := &Table{
		ID:     "obs-overhead",
		Title:  "Observability overhead: enabled vs disabled telemetry",
		XLabel: "metric",
		Unit:   "per boundary op (demo KV workload)",
	}
	cycPerOp := make([]float64, 0, len(modes))
	wallPerOp := make([]float64, 0, len(modes))
	for _, m := range modes {
		t.Columns = append(t.Columns, m.name)
		var cycles int64
		best := time.Duration(0)
		for r := 0; r < reps; r++ {
			c, wall, err := obsRun(opts, m.tel())
			if err != nil {
				return nil, fmt.Errorf("obs-overhead %s: %w", m.name, err)
			}
			cycles = c
			if best == 0 || wall < best {
				best = wall
			}
		}
		ops := float64(demo.KVRequests)
		cycPerOp = append(cycPerOp, float64(cycles)/ops)
		wallPerOp = append(wallPerOp, float64(best.Nanoseconds())/ops)
	}
	t.AddRow("virtual cycles/op", cycPerOp...)
	t.AddRow("wall ns/op (best of reps)", wallPerOp...)
	for i := 1; i < len(modes); i++ {
		delta := cycPerOp[i] - cycPerOp[0]
		t.AddNote("%s: cycle delta vs disabled = %+.0f cycles/op (must be 0), wall overhead %.1f%%",
			modes[i].name, delta, 100*(wallPerOp[i]-wallPerOp[0])/wallPerOp[0])
		if delta != 0 {
			return nil, fmt.Errorf("obs-overhead: %s changed charged cycles by %+.0f/op — telemetry must be cycle-neutral", modes[i].name, delta)
		}
	}
	return t, nil
}

// ObsPerfPoint is one telemetry mode's measurement in a perf record.
type ObsPerfPoint struct {
	Mode        string  `json:"mode"`
	CyclesPerOp float64 `json:"cycles_per_op"`
	WallNSPerOp float64 `json:"wall_ns_per_op"`
	// CycleDelta is CyclesPerOp minus the disabled mode's — 0 by the
	// cycle-neutrality invariant.
	CycleDelta float64 `json:"cycle_delta"`
	// WallOverhead is the fractional wall-clock cost over disabled.
	WallOverhead float64 `json:"wall_overhead"`
}

// ObsPerfEntry is one labelled observability-overhead record — the
// perf-trajectory format of BENCH_obs.json.
type ObsPerfEntry struct {
	Label      string         `json:"label"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Quick      bool           `json:"quick"`
	Points     []ObsPerfPoint `json:"points"`
}

// ObsPerfFile is the on-disk shape of BENCH_obs.json: an append-only
// list of labelled runs.
type ObsPerfFile struct {
	Schema  string         `json:"schema"`
	Entries []ObsPerfEntry `json:"entries"`
}

// ObsPerfSchema identifies the BENCH_obs.json format.
const ObsPerfSchema = "montsalvat-bench-obs/v1"

// ObsPerf produces one labelled observability-overhead record.
func ObsPerf(opts Options, label string) (*ObsPerfEntry, error) {
	table, err := ObsOverhead(opts)
	if err != nil {
		return nil, err
	}
	cyc, _ := table.Row("virtual cycles/op")
	wall, _ := table.Row("wall ns/op (best of reps)")
	e := &ObsPerfEntry{Label: label, GoMaxProcs: runtime.GOMAXPROCS(0), Quick: opts.Quick}
	for i, mode := range table.Columns {
		p := ObsPerfPoint{
			Mode:        mode,
			CyclesPerOp: cyc.Values[i],
			WallNSPerOp: wall.Values[i],
			CycleDelta:  cyc.Values[i] - cyc.Values[0],
		}
		if i > 0 && wall.Values[0] > 0 {
			p.WallOverhead = (wall.Values[i] - wall.Values[0]) / wall.Values[0]
		}
		e.Points = append(e.Points, p)
	}
	return e, nil
}
