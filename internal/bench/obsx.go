package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/world"
)

// DispatchProfile runs the secure KV demo workload with full-rate
// transition telemetry attached and renders what an operator would see
// on the live introspection endpoint: boundary calls by route, latency
// and size distributions, and a sampled cross-boundary trace with its
// nested ocall children. It backs the montsalvat-bench
// -profile-dispatch flag; it is intentionally not a registered
// experiment (the experiment list regenerates paper figures, this
// inspects the machinery).
func DispatchProfile(opts Options) (string, error) {
	tel := telemetry.New(telemetry.Options{
		TraceSampleRate: 1,
		TraceBuffer:     4096,
		Seed:            1,
	})
	wopts := world.DefaultOptions()
	wopts.Cfg = opts.Config()
	wopts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), wopts)
	if err != nil {
		return "", err
	}
	defer w.Close()

	m := startMeter(w.Clock())
	if _, err := w.RunMain(); err != nil {
		return "", err
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		return "", err
	}
	elapsed := m.elapsed()

	snap := tel.Registry().Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "== dispatch profile: secure KV demo (%d requests) ==\n", demo.KVRequests)
	fmt.Fprintf(&sb, "elapsed             %v\n\n", elapsed.Round(time.Microsecond))

	sb.WriteString("boundary calls by route\n")
	routes := make([]string, 0, 4)
	for name := range snap.Counters {
		if strings.HasPrefix(name, "montsalvat_boundary_calls_total{") {
			routes = append(routes, name)
		}
	}
	sort.Strings(routes)
	for _, name := range routes {
		fmt.Fprintf(&sb, "  %-44s %d\n", name, snap.Counters[name])
	}
	fmt.Fprintf(&sb, "  %-44s %d\n", "montsalvat_sgx_ecalls_total", snap.Counters["montsalvat_sgx_ecalls_total"])
	fmt.Fprintf(&sb, "  %-44s %d\n", "montsalvat_sgx_ocalls_total", snap.Counters["montsalvat_sgx_ocalls_total"])

	sb.WriteString("\nlatency and size distributions\n")
	for _, h := range []struct{ name, unit string }{
		{"montsalvat_boundary_dispatch_ns", "ns"},
		{"montsalvat_boundary_body_cycles", "cycles"},
		{"montsalvat_boundary_marshal_bytes", "bytes"},
	} {
		hs, ok := snap.Histograms[h.name]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "  %-36s n=%-6d p50=%-8d p95=%-8d p99=%-8d max=%d %s\n",
			h.name, hs.Count, hs.P50, hs.P95, hs.P99, hs.Max, h.unit)
	}

	sb.WriteString("\nsampled trace (one put ecall with its nested audit ocall)\n")
	writeProfileTrace(&sb, tel.Tracer().Dump())
	return sb.String(), nil
}

// writeProfileTrace picks the last relay root that has children and
// renders its span tree, oldest child first.
func writeProfileTrace(sb *strings.Builder, spans []telemetry.Span) {
	children := make(map[uint64][]telemetry.Span, len(spans))
	for _, sp := range spans {
		if sp.ParentID != 0 {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		}
	}
	var root *telemetry.Span
	for i := range spans {
		sp := &spans[i]
		if sp.ParentID == 0 && len(children[sp.SpanID]) > 0 {
			root = sp // keep the newest qualifying root
		}
	}
	if root == nil {
		sb.WriteString("  (no sampled trace with nested spans in the ring)\n")
		return
	}
	var render func(sp telemetry.Span, depth int)
	render = func(sp telemetry.Span, depth int) {
		fmt.Fprintf(sb, "  %s%s dir=%s route=%s bytes=%d cycles=%d span=%x parent=%x\n",
			strings.Repeat("  ", depth), sp.Name, sp.Dir, sp.Route,
			sp.MarshalBytes, sp.BodyCycles, sp.SpanID, sp.ParentID)
		kids := children[sp.SpanID]
		sort.Slice(kids, func(a, b int) bool { return kids[a].StartNS < kids[b].StartNS })
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	fmt.Fprintf(sb, "  trace %x\n", root.TraceID)
	render(*root, 1)
}
