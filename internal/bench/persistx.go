package bench

import (
	"fmt"
	"runtime"

	"montsalvat/internal/cycles"
	"montsalvat/internal/persist"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
)

// recoveryIntervals are the checkpoint cadences swept by the recovery
// experiment: 0 means no checkpoint is ever taken after boot, so the
// whole WAL replays.
var recoveryIntervals = []int{0, 1024, 256, 64}

// recoveryLineage is one durable lineage prepared for a recovery
// measurement: the untrusted storage plus the identity (signer, platform
// secret, counter store) that survives a crash.
type recoveryLineage struct {
	cfg    simcfg.Config
	fs     shim.FS
	secret sgx.PlatformSecret
	ctrs   *sgx.MemCounterStore
	signer *sgx.Signer
}

func newRecoveryLineage(cfg simcfg.Config) (*recoveryLineage, error) {
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		return nil, err
	}
	signer, err := sgx.NewSigner()
	if err != nil {
		return nil, err
	}
	return &recoveryLineage{
		cfg:    cfg,
		fs:     shim.NewMemFS(),
		secret: secret,
		ctrs:   sgx.NewMemCounterStore(),
		signer: signer,
	}, nil
}

// boot builds an initialized enclave and a Manager over the lineage's
// storage — one machine lifetime. The signer is shared across boots, so
// MRSIGNER-sealed blobs written before a crash unseal after it.
func (l *recoveryLineage) boot() (*persist.Manager, *persist.MapState, error) {
	return l.bootWith(persist.Options{})
}

// bootWith boots with caller-chosen durability knobs (the group-commit
// sweep varies them); identity, storage, and counter wiring are the
// lineage's.
func (l *recoveryLineage) bootWith(extra persist.Options) (*persist.Manager, *persist.MapState, error) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := sgx.Create(l.cfg, clk, 4)
	if err != nil {
		return nil, nil, err
	}
	if err := e.AddPages([]byte("bench recovery image")); err != nil {
		return nil, nil, err
	}
	ss, err := l.signer.Sign(e.Measurement())
	if err != nil {
		return nil, nil, err
	}
	if err := e.Init(ss); err != nil {
		return nil, nil, err
	}
	ctr, err := sgx.NewMonotonicCounter(l.secret, l.ctrs, "bench")
	if err != nil {
		return nil, nil, err
	}
	st := persist.NewMapState("kv")
	popts := extra
	popts.FS = l.fs
	popts.Enclave = e
	popts.Secret = l.secret
	popts.Counter = ctr
	popts.Dir = "p/"
	m, err := persist.Open(popts)
	if err != nil {
		return nil, nil, err
	}
	if err := m.Register(st); err != nil {
		return nil, nil, err
	}
	return m, st, nil
}

// runRecovery journals records under one checkpoint cadence, crashes,
// and measures the recovery of a fresh boot over the surviving files.
// interval 0 never checkpoints after boot; otherwise a checkpoint is
// taken every interval records, so roughly records%interval WAL records
// remain to replay.
func runRecovery(cfg simcfg.Config, records, interval int) (persist.Report, error) {
	l, err := newRecoveryLineage(cfg)
	if err != nil {
		return persist.Report{}, err
	}
	m, st, err := l.boot()
	if err != nil {
		return persist.Report{}, err
	}
	if _, err := m.Recover(); err != nil {
		return persist.Report{}, err
	}
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < records; i++ {
		key := fmt.Sprintf("user:%06d", i%4096)
		if _, err := m.Append("kv", persist.OpPut, key, val); err != nil {
			return persist.Report{}, err
		}
		st.Put(key, val)
		if interval > 0 && (i+1)%interval == 0 {
			if err := m.Checkpoint(); err != nil {
				return persist.Report{}, err
			}
		}
	}
	// Crash: the enclave heap is gone; only l.fs and the counter store
	// survive. A fresh boot recovers checkpoint + WAL tail.
	m2, st2, err := l.boot()
	if err != nil {
		return persist.Report{}, err
	}
	rep, err := m2.Recover()
	if err != nil {
		return persist.Report{}, err
	}
	if got := st2.Len(); got == 0 && records > 0 {
		return persist.Report{}, fmt.Errorf("bench recovery: state empty after recovering %d records", records)
	}
	return rep, nil
}

// intervalName labels a checkpoint cadence row.
func intervalName(interval int) string {
	if interval == 0 {
		return "no-ckpt"
	}
	return fmt.Sprintf("ckpt/%d", interval)
}

// RecoveryTime regenerates the durability experiment: crash-recovery
// latency as a function of WAL length and checkpoint cadence. Recovery
// is dominated by the WAL tail — unsealing and replaying every record
// since the last checkpoint — so tighter cadences buy flatter recovery
// at the cost of more sealed snapshot writes during normal operation.
func RecoveryTime(opts Options) (*Table, error) {
	counts := sweep(opts.scale(1_000, 200), opts.scale(8_000, 1_000), opts.scale(4, 3))
	cfg := opts.Config()
	t := &Table{
		ID:      "recovery",
		Title:   "Crash-recovery latency vs WAL length and checkpoint cadence",
		XLabel:  "cadence \\ records",
		Unit:    "milliseconds",
		Columns: intColumns(counts),
	}
	var worst, best []float64
	for _, interval := range recoveryIntervals {
		values := make([]float64, 0, len(counts))
		for _, n := range counts {
			rep, err := runRecovery(cfg, n, interval)
			if err != nil {
				return nil, fmt.Errorf("recovery n=%d interval=%d: %w", n, interval, err)
			}
			values = append(values, float64(rep.Duration.Microseconds())/1000)
		}
		t.AddRow(intervalName(interval), values...)
		switch interval {
		case 0:
			worst = values
		case recoveryIntervals[len(recoveryIntervals)-1]:
			best = values
		}
	}
	if len(worst) > 0 && len(best) > 0 && best[len(best)-1] > 0 {
		t.AddNote("full-WAL replay vs %s at max records: %.1fx slower recovery",
			intervalName(recoveryIntervals[len(recoveryIntervals)-1]),
			worst[len(worst)-1]/best[len(best)-1])
	}
	t.AddNote("recovery = unseal counter-valid checkpoint + replay sealed WAL tail + recovery checkpoint")
	return t, nil
}

// RecoveryPoint is one (records, cadence) measurement of a RecoveryPerf
// run.
type RecoveryPoint struct {
	Records         int     `json:"records"`
	CkptInterval    int     `json:"ckpt_interval"`
	RecoverMS       float64 `json:"recover_ms"`
	ReplayedRecords int     `json:"replayed_records"`
	RecordsPerSec   float64 `json:"replayed_per_sec"`
}

// RecoveryPerfEntry is one machine-readable recovery performance record
// — the perf-trajectory format of BENCH_persist.json that future
// changes compare against.
type RecoveryPerfEntry struct {
	Label      string          `json:"label"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Quick      bool            `json:"quick"`
	Points     []RecoveryPoint `json:"points"`
	// GroupCommit is the commit-window sweep: durable-put throughput
	// and ack quantiles per (writers, window) cell, with the ungrouped
	// single-seal baseline. Absent in entries recorded before the
	// group-commit engine existed.
	GroupCommit []GroupCommitPoint `json:"group_commit,omitempty"`
}

// RecoveryPerfFile is the on-disk shape of BENCH_persist.json: an
// append-only list of labelled runs.
type RecoveryPerfFile struct {
	Schema  string              `json:"schema"`
	Entries []RecoveryPerfEntry `json:"entries"`
}

// RecoveryPerfSchema identifies the BENCH_persist.json format.
const RecoveryPerfSchema = "montsalvat-bench-persist/v1"

// RecoveryPerf produces one labelled recovery performance record: the
// full (records × cadence) sweep with replay throughput per point.
func RecoveryPerf(opts Options, label string) (*RecoveryPerfEntry, error) {
	counts := sweep(opts.scale(1_000, 200), opts.scale(8_000, 1_000), opts.scale(4, 3))
	cfg := opts.Config()
	e := &RecoveryPerfEntry{
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
	}
	for _, interval := range recoveryIntervals {
		for _, n := range counts {
			rep, err := runRecovery(cfg, n, interval)
			if err != nil {
				return nil, fmt.Errorf("recovery-perf n=%d interval=%d: %w", n, interval, err)
			}
			p := RecoveryPoint{
				Records:         n,
				CkptInterval:    interval,
				RecoverMS:       float64(rep.Duration.Microseconds()) / 1000,
				ReplayedRecords: rep.ReplayedRecords,
			}
			if secs := rep.Duration.Seconds(); secs > 0 && rep.ReplayedRecords > 0 {
				p.RecordsPerSec = float64(rep.ReplayedRecords) / secs
			}
			e.Points = append(e.Points, p)
		}
	}
	gc, err := GroupCommitSweep(opts)
	if err != nil {
		return nil, fmt.Errorf("recovery-perf group-commit sweep: %w", err)
	}
	e.GroupCommit = gc
	return e, nil
}
