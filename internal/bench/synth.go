package bench

import (
	"fmt"
	"strconv"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/heap"
	"montsalvat/internal/specjvm"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// synthVariant selects the per-class workload of the Fig. 6 program
// generator (§6.5: each class's instance method performs either CPU
// intensive operations — an FFT on a 1 MB double array — or I/O intensive
// operations — 4 KB file writes).
type synthVariant int

const (
	synthCPU synthVariant = iota + 1
	synthIO
)

// synthProgram generates a Java-program-generator application (§6.5): W
// work classes, the first `trusted` of them annotated @Trusted and the
// rest @Untrusted, each exposing a work() method; main instantiates every
// class and invokes its method.
func synthProgram(classes, trusted int, variant synthVariant, fftSize, ioWrites int) (*classmodel.Program, error) {
	p := classmodel.NewProgram()
	names := make([]string, classes)
	for i := 0; i < classes; i++ {
		names[i] = "Work" + strconv.Itoa(i)
		ann := classmodel.Untrusted
		if i < trusted {
			ann = classmodel.Trusted
		}
		c := classmodel.NewClass(names[i], ann)
		if err := c.AddMethod(&classmodel.Method{
			Name: classmodel.CtorName, Public: true,
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				return wire.Null(), nil
			},
		}); err != nil {
			return nil, err
		}
		file := names[i] + ".out"
		if err := c.AddMethod(&classmodel.Method{
			Name: "work", Public: true, Returns: wire.KindFloat,
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				switch variant {
				case synthCPU:
					// FFT on a ~1 MB double array; the transform's DRAM
					// traffic and the array allocation pay MEE cost when
					// this class runs inside the enclave.
					cs, work := specjvm.FFT(fftSize)
					env.MemTouch(int(work.DRAMBytes) + int(work.AllocBytes))
					return wire.Float(cs), nil
				default:
					buf := make([]byte, 4096)
					for w := 0; w < ioWrites; w++ {
						if _, err := env.FS().Append(file, buf); err != nil {
							return wire.Value{}, err
						}
					}
					return wire.Float(0), nil
				}
			},
		}); err != nil {
			return nil, err
		}
		if err := p.AddClass(c); err != nil {
			return nil, err
		}
	}

	// Anchor keeps the trusted image buildable when every work class is
	// untrusted (the 100% point).
	anchor := classmodel.NewClass("SynthAnchor", classmodel.Trusted)
	if err := anchor.AddMethod(&classmodel.Method{
		Name: "noop", Public: true, Static: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(anchor); err != nil {
		return nil, err
	}

	mainC := classmodel.NewClass("SynthMain", classmodel.Untrusted)
	mm := &classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Allocates: append([]string(nil), names...),
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			for _, name := range names {
				obj, err := env.New(name)
				if err != nil {
					return wire.Value{}, err
				}
				if _, err := env.Call(obj, "work"); err != nil {
					return wire.Value{}, err
				}
			}
			return wire.Null(), nil
		},
	}
	for _, name := range names {
		mm.Calls = append(mm.Calls, classmodel.MethodRef{Class: name, Method: "work"})
	}
	if err := mainC.AddMethod(mm); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainC); err != nil {
		return nil, err
	}
	p.MainClass = "SynthMain"
	return p, nil
}

// Fig6 runs the synthetic partitioning sweep (§6.5, Fig. 6): total
// application runtime as the percentage of untrusted classes grows, for
// the CPU-intensive and I/O-intensive variants.
func Fig6(opts Options) (*Table, error) {
	classes := opts.scale(100, 10)
	fftSize := opts.scale(1<<16, 1<<11) // ~1 MB of doubles at full scale
	ioWrites := opts.scale(50, 8)
	var pcts []int
	if opts.Quick {
		pcts = []int{0, 50, 100}
	} else {
		pcts = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}

	t := &Table{
		ID:      "fig6",
		Title:   fmt.Sprintf("Synthetic %d-class application runtime vs %% untrusted classes", classes),
		XLabel:  "variant \\ % untrusted",
		Unit:    "seconds",
		Columns: intColumns(pcts),
	}

	for _, variant := range []struct {
		kind synthVariant
		name string
	}{
		{kind: synthCPU, name: "CPU-intensive"},
		{kind: synthIO, name: "I/O-intensive"},
	} {
		values := make([]float64, 0, len(pcts))
		for _, pct := range pcts {
			trusted := classes - classes*pct/100
			prog, err := synthProgram(classes, trusted, variant.kind, fftSize, ioWrites)
			if err != nil {
				return nil, err
			}
			wopts := world.DefaultOptions()
			wopts.Cfg = opts.Config()
			wopts.TrustedHeap = heap.Config{InitialSemi: 4 << 20, MaxSemi: 512 << 20}
			wopts.UntrustedHeap = heap.Config{InitialSemi: 4 << 20, MaxSemi: 512 << 20}
			w, _, err := core.NewPartitionedWorld(prog, wopts)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s pct=%d: %w", variant.name, pct, err)
			}
			m := startMeter(w.Clock())
			if _, err := w.RunMain(); err != nil {
				w.Close()
				return nil, fmt.Errorf("fig6 %s pct=%d: %w", variant.name, pct, err)
			}
			elapsed := m.elapsed()
			w.Close()
			values = append(values, elapsed.Seconds())
		}
		t.AddRow(variant.name, values...)
		if first, last := values[0], values[len(values)-1]; last > 0 {
			t.AddNote("%s: 0%% untrusted / 100%% untrusted = %.2fx", variant.name, first/last)
		}
	}
	return t, nil
}
