package bench

// orderlyx.go is the model-checker throughput suite behind
// `montsalvat-bench -json BENCH_orderly.json -suite orderly`: the
// orderly explorer's deep mode, run at a fixed wall-clock budget per
// configuration, recording distinct canonical states per second. The
// rate is the capacity planning number for the verification schedules —
// it says how much interleaving space a CI minute actually buys on this
// machine, and a regression here means deeper smoke schedules silently
// stop fitting their time box.

import (
	"fmt"
	"runtime"
	"time"

	"montsalvat/internal/orderly"
)

// OrderlyPerfPoint is one configuration's exploration-rate measurement.
type OrderlyPerfPoint struct {
	Config   string `json:"config"`
	MaxDepth int    `json:"max_depth"`
	// States is the distinct canonical states visited inside the
	// budget; Transitions counts frontier action applications and
	// Resets full system rebuilds (the replay-from-scratch backtracking
	// cost).
	States       int     `json:"states"`
	Transitions  int64   `json:"transitions"`
	Resets       int64   `json:"resets"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	StatesPerSec float64 `json:"states_per_sec"`
	// Bounded reports the budget (not depth exhaustion) stopped the
	// pass — expected true for the deep world sweep.
	Bounded bool `json:"bounded"`
}

// OrderlyPerfEntry is one labelled model-checker throughput record —
// the perf-trajectory format of BENCH_orderly.json.
type OrderlyPerfEntry struct {
	Label      string             `json:"label"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick"`
	Points     []OrderlyPerfPoint `json:"points"`
}

// OrderlyPerfFile is the on-disk shape of BENCH_orderly.json: an
// append-only list of labelled runs.
type OrderlyPerfFile struct {
	Schema  string             `json:"schema"`
	Entries []OrderlyPerfEntry `json:"entries"`
}

// OrderlyPerfSchema identifies the BENCH_orderly.json format.
const OrderlyPerfSchema = "montsalvat-bench-orderly/v1"

// OrderlyPerf produces one labelled model-checker throughput record:
// the in-process world alphabet explored deep under a wall-clock
// budget, and the two-shard fabric failover alphabet under a smaller
// one (a fabric rebuild costs ~10x a world rebuild, so its rate is the
// interesting floor). Any invariant violation fails the run — the
// throughput suite doubles as one more clean sweep.
func OrderlyPerf(opts Options, label string) (*OrderlyPerfEntry, error) {
	passes := []struct {
		config string
		depth  int
		budget time.Duration
	}{
		{"world", 12, time.Duration(opts.scale(10, 2)) * time.Second},
		{"fabric", 8, time.Duration(opts.scale(5, 1)) * time.Second},
	}
	e := &OrderlyPerfEntry{Label: label, GoMaxProcs: runtime.GOMAXPROCS(0), Quick: opts.Quick}
	for _, p := range passes {
		build, err := orderly.Config(p.config)
		if err != nil {
			return nil, err
		}
		res, err := orderly.Explore(orderly.Options{
			Build:    build,
			MaxDepth: p.depth,
			Budget:   p.budget,
		})
		if err != nil {
			return nil, fmt.Errorf("orderly perf %s: %w", p.config, err)
		}
		if v := res.Violation; v != nil {
			return nil, fmt.Errorf("orderly perf %s: invariant violated: %v (seed %s)",
				p.config, v.Err, orderly.FormatSeed(p.config, v.Trace))
		}
		e.Points = append(e.Points, OrderlyPerfPoint{
			Config:       p.config,
			MaxDepth:     p.depth,
			States:       res.States,
			Transitions:  res.Transitions,
			Resets:       res.Resets,
			ElapsedMS:    float64(res.Elapsed) / float64(time.Millisecond),
			StatesPerSec: res.StatesPerSec(),
			Bounded:      res.Bounded,
		})
	}
	return e, nil
}
