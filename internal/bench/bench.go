// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment function returns a Table whose rows
// are the series/bars of the corresponding figure, rendered as aligned
// text by the montsalvat-bench CLI and exercised by the repository's
// testing.B benchmarks.
//
// Experiments measure a combination of real work (AES in the MEE,
// serialization, kernel compute) and charged simulated cycles (enclave
// transitions, MEE traffic accounted on the virtual ledger). The meter
// below reports both consistently: with spinning enabled (benchmark
// mode), charged cycles are already wall-clock time; without it (test
// mode) they are added analytically, keeping experiments deterministic
// and fast.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"montsalvat/internal/cycles"
	"montsalvat/internal/simcfg"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks problem sizes for fast runs (tests, -quick).
	Quick bool
	// Spin charges simulated costs as real busy-wait time.
	Spin bool
	// GroupCommit runs the fabric experiments on the pipelined
	// durable-write path (batched WAL seals, replication off the ack
	// path) instead of the per-mutation synchronous one.
	GroupCommit bool
}

// Config returns the platform configuration for the options.
func (o Options) Config() simcfg.Config {
	if o.Spin {
		return simcfg.ForBench()
	}
	return simcfg.ForTest()
}

// scale picks full or quick experiment parameters.
func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Table is one regenerated figure or table.
type Table struct {
	// ID is the experiment identifier (fig3 ... table1).
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and Unit describe the columns.
	XLabel string
	Unit   string
	// Columns are the x-axis values (e.g. object counts, shard counts).
	Columns []string
	// Rows are the series, in display order.
	Rows []Series
	// Notes carry observations (e.g. computed speedups) for the report.
	Notes []string
}

// Series is one line/bar group of a figure.
type Series struct {
	Name   string
	Values []float64
}

// AddRow appends a series.
func (t *Table) AddRow(name string, values ...float64) {
	t.Rows = append(t.Rows, Series{Name: name, Values: values})
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Row returns the series with the given name.
func (t *Table) Row(name string) (Series, bool) {
	for _, r := range t.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Series{}, false
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&sb, "unit: %s\n", t.Unit)
	}
	nameW := len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			cells[i][j] = formatValue(v)
		}
	}
	for j, c := range t.Columns {
		colW[j] = len(c)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > colW[j] {
				colW[j] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(&sb, "%-*s", nameW+2, t.XLabel)
	for j, c := range t.Columns {
		fmt.Fprintf(&sb, "  %*s", colW[j], c)
	}
	sb.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", nameW+2, r.Name)
		for j := range r.Values {
			fmt.Fprintf(&sb, "  %*s", colW[j], cells[i][j])
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// RenderCSV formats the table as CSV (one header row, one row per
// series) for plotting.
func (t *Table) RenderCSV() string {
	var sb strings.Builder
	sb.WriteString("series")
	for _, c := range t.Columns {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(c))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString(csvEscape(r.Name))
		for _, v := range r.Values {
			fmt.Fprintf(&sb, ",%g", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// meter measures elapsed experiment time consistently across spinning and
// virtual cost accounting.
type meter struct {
	clock  *cycles.Clock
	start  time.Time
	cycles int64
}

// startMeter begins a measurement window on clk (clk may be nil for
// pure-wall measurements).
func startMeter(clk *cycles.Clock) meter {
	m := meter{clock: clk, start: time.Now()}
	if clk != nil {
		m.cycles = clk.Total()
	}
	return m
}

// elapsed returns the window's duration: wall time plus (when the clock
// does not spin) the charged virtual cycles.
func (m meter) elapsed() time.Duration {
	wall := time.Since(m.start)
	if m.clock == nil || m.clock.Spinning() {
		return wall
	}
	return wall + m.clock.Duration(m.clock.Total()-m.cycles)
}

// vmeter measures charged virtual cycles only — the complete modelled
// time of an operation sequence, excluding the Go implementation's own
// overhead. The micro-benchmarks (Figs. 3-4) use it because they compare
// few-cycle compiled operations against multi-thousand-cycle transitions;
// measuring the simulator's interpretation overhead would compress the
// orders-of-magnitude gaps the paper reports.
type vmeter struct {
	clock *cycles.Clock
	c0    int64
}

func startVMeter(clk *cycles.Clock) vmeter {
	return vmeter{clock: clk, c0: clk.Total()}
}

func (m vmeter) elapsed() time.Duration {
	return m.clock.Duration(m.clock.Total() - m.c0)
}

// Experiment is a registered figure/table generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig3", Title: "Proxy object creation vs concrete object creation", Run: Fig3},
		{ID: "fig4a", Title: "Remote method invocation latency", Run: Fig4a},
		{ID: "fig4b", Title: "Impact of serialization on RMIs", Run: Fig4b},
		{ID: "fig5a", Title: "GC time in vs out of the enclave", Run: Fig5a},
		{ID: "fig5b", Title: "GC consistency across runtimes", Run: Fig5b},
		{ID: "fig6", Title: "Synthetic partitioning sweep (CPU & I/O)", Run: Fig6},
		{ID: "fig7", Title: "PalDB read/write under partitioning schemes", Run: Fig7},
		{ID: "fig9", Title: "GraphChi PageRank under partitioning", Run: Fig9},
		{ID: "fig10", Title: "PalDB vs SCONE+JVM", Run: Fig10},
		{ID: "fig11", Title: "GraphChi vs SCONE+JVM", Run: Fig11},
		{ID: "fig12", Title: "SPECjvm2008 micro-benchmarks across runtimes", Run: Fig12},
		{ID: "table1", Title: "SGX-NI gain over SCONE+JVM per kernel", Run: Table1},
		{ID: "ablation-switchless", Title: "Ablation: switchless transitions (§7)", Run: AblationSwitchless},
		{ID: "ablation-dispatch", Title: "Ablation: boundary dispatch (switchless + batching)", Run: AblationDispatch},
		{ID: "ablation-tcb", Title: "Ablation: TCB size, partitioned vs LibOS-style", Run: AblationTCB},
		{ID: "ablation-transition", Title: "Ablation: transition-cost sensitivity", Run: AblationTransitionCost},
		{ID: "concurrent-rmi", Title: "Concurrent RMI throughput scaling", Run: ConcurrentRMI},
		{ID: "ring-sweep", Title: "Zero-copy ring data plane vs frame path (payload sweep)", Run: RingSweep},
		{ID: "recovery", Title: "Crash-recovery latency: WAL length × checkpoint cadence", Run: RecoveryTime},
		{ID: "group-commit", Title: "Group commit: durable-put throughput vs writers and commit window", Run: GroupCommit},
		{ID: "fabric-scale", Title: "Sharded fabric throughput vs shard count", Run: FabricScale},
		{ID: "failover", Title: "Failover time: replica promotion vs write volume", Run: FailoverTime},
		{ID: "obs-overhead", Title: "Observability overhead: enabled vs disabled telemetry", Run: ObsOverhead},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}
