package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"montsalvat/internal/demo"
	"montsalvat/internal/serve"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// ServeLoadOptions configures one load-generation run against a running
// enclave gateway.
type ServeLoadOptions struct {
	// Addr is the gateway address.
	Addr string
	// Client is the attested client configuration (platform +
	// expected measurement).
	Client serve.ClientConfig
	// Sessions is the number of concurrent attested sessions (default 8).
	Sessions int
	// Requests is the per-session request count (default 64).
	Requests int
	// PutRatio is the fraction of puts in the put/get mix expressed as
	// one put every PutRatio requests (default 3, i.e. ~1/3 puts).
	PutRatio int
}

func (o ServeLoadOptions) withDefaults() ServeLoadOptions {
	if o.Sessions <= 0 {
		o.Sessions = 8
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.PutRatio <= 0 {
		o.PutRatio = 3
	}
	return o
}

// ServeLoadResult aggregates one load run.
type ServeLoadResult struct {
	Sessions int
	Requests int // completed request count across all sessions
	Errors   int // failed requests (typed rejections and app errors)
	// HandshakeFailures counts sessions that failed to attest.
	HandshakeFailures int
	Elapsed           time.Duration
	// Throughput is completed requests per second of wall-clock time.
	Throughput float64
	// Latency percentiles over completed requests.
	P50, P95, P99, Max time.Duration
}

// String renders the result as aligned text for CLI output.
func (r ServeLoadResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sessions            %d\n", r.Sessions)
	fmt.Fprintf(&sb, "requests completed  %d\n", r.Requests)
	fmt.Fprintf(&sb, "request errors      %d\n", r.Errors)
	fmt.Fprintf(&sb, "handshake failures  %d\n", r.HandshakeFailures)
	fmt.Fprintf(&sb, "elapsed             %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "throughput          %.0f req/s\n", r.Throughput)
	fmt.Fprintf(&sb, "latency p50         %v\n", r.P50.Round(time.Microsecond))
	fmt.Fprintf(&sb, "latency p95         %v\n", r.P95.Round(time.Microsecond))
	fmt.Fprintf(&sb, "latency p99         %v\n", r.P99.Round(time.Microsecond))
	fmt.Fprintf(&sb, "latency max         %v\n", r.Max.Round(time.Microsecond))
	return sb.String()
}

// ServeLoad runs a concurrent put/get workload against a gateway serving
// the secure KV program (demo.KVProgram): every session attests, creates
// a private KVStore, drives its request mix, releases the store and
// disconnects. Latencies are per-request round trips including boundary
// dispatch inside the world.
func ServeLoad(opts ServeLoadOptions) (ServeLoadResult, error) {
	o := opts.withDefaults()
	type sessionOut struct {
		errors    int
		handshake bool // failed to attest
		fatal     error
	}
	// All sessions observe into one concurrent histogram; percentiles
	// come from its buckets instead of a sorted slice, so memory stays
	// fixed regardless of request count.
	hist := telemetry.NewHistogram()
	outs := make([]sessionOut, o.Sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			c, err := serve.Dial(o.Addr, o.Client)
			if err != nil {
				out.handshake = true
				out.fatal = err
				return
			}
			defer c.Close()
			store, err := c.New(demo.KVStoreCls)
			if err != nil {
				out.fatal = err
				return
			}
			for r := 0; r < o.Requests; r++ {
				key := wire.Str(fmt.Sprintf("s%d:key-%04d", i, r%32))
				t0 := time.Now()
				if r%o.PutRatio == 0 {
					_, err = c.Call(store, "put", key, wire.Str(fmt.Sprintf("val-%d-%d", i, r)))
				} else {
					_, err = c.Call(store, "get", key)
				}
				lat := time.Since(t0)
				if err != nil {
					out.errors++
					continue
				}
				hist.ObserveDuration(lat)
			}
			_ = c.Release(store)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res ServeLoadResult
	res.Sessions = o.Sessions
	res.Elapsed = elapsed
	var firstFatal error
	for i := range outs {
		out := &outs[i]
		if out.handshake {
			res.HandshakeFailures++
		}
		if out.fatal != nil && firstFatal == nil {
			firstFatal = out.fatal
		}
		res.Errors += out.errors
	}
	res.Requests = int(hist.Count())
	if elapsed > 0 {
		res.Throughput = float64(res.Requests) / elapsed.Seconds()
	}
	if res.Requests > 0 {
		res.P50 = hist.QuantileDuration(0.50)
		res.P95 = hist.QuantileDuration(0.95)
		res.P99 = hist.QuantileDuration(0.99)
		res.Max = time.Duration(hist.Max())
	}
	if res.Requests == 0 && firstFatal != nil {
		return res, firstFatal
	}
	return res, nil
}
