package bench

// Fabric experiments: horizontal throughput scaling of the sharded
// enclave fabric, and failover time (kill the primary, promote the
// replica from shipped state). Both drive real attested sessions
// through the Router against an in-process N-shard fabric, so the
// numbers include the session crypto, the per-shard WAL append, and —
// when replicas are configured — synchronous checkpoint shipping.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/fabric"
	"montsalvat/internal/simcfg"
)

// fabricShardCounts is the shard-count sweep.
func fabricShardCounts(opts Options) []int {
	if opts.Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8}
}

// fabricLoadPoint is one measured shard count. The wall rates are what
// the single-process harness achieved on however many cores it got; the
// modeled rates divide the op count by the busiest shard's charged
// virtual-cycle delta — the simulation's currency — so they reflect the
// partitioning itself: with an even key spread, the busiest shard's
// share of the work (and so the modeled capacity) scales with the shard
// count.
type fabricLoadPoint struct {
	PutsPerSec        float64
	GetsPerSec        float64
	ModeledPutsPerSec float64
	ModeledGetsPerSec float64
}

// modeledRate converts the busiest shard's cycle delta into ops/sec at
// the simulated clock rate.
func modeledRate(before, after map[int]int64, ops int) float64 {
	var worst int64
	for id, a := range after {
		if d := a - before[id]; d > worst {
			worst = d
		}
	}
	if worst <= 0 {
		return 0
	}
	return float64(ops) / (float64(worst) / simcfg.CPUHz)
}

// runFabricScalePoint boots a fabric with the given shard count and
// drives clients concurrent routers through a put phase then a get
// phase, returning the steady-state throughput of each.
//
// A warm-up round runs before the timer: every client dials its
// attested session to every shard and faults the hot pages into the
// EPC. Without it the put phase mostly measures session establishment —
// the handshake count grows with shards x clients, so the cold curve
// *degrades* with shard count for setup reasons that have nothing to do
// with the per-put path (the fabric-v1 entry in BENCH_fabric.json was
// recorded cold, which is much of its 2->8 shard flatline).
func runFabricScalePoint(shards, clients, opsPerClient int, groupCommit bool) (fabricLoadPoint, error) {
	f, err := fabric.New(fabric.Options{Shards: shards, GroupCommit: groupCommit})
	if err != nil {
		return fabricLoadPoint{}, err
	}
	defer f.Close()

	routers := make([]*fabric.Router, clients)
	for c := range routers {
		routers[c] = f.Client(fabric.RouterConfig{})
		defer routers[c].Close()
	}

	var failed atomic.Int64
	phase := func(warmups int, op func(r *fabric.Router, key, val string) error) (wall, modeled float64, err error) {
		var wg sync.WaitGroup
		if warmups > 0 {
			for c, r := range routers {
				wg.Add(1)
				go func(c int, r *fabric.Router) {
					defer wg.Done()
					for i := 0; i < warmups; i++ {
						key := fmt.Sprintf("warm:c%d:%d", c, i)
						if err := r.Put(key, key); err != nil {
							failed.Add(1)
							return
						}
					}
				}(c, r)
			}
			wg.Wait()
			if n := failed.Swap(0); n > 0 {
				return 0, 0, fmt.Errorf("%d clients failed during warm-up", n)
			}
		}
		before := f.ShardBusyCycles()
		start := time.Now()
		for c, r := range routers {
			wg.Add(1)
			go func(c int, r *fabric.Router) {
				defer wg.Done()
				for i := 0; i < opsPerClient; i++ {
					key := fmt.Sprintf("c%d:k%06d", c, i)
					if err := op(r, key, key); err != nil {
						failed.Add(1)
						return
					}
				}
			}(c, r)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		after := f.ShardBusyCycles()
		if n := failed.Swap(0); n > 0 {
			return 0, 0, fmt.Errorf("%d clients failed", n)
		}
		ops := clients * opsPerClient
		if elapsed > 0 {
			wall = float64(ops) / elapsed
		}
		return wall, modeledRate(before, after, ops), nil
	}

	// The host core is shared, so wall rates are noisy downward (stolen
	// cycles); take the best of a few reps as the noise-robust estimate
	// of what the code path sustains. Puts overwrite the same keys each
	// rep, and the get phase reads keys the put phase wrote, so reps
	// after the first are inherently warm.
	var p fabricLoadPoint
	for rep := 0; rep < fabricScaleReps; rep++ {
		warmups := 0
		if rep == 0 {
			warmups = 4 * shards
		}
		wall, modeled, err := phase(warmups, func(r *fabric.Router, key, val string) error {
			return r.Put(key, val)
		})
		if err != nil {
			return fabricLoadPoint{}, fmt.Errorf("put phase: %w", err)
		}
		if wall > p.PutsPerSec {
			p.PutsPerSec, p.ModeledPutsPerSec = wall, modeled
		}
		if wall, modeled, err = phase(0, func(r *fabric.Router, key, _ string) error {
			_, ok, err := r.Get(key)
			if err == nil && !ok {
				return fmt.Errorf("lost key %q", key)
			}
			return err
		}); err != nil {
			return fabricLoadPoint{}, fmt.Errorf("get phase: %w", err)
		}
		if wall > p.GetsPerSec {
			p.GetsPerSec, p.ModeledGetsPerSec = wall, modeled
		}
	}
	return p, nil
}

// fabricScaleReps is how many times each scale point's phase pair is
// measured; the best wall rate is kept (multi-tenant hosts steal cycles,
// so noise is one-sided and min-time/best-rate is the robust statistic).
const fabricScaleReps = 3

// fabricScaleParams picks the client fan-out and per-client volume.
// The full-mode volume keeps each timed phase well past the scheduler
// warm-up so single-core wall rates are repeatable.
func fabricScaleParams(opts Options) (clients, opsPerClient int) {
	return opts.scale(8, 4), opts.scale(400, 40)
}

// FabricScale regenerates the shard-scaling experiment: put and get
// throughput of the routed keyspace at 1/2/4/8 shards, normalised
// against the single-shard baseline.
func FabricScale(opts Options) (*Table, error) {
	shardCounts := fabricShardCounts(opts)
	clients, opsPerClient := fabricScaleParams(opts)

	t := &Table{
		ID:      "fabric-scale",
		Title:   "Sharded fabric throughput vs shard count",
		XLabel:  "series \\ shards",
		Unit:    "ops/s",
		Columns: intColumns(shardCounts),
	}
	var puts, gets, modeled, speed []float64
	for _, n := range shardCounts {
		p, err := runFabricScalePoint(n, clients, opsPerClient, opts.GroupCommit)
		if err != nil {
			return nil, fmt.Errorf("fabric-scale shards=%d: %w", n, err)
		}
		puts = append(puts, p.PutsPerSec)
		gets = append(gets, p.GetsPerSec)
		modeled = append(modeled, p.ModeledPutsPerSec)
		if modeled[0] > 0 {
			speed = append(speed, p.ModeledPutsPerSec/modeled[0])
		} else {
			speed = append(speed, 0)
		}
	}
	t.AddRow("put-wall", puts...)
	t.AddRow("get-wall", gets...)
	t.AddRow("put-modeled", modeled...)
	t.AddRow("put-modeled-speedup", speed...)
	last := len(shardCounts) - 1
	t.AddNote("%d clients x %d ops/phase, measured after a warm-up round (sessions dialed, EPC hot); every op is an attested session call plus a per-shard WAL append",
		clients, opsPerClient)
	t.AddNote("modeled rate = ops / busiest shard's charged cycles at %.1f GHz; wall rate is host-core-bound",
		simcfg.CPUHz/1e9)
	t.AddNote("modeled put speedup at %d shards: %.2fx over one shard (ideal %.0fx)",
		shardCounts[last], speed[last], float64(shardCounts[last]))
	return t, nil
}

// fabricFailoverRecords is the pre-failover write-volume sweep.
func fabricFailoverRecords(opts Options) []int {
	if opts.Quick {
		return []int{100, 400}
	}
	return []int{500, 2_000, 4_000}
}

// runFailoverPoint loads records writes into a 1-shard 1-replica
// fabric, kills the primary, and measures promotion (recover the
// shipped root on the standby, rollback check, reopen the gateway).
// Every acked write is re-read from the promoted shard.
func runFailoverPoint(records int, groupCommit bool) (promote time.Duration, err error) {
	f, err := fabric.New(fabric.Options{Shards: 1, Replicas: 1, GroupCommit: groupCommit})
	if err != nil {
		return 0, err
	}
	defer f.Close()

	r := f.Client(fabric.RouterConfig{})
	defer r.Close()
	for i := 0; i < records; i++ {
		if err := r.Put(fmt.Sprintf("k%06d", i), fmt.Sprintf("v%d", i)); err != nil {
			return 0, fmt.Errorf("load %d: %w", i, err)
		}
	}

	exp, err := f.KillShard(0)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := f.Promote(0, exp); err != nil {
		return 0, fmt.Errorf("promote: %w", err)
	}
	promote = time.Since(start)

	for _, i := range []int{0, records / 2, records - 1} {
		key := fmt.Sprintf("k%06d", i)
		v, ok, err := r.Get(key)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			return 0, fmt.Errorf("post-failover read %q = (%q, %v, %v)", key, v, ok, err)
		}
	}
	return promote, nil
}

// FailoverTime regenerates the failover-latency experiment: time from
// dead primary to promoted, serving replica, as a function of the
// replicated write volume.
func FailoverTime(opts Options) (*Table, error) {
	counts := fabricFailoverRecords(opts)
	t := &Table{
		ID:      "failover",
		Title:   "Failover time: replica promotion vs replicated write volume",
		XLabel:  "series \\ acked writes",
		Unit:    "milliseconds",
		Columns: intColumns(counts),
	}
	var row []float64
	for _, n := range counts {
		d, err := runFailoverPoint(n, opts.GroupCommit)
		if err != nil {
			return nil, fmt.Errorf("failover n=%d: %w", n, err)
		}
		row = append(row, float64(d.Microseconds())/1000)
	}
	t.AddRow("promote", row...)
	t.AddNote("promotion = recover shipped root on the standby (unseal checkpoint + replay WAL tail) + rollback check + reopen gateway")
	t.AddNote("writes were acked only after synchronous shipping, so the standby never trails the promise")
	return t, nil
}

// FabricScalePoint is one machine-readable shard-scaling cell of
// BENCH_fabric.json. The modeled rates are derived from the busiest
// shard's charged virtual cycles (host-core-independent); the speedup
// is the modeled rate normalised to the single-shard baseline.
type FabricScalePoint struct {
	Shards            int     `json:"shards"`
	PutsPerSec        float64 `json:"puts_per_sec"`
	GetsPerSec        float64 `json:"gets_per_sec"`
	ModeledPutsPerSec float64 `json:"modeled_puts_per_sec"`
	ModeledGetsPerSec float64 `json:"modeled_gets_per_sec"`
	PutSpeedup        float64 `json:"put_speedup"`
}

// FailoverPoint is one machine-readable failover measurement.
type FailoverPoint struct {
	Records   int     `json:"records"`
	PromoteMS float64 `json:"promote_ms"`
}

// FabricPerfEntry is one labelled fabric performance record — the
// perf-trajectory format of BENCH_fabric.json that future changes
// compare against.
type FabricPerfEntry struct {
	Label      string `json:"label"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Clients    int    `json:"clients"`
	// GroupCommit records which ack path the run used: false is the
	// per-mutation synchronous path (fabric-v1), true the pipelined
	// group-commit one.
	GroupCommit bool               `json:"group_commit"`
	Scale       []FabricScalePoint `json:"scale"`
	Failover    []FailoverPoint    `json:"failover"`
}

// FabricPerfFile is the on-disk shape of BENCH_fabric.json: an
// append-only list of labelled runs.
type FabricPerfFile struct {
	Schema  string            `json:"schema"`
	Entries []FabricPerfEntry `json:"entries"`
}

// FabricPerfSchema identifies the BENCH_fabric.json format.
const FabricPerfSchema = "montsalvat-bench-fabric/v1"

// FabricPerf produces one labelled fabric performance record: the
// shard-scaling sweep plus the failover-latency sweep.
func FabricPerf(opts Options, label string) (*FabricPerfEntry, error) {
	clients, opsPerClient := fabricScaleParams(opts)
	e := &FabricPerfEntry{
		Label:       label,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Quick:       opts.Quick,
		Clients:     clients,
		GroupCommit: opts.GroupCommit,
	}
	var base float64
	for _, n := range fabricShardCounts(opts) {
		p, err := runFabricScalePoint(n, clients, opsPerClient, opts.GroupCommit)
		if err != nil {
			return nil, fmt.Errorf("fabric-perf shards=%d: %w", n, err)
		}
		pt := FabricScalePoint{
			Shards:            n,
			PutsPerSec:        p.PutsPerSec,
			GetsPerSec:        p.GetsPerSec,
			ModeledPutsPerSec: p.ModeledPutsPerSec,
			ModeledGetsPerSec: p.ModeledGetsPerSec,
		}
		if base == 0 {
			base = p.ModeledPutsPerSec
		}
		if base > 0 {
			pt.PutSpeedup = p.ModeledPutsPerSec / base
		}
		e.Scale = append(e.Scale, pt)
	}
	for _, n := range fabricFailoverRecords(opts) {
		d, err := runFailoverPoint(n, opts.GroupCommit)
		if err != nil {
			return nil, fmt.Errorf("fabric-perf failover n=%d: %w", n, err)
		}
		e.Failover = append(e.Failover, FailoverPoint{Records: n, PromoteMS: float64(d.Microseconds()) / 1000})
	}
	return e, nil
}
