package bench

import "testing"

func TestRecoveryTimeShape(t *testing.T) {
	tab, err := RecoveryTime(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "recovery" {
		t.Fatalf("ID = %s", tab.ID)
	}
	if len(tab.Rows) != len(recoveryIntervals) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(recoveryIntervals))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != len(tab.Columns) {
			t.Fatalf("row %s has %d values, want %d", r.Name, len(r.Values), len(tab.Columns))
		}
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %s col %d: non-positive recovery time %g", r.Name, i, v)
			}
		}
	}
	// Tight checkpoint cadence must recover faster than never
	// checkpointing at the longest WAL: that trade-off is the point of
	// the experiment.
	worst, _ := tab.Row("no-ckpt")
	best, _ := tab.Row(intervalName(recoveryIntervals[len(recoveryIntervals)-1]))
	last := len(tab.Columns) - 1
	if best.Values[last] >= worst.Values[last] {
		t.Errorf("ckpt cadence did not flatten recovery: best %g >= worst %g",
			best.Values[last], worst.Values[last])
	}
}

func TestRecoveryPerfEntry(t *testing.T) {
	e, err := RecoveryPerf(quickOpts(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != "test" || !e.Quick {
		t.Fatalf("entry meta = %+v", e)
	}
	if len(e.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range e.Points {
		if p.RecoverMS <= 0 {
			t.Errorf("point %+v: non-positive recovery time", p)
		}
		// With no checkpoints, every record replays from the WAL.
		if p.CkptInterval == 0 && p.ReplayedRecords != p.Records {
			t.Errorf("no-ckpt point replayed %d of %d records", p.ReplayedRecords, p.Records)
		}
	}
	if len(e.GroupCommit) == 0 {
		t.Fatal("no group-commit sweep in entry")
	}
}

func TestGroupCommitSweepShape(t *testing.T) {
	pts, err := GroupCommitSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	writers := groupCommitWriters(quickOpts())
	wantCells := len(writers) * (1 + len(groupCommitDelays))
	if len(pts) != wantCells {
		t.Fatalf("cells = %d, want %d", len(pts), wantCells)
	}
	for _, p := range pts {
		if p.PutsPerSec <= 0 || p.AckP50US <= 0 || p.AckP99US < p.AckP50US {
			t.Errorf("cell %+v: degenerate throughput/latency", p)
		}
		if !p.Grouped && (p.MeanBatch != 1 || p.DelayUS != -1) {
			t.Errorf("baseline cell %+v: not single-seal", p)
		}
		if p.Grouped && p.MeanBatch < 1 {
			t.Errorf("grouped cell %+v: batch below 1", p)
		}
		if p.SealedFrames == 0 || p.SealedBytesPerOp <= 0 {
			t.Errorf("cell %+v: no sealing accounted", p)
		}
	}
	// The point of the engine: with concurrent writers the commit
	// queue seals fewer frames than it journals records.
	maxW := writers[len(writers)-1]
	for _, p := range pts {
		if p.Grouped && p.Writers == maxW && p.MeanBatch > 1 {
			return
		}
	}
	t.Fatalf("no grouped cell at %d writers achieved batch > 1", maxW)
}
