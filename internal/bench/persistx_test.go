package bench

import "testing"

func TestRecoveryTimeShape(t *testing.T) {
	tab, err := RecoveryTime(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "recovery" {
		t.Fatalf("ID = %s", tab.ID)
	}
	if len(tab.Rows) != len(recoveryIntervals) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(recoveryIntervals))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != len(tab.Columns) {
			t.Fatalf("row %s has %d values, want %d", r.Name, len(r.Values), len(tab.Columns))
		}
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %s col %d: non-positive recovery time %g", r.Name, i, v)
			}
		}
	}
	// Tight checkpoint cadence must recover faster than never
	// checkpointing at the longest WAL: that trade-off is the point of
	// the experiment.
	worst, _ := tab.Row("no-ckpt")
	best, _ := tab.Row(intervalName(recoveryIntervals[len(recoveryIntervals)-1]))
	last := len(tab.Columns) - 1
	if best.Values[last] >= worst.Values[last] {
		t.Errorf("ckpt cadence did not flatten recovery: best %g >= worst %g",
			best.Values[last], worst.Values[last])
	}
}

func TestRecoveryPerfEntry(t *testing.T) {
	e, err := RecoveryPerf(quickOpts(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != "test" || !e.Quick {
		t.Fatalf("entry meta = %+v", e)
	}
	if len(e.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range e.Points {
		if p.RecoverMS <= 0 {
			t.Errorf("point %+v: non-positive recovery time", p)
		}
		// With no checkpoints, every record replays from the WAL.
		if p.CkptInterval == 0 && p.ReplayedRecords != p.Records {
			t.Errorf("no-ckpt point replayed %d of %d records", p.ReplayedRecords, p.Records)
		}
	}
}
