package bench

// Group-commit experiments: the durable-write cost model with and
// without the commit queue. Each point drives W concurrent writers
// through one persist.Manager and measures what the batching actually
// buys — appends per second, per-ack latency quantiles, the achieved
// batch size, and sealed bytes per operation. The ungrouped baseline
// (one sealed frame per append, the fabric-v1 ack path) anchors every
// writer count, so the table reads as "what did moving the seal out of
// the per-mutation path change".

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"montsalvat/internal/persist"
)

// groupCommitWriters is the concurrency sweep.
func groupCommitWriters(opts Options) []int {
	if opts.Quick {
		return []int{1, 4, 16}
	}
	return []int{1, 4, 16, 64}
}

// groupCommitDelays is the commit-window sweep. Zero relies on natural
// batching (followers pile up while the leader seals); the timed
// windows trade ack latency for larger groups.
var groupCommitDelays = []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond}

// GroupCommitPoint is one machine-readable cell of the group-commit
// sweep in BENCH_persist.json.
type GroupCommitPoint struct {
	Writers int `json:"writers"`
	// DelayUS is the commit window in microseconds; -1 marks the
	// ungrouped baseline (no commit queue at all).
	DelayUS          float64 `json:"delay_us"`
	Grouped          bool    `json:"grouped"`
	PutsPerSec       float64 `json:"puts_per_sec"`
	AckP50US         float64 `json:"ack_p50_us"`
	AckP99US         float64 `json:"ack_p99_us"`
	MeanBatch        float64 `json:"mean_batch"`
	SealedFrames     uint64  `json:"sealed_frames"`
	SealedBytesPerOp float64 `json:"sealed_bytes_per_op"`
}

// runGroupCommitPoint measures one (writers, window) cell: W writers
// each journal perWriter puts through a fresh manager, and every
// Append's wall latency is sampled.
func runGroupCommitPoint(opts Options, writers int, delay time.Duration, grouped bool) (GroupCommitPoint, error) {
	perWriter := opts.scale(400, 80)
	l, err := newRecoveryLineage(opts.Config())
	if err != nil {
		return GroupCommitPoint{}, err
	}
	m, st, err := l.bootWith(persist.Options{
		GroupCommit:   grouped,
		GroupMaxDelay: delay,
	})
	if err != nil {
		return GroupCommitPoint{}, err
	}
	if _, err := m.Recover(); err != nil {
		return GroupCommitPoint{}, err
	}

	val := make([]byte, 64)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	total := writers * perWriter
	lats := make([][]time.Duration, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%03d:%06d", w, i)
				st.Put(key, val)
				t0 := time.Now()
				if _, err := m.Append("kv", persist.OpPut, key, val); err != nil {
					errs[w] = err
					return
				}
				lat = append(lat, time.Since(t0))
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return GroupCommitPoint{}, err
		}
	}

	all := make([]time.Duration, 0, total)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quant := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}

	pt := GroupCommitPoint{
		Writers:  writers,
		DelayUS:  float64(delay.Microseconds()),
		Grouped:  grouped,
		AckP50US: quant(0.50),
		AckP99US: quant(0.99),
	}
	if !grouped {
		pt.DelayUS = -1
	}
	if elapsed > 0 {
		pt.PutsPerSec = float64(total) / elapsed
	}
	stats := m.Stats()
	if grouped {
		pt.SealedFrames = stats.GroupCommits
		if stats.GroupCommits > 0 {
			pt.MeanBatch = float64(stats.GroupedRecords) / float64(stats.GroupCommits)
		}
	} else {
		pt.SealedFrames = stats.Appends
		pt.MeanBatch = 1
	}
	if total > 0 {
		pt.SealedBytesPerOp = float64(stats.AppendedBytes) / float64(total)
	}
	return pt, nil
}

// GroupCommitSweep runs the full (writers × window) grid plus the
// ungrouped baseline per writer count — the machine-readable record
// for BENCH_persist.json.
func GroupCommitSweep(opts Options) ([]GroupCommitPoint, error) {
	var pts []GroupCommitPoint
	for _, w := range groupCommitWriters(opts) {
		base, err := runGroupCommitPoint(opts, w, 0, false)
		if err != nil {
			return nil, fmt.Errorf("group-commit baseline writers=%d: %w", w, err)
		}
		pts = append(pts, base)
		for _, d := range groupCommitDelays {
			pt, err := runGroupCommitPoint(opts, w, d, true)
			if err != nil {
				return nil, fmt.Errorf("group-commit writers=%d delay=%s: %w", w, d, err)
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// GroupCommit regenerates the human-readable group-commit table.
func GroupCommit(opts Options) (*Table, error) {
	writers := groupCommitWriters(opts)
	t := &Table{
		ID:      "group-commit",
		Title:   "Group commit: durable-put throughput vs writers and commit window",
		XLabel:  "series \\ writers",
		Unit:    "puts/s",
		Columns: intColumns(writers),
	}
	pts, err := GroupCommitSweep(opts)
	if err != nil {
		return nil, err
	}
	row := func(name string, keep func(GroupCommitPoint) bool, pick func(GroupCommitPoint) float64) {
		var vals []float64
		for _, w := range writers {
			for _, p := range pts {
				if p.Writers == w && keep(p) {
					vals = append(vals, pick(p))
					break
				}
			}
		}
		t.AddRow(name, vals...)
	}
	isBase := func(p GroupCommitPoint) bool { return !p.Grouped }
	forDelay := func(d time.Duration) func(GroupCommitPoint) bool {
		return func(p GroupCommitPoint) bool { return p.Grouped && p.DelayUS == float64(d.Microseconds()) }
	}
	puts := func(p GroupCommitPoint) float64 { return p.PutsPerSec }
	row("single-seal", isBase, puts)
	for _, d := range groupCommitDelays {
		row(fmt.Sprintf("window-%s", d), forDelay(d), puts)
	}
	row("batch@window-0", forDelay(0), func(p GroupCommitPoint) float64 { return p.MeanBatch })
	t.AddNote("single-seal = one sealed WAL frame per append (the old ack path); window-X = commit queue with that max delay")
	t.AddNote("batch row = mean records per sealed frame at window 0: batching is natural, followers queue while the leader seals")
	return t, nil
}
