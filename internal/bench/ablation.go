package bench

import (
	"fmt"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/heap"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// AblationSwitchless measures the future-work switchless-call mode (§7,
// citing [51]): the Fig. 4a RMI workload with regular transitions versus
// worker-thread mailbox transitions.
func AblationSwitchless(opts Options) (*Table, error) {
	invocations := opts.scale(20_000, 500)
	t := &Table{
		ID:      "ablation-switchless",
		Title:   fmt.Sprintf("RMI latency, regular vs switchless transitions (%d invocations)", invocations),
		XLabel:  "mode \\ direction",
		Unit:    "seconds",
		Columns: []string{"proxy-out->in", "proxy-in->out"},
	}

	for _, mode := range []struct {
		name       string
		switchless bool
	}{
		{name: "regular ecall/ocall"},
		{name: "switchless", switchless: true},
	} {
		p, err := microProgram()
		if err != nil {
			return nil, err
		}
		wopts := world.DefaultOptions()
		wopts.Cfg = opts.Config()
		wopts.Cfg.Switchless = mode.switchless
		w, _, err := core.NewPartitionedWorld(p, wopts)
		if err != nil {
			return nil, err
		}
		values := make([]float64, 0, 2)
		for _, dir := range []struct {
			trustedSide bool
			class       string
		}{
			{trustedSide: false, class: microTrusted},
			{trustedSide: true, class: microUntrusted},
		} {
			var elapsed time.Duration
			err := w.Exec(dir.trustedSide, func(env classmodel.Env) error {
				obj, err := env.New(dir.class, wire.Int(0))
				if err != nil {
					return err
				}
				m := startVMeter(w.Clock())
				for i := 0; i < invocations; i++ {
					if _, err := env.Call(obj, "set", wire.Int(int64(i))); err != nil {
						return err
					}
				}
				elapsed = m.elapsed()
				return nil
			})
			if err != nil {
				w.Close()
				return nil, err
			}
			values = append(values, elapsed.Seconds())
		}
		w.Close()
		t.AddRow(mode.name, values...)
	}
	addRatioNote(t, "regular ecall/ocall", "switchless")
	return t, nil
}

// dispatchModes are the boundary dispatch configurations the ablation
// and the smoke test sweep: full transitions, switchless worker pools,
// transition batching, and both combined.
var dispatchModes = []struct {
	Name       string
	Switchless bool
	Batching   bool
}{
	{Name: "full transitions"},
	{Name: "switchless", Switchless: true},
	{Name: "batched", Batching: true},
	{Name: "batched+switchless", Switchless: true, Batching: true},
}

// dispatchRun is one mode's measurement on the micro proxy workload.
type dispatchRun struct {
	Cycles      int64
	Transitions uint64
}

// runDispatchMode measures the Fig. 4a void-RMI workload (`set` calls on
// a trusted proxy, closed by one `get`) under a dispatch configuration,
// returning charged cycles and completed enclave transitions.
func runDispatchMode(opts Options, switchless, batching bool, invocations int) (dispatchRun, error) {
	p, err := microProgram()
	if err != nil {
		return dispatchRun{}, err
	}
	wopts := world.DefaultOptions()
	wopts.Cfg = opts.Config()
	wopts.Cfg.Switchless = switchless
	wopts.Cfg.Batching = batching
	w, _, err := core.NewPartitionedWorld(p, wopts)
	if err != nil {
		return dispatchRun{}, err
	}
	defer w.Close()

	var run dispatchRun
	err = w.Exec(false, func(env classmodel.Env) error {
		obj, err := env.New(microTrusted, wire.Int(0))
		if err != nil {
			return err
		}
		c0 := w.Clock().Total()
		s0 := w.Stats().Enclave
		for i := 0; i < invocations; i++ {
			if _, err := env.Call(obj, "set", wire.Int(int64(i))); err != nil {
				return err
			}
		}
		// The read is result-dependent: it flushes any batched calls, so
		// every mode is measured over the same observable final state.
		if _, err := env.Call(obj, "get"); err != nil {
			return err
		}
		s1 := w.Stats().Enclave
		run.Cycles = w.Clock().Total() - c0
		run.Transitions = (s1.Ecalls + s1.Ocalls) - (s0.Ecalls + s0.Ocalls)
		return nil
	})
	return run, err
}

// AblationDispatch measures the boundary dispatch layer (DESIGN.md
// "Boundary dispatch"): the Fig. 4a proxy-call workload under full
// transitions, switchless worker pools, transition batching, and both
// combined. Batching coalesces the void `set` calls into multi-call
// frames, so the per-call transition tax is paid once per watermark
// instead of once per call.
func AblationDispatch(opts Options) (*Table, error) {
	invocations := opts.scale(20_000, 500)
	t := &Table{
		ID:      "ablation-dispatch",
		Title:   fmt.Sprintf("Boundary dispatch modes, proxy-out->in (%d void RMIs + 1 read)", invocations),
		XLabel:  "mode \\ metric",
		Unit:    "simulated cycles / enclave transitions",
		Columns: []string{"cycles", "transitions"},
	}
	runs := make(map[string]dispatchRun, len(dispatchModes))
	for _, mode := range dispatchModes {
		run, err := runDispatchMode(opts, mode.Switchless, mode.Batching, invocations)
		if err != nil {
			return nil, err
		}
		runs[mode.Name] = run
		t.AddRow(mode.Name, float64(run.Cycles), float64(run.Transitions))
	}
	full, best := runs["full transitions"], runs["batched+switchless"]
	if full.Cycles > 0 {
		t.AddNote("batched+switchless cycle reduction vs full transitions: %.1f%%",
			100*(1-float64(best.Cycles)/float64(full.Cycles)))
	}
	if best.Transitions > 0 {
		t.AddNote("transition reduction: %d -> %d (%.0fx fewer)",
			full.Transitions, best.Transitions, float64(full.Transitions)/float64(best.Transitions))
	}
	return t, nil
}

// AblationTCB quantifies the TCB reduction of partitioning plus shim
// versus running the whole application in the enclave LibOS-style
// (DESIGN.md ablation 4; §5.4's motivation). The subject is a synthetic
// 20-class application with 5 security-sensitive classes, the regime the
// paper targets (most application logic has no business in the enclave).
func AblationTCB(opts Options) (*Table, error) {
	prog, err := synthProgram(20, 5, synthCPU, 256, 1)
	if err != nil {
		return nil, err
	}

	build, err := core.BuildPartitioned(prog)
	if err != nil {
		return nil, err
	}
	tcb := build.TCB()

	whole, err := core.BuildUnpartitioned(prog)
	if err != nil {
		return nil, err
	}
	wholeRep := whole.Report()

	t := &Table{
		ID:      "ablation-tcb",
		Title:   "Trusted computing base: partitioned (shim) vs whole-app-in-enclave (LibOS-style)",
		XLabel:  "deployment \\ metric",
		Unit:    "program elements in enclave",
		Columns: []string{"classes", "methods"},
	}
	t.AddRow("partitioned+shim", float64(tcb.TrustedClasses), float64(tcb.TrustedMethods))
	t.AddRow("whole-app (LibOS-style)", float64(wholeRep.ReachableClasses), float64(wholeRep.CompiledMethods))
	t.AddNote("proxies pruned from the trusted image: %d", tcb.ProxiesPruned)
	if tcb.TrustedMethods > 0 {
		t.AddNote("method TCB reduction: %.1fx", float64(wholeRep.CompiledMethods)/float64(tcb.TrustedMethods))
	}
	return t, nil
}

// AblationTransitionCost sweeps the per-ecall cycle cost and reports the
// Fig. 4a RMI latency, showing how the benefit of keeping chatty classes
// out of the enclave scales with transition cost (DESIGN.md ablation 5).
func AblationTransitionCost(opts Options) (*Table, error) {
	invocations := opts.scale(10_000, 400)
	costs := []int64{1200, 3300, 8600, 13100, 26200}
	columns := make([]string, len(costs))
	for i, c := range costs {
		columns[i] = fmt.Sprintf("%d", c)
	}
	t := &Table{
		ID:      "ablation-transition",
		Title:   fmt.Sprintf("RMI latency vs transition cost (%d invocations)", invocations),
		XLabel:  "series \\ ecall cycles",
		Unit:    "seconds",
		Columns: columns,
	}

	remote := make([]float64, 0, len(costs))
	local := make([]float64, 0, len(costs))
	for _, cost := range costs {
		p, err := microProgram()
		if err != nil {
			return nil, err
		}
		wopts := world.DefaultOptions()
		wopts.Cfg = opts.Config()
		wopts.Cfg.EcallCycles = cost
		wopts.Cfg.OcallCycles = cost * 2 / 3
		wopts.UntrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}
		wopts.TrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}
		w, _, err := core.NewPartitionedWorld(p, wopts)
		if err != nil {
			return nil, err
		}
		for _, series := range []struct {
			class string
			out   *[]float64
		}{
			{class: microTrusted, out: &remote},  // proxy: ecall per call
			{class: microUntrusted, out: &local}, // concrete: local call
		} {
			var elapsed time.Duration
			err := w.Exec(false, func(env classmodel.Env) error {
				obj, err := env.New(series.class, wire.Int(0))
				if err != nil {
					return err
				}
				m := startVMeter(w.Clock())
				for i := 0; i < invocations; i++ {
					if _, err := env.Call(obj, "set", wire.Int(int64(i))); err != nil {
						return err
					}
				}
				elapsed = m.elapsed()
				return nil
			})
			if err != nil {
				w.Close()
				return nil, err
			}
			*series.out = append(*series.out, elapsed.Seconds())
		}
		w.Close()
	}
	t.AddRow("RMI (proxy-out->in)", remote...)
	t.AddRow("local (concrete-out)", local...)
	return t, nil
}
