package bench

import "testing"

// TestRingSweepShape pins the zero-copy claim at quick scale: the ring
// path never loses to the frame path, wins clearly at the largest
// payload, and is crypto-dominated there (copies dominate the frame
// path instead).
func TestRingSweepShape(t *testing.T) {
	tab, err := RingSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := tab.Row("frame-path")
	ring, _ := tab.Row("ring-path")
	share, _ := tab.Row("ring-crypto-share")
	if len(frame.Values) == 0 || len(frame.Values) != len(ring.Values) {
		t.Fatalf("malformed table: %+v", tab)
	}
	for i := range frame.Values {
		// Small payloads: within noise means the ring path must at
		// least not regress (its hand-off is cheaper than a switchless
		// mailbox post, so in the cost model it never does).
		if ring.Values[i] > frame.Values[i]*1.05 {
			t.Errorf("col %d (%s B): ring %.0f cycles/op > frame %.0f",
				i, tab.Columns[i], ring.Values[i], frame.Values[i])
		}
	}
	last := len(frame.Values) - 1
	if frame.Values[last] < 1.5*ring.Values[last] {
		t.Errorf("largest payload: frame %.0f / ring %.0f < 1.5x",
			frame.Values[last], ring.Values[last])
	}
	if share.Values[last] < 0.5 {
		t.Errorf("largest payload: crypto share %.2f, want > 0.5 (crypto-dominated)",
			share.Values[last])
	}
	if share.Values[0] > 0.2 {
		t.Errorf("smallest payload: crypto share %.2f, want < 0.2 (transition-dominated)",
			share.Values[0])
	}
}

// TestRingPayloadSweepJSON checks the machine-readable sweep is
// internally consistent with the table generator's claims.
func TestRingPayloadSweepJSON(t *testing.T) {
	points, err := RingPayloadSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ringPayloads(quickOpts())) {
		t.Fatalf("points = %d, want %d", len(points), len(ringPayloads(quickOpts())))
	}
	for _, p := range points {
		if p.RingCyclesPerOp <= 0 || p.FrameCyclesPerOp <= 0 {
			t.Errorf("payload %d: non-positive cycles %+v", p.PayloadBytes, p)
		}
		if p.Speedup <= 0.9 {
			t.Errorf("payload %d: speedup %.2f, want ~>=1", p.PayloadBytes, p.Speedup)
		}
		if p.RingOversizeEvents != 0 {
			t.Errorf("payload %d: unexpected oversize fallbacks (slots sized to the sweep)", p.PayloadBytes)
		}
	}
}
