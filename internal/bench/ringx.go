package bench

import (
	"fmt"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/wire"
)

// Ring data-plane payload sweep: the same serializable RMI is driven
// through the classic frame path (marshal into a pooled buffer, charge
// every byte at the MEE copy rate) and through the zero-copy ring path
// (encode straight into a shared slot, seal in place at the streaming
// AES-GCM rate), across payloads from cache-line size to a mebibyte.
// The claim under test: once payloads grow past the transition costs,
// the frame path is dominated by per-byte copies while the ring path is
// dominated by the (cheaper, charged-once) crypto pass — and at small
// payloads the ring's fixed hand-off overhead stays within noise of the
// frame path.

// ringPayloads returns the payload sweep in bytes.
func ringPayloads(opts Options) []int {
	if opts.Quick {
		return []int{64, 4 << 10, 64 << 10}
	}
	return []int{64, 1 << 10, 16 << 10, 256 << 10, 1 << 20}
}

// ringSweepCfg returns the two platform configurations compared by the
// sweep: the tuned frame path (switchless pools, no rings) and the ring
// data plane (slots sized to hold the largest payload in the sweep).
func ringSweepCfg(opts Options) (frame, rings simcfg.Config) {
	frame = opts.Config()
	frame.Switchless = true
	frame.Batching = false
	frame.Rings = false

	rings = frame
	rings.Rings = true
	// Headroom past the largest payload for the call header.
	rings.RingSlotBytes = (1 << 20) + 4096
	return frame, rings
}

// ringPoint is one measured (configuration, payload) cell.
type ringPoint struct {
	CyclesPerOp float64
	// Cycle components, per op, recovered from the world's counters.
	CopyCycles    float64 // frame-path MEE per-byte copy charges
	CryptoCycles  float64 // ring-path in-place sealing charges
	HandoffCycles float64 // ring submit/doorbell charges
	Oversize      uint64  // calls that exceeded the slot and fell back
}

// runRingPoint drives iters setAll RMIs carrying a payload-sized byte
// string from the untrusted runtime into the enclave and reports the
// charged cycles per op with the component breakdown.
func runRingPoint(cfg simcfg.Config, payload, iters int) (ringPoint, error) {
	w, err := microWorldCfg(cfg)
	if err != nil {
		return ringPoint{}, err
	}
	defer w.Close()

	arg := wire.List(wire.Bytes(make([]byte, payload)))
	var p ringPoint
	err = w.Exec(false, func(env classmodel.Env) error {
		obj, err := env.New(microTrusted, wire.Int(0))
		if err != nil {
			return err
		}
		ds0 := w.DispatchStats()
		c0 := w.Clock().Total()
		for i := 0; i < iters; i++ {
			if _, err := env.Call(obj, "setAll", arg); err != nil {
				return err
			}
		}
		charged := w.Clock().Total() - c0
		ds1 := w.DispatchStats()

		ops := float64(iters)
		p.CyclesPerOp = float64(charged) / ops
		p.CopyCycles = float64(ds1.MEECopiedBytes-ds0.MEECopiedBytes) * simcfg.MEEBytesPerCycle / ops
		p.CryptoCycles = float64(ds1.RingSealedBytes-ds0.RingSealedBytes) / simcfg.RingCryptoBytesPerCycle / ops
		doorbells := ds1.RingDoorbells - ds0.RingDoorbells
		submits := ds1.RingSubmits - ds0.RingSubmits
		p.HandoffCycles = (float64(doorbells)*simcfg.RingDoorbellCycles +
			float64(submits-doorbells)*simcfg.RingSubmitCycles) / ops
		p.Oversize = ds1.RingOversize - ds0.RingOversize
		return nil
	})
	if err != nil {
		return ringPoint{}, err
	}
	return p, nil
}

// RingSweep regenerates the payload sweep: frame vs ring cycles/op per
// payload size, with the dominant cycle components.
func RingSweep(opts Options) (*Table, error) {
	payloads := ringPayloads(opts)
	iters := opts.scale(50, 10)
	frameCfg, ringCfg := ringSweepCfg(opts)

	t := &Table{
		ID:      "ring-sweep",
		Title:   "Zero-copy ring data plane vs frame path across payload sizes",
		XLabel:  "series \\ payload B",
		Unit:    "cycles/op",
		Columns: intColumns(payloads),
	}
	var frameRow, ringRow, speedRow, cryptoShare []float64
	for _, payload := range payloads {
		fp, err := runRingPoint(frameCfg, payload, iters)
		if err != nil {
			return nil, fmt.Errorf("ring-sweep frame payload=%d: %w", payload, err)
		}
		rp, err := runRingPoint(ringCfg, payload, iters)
		if err != nil {
			return nil, fmt.Errorf("ring-sweep ring payload=%d: %w", payload, err)
		}
		frameRow = append(frameRow, fp.CyclesPerOp)
		ringRow = append(ringRow, rp.CyclesPerOp)
		if rp.CyclesPerOp > 0 {
			speedRow = append(speedRow, fp.CyclesPerOp/rp.CyclesPerOp)
		} else {
			speedRow = append(speedRow, 0)
		}
		if rp.CyclesPerOp > 0 {
			cryptoShare = append(cryptoShare, rp.CryptoCycles/rp.CyclesPerOp)
		} else {
			cryptoShare = append(cryptoShare, 0)
		}
	}
	t.AddRow("frame-path", frameRow...)
	t.AddRow("ring-path", ringRow...)
	t.AddRow("frame/ring", speedRow...)
	t.AddRow("ring-crypto-share", cryptoShare...)
	last := len(payloads) - 1
	t.AddNote("at %d B the ring path spends %.0f%% of its cycles in the in-place crypto pass (frame path: per-byte MEE copies)",
		payloads[last], cryptoShare[last]*100)
	t.AddNote("frame-path MEE copy rate %.1f B/cycle vs ring streaming AES-GCM %.1f B/cycle, charged once per direction",
		simcfg.MEEBytesPerCycle, simcfg.RingCryptoBytesPerCycle)
	return t, nil
}

// PayloadPoint is one machine-readable cell of the ring payload sweep
// recorded in BENCH_rmi.json.
type PayloadPoint struct {
	PayloadBytes       int     `json:"payload_bytes"`
	FrameCyclesPerOp   float64 `json:"frame_cycles_per_op"`
	RingCyclesPerOp    float64 `json:"ring_cycles_per_op"`
	Speedup            float64 `json:"speedup"`
	RingCryptoShare    float64 `json:"ring_crypto_share"`
	RingHandoffCycles  float64 `json:"ring_handoff_cycles_per_op"`
	FrameCopyCycles    float64 `json:"frame_copy_cycles_per_op"`
	RingOversizeEvents uint64  `json:"ring_oversize_events,omitempty"`
}

// RingPayloadSweep produces the machine-readable payload sweep.
func RingPayloadSweep(opts Options) ([]PayloadPoint, error) {
	payloads := ringPayloads(opts)
	iters := opts.scale(50, 10)
	frameCfg, ringCfg := ringSweepCfg(opts)

	points := make([]PayloadPoint, 0, len(payloads))
	for _, payload := range payloads {
		fp, err := runRingPoint(frameCfg, payload, iters)
		if err != nil {
			return nil, fmt.Errorf("ring-perf frame payload=%d: %w", payload, err)
		}
		rp, err := runRingPoint(ringCfg, payload, iters)
		if err != nil {
			return nil, fmt.Errorf("ring-perf ring payload=%d: %w", payload, err)
		}
		pt := PayloadPoint{
			PayloadBytes:       payload,
			FrameCyclesPerOp:   fp.CyclesPerOp,
			RingCyclesPerOp:    rp.CyclesPerOp,
			RingHandoffCycles:  rp.HandoffCycles,
			FrameCopyCycles:    fp.CopyCycles,
			RingOversizeEvents: rp.Oversize,
		}
		if rp.CyclesPerOp > 0 {
			pt.Speedup = fp.CyclesPerOp / rp.CyclesPerOp
			pt.RingCryptoShare = rp.CryptoCycles / rp.CyclesPerOp
		}
		points = append(points, pt)
	}
	return points, nil
}

// RingPerf produces one labelled ring-suite record: the single-goroutine
// RMI numbers measured with the ring data plane on, plus the payload
// sweep against the frame path.
func RingPerf(opts Options, label string) (*RMIPerfEntry, error) {
	e, err := RMIPerf(opts, label)
	if err != nil {
		return nil, err
	}
	sweep, err := RingPayloadSweep(opts)
	if err != nil {
		return nil, err
	}
	e.PayloadSweep = sweep
	return e, nil
}
