package bench

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/heap"
	"montsalvat/internal/jvm"
	"montsalvat/internal/paldb"
	"montsalvat/internal/shim"
	"montsalvat/internal/specjvm"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// paldbStoreFile is the store file name used by the PalDB benchmarks.
const paldbStoreFile = "bench.paldb"

// paldbScheme is one configuration of Fig. 7 / Fig. 10.
type paldbScheme struct {
	name string
	// partitioned selects the Montsalvat pipeline; otherwise the app is
	// one image, inEnclave or not.
	partitioned bool
	inEnclave   bool
	readerAnn   classmodel.Annotation
	writerAnn   classmodel.Annotation
}

func paldbSchemes() []paldbScheme {
	return []paldbScheme{
		{name: "NoSGX", inEnclave: false},
		{name: "NoPart", inEnclave: true},
		// RTWU: DBReader trusted, DBWriter untrusted (§6.5).
		{name: "Part(RTWU)", partitioned: true, readerAnn: classmodel.Trusted, writerAnn: classmodel.Untrusted},
		// WTRU: DBWriter trusted, DBReader untrusted.
		{name: "Part(WTRU)", partitioned: true, readerAnn: classmodel.Untrusted, writerAnn: classmodel.Trusted},
	}
}

// paldbState is the per-world Go-side store state captured by the class
// bodies.
type paldbState struct {
	writer *paldb.Writer
	reader *paldb.Reader
}

// paldbProgram builds the DBWriter/DBReader wrapper classes of §6.5
// around the PalDB library. The writer streams records through the
// runtime's FS (ocalls when trusted); the reader memory-maps the store
// and charges its map accesses to the runtime's memory (MEE when
// trusted). Batched APIs keep driver-to-store calls coarse, as in the
// paper's benchmark.
func paldbProgram(readerAnn, writerAnn classmodel.Annotation) (*classmodel.Program, error) {
	st := &paldbState{}
	p := classmodel.NewProgram()

	writer := classmodel.NewClass("DBWriter", writerAnn)
	if err := writer.AddMethod(&classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			w, err := paldb.NewWriter(env.FS(), paldbStoreFile)
			if err != nil {
				return wire.Value{}, err
			}
			st.writer = w
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := writer.AddMethod(&classmodel.Method{
		Name: "writeBatch", Public: true,
		Params: []classmodel.Param{
			{Name: "keys", Kind: wire.KindList},
			{Name: "vals", Kind: wire.KindList},
		},
		Returns: wire.KindInt,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			if st.writer == nil {
				return wire.Value{}, errors.New("writeBatch before construction")
			}
			keys, _ := args[0].AsList()
			vals, _ := args[1].AsList()
			if len(keys) != len(vals) {
				return wire.Value{}, errors.New("key/value length mismatch")
			}
			for i := range keys {
				k, _ := keys[i].AsStr()
				v, _ := vals[i].AsStr()
				if err := st.writer.Put([]byte(k), []byte(v)); err != nil {
					return wire.Value{}, err
				}
				env.MemTouch(len(k) + len(v))
			}
			return wire.Int(int64(len(keys))), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := writer.AddMethod(&classmodel.Method{
		Name: "seal", Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			if st.writer == nil {
				return wire.Value{}, errors.New("seal before construction")
			}
			return wire.Null(), st.writer.Close()
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(writer); err != nil {
		return nil, err
	}

	reader := classmodel.NewClass("DBReader", readerAnn)
	if err := reader.AddMethod(&classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			r, err := paldb.Open(env.FS(), paldbStoreFile)
			if err != nil {
				return wire.Value{}, err
			}
			// Map accesses stream through this runtime's memory: MEE
			// cost inside the enclave.
			r.SetTouch(env.MemTouch)
			st.reader = r
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := reader.AddMethod(&classmodel.Method{
		Name: "readBatch", Public: true,
		Params:  []classmodel.Param{{Name: "keys", Kind: wire.KindList}},
		Returns: wire.KindInt,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			if st.reader == nil {
				return wire.Value{}, errors.New("readBatch before open")
			}
			keys, _ := args[0].AsList()
			var total int64
			for _, kv := range keys {
				k, _ := kv.AsStr()
				v, err := st.reader.Get([]byte(k))
				if err != nil {
					return wire.Value{}, err
				}
				total += int64(len(v))
			}
			return wire.Int(total), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(reader); err != nil {
		return nil, err
	}

	mainC := classmodel.NewClass("PalDBMain", classmodel.Untrusted)
	if err := mainC.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Allocates: []string{"DBWriter", "DBReader"},
		Calls: []classmodel.MethodRef{
			{Class: "DBWriter", Method: "writeBatch"},
			{Class: "DBWriter", Method: "seal"},
			{Class: "DBReader", Method: "readBatch"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainC); err != nil {
		return nil, err
	}
	p.MainClass = "PalDBMain"
	return p, nil
}

// paldbKV generates the workload data: keys are stringified random
// integers in [0, 2^31), values random 128-byte strings (§6.5).
func paldbKV(n int) (keys, vals []wire.Value, totalValBytes int64) {
	rng := uint64(0xC0FFEE)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	seen := make(map[string]bool, n)
	keys = make([]wire.Value, 0, n)
	vals = make([]wire.Value, 0, n)
	for len(keys) < n {
		k := strconv.FormatUint(next()>>33, 10)
		if seen[k] {
			continue
		}
		seen[k] = true
		v := make([]byte, 128)
		for i := range v {
			v[i] = byte('a' + next()%26)
		}
		keys = append(keys, wire.Str(k))
		vals = append(vals, wire.Str(string(v)))
		totalValBytes += 128
	}
	return keys, vals, totalValBytes
}

// runPalDB executes the write-then-read workload under one scheme and
// returns its duration.
func runPalDB(opts Options, scheme paldbScheme, nKeys, batch int) (time.Duration, world.Stats, error) {
	readerAnn := scheme.readerAnn
	writerAnn := scheme.writerAnn
	if !scheme.partitioned {
		readerAnn = classmodel.Neutral
		writerAnn = classmodel.Neutral
	}
	prog, err := paldbProgram(readerAnn, writerAnn)
	if err != nil {
		return 0, world.Stats{}, err
	}
	wopts := world.DefaultOptions()
	wopts.Cfg = opts.Config()
	wopts.TrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}
	wopts.UntrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}

	var w *world.World
	if scheme.partitioned {
		w, _, err = core.NewPartitionedWorld(prog, wopts)
	} else {
		w, _, err = core.NewUnpartitionedWorld(prog, wopts, scheme.inEnclave)
	}
	if err != nil {
		return 0, world.Stats{}, fmt.Errorf("paldb %s: %w", scheme.name, err)
	}
	defer w.Close()

	keys, vals, wantBytes := paldbKV(nKeys)
	m := startMeter(w.Clock())
	var got int64
	err = w.ExecMain(func(env classmodel.Env) error {
		writer, err := env.New("DBWriter")
		if err != nil {
			return err
		}
		for off := 0; off < len(keys); off += batch {
			end := off + batch
			if end > len(keys) {
				end = len(keys)
			}
			if _, err := env.Call(writer, "writeBatch", wire.List(keys[off:end]...), wire.List(vals[off:end]...)); err != nil {
				return err
			}
		}
		if _, err := env.Call(writer, "seal"); err != nil {
			return err
		}
		reader, err := env.New("DBReader")
		if err != nil {
			return err
		}
		for off := 0; off < len(keys); off += batch {
			end := off + batch
			if end > len(keys) {
				end = len(keys)
			}
			res, err := env.Call(reader, "readBatch", wire.List(keys[off:end]...))
			if err != nil {
				return err
			}
			n, _ := res.AsInt()
			got += n
		}
		return nil
	})
	elapsed := m.elapsed()
	if err != nil {
		return 0, world.Stats{}, fmt.Errorf("paldb %s: %w", scheme.name, err)
	}
	if got != wantBytes {
		return 0, world.Stats{}, fmt.Errorf("paldb %s: read %d bytes, want %d", scheme.name, got, wantBytes)
	}
	return elapsed, w.Stats(), nil
}

// Fig7 regenerates the PalDB partitioning comparison (§6.5, Fig. 7).
func Fig7(opts Options) (*Table, error) {
	counts := sweep(opts.scale(10_000, 400), opts.scale(100_000, 2_000), opts.scale(10, 5))
	batch := opts.scale(1000, 100)
	t := &Table{
		ID:      "fig7",
		Title:   "Time to write and read K/V pairs in PalDB",
		XLabel:  "scheme \\ keys",
		Unit:    "seconds",
		Columns: intColumns(counts),
	}
	var ocallsRTWU, ocallsWTRU float64
	for _, scheme := range paldbSchemes() {
		values := make([]float64, 0, len(counts))
		for _, n := range counts {
			d, stats, err := runPalDB(opts, scheme, n, batch)
			if err != nil {
				return nil, err
			}
			values = append(values, d.Seconds())
			if n == counts[len(counts)-1] {
				switch scheme.name {
				case "Part(RTWU)":
					ocallsRTWU = float64(stats.Enclave.Ocalls)
				case "Part(WTRU)":
					ocallsWTRU = float64(stats.Enclave.Ocalls)
				}
			}
		}
		t.AddRow(scheme.name, values...)
	}
	addRatioNote(t, "NoPart", "Part(RTWU)")
	addRatioNote(t, "NoPart", "Part(WTRU)")
	if ocallsRTWU > 0 {
		t.AddNote("ocalls at max keys: WTRU/RTWU = %.0fx (paper: ~23x more for the writer-in-enclave scheme)", ocallsWTRU/ocallsRTWU)
	}
	return t, nil
}

// Fig10 compares partitioned and unpartitioned PalDB native images with
// the JVM-in-SCONE baseline (§6.6, Fig. 10).
func Fig10(opts Options) (*Table, error) {
	counts := sweep(opts.scale(10_000, 400), opts.scale(100_000, 2_000), opts.scale(10, 5))
	batch := opts.scale(1000, 100)
	t := &Table{
		ID:      "fig10",
		Title:   "PalDB: partitioned/unpartitioned native images vs SCONE+JVM",
		XLabel:  "config \\ keys",
		Unit:    "seconds",
		Columns: intColumns(counts),
	}

	schemes := map[string]paldbScheme{}
	for _, s := range paldbSchemes() {
		schemes[s.name] = s
	}
	order := []struct {
		row    string
		scheme string
	}{
		{row: "NoPart-NI", scheme: "NoPart"},
		{row: "Part(RTWU)", scheme: "Part(RTWU)"},
		{row: "Part(WTRU)", scheme: "Part(WTRU)"},
		{row: "NoSGX-NI", scheme: "NoSGX"},
	}
	for _, o := range order {
		values := make([]float64, 0, len(counts))
		for _, n := range counts {
			d, _, err := runPalDB(opts, schemes[o.scheme], n, batch)
			if err != nil {
				return nil, err
			}
			values = append(values, d.Seconds())
		}
		t.AddRow(o.row, values...)
	}

	// SCONE+JVM: the same workload under the JVM-in-SCONE cost model.
	sconeVals := make([]float64, 0, len(counts))
	for _, n := range counts {
		d, err := paldbUnderModel(jvm.SCONEJVM, n)
		if err != nil {
			return nil, err
		}
		sconeVals = append(sconeVals, d.Seconds())
	}
	t.AddRow("SCONE+JVM", sconeVals...)

	addGainNote(t, "SCONE+JVM", "Part(RTWU)")
	addGainNote(t, "SCONE+JVM", "Part(WTRU)")
	addGainNote(t, "SCONE+JVM", "NoPart-NI")
	return t, nil
}

// paldbUnderModel runs the PalDB workload as plain Go (the measured
// base) and applies a jvm runtime model: every store write is one relayed
// syscall, the mapped store and record traffic is the enclave's DRAM
// traffic, and the Java version's per-record object garbage drives the GC
// term.
func paldbUnderModel(m jvm.Model, nKeys int) (time.Duration, error) {
	fs := shim.NewMemFS()
	keys, vals, _ := paldbKV(nKeys)

	start := time.Now()
	w, err := paldb.NewWriter(fs, paldbStoreFile)
	if err != nil {
		return 0, err
	}
	for i := range keys {
		k, _ := keys[i].AsStr()
		v, _ := vals[i].AsStr()
		if err := w.Put([]byte(k), []byte(v)); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	r, err := paldb.Open(fs, paldbStoreFile)
	if err != nil {
		return 0, err
	}
	for i := range keys {
		k, _ := keys[i].AsStr()
		if _, err := r.Get([]byte(k)); err != nil {
			return 0, err
		}
	}
	wall := time.Since(start)

	ws := w.Stats()
	rs := r.Stats()
	work := specjvm.Work{
		BytesTouched: ws.BytesWritten + rs.MappedBytes + rs.BytesAccessed,
		DRAMBytes:    ws.BytesWritten + rs.MappedBytes,
		// Per-record Java garbage: boxed keys/values, stream buffers.
		AllocBytes: int64(nKeys) * 512,
	}
	syscalls := int64(ws.WriteOps) + int64(rs.MappedBytes)/(1<<20) + 2
	runner := jvm.NewRunner(0)
	base := int64(wall.Seconds() * runner.Hz())
	total := m.Apply(base, work, syscalls).Total()
	return time.Duration(float64(total) / runner.Hz() * float64(time.Second)), nil
}

// addGainNote records the mean speedup of row `fast` relative to `slow`.
func addGainNote(t *Table, slow, fast string) {
	s, ok1 := t.Row(slow)
	f, ok2 := t.Row(fast)
	if !ok1 || !ok2 || len(s.Values) != len(f.Values) {
		return
	}
	var sum float64
	n := 0
	for i := range s.Values {
		if f.Values[i] > 0 {
			sum += s.Values[i] / f.Values[i]
			n++
		}
	}
	if n > 0 {
		t.AddNote("mean speedup of %s over %s = %.1fx", fast, slow, sum/float64(n))
	}
}
