package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/wire"
)

// concGoroutines is the goroutine sweep of the scaling experiment.
var concGoroutines = []int{1, 2, 4, 8, 16}

// concurrentCfg is the platform configuration of the concurrency
// experiments: plain transitions (no switchless pools capping
// parallelism, no batching reordering the call stream) and — when costs
// are charged as real time — timer-wait charging, so the stall-modelled
// transition costs of concurrent crossings overlap and the measurement
// exposes lock scaling rather than core count.
func concurrentCfg(opts Options) simcfg.Config {
	cfg := opts.Config()
	cfg.Switchless = false
	cfg.Batching = false
	if cfg.Spin {
		cfg.SleepCharges = true
	}
	return cfg
}

// concResult is one concurrent-RMI measurement point.
type concResult struct {
	Goroutines  int
	Ops         int
	Wall        time.Duration
	OpsPerSec   float64
	P50         time.Duration
	P99         time.Duration
	Transitions uint64
	Cycles      int64
}

// runConcurrentRMI drives iters proxy invocations from each of n
// goroutines against a fresh micro world: every goroutine owns one
// trusted-class proxy and hammers its setter, so each call crosses the
// boundary and exercises the registries, the object tables, and the
// marshal path concurrently.
func runConcurrentRMI(cfg simcfg.Config, n, iters int) (concResult, error) {
	w, err := microWorldCfg(cfg)
	if err != nil {
		return concResult{}, err
	}
	defer w.Close()

	s0 := w.Stats()
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		errs  = make([]error, n)
		lats  = make([][]int64, n)
	)
	for g := 0; g < n; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[g] = w.Exec(false, func(env classmodel.Env) error {
				obj, err := env.New(microTrusted, wire.Int(0))
				if err != nil {
					return err
				}
				<-start
				samples := make([]int64, 0, iters)
				for i := 0; i < iters; i++ {
					t0 := time.Now()
					if _, err := env.Call(obj, "set", wire.Int(int64(i))); err != nil {
						return err
					}
					samples = append(samples, time.Since(t0).Nanoseconds())
				}
				lats[g] = samples
				return nil
			})
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return concResult{}, err
		}
	}
	s1 := w.Stats()

	var merged []int64
	for _, s := range lats {
		merged = append(merged, s...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	pct := func(p float64) time.Duration {
		if len(merged) == 0 {
			return 0
		}
		i := int(p * float64(len(merged)-1))
		return time.Duration(merged[i])
	}
	ops := n * iters
	r := concResult{
		Goroutines:  n,
		Ops:         ops,
		Wall:        wall,
		P50:         pct(0.50),
		P99:         pct(0.99),
		Transitions: s1.Enclave.Ecalls + s1.Enclave.Ocalls - s0.Enclave.Ecalls - s0.Enclave.Ocalls,
		Cycles:      s1.Cycles - s0.Cycles,
	}
	if wall > 0 {
		r.OpsPerSec = float64(ops) / wall.Seconds()
	}
	return r, nil
}

// ConcurrentRMI measures proxy-call throughput as the number of
// concurrently crossing goroutines grows (the scaling ablation of the
// concurrent crossing engine): near-flat speedup means the crossings
// queue on a global mutator lock; scaling speedup means they proceed in
// parallel through the sharded registries and object tables.
func ConcurrentRMI(opts Options) (*Table, error) {
	iters := opts.scale(300, 40)
	cfg := concurrentCfg(opts)
	t := &Table{
		ID:      "concurrent-rmi",
		Title:   "Concurrent RMI throughput scaling (goroutines driving proxy calls)",
		XLabel:  "series \\ goroutines",
		Unit:    "ops/s",
		Columns: intColumns(concGoroutines),
	}
	var thr, speed []float64
	var base float64
	for _, g := range concGoroutines {
		r, err := runConcurrentRMI(cfg, g, iters)
		if err != nil {
			return nil, fmt.Errorf("concurrent-rmi g=%d: %w", g, err)
		}
		if base == 0 {
			base = r.OpsPerSec
		}
		thr = append(thr, r.OpsPerSec)
		if base > 0 {
			speed = append(speed, r.OpsPerSec/base)
		} else {
			speed = append(speed, 0)
		}
	}
	t.AddRow("throughput", thr...)
	t.AddRow("speedup-vs-1", speed...)
	t.AddNote("GOMAXPROCS=%d; stall-modelled transition costs overlap as timer waits", runtime.GOMAXPROCS(0))
	return t, nil
}

// RMIScalePoint is one goroutine-count measurement of an RMIPerf run.
type RMIScalePoint struct {
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Speedup    float64 `json:"speedup_vs_1"`
}

// RMIPerfEntry is one machine-readable RMI performance record — the
// perf-trajectory format of BENCH_rmi.json that future changes compare
// against.
type RMIPerfEntry struct {
	Label            string          `json:"label"`
	GoMaxProcs       int             `json:"gomaxprocs"`
	Quick            bool            `json:"quick"`
	SingleOpsPerSec  float64         `json:"single_ops_per_sec"`
	SingleP50NS      int64           `json:"single_p50_ns"`
	SingleP99NS      int64           `json:"single_p99_ns"`
	TransitionsPerOp float64         `json:"transitions_per_op"`
	CyclesPerOp      float64         `json:"cycles_per_op"`
	Scaling          []RMIScalePoint `json:"scaling"`
	// PayloadSweep is present on ring-suite records: frame vs ring
	// cycles/op across payload sizes (see RingPayloadSweep).
	PayloadSweep []PayloadPoint `json:"payload_sweep,omitempty"`
}

// RMIPerfFile is the on-disk shape of BENCH_rmi.json: an append-only
// list of labelled runs.
type RMIPerfFile struct {
	Schema  string         `json:"schema"`
	Entries []RMIPerfEntry `json:"entries"`
}

// RMIPerfSchema identifies the BENCH_rmi.json format.
const RMIPerfSchema = "montsalvat-bench-rmi/v1"

// RMIPerf produces one labelled RMI performance record: single-goroutine
// latency/throughput plus the concurrent scaling sweep.
func RMIPerf(opts Options, label string) (*RMIPerfEntry, error) {
	iters := opts.scale(300, 40)
	cfg := concurrentCfg(opts)
	e := &RMIPerfEntry{
		Label:      label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
	}
	var base float64
	for _, g := range concGoroutines {
		r, err := runConcurrentRMI(cfg, g, iters)
		if err != nil {
			return nil, fmt.Errorf("rmi-perf g=%d: %w", g, err)
		}
		if g == 1 {
			base = r.OpsPerSec
			e.SingleOpsPerSec = r.OpsPerSec
			e.SingleP50NS = r.P50.Nanoseconds()
			e.SingleP99NS = r.P99.Nanoseconds()
			if r.Ops > 0 {
				e.TransitionsPerOp = float64(r.Transitions) / float64(r.Ops)
				e.CyclesPerOp = float64(r.Cycles) / float64(r.Ops)
			}
		}
		p := RMIScalePoint{Goroutines: g, OpsPerSec: r.OpsPerSec}
		if base > 0 {
			p.Speedup = r.OpsPerSec / base
		}
		e.Scaling = append(e.Scaling, p)
	}
	return e, nil
}
