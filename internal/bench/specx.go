package bench

import (
	"montsalvat/internal/jvm"
	"montsalvat/internal/specjvm"
)

// specModels is the Fig. 12 configuration order.
var specModels = []jvm.Model{jvm.NoSGXJVM, jvm.NoSGXNI, jvm.SGXNI, jvm.SCONEJVM}

// specSize picks the kernel problem size for the options.
func specSize(opts Options, k specjvm.Kernel) int {
	if opts.Quick {
		size := k.DefaultSize / 16
		if size < 4 {
			size = 4
		}
		return size
	}
	return k.DefaultSize
}

// Fig12 regenerates the SPECjvm2008 micro-benchmark comparison (§6.6,
// Fig. 12): each kernel under NoSGX+JVM, NoSGX-NI, SGX-NI and SCONE+JVM.
func Fig12(opts Options) (*Table, error) {
	kernels := specjvm.Kernels()
	columns := make([]string, len(kernels))
	for i, k := range kernels {
		columns[i] = k.Name
	}
	t := &Table{
		ID:      "fig12",
		Title:   "SPECjvm2008 micro-benchmarks across runtime configurations",
		XLabel:  "config \\ kernel",
		Unit:    "seconds",
		Columns: columns,
	}
	runner := jvm.NewRunner(0)
	// Measure each kernel once; apply every model to the same base so
	// the comparison is free of run-to-run noise.
	measurements := make([]jvm.Measurement, len(kernels))
	for i, k := range kernels {
		measurements[i] = runner.Measure(k, specSize(opts, k))
	}
	for _, m := range specModels {
		values := make([]float64, 0, len(kernels))
		for _, meas := range measurements {
			values = append(values, runner.ApplyTo(m, meas).Duration.Seconds())
		}
		t.AddRow(m.String(), values...)
	}
	return t, nil
}

// Table1 regenerates the paper's Table 1: the latency gain of
// unpartitioned native images in enclaves (SGX-NI) over their on-JVM
// counterparts in SCONE (SCONE+JVM). The paper's values are mpegaudio
// 2.12x, fft 2.66x, montecarlo 0.25x, sor 1.42x, lu 1.46x, sparse 1.38x.
func Table1(opts Options) (*Table, error) {
	kernels := specjvm.Kernels()
	columns := make([]string, len(kernels))
	for i, k := range kernels {
		columns[i] = k.Name
	}
	t := &Table{
		ID:      "table1",
		Title:   "Latency gain of SGX-NI over SCONE+JVM",
		XLabel:  "metric \\ kernel",
		Unit:    "speedup (x)",
		Columns: columns,
	}
	runner := jvm.NewRunner(0)
	gains := make([]float64, 0, len(kernels))
	for _, k := range kernels {
		meas := runner.Measure(k, specSize(opts, k))
		ni := runner.ApplyTo(jvm.SGXNI, meas)
		scone := runner.ApplyTo(jvm.SCONEJVM, meas)
		gains = append(gains, float64(scone.Overheads.Total())/float64(ni.Overheads.Total()))
	}
	t.AddRow("gain over SCONE+JVM", gains...)
	t.AddRow("paper", 2.12, 2.66, 0.25, 1.42, 1.46, 1.38)
	t.AddNote("shape check: all kernels except montecarlo must show gain > 1; montecarlo < 1")
	return t, nil
}
