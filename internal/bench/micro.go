package bench

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/cycles"
	"montsalvat/internal/epc"
	"montsalvat/internal/heap"
	"montsalvat/internal/mee"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// Micro-benchmark class names (the synthetic programs of §6.2-§6.4).
const (
	microTrusted   = "TObj"
	microUntrusted = "UObj"
)

// microProgram builds the synthetic two-way program of the
// micro-benchmarks: a trusted class and an untrusted class with identical
// shapes (a setter, a serializable-parameter setter and a getter), plus a
// trusted anchor whose call edges keep the untrusted proxy reachable in
// the trusted image (so trusted code can create proxies too) and an
// untrusted main.
func microProgram() (*classmodel.Program, error) {
	p := classmodel.NewProgram()
	for _, spec := range []struct {
		name string
		ann  classmodel.Annotation
	}{
		{name: microTrusted, ann: classmodel.Trusted},
		{name: microUntrusted, ann: classmodel.Untrusted},
	} {
		c := classmodel.NewClass(spec.name, spec.ann)
		if err := c.AddField(classmodel.Field{Name: "x", Kind: classmodel.FieldInt}); err != nil {
			return nil, err
		}
		if err := c.AddMethod(&classmodel.Method{
			Name: classmodel.CtorName, Public: true,
			Params: []classmodel.Param{{Name: "v", Kind: wire.KindInt}},
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				return wire.Null(), env.SetField(self, "x", args[0])
			},
		}); err != nil {
			return nil, err
		}
		if err := c.AddMethod(&classmodel.Method{
			Name: "set", Public: true,
			Params: []classmodel.Param{{Name: "v", Kind: wire.KindInt}},
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				return wire.Null(), env.SetField(self, "x", args[0])
			},
		}); err != nil {
			return nil, err
		}
		if err := c.AddMethod(&classmodel.Method{
			Name: "setAll", Public: true,
			Params: []classmodel.Param{{Name: "vs", Kind: wire.KindList}},
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				// Store the list length, touching every element.
				return wire.Null(), env.SetField(self, "x", wire.Int(int64(args[0].Len())))
			},
		}); err != nil {
			return nil, err
		}
		if err := c.AddMethod(&classmodel.Method{
			Name: "get", Public: true, Returns: wire.KindInt,
			Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
				return env.GetField(self, "x")
			},
		}); err != nil {
			return nil, err
		}
		if err := p.AddClass(c); err != nil {
			return nil, err
		}
	}

	anchor := classmodel.NewClass("Anchor", classmodel.Trusted)
	if err := anchor.AddMethod(&classmodel.Method{
		Name: "touch", Public: true, Static: true,
		Allocates: []string{microUntrusted},
		Calls: []classmodel.MethodRef{
			{Class: microUntrusted, Method: "set"},
			{Class: microUntrusted, Method: "setAll"},
			{Class: microUntrusted, Method: "get"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(anchor); err != nil {
		return nil, err
	}

	mainC := classmodel.NewClass("MicroMain", classmodel.Untrusted)
	if err := mainC.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		// The harness drives both classes from main's runtime, so main
		// declares the edges that keep them (and their proxies)
		// reachable in the untrusted image.
		Allocates: []string{microTrusted, microUntrusted},
		Calls: []classmodel.MethodRef{
			{Class: microTrusted, Method: "set"},
			{Class: microTrusted, Method: "setAll"},
			{Class: microTrusted, Method: "get"},
			{Class: microUntrusted, Method: "set"},
			{Class: microUntrusted, Method: "setAll"},
			{Class: microUntrusted, Method: "get"},
		},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		return nil, err
	}
	if err := p.AddClass(mainC); err != nil {
		return nil, err
	}
	p.MainClass = "MicroMain"
	return p, nil
}

// microWorld builds a partitioned world for the micro-benchmarks with
// heaps sized for the object-count sweeps.
func microWorld(opts Options) (*world.World, error) {
	return microWorldCfg(opts.Config())
}

// microWorldCfg is microWorld with an explicit platform configuration
// (the concurrency experiments tune charging and boundary modes).
func microWorldCfg(cfg simcfg.Config) (*world.World, error) {
	p, err := microProgram()
	if err != nil {
		return nil, err
	}
	wopts := world.DefaultOptions()
	wopts.Cfg = cfg
	wopts.TrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}
	wopts.UntrustedHeap = heap.Config{InitialSemi: 8 << 20, MaxSemi: 1 << 30}
	w, _, err := core.NewPartitionedWorld(p, wopts)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// cleanupMicro drops garbage between measurement points so successive
// sweeps start from comparable heaps.
func cleanupMicro(w *world.World) error {
	if err := w.Untrusted().Collect(); err != nil {
		return err
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		return err
	}
	if err := w.Trusted().Collect(); err != nil {
		return err
	}
	if err := w.SweepOnce(w.Trusted()); err != nil {
		return err
	}
	return w.Untrusted().Collect()
}

// Fig3 measures proxy-object creation versus concrete-object creation in
// and out of the enclave (§6.2).
func Fig3(opts Options) (*Table, error) {
	w, err := microWorld(opts)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	counts := sweep(opts.scale(10_000, 500), opts.scale(100_000, 2_500), 10)
	t := &Table{
		ID:      "fig3",
		Title:   "Latency of object creation (proxy vs concrete, in vs out of enclave)",
		XLabel:  "series \\ objects",
		Unit:    "seconds",
		Columns: intColumns(counts),
	}

	type series struct {
		name        string
		trustedSide bool
		class       string
	}
	for _, s := range []series{
		{name: "proxy-out->in", trustedSide: false, class: microTrusted},
		{name: "proxy-in->out", trustedSide: true, class: microUntrusted},
		{name: "concrete-out", trustedSide: false, class: microUntrusted},
		{name: "concrete-in", trustedSide: true, class: microTrusted},
	} {
		values := make([]float64, 0, len(counts))
		for _, n := range counts {
			var elapsed time.Duration
			err := w.Exec(s.trustedSide, func(env classmodel.Env) error {
				m := startVMeter(w.Clock())
				for i := 0; i < n; i++ {
					if _, err := env.New(s.class, wire.Int(int64(i))); err != nil {
						return err
					}
				}
				elapsed = m.elapsed()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig3 %s n=%d: %w", s.name, n, err)
			}
			values = append(values, elapsed.Seconds())
			if err := cleanupMicro(w); err != nil {
				return nil, err
			}
		}
		t.AddRow(s.name, values...)
	}

	addRatioNote(t, "proxy-out->in", "concrete-out")
	addRatioNote(t, "proxy-in->out", "concrete-in")
	return t, nil
}

// Fig4a measures remote method invocation latency versus concrete
// invocation (§6.3, Fig. 4a, the non-serialized series).
func Fig4a(opts Options) (*Table, error) {
	w, err := microWorld(opts)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	counts := sweep(opts.scale(10_000, 500), opts.scale(100_000, 2_500), 10)
	t := &Table{
		ID:      "fig4a",
		Title:   "Latency of method invocations (RMI vs concrete)",
		XLabel:  "series \\ invocations",
		Unit:    "seconds",
		Columns: intColumns(counts),
	}

	type series struct {
		name        string
		trustedSide bool
		class       string
	}
	for _, s := range []series{
		{name: "proxy-out->in", trustedSide: false, class: microTrusted},
		{name: "proxy-in->out", trustedSide: true, class: microUntrusted},
		{name: "concrete-out", trustedSide: false, class: microUntrusted},
		{name: "concrete-in", trustedSide: true, class: microTrusted},
	} {
		values := make([]float64, 0, len(counts))
		for _, n := range counts {
			var elapsed time.Duration
			err := w.Exec(s.trustedSide, func(env classmodel.Env) error {
				obj, err := env.New(s.class, wire.Int(0))
				if err != nil {
					return err
				}
				m := startVMeter(w.Clock())
				for i := 0; i < n; i++ {
					if _, err := env.Call(obj, "set", wire.Int(int64(i))); err != nil {
						return err
					}
				}
				elapsed = m.elapsed()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig4a %s n=%d: %w", s.name, n, err)
			}
			values = append(values, elapsed.Seconds())
			if err := cleanupMicro(w); err != nil {
				return nil, err
			}
		}
		t.AddRow(s.name, values...)
	}
	addRatioNote(t, "proxy-out->in", "concrete-out")
	addRatioNote(t, "proxy-in->out", "concrete-in")
	return t, nil
}

// Fig4b measures the impact of serialized parameters on RMIs (§6.3,
// Fig. 4b): a fixed number of invocations carrying a list of 16-byte
// strings whose length is swept.
func Fig4b(opts Options) (*Table, error) {
	w, err := microWorld(opts)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	invocations := opts.scale(10_000, 300)
	listSizes := sweep(10, 100, 10)
	t := &Table{
		ID:      "fig4b",
		Title:   fmt.Sprintf("RMI latency with serialized list parameter (%d invocations)", invocations),
		XLabel:  "series \\ list size",
		Unit:    "seconds",
		Columns: intColumns(listSizes),
	}

	elem := wire.Str(strings.Repeat("x", 16))
	type series struct {
		name        string
		trustedSide bool
		class       string
		serialize   bool
	}
	for _, s := range []series{
		{name: "proxy-out->in+s", trustedSide: false, class: microTrusted, serialize: true},
		{name: "proxy-in->out+s", trustedSide: true, class: microUntrusted, serialize: true},
		{name: "proxy-out->in", trustedSide: false, class: microTrusted},
		{name: "proxy-in->out", trustedSide: true, class: microUntrusted},
	} {
		values := make([]float64, 0, len(listSizes))
		for _, ls := range listSizes {
			elems := make([]wire.Value, ls)
			for i := range elems {
				elems[i] = elem
			}
			list := wire.List(elems...)
			var elapsed time.Duration
			err := w.Exec(s.trustedSide, func(env classmodel.Env) error {
				obj, err := env.New(s.class, wire.Int(0))
				if err != nil {
					return err
				}
				m := startVMeter(w.Clock())
				for i := 0; i < invocations; i++ {
					if s.serialize {
						if _, err := env.Call(obj, "setAll", list); err != nil {
							return err
						}
					} else {
						if _, err := env.Call(obj, "set", wire.Int(int64(i))); err != nil {
							return err
						}
					}
				}
				elapsed = m.elapsed()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig4b %s size=%d: %w", s.name, ls, err)
			}
			values = append(values, elapsed.Seconds())
			if err := cleanupMicro(w); err != nil {
				return nil, err
			}
		}
		t.AddRow(s.name, values...)
	}
	addRatioNote(t, "proxy-in->out+s", "proxy-in->out")
	addRatioNote(t, "proxy-out->in+s", "proxy-out->in")
	return t, nil
}

// Fig5a measures total GC time in and out of the enclave (§6.4): N live
// objects are allocated and one stop-and-copy cycle is forced; the
// in-enclave heap copies every byte through the MEE.
func Fig5a(opts Options) (*Table, error) {
	counts := sweep(opts.scale(50_000, 2_000), opts.scale(500_000, 20_000), 10)
	t := &Table{
		ID:      "fig5a",
		Title:   "Total GC time for N live objects (stop-and-copy)",
		XLabel:  "series \\ objects",
		Unit:    "seconds",
		Columns: intColumns(counts),
	}

	const objData = 40
	heapCfg := heap.Config{InitialSemi: 128 << 20, MaxSemi: 512 << 20}
	run := func(h *heap.Heap, clk *cycles.Clock, n int) (time.Duration, error) {
		for i := 0; i < n; i++ {
			addr, err := h.Alloc(1, 0, objData)
			if err != nil {
				return 0, err
			}
			if _, err := h.NewHandle(addr); err != nil {
				return 0, err
			}
		}
		m := startMeter(clk)
		if err := h.Collect(); err != nil {
			return 0, err
		}
		return m.elapsed(), nil
	}

	outVals := make([]float64, 0, len(counts))
	for _, n := range counts {
		h, err := heap.NewPlain(heapCfg)
		if err != nil {
			return nil, err
		}
		d, err := run(h, nil, n)
		if err != nil {
			return nil, err
		}
		outVals = append(outVals, d.Seconds())
	}
	t.AddRow("GC-out (concrete-out)", outVals...)

	inVals := make([]float64, 0, len(counts))
	for _, n := range counts {
		eng, err := mee.New()
		if err != nil {
			return nil, err
		}
		clk := cycles.New(simcfg.CPUHz, opts.Spin)
		res, err := epc.NewResidency(simcfg.DefaultEPCBytes, clk)
		if err != nil {
			return nil, err
		}
		h, err := heap.New(heapCfg, func(size int) (heap.Backend, error) {
			return epc.New(size, res, eng, clk)
		})
		if err != nil {
			return nil, err
		}
		d, err := run(h, clk, n)
		if err != nil {
			return nil, err
		}
		inVals = append(inVals, d.Seconds())
	}
	t.AddRow("GC-in (concrete-in)", inVals...)

	addRatioNote(t, "GC-in (concrete-in)", "GC-out (concrete-out)")
	return t, nil
}

// Fig5b demonstrates GC consistency (§6.4, Fig. 5b): proxies are created
// and destroyed in waves in the untrusted runtime, and at every timestamp
// the number of live proxies out of the enclave and the number of mirror
// objects in the in-enclave registry are sampled; the two series must
// track each other.
func Fig5b(opts Options) (*Table, error) {
	w, err := microWorld(opts)
	if err != nil {
		return nil, err
	}
	defer w.Close()

	steps := opts.scale(60, 12)
	perStep := opts.scale(5_000, 200)
	t := &Table{
		ID:      "fig5b",
		Title:   fmt.Sprintf("GC consistency: %d proxies created/destroyed per step", perStep),
		XLabel:  "series \\ timestamp",
		Unit:    "live objects",
		Columns: intColumns(sweep(1, steps, steps)),
	}

	var pinned []wire.Value
	proxiesOut := make([]float64, 0, steps)
	mirrorsIn := make([]float64, 0, steps)
	for step := 0; step < steps; step++ {
		if step < steps/2 {
			// Creation wave: pin the new proxies so they stay live.
			var created []wire.Value
			err := w.Exec(false, func(env classmodel.Env) error {
				for i := 0; i < perStep; i++ {
					ref, err := env.New(microTrusted, wire.Int(int64(step*perStep+i)))
					if err != nil {
						return err
					}
					if err := w.Untrusted().Pin(ref); err != nil {
						return err
					}
					created = append(created, ref)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			pinned = append(pinned, created...)
		} else if len(pinned) >= perStep {
			// Destruction wave: unpin a batch, collect, sweep.
			for _, ref := range pinned[:perStep] {
				if err := w.Untrusted().Unpin(ref); err != nil {
					return nil, err
				}
			}
			pinned = pinned[perStep:]
		}
		if err := w.Untrusted().Collect(); err != nil {
			return nil, err
		}
		if err := w.SweepOnce(w.Untrusted()); err != nil {
			return nil, err
		}
		proxiesOut = append(proxiesOut, float64(w.Untrusted().WeakList().Len()))
		mirrorsIn = append(mirrorsIn, float64(w.Trusted().Registry().Size()))
	}
	t.AddRow("proxy-objs-out", proxiesOut...)
	t.AddRow("mirror-objs-in", mirrorsIn...)

	maxDiff := 0.0
	for i := range proxiesOut {
		d := proxiesOut[i] - mirrorsIn[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	t.AddNote("max |proxies - mirrors| across timeline: %.0f (0 = perfectly consistent)", maxDiff)
	return t, nil
}

// sweep returns n evenly spaced values from lo to hi inclusive.
func sweep(lo, hi, n int) []int {
	if n < 2 {
		return []int{hi}
	}
	out := make([]int, 0, n)
	step := (hi - lo) / (n - 1)
	if step < 1 {
		step = 1
	}
	for v := lo; len(out) < n && v <= hi; v += step {
		out = append(out, v)
	}
	return out
}

func intColumns(vals []int) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = strconv.Itoa(v)
	}
	return out
}

// addRatioNote records the mean ratio between two series.
func addRatioNote(t *Table, num, den string) {
	a, ok1 := t.Row(num)
	b, ok2 := t.Row(den)
	if !ok1 || !ok2 || len(a.Values) != len(b.Values) {
		return
	}
	var sum float64
	n := 0
	for i := range a.Values {
		if b.Values[i] > 0 {
			sum += a.Values[i] / b.Values[i]
			n++
		}
	}
	if n > 0 {
		t.AddNote("mean %s / %s = %.1fx", num, den, sum/float64(n))
	}
}
