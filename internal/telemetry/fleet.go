package telemetry

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Fleet aggregates the telemetry of many Worlds (fabric shards,
// replicas, the router) behind one scrapeable bundle.
//
// Identity is split deliberately:
//
//   - every node gets a private metrics Registry, so per-shard counters
//     never contend across Worlds and a node's own /snapshot stays
//     meaningful;
//   - every node shares the fleet's Tracer and EventLog, so one trace
//     ID follows a request router → shard → peer → replica and the
//     event journal is a single totally-ordered timeline.
//
// The fleet registry registers a collector that scrapes each node
// registry's Snapshot() — the same data a remote deployment would pull
// from per-shard /snapshot endpoints — and republishes it under
// shard-labeled montsalvat_fabric_* names. Histograms are republished
// as _count/_sum counters plus _p50/_p95/_p99/_max gauges (bucket
// detail stays on the per-node registries).
type Fleet struct {
	tel   *Telemetry
	mu    sync.Mutex
	nodes map[string]*Telemetry
}

// NewFleet builds a fleet aggregator. opts configures the shared tracer
// and event journal exactly as for New.
func NewFleet(opts Options) *Fleet {
	f := &Fleet{tel: New(opts), nodes: make(map[string]*Telemetry)}
	f.tel.reg.RegisterCollector(f.scrape)
	return f
}

// Telemetry returns the fleet-level bundle: the aggregated registry,
// the shared tracer, and the shared event journal. Nil when f is nil.
func (f *Fleet) Telemetry() *Telemetry {
	if f == nil {
		return nil
	}
	return f.tel
}

// Node returns (creating on first use) the telemetry bundle for the
// named fleet actor: a private registry plus the shared tracer and
// event journal. Nil when f is nil, so a fleet-less fabric stays a
// disabled telemetry layer.
func (f *Fleet) Node(name string) *Telemetry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok := f.nodes[name]; ok {
		return t
	}
	t := &Telemetry{reg: NewRegistry(), tracer: f.tel.tracer, events: f.tel.events}
	f.nodes[name] = t
	return t
}

// NodeNames returns the registered node names, sorted.
func (f *Fleet) NodeNames() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.nodes))
	for n := range f.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// scrape is the fleet registry's collector: it snapshots every node
// registry and republishes the samples shard-labeled.
func (f *Fleet) scrape(reg *Registry) {
	f.mu.Lock()
	type namedNode struct {
		name string
		tel  *Telemetry
	}
	nodes := make([]namedNode, 0, len(f.nodes))
	for name, tel := range f.nodes {
		nodes = append(nodes, namedNode{name, tel})
	}
	f.mu.Unlock()
	for _, n := range nodes {
		snap := n.tel.Registry().Snapshot()
		for key, v := range snap.Counters {
			base, labels := parseCanonKey(key)
			reg.Counter(fleetName(base), append(labels, "shard", n.name)...).Set(v)
		}
		for key, v := range snap.Gauges {
			base, labels := parseCanonKey(key)
			reg.Gauge(fleetName(base), append(labels, "shard", n.name)...).Set(v)
		}
		for key, hs := range snap.Histograms {
			base, labels := parseCanonKey(key)
			name := fleetName(base)
			sl := append(labels, "shard", n.name)
			reg.Counter(name+"_count", sl...).Set(hs.Count)
			reg.Counter(name+"_sum", sl...).Set(uint64(max64(hs.Sum, 0)))
			reg.Gauge(name+"_p50", sl...).Set(hs.P50)
			reg.Gauge(name+"_p95", sl...).Set(hs.P95)
			reg.Gauge(name+"_p99", sl...).Set(hs.P99)
			reg.Gauge(name+"_max", sl...).Set(hs.Max)
		}
	}
}

// fleetName maps a per-node metric name into the fleet namespace:
// montsalvat_serve_requests_total -> montsalvat_fabric_serve_requests_total.
func fleetName(base string) string {
	if rest, ok := strings.CutPrefix(base, "montsalvat_"); ok {
		if strings.HasPrefix(rest, "fabric_") {
			return base
		}
		return "montsalvat_fabric_" + rest
	}
	return "montsalvat_fabric_" + base
}

// parseCanonKey splits a canonical metric key back into its base name
// and alternating label pairs. Inverse of canonKey for the quoting the
// registry produces.
func parseCanonKey(key string) (base string, labels []string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	base = key[:i]
	rest := strings.TrimSuffix(key[i+1:], "}")
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			break
		}
		k := rest[:eq]
		rest = rest[eq+1:]
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			break
		}
		v, err := strconv.Unquote(quoted)
		if err != nil {
			break
		}
		labels = append(labels, k, v)
		rest = strings.TrimPrefix(rest[len(quoted):], ",")
	}
	return base, labels
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
