package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsExactBelowCutoff(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < smallCutoff; v++ {
		h.Observe(v)
		if got := bucketUpper(bucketIndex(v)); got != v {
			t.Fatalf("value %d: bucket upper %d, want exact", v, got)
		}
	}
	if h.Count() != smallCutoff {
		t.Fatalf("count = %d, want %d", h.Count(), smallCutoff)
	}
}

func TestHistogramBucketBoundsContainValue(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the
	// value and within 12.5% relative error.
	vals := []int64{16, 17, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345, 1<<62 + 99}
	for _, v := range vals {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if up < v {
			t.Fatalf("value %d: bucket upper %d below value", v, up)
		}
		if float64(up-v) > 0.125*float64(v)+1 {
			t.Fatalf("value %d: bucket upper %d exceeds 12.5%% error", v, up)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000: p50 ~ 500, p99 ~ 990, max exact.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	check := func(q float64, want int64) {
		t.Helper()
		got := h.Quantile(q)
		lo := want - want/8 - 1
		hi := want + want/8 + 1
		if got < lo || got > hi {
			t.Fatalf("q=%v: got %d, want within [%d,%d]", q, got, lo, hi)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	if h.Quantile(1) != 1000 {
		t.Fatalf("p100 = %d, want exact max 1000", h.Quantile(1))
	}
	if h.Sum() != 1000*1001/2 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	if h.Max() != workers*perWorker-1 {
		t.Fatalf("max = %d, want %d", h.Max(), workers*perWorker-1)
	}
	var bucketSum uint64
	for i := 0; i < numBuckets; i++ {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, workers*perWorker)
	}
}

func TestRegistryConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Re-resolve each time to exercise the get-or-create path.
				reg.Counter("test_total", "route", "full").Inc()
				reg.Gauge("test_gauge").Add(1)
				reg.Histogram("test_ns").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("test_total", "route", "full").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("test_gauge").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("test_ns").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	var reg *Registry
	var h *Histogram
	var c *Counter
	var g *Gauge
	var tr *Tracer
	var sp *Span

	if tel.Registry() != nil || tel.Tracer() != nil {
		t.Fatal("nil telemetry must yield nil registry/tracer")
	}
	tel.StartSnapshotLogger(time.Second, nil)()
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x") != nil {
		t.Fatal("nil registry must yield nil instruments")
	}
	reg.RegisterCollector(func(*Registry) {})
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	h.Observe(1)
	c.Inc()
	c.Add(2)
	c.Set(3)
	g.Set(1)
	g.Add(1)
	if tr.Sampled() || tr.StartRoot("x") != nil || tr.Dump() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	sp.SetDir(true)
	sp.SetRoute("full")
	sp.SetRoutine(1)
	sp.AddMarshalBytes(1)
	sp.SetBodyCycles(1)
	sp.SetQueueWait(time.Second)
	sp.SetBatchSize(1)
	sp.Finish(nil)
	if h.Count() != 0 || c.Value() != 0 || g.Value() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must report zero")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(1, 8, 1)
	for i := 0; i < 20; i++ {
		sp := tr.StartRoot(fmt.Sprintf("span-%d", i))
		if sp == nil {
			t.Fatalf("rate 1 must sample every root (i=%d)", i)
		}
		sp.Finish(nil)
	}
	spans := tr.Dump()
	if len(spans) != 8 {
		t.Fatalf("ring retained %d spans, want 8", len(spans))
	}
	// Oldest-first: spans 12..19 survive.
	for i, sp := range spans {
		want := fmt.Sprintf("span-%d", 12+i)
		if sp.Name != want {
			t.Fatalf("slot %d = %q, want %q", i, sp.Name, want)
		}
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	decisions := func(seed uint64) []bool {
		tr := NewTracer(0.25, 16, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = tr.Sampled()
		}
		return out
	}
	a := decisions(42)
	b := decisions(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	sampled := 0
	for _, d := range a {
		if d {
			sampled++
		}
	}
	if sampled == 0 || sampled == len(a) {
		t.Fatalf("rate 0.25 sampled %d/%d, want a strict subset", sampled, len(a))
	}
	c := decisions(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestTracerRates(t *testing.T) {
	never := NewTracer(0, 8, 1)
	if never.Sampled() {
		t.Fatal("rate 0 must never sample")
	}
	if sp := never.StartRoot("x"); sp != nil {
		t.Fatal("rate 0 must not start roots")
	}
	always := NewTracer(1, 8, 1)
	for i := 0; i < 100; i++ {
		if !always.Sampled() {
			t.Fatal("rate 1 must always sample")
		}
	}
}

func TestTracerChildChain(t *testing.T) {
	tr := NewTracer(1, 16, 1)
	root := tr.StartRoot("ecall relay")
	child := tr.StartChild(root, "nested ocall")
	if child.TraceID != root.TraceID {
		t.Fatal("child must share the root's trace id")
	}
	if child.ParentID != root.SpanID {
		t.Fatal("child parent id must be the root span id")
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child must get a fresh span id")
	}
	child.Finish(nil)
	root.Finish(nil)
	if tr.Len() != 2 {
		t.Fatalf("ring has %d spans, want 2", tr.Len())
	}
	if tr.StartChild(nil, "orphan") != nil {
		t.Fatal("child of nil parent must be nil (unsampled chain)")
	}
}

func TestTracerConcurrentPublish(t *testing.T) {
	tr := NewTracer(1, 32, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartRoot("load")
				sp.SetRoute("switchless")
				sp.Finish(nil)
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 32 {
		t.Fatalf("ring retained %d spans, want full 32", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("montsalvat_boundary_calls_total", "route", "full").Add(3)
	reg.Counter("montsalvat_boundary_calls_total", "route", "switchless").Add(7)
	reg.Gauge("montsalvat_sgx_tcs_in_use").Set(2)
	h := reg.Histogram("montsalvat_serve_request_ns")
	h.Observe(10)
	h.Observe(500)
	reg.RegisterCollector(func(r *Registry) {
		r.Counter("collected_total").Set(99)
	})

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE montsalvat_boundary_calls_total counter",
		`montsalvat_boundary_calls_total{route="full"} 3`,
		`montsalvat_boundary_calls_total{route="switchless"} 7`,
		"# TYPE montsalvat_sgx_tcs_in_use gauge",
		"montsalvat_sgx_tcs_in_use 2",
		"# TYPE montsalvat_serve_request_ns histogram",
		`montsalvat_serve_request_ns_bucket{le="10"} 1`,
		`montsalvat_serve_request_ns_bucket{le="+Inf"} 2`,
		"montsalvat_serve_request_ns_sum 510",
		"montsalvat_serve_request_ns_count 2",
		"collected_total 99",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE montsalvat_boundary_calls_total counter") != 1 {
		t.Fatal("TYPE line must appear once per base name")
	}
}

func TestSnapshotJSON(t *testing.T) {
	tel := New(Options{TraceSampleRate: 1, TraceBuffer: 4})
	tel.Registry().Counter("a_total").Add(5)
	tel.Registry().Histogram("lat_ns").Observe(100)
	var snap Snapshot
	if err := json.Unmarshal([]byte(tel.Registry().SnapshotJSON()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a_total"] != 5 {
		t.Fatalf("snapshot counter = %d, want 5", snap.Counters["a_total"])
	}
	if hs := snap.Histograms["lat_ns"]; hs.Count != 1 || hs.Max != 100 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
}

func TestSnapshotLogger(t *testing.T) {
	tel := New(Options{})
	tel.Registry().Counter("beat_total").Inc()
	var mu sync.Mutex
	var lines []string
	stop := tel.StartSnapshotLogger(5*time.Millisecond, func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot logger emitted nothing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(lines[0], "beat_total") {
		t.Fatalf("snapshot line missing metric: %q", lines[0])
	}
}

func TestHTTPEndpoints(t *testing.T) {
	tel := New(Options{TraceSampleRate: 1, TraceBuffer: 8})
	tel.Registry().Counter("montsalvat_boundary_calls_total", "route", "full").Add(2)
	sp := tel.Tracer().StartRoot("relay KVStore.put")
	tel.Tracer().StartChild(sp, "ocall AuditLog.record").Finish(nil)
	sp.Finish(nil)

	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, `montsalvat_boundary_calls_total{route="full"} 2`) {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(get("/traces")), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("/traces returned %d spans, want 2", len(spans))
	}
	if spans[0].Name != "ocall AuditLog.record" || spans[0].ParentID == 0 {
		t.Fatalf("nested span malformed: %+v", spans[0])
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &snap); err != nil {
		t.Fatal(err)
	}
	if get("/healthz") != "ok\n" {
		t.Fatal("healthz mismatch")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		var v int64
		for pb.Next() {
			v++
			h.Observe(v)
		}
	})
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkNilSpanSetters(b *testing.B) {
	var sp *Span
	for i := 0; i < b.N; i++ {
		sp.SetRoute("full")
		sp.SetBodyCycles(int64(i))
		sp.Finish(nil)
	}
}

// TestEventLogSeqMonotonicAndWraparound: Seq is the ordering authority
// — strictly monotonic across emissions — and the ring retains exactly
// the last buffer events after wraparound.
func TestEventLogSeqMonotonicAndWraparound(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 20; i++ {
		l.Emit(EventShip, "shard-0", 0, "event %d", i)
	}
	events := l.Dump()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(events))
	}
	for i, ev := range events {
		if want := uint64(13 + i); ev.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
		if want := fmt.Sprintf("event %d", 12+i); ev.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, ev.Detail, want)
		}
	}
	if got := l.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
}

// TestEventLogConcurrentEmit hammers one journal from many goroutines:
// every retained Seq must be unique and Dump must come back sorted.
// Run under -race this also exercises the lock-free slot protocol.
func TestEventLogConcurrentEmit(t *testing.T) {
	l := NewEventLog(4096)
	const (
		emitters = 8
		each     = 400
	)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Emit(EventCounterAdvance, fmt.Sprintf("shard-%d", g), uint64(g), "tick %d", i)
			}
		}(g)
	}
	wg.Wait()
	events := l.Dump()
	if len(events) != emitters*each {
		t.Fatalf("retained %d events, want %d", len(events), emitters*each)
	}
	seen := make(map[uint64]bool, len(events))
	last := uint64(0)
	for _, ev := range events {
		if seen[ev.Seq] {
			t.Fatalf("duplicate Seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if ev.Seq <= last {
			t.Fatalf("Dump not sorted: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
	}
}

// TestEventLine checks the one-line timeline rendering used by the
// fabric -failover dump.
func TestEventLine(t *testing.T) {
	ev := Event{Seq: 42, TimeNS: 12_345_000, Type: EventPromoteCommit, Node: "shard-3", TraceID: 7, Detail: "replica 0 promoted"}
	line := ev.Line(0)
	for _, want := range []string{"000042", "promote-commit", "shard-3", "[trace 7]", "replica 0 promoted"} {
		if !strings.Contains(line, want) {
			t.Fatalf("timeline line %q missing %q", line, want)
		}
	}
}

// TestStartRemote: a valid remote context continues the trace (same
// TraceID, parented on the remote span); the zero context degrades to a
// locally sampled root — the wire-extraction fallback for untraced or
// legacy frames.
func TestStartRemote(t *testing.T) {
	tel := New(Options{TraceSampleRate: 1, TraceBuffer: 64})
	tr := tel.Tracer()

	root := tr.StartRoot("route put")
	if root == nil {
		t.Fatal("full-rate tracer did not sample a root")
	}
	sc := root.Context()
	remote := tr.StartRemote(sc, "dispatch")
	if remote.TraceID != root.TraceID {
		t.Fatalf("remote span trace %d, want %d", remote.TraceID, root.TraceID)
	}
	if remote.ParentID != root.SpanID {
		t.Fatalf("remote span parent %d, want %d", remote.ParentID, root.SpanID)
	}
	if remote.SpanID == root.SpanID {
		t.Fatal("remote span reused the parent's SpanID")
	}

	fresh := tr.StartRemote(SpanContext{}, "dispatch")
	if fresh == nil {
		t.Fatal("zero context should fall back to a sampled root")
	}
	if fresh.ParentID != 0 || fresh.TraceID == root.TraceID {
		t.Fatalf("zero-context span = trace %d parent %d, want a fresh root", fresh.TraceID, fresh.ParentID)
	}

	var nilTracer *Tracer
	if sp := nilTracer.StartRemote(sc, "x"); sp != nil {
		t.Fatal("nil tracer returned a span")
	}
}

// TestFleetAggregation covers the fleet identity split: node metrics
// are private but republished shard-labeled under montsalvat_fabric_*
// on the fleet registry (histograms as _count/_sum plus quantile
// gauges), while the tracer and event journal are shared so one trace
// ID and one Seq order span every node.
func TestFleetAggregation(t *testing.T) {
	fleet := NewFleet(Options{TraceSampleRate: 1, TraceBuffer: 64, EventBuffer: 64})
	a, b := fleet.Node("shard-0"), fleet.Node("shard-1")

	a.Registry().Counter("montsalvat_serve_requests_total").Add(3)
	b.Registry().Counter("montsalvat_serve_requests_total").Add(5)
	h := a.Registry().Histogram("montsalvat_persist_ship_latency_ns")
	for i := 1; i <= 4; i++ {
		h.Observe(int64(i) * 1000)
	}

	snap := fleet.Telemetry().Registry().Snapshot()
	if got := snap.Counters[`montsalvat_fabric_serve_requests_total{shard="shard-0"}`]; got != 3 {
		t.Fatalf("shard-0 fleet counter = %d, want 3", got)
	}
	if got := snap.Counters[`montsalvat_fabric_serve_requests_total{shard="shard-1"}`]; got != 5 {
		t.Fatalf("shard-1 fleet counter = %d, want 5", got)
	}
	if got := snap.Counters[`montsalvat_fabric_persist_ship_latency_ns_count{shard="shard-0"}`]; got != 4 {
		t.Fatalf("fleet histogram count = %d, want 4", got)
	}
	if _, ok := snap.Gauges[`montsalvat_fabric_persist_ship_latency_ns_p50{shard="shard-0"}`]; !ok {
		t.Fatal("fleet snapshot missing republished p50 gauge")
	}
	// Node registries stay private: shard-1 never sees shard-0's counter.
	if got := b.Registry().Snapshot().Counters["montsalvat_serve_requests_total"]; got != 5 {
		t.Fatalf("shard-1 private counter = %d, want 5", got)
	}

	// Shared trace identity: a context minted on one node continues on
	// another with the same TraceID, visible in the fleet dump.
	sp := a.Tracer().StartRoot("hop")
	sc := sp.Context()
	rsp := b.Tracer().StartRemote(sc, "hop-remote")
	rsp.Finish(nil)
	sp.Finish(nil)
	found := 0
	for _, s := range fleet.Telemetry().Tracer().Dump() {
		if s.TraceID == sc.TraceID {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("fleet trace dump holds %d spans of the shared trace, want 2", found)
	}

	// Shared journal: emissions from both nodes interleave in one Seq order.
	a.Events().Emit(EventKill, "shard-0", 0, "a")
	b.Events().Emit(EventEpochBump, "shard-1", 0, "b")
	events := fleet.Telemetry().Events().Dump()
	if len(events) != 2 || events[0].Type != EventKill || events[1].Type != EventEpochBump {
		t.Fatalf("shared journal = %+v, want kill then epoch-bump", events)
	}
	if events[0].Seq >= events[1].Seq {
		t.Fatalf("journal Seq not monotonic across nodes: %d, %d", events[0].Seq, events[1].Seq)
	}

	// Nil fleet: the whole plane degrades to the disabled layer.
	var nf *Fleet
	if nf.Telemetry() != nil || nf.Node("x") != nil || nf.NodeNames() != nil {
		t.Fatal("nil fleet must return nil bundles")
	}
}
