package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// EventType classifies a structured journal event. The taxonomy covers
// the protocol steps an operator (or the planned orderliness harness)
// needs to reconstruct a failover or recovery timeline.
type EventType string

const (
	EventSessionOpen    EventType = "session-open"    // gateway handshake completed
	EventSessionClose   EventType = "session-close"   // session torn down
	EventDrain          EventType = "drain"           // gateway drain began
	EventRedirect       EventType = "redirect"        // wrong-shard redirect issued
	EventKill           EventType = "kill"            // shard enclave killed
	EventShip           EventType = "ship"            // checkpoint/WAL delta shipped
	EventCheckpoint     EventType = "checkpoint"      // durable checkpoint committed
	EventPromoteBegin   EventType = "promote-begin"   // replica promotion started
	EventPromoteCommit  EventType = "promote-commit"  // promotion installed new primary
	EventEpochBump      EventType = "epoch-bump"      // fabric table epoch advanced
	EventRecoveryReplay EventType = "recovery-replay" // WAL replay finished
	EventCounterAdvance EventType = "counter-advance" // monotonic counter incremented
)

// Event is one entry in the structured journal. Seq is strictly
// monotonic across every emitter sharing the log — it, not TimeNS, is
// the ordering authority (wall clocks on one host still tie).
type Event struct {
	Seq     uint64    `json:"seq"`
	TimeNS  int64     `json:"time_ns"`
	Type    EventType `json:"type"`
	Node    string    `json:"node,omitempty"`
	TraceID uint64    `json:"trace_id,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// EventLog is a fixed-size lock-free ring of typed events. One atomic
// sequence both orders events and picks slots, so writers never block
// and Seq is strictly monotonic; old events are overwritten on
// wraparound. A nil *EventLog discards emissions after one branch —
// the disabled path never formats, allocates, or touches the simulated
// clock.
type EventLog struct {
	ring []atomic.Pointer[Event]
	seq  atomic.Uint64
}

// NewEventLog builds a journal retaining the last buffer events
// (default 1024).
func NewEventLog(buffer int) *EventLog {
	if buffer <= 0 {
		buffer = 1024
	}
	return &EventLog{ring: make([]atomic.Pointer[Event], buffer)}
}

// Emit appends one event. The nil check precedes all formatting so a
// disabled journal costs one branch. traceID 0 means "no trace".
func (l *EventLog) Emit(typ EventType, node string, traceID uint64, format string, args ...any) {
	if l == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	ev := &Event{
		Seq:     l.seq.Add(1),
		TimeNS:  time.Now().UnixNano(),
		Type:    typ,
		Node:    node,
		TraceID: traceID,
		Detail:  detail,
	}
	l.ring[(ev.Seq-1)%uint64(len(l.ring))].Store(ev)
}

// Dump returns the retained events ordered by Seq (best effort under
// concurrent emission). The returned events are copies.
func (l *EventLog) Dump() []Event {
	if l == nil {
		return nil
	}
	n := uint64(len(l.ring))
	head := l.seq.Load()
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]Event, 0, n)
	for i := start; i < head; i++ {
		if ev := l.ring[i%n].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	// Slots can be overwritten between Load calls under concurrent
	// emission; re-sort so the ordering contract holds regardless.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len reports how many events are currently retained.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Dump())
}

// Line renders one timeline line: "000042 +12.345ms promote-commit
// shard-3 [trace 7] detail...". Offsets are relative to baseNS.
func (ev Event) Line(baseNS int64) string {
	off := time.Duration(ev.TimeNS - baseNS)
	s := fmt.Sprintf("%06d %+12s %-16s %-18s", ev.Seq, off.Round(time.Microsecond), ev.Type, ev.Node)
	if ev.TraceID != 0 {
		s += fmt.Sprintf(" [trace %d]", ev.TraceID)
	}
	if ev.Detail != "" {
		s += " " + ev.Detail
	}
	return s
}
