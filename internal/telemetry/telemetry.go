// Package telemetry is the observability layer of the Montsalvat
// runtime: a low-overhead metrics registry plus a boundary-transition
// tracer, threaded through every enclave crossing.
//
// The design follows three rules:
//
//   - hot paths never allocate: counters and gauges are single atomics,
//     histograms are fixed arrays of atomic log-spaced buckets, and
//     trace spans are allocated only for sampled calls;
//   - everything is nil-safe: a disabled telemetry layer is a nil
//     pointer, so instrumented code pays one branch, not an interface
//     call, when observability is off;
//   - snapshot-style statistics that already exist elsewhere (the
//     dispatcher's routing counters, the gateway's admission counters,
//     the GC helpers' sweep stats) are absorbed through registered
//     collectors rather than duplicated on the hot path — the registry
//     is the single facade an operator scrapes, while the producing
//     layers keep their cheap private atomics.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Telemetry bundle.
type Options struct {
	// TraceSampleRate is the fraction of boundary-call roots that start
	// a trace (0 disables tracing, 1 traces everything). Children of a
	// sampled root are always captured so chains stay complete.
	TraceSampleRate float64
	// TraceBuffer is the capacity of the completed-span ring buffer
	// (default 256). Old spans are overwritten, never blocked on.
	TraceBuffer int
	// Seed seeds the deterministic sampler (default 1). Two tracers
	// with the same seed and rate make the same sampling decisions in
	// the same order — tests rely on this.
	Seed uint64
	// EventBuffer is the capacity of the structured event journal
	// (default 1024). Old events are overwritten, never blocked on.
	EventBuffer int
}

// Telemetry bundles a metrics registry with a transition tracer and a
// structured event journal. A nil *Telemetry is a valid disabled layer:
// Registry, Tracer, and Events return nil, and every instrument method
// on nil is a no-op.
type Telemetry struct {
	reg    *Registry
	tracer *Tracer
	events *EventLog
}

// New builds an enabled telemetry layer.
func New(opts Options) *Telemetry {
	if opts.TraceBuffer <= 0 {
		opts.TraceBuffer = 256
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	t := &Telemetry{reg: NewRegistry(), events: NewEventLog(opts.EventBuffer)}
	if opts.TraceSampleRate > 0 {
		t.tracer = NewTracer(opts.TraceSampleRate, opts.TraceBuffer, opts.Seed)
	}
	return t
}

// Registry returns the metrics registry (nil when t is nil).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the transition tracer (nil when t is nil or tracing is
// disabled by a zero sample rate).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Events returns the structured event journal (nil when t is nil).
func (t *Telemetry) Events() *EventLog {
	if t == nil {
		return nil
	}
	return t.events
}

// StartSnapshotLogger emits a one-line JSON snapshot of every metric to
// logf at the given interval — the headless-run counterpart of the HTTP
// endpoint. The returned stop function is idempotent.
func (t *Telemetry) StartSnapshotLogger(interval time.Duration, logf func(format string, args ...any)) (stop func()) {
	if t == nil || logf == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				logf("telemetry snapshot %s", t.reg.SnapshotJSON())
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter value. It exists for collectors absorbing
// an externally maintained monotonic count; hot paths use Add.
func (c *Counter) Set(v uint64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time signed value. The zero value is ready to
// use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
