package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics. Instrument lookup (Counter, Gauge,
// Histogram) is get-or-create and safe for concurrent use; callers on
// hot paths resolve their instruments once and cache the pointers, so
// the registry map is never consulted per call.
//
// Labels are passed as alternating key, value pairs and become part of
// the metric identity, Prometheus-style:
//
//	reg.Counter("montsalvat_boundary_calls_total", "route", "full")
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	baseNames  map[string]string // canonical key -> metric base name
	collectors []func(*Registry)

	// collectMu serialises collector runs so two concurrent scrapes do
	// not interleave snapshot absorption.
	collectMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		baseNames: make(map[string]string),
	}
}

// canonKey renders the canonical identity of a metric: the base name
// plus its sorted label pairs.
func canonKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		labels = append(labels[:len(labels):len(labels)], "INVALID")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns the counter registered under name+labels, creating it
// on first use. Returns nil when r is nil.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := canonKey(name, labels)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{}
	r.counters[key] = c
	r.baseNames[key] = name
	return c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use. Returns nil when r is nil.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := canonKey(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[key] = g
	r.baseNames[key] = name
	return g
}

// Histogram returns the histogram registered under name+labels,
// creating it on first use. Returns nil when r is nil.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := canonKey(name, labels)
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[key]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[key] = h
	r.baseNames[key] = name
	return h
}

// RegisterCollector adds a function invoked before every snapshot or
// scrape. Collectors absorb externally maintained statistics (dispatch
// routing counters, gateway admission counters, sweep stats) into
// registry metrics with Counter.Set/Gauge.Set, keeping the producing
// hot paths free of double accounting.
func (r *Registry) RegisterCollector(fn func(*Registry)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// collect runs the registered collectors.
func (r *Registry) collect() {
	r.mu.RLock()
	fns := make([]func(*Registry), len(r.collectors))
	copy(fns, r.collectors)
	r.mu.RUnlock()
	r.collectMu.Lock()
	defer r.collectMu.Unlock()
	for _, fn := range fns {
		fn(r)
	}
}

// Snapshot is a point-in-time copy of every metric in the registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot runs the collectors and copies every metric.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.collect()
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		hs := h.Snapshot()
		hs.Buckets = nil // keep JSON snapshots compact; buckets stay on /metrics
		s.Histograms[k] = hs
	}
	return s
}

// SnapshotJSON renders the snapshot as one JSON object.
func (r *Registry) SnapshotJSON() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err)
	}
	return string(b)
}

// WritePrometheus runs the collectors and renders every metric in the
// Prometheus text exposition format, sorted by canonical name. Counter
// and gauge samples are one line each; histograms expose cumulative
// _bucket{le=...} samples over their non-empty buckets plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.collect()
	r.mu.RLock()
	defer r.mu.RUnlock()

	typed := make(map[string]bool)
	writeType := func(key, kind string) string {
		base := r.baseNames[key]
		if base == "" {
			base = key
		}
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
		return base
	}

	for _, key := range sortedKeys(r.counters) {
		writeType(key, "counter")
		if _, err := fmt.Fprintf(w, "%s %d\n", key, r.counters[key].Value()); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(r.gauges) {
		writeType(key, "gauge")
		if _, err := fmt.Fprintf(w, "%s %d\n", key, r.gauges[key].Value()); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(r.hists) {
		base := writeType(key, "histogram")
		snap := r.hists[key].Snapshot()
		labels := strings.TrimPrefix(key, base) // "{...}" or ""
		var cum uint64
		for _, b := range snap.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLE(labels, fmt.Sprintf("%d", b.Upper)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLE(labels, "+Inf"), snap.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, snap.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// mergeLE injects the le label into an existing (possibly empty)
// rendered label set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf(`{le="%s"}`, le)
	}
	return fmt.Sprintf(`%s,le="%s"}`, strings.TrimSuffix(labels, "}"), le)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
