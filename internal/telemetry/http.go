package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Handler returns the live-introspection HTTP handler:
//
//	GET /metrics   Prometheus text exposition of every metric
//	GET /traces    JSON dump of the sampled-span ring buffer
//	GET /events    JSON dump of the structured event journal, Seq order
//	GET /snapshot  JSON snapshot of counters/gauges/histogram quantiles
//	GET /healthz   liveness probe
//
// The endpoint is read-only diagnostics for operators; bind it to
// loopback or an operations network, never the serving address.
func Handler(t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := t.Tracer().Dump()
		if spans == nil {
			spans = []Span{}
		}
		_ = json.NewEncoder(w).Encode(spans)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := t.Events().Dump()
		if events == nil {
			events = []Event{}
		}
		_ = json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.Registry().Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves the introspection handler in the
// background until Close.
func Serve(addr string, t *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(t), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
