package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values below smallCutoff get one exact
// bucket each; above, each power-of-two octave is split into
// subPerOctave linear sub-buckets, bounding the relative quantile error
// at 1/subPerOctave (12.5%) with a fixed 4 KiB of atomic counters and
// no per-sample allocation.
const (
	smallCutoff  = 16 // exact buckets for values 0..15
	subPerOctave = 8
	firstOctave  = 4 // log2(smallCutoff)
	numBuckets   = smallCutoff + (64-firstOctave)*subPerOctave
)

// Histogram is a log-bucketed distribution of non-negative int64
// observations (latencies in nanoseconds, cycle counts, byte sizes).
// All methods are safe for concurrent use; a nil *Histogram discards
// observations.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram not attached to a registry —
// for standalone aggregation (e.g. the load generator's latencies).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < smallCutoff {
		return int(v)
	}
	octave := bits.Len64(uint64(v)) - 1 // >= firstOctave
	sub := int((uint64(v) >> (uint(octave) - 3)) & (subPerOctave - 1))
	return smallCutoff + (octave-firstOctave)*subPerOctave + sub
}

// bucketUpper returns the inclusive upper bound of a bucket — the value
// reported for quantiles landing in it.
func bucketUpper(i int) int64 {
	if i < smallCutoff {
		return int64(i)
	}
	i -= smallCutoff
	octave := uint(firstOctave + i/subPerOctave)
	sub := int64(i % subPerOctave)
	return int64(1)<<octave + (sub+1)<<(octave-3) - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper bound on the q-quantile (q in (0,1]),
// accurate to the bucket width (≤12.5% relative error above 16) and
// clamped to the exact observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			upper := bucketUpper(i)
			if m := h.max.Load(); upper > m {
				return m
			}
			return upper
		}
	}
	return h.max.Load()
}

// QuantileDuration is Quantile for nanosecond observations.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// BucketCount is one non-empty bucket of a histogram snapshot.
type BucketCount struct {
	// Upper is the inclusive upper bound of the bucket.
	Upper int64 `json:"upper"`
	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, with
// derived quantiles, suitable for JSON encoding.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	P50     int64         `json:"p50"`
	P95     int64         `json:"p95"`
	P99     int64         `json:"p99"`
	P999    int64         `json:"p999"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state. Concurrent observations may be
// partially reflected (count, sum and buckets are read independently);
// the snapshot is internally near-consistent, never corrupt.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	for i := 0; i < numBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Upper: bucketUpper(i), Count: c})
		}
	}
	return s
}
