package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Span is one traced boundary crossing: a proxy relay invocation, a
// batched frame flush, or a GC mirror-release transition. Spans form
// trees — a relay executing inside the enclave that proxies back out
// records the nested ocall as a child sharing the TraceID.
//
// A span is mutated only by the goroutine carrying the call, then
// published to the tracer's ring on Finish; all setters are nil-safe so
// unsampled calls cost one branch.
type Span struct {
	tracer *Tracer

	// TraceID groups every span of one cross-boundary call chain;
	// SpanID identifies this span; ParentID is 0 for roots.
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`

	// Name labels the operation (e.g. "relay KVStore.put").
	Name string `json:"name"`
	// Dir is the transition direction: "ecall" or "ocall".
	Dir string `json:"dir,omitempty"`
	// Route records the dispatcher's decision: "switchless", "full",
	// "fallback-full" (wanted switchless, pool saturated), or
	// "batched".
	Route string `json:"route,omitempty"`
	// RoutineID is the EDL routine id of the transition.
	RoutineID int `json:"routine_id,omitempty"`

	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// QueueWaitNS is time spent queued before the transition ran (the
	// oldest entry's wait for a batched flush).
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	// MarshalBytes counts argument plus result bytes serialized across
	// the boundary for this call.
	MarshalBytes int `json:"marshal_bytes,omitempty"`
	// BodyCycles is the simulated cycle cost charged by the call body
	// on the far side, excluding the transition itself.
	BodyCycles int64 `json:"body_cycles,omitempty"`
	// BatchSize is the number of coalesced calls for a batched flush.
	BatchSize int `json:"batch_size,omitempty"`
	// Node names the fabric actor that recorded this span ("router",
	// "shard-2", "shard-2/replica-0", ...). Empty for single-World runs.
	Node string `json:"node,omitempty"`
	// Epoch is the fabric table epoch observed by this hop.
	Epoch uint64 `json:"epoch,omitempty"`
	// SealedBytes counts sealed (AES-GCM) payload bytes carried by this
	// hop — checkpoint/WAL deltas for shipping spans.
	SealedBytes int `json:"sealed_bytes,omitempty"`
	// Redirect annotates a wrong-shard hop: "owner 2->1 epoch 3".
	Redirect string `json:"redirect,omitempty"`
	// Err carries the call error, if any.
	Err string `json:"err,omitempty"`
}

// SpanContext is the injectable/extractable wire form of a span's
// identity: enough to continue the trace on another World across a
// session or peer-channel frame. The zero value means "no trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether sc carries a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// Context extracts the propagation context of sp (zero when sp is nil,
// so unsampled chains inject the no-trace context for free).
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: sp.TraceID, SpanID: sp.SpanID}
}

// SetDir records the transition direction.
func (sp *Span) SetDir(in bool) {
	if sp == nil {
		return
	}
	if in {
		sp.Dir = "ecall"
	} else {
		sp.Dir = "ocall"
	}
}

// SetRoute records the dispatcher's routing decision.
func (sp *Span) SetRoute(route string) {
	if sp == nil {
		return
	}
	sp.Route = route
}

// SetRoutine records the EDL routine id.
func (sp *Span) SetRoutine(id int) {
	if sp == nil {
		return
	}
	sp.RoutineID = id
}

// AddMarshalBytes accumulates serialized boundary traffic.
func (sp *Span) AddMarshalBytes(n int) {
	if sp == nil {
		return
	}
	sp.MarshalBytes += n
}

// SetBodyCycles records the far-side body cost.
func (sp *Span) SetBodyCycles(c int64) {
	if sp == nil {
		return
	}
	sp.BodyCycles = c
}

// SetQueueWait records time spent queued before the transition.
func (sp *Span) SetQueueWait(d time.Duration) {
	if sp == nil {
		return
	}
	sp.QueueWaitNS = int64(d)
}

// SetBatchSize records the coalesced call count of a batched flush.
func (sp *Span) SetBatchSize(n int) {
	if sp == nil {
		return
	}
	sp.BatchSize = n
}

// SetNode records the fabric actor identity.
func (sp *Span) SetNode(node string) {
	if sp == nil {
		return
	}
	sp.Node = node
}

// SetEpoch records the fabric table epoch observed by this hop.
func (sp *Span) SetEpoch(e uint64) {
	if sp == nil {
		return
	}
	sp.Epoch = e
}

// SetSealedBytes records the sealed payload size carried by this hop.
func (sp *Span) SetSealedBytes(n int) {
	if sp == nil {
		return
	}
	sp.SealedBytes = n
}

// SetRedirect annotates a wrong-shard redirect hop.
func (sp *Span) SetRedirect(oldOwner, newOwner int, epoch uint64) {
	if sp == nil {
		return
	}
	sp.Redirect = "owner " + itoa(oldOwner) + "->" + itoa(newOwner) + " epoch " + utoa(epoch)
}

// itoa/utoa avoid importing fmt on the span hot path.
func itoa(v int) string {
	if v < 0 {
		return "-" + utoa(uint64(-v))
	}
	return utoa(uint64(v))
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Finish stamps the end time, records the error, and publishes the
// span into the tracer's ring buffer.
func (sp *Span) Finish(err error) {
	if sp == nil {
		return
	}
	sp.EndNS = time.Now().UnixNano()
	if err != nil {
		sp.Err = err.Error()
	}
	if sp.tracer != nil {
		sp.tracer.publish(sp)
	}
}

// Tracer samples boundary-call chains into a fixed-size lock-free ring
// of completed spans. Sampling is decided at the root of a chain; child
// spans of a sampled root are always captured.
type Tracer struct {
	ring   []atomic.Pointer[Span]
	next   atomic.Uint64 // ring write cursor
	thresh uint64        // sample iff next prng draw < thresh
	rng    atomic.Uint64 // splitmix64 state
	ids    atomic.Uint64 // span/trace id sequence
}

// NewTracer builds a tracer sampling the given fraction of roots into a
// ring of the given capacity, with a deterministic seeded sampler.
func NewTracer(sampleRate float64, buffer int, seed uint64) *Tracer {
	if buffer <= 0 {
		buffer = 256
	}
	t := &Tracer{ring: make([]atomic.Pointer[Span], buffer)}
	switch {
	case sampleRate >= 1:
		t.thresh = math.MaxUint64
	case sampleRate <= 0:
		t.thresh = 0
	default:
		t.thresh = uint64(sampleRate * float64(math.MaxUint64))
	}
	t.rng.Store(seed)
	return t
}

// splitmix64 advances the sampler state and returns the next draw. The
// additive-constant construction keeps the draw lock-free under
// concurrency while the sequence of states stays deterministic for a
// single-threaded caller (what the sampling-determinism test pins).
func (t *Tracer) splitmix64() uint64 {
	z := t.rng.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sampled draws one sampling decision. Exported for tests.
func (t *Tracer) Sampled() bool {
	if t == nil {
		return false
	}
	if t.thresh == math.MaxUint64 {
		return true
	}
	if t.thresh == 0 {
		return false
	}
	return t.splitmix64() < t.thresh
}

// StartRoot starts a root span, or returns nil if this chain is not
// sampled (or t is nil).
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil || !t.Sampled() {
		return nil
	}
	id := t.ids.Add(1)
	return &Span{
		tracer:  t,
		TraceID: id,
		SpanID:  id,
		Name:    name,
		StartNS: time.Now().UnixNano(),
	}
}

// StartRemote continues a trace that began on another World: the new
// span joins sc's trace as a child of the remote span. Sampling was
// decided at the remote root — a valid context is always captured, an
// invalid (zero) context falls back to a locally sampled root. Returns
// nil when t is nil.
func (t *Tracer) StartRemote(sc SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.StartRoot(name)
	}
	return &Span{
		tracer:   t,
		TraceID:  sc.TraceID,
		SpanID:   t.ids.Add(1),
		ParentID: sc.SpanID,
		Name:     name,
		StartNS:  time.Now().UnixNano(),
	}
}

// StartChild starts a child of parent, or returns nil when parent is
// nil — children exist only inside sampled chains.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	return &Span{
		tracer:   t,
		TraceID:  parent.TraceID,
		SpanID:   t.ids.Add(1),
		ParentID: parent.SpanID,
		Name:     name,
		StartNS:  time.Now().UnixNano(),
	}
}

// publish stores a finished span into the ring, overwriting the oldest
// slot on wraparound.
func (t *Tracer) publish(sp *Span) {
	i := t.next.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(sp)
}

// Dump returns the retained spans, oldest first (best effort under
// concurrent publishing). The returned spans are copies.
func (t *Tracer) Dump() []Span {
	if t == nil {
		return nil
	}
	n := uint64(len(t.ring))
	head := t.next.Load()
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]Span, 0, n)
	for i := start; i < head; i++ {
		if sp := t.ring[i%n].Load(); sp != nil {
			cp := *sp
			cp.tracer = nil
			out = append(out, cp)
		}
	}
	return out
}

// Len reports how many spans are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.Dump())
}
