package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Span is one traced boundary crossing: a proxy relay invocation, a
// batched frame flush, or a GC mirror-release transition. Spans form
// trees — a relay executing inside the enclave that proxies back out
// records the nested ocall as a child sharing the TraceID.
//
// A span is mutated only by the goroutine carrying the call, then
// published to the tracer's ring on Finish; all setters are nil-safe so
// unsampled calls cost one branch.
type Span struct {
	tracer *Tracer

	// TraceID groups every span of one cross-boundary call chain;
	// SpanID identifies this span; ParentID is 0 for roots.
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`

	// Name labels the operation (e.g. "relay KVStore.put").
	Name string `json:"name"`
	// Dir is the transition direction: "ecall" or "ocall".
	Dir string `json:"dir,omitempty"`
	// Route records the dispatcher's decision: "switchless", "full",
	// "fallback-full" (wanted switchless, pool saturated), or
	// "batched".
	Route string `json:"route,omitempty"`
	// RoutineID is the EDL routine id of the transition.
	RoutineID int `json:"routine_id,omitempty"`

	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// QueueWaitNS is time spent queued before the transition ran (the
	// oldest entry's wait for a batched flush).
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	// MarshalBytes counts argument plus result bytes serialized across
	// the boundary for this call.
	MarshalBytes int `json:"marshal_bytes,omitempty"`
	// BodyCycles is the simulated cycle cost charged by the call body
	// on the far side, excluding the transition itself.
	BodyCycles int64 `json:"body_cycles,omitempty"`
	// BatchSize is the number of coalesced calls for a batched flush.
	BatchSize int `json:"batch_size,omitempty"`
	// Err carries the call error, if any.
	Err string `json:"err,omitempty"`
}

// SetDir records the transition direction.
func (sp *Span) SetDir(in bool) {
	if sp == nil {
		return
	}
	if in {
		sp.Dir = "ecall"
	} else {
		sp.Dir = "ocall"
	}
}

// SetRoute records the dispatcher's routing decision.
func (sp *Span) SetRoute(route string) {
	if sp == nil {
		return
	}
	sp.Route = route
}

// SetRoutine records the EDL routine id.
func (sp *Span) SetRoutine(id int) {
	if sp == nil {
		return
	}
	sp.RoutineID = id
}

// AddMarshalBytes accumulates serialized boundary traffic.
func (sp *Span) AddMarshalBytes(n int) {
	if sp == nil {
		return
	}
	sp.MarshalBytes += n
}

// SetBodyCycles records the far-side body cost.
func (sp *Span) SetBodyCycles(c int64) {
	if sp == nil {
		return
	}
	sp.BodyCycles = c
}

// SetQueueWait records time spent queued before the transition.
func (sp *Span) SetQueueWait(d time.Duration) {
	if sp == nil {
		return
	}
	sp.QueueWaitNS = int64(d)
}

// SetBatchSize records the coalesced call count of a batched flush.
func (sp *Span) SetBatchSize(n int) {
	if sp == nil {
		return
	}
	sp.BatchSize = n
}

// Finish stamps the end time, records the error, and publishes the
// span into the tracer's ring buffer.
func (sp *Span) Finish(err error) {
	if sp == nil {
		return
	}
	sp.EndNS = time.Now().UnixNano()
	if err != nil {
		sp.Err = err.Error()
	}
	if sp.tracer != nil {
		sp.tracer.publish(sp)
	}
}

// Tracer samples boundary-call chains into a fixed-size lock-free ring
// of completed spans. Sampling is decided at the root of a chain; child
// spans of a sampled root are always captured.
type Tracer struct {
	ring   []atomic.Pointer[Span]
	next   atomic.Uint64 // ring write cursor
	thresh uint64        // sample iff next prng draw < thresh
	rng    atomic.Uint64 // splitmix64 state
	ids    atomic.Uint64 // span/trace id sequence
}

// NewTracer builds a tracer sampling the given fraction of roots into a
// ring of the given capacity, with a deterministic seeded sampler.
func NewTracer(sampleRate float64, buffer int, seed uint64) *Tracer {
	if buffer <= 0 {
		buffer = 256
	}
	t := &Tracer{ring: make([]atomic.Pointer[Span], buffer)}
	switch {
	case sampleRate >= 1:
		t.thresh = math.MaxUint64
	case sampleRate <= 0:
		t.thresh = 0
	default:
		t.thresh = uint64(sampleRate * float64(math.MaxUint64))
	}
	t.rng.Store(seed)
	return t
}

// splitmix64 advances the sampler state and returns the next draw. The
// additive-constant construction keeps the draw lock-free under
// concurrency while the sequence of states stays deterministic for a
// single-threaded caller (what the sampling-determinism test pins).
func (t *Tracer) splitmix64() uint64 {
	z := t.rng.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sampled draws one sampling decision. Exported for tests.
func (t *Tracer) Sampled() bool {
	if t == nil {
		return false
	}
	if t.thresh == math.MaxUint64 {
		return true
	}
	if t.thresh == 0 {
		return false
	}
	return t.splitmix64() < t.thresh
}

// StartRoot starts a root span, or returns nil if this chain is not
// sampled (or t is nil).
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil || !t.Sampled() {
		return nil
	}
	id := t.ids.Add(1)
	return &Span{
		tracer:  t,
		TraceID: id,
		SpanID:  id,
		Name:    name,
		StartNS: time.Now().UnixNano(),
	}
}

// StartChild starts a child of parent, or returns nil when parent is
// nil — children exist only inside sampled chains.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	return &Span{
		tracer:   t,
		TraceID:  parent.TraceID,
		SpanID:   t.ids.Add(1),
		ParentID: parent.SpanID,
		Name:     name,
		StartNS:  time.Now().UnixNano(),
	}
}

// publish stores a finished span into the ring, overwriting the oldest
// slot on wraparound.
func (t *Tracer) publish(sp *Span) {
	i := t.next.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(sp)
}

// Dump returns the retained spans, oldest first (best effort under
// concurrent publishing). The returned spans are copies.
func (t *Tracer) Dump() []Span {
	if t == nil {
		return nil
	}
	n := uint64(len(t.ring))
	head := t.next.Load()
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]Span, 0, n)
	for i := start; i < head; i++ {
		if sp := t.ring[i%n].Load(); sp != nil {
			cp := *sp
			cp.tracer = nil
			out = append(out, cp)
		}
	}
	return out
}

// Len reports how many spans are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.Dump())
}
