package serve

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// TestServeTelemetryCollector drives a session against an instrumented
// gateway and asserts the collector absorbs the serving counters —
// including a typed rejection reason — into the shared registry.
func TestServeTelemetryCollector(t *testing.T) {
	tel := telemetry.New(telemetry.Options{TraceSampleRate: 1, TraceBuffer: 256})
	wopts := world.DefaultOptions()
	wopts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), wopts)
	if err != nil {
		t.Fatalf("build world: %v", err)
	}
	platform := sgx.NewPlatformFromSeed([]byte("serve-telemetry-test"))
	srv, err := New(Options{World: w, Platform: platform, Telemetry: tel})
	if err != nil {
		w.Close()
		t.Fatalf("new server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.Close()
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("shutdown: %v", err)
		}
		<-done
		w.Close()
	}()

	c, err := Dial(ln.Addr().String(), ClientConfig{Platform: platform, Measurement: srv.Measurement()})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	store, err := c.New(demo.KVStoreCls)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	if _, err := c.Call(store, "put", wire.Str("k"), wire.Str("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := c.Release(store); err != nil {
		t.Fatalf("release: %v", err)
	}
	// A released handle is foreign: this is the typed rejection the
	// reason-labelled counter must expose.
	if _, err := c.Call(store, "size"); err == nil {
		t.Fatal("call on released handle succeeded")
	}

	snap := tel.Registry().Snapshot()
	st := srv.Stats()
	if got := snap.Counters["montsalvat_serve_sessions_total"]; got != st.SessionsTotal {
		t.Fatalf("sessions metric = %d, server says %d", got, st.SessionsTotal)
	}
	if got := snap.Counters["montsalvat_serve_requests_total"]; got == 0 || got != st.Requests {
		t.Fatalf("requests metric = %d, server says %d", got, st.Requests)
	}
	if got := snap.Counters[`montsalvat_serve_rejected_total{reason="foreign_ref"}`]; got != 1 {
		t.Fatalf("foreign_ref rejections = %d, want 1", got)
	}
	// All declared reasons stay visible even at zero, so dashboards can
	// reference them before the first incident.
	for _, reason := range []string{"overloaded", "draining", "deadline", "session_limit", "session_busy"} {
		key := `montsalvat_serve_rejected_total{reason="` + reason + `"}`
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("missing rejection reason series %s", key)
		}
	}
	if snap.Histograms["montsalvat_serve_handshake_ns"].Count == 0 {
		t.Fatal("handshake latency histogram empty")
	}
	hr := snap.Histograms["montsalvat_serve_request_ns"]
	if hr.Count == 0 || hr.Count != st.Requests {
		t.Fatalf("request latency histogram count = %d, requests = %d", hr.Count, st.Requests)
	}

	var sb strings.Builder
	if err := tel.Registry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		`montsalvat_serve_rejected_total{reason="foreign_ref"} 1`,
		"montsalvat_serve_sessions_active",
		"montsalvat_serve_request_ns_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
