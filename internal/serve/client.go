package serve

import (
	"bufio"
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// ClientConfig configures Dial.
type ClientConfig struct {
	// Platform verifies the server's attestation quote. Required; must
	// share the attestation key with the gateway (same seed).
	Platform *sgx.Platform
	// Measurement is the expected enclave measurement. The handshake
	// fails unless the quote carries exactly this identity — connecting
	// to the wrong (or tampered) enclave is an error, not a downgrade.
	Measurement [32]byte
	// DialTimeout bounds connection + handshake (default 10s).
	DialTimeout time.Duration
	// RequestTimeout is the default per-request deadline, propagated to
	// the server as the request budget (default 30s).
	RequestTimeout time.Duration
}

// Handle names a server-side object owned by this client's session.
// The zero Handle is invalid.
type Handle struct {
	Class string
	ID    int64
}

// Value renders the handle as a wire ref for use in request arguments.
func (h Handle) Value() wire.Value { return wire.Ref(h.Class, h.ID) }

// AsHandle extracts a Handle from a result value that is an object ref.
func AsHandle(v wire.Value) (Handle, bool) {
	class, id, ok := v.AsRef()
	if !ok {
		return Handle{}, false
	}
	return Handle{Class: class, ID: id}, true
}

// Client is one attested gateway session. It is safe for concurrent
// use: calls are demultiplexed by request id, so many goroutines can
// issue requests over the single connection.
type Client struct {
	cfg       ClientConfig
	conn      net.Conn
	rd        *bufio.Reader // owns all reads from conn
	sessionID int64

	writeMu sync.Mutex // serialises frame writes and the send counter
	ciph    *sessionCipher
	sendBuf []byte // reusable sealed-frame buffer, guarded by writeMu

	mu      sync.Mutex
	pending map[int64]chan response
	readErr error
	closed  bool

	seq atomic.Int64
}

// Dial connects to a gateway, runs the attestation handshake, and
// verifies the enclave identity before any request can be issued.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("%w: ClientConfig.Platform is required", ErrHandshake)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, conn: conn, rd: bufio.NewReaderSize(conn, 4096), pending: make(map[int64]chan response)}
	if err := c.handshake(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// handshake is the client side of the attested key exchange; see
// Server.handshake for the message flow.
func (c *Client) handshake() error {
	deadline := time.Now().Add(c.cfg.DialTimeout)
	_ = c.conn.SetDeadline(deadline)
	defer c.conn.SetDeadline(time.Time{})

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return fmt.Errorf("%w: keygen: %v", ErrHandshake, err)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("%w: nonce: %v", ErrHandshake, err)
	}
	clientPub := priv.PublicKey().Bytes()
	if _, err := writeFrame(c.conn, encodeHello(clientPub, nonce)); err != nil {
		return fmt.Errorf("%w: hello: %v", ErrHandshake, err)
	}

	buf, err := readFrame(c.rd)
	if err != nil {
		return fmt.Errorf("%w: attest: %v", ErrHandshake, err)
	}
	serverPub, quote, err := decodeAttest(buf)
	if err != nil {
		return err
	}
	// The quote must (a) verify under the shared platform against the
	// expected measurement and (b) carry report data hashing exactly
	// this handshake's transcript — otherwise it could be a replay of a
	// quote issued for someone else's session.
	if err := c.cfg.Platform.Verify(quote, c.cfg.Measurement); err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	wantReport := transcriptHash(clientPub, serverPub, nonce)
	if !bytes.Equal(quote.ReportData, wantReport) {
		return fmt.Errorf("%w: quote not bound to this session", ErrHandshake)
	}

	peer, err := ecdh.X25519().NewPublicKey(serverPub)
	if err != nil {
		return fmt.Errorf("%w: server key: %v", ErrHandshake, err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return fmt.Errorf("%w: ecdh: %v", ErrHandshake, err)
	}
	c.ciph, err = newSessionCipher(sessionKey(shared, wantReport), true)
	if err != nil {
		return fmt.Errorf("%w: cipher: %v", ErrHandshake, err)
	}

	if _, err := writeFrame(c.conn, c.ciph.seal(encodeAck())); err != nil {
		return fmt.Errorf("%w: ack: %v", ErrHandshake, err)
	}
	buf, err = readFrame(c.rd)
	if err != nil {
		return fmt.Errorf("%w: ready: %v", ErrHandshake, err)
	}
	plain, err := c.ciph.open(buf)
	if err != nil {
		return err
	}
	c.sessionID, err = decodeReady(plain)
	return err
}

// SessionID returns the server-assigned session identifier.
func (c *Client) SessionID() int64 { return c.sessionID }

// readLoop demultiplexes responses to their waiting callers.
func (c *Client) readLoop() {
	for {
		payload, err := readFrame(c.rd)
		if err != nil {
			c.fail(err)
			return
		}
		plain, err := c.ciph.open(payload)
		if err != nil {
			c.fail(err)
			return
		}
		resp, err := decodeResponse(plain)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.id]
		if ok {
			delete(c.pending, resp.id)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail poisons the client: every pending and future call observes err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	stale := c.pending
	c.pending = make(map[int64]chan response)
	c.mu.Unlock()
	for _, ch := range stale {
		close(ch)
	}
}

// Close tears down the session. The server releases every object the
// session owns through its GC-release path.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// roundTrip issues one request and waits for its response or timeout.
func (c *Client) roundTrip(req request) (response, error) {
	req.id = c.seq.Add(1)
	if req.budget <= 0 {
		req.budget = c.cfg.RequestTimeout
	}
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return response{}, err
	}
	c.pending[req.id] = ch
	c.mu.Unlock()

	plain := encodeRequest(req)
	c.writeMu.Lock()
	frame, err := c.ciph.sealFrame(c.sendBuf, plain)
	c.sendBuf = frame
	if err == nil {
		_, err = c.conn.Write(frame)
	}
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.id)
		c.mu.Unlock()
		return response{}, err
	}

	// Wait a little past the propagated budget so a server-side
	// deadline rejection can arrive as a typed response.
	timer := time.NewTimer(req.budget + 2*time.Second)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return response{}, err
		}
		return resp, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, req.id)
		c.mu.Unlock()
		return response{}, ErrDeadline
	}
}

// call is the shared request path; timeout zero uses the default.
func (c *Client) call(req request, timeout time.Duration) (wire.Value, error) {
	req.budget = timeout
	resp, err := c.roundTrip(req)
	if err != nil {
		return wire.Value{}, err
	}
	if err := resp.err(); err != nil {
		return wire.Value{}, err
	}
	return resp.result, nil
}

// New instantiates a served class and returns the session-scoped handle.
func (c *Client) New(class string, args ...wire.Value) (Handle, error) {
	v, err := c.call(request{op: opNew, class: class, args: args}, 0)
	if err != nil {
		return Handle{}, err
	}
	h, ok := AsHandle(v)
	if !ok {
		return Handle{}, fmt.Errorf("%w: new returned %v", ErrBadRequest, v.Kind())
	}
	return h, nil
}

// Call invokes a method on a session-owned object. Result refs come
// back as handles (extract with AsHandle).
func (c *Client) Call(h Handle, method string, args ...wire.Value) (wire.Value, error) {
	return c.call(request{op: opCall, handle: h.ID, method: method, args: args}, 0)
}

// CallTimeout is Call with an explicit deadline budget, propagated to
// the server.
func (c *Client) CallTimeout(timeout time.Duration, h Handle, method string, args ...wire.Value) (wire.Value, error) {
	return c.call(request{op: opCall, handle: h.ID, method: method, args: args}, timeout)
}

// CallCtx is CallTimeout carrying the caller's trace context: the
// gateway continues sc's trace across the session frame, so a span
// started client-side (the fabric router's route span) and the server's
// serve/exec spans share one trace ID. A zero sc is exactly CallTimeout.
func (c *Client) CallCtx(sc telemetry.SpanContext, timeout time.Duration, h Handle, method string, args ...wire.Value) (wire.Value, error) {
	return c.call(request{op: opCall, trace: sc, handle: h.ID, method: method, args: args}, timeout)
}

// Bind resolves a server-exported name (Server.Export) to a
// session-scoped handle. This is how a client reaches well-known
// objects it did not create — in particular after the gateway recovered
// from an enclave crash, when every pre-crash handle is gone and the
// recovered objects are reachable only by their exported names.
func (c *Client) Bind(name string) (Handle, error) {
	v, err := c.call(request{op: opBind, class: name}, 0)
	if err != nil {
		return Handle{}, err
	}
	h, ok := AsHandle(v)
	if !ok {
		return Handle{}, fmt.Errorf("%w: bind returned %v", ErrBadRequest, v.Kind())
	}
	return h, nil
}

// Release drops a handle; the server unpins the object so the next GC
// sweep reclaims it.
func (c *Client) Release(h Handle) error {
	_, err := c.call(request{op: opRelease, handle: h.ID}, 0)
	return err
}

// Ping round-trips an empty request through admission control.
func (c *Client) Ping() error {
	_, err := c.call(request{op: opPing}, 0)
	return err
}
