package serve

import "sync"

// workerPool executes admitted requests on a fixed set of resident
// goroutines — the gateway's parallel execution engine. The pool is
// sized to the admission cap (MaxInFlight), so every admitted request
// finds a worker without per-request goroutine churn, and requests from
// different sessions execute their proxy calls genuinely in parallel
// through the world's sharded registries and object tables.
type workerPool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{tasks: make(chan func())}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// submit hands one task to a worker, blocking until one receives it.
// Admission bounds concurrent requests to the pool size, so a submitted
// task waits only for an already-admitted request to finish. Blocking
// the session's read loop here is the gateway's documented back-pressure.
func (p *workerPool) submit(fn func()) { p.tasks <- fn }

// stop closes the pool and waits for the workers to exit. Callers must
// guarantee no further submits (the gateway stops after every session
// loop has finished).
func (p *workerPool) stop() {
	close(p.tasks)
	p.wg.Wait()
}
