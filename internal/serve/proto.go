// Package serve implements the enclave gateway: a network serving layer
// that multiplexes many remote clients onto one partitioned World.
//
// Montsalvat's proxy/mirror protocol (paper §5.2) shields a single
// co-located untrusted image; the gateway generalises it to remote,
// mutually distrusting clients. Each TCP connection runs an attestation
// handshake on connect — the client verifies an SGX quote over the
// session key exchange, binding the channel to the enclave measurement —
// and then speaks length-prefixed, AEAD-sealed frames carrying requests
// against the world's application classes. Every session owns a private
// handle namespace (registry.Namespace), so one client's proxies can
// neither collide with nor leak into another's, and session teardown
// releases all of the session's objects through the existing GC-release
// path. Requests fan in through the world's boundary dispatch layer, so
// cross-session transition batching and switchless routing apply to
// served traffic. Admission control (bounded in-flight, per-session and
// global limits, deadline propagation, graceful drain) makes overload
// degrade into typed ErrOverloaded/ErrDraining rejections instead of
// collapse.
package serve

import (
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// Protocol identifiers. The version tag is baked into every magic so a
// future incompatible revision fails the handshake instead of
// misparsing.
const (
	msgHello  = "msv/hello/1"
	msgAttest = "msv/attest/1"
	msgReject = "msv/reject/1"
	msgAck    = "msv/ack/1"
	msgReady  = "msv/ready/1"

	// kxLabel salts the transcript hash that becomes the quote's report
	// data, binding the session key exchange to the enclave identity.
	kxLabel = "msv/kx/1"
	// keyLabel salts session-key derivation from the ECDH shared secret.
	keyLabel = "msv/session-key/1"
)

// Request operations.
const (
	opNew     = "new"
	opCall    = "call"
	opRelease = "release"
	opPing    = "ping"
	opBind    = "bind"
)

// Response status codes. statusErr maps them onto the package's typed
// errors client-side.
const (
	statusOK         = "ok"
	statusOverloaded = "overloaded"
	statusDraining   = "draining"
	statusRecovering = "recovering"
	statusDeadline   = "deadline"
	statusForeignRef = "foreign-ref"
	statusBadRequest = "bad-request"
	statusAppError   = "app-error"
	statusSession    = "session-limit"
	statusWrongShard = "wrong-shard"
)

// maxFrameBytes bounds one length-prefixed frame; the decoder rejects
// larger announcements before allocating (served traffic is adversarial).
const maxFrameBytes = 1 << 20

// Typed gateway errors. Server-side rejections travel as status codes
// and resurface client-side as these sentinels (wrapped with detail).
var (
	// ErrOverloaded rejects a request that found the bounded in-flight
	// queue full: the gateway is saturated; retry with backoff.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDraining rejects work arriving while the gateway shuts down.
	ErrDraining = errors.New("serve: draining")
	// ErrRecovering rejects work arriving while the gateway restores its
	// enclave from durable state (Server.Recover). Unlike ErrDraining the
	// gateway is coming back: reconnect and retry shortly. Existing
	// sessions are invalidated — their keys and handles died with the old
	// enclave — so recovery surfaces client-side as a dropped connection
	// or this error, and the remedy is a fresh Dial.
	ErrRecovering = errors.New("serve: recovering; retry shortly")
	// ErrDeadline rejects a request whose propagated deadline expired
	// before (or while) it could be served.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrForeignRef rejects a handle the requesting session does not
	// own — the cross-session isolation boundary.
	ErrForeignRef = errors.New("serve: foreign object handle")
	// ErrBadRequest rejects malformed or out-of-surface requests.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrSessionLimit rejects a connection beyond MaxSessions.
	ErrSessionLimit = errors.New("serve: session limit reached")
	// ErrHandshake covers attestation-handshake failures: forged or
	// mismatched quotes, wrong platform, malformed hellos.
	ErrHandshake = errors.New("serve: attestation handshake failed")
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("serve: connection closed")
	// ErrWrongShard rejects a request whose key this gateway does not
	// own: in a sharded fabric, the routing redirect. The concrete error
	// is a *WrongShardError naming the owning shard and the routing-table
	// epoch the rejecting gateway was configured with; clients refresh
	// their routing table and retry toward the owner (with a redirect
	// cap, so a stale or disagreeing topology cannot loop forever).
	ErrWrongShard = errors.New("serve: wrong shard")
)

// WrongShardError is the typed redirect behind ErrWrongShard. It
// travels as a wire status plus a structured message and is rebuilt
// client-side, so errors.As works across the connection.
type WrongShardError struct {
	// Owner is the shard ID that owns the rejected key.
	Owner int
	// Epoch is the routing-table epoch of the rejecting gateway. A
	// client holding a lower epoch knows its table is stale.
	Epoch uint64
}

func (e *WrongShardError) Error() string {
	return fmt.Sprintf("serve: wrong shard: owner=%d epoch=%d", e.Owner, e.Epoch)
}

// Unwrap makes errors.Is(err, ErrWrongShard) hold for the typed form.
func (e *WrongShardError) Unwrap() error { return ErrWrongShard }

// wrongShardMessage is the wire message for a wrong-shard rejection;
// parseWrongShard rebuilds the typed error client-side.
func wrongShardMessage(e *WrongShardError) string {
	return fmt.Sprintf("owner=%d epoch=%d", e.Owner, e.Epoch)
}

// errMessage renders the wire message for a server-side error:
// structured for wrong-shard redirects (so the client rebuilds the
// typed form and can extract the owner), plain text otherwise.
func errMessage(err error) string {
	var ws *WrongShardError
	if errors.As(err, &ws) {
		return wrongShardMessage(ws)
	}
	return err.Error()
}

func parseWrongShard(message string) error {
	var e WrongShardError
	if _, err := fmt.Sscanf(message, "owner=%d epoch=%d", &e.Owner, &e.Epoch); err != nil {
		// Malformed detail: still a wrong-shard rejection, just without
		// a usable redirect target.
		return fmt.Errorf("%w: %s", ErrWrongShard, message)
	}
	return &e
}

// statusErr maps a rejection status to its sentinel.
func statusErr(status string) error {
	switch status {
	case statusOverloaded:
		return ErrOverloaded
	case statusDraining:
		return ErrDraining
	case statusRecovering:
		return ErrRecovering
	case statusDeadline:
		return ErrDeadline
	case statusForeignRef:
		return ErrForeignRef
	case statusBadRequest:
		return ErrBadRequest
	case statusSession:
		return ErrSessionLimit
	case statusWrongShard:
		return ErrWrongShard
	default:
		return nil
	}
}

// errStatus maps a server-side execution error to its wire status.
func errStatus(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return statusOverloaded
	case errors.Is(err, ErrDraining):
		return statusDraining
	case errors.Is(err, ErrRecovering):
		return statusRecovering
	case errors.Is(err, ErrDeadline):
		return statusDeadline
	case errors.Is(err, ErrForeignRef):
		return statusForeignRef
	case errors.Is(err, ErrBadRequest):
		return statusBadRequest
	case errors.Is(err, ErrSessionLimit):
		return statusSession
	case errors.Is(err, ErrWrongShard):
		return statusWrongShard
	default:
		return statusAppError
	}
}

// AppError carries an application-level failure (the served method
// returned an error) back to the client, distinct from gateway
// rejections.
type AppError struct{ Msg string }

func (e *AppError) Error() string { return "serve: application error: " + e.Msg }

// ---- frame I/O --------------------------------------------------------

// writeFrame writes one length-prefixed frame and returns the bytes put
// on the wire. Header and payload go out in a single Write so each frame
// costs one syscall on an unbuffered conn.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	if len(payload) > maxFrameBytes {
		return 0, fmt.Errorf("%w: frame of %d bytes", ErrBadRequest, len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// readFrame reads one length-prefixed frame, rejecting oversized
// announcements before allocating.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ---- session channel crypto ------------------------------------------

// sessionCipher seals post-handshake frames with the session key
// (AES-256-GCM). Nonces are direction-tagged counters, never
// transmitted: both sides keep strictly ordered send/receive counters,
// which doubles as replay and reordering protection. The sender must be
// externally serialised (the connection write lock); the receiver is the
// single read loop.
type sessionCipher struct {
	aead    cipher.AEAD
	sendDir byte
	recvDir byte
	sendCtr uint64
	recvCtr uint64
}

// Directions: client→server frames use dir 1, server→client dir 2.
const (
	dirClient byte = 1
	dirServer byte = 2
)

func newSessionCipher(key [32]byte, client bool) (*sessionCipher, error) {
	aead, err := sgx.NewChannelAEAD(key)
	if err != nil {
		return nil, err
	}
	c := &sessionCipher{aead: aead, sendDir: dirServer, recvDir: dirClient}
	if client {
		c.sendDir, c.recvDir = dirClient, dirServer
	}
	return c, nil
}

func nonceFor(dir byte, ctr uint64) []byte {
	nonce := make([]byte, 12)
	nonce[0] = dir
	binary.BigEndian.PutUint64(nonce[4:], ctr)
	return nonce
}

// seal encrypts one outbound frame payload.
func (c *sessionCipher) seal(plain []byte) []byte {
	nonce := nonceFor(c.sendDir, c.sendCtr)
	c.sendCtr++
	return c.aead.Seal(nil, nonce, plain, nil)
}

// sealFrame encrypts one outbound payload directly into a reusable
// wire-frame buffer ([4-byte length][sealed payload]) and returns it,
// growing buf as needed. The caller owns buf's reuse discipline (the
// connection write lock).
func (c *sessionCipher) sealFrame(buf, plain []byte) ([]byte, error) {
	var nonce [12]byte
	nonce[0] = c.sendDir
	binary.BigEndian.PutUint64(nonce[4:], c.sendCtr)
	c.sendCtr++
	buf = append(buf[:0], 0, 0, 0, 0)
	buf = c.aead.Seal(buf, nonce[:], plain, nil)
	if len(buf)-4 > maxFrameBytes {
		return buf[:0], fmt.Errorf("%w: frame of %d bytes", ErrBadRequest, len(buf)-4)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf, nil
}

// open decrypts the next inbound frame payload in order, in place.
func (c *sessionCipher) open(sealed []byte) ([]byte, error) {
	nonce := nonceFor(c.recvDir, c.recvCtr)
	plain, err := c.aead.Open(sealed[:0], nonce, sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: frame auth: %v", ErrHandshake, err)
	}
	c.recvCtr++
	return plain, nil
}

// sessionKey derives the channel key from the ECDH shared secret and the
// attested transcript hash, so the key is bound to the quoted identity.
func sessionKey(shared, reportData []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte(keyLabel))
	h.Write(shared)
	h.Write(reportData)
	var key [32]byte
	copy(key[:], h.Sum(nil))
	return key
}

// transcriptHash computes the handshake transcript digest used as quote
// report data: it binds both key-exchange public keys and the client
// nonce, so the quote attests this session's channel, not a replayed
// one.
func transcriptHash(clientPub, serverPub, nonce []byte) []byte {
	h := sha256.New()
	h.Write([]byte(kxLabel))
	h.Write(clientPub)
	h.Write(serverPub)
	h.Write(nonce)
	return h.Sum(nil)
}

// ---- handshake messages ----------------------------------------------

func encodeHello(pub, nonce []byte) []byte {
	return wire.MarshalList([]wire.Value{wire.Str(msgHello), wire.Bytes(pub), wire.Bytes(nonce)})
}

func decodeHello(buf []byte) (pub, nonce []byte, err error) {
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) != 3 {
		return nil, nil, fmt.Errorf("%w: malformed hello", ErrHandshake)
	}
	magic, _ := vs[0].AsStr()
	if magic != msgHello {
		return nil, nil, fmt.Errorf("%w: unexpected message %q", ErrHandshake, magic)
	}
	pub, ok1 := vs[1].AsBytes()
	nonce, ok2 := vs[2].AsBytes()
	if !ok1 || !ok2 || len(pub) == 0 || len(nonce) == 0 {
		return nil, nil, fmt.Errorf("%w: malformed hello", ErrHandshake)
	}
	return pub, nonce, nil
}

func encodeAttest(serverPub []byte, q sgx.Quote) []byte {
	return wire.MarshalList([]wire.Value{
		wire.Str(msgAttest),
		wire.Bytes(serverPub),
		wire.Bytes(q.Measurement[:]),
		wire.Bytes(q.MRSigner[:]),
		wire.Bytes(q.ReportData),
		wire.Bytes(q.MAC[:]),
	})
}

func decodeAttest(buf []byte) (serverPub []byte, q sgx.Quote, err error) {
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) != 6 {
		return nil, sgx.Quote{}, fmt.Errorf("%w: malformed attestation", ErrHandshake)
	}
	magic, _ := vs[0].AsStr()
	if magic == msgReject {
		// The server refused before attesting (draining, session limit).
		status, _ := vs[1].AsStr()
		if serr := statusErr(status); serr != nil {
			return nil, sgx.Quote{}, serr
		}
		return nil, sgx.Quote{}, fmt.Errorf("%w: rejected (%s)", ErrHandshake, status)
	}
	if magic != msgAttest {
		return nil, sgx.Quote{}, fmt.Errorf("%w: unexpected message %q", ErrHandshake, magic)
	}
	serverPub, _ = vs[1].AsBytes()
	meas, _ := vs[2].AsBytes()
	signer, _ := vs[3].AsBytes()
	report, _ := vs[4].AsBytes()
	mac, _ := vs[5].AsBytes()
	if len(serverPub) == 0 || len(meas) != 32 || len(signer) != 32 || len(mac) != 32 {
		return nil, sgx.Quote{}, fmt.Errorf("%w: malformed attestation", ErrHandshake)
	}
	copy(q.Measurement[:], meas)
	copy(q.MRSigner[:], signer)
	copy(q.MAC[:], mac)
	q.ReportData = report
	return serverPub, q, nil
}

// encodeReject is the plaintext pre-attestation refusal (draining or
// session limit): the server cannot yet seal frames for this client.
func encodeReject(status string) []byte {
	// Padded to the attest arity so decodeAttest can parse either shape.
	return wire.MarshalList([]wire.Value{
		wire.Str(msgReject), wire.Str(status), wire.Null(), wire.Null(), wire.Null(), wire.Null(),
	})
}

func encodeAck() []byte {
	return wire.MarshalList([]wire.Value{wire.Str(msgAck)})
}

func decodeAck(buf []byte) error {
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) != 1 {
		return fmt.Errorf("%w: malformed ack", ErrHandshake)
	}
	if magic, _ := vs[0].AsStr(); magic != msgAck {
		return fmt.Errorf("%w: unexpected message", ErrHandshake)
	}
	return nil
}

func encodeReady(sessionID int64) []byte {
	return wire.MarshalList([]wire.Value{wire.Str(msgReady), wire.Int(sessionID)})
}

func decodeReady(buf []byte) (int64, error) {
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) != 2 {
		return 0, fmt.Errorf("%w: malformed ready", ErrHandshake)
	}
	if magic, _ := vs[0].AsStr(); magic != msgReady {
		return 0, fmt.Errorf("%w: unexpected message", ErrHandshake)
	}
	id, _ := vs[1].AsInt()
	return id, nil
}

// ---- requests and responses ------------------------------------------

// request is one decoded client operation.
type request struct {
	id     int64
	op     string
	budget time.Duration         // remaining deadline budget propagated by the client
	trace  telemetry.SpanContext // caller's span context; zero = no trace
	class  string                // opNew
	handle int64                 // opCall / opRelease receiver
	method string                // opCall
	args   []wire.Value          // refs are session handles, not world hashes
}

func encodeRequest(r request) []byte {
	vs := []wire.Value{
		wire.Int(r.id), wire.Str(r.op), wire.Int(int64(r.budget / time.Millisecond)),
		wire.Int(int64(r.trace.TraceID)), wire.Int(int64(r.trace.SpanID)),
	}
	switch r.op {
	case opNew:
		vs = append(vs, wire.Str(r.class), wire.List(r.args...))
	case opCall:
		vs = append(vs, wire.Int(r.handle), wire.Str(r.method), wire.List(r.args...))
	case opRelease:
		vs = append(vs, wire.Int(r.handle))
	case opBind:
		vs = append(vs, wire.Str(r.class)) // the export name
	}
	return wire.MarshalList(vs)
}

func decodeRequest(buf []byte) (request, error) {
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) < 5 {
		return request{}, fmt.Errorf("%w: malformed request", ErrBadRequest)
	}
	var r request
	id, ok := vs[0].AsInt()
	if !ok {
		return request{}, fmt.Errorf("%w: request id", ErrBadRequest)
	}
	r.id = id
	r.op, _ = vs[1].AsStr()
	budget, _ := vs[2].AsInt()
	r.budget = time.Duration(budget) * time.Millisecond
	traceID, _ := vs[3].AsInt()
	spanID, _ := vs[4].AsInt()
	r.trace = telemetry.SpanContext{TraceID: uint64(traceID), SpanID: uint64(spanID)}
	rest := vs[5:]
	argList := func(v wire.Value) ([]wire.Value, error) {
		args, ok := v.AsList()
		if !ok {
			return nil, fmt.Errorf("%w: argument vector", ErrBadRequest)
		}
		return args, nil
	}
	switch r.op {
	case opNew:
		if len(rest) != 2 {
			return r, fmt.Errorf("%w: new arity", ErrBadRequest)
		}
		r.class, _ = rest[0].AsStr()
		if r.args, err = argList(rest[1]); err != nil {
			return r, err
		}
	case opCall:
		if len(rest) != 3 {
			return r, fmt.Errorf("%w: call arity", ErrBadRequest)
		}
		r.handle, _ = rest[0].AsInt()
		r.method, _ = rest[1].AsStr()
		if r.args, err = argList(rest[2]); err != nil {
			return r, err
		}
	case opRelease:
		if len(rest) != 1 {
			return r, fmt.Errorf("%w: release arity", ErrBadRequest)
		}
		r.handle, _ = rest[0].AsInt()
	case opBind:
		if len(rest) != 1 {
			return r, fmt.Errorf("%w: bind arity", ErrBadRequest)
		}
		r.class, _ = rest[0].AsStr()
	case opPing:
	default:
		return r, fmt.Errorf("%w: unknown op %q", ErrBadRequest, r.op)
	}
	return r, nil
}

// response is one server reply.
type response struct {
	id      int64
	status  string
	result  wire.Value // statusOK
	message string     // rejections and app errors
}

func encodeResponse(r response) []byte {
	payload := r.result
	if r.status != statusOK {
		payload = wire.Str(r.message)
	}
	return wire.MarshalList([]wire.Value{wire.Int(r.id), wire.Str(r.status), payload})
}

func decodeResponse(buf []byte) (response, error) {
	vs, err := wire.UnmarshalList(buf)
	if err != nil || len(vs) != 3 {
		return response{}, fmt.Errorf("serve: malformed response")
	}
	var r response
	r.id, _ = vs[0].AsInt()
	r.status, _ = vs[1].AsStr()
	if r.status == statusOK {
		r.result = vs[2]
	} else {
		r.message, _ = vs[2].AsStr()
	}
	return r, nil
}

// err converts a non-OK response into the matching typed error.
func (r response) err() error {
	if r.status == statusOK {
		return nil
	}
	if r.status == statusWrongShard {
		return parseWrongShard(r.message)
	}
	if serr := statusErr(r.status); serr != nil {
		if r.message != "" {
			return fmt.Errorf("%w: %s", serr, r.message)
		}
		return serr
	}
	return &AppError{Msg: r.message}
}
