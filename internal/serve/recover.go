package serve

import (
	"context"
	"fmt"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// Mutation describes one successfully executed state-changing request,
// handed to Options.Journal before the client sees the OK. Args are the
// world-level (imported) argument values — object refs carry world
// hashes, which die with the enclave, so journalers that need replay
// across restarts should log only value-typed arguments (the demo
// KVStore journal does exactly that).
type Mutation struct {
	// Op is MutationNew or MutationCall.
	Op string
	// Class is the instantiated class (new) or the receiver's class
	// (call).
	Class string
	// Method is the invoked method (empty for new).
	Method string
	// Args are the world-level argument values.
	Args []wire.Value
	// Trace is the request's propagated span context (zero when the
	// request was untraced): journalers that do further cross-World work
	// on the ack path — checkpoint shipping — continue the trace with it.
	Trace telemetry.SpanContext
}

// Mutation.Op values, matching the wire ops that produced them.
const (
	MutationNew  = opNew
	MutationCall = opCall
)

// Export registers (or, with a nil provider, removes) a named binding:
// a well-known server-side object clients resolve with Client.Bind. The
// provider runs inside an untrusted Exec frame per bind request and
// returns the world ref to hand out.
//
// Bindings are the re-entry point after recovery: session handles die
// with the enclave, so a reconnecting client binds the name again and
// the provider — re-pointed at the recovered object by the restore
// callback — hands it the new incarnation.
func (srv *Server) Export(name string, provider func(env classmodel.Env) (wire.Value, error)) {
	srv.exportsMu.Lock()
	defer srv.exportsMu.Unlock()
	if provider == nil {
		delete(srv.exports, name)
		return
	}
	srv.exports[name] = provider
}

func (srv *Server) lookupExport(name string) func(env classmodel.Env) (wire.Value, error) {
	srv.exportsMu.RLock()
	defer srv.exportsMu.RUnlock()
	return srv.exports[name]
}

// Recover takes the gateway through an enclave crash/recovery cycle
// without stopping the process:
//
//  1. New requests and handshakes are rejected with statusRecovering
//     (clients see ErrRecovering: reconnect and retry, unlike the
//     terminal ErrDraining).
//  2. In-flight requests drain, bounded by ctx — they run against the
//     old enclave, which is still alive.
//  3. Every session is invalidated and its connection closed: session
//     keys and handles are bound to the dead enclave incarnation, so
//     they cannot be resumed, only re-established. Session teardown
//     skips the GC-release path (the objects die with the enclave).
//  4. restore runs: the caller kills and restarts the world, recovers
//     durable state through internal/persist, and re-points its
//     exported bindings at the recovered objects.
//  5. The gateway reopens: handshakes attest the new enclave, clients
//     re-bind their objects by name.
//
// If the drain deadline expires before restore starts, the world is
// untouched and the gateway reopens (the crash-recovery cycle simply
// did not happen). If restore itself fails the gateway stays in the
// recovering state — there is no consistent world to serve — and
// Recover may be called again to retry.
func (srv *Server) Recover(ctx context.Context, restore func() error) error {
	srv.recoverMu.Lock()
	defer srv.recoverMu.Unlock()
	if srv.draining.Load() {
		return ErrClosed
	}
	start := time.Now()
	srv.recovering.Store(true)
	srv.events.Emit(telemetry.EventDrain, srv.opts.Node, 0, "recovery drain")
	// Barrier: after this, every request observes recovering before it
	// could join reqWG, so the Wait below cannot race an Add.
	srv.drainMu.Lock()
	srv.drainMu.Unlock() //nolint:staticcheck // empty critical section is the barrier

	done := make(chan struct{})
	go func() {
		srv.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Nothing was torn down yet: abort the cycle and keep serving.
		srv.recovering.Store(false)
		return fmt.Errorf("serve: recovery drain: %w", ctx.Err())
	}

	// Invalidate every session. The dead mark makes teardown skip the
	// GC-release path even after recovering clears — these handles
	// belong to the old enclave no matter when the loop goroutine gets
	// around to exiting.
	srv.mu.Lock()
	open := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		open = append(open, s)
	}
	srv.mu.Unlock()
	for _, s := range open {
		s.dead.Store(true)
		s.closeConn()
	}

	if err := restore(); err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}

	srv.recovering.Store(false)
	srv.recoveries.Add(1)
	srv.events.Emit(telemetry.EventRecoveryReplay, srv.opts.Node, 0,
		"gateway recovered in %v, %d sessions invalidated", time.Since(start).Round(time.Millisecond), len(open))
	srv.opts.Logf("serve: recovered in %v (%d sessions invalidated, %d recoveries total)",
		time.Since(start).Round(time.Millisecond), len(open), srv.recoveries.Load())
	return nil
}
