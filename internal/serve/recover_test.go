package serve

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/persist"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// recoverableKV is the full durable-gateway harness: a served KVStore
// whose puts are journaled through a persist.Manager, with the restore
// callback that Server.Recover drives after an enclave kill.
type recoverableKV struct {
	w      *world.World
	srv    *Server
	addr   string
	cfg    ClientConfig
	kv     *persist.WorldKV
	fs     shim.FS
	secret sgx.PlatformSecret
	ctrs   *sgx.MemCounterStore

	mu  sync.Mutex
	mgr *persist.Manager
}

func (r *recoverableKV) manager() *persist.Manager {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mgr
}

// openManager builds a Manager over the harness's durable storage and
// the world's current enclave.
func (r *recoverableKV) openManager(t *testing.T) *persist.Manager {
	t.Helper()
	ctr, err := sgx.NewMonotonicCounter(r.secret, r.ctrs, "gateway-kv")
	if err != nil {
		t.Fatal(err)
	}
	m, err := persist.Open(persist.Options{
		FS:           r.fs,
		Enclave:      r.w.Enclave(),
		Secret:       r.secret,
		Counter:      ctr,
		Dir:          "p/",
		BeforeCommit: r.w.Flush,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newStore creates and pins a fresh KVStore in the (current) enclave.
func (r *recoverableKV) newStore(t *testing.T) wire.Value {
	t.Helper()
	var ref wire.Value
	err := r.w.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.KVStoreCls)
		if err != nil {
			return err
		}
		ref = v
		return nil
	})
	if err != nil {
		t.Fatalf("new KVStore: %v", err)
	}
	if err := r.w.Untrusted().Pin(ref); err != nil {
		t.Fatalf("pin: %v", err)
	}
	return ref
}

// restore is the Server.Recover callback: kill+restart the world,
// rebuild the store, and recover durable state into it.
func (r *recoverableKV) restore(t *testing.T) func() error {
	return func() error {
		r.w.Kill()
		if err := r.w.Restart(); err != nil {
			return err
		}
		r.kv.SetRef(r.newStore(t))
		m := r.openManager(t)
		if err := m.Register(r.kv); err != nil {
			return err
		}
		rep, err := m.Recover()
		if err != nil {
			return err
		}
		t.Logf("gateway recovery: %s", rep)
		r.mu.Lock()
		r.mgr = m
		r.mu.Unlock()
		return nil
	}
}

func startRecoverableKV(t *testing.T) *recoverableKV {
	t.Helper()
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		w.Close()
		t.Fatal(err)
	}
	r := &recoverableKV{
		w:      w,
		fs:     shim.NewMemFS(),
		secret: secret,
		ctrs:   sgx.NewMemCounterStore(),
	}
	r.kv = persist.NewWorldKV("kv", w)
	r.kv.SetRef(r.newStore(t))
	m := r.openManager(t)
	if err := m.Register(r.kv); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	r.mgr = m

	platform := sgx.NewPlatformFromSeed([]byte("serve-recover-test"))
	srv, err := New(Options{
		World:    w,
		Platform: platform,
		Logf:     t.Logf,
		// Journal KVStore puts: key and value are the two string args.
		Journal: func(mu Mutation) error {
			if mu.Op != opCall || mu.Class != demo.KVStoreCls || mu.Method != "put" {
				return nil
			}
			key, _ := mu.Args[0].AsStr()
			val, _ := mu.Args[1].AsStr()
			_, err := r.manager().Append("kv", persist.OpPut, key, []byte(val))
			return err
		},
	})
	if err != nil {
		w.Close()
		t.Fatal(err)
	}
	srv.Export("kv", func(env classmodel.Env) (wire.Value, error) {
		ref := r.kv.Ref()
		if ref.IsNull() {
			return wire.Value{}, errors.New("store not initialised")
		}
		return ref, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
		w.Close()
	})
	r.srv = srv
	r.addr = ln.Addr().String()
	r.cfg = ClientConfig{Platform: platform, Measurement: srv.Measurement()}
	return r
}

// TestGatewayCrashRecovery is the serving-layer crash matrix exit: a
// live attested client writes through the gateway, the enclave dies and
// recovers mid-service, the old session is invalidated, and a fresh
// session re-binds the store by name and reads every acked write back.
func TestGatewayCrashRecovery(t *testing.T) {
	r := startRecoverableKV(t)

	c, err := Dial(r.addr, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Bind("kv")
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	writes := map[string]string{
		"alice": "balance=75",
		"bob":   "balance=50",
		"carol": "balance=10",
	}
	for k, v := range writes {
		if _, err := c.Call(h, "put", wire.Str(k), wire.Str(v)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}

	// The crash/recovery cycle. A handshake attempted mid-recovery gets
	// the typed retry signal, not a hang or a half-built enclave.
	restore := r.restore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = r.srv.Recover(ctx, func() error {
		if _, dialErr := Dial(r.addr, r.cfg); !errors.Is(dialErr, ErrRecovering) {
			t.Errorf("dial during recovery: %v, want ErrRecovering", dialErr)
		}
		return restore()
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}

	// The old session died with the old enclave: its key and handles
	// cannot outlive the incarnation that attested them.
	if _, err := c.Call(h, "get", wire.Str("alice")); err == nil {
		t.Fatal("pre-crash session survived recovery")
	}

	// A fresh session attests the new enclave (same measurement — same
	// image, same signer) and re-binds the recovered store by name.
	c2, err := Dial(r.addr, r.cfg)
	if err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
	defer c2.Close()
	h2, err := c2.Bind("kv")
	if err != nil {
		t.Fatalf("re-bind: %v", err)
	}
	for k, want := range writes {
		v, err := c2.Call(h2, "get", wire.Str(k))
		if err != nil {
			t.Fatalf("get %q after recovery: %v", k, err)
		}
		if got, _ := v.AsStr(); got != want {
			t.Errorf("recovered %q = %q, want %q", k, got, want)
		}
	}
	// And the recovered gateway keeps serving durable writes.
	if _, err := c2.Call(h2, "put", wire.Str("dave"), wire.Str("balance=5")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}

	s := r.srv.Stats()
	if s.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", s.Recoveries)
	}
	if s.Recovering {
		t.Error("gateway still marked recovering")
	}
	if s.RejectedRecovering == 0 {
		t.Error("mid-recovery dial was not counted as a recovering rejection")
	}
}

// TestGatewaySecondRecovery proves the cycle is repeatable: two crashes
// back to back, state intact after both.
func TestGatewaySecondRecovery(t *testing.T) {
	r := startRecoverableKV(t)
	ctx := context.Background()

	put := func(k, v string) {
		t.Helper()
		c, err := Dial(r.addr, r.cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		h, err := c.Bind("kv")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call(h, "put", wire.Str(k), wire.Str(v)); err != nil {
			t.Fatal(err)
		}
	}
	put("k1", "v1")
	if err := r.srv.Recover(ctx, r.restore(t)); err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	put("k2", "v2")
	if err := r.srv.Recover(ctx, r.restore(t)); err != nil {
		t.Fatalf("second recovery: %v", err)
	}

	c, err := Dial(r.addr, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Bind("kv")
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		v, err := c.Call(h, "get", wire.Str(k))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := v.AsStr(); got != want {
			t.Errorf("%q = %q, want %q (after two recoveries)", k, got, want)
		}
	}
	if got := r.srv.Stats().Recoveries; got != 2 {
		t.Errorf("Recoveries = %d, want 2", got)
	}
}

// TestJournalErrorWithholdsAck: when the durability hook fails, the
// client must not see success — the mutation executed but is not
// durable.
func TestJournalErrorWithholdsAck(t *testing.T) {
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	platform := sgx.NewPlatformFromSeed([]byte("journal-fail-test"))
	srv, err := New(Options{
		World:    w,
		Platform: platform,
		Journal: func(m Mutation) error {
			if m.Method == "put" {
				return errors.New("disk full")
			}
			return nil
		},
	})
	if err != nil {
		w.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
		w.Close()
	})

	c, err := Dial(ln.Addr().String(), ClientConfig{Platform: platform, Measurement: srv.Measurement()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.New(demo.KVStoreCls)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Call(h, "put", wire.Str("k"), wire.Str("v"))
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("put with failing journal: %v, want AppError", err)
	}
	// Reads (not journaled) still work: the session survives.
	if _, err := c.Call(h, "get", wire.Str("k")); err != nil {
		t.Fatalf("get after journal failure: %v", err)
	}
}

// TestBindUnknownName pins the typed error for unexported names.
func TestBindUnknownName(t *testing.T) {
	r := startRecoverableKV(t)
	c, err := Dial(r.addr, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Bind("nope"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bind unknown: %v, want ErrBadRequest", err)
	}
}
