package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/sgx"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// startServer boots a partitioned world for prog and serves it on a
// loopback listener. It returns the server, its address and a client
// config whose platform/measurement match.
func startServer(t *testing.T, prog *classmodel.Program, opts Options) (*Server, string, ClientConfig) {
	t.Helper()
	w, _, err := core.NewPartitionedWorld(prog, world.DefaultOptions())
	if err != nil {
		t.Fatalf("build world: %v", err)
	}
	platform := sgx.NewPlatformFromSeed([]byte("serve-test-platform"))
	opts.World = w
	opts.Platform = platform
	srv, err := New(opts)
	if err != nil {
		w.Close()
		t.Fatalf("new server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.Close()
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
		w.Close()
	})
	cfg := ClientConfig{
		Platform:    platform,
		Measurement: srv.Measurement(),
	}
	return srv, ln.Addr().String(), cfg
}

// slowProgram defines a trusted class whose method blocks for a caller
// chosen duration — the workload for overload/deadline/drain tests.
func slowProgram(t *testing.T) *classmodel.Program {
	t.Helper()
	p := classmodel.NewProgram()
	slow := classmodel.NewClass("Slow", classmodel.Trusted)
	if err := slow.AddMethod(&classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := slow.AddMethod(&classmodel.Method{
		Name: "work", Public: true,
		Params:  []classmodel.Param{{Name: "ms", Kind: wire.KindInt}},
		Returns: wire.KindInt,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			ms, _ := args[0].AsInt()
			time.Sleep(time.Duration(ms) * time.Millisecond)
			return wire.Int(ms), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(slow); err != nil {
		t.Fatal(err)
	}
	driver := classmodel.NewClass("Driver", classmodel.Untrusted)
	if err := driver.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Returns:   wire.KindInt,
		Allocates: []string{"Slow"},
		Calls:     []classmodel.MethodRef{{Class: "Slow", Method: "work"}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			s, err := env.New("Slow")
			if err != nil {
				return wire.Null(), err
			}
			return env.Call(s, "work", wire.Int(0))
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(driver); err != nil {
		t.Fatal(err)
	}
	p.MainClass = "Driver"
	return p
}

// TestServeKVSession drives one attested session end to end: create a
// store, put/get through the enclave, release, close.
func TestServeKVSession(t *testing.T) {
	srv, addr, cfg := startServer(t, demo.MustKVProgram(), Options{})
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	store, err := c.New(demo.KVStoreCls)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	if _, err := c.Call(store, "put", wire.Str("alice"), wire.Str("wonderland")); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := c.Call(store, "get", wire.Str("alice"))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if s, _ := got.AsStr(); s != "wonderland" {
		t.Fatalf("get = %v, want wonderland", got)
	}
	miss, err := c.Call(store, "get", wire.Str("nobody"))
	if err != nil {
		t.Fatalf("get miss: %v", err)
	}
	if !miss.IsNull() {
		t.Fatalf("miss = %v, want null", miss)
	}
	size, err := c.Call(store, "size")
	if err != nil {
		t.Fatalf("size: %v", err)
	}
	if n, _ := size.AsInt(); n != 1 {
		t.Fatalf("size = %d, want 1", n)
	}
	if err := c.Release(store); err != nil {
		t.Fatalf("release: %v", err)
	}
	// A released handle is gone.
	if _, err := c.Call(store, "size"); !errors.Is(err, ErrForeignRef) {
		t.Fatalf("call after release: %v, want ErrForeignRef", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	st := srv.Stats()
	if st.HandshakeFailures != 0 {
		t.Fatalf("handshake failures = %d, want 0", st.HandshakeFailures)
	}
	if st.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", st.Sessions)
	}
}

// TestServeManyConcurrentSessions runs 32 attested sessions in parallel,
// each with a private KVStore, and checks full isolation of their data.
func TestServeManyConcurrentSessions(t *testing.T) {
	const sessions = 32
	const requests = 8
	srv, addr, cfg := startServer(t, demo.MustKVProgram(), Options{
		MaxSessions: sessions,
		MaxInFlight: 16,
	})

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = func() error {
				c, err := Dial(addr, cfg)
				if err != nil {
					return fmt.Errorf("dial: %w", err)
				}
				defer c.Close()
				store, err := c.New(demo.KVStoreCls)
				if err != nil {
					return fmt.Errorf("new: %w", err)
				}
				for r := 0; r < requests; r++ {
					key := wire.Str(fmt.Sprintf("key-%d", r))
					val := wire.Str(fmt.Sprintf("session-%d-val-%d", i, r))
					if _, err := c.Call(store, "put", key, val); err != nil {
						return fmt.Errorf("put: %w", err)
					}
				}
				for r := 0; r < requests; r++ {
					got, err := c.Call(store, "get", wire.Str(fmt.Sprintf("key-%d", r)))
					if err != nil {
						return fmt.Errorf("get: %w", err)
					}
					want := fmt.Sprintf("session-%d-val-%d", i, r)
					if s, _ := got.AsStr(); s != want {
						return fmt.Errorf("get = %q, want %q (cross-session leak?)", s, want)
					}
				}
				size, err := c.Call(store, "size")
				if err != nil {
					return fmt.Errorf("size: %w", err)
				}
				if n, _ := size.AsInt(); n != requests {
					return fmt.Errorf("size = %d, want %d", n, requests)
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.SessionsTotal != sessions {
		t.Fatalf("sessions total = %d, want %d", st.SessionsTotal, sessions)
	}
	if st.HandshakeFailures != 0 {
		t.Fatalf("handshake failures = %d, want 0", st.HandshakeFailures)
	}
	if st.PeakInFlight > 16 {
		t.Fatalf("peak in-flight = %d, exceeds MaxInFlight 16", st.PeakInFlight)
	}
}

// TestServeCrossSessionIsolation checks that one session's handles are
// meaningless in another: proxy access with a foreign handle is rejected
// before it reaches the world.
func TestServeCrossSessionIsolation(t *testing.T) {
	srv, addr, cfg := startServer(t, demo.MustKVProgram(), Options{})
	a, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial a: %v", err)
	}
	defer a.Close()
	b, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial b: %v", err)
	}
	defer b.Close()

	store, err := a.New(demo.KVStoreCls)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if _, err := a.Call(store, "put", wire.Str("secret"), wire.Str("owned-by-a")); err != nil {
		t.Fatalf("put: %v", err)
	}

	// B replays A's handle: as a receiver, as a release target, and as
	// an argument. All must be rejected as foreign.
	if _, err := b.Call(store, "get", wire.Str("secret")); !errors.Is(err, ErrForeignRef) {
		t.Fatalf("foreign call: %v, want ErrForeignRef", err)
	}
	if err := b.Release(store); !errors.Is(err, ErrForeignRef) {
		t.Fatalf("foreign release: %v, want ErrForeignRef", err)
	}
	bStore, err := b.New(demo.KVStoreCls)
	if err != nil {
		t.Fatalf("new b: %v", err)
	}
	// Handles are namespaced per session, so A's handle number resolves
	// to B's own object (if any) — never to A's. A handle B's namespace
	// never issued is rejected even buried inside an argument.
	never := Handle{Class: demo.KVStoreCls, ID: store.ID + 1000}
	if _, err := b.Call(bStore, "put", wire.Str("k"), never.Value()); !errors.Is(err, ErrForeignRef) {
		t.Fatalf("foreign argument: %v, want ErrForeignRef", err)
	}
	// A's data is untouched.
	got, err := a.Call(store, "get", wire.Str("secret"))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if s, _ := got.AsStr(); s != "owned-by-a" {
		t.Fatalf("get = %q, want owned-by-a", s)
	}
	if st := srv.Stats(); st.RejectedForeign < 3 {
		t.Fatalf("rejected foreign = %d, want >= 3", st.RejectedForeign)
	}
}

// TestServeOverload saturates a tiny admission window and checks that
// overflow turns into typed ErrOverloaded rejections while concurrency
// stays bounded.
func TestServeOverload(t *testing.T) {
	const sessions = 8
	srv, addr, cfg := startServer(t, slowProgram(t), Options{
		MaxInFlight:     2,
		QueueDepth:      1,
		SessionInFlight: 4,
		MaxSessions:     sessions,
	})

	clients := make([]*Client, sessions)
	handles := make([]Handle, sessions)
	for i := range clients {
		c, err := Dial(addr, cfg)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		h, err := c.New("Slow")
		if err != nil {
			t.Fatalf("new %d: %v", i, err)
		}
		clients[i], handles[i] = c, h
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]error, sessions)
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, results[i] = clients[i].Call(handles[i], "work", wire.Int(400))
		}(i)
	}
	close(start)
	wg.Wait()

	var ok, overloaded int
	for i, err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if ok < 2 {
		t.Fatalf("successes = %d, want >= 2", ok)
	}
	if overloaded < 1 {
		t.Fatalf("overloaded = %d, want >= 1 (ok=%d)", overloaded, ok)
	}
	st := srv.Stats()
	if st.PeakInFlight > 2 {
		t.Fatalf("peak in-flight = %d, exceeds MaxInFlight 2", st.PeakInFlight)
	}
	if st.RejectedOverload == 0 {
		t.Fatal("no overload rejections counted")
	}
}

// TestServeDeadline propagates a short client budget: queued behind a
// long request with MaxInFlight=1, it must be rejected with ErrDeadline.
func TestServeDeadline(t *testing.T) {
	srv, addr, cfg := startServer(t, slowProgram(t), Options{
		MaxInFlight: 1,
		QueueDepth:  4,
	})
	a, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer a.Close()
	b, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer b.Close()
	ha, err := a.New("Slow")
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	hb, err := b.New("Slow")
	if err != nil {
		t.Fatalf("new: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := a.Call(ha, "work", wire.Int(600))
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the long call occupy the slot
	if _, err := b.CallTimeout(150*time.Millisecond, hb, "work", wire.Int(10)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued call: %v, want ErrDeadline", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("long call: %v", err)
	}
	if st := srv.Stats(); st.RejectedDeadline == 0 {
		t.Fatal("no deadline rejections counted")
	}
}

// TestServeDrain checks graceful shutdown: in-flight work completes, new
// work is rejected with ErrDraining, new connections are refused, and
// Shutdown surfaces cleanly.
func TestServeDrain(t *testing.T) {
	srv, addr, cfg := startServer(t, slowProgram(t), Options{MaxInFlight: 4})
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	h, err := c.New("Slow")
	if err != nil {
		t.Fatalf("new: %v", err)
	}

	inFlight := make(chan error, 1)
	go func() {
		_, err := c.Call(h, "work", wire.Int(400))
		inFlight <- err
	}()
	time.Sleep(100 * time.Millisecond)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond)

	// Work submitted during the drain gets a typed rejection (the
	// session connection may already be closed near the end of the
	// drain, which surfaces as a connection error instead).
	if _, err := c.Call(h, "work", wire.Int(10)); err == nil {
		t.Fatal("call during drain succeeded, want rejection")
	} else if !errors.Is(err, ErrDraining) && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDeadline) {
		t.Logf("drain-time call error: %v", err)
	}
	// The request admitted before the drain completes normally.
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight call during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The gateway no longer accepts sessions.
	if _, err := Dial(addr, cfg); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
}

// TestServeHandshakeFailures counts attestation failures: a client on
// the wrong attestation platform must refuse the quote, and garbage on
// the wire must be dropped; both increment HandshakeFailures.
func TestServeHandshakeFailures(t *testing.T) {
	srv, addr, cfg := startServer(t, demo.MustKVProgram(), Options{})

	// Wrong platform: quote MAC does not verify; the client aborts.
	bad := cfg
	bad.Platform = sgx.NewPlatformFromSeed([]byte("some-other-platform"))
	if _, err := Dial(addr, bad); !errors.Is(err, ErrHandshake) {
		t.Fatalf("wrong platform dial: %v, want ErrHandshake", err)
	}

	// Wrong measurement: quote verifies but identity mismatches.
	bad = cfg
	bad.Measurement[0] ^= 0xFF
	if _, err := Dial(addr, bad); !errors.Is(err, ErrHandshake) {
		t.Fatalf("wrong measurement dial: %v, want ErrHandshake", err)
	}

	// Garbage hello: not even a frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	_, _ = conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	_ = conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Stats().HandshakeFailures >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handshake failures = %d, want >= 3", srv.Stats().HandshakeFailures)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A good client still gets through.
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("good dial after failures: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

// TestServeSessionLimit bounds concurrent sessions with a typed error.
func TestServeSessionLimit(t *testing.T) {
	_, addr, cfg := startServer(t, demo.MustKVProgram(), Options{MaxSessions: 1})
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := Dial(addr, cfg); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("second dial: %v, want ErrSessionLimit", err)
	}
}

// TestServeTeardownReleases checks that closing a session releases its
// objects through the GC path: the untrusted sweep observes the dead
// proxies once the session's pins are dropped.
func TestServeTeardownReleases(t *testing.T) {
	srv, addr, cfg := startServer(t, demo.MustKVProgram(), Options{})
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	store, err := c.New(demo.KVStoreCls)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Call(store, "put", wire.Str(fmt.Sprintf("k%d", i)), wire.Str("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Teardown runs on the server's connection goroutine: wait for the
	// session to drop and its sweep to release the dead proxies.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ws := srv.w.Stats()
		if srv.Stats().Sessions == 0 && ws.UntrustedSweeps.Released > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("teardown did not release: sessions=%d released=%d",
				srv.Stats().Sessions, ws.UntrustedSweeps.Released)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeClassGuards rejects builtin, unknown and unserved classes.
func TestServeClassGuards(t *testing.T) {
	_, addr, cfg := startServer(t, demo.MustKVProgram(), Options{
		Classes: []string{demo.KVStoreCls},
	})
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.New("List"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("builtin new: %v, want ErrBadRequest", err)
	}
	if _, err := c.New("NoSuchClass"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown new: %v, want ErrBadRequest", err)
	}
	if _, err := c.New(demo.KVEntry, wire.Str("k"), wire.Str("v")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unserved new: %v, want ErrBadRequest", err)
	}
	if _, err := c.New(demo.KVStoreCls); err != nil {
		t.Fatalf("served new: %v", err)
	}
}

// TestServeWrongShardRedirect drives the partition-predicate hook end
// to end: a gateway configured to own only even-length keys rejects the
// rest with a typed *WrongShardError that survives the wire — the
// client can extract the owning shard and table epoch for its refresh,
// and errors.Is(err, ErrWrongShard) holds. Reads and writes both hit
// the predicate; no rejected request reaches the world.
func TestServeWrongShardRedirect(t *testing.T) {
	shardCheck := func(op, class, method string, args []wire.Value) error {
		if class != demo.KVStoreCls {
			return nil
		}
		if op == opCall && method != "put" && method != "get" {
			return nil
		}
		if len(args) == 0 {
			return nil
		}
		key, ok := args[0].AsStr()
		if !ok {
			return nil
		}
		if len(key)%2 != 0 {
			return &WrongShardError{Owner: 3, Epoch: 7}
		}
		return nil
	}
	srv, addr, cfg := startServer(t, demo.MustKVProgram(), Options{ShardCheck: shardCheck})
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	store, err := c.New(demo.KVStoreCls)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	// Owned key: served normally.
	if _, err := c.Call(store, "put", wire.Str("ab"), wire.Str("1")); err != nil {
		t.Fatalf("owned put: %v", err)
	}
	// Foreign key: typed redirect with the owner and epoch intact.
	_, err = c.Call(store, "put", wire.Str("abc"), wire.Str("2"))
	if !errors.Is(err, ErrWrongShard) {
		t.Fatalf("foreign put: %v, want ErrWrongShard", err)
	}
	var ws *WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("foreign put error %v does not carry *WrongShardError", err)
	}
	if ws.Owner != 3 || ws.Epoch != 7 {
		t.Fatalf("redirect = %+v, want owner 3 epoch 7", ws)
	}
	// Reads redirect too — a stale client must not read stale shards.
	if _, err := c.Call(store, "get", wire.Str("abc")); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("foreign get: %v, want ErrWrongShard", err)
	}
	// The rejected put never executed: the key is absent on the owned path.
	if v, err := c.Call(store, "get", wire.Str("ab")); err != nil {
		t.Fatalf("get owned: %v", err)
	} else if s, _ := v.AsStr(); s != "1" {
		t.Fatalf("owned value = %v", v)
	}
	st := srv.Stats()
	if st.RejectedWrongShard != 2 {
		t.Fatalf("RejectedWrongShard = %d, want 2", st.RejectedWrongShard)
	}
	if st.AppErrors != 0 {
		t.Fatalf("AppErrors = %d, want 0 (redirects are not app errors)", st.AppErrors)
	}
}
