package serve

import (
	"sync/atomic"
	"time"
)

// admission is the gateway's bounded in-flight controller. At most
// maxInFlight requests execute concurrently; at most queueDepth more may
// wait for a slot. Anything beyond that is rejected immediately with
// ErrOverloaded, a request whose deadline expires while queued is
// rejected with ErrDeadline, and a drain signal rejects all waiters with
// ErrDraining — overload degrades into typed errors, never into an
// unbounded queue.
type admission struct {
	tokens     chan struct{}
	waiters    atomic.Int64
	queueDepth int64
	inFlight   atomic.Int64
	peak       atomic.Int64
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight <= 0 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	a := &admission{
		tokens:     make(chan struct{}, maxInFlight),
		queueDepth: int64(queueDepth),
	}
	for i := 0; i < maxInFlight; i++ {
		a.tokens <- struct{}{}
	}
	return a
}

// acquire takes an execution slot. deadline zero means no deadline;
// drain, when closed, aborts waiting with ErrDraining.
func (a *admission) acquire(deadline time.Time, drain <-chan struct{}) error {
	select {
	case <-a.tokens:
		a.admitted()
		return nil
	default:
	}
	// Slow path: queue for a slot, bounded by queueDepth.
	if a.waiters.Add(1) > a.queueDepth {
		a.waiters.Add(-1)
		return ErrOverloaded
	}
	defer a.waiters.Add(-1)
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-a.tokens:
		a.admitted()
		return nil
	case <-timeout:
		return ErrDeadline
	case <-drain:
		return ErrDraining
	}
}

func (a *admission) admitted() {
	cur := a.inFlight.Add(1)
	for {
		p := a.peak.Load()
		if cur <= p || a.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// release returns an execution slot.
func (a *admission) release() {
	a.inFlight.Add(-1)
	a.tokens <- struct{}{}
}

// current returns the number of requests executing right now.
func (a *admission) current() int { return int(a.inFlight.Load()) }

// peakInFlight returns the high-water mark of concurrent execution.
func (a *admission) peakInFlight() int { return int(a.peak.Load()) }
