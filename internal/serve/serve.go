package serve

import (
	"bufio"
	"context"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/sgx"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// Options configures a gateway Server.
type Options struct {
	// World is the partitioned world the gateway serves. Required; must
	// be in world.ModePartitioned.
	World *world.World
	// Platform is the attestation infrastructure used to quote the
	// world's enclave during session handshakes. Required. Clients must
	// share it (same attestation key) for quotes to verify; use
	// sgx.NewPlatformFromSeed for cross-process deployments.
	Platform *sgx.Platform
	// Classes optionally restricts which application classes clients may
	// instantiate. Empty means every non-builtin class in the program.
	Classes []string
	// MaxSessions bounds concurrently connected sessions (default 64).
	MaxSessions int
	// MaxInFlight bounds concurrently executing requests across all
	// sessions (default 32).
	MaxInFlight int
	// QueueDepth bounds requests waiting for an execution slot before
	// admission rejects with ErrOverloaded (default MaxInFlight).
	QueueDepth int
	// SessionInFlight bounds one session's concurrently admitted
	// requests, so a single client cannot monopolise the gateway
	// (default 4).
	SessionInFlight int
	// RequestTimeout caps the server-side deadline of any request,
	// regardless of the client's declared budget (default 30s).
	RequestTimeout time.Duration
	// HandshakeTimeout bounds the attestation handshake (default 10s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds one response write so a stalled client cannot
	// wedge a serving goroutine (default 10s).
	WriteTimeout time.Duration
	// ShardCheck, when set, runs before any state-touching request
	// (new/call) executes. A fabric gateway installs the partition
	// predicate here: return a *WrongShardError for keys this shard does
	// not own and the client gets a typed redirect (statusWrongShard)
	// instead of executing against the wrong World. Any other error
	// rejects the request with its mapped status.
	ShardCheck func(op, class, method string, args []wire.Value) error
	// Journal, when set, receives every successfully executed
	// state-changing request (new/call) after it ran and before the
	// client sees the OK — the hook the durability layer uses to put
	// mutations in the write-ahead log. A journal error withholds the
	// ack: the client gets an application error and must treat the
	// mutation as not durable (it may still surface after recovery if
	// the append itself landed — the standard durable-but-unacked
	// window).
	Journal func(m Mutation) error
	// JournalAsync is the pipelined variant of Journal: the hook takes
	// ownership of the request's completion and calls complete exactly
	// once when the mutation is durable (nil) or failed (non-nil), at
	// which point the gateway sends the ack — or the error — and
	// releases the request's admission slot. The executing worker is
	// freed as soon as the hook returns, so a slow durability path
	// (group commit, replication watermarks) parks only the request,
	// not a pool worker. complete may be called from any goroutine.
	// When both hooks are set, JournalAsync wins.
	JournalAsync func(m Mutation, complete func(error))
	// Logf, when set, receives diagnostic messages (e.g. teardown
	// release failures). Defaults to discarding them.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, exposes the gateway through the metrics
	// registry: per-reason admission rejections, handshake and request
	// latency histograms, live session/in-flight gauges. Pass the same
	// bundle as world.Options.Telemetry so one scrape covers both layers.
	// Request spans continue the client's trace context (requests carry
	// an injected SpanContext), and session lifecycle transitions are
	// journaled to the bundle's event log.
	Telemetry *telemetry.Telemetry
	// Node labels this gateway's spans and events in a fleet ("shard-2");
	// default "gateway".
	Node string
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 64
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 32
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = opts.MaxInFlight
	}
	if opts.SessionInFlight <= 0 {
		opts.SessionInFlight = 4
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 10 * time.Second
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 10 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Node == "" {
		opts.Node = "gateway"
	}
	return opts
}

// Stats is a point-in-time snapshot of gateway counters.
type Stats struct {
	// Sessions is the number of currently attested, connected sessions.
	Sessions int
	// SessionsTotal counts sessions ever admitted.
	SessionsTotal uint64
	// HandshakeFailures counts connections dropped during attestation.
	HandshakeFailures uint64
	// Requests counts requests admitted for execution.
	Requests uint64
	// AppErrors counts requests that executed but failed in application
	// code.
	AppErrors uint64
	// InFlight is the number of requests executing right now; PeakInFlight
	// is the high-water mark (never exceeds MaxInFlight).
	InFlight     int
	PeakInFlight int
	// Typed rejection counters. RejectedOverload counts global
	// queue/deadline overflow; RejectedSessionBusy counts requests turned
	// away at one session's SessionInFlight cap (reported to the client
	// as overloaded, but a distinct operator signal: one noisy client,
	// not a saturated gateway).
	RejectedOverload    uint64
	RejectedDraining    uint64
	RejectedRecovering  uint64
	RejectedDeadline    uint64
	RejectedForeign     uint64
	RejectedSession     uint64
	RejectedSessionBusy uint64
	// RejectedWrongShard counts requests redirected to their owning
	// shard by the ShardCheck hook — routing-table staleness pressure,
	// not an error condition.
	RejectedWrongShard uint64
	// Recoveries counts completed Server.Recover cycles; Recovering
	// reports whether one is in progress right now.
	Recoveries uint64
	Recovering bool
	// BytesIn / BytesOut count post-handshake wire traffic.
	BytesIn  uint64
	BytesOut uint64
}

// Server is the enclave gateway: it accepts TCP clients, attests the
// world's enclave to each on connect, and serves their requests against
// the shared partitioned world under admission control.
type Server struct {
	opts    Options
	w       *world.World
	allowed map[string]bool

	adm      *admission
	draining atomic.Bool
	drainCh  chan struct{}
	// recovering rejects new work with statusRecovering while
	// Server.Recover restores the enclave; recoverMu serialises Recover
	// calls. exports maps bind names to providers (see Export).
	recovering atomic.Bool
	recoverMu  sync.Mutex
	exportsMu  sync.RWMutex
	exports    map[string]func(env classmodel.Env) (wire.Value, error)
	// drainMu orders request registration against Shutdown's wait: a
	// request holds the read side while it checks draining and joins
	// reqWG, so the drain barrier (write lock) guarantees every admitted
	// request is either counted by reqWG.Wait or typed-rejected.
	drainMu sync.RWMutex

	mu         sync.Mutex
	ln         net.Listener
	sessions   map[int64]*session
	sessionSeq int64

	connWG sync.WaitGroup // one per accepted connection
	reqWG  sync.WaitGroup // one per admitted request

	// pool runs admitted requests on MaxInFlight resident workers, so
	// concurrent sessions' proxy calls execute in parallel.
	pool *workerPool

	sessionsTotal  atomic.Uint64
	handshakeFails atomic.Uint64
	requests       atomic.Uint64
	appErrors      atomic.Uint64
	rejOverload    atomic.Uint64
	rejDraining    atomic.Uint64
	rejRecovering  atomic.Uint64
	recoveries     atomic.Uint64
	rejDeadline    atomic.Uint64
	rejForeign     atomic.Uint64
	rejSession     atomic.Uint64
	rejSessionBusy atomic.Uint64
	rejWrongShard  atomic.Uint64
	bytesIn        atomic.Uint64
	bytesOut       atomic.Uint64

	// Telemetry latency histograms, nil when observability is off (the
	// counters above are absorbed by a registered collector instead).
	hHandshake *telemetry.Histogram
	hRequest   *telemetry.Histogram
	// tracer and events cache the telemetry bundle's components; both
	// are nil-safe, so the disabled path pays one branch.
	tracer *telemetry.Tracer
	events *telemetry.EventLog
}

// New builds a gateway over an already-booted partitioned world.
func New(opts Options) (*Server, error) {
	if opts.World == nil {
		return nil, errors.New("serve: Options.World is required")
	}
	if opts.World.Mode() != world.ModePartitioned {
		return nil, fmt.Errorf("serve: world mode %v, need %v", opts.World.Mode(), world.ModePartitioned)
	}
	if opts.Platform == nil {
		return nil, errors.New("serve: Options.Platform is required")
	}
	o := opts.withDefaults()
	srv := &Server{
		opts:     o,
		w:        o.World,
		adm:      newAdmission(o.MaxInFlight, o.QueueDepth),
		drainCh:  make(chan struct{}),
		sessions: make(map[int64]*session),
		exports:  make(map[string]func(env classmodel.Env) (wire.Value, error)),
		pool:     newWorkerPool(o.MaxInFlight),
	}
	if len(o.Classes) > 0 {
		srv.allowed = make(map[string]bool, len(o.Classes))
		for _, c := range o.Classes {
			srv.allowed[c] = true
		}
	}
	if reg := o.Telemetry.Registry(); reg != nil {
		srv.hHandshake = reg.Histogram("montsalvat_serve_handshake_ns")
		srv.hRequest = reg.Histogram("montsalvat_serve_request_ns")
		reg.RegisterCollector(srv.collectMetrics)
	}
	srv.tracer = o.Telemetry.Tracer()
	srv.events = o.Telemetry.Events()
	return srv, nil
}

// collectMetrics absorbs the gateway's private counters into registry
// metrics at scrape time — the serve-layer collector mirroring the
// world's.
func (srv *Server) collectMetrics(reg *telemetry.Registry) {
	s := srv.Stats()
	reg.Gauge("montsalvat_serve_sessions_active").Set(int64(s.Sessions))
	reg.Counter("montsalvat_serve_sessions_total").Set(s.SessionsTotal)
	reg.Counter("montsalvat_serve_handshake_failures_total").Set(s.HandshakeFailures)
	reg.Counter("montsalvat_serve_requests_total").Set(s.Requests)
	reg.Counter("montsalvat_serve_app_errors_total").Set(s.AppErrors)
	reg.Gauge("montsalvat_serve_inflight").Set(int64(s.InFlight))
	reg.Gauge("montsalvat_serve_inflight_peak").Set(int64(s.PeakInFlight))
	reg.Counter("montsalvat_serve_rejected_total", "reason", "overloaded").Set(s.RejectedOverload)
	reg.Counter("montsalvat_serve_rejected_total", "reason", "draining").Set(s.RejectedDraining)
	reg.Counter("montsalvat_serve_rejected_total", "reason", "recovering").Set(s.RejectedRecovering)
	reg.Counter("montsalvat_serve_recoveries_total").Set(s.Recoveries)
	recovering := int64(0)
	if s.Recovering {
		recovering = 1
	}
	reg.Gauge("montsalvat_serve_recovering").Set(recovering)
	reg.Counter("montsalvat_serve_rejected_total", "reason", "deadline").Set(s.RejectedDeadline)
	reg.Counter("montsalvat_serve_rejected_total", "reason", "foreign_ref").Set(s.RejectedForeign)
	reg.Counter("montsalvat_serve_rejected_total", "reason", "session_limit").Set(s.RejectedSession)
	reg.Counter("montsalvat_serve_rejected_total", "reason", "session_busy").Set(s.RejectedSessionBusy)
	reg.Counter("montsalvat_serve_rejected_total", "reason", "wrong_shard").Set(s.RejectedWrongShard)
	reg.Counter("montsalvat_serve_bytes_in_total").Set(s.BytesIn)
	reg.Counter("montsalvat_serve_bytes_out_total").Set(s.BytesOut)
}

// Measurement returns the served enclave's measurement — what clients
// must expect when verifying the handshake quote.
func (srv *Server) Measurement() [32]byte {
	return srv.w.Enclave().Measurement()
}

// Serve accepts connections until the listener closes. It returns nil
// when the listener was closed by Shutdown.
func (srv *Server) Serve(ln net.Listener) error {
	srv.mu.Lock()
	srv.ln = ln
	srv.mu.Unlock()
	// A Shutdown that raced this registration found srv.ln nil and had
	// no listener to close; honour the drain here instead of parking in
	// Accept on a listener nothing will ever close.
	if srv.draining.Load() {
		_ = ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if srv.draining.Load() {
				return nil
			}
			return err
		}
		srv.connWG.Add(1)
		go func() {
			defer srv.connWG.Done()
			srv.handleConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves. Addr returns the bound
// address once serving starts.
func (srv *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return srv.Serve(ln)
}

// Addr returns the listener address, or nil before Serve.
func (srv *Server) Addr() net.Addr {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.ln == nil {
		return nil
	}
	return srv.ln.Addr()
}

// Shutdown drains the gateway: it stops accepting, rejects new work
// with ErrDraining, waits (bounded by ctx) for in-flight requests,
// tears down every session through the GC-release path, and flushes the
// world's batching queues, surfacing any batched-call errors — the
// failure mode World.Close used to swallow.
func (srv *Server) Shutdown(ctx context.Context) error {
	if !srv.draining.CompareAndSwap(false, true) {
		return ErrClosed
	}
	srv.events.Emit(telemetry.EventDrain, srv.opts.Node, 0, "shutdown drain")
	close(srv.drainCh)
	// Barrier: after this, every new request observes draining before it
	// could join reqWG, so the Wait below cannot race an Add.
	srv.drainMu.Lock()
	srv.drainMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	srv.mu.Lock()
	ln := srv.ln
	srv.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}

	// Wait for admitted requests to finish (new ones are rejected).
	done := make(chan struct{})
	go func() {
		srv.reqWG.Wait()
		close(done)
	}()
	var ctxErr error
	select {
	case <-done:
	case <-ctx.Done():
		ctxErr = ctx.Err()
	}

	// Close every session connection; read loops exit and tear down
	// their namespaces through the GC-release path.
	srv.mu.Lock()
	open := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		open = append(open, s)
	}
	srv.mu.Unlock()
	for _, s := range open {
		s.closeConn()
	}
	srv.connWG.Wait()
	// Every session loop has exited, so no further submits: retire the
	// worker pool.
	srv.pool.stop()

	// Surface batched-call errors from the final flush instead of
	// dropping them (the CloseErr contract).
	return errors.Join(ctxErr, srv.w.Flush())
}

// Stats snapshots the gateway counters.
func (srv *Server) Stats() Stats {
	srv.mu.Lock()
	live := len(srv.sessions)
	srv.mu.Unlock()
	return Stats{
		Sessions:            live,
		SessionsTotal:       srv.sessionsTotal.Load(),
		HandshakeFailures:   srv.handshakeFails.Load(),
		Requests:            srv.requests.Load(),
		AppErrors:           srv.appErrors.Load(),
		InFlight:            srv.adm.current(),
		PeakInFlight:        srv.adm.peakInFlight(),
		RejectedOverload:    srv.rejOverload.Load(),
		RejectedDraining:    srv.rejDraining.Load(),
		RejectedRecovering:  srv.rejRecovering.Load(),
		Recoveries:          srv.recoveries.Load(),
		Recovering:          srv.recovering.Load(),
		RejectedDeadline:    srv.rejDeadline.Load(),
		RejectedForeign:     srv.rejForeign.Load(),
		RejectedSession:     srv.rejSession.Load(),
		RejectedSessionBusy: srv.rejSessionBusy.Load(),
		RejectedWrongShard:  srv.rejWrongShard.Load(),
		BytesIn:             srv.bytesIn.Load(),
		BytesOut:            srv.bytesOut.Load(),
	}
}

// checkClass validates that a class is instantiable through the gateway.
func (srv *Server) checkClass(name string) error {
	if classmodel.IsBuiltin(name) {
		return fmt.Errorf("%w: builtin class %q", ErrBadRequest, name)
	}
	if srv.allowed != nil && !srv.allowed[name] {
		return fmt.Errorf("%w: class %q not served", ErrBadRequest, name)
	}
	prog := srv.w.Untrusted().Image().Program()
	if _, ok := prog.Class(name); !ok {
		return fmt.Errorf("%w: unknown class %q", ErrBadRequest, name)
	}
	return nil
}

// handleConn runs the attestation handshake and, on success, the
// session's serving loop. Any handshake failure counts once and drops
// the connection.
func (srv *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	start := time.Now()
	s, err := srv.handshake(conn)
	if err != nil {
		if !errors.Is(err, ErrDraining) && !errors.Is(err, ErrRecovering) && !errors.Is(err, ErrSessionLimit) {
			srv.handshakeFails.Add(1)
			srv.opts.Logf("serve: handshake from %v: %v", conn.RemoteAddr(), err)
		}
		return
	}
	srv.hHandshake.ObserveDuration(time.Since(start))
	defer srv.dropSession(s)
	s.loop()
}

// handshake performs the server side of the attested key exchange:
//
//	C→S  hello   (client X25519 public key, nonce)            plaintext
//	S→C  attest  (server X25519 public key, SGX quote whose
//	             report data hashes the key-exchange transcript) plaintext
//	C→S  ack                                                   sealed
//	S→C  ready   (session id)                                  sealed
//
// The quote binds the server's ephemeral key and the client's nonce to
// the enclave measurement; the session key is derived from the ECDH
// shared secret and that attested transcript, so a verified handshake
// yields a channel that terminates inside the quoted enclave identity.
func (srv *Server) handshake(conn net.Conn) (*session, error) {
	deadline := time.Now().Add(srv.opts.HandshakeTimeout)
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})

	// One buffered reader owns the conn's read side for the whole
	// session lifetime (handshake and request loop).
	rd := bufio.NewReaderSize(conn, 4096)
	buf, err := readFrame(rd)
	if err != nil {
		return nil, fmt.Errorf("%w: hello: %v", ErrHandshake, err)
	}
	clientPub, nonce, err := decodeHello(buf)
	if err != nil {
		return nil, err
	}

	// Pre-attestation refusals are plaintext: no channel exists yet.
	if srv.draining.Load() {
		srv.rejDraining.Add(1)
		_, _ = writeFrame(conn, encodeReject(statusDraining))
		return nil, ErrDraining
	}
	if srv.recovering.Load() {
		// The enclave being quoted is mid-rebuild: tell the client to
		// retry instead of attesting a half-recovered identity.
		srv.rejRecovering.Add(1)
		_, _ = writeFrame(conn, encodeReject(statusRecovering))
		return nil, ErrRecovering
	}
	srv.mu.Lock()
	if len(srv.sessions) >= srv.opts.MaxSessions {
		srv.mu.Unlock()
		srv.rejSession.Add(1)
		_, _ = writeFrame(conn, encodeReject(statusSession))
		return nil, ErrSessionLimit
	}
	srv.sessionSeq++
	sid := srv.sessionSeq
	srv.mu.Unlock()

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("%w: keygen: %v", ErrHandshake, err)
	}
	peer, err := ecdh.X25519().NewPublicKey(clientPub)
	if err != nil {
		return nil, fmt.Errorf("%w: client key: %v", ErrHandshake, err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("%w: ecdh: %v", ErrHandshake, err)
	}
	report := transcriptHash(clientPub, priv.PublicKey().Bytes(), nonce)
	quote, err := srv.opts.Platform.Quote(srv.w.Enclave(), report)
	if err != nil {
		return nil, fmt.Errorf("%w: quote: %v", ErrHandshake, err)
	}
	if _, err := writeFrame(conn, encodeAttest(priv.PublicKey().Bytes(), quote)); err != nil {
		return nil, fmt.Errorf("%w: attest: %v", ErrHandshake, err)
	}

	ciph, err := newSessionCipher(sessionKey(shared, report), false)
	if err != nil {
		return nil, fmt.Errorf("%w: cipher: %v", ErrHandshake, err)
	}
	// The sealed ack proves the client derived the same key, i.e. it
	// really holds the private half of the hello it sent.
	buf, err = readFrame(rd)
	if err != nil {
		return nil, fmt.Errorf("%w: ack: %v", ErrHandshake, err)
	}
	plain, err := ciph.open(buf)
	if err != nil {
		return nil, err
	}
	if err := decodeAck(plain); err != nil {
		return nil, err
	}
	if _, err := writeFrame(conn, ciph.seal(encodeReady(sid))); err != nil {
		return nil, fmt.Errorf("%w: ready: %v", ErrHandshake, err)
	}

	s := newSession(srv, sid, conn, rd, ciph)
	srv.mu.Lock()
	if srv.draining.Load() {
		srv.mu.Unlock()
		return nil, ErrDraining
	}
	if srv.recovering.Load() {
		// Recover snapshots the session map after its drain barrier; a
		// handshake that raced past the early check must not slip a live
		// session into a world that is being torn down.
		srv.mu.Unlock()
		return nil, ErrRecovering
	}
	srv.sessions[sid] = s
	srv.mu.Unlock()
	srv.sessionsTotal.Add(1)
	srv.events.Emit(telemetry.EventSessionOpen, srv.opts.Node, 0, "session %d from %v", sid, conn.RemoteAddr())
	return s, nil
}

// dropSession unregisters a session and releases its objects.
func (srv *Server) dropSession(s *session) {
	srv.mu.Lock()
	delete(srv.sessions, s.id)
	srv.mu.Unlock()
	s.teardown()
	srv.events.Emit(telemetry.EventSessionClose, srv.opts.Node, 0, "session %d", s.id)
}
