package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/registry"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// session is one attested client connection. It owns a private handle
// namespace: object references cross the wire as session-local handles,
// never as world identity hashes, and a handle from another session is
// rejected (ErrForeignRef) before it can touch the world.
type session struct {
	id   int64
	srv  *Server
	conn net.Conn
	rd   *bufio.Reader // owns all reads from conn (shared with the handshake)
	ns   *registry.Namespace

	writeMu sync.Mutex // serialises response writes and the send counter
	ciph    *sessionCipher
	sendBuf []byte // reusable sealed-frame buffer, guarded by writeMu

	inflight  atomic.Int64 // per-session admitted requests
	wg        sync.WaitGroup
	closeOnce sync.Once
	// dead marks a session invalidated by Server.Recover: its handles
	// and keys belong to an enclave incarnation that no longer exists,
	// so teardown must not push them through the GC-release path.
	dead atomic.Bool
}

func newSession(srv *Server, id int64, conn net.Conn, rd *bufio.Reader, ciph *sessionCipher) *session {
	return &session{
		id:   id,
		srv:  srv,
		conn: conn,
		rd:   rd,
		ns:   registry.NewNamespace(),
		ciph: ciph,
	}
}

func (s *session) closeConn() {
	s.closeOnce.Do(func() { _ = s.conn.Close() })
}

// loop reads sealed request frames until the connection drops. Admitted
// requests execute on the server's worker pool; admission itself runs
// on the loop goroutine, so a saturated gateway back-pressures the
// session's reads (bounding this session's queued work to one request).
func (s *session) loop() {
	defer s.wg.Wait() // in-flight replies need the connection state
	for {
		payload, err := readFrame(s.rd)
		if err != nil {
			return
		}
		s.srv.bytesIn.Add(uint64(4 + len(payload)))
		plain, err := s.ciph.open(payload)
		if err != nil {
			// Tampered or replayed traffic: the channel is no longer
			// trustworthy, drop the session.
			s.srv.opts.Logf("serve: session %d: %v", s.id, err)
			return
		}
		req, err := decodeRequest(plain)
		if err != nil {
			// Content decode failed under a valid seal: report and keep
			// the session if the request id is recoverable, else drop.
			if req.id != 0 {
				s.reply(req.id, response{status: statusBadRequest, message: err.Error()})
				continue
			}
			return
		}
		s.dispatch(req)
	}
}

// dispatch admits one request and runs it. Typed rejections
// (overload, draining, deadline) reply immediately without executing.
func (s *session) dispatch(req request) {
	var deadline time.Time
	budget := s.srv.opts.RequestTimeout
	if req.budget > 0 && req.budget < budget {
		budget = req.budget
	}
	deadline = time.Now().Add(budget)

	if s.srv.draining.Load() {
		s.srv.rejDraining.Add(1)
		s.reply(req.id, response{status: statusDraining, message: ErrDraining.Error()})
		return
	}
	if s.srv.recovering.Load() {
		s.srv.rejRecovering.Add(1)
		s.reply(req.id, response{status: statusRecovering, message: ErrRecovering.Error()})
		return
	}
	if s.inflight.Load() >= int64(s.srv.opts.SessionInFlight) {
		// The client sees the same overloaded status either way, but the
		// operator-facing counter distinguishes one saturated session
		// from a saturated gateway.
		s.srv.rejSessionBusy.Add(1)
		s.reply(req.id, response{status: statusOverloaded, message: "session in-flight limit"})
		return
	}
	if err := s.srv.adm.acquire(deadline, s.srv.drainCh); err != nil {
		s.countReject(err)
		s.reply(req.id, response{status: errStatus(err), message: err.Error()})
		return
	}
	s.srv.drainMu.RLock()
	if s.srv.draining.Load() {
		s.srv.drainMu.RUnlock()
		s.srv.adm.release()
		s.srv.rejDraining.Add(1)
		s.reply(req.id, response{status: statusDraining, message: ErrDraining.Error()})
		return
	}
	if s.srv.recovering.Load() {
		s.srv.drainMu.RUnlock()
		s.srv.adm.release()
		s.srv.rejRecovering.Add(1)
		s.reply(req.id, response{status: statusRecovering, message: ErrRecovering.Error()})
		return
	}
	s.srv.requests.Add(1)
	s.inflight.Add(1)
	s.wg.Add(1)
	s.srv.reqWG.Add(1)
	s.srv.drainMu.RUnlock()
	start := time.Now()
	s.srv.pool.submit(func() {
		// Continue the client's trace across the session frame: the span
		// joins the injected context (or samples a fresh root for
		// untraced clients) and is handed to the execution frame, so the
		// world's proxy-call spans become its children.
		sp := s.srv.tracer.StartRemote(req.trace, "serve "+req.op)
		sp.SetNode(s.srv.opts.Node)
		sp.SetQueueWait(time.Since(start))
		// done finishes the request: span, reply, and the admission
		// epilogue. On the synchronous path the worker calls it inline;
		// on the async-journal path the durability layer calls it once
		// the mutation is durable — possibly long after this worker
		// moved on. The Once guards a buggy double-completion.
		var once sync.Once
		done := func(result wire.Value, err error) {
			once.Do(func() {
				var ws *WrongShardError
				if errors.As(err, &ws) {
					sp.SetEpoch(ws.Epoch)
					s.srv.events.Emit(telemetry.EventRedirect, s.srv.opts.Node, req.trace.TraceID,
						"%s -> owner %d epoch %d", req.op, ws.Owner, ws.Epoch)
				}
				sp.Finish(err)
				if err != nil {
					s.countReject(err)
					status := errStatus(err)
					if status == statusAppError {
						s.srv.appErrors.Add(1)
					}
					s.reply(req.id, response{status: status, message: errMessage(err)})
				} else {
					s.reply(req.id, response{status: statusOK, result: result})
				}
				s.srv.hRequest.ObserveDuration(time.Since(start))
				s.srv.adm.release()
				s.inflight.Add(-1)
				s.srv.reqWG.Done()
				s.wg.Done()
			})
		}
		result, err, async := s.execute(req, deadline, sp, done)
		if async {
			return // the async journal hook owns completion
		}
		done(result, err)
	})
}

func (s *session) countReject(err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.srv.rejOverload.Add(1)
	case errors.Is(err, ErrDraining):
		s.srv.rejDraining.Add(1)
	case errors.Is(err, ErrRecovering):
		s.srv.rejRecovering.Add(1)
	case errors.Is(err, ErrDeadline):
		s.srv.rejDeadline.Add(1)
	case errors.Is(err, ErrForeignRef):
		s.srv.rejForeign.Add(1)
	case errors.Is(err, ErrWrongShard):
		s.srv.rejWrongShard.Add(1)
	}
}

// reply seals and writes one response frame.
func (s *session) reply(id int64, r response) {
	r.id = id
	plain := encodeResponse(r)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	frame, err := s.ciph.sealFrame(s.sendBuf, plain)
	s.sendBuf = frame
	if err != nil {
		s.closeConn()
		return
	}
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.srv.opts.WriteTimeout))
	_, err = s.conn.Write(frame)
	n := len(frame)
	_ = s.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		// The read loop will observe the broken connection and tear the
		// session down; nothing more to do here.
		s.closeConn()
		return
	}
	s.srv.bytesOut.Add(uint64(n))
}

// execute runs one admitted request against the world. All object
// traffic goes through the session namespace; the world only ever sees
// hashes this session legitimately owns. sp (nil-safe) is the request's
// serve span: execution frames carry it so proxy-call spans nest under
// it, and journaled mutations inherit its context.
//
// async reports that the request's completion was handed to the
// JournalAsync hook (which will call done); the returned value/error
// are then meaningless and the caller must not complete the request.
func (s *session) execute(req request, deadline time.Time, sp *telemetry.Span, done func(wire.Value, error)) (_ wire.Value, _ error, async bool) {
	if time.Now().After(deadline) {
		return wire.Value{}, ErrDeadline, false
	}
	switch req.op {
	case opPing:
		return wire.Null(), nil, false

	case opRelease:
		e, ok := s.ns.Remove(req.handle)
		if !ok {
			return wire.Value{}, ErrForeignRef, false
		}
		// Unpinning makes the object collectable; the mirror is freed by
		// the regular GC-release path (next sweep), not synchronously.
		if err := s.srv.w.Untrusted().Unpin(wire.Ref(e.Class, e.Hash)); err != nil {
			return wire.Value{}, &AppError{Msg: err.Error()}, false
		}
		return wire.Null(), nil, false

	case opNew:
		if err := s.srv.checkClass(req.class); err != nil {
			return wire.Value{}, err, false
		}
		if err := s.shardCheck(opNew, req.class, "", req.args); err != nil {
			return wire.Value{}, err, false
		}
		args, err := s.importValues(req.args)
		if err != nil {
			return wire.Value{}, err, false
		}
		var out wire.Value
		err = s.srv.w.ExecSpan(false, sp, func(env classmodel.Env) error {
			v, err := env.New(req.class, args...)
			if err != nil {
				return err
			}
			out, err = s.exportValue(v)
			return err
		})
		if err != nil {
			return wire.Value{}, appErr(err), false
		}
		m := Mutation{Op: opNew, Class: req.class, Args: args, Trace: sp.Context()}
		if s.journalAsync(m, out, done) {
			return wire.Value{}, nil, true
		}
		if err := s.journal(m); err != nil {
			return wire.Value{}, err, false
		}
		return out, nil, false

	case opBind:
		provider := s.srv.lookupExport(req.class)
		if provider == nil {
			return wire.Value{}, fmt.Errorf("%w: no export named %q", ErrBadRequest, req.class), false
		}
		var out wire.Value
		err := s.srv.w.ExecSpan(false, sp, func(env classmodel.Env) error {
			v, err := provider(env)
			if err != nil {
				return err
			}
			out, err = s.exportValue(v)
			return err
		})
		if err != nil {
			return wire.Value{}, appErr(err), false
		}
		return out, nil, false

	case opCall:
		e, ok := s.ns.Lookup(req.handle)
		if !ok {
			return wire.Value{}, ErrForeignRef, false
		}
		if err := s.shardCheck(opCall, e.Class, req.method, req.args); err != nil {
			return wire.Value{}, err, false
		}
		args, err := s.importValues(req.args)
		if err != nil {
			return wire.Value{}, err, false
		}
		var out wire.Value
		err = s.srv.w.ExecSpan(false, sp, func(env classmodel.Env) error {
			v, err := env.Call(wire.Ref(e.Class, e.Hash), req.method, args...)
			if err != nil {
				return err
			}
			out, err = s.exportValue(v)
			return err
		})
		if err != nil {
			return wire.Value{}, appErr(err), false
		}
		m := Mutation{Op: opCall, Class: e.Class, Method: req.method, Args: args, Trace: sp.Context()}
		if s.journalAsync(m, out, done) {
			return wire.Value{}, nil, true
		}
		if err := s.journal(m); err != nil {
			return wire.Value{}, err, false
		}
		return out, nil, false
	}
	return wire.Value{}, ErrBadRequest, false
}

// shardCheck consults the partition predicate before a state-touching
// request executes. Runs on raw request args (session handles, not
// world refs): partition keys are plain values, and a redirected
// request must not import handles it will never use.
func (s *session) shardCheck(op, class, method string, args []wire.Value) error {
	check := s.srv.opts.ShardCheck
	if check == nil {
		return nil
	}
	return check(op, class, method, args)
}

// journalAsync hands a successfully executed mutation to the pipelined
// durability hook, transferring completion ownership: the hook calls
// complete when the mutation is durable, and complete finishes the
// request with out (or withholds the OK on a journal error — the
// mutation ran but is not durable, so the client must not be told it
// succeeded). Returns false when no async hook is configured.
func (s *session) journalAsync(m Mutation, out wire.Value, done func(wire.Value, error)) bool {
	ja := s.srv.opts.JournalAsync
	if ja == nil {
		return false
	}
	ja(m, func(jerr error) {
		if jerr != nil {
			done(wire.Value{}, &AppError{Msg: "journal: " + jerr.Error()})
			return
		}
		done(out, nil)
	})
	return true
}

// journal hands a successfully executed mutation to the durability
// hook. A failure withholds the OK: the mutation ran but is not
// durable, so the client must not be told it succeeded.
func (s *session) journal(m Mutation) error {
	j := s.srv.opts.Journal
	if j == nil {
		return nil
	}
	if err := j(m); err != nil {
		return &AppError{Msg: "journal: " + err.Error()}
	}
	return nil
}

// appErr passes gateway sentinels through and wraps anything else as an
// application error.
func appErr(err error) error {
	if errors.Is(err, ErrForeignRef) || errors.Is(err, ErrBadRequest) || errors.Is(err, ErrDeadline) {
		return err
	}
	return &AppError{Msg: err.Error()}
}

// importValues translates request arguments from session handles to
// world refs, rejecting handles this namespace never issued.
func (s *session) importValues(vals []wire.Value) ([]wire.Value, error) {
	out := make([]wire.Value, len(vals))
	for i, v := range vals {
		iv, err := s.importValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = iv
	}
	return out, nil
}

func (s *session) importValue(v wire.Value) (wire.Value, error) {
	switch v.Kind() {
	case wire.KindRef:
		_, handle, _ := v.AsRef()
		e, ok := s.ns.Lookup(handle)
		if !ok {
			return wire.Value{}, ErrForeignRef
		}
		return wire.Ref(e.Class, e.Hash), nil
	case wire.KindList:
		vs, _ := v.AsList()
		out := make([]wire.Value, len(vs))
		for i, el := range vs {
			iv, err := s.importValue(el)
			if err != nil {
				return wire.Value{}, err
			}
			out[i] = iv
		}
		return wire.List(out...), nil
	case wire.KindMap:
		pairs, _ := v.AsMap()
		out := make([]wire.Pair, len(pairs))
		for i, p := range pairs {
			iv, err := s.importValue(p.Val)
			if err != nil {
				return wire.Value{}, err
			}
			out[i] = wire.Pair{Key: p.Key, Val: iv}
		}
		return wire.Map(out...), nil
	default:
		return v, nil
	}
}

// exportValue translates a result for the wire: every object ref is
// pinned (so it survives the Exec frame's release) and renamed to a
// session handle. Must run inside the Exec frame, while the frame still
// retains the object. An object the namespace already names keeps its
// canonical handle and the duplicate pin is dropped.
func (s *session) exportValue(v wire.Value) (wire.Value, error) {
	switch v.Kind() {
	case wire.KindRef:
		class, hash, _ := v.AsRef()
		rt := s.srv.w.Untrusted()
		if err := rt.Pin(v); err != nil {
			return wire.Value{}, err
		}
		handle, added := s.ns.Add(class, hash)
		if !added {
			// Duplicate (or a namespace drained by teardown racing this
			// request): keep exactly one retention per live handle.
			if err := rt.Unpin(v); err != nil {
				return wire.Value{}, err
			}
			if handle == 0 {
				return wire.Value{}, ErrDraining
			}
		}
		return wire.Ref(class, handle), nil
	case wire.KindList:
		vs, _ := v.AsList()
		out := make([]wire.Value, len(vs))
		for i, el := range vs {
			ev, err := s.exportValue(el)
			if err != nil {
				return wire.Value{}, err
			}
			out[i] = ev
		}
		return wire.List(out...), nil
	case wire.KindMap:
		pairs, _ := v.AsMap()
		out := make([]wire.Pair, len(pairs))
		for i, p := range pairs {
			ev, err := s.exportValue(p.Val)
			if err != nil {
				return wire.Value{}, err
			}
			out[i] = wire.Pair{Key: p.Key, Val: ev}
		}
		return wire.Map(out...), nil
	default:
		return v, nil
	}
}

// teardown releases everything the session owns: the namespace drains,
// each retained object is unpinned, and a collect + sweep pushes the
// freed proxies through the existing GC-release path so their mirrors
// (and any enclave-side state) are reclaimed. Runs after the read loop
// and all in-flight requests have finished.
func (s *session) teardown() {
	s.closeConn()
	s.wg.Wait()
	entries := s.ns.Drain()
	if len(entries) == 0 {
		return
	}
	if s.dead.Load() || s.srv.recovering.Load() {
		// The session was invalidated by recovery: its objects died with
		// the enclave incarnation that owned them, and the world may be
		// mid-rebuild. Nothing to release.
		return
	}
	rt := s.srv.w.Untrusted()
	if rt == nil {
		// The world was killed out from under the gateway (failover
		// drills do this): the objects died with the enclave.
		return
	}
	for _, e := range entries {
		if err := rt.Unpin(wire.Ref(e.Class, e.Hash)); err != nil {
			s.srv.opts.Logf("serve: session %d unpin %s#%d: %v", s.id, e.Class, e.Handle, err)
		}
	}
	if err := rt.Collect(); err != nil {
		s.srv.opts.Logf("serve: session %d collect: %v", s.id, err)
		return
	}
	if err := s.srv.w.SweepOnce(rt); err != nil {
		s.srv.opts.Logf("serve: session %d sweep: %v", s.id, err)
	}
}
