package serve

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"montsalvat/internal/wire"
)

func testCipherPair(t *testing.T) (client, server *sessionCipher) {
	t.Helper()
	var key [32]byte
	copy(key[:], []byte("0123456789abcdef0123456789abcdef"))
	c, err := newSessionCipher(key, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSessionCipher(key, false)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestSessionCipherRoundTrip(t *testing.T) {
	c, s := testCipherPair(t)
	for i := 0; i < 5; i++ {
		msg := []byte{byte(i), 1, 2, 3}
		got, err := s.open(c.seal(msg))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("frame %d: got %x, want %x", i, got, msg)
		}
		back, err := c.open(s.seal([]byte("reply")))
		if err != nil || string(back) != "reply" {
			t.Fatalf("reply %d: %q, %v", i, back, err)
		}
	}
}

func TestSessionCipherRejectsTamper(t *testing.T) {
	c, s := testCipherPair(t)
	sealed := c.seal([]byte("payload"))
	sealed[len(sealed)/2] ^= 0x01
	if _, err := s.open(sealed); err == nil {
		t.Fatal("tampered frame accepted")
	}
}

// TestSessionCipherRejectsReplayAndReorder: the counter nonce makes each
// frame valid exactly once, in order.
func TestSessionCipherRejectsReplayAndReorder(t *testing.T) {
	c, s := testCipherPair(t)
	f1 := c.seal([]byte("one"))
	f2 := c.seal([]byte("two"))
	if _, err := s.open(f2); err == nil {
		t.Fatal("out-of-order frame accepted")
	}
	if _, err := s.open(f1); err != nil {
		t.Fatalf("in-order frame rejected: %v", err)
	}
	if _, err := s.open(f1); err == nil {
		t.Fatal("replayed frame accepted")
	}
}

// TestSessionCipherDirectionality: a peer cannot reflect a frame back.
func TestSessionCipherDirectionality(t *testing.T) {
	c, _ := testCipherPair(t)
	sealed := c.seal([]byte("to server"))
	if _, err := c.open(sealed); err == nil {
		t.Fatal("reflected frame accepted")
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	reqs := []request{
		{id: 1, op: opPing, budget: time.Second},
		{id: 2, op: opNew, class: "KVStore", budget: 250 * time.Millisecond,
			args: []wire.Value{wire.Str("x"), wire.Int(7)}},
		{id: 3, op: opCall, handle: 42, method: "put",
			args: []wire.Value{wire.Ref("Entry", 5), wire.List(wire.Bool(true))}},
		{id: 4, op: opRelease, handle: 9},
	}
	for _, want := range reqs {
		got, err := decodeRequest(encodeRequest(want))
		if err != nil {
			t.Fatalf("%s: %v", want.op, err)
		}
		if got.id != want.id || got.op != want.op || got.class != want.class ||
			got.handle != want.handle || got.method != want.method ||
			len(got.args) != len(want.args) {
			t.Fatalf("%s: got %+v, want %+v", want.op, got, want)
		}
	}
}

func TestRequestCodecRejects(t *testing.T) {
	if _, err := decodeRequest(nil); err == nil {
		t.Fatal("empty request accepted")
	}
	bad := encodeRequest(request{id: 7, op: "evict", budget: time.Second})
	r, err := decodeRequest(bad)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown op: %v", err)
	}
	if r.id != 7 {
		t.Fatalf("request id lost on decode error: %d", r.id)
	}
}

func TestResponseStatusMapping(t *testing.T) {
	cases := []struct {
		status string
		want   error
	}{
		{statusOverloaded, ErrOverloaded},
		{statusDraining, ErrDraining},
		{statusDeadline, ErrDeadline},
		{statusForeignRef, ErrForeignRef},
		{statusBadRequest, ErrBadRequest},
		{statusSession, ErrSessionLimit},
	}
	for _, tc := range cases {
		resp, err := decodeResponse(encodeResponse(response{id: 1, status: tc.status, message: "m"}))
		if err != nil {
			t.Fatalf("%s: %v", tc.status, err)
		}
		if got := resp.err(); !errors.Is(got, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.status, got, tc.want)
		}
		// errStatus is the inverse map.
		if got := errStatus(tc.want); got != tc.status {
			t.Fatalf("errStatus(%v) = %s, want %s", tc.want, got, tc.status)
		}
	}
	ok, err := decodeResponse(encodeResponse(response{id: 2, status: statusOK, result: wire.Int(5)}))
	if err != nil || ok.err() != nil {
		t.Fatalf("ok response: %v, %v", err, ok.err())
	}
	if n, _ := ok.result.AsInt(); n != 5 {
		t.Fatalf("result = %v", ok.result)
	}
	app, _ := decodeResponse(encodeResponse(response{id: 3, status: statusAppError, message: "boom"}))
	var appErr *AppError
	if !errors.As(app.err(), &appErr) || appErr.Msg != "boom" {
		t.Fatalf("app error = %v", app.err())
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame announcement accepted")
	}
}
