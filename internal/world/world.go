// Package world implements the Montsalvat application runtime: the glue
// that executes a partitioned program across the trusted (enclave) and
// untrusted runtimes.
//
// A World owns up to two Runtimes, each the analog of a GraalVM isolate
// loaded from one native image (§5.4: "At runtime, a GraalVM isolate is
// created in both the trusted and untrusted part of the application").
// Cross-runtime object communication follows §5.2: instantiating or
// invoking a class that is a proxy in the local image marshals the
// arguments, performs an ecall/ocall transition through the simulated
// enclave, and dispatches the corresponding relay method in the opposite
// runtime, which resolves the mirror object in its mirror–proxy registry.
//
// GC synchronisation follows §5.5: each runtime weak-tracks its proxy
// objects; a GC helper thread per runtime periodically sweeps the weak
// list and releases the mirrors of dead proxies in the opposite runtime's
// registry, making them collectable.
package world

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/boundary"
	"montsalvat/internal/classmodel"
	"montsalvat/internal/cycles"
	"montsalvat/internal/edl"
	"montsalvat/internal/heap"
	"montsalvat/internal/image"
	"montsalvat/internal/ring"
	"montsalvat/internal/sgx"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/wire"
)

// Reserved transition identifiers (application relay routines use the
// EDL-assigned positive IDs; the shim uses the 9000 range).
const (
	idGCHelper = 9100 // long-running ecall hosting the trusted GC helper
	idGCSweep  = 9101 // cross-boundary mirror-release batches
	idBatch    = 9102 // batched relay-call frames (boundary dispatch layer)
	idMain     = 9200 // unpartitioned main entry ecall
	idExec     = 9201 // ad-hoc trusted execution (benchmark harness)
)

// gcReleaseMethod marks a batched-frame entry as a registry release
// rather than a relay invocation. The name cannot collide with relay
// methods, which all carry the transform.RelayPrefix.
const gcReleaseMethod = "<gc-release>"

// Mode selects the deployment configuration evaluated in the paper.
type Mode int

// Deployment modes.
const (
	// ModePartitioned runs the transformed application across an
	// untrusted runtime and a trusted runtime inside the enclave.
	ModePartitioned Mode = iota + 1
	// ModeUnpartitionedSGX runs the whole unmodified application as one
	// native image inside the enclave (§5.6).
	ModeUnpartitionedSGX
	// ModeNoSGX runs the whole application as one native image with no
	// enclave — the paper's NoSGX baseline.
	ModeNoSGX
)

func (m Mode) String() string {
	switch m {
	case ModePartitioned:
		return "partitioned"
	case ModeUnpartitionedSGX:
		return "unpartitioned-sgx"
	case ModeNoSGX:
		return "no-sgx"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors returned by the runtime.
var (
	ErrNoSuchObject   = errors.New("world: no live object for hash")
	ErrStaleMirror    = errors.New("world: mirror released; proxy outlived registry entry")
	ErrNeutralByValue = errors.New("world: neutral objects cross the boundary by value, not by reference")
	ErrBadArity       = errors.New("world: argument count mismatch")
	ErrNotRef         = errors.New("world: receiver is not an object reference")
	ErrWrongRuntime   = errors.New("world: operation not available in this mode")
)

// Options configures a World.
type Options struct {
	// Cfg is the platform cost configuration.
	Cfg simcfg.Config
	// TrustedHeap and UntrustedHeap size the isolate heaps.
	TrustedHeap   heap.Config
	UntrustedHeap heap.Config
	// HostFS is the untrusted filesystem (defaults to an in-memory FS).
	HostFS shim.FS
	// NumTCS bounds concurrent enclave threads (default 32; relay chains
	// consume one slot per nesting level).
	NumTCS int
	// Signer signs the trusted image (generated when nil).
	Signer *sgx.Signer
	// GCHelperInterval overrides Cfg.GCHelperInterval when positive: the
	// scan period of the GC helper threads. Long-lived servers with many
	// sessions tune this down so released sessions' mirrors are reclaimed
	// promptly (see World.SweepStats for observed cadence).
	GCHelperInterval time.Duration
	// Telemetry, when non-nil, instruments every boundary crossing:
	// transition latency/cycle histograms, batching queue waits, GC sweep
	// counters and — if the bundle has tracing enabled — sampled spans
	// per proxy-call chain. Nil disables observability at a cost of one
	// branch per instrumented site.
	Telemetry *telemetry.Telemetry
}

// DefaultOptions returns options suitable for tests.
func DefaultOptions() Options {
	return Options{
		Cfg:           simcfg.ForTest(),
		TrustedHeap:   heap.Config{InitialSemi: 1 << 20, MaxSemi: 256 << 20},
		UntrustedHeap: heap.Config{InitialSemi: 1 << 20, MaxSemi: 256 << 20},
	}
}

// World hosts a running (possibly partitioned) application.
type World struct {
	mode    Mode
	cfg     simcfg.Config
	clock   *cycles.Clock
	enclave *sgx.Enclave // nil in ModeNoSGX
	iface   *edl.File    // nil unless partitioned

	trusted   *Runtime // nil in ModeNoSGX
	untrusted *Runtime // nil in ModeUnpartitionedSGX

	// stateMu guards the rebuildable state (enclave, runtimes,
	// dispatcher, pools) against the restart path: Kill/Restart swap
	// them under the write lock while accessors, Exec and the telemetry
	// collector read under the read lock. buildOpts/tImg/uImg retain the
	// build inputs — including the signing identity, so a re-created
	// enclave keeps its MRSIGNER and can unseal persistent state.
	stateMu   sync.RWMutex
	buildOpts Options
	tImg      *image.Image
	uImg      *image.Image
	killed    bool
	helpersOn bool // helpers were running when Kill hit; Restart revives them

	// disp routes every cross-runtime transition (nil unless
	// partitioned); bufs recycles marshal buffers; batching mirrors
	// cfg.Batching for the remote-call hot path.
	disp     *boundary.Dispatcher
	bufs     *boundary.BufPool
	batching bool

	// erings/orings are the zero-copy ring groups (nil unless
	// cfg.Rings); the dispatcher owns their shutdown, these references
	// feed the stats collectors. meeBytes counts bytes charged at MEE
	// copy rate on the frame path — the "copies" component of the
	// dispatch cycle breakdown.
	erings   *ring.Group
	orings   *ring.Group
	meeBytes atomic.Uint64

	// tel is the optional observability layer (nil when disabled); epool
	// and opool are retained for the occupancy collector. hMarshal is the
	// cached marshal-bytes histogram (nil when telemetry is off).
	tel      *telemetry.Telemetry
	epool    *sgx.SwitchlessPool
	opool    *sgx.HostPool
	hMarshal *telemetry.Histogram

	hashCounter atomic.Int64

	helperStop     chan struct{}
	helperWG       sync.WaitGroup
	helperOn       bool
	helperInterval time.Duration

	hostFS shim.FS
}

// NewPartitioned creates a world from the two images produced by the
// Montsalvat pipeline plus their enclave interface. The trusted image is
// loaded into the enclave, measured and verified before use (Fig. 1).
func NewPartitioned(opts Options, tImg, uImg *image.Image, iface *edl.File) (*World, error) {
	if tImg == nil || uImg == nil || iface == nil {
		return nil, errors.New("world: partitioned mode needs both images and the enclave interface")
	}
	if tImg.Kind() != image.TrustedImage || uImg.Kind() != image.UntrustedImage {
		return nil, errors.New("world: image kinds mismatched")
	}
	if opts.Signer == nil {
		// Generate the signing identity up front and retain it in the
		// build options: a restarted enclave must be re-signed by the
		// same author or its MRSIGNER-sealed state becomes unreadable.
		signer, err := sgx.NewSigner()
		if err != nil {
			return nil, err
		}
		opts.Signer = signer
	}
	w, err := newWorld(ModePartitioned, opts)
	if err != nil {
		return nil, err
	}
	w.iface = iface
	w.buildOpts = opts
	w.tImg, w.uImg = tImg, uImg
	if err := w.initEnclave(opts, tImg); err != nil {
		return nil, err
	}
	w.trusted, err = w.newRuntime("trusted", true, tImg, opts.TrustedHeap)
	if err != nil {
		return nil, err
	}
	w.untrusted, err = w.newRuntime("untrusted", false, uImg, opts.UntrustedHeap)
	if err != nil {
		return nil, err
	}
	if err := w.initBoundary(); err != nil {
		return nil, err
	}
	if err := w.runStaticInits(); err != nil {
		return nil, err
	}
	return w, nil
}

// initBoundary builds the boundary dispatch layer of a partitioned
// world: the routing dispatcher, the per-runtime batching queues, and —
// in switchless mode — the resident worker pools of both directions.
func (w *World) initBoundary() error {
	w.disp = boundary.NewDispatcher(w.enclave, w.clock)
	w.disp.SetTelemetry(w.tel.Registry())
	if w.cfg.Switchless {
		epool, err := w.enclave.StartSwitchless(w.cfg.SwitchlessWorkers)
		if err != nil {
			return fmt.Errorf("world: switchless ecall pool: %w", err)
		}
		opool, err := w.enclave.StartSwitchlessHost(w.cfg.SwitchlessWorkers)
		if err != nil {
			epool.Stop()
			return fmt.Errorf("world: switchless ocall pool: %w", err)
		}
		w.disp.UsePools(epool, opool)
		w.epool, w.opool = epool, opool
	}
	if w.cfg.Rings {
		rcfg := ring.Config{
			Workers:   w.cfg.RingWorkers,
			Slots:     w.cfg.RingSlots,
			SlotBytes: w.cfg.RingSlotBytes,
		}
		// The ecall group's consumers are resident INSIDE the enclave
		// (each holds a TCS slot for the group's lifetime, like a
		// switchless worker); the ocall group's consumers are plain host
		// goroutines.
		erings, err := ring.NewGroup(rcfg, w.clock, w.ringHandler(w.trusted), w.enclave.EnterResident)
		if err != nil {
			return fmt.Errorf("world: ecall ring group: %w", err)
		}
		orings, err := ring.NewGroup(rcfg, w.clock, w.ringHandler(w.untrusted), nil)
		if err != nil {
			erings.Close()
			return fmt.Errorf("world: ocall ring group: %w", err)
		}
		erings.SetTelemetry(w.tel.Registry(), "ecall")
		orings.SetTelemetry(w.tel.Registry(), "ocall")
		w.disp.UseRings(erings, orings)
		w.erings, w.orings = erings, orings
	}
	w.batching = w.cfg.Batching
	watermark := w.cfg.BatchWatermark
	if watermark <= 0 {
		watermark = simcfg.DefaultBatchWatermark
	}
	w.trusted.queue = boundary.NewQueue(watermark, w.batchRun(w.trusted))
	w.untrusted.queue = boundary.NewQueue(watermark, w.batchRun(w.untrusted))
	if reg := w.tel.Registry(); reg != nil {
		wait := reg.Histogram("montsalvat_boundary_queue_wait_ns")
		size := reg.Histogram("montsalvat_boundary_batch_size")
		w.trusted.queue.SetTelemetry(wait, size)
		w.untrusted.queue.SetTelemetry(wait, size)
	}
	return nil
}

// NewUnpartitioned creates a world running a single whole-application
// image, either inside the enclave (§5.6) or without SGX.
func NewUnpartitioned(opts Options, img *image.Image, inEnclave bool) (*World, error) {
	if img == nil {
		return nil, errors.New("world: nil image")
	}
	mode := ModeNoSGX
	if inEnclave {
		mode = ModeUnpartitionedSGX
	}
	w, err := newWorld(mode, opts)
	if err != nil {
		return nil, err
	}
	if inEnclave {
		if err := w.initEnclave(opts, img); err != nil {
			return nil, err
		}
		w.trusted, err = w.newRuntime("trusted", true, img, opts.TrustedHeap)
		if err != nil {
			return nil, err
		}
	} else {
		w.untrusted, err = w.newRuntime("untrusted", false, img, opts.UntrustedHeap)
		if err != nil {
			return nil, err
		}
	}
	if err := w.runStaticInits(); err != nil {
		return nil, err
	}
	return w, nil
}

func newWorld(mode Mode, opts Options) (*World, error) {
	hostFS := opts.HostFS
	if hostFS == nil {
		hostFS = shim.NewMemFS()
	}
	cfg := opts.Cfg
	if cfg.CPUHz == 0 {
		cfg = simcfg.ForTest()
	}
	clockMode := cycles.ModeVirtual
	if cfg.Spin {
		clockMode = cycles.ModeSpin
		if cfg.SleepCharges {
			clockMode = cycles.ModeSleep
		}
	}
	w := &World{
		mode:           mode,
		cfg:            cfg,
		clock:          cycles.NewWithMode(cfg.CPUHz, clockMode),
		bufs:           boundary.NewBufPool(),
		hostFS:         hostFS,
		helperInterval: opts.GCHelperInterval,
		tel:            opts.Telemetry,
	}
	if reg := w.tel.Registry(); reg != nil {
		w.hMarshal = reg.Histogram("montsalvat_boundary_marshal_bytes")
		reg.RegisterCollector(w.collectMetrics)
	}
	return w, nil
}

// initEnclave performs the SGX application-creation phase: create the
// enclave, add and measure the trusted image, sign and verify (Fig. 1).
func (w *World) initEnclave(opts Options, tImg *image.Image) error {
	numTCS := opts.NumTCS
	if numTCS <= 0 {
		numTCS = 32
	}
	encl, err := sgx.Create(w.cfg, w.clock, numTCS)
	if err != nil {
		return err
	}
	if err := encl.AddPages(tImg.Bytes()); err != nil {
		return err
	}
	signer := opts.Signer
	if signer == nil {
		signer, err = sgx.NewSigner()
		if err != nil {
			return err
		}
	}
	ss, err := signer.Sign(encl.Measurement())
	if err != nil {
		return err
	}
	if err := encl.Init(ss); err != nil {
		return fmt.Errorf("world: enclave init: %w", err)
	}
	w.enclave = encl
	return nil
}

func (w *World) newRuntime(name string, trusted bool, img *image.Image, hc heap.Config) (*Runtime, error) {
	if hc.InitialSemi == 0 {
		hc = heap.Config{InitialSemi: 1 << 20, MaxSemi: 256 << 20}
	}
	var (
		h   *heap.Heap
		err error
	)
	if trusted {
		h, err = heap.New(hc, func(size int) (heap.Backend, error) {
			return w.enclave.NewMemory(size)
		})
	} else {
		h, err = heap.NewPlain(hc)
	}
	if err != nil {
		return nil, fmt.Errorf("world: %s heap: %w", name, err)
	}
	rt, err := newRuntime(w, name, trusted, img, h)
	if err != nil {
		return nil, err
	}
	if reg := w.tel.Registry(); reg != nil {
		// Lock hold-time histogram of the registry's mutating critical
		// sections — with the shard-wait gauges, the contention telemetry
		// of the concurrent crossing engine.
		rt.reg.SetHoldObserver(reg.Histogram("montsalvat_registry_lock_hold_ns").Observe)
	}
	if trusted {
		rt.fs = shim.NewTrustedShim(w.enclave, w.hostFS)
	} else {
		rt.fs = w.hostFS
	}
	return rt, nil
}

// runStaticInits executes every reachable <clinit> — the analog of
// GraalVM's build-time class initialisation whose results are shipped in
// the image heap (§2.2). It runs before main with no transition costs.
func (w *World) runStaticInits() error {
	for _, rt := range []*Runtime{w.trusted, w.untrusted} {
		if rt == nil {
			continue
		}
		for _, c := range rt.img.Classes() {
			ref := classmodel.MethodRef{Class: c.Name, Method: classmodel.StaticInitName}
			if !rt.img.MethodCompiled(ref) {
				continue
			}
			if _, err := rt.dispatch(ref, wire.Null(), nil, nil); err != nil {
				return fmt.Errorf("world: <clinit> of %s: %w", c.Name, err)
			}
		}
	}
	return nil
}

// Mode returns the deployment mode.
func (w *World) Mode() Mode { return w.mode }

// Clock returns the world's cycle clock.
func (w *World) Clock() *cycles.Clock { return w.clock }

// Enclave returns the enclave (nil in ModeNoSGX, or while killed).
func (w *World) Enclave() *sgx.Enclave {
	w.stateMu.RLock()
	defer w.stateMu.RUnlock()
	return w.enclave
}

// Trusted returns the trusted runtime (nil in ModeNoSGX, or while
// killed).
func (w *World) Trusted() *Runtime {
	w.stateMu.RLock()
	defer w.stateMu.RUnlock()
	return w.trusted
}

// Untrusted returns the untrusted runtime (nil in ModeUnpartitionedSGX,
// or while killed).
func (w *World) Untrusted() *Runtime {
	w.stateMu.RLock()
	defer w.stateMu.RUnlock()
	return w.untrusted
}

// HostFS returns the untrusted filesystem.
func (w *World) HostFS() shim.FS { return w.hostFS }

// Telemetry returns the observability layer (nil when disabled).
func (w *World) Telemetry() *telemetry.Telemetry { return w.tel }

func (w *World) nextHash() int64 { return w.hashCounter.Add(1) }

// mainRuntime returns the runtime hosting the application main.
func (w *World) mainRuntime() *Runtime {
	if w.mode == ModeUnpartitionedSGX {
		return w.trusted
	}
	return w.untrusted
}

// RunMain invokes the application's main entry point and returns its
// result value. In partitioned and NoSGX modes main runs in the untrusted
// runtime (§5.3); in unpartitioned SGX mode the whole application —
// including main — executes inside the enclave behind a single ecall
// (§5.6).
func (w *World) RunMain() (wire.Value, error) {
	rt := w.mainRuntime()
	if rt == nil {
		return wire.Value{}, ErrWrongRuntime
	}
	prog := rt.img.Program()
	if prog.MainClass == "" {
		return wire.Value{}, errors.New("world: image has no main entry point")
	}
	var result wire.Value
	run := func() error {
		var err error
		result, err = rt.dispatch(classmodel.MethodRef{Class: prog.MainClass, Method: prog.MainMethod}, wire.Null(), nil, nil)
		return err
	}
	if w.mode == ModeUnpartitionedSGX {
		if err := w.enclave.Ecall(idMain, run); err != nil {
			return wire.Value{}, err
		}
		return result, nil
	}
	if err := run(); err != nil {
		return wire.Value{}, err
	}
	return result, nil
}

// ExecMain runs fn in the runtime that hosts the application main: the
// untrusted runtime in partitioned and NoSGX modes, the trusted runtime
// (behind an ecall) in unpartitioned SGX mode.
func (w *World) ExecMain(fn func(env classmodel.Env) error) error {
	return w.Exec(w.mode == ModeUnpartitionedSGX, fn)
}

// Exec runs fn with an execution environment in the chosen runtime — the
// harness used by benchmarks and examples to drive application objects
// directly. Trusted execution enters the enclave through one ecall.
func (w *World) Exec(trusted bool, fn func(env classmodel.Env) error) error {
	return w.ExecSpan(trusted, nil, fn)
}

// ExecSpan is Exec with an inbound trace span attached to the execution
// frame: proxy calls made by fn become children of sp, so a trace that
// began on another World (a gateway request, a peer call) continues
// through this one. A nil sp is exactly Exec.
func (w *World) ExecSpan(trusted bool, sp *telemetry.Span, fn func(env classmodel.Env) error) error {
	w.stateMu.RLock()
	var rt *Runtime
	if trusted {
		rt = w.trusted
	} else {
		rt = w.untrusted
	}
	encl := w.enclave
	w.stateMu.RUnlock()
	if rt == nil {
		return ErrWrongRuntime
	}
	run := func() error {
		fr := rt.newFrame()
		fr.span = sp
		defer rt.releaseFrame(fr)
		return fn(&env{rt: rt, fr: fr})
	}
	if trusted && encl != nil {
		return encl.Ecall(idExec, run)
	}
	return run()
}

// StartGCHelpers spawns the per-runtime GC helper threads (§5.5: "two GC
// helper threads are spawned in the application: one to scan the trusted
// list in the enclave, and the other to scan the untrusted list"). The
// trusted helper occupies an enclave thread for its lifetime.
func (w *World) StartGCHelpers() {
	if w.helperOn || w.mode != ModePartitioned {
		return
	}
	w.helperOn = true
	w.helperStop = make(chan struct{})
	interval := w.helperInterval
	if interval <= 0 {
		interval = w.cfg.GCHelperInterval
	}
	if interval <= 0 {
		interval = time.Second
	}
	for _, rt := range []*Runtime{w.trusted, w.untrusted} {
		rt := rt
		w.helperWG.Add(1)
		go func() {
			defer w.helperWG.Done()
			if rt.trusted {
				// The trusted helper lives inside the enclave: one
				// long-running ecall hosts its scan loop.
				_ = w.enclave.Ecall(idGCHelper, func() error {
					w.helperLoop(rt, interval)
					return nil
				})
				return
			}
			w.helperLoop(rt, interval)
		}()
	}
}

// StopGCHelpers stops the helper threads and waits for them to exit.
func (w *World) StopGCHelpers() {
	if !w.helperOn {
		return
	}
	close(w.helperStop)
	w.helperWG.Wait()
	w.helperOn = false
}

func (w *World) helperLoop(rt *Runtime, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// The helper already executes inside its hosting thread
			// (the trusted helper's long-running ecall), so it sweeps
			// directly.
			_ = w.sweep(rt) // helper degrades gracefully
		case <-w.helperStop:
			return
		}
	}
}

// SweepOnce performs one GC-helper scan for rt: dead proxies are removed
// from the weak list and their mirrors released in the opposite runtime's
// registry, via a single batched transition. Sweeping the trusted runtime
// from outside enters the enclave first, like spawning one helper scan.
func (w *World) SweepOnce(rt *Runtime) error {
	if rt == nil {
		return ErrWrongRuntime
	}
	if rt.trusted && w.enclave != nil {
		return w.enclave.Ecall(idGCHelper, func() error { return w.sweep(rt) })
	}
	return w.sweep(rt)
}

// sweep is SweepOnce's body, callable from a thread already inside the
// enclave.
func (w *World) sweep(rt *Runtime) error {
	if rt == nil {
		return ErrWrongRuntime
	}
	// SweepDead dereferences weak refs on rt's heap: hold rt's heap lock.
	rt.heapMu.Lock()
	dead, err := rt.weaks.SweepDead()
	rt.heapMu.Unlock()
	if err != nil {
		return err
	}
	rt.recordSweep(len(dead))
	if len(dead) == 0 {
		return nil
	}
	opposite := w.opposite(rt)
	if opposite == nil {
		return nil
	}
	// In batching mode the releases join the runtime's call queue: the
	// flush runs any pending relay calls first — while their target
	// mirrors are still registered — then the releases, all in one
	// batched transition.
	if w.batching && rt.queue != nil && w.enclave != nil {
		for _, hash := range dead {
			if err := rt.queue.Enqueue(boundary.Entry{ID: idGCSweep, Method: gcReleaseMethod, Hash: hash}); err != nil {
				return err
			}
		}
		return rt.queue.Flush()
	}
	release := func() error {
		// Registry releases take only shard locks; the dropped mirror
		// handles are released via the opposite runtime's heap lock by
		// the registry's releaser hook — never while rt's is held.
		for _, hash := range dead {
			if _, err := opposite.reg.Release(hash); err != nil {
				return err
			}
		}
		return nil
	}
	// The removal message crosses the enclave boundary: the trusted
	// helper ocalls out, the untrusted helper ecalls in.
	if w.enclave != nil {
		sp := w.tel.Tracer().StartRoot("gc-sweep " + rt.name)
		sp.SetBatchSize(len(dead))
		err := w.disp.InvokeSpan(!rt.trusted, idGCSweep, false, sp, release)
		sp.Finish(err)
		return err
	}
	return release()
}

func (w *World) opposite(rt *Runtime) *Runtime {
	if rt == w.trusted {
		return w.untrusted
	}
	return w.trusted
}

// batchRun builds rt's queue-flush callback: pack the drained batch
// into one wire frame, cross the boundary once, and run every call on
// the opposite runtime in order. Individual call errors are joined —
// one failing call does not stop the calls after it.
func (w *World) batchRun(rt *Runtime) func([]boundary.Entry) error {
	return func(entries []boundary.Entry) error {
		to := w.opposite(rt)
		if to == nil {
			return ErrWrongRuntime
		}
		// A flush is a trace root: one span for the whole coalesced
		// transition, parenting any calls its batched relays make.
		sp := w.tel.Tracer().StartRoot("batch-flush " + rt.name)
		sp.SetBatchSize(len(entries))
		if sp != nil && entries[0].EnqueuedNS != 0 {
			sp.SetQueueWait(time.Duration(time.Now().UnixNano() - entries[0].EnqueuedNS))
		}

		// Ring route first: each batched call becomes its own submission
		// entry, published back to back so the consumer drains them in
		// shared wakeups — adaptive batching without building (and MEE-
		// copying) a coalesced frame. All-or-nothing: oversized or busy
		// rings fall through to the frame path.
		if w.enclave != nil && w.disp.HasRings(to.trusted) {
			rents := make([]ring.BatchEntry, len(entries))
			for i := range entries {
				e := entries[i]
				rents[i] = ring.BatchEntry{
					ID:   e.ID,
					Need: wire.CallSize(e.Class, e.Method, e.Hash, len(e.Args)),
					Sp:   sp,
					Fill: func(slot []byte) ([]byte, error) {
						slot = wire.AppendCallHeader(slot, e.Class, e.Method, e.Hash, 0, len(e.Args))
						return append(slot, e.Args...), nil
					},
				}
			}
			if ran, rerr := w.disp.InvokeRingBatch(to.trusted, rents); ran {
				sp.Finish(rerr)
				for _, e := range entries {
					w.bufs.Put(e.Args)
				}
				return rerr
			}
		}

		calls := make([]wire.FrameCall, len(entries))
		for i, e := range entries {
			calls[i] = wire.FrameCall{Class: e.Class, Method: e.Method, Hash: e.Hash, Args: e.Args}
		}
		frame := wire.AppendFrame(w.bufs.Get(wire.FrameSize(calls)), calls)
		sp.AddMarshalBytes(len(frame))
		invoke := func() error {
			decoded, err := wire.UnmarshalFrame(frame)
			if err != nil {
				return fmt.Errorf("world: corrupt batch frame: %w", err)
			}
			var errs []error
			for _, c := range decoded {
				errs = append(errs, w.runBatchedCall(to, c, sp))
			}
			return errors.Join(errs...)
		}
		var err error
		if w.enclave != nil {
			// The frame crosses the boundary once, streaming through
			// the MEE like any marshalled argument buffer.
			w.clock.ChargeBytes(len(frame), simcfg.MEEBytesPerCycle)
			w.meeBytes.Add(uint64(len(frame)))
			err = w.disp.InvokeSpan(to.trusted, idBatch, false, sp, invoke)
		} else {
			err = invoke()
		}
		sp.Finish(err)
		for _, e := range entries {
			w.bufs.Put(e.Args)
		}
		w.bufs.Put(frame)
		return err
	}
}

// ringHandler builds the ring consumer callback executing submissions
// on the receiving runtime rt. req and resp alias the same slot, which
// is safe because decoding copies every argument into Values before the
// dispatch runs and the response is encoded only afterwards.
func (w *World) ringHandler(rt *Runtime) ring.Handler {
	return func(id int, req, resp []byte, sp *telemetry.Span) ([]byte, bool, error) {
		class, method, hash, flags, args, err := wire.DecodeCall(req)
		if err != nil {
			return nil, false, err
		}
		if method == gcReleaseMethod {
			_, rerr := rt.reg.Release(hash)
			return nil, false, rerr
		}
		want := flags&wire.CallWantResult != 0
		return rt.dispatchRelaySlot(class, method, hash, args, resp, want, sp)
	}
}

// runBatchedCall executes one decoded frame entry on the receiving
// runtime: a registry release from the GC sweep, or a void relay call.
// The flush span parents any nested calls the relay makes.
func (w *World) runBatchedCall(to *Runtime, c wire.FrameCall, sp *telemetry.Span) error {
	if c.Method == gcReleaseMethod {
		_, err := to.reg.Release(c.Hash)
		return err
	}
	if _, err := to.dispatchRelay(c.Class, c.Method, c.Hash, c.Args, false, sp); err != nil {
		return fmt.Errorf("world: batched call %s.%s: %w", c.Class, c.Method, err)
	}
	return nil
}

// Flush drains both runtimes' batching queues, running any pending
// result-independent calls. Errors of individual batched calls surface
// here, joined. A no-op when nothing is pending (or batching is off).
// This is also the flush-before-commit barrier the persistence layer
// runs before sealing a checkpoint: batched mutations must land before
// trusted state is captured.
func (w *World) Flush() error {
	w.stateMu.RLock()
	trusted, untrusted := w.trusted, w.untrusted
	w.stateMu.RUnlock()
	return errors.Join(w.flushQueue(untrusted), w.flushQueue(trusted))
}

func (w *World) flushQueue(rt *Runtime) error {
	if rt == nil || rt.queue == nil || rt.queue.Len() == 0 {
		return nil
	}
	// The trusted runtime's flush calls out (an ocall); from outside the
	// enclave, enter it first — like spawning one helper scan.
	if rt.trusted && w.enclave != nil && !w.enclave.InEnclave() {
		return w.enclave.Ecall(idExec, rt.queue.Flush)
	}
	return rt.queue.Flush()
}

// Close flushes pending batched calls, stops helpers and worker pools,
// and destroys the enclave. Flush errors are dropped; callers that must
// observe them (e.g. the gateway's graceful drain) use CloseErr.
func (w *World) Close() { _ = w.CloseErr() }

// CloseErr is Close with an error path: the final flush of both batching
// queues runs first and any batched-call errors it surfaces are
// returned, joined, after teardown completes.
func (w *World) CloseErr() error {
	err := w.Flush()
	w.StopGCHelpers()
	if w.disp != nil {
		w.disp.Close()
	}
	if w.enclave != nil {
		w.enclave.Destroy()
	}
	w.clock.Stop()
	return err
}

// Stats aggregates runtime statistics.
type Stats struct {
	Mode          Mode
	Cycles        int64
	Enclave       sgx.Stats
	Dispatch      DispatchStats
	TrustedHeap   heap.Stats
	UntrustedHeap heap.Stats
	Trusted       RuntimeStats
	Untrusted     RuntimeStats
	// TrustedSweeps and UntrustedSweeps report the GC helpers' observed
	// sweep cadence per runtime, so servers tuning
	// Options.GCHelperInterval can see whether mirrors are reclaimed
	// promptly.
	TrustedSweeps   SweepStats
	UntrustedSweeps SweepStats
	Shim            shim.Stats
}

// collectMetrics is the telemetry collector of the world layer: it
// absorbs the snapshot-style statistics every subsystem already keeps —
// dispatcher routing counters, batching queues, enclave transitions,
// TCS and pool occupancy, GC sweeps, registry sizes — into stable
// registry metrics at scrape time, so the producing hot paths stay
// untouched.
func (w *World) collectMetrics(reg *telemetry.Registry) {
	// The collector outlives any single enclave incarnation (it is
	// registered once, while Kill/Restart swap the world's guts), so it
	// reads under the state lock.
	w.stateMu.RLock()
	defer w.stateMu.RUnlock()
	reg.Gauge("montsalvat_world_cycles_total").Set(w.clock.Total())

	if w.disp != nil {
		ds := w.disp.Stats()
		reg.Counter("montsalvat_boundary_calls_total", "route", "full").Set(ds.FullCalls)
		reg.Counter("montsalvat_boundary_calls_total", "route", "switchless").Set(ds.SwitchlessCalls)
		reg.Counter("montsalvat_boundary_calls_total", "route", "fallback").Set(ds.FallbackCalls)
		rs := w.disp.RingStats()
		reg.Counter("montsalvat_boundary_calls_total", "route", "ring").Set(rs.RingCalls)
		reg.Counter("montsalvat_boundary_calls_total", "route", "ring-fallback").Set(rs.RingFallbacks)
		reg.Counter("montsalvat_boundary_calls_total", "route", "ring-oversize").Set(rs.RingOversize)
	}
	for dir, g := range map[string]*ring.Group{"ecall": w.erings, "ocall": w.orings} {
		if g == nil {
			continue
		}
		gs := g.Stats()
		reg.Counter("montsalvat_ring_submits_total", "dir", dir).Set(gs.Submits)
		reg.Counter("montsalvat_ring_doorbells_total", "dir", dir).Set(gs.Doorbells)
		reg.Counter("montsalvat_ring_stalls_total", "dir", dir).Set(gs.Stalls)
		reg.Counter("montsalvat_ring_overflows_total", "dir", dir).Set(gs.Overflows)
		reg.Counter("montsalvat_ring_sealed_bytes_total", "dir", dir).Set(gs.SealedBytes)
		reg.Gauge("montsalvat_ring_occupancy", "dir", dir).Set(int64(g.Occupancy()))
	}
	if w.bufs != nil {
		ps := w.bufs.Stats()
		reg.Counter("montsalvat_bufpool_gets_total", "result", "hit").Set(ps.Hits)
		reg.Counter("montsalvat_bufpool_gets_total", "result", "miss").Set(ps.Misses)
		// Miss rate in basis points (1/100 of a percent): gauges are
		// integral.
		reg.Gauge("montsalvat_bufpool_miss_rate_bps").Set(int64(ps.MissRate() * 10000))
	}

	var flushes, batched uint64
	for _, rt := range []*Runtime{w.trusted, w.untrusted} {
		if rt != nil && rt.queue != nil {
			qs := rt.queue.Stats()
			flushes += qs.Flushes
			batched += qs.BatchedCalls
		}
	}
	reg.Counter("montsalvat_boundary_batch_flushes_total").Set(flushes)
	reg.Counter("montsalvat_boundary_batched_calls_total").Set(batched)

	if w.enclave != nil {
		es := w.enclave.Stats()
		reg.Counter("montsalvat_sgx_ecalls_total").Set(es.Ecalls)
		reg.Counter("montsalvat_sgx_ocalls_total").Set(es.Ocalls)
		reg.Counter("montsalvat_sgx_switchless_ecalls_total").Set(es.SwitchlessEcalls)
		reg.Counter("montsalvat_sgx_switchless_ocalls_total").Set(es.SwitchlessOcalls)
		reg.Gauge("montsalvat_sgx_heap_bytes_in_use").Set(int64(es.HeapBytesInUse))
		reg.Gauge("montsalvat_sgx_tcs_in_use").Set(int64(w.enclave.TCSInUse()))
		reg.Gauge("montsalvat_sgx_tcs_cap").Set(int64(w.enclave.TCSCap()))
	}
	if w.epool != nil {
		ps := w.epool.Stats()
		reg.Gauge("montsalvat_sgx_pool_workers", "dir", "ecall").Set(int64(ps.Workers))
		reg.Gauge("montsalvat_sgx_pool_busy", "dir", "ecall").Set(int64(ps.Busy))
		reg.Gauge("montsalvat_sgx_pool_queued", "dir", "ecall").Set(int64(ps.Queued))
	}
	if w.opool != nil {
		ps := w.opool.Stats()
		reg.Gauge("montsalvat_sgx_pool_workers", "dir", "ocall").Set(int64(ps.Workers))
		reg.Gauge("montsalvat_sgx_pool_busy", "dir", "ocall").Set(int64(ps.Busy))
		reg.Gauge("montsalvat_sgx_pool_queued", "dir", "ocall").Set(int64(ps.Queued))
	}

	for _, rt := range []*Runtime{w.trusted, w.untrusted} {
		if rt == nil {
			continue
		}
		ss := rt.SweepStats()
		reg.Counter("montsalvat_gc_sweeps_total", "runtime", rt.name).Set(ss.Sweeps)
		reg.Counter("montsalvat_gc_released_total", "runtime", rt.name).Set(ss.Released)
		rs := rt.Stats()
		reg.Counter("montsalvat_world_remote_calls_total", "runtime", rt.name).Set(rs.RemoteCallsOut)
		reg.Counter("montsalvat_world_proxies_created_total", "runtime", rt.name).Set(rs.ProxiesCreated)
		reg.Gauge("montsalvat_world_registry_size", "runtime", rt.name).Set(int64(rs.RegistrySize))
		reg.Gauge("montsalvat_world_weak_list_len", "runtime", rt.name).Set(int64(rs.WeakListLen))
		reg.Gauge("montsalvat_world_object_table_len", "runtime", rt.name).Set(int64(rs.ObjectTableLen))
		// Shard contention of the concurrent crossing engine: lock
		// acquisitions that found a registry/object-table shard held.
		reg.Gauge("montsalvat_registry_shard_waits", "runtime", rt.name).Set(int64(rt.reg.Waits()))
		reg.Gauge("montsalvat_objtable_shard_waits", "runtime", rt.name).Set(int64(rt.table.waits.Load()))
	}
}

// Stats returns a snapshot of all counters.
func (w *World) Stats() Stats {
	w.stateMu.RLock()
	defer w.stateMu.RUnlock()
	s := Stats{Mode: w.mode, Cycles: w.clock.Total(), Dispatch: w.DispatchStats()}
	if w.enclave != nil {
		s.Enclave = w.enclave.Stats()
	}
	if w.trusted != nil {
		s.TrustedHeap = w.trusted.HeapStats()
		s.Trusted = w.trusted.Stats()
		s.TrustedSweeps = w.trusted.SweepStats()
		if ts, ok := w.trusted.fs.(*shim.TrustedShim); ok {
			s.Shim = ts.Stats()
		}
	}
	if w.untrusted != nil {
		s.UntrustedHeap = w.untrusted.HeapStats()
		s.Untrusted = w.untrusted.Stats()
		s.UntrustedSweeps = w.untrusted.SweepStats()
	}
	return s
}

// LiveObjects folds the live strong-entry count of both runtimes'
// object tables plus their tracked proxy weak refs — the retention the
// crossing engine holds on behalf of frames and proxies. At quiescence
// (queues flushed, sweeps drained, no frames active) the count is a
// pure function of the reachable cross-boundary objects, which is what
// the orderly explorer's refcount-drain invariant checks. Returns 0
// while killed.
func (w *World) LiveObjects() int {
	w.stateMu.RLock()
	defer w.stateMu.RUnlock()
	n := 0
	for _, rt := range []*Runtime{w.trusted, w.untrusted} {
		if rt == nil {
			continue
		}
		n += rt.table.len()
		n += rt.weaks.Len()
	}
	return n
}

// PoolStats snapshots the marshal-buffer pool's hit/miss counters.
func (w *World) PoolStats() boundary.BufPoolStats {
	if w.bufs == nil {
		return boundary.BufPoolStats{}
	}
	return w.bufs.Stats()
}

// ResetPoolStats zeroes the marshal-buffer pool's hit/miss counters
// while keeping the pooled buffers warm, so a benchmark phase measures
// its own pool behaviour rather than inheriting boot traffic.
func (w *World) ResetPoolStats() {
	if w.bufs != nil {
		w.bufs.ResetStats()
	}
}
