package world_test

import (
	"strings"
	"testing"

	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/world"
)

// kvTelemetryWorld builds a partitioned KV world with full-rate tracing.
func kvTelemetryWorld(t *testing.T, cfg simcfg.Config) (*world.World, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New(telemetry.Options{TraceSampleRate: 1, TraceBuffer: 2048})
	opts := world.DefaultOptions()
	opts.Cfg = cfg
	opts.Telemetry = tel
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), opts)
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	t.Cleanup(w.Close)
	return w, tel
}

func TestTelemetryMetricsAbsorbed(t *testing.T) {
	w, tel := kvTelemetryWorld(t, simcfg.ForTest())
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		t.Fatalf("SweepOnce: %v", err)
	}

	snap := tel.Registry().Snapshot()
	ds := w.DispatchStats()
	if got := snap.Counters[`montsalvat_boundary_calls_total{route="full"}`]; got != ds.FullCalls {
		t.Fatalf("full calls metric = %d, dispatcher says %d", got, ds.FullCalls)
	}
	es := w.Enclave().Stats()
	if got := snap.Counters["montsalvat_sgx_ecalls_total"]; got != es.Ecalls {
		t.Fatalf("ecalls metric = %d, enclave says %d", got, es.Ecalls)
	}
	if snap.Counters["montsalvat_sgx_ocalls_total"] == 0 {
		t.Fatal("no ocalls absorbed (AuditLog.record should call out)")
	}
	if got := snap.Counters[`montsalvat_gc_sweeps_total{runtime="untrusted"}`]; got == 0 {
		t.Fatal("sweep counter not absorbed")
	}
	if snap.Gauges["montsalvat_sgx_tcs_cap"] == 0 {
		t.Fatal("TCS capacity gauge missing")
	}
	if snap.Gauges[`montsalvat_world_registry_size{runtime="trusted"}`] == 0 {
		t.Fatal("trusted registry gauge missing (mirrors exist after RunMain)")
	}
	hist := snap.Histograms["montsalvat_boundary_dispatch_ns"]
	if hist.Count == 0 || hist.P99 < hist.P50 {
		t.Fatalf("dispatch histogram malformed: %+v", hist)
	}
	if snap.Histograms["montsalvat_boundary_marshal_bytes"].Count == 0 {
		t.Fatal("marshal-bytes histogram empty")
	}
	if snap.Histograms["montsalvat_boundary_body_cycles"].Count == 0 {
		t.Fatal("body-cycles histogram empty")
	}
}

// TestTelemetryNestedOcallTrace pins the acceptance trace: a sampled
// ecall relay (KVStore.put) with a nested ocall child (AuditLog.record)
// sharing its trace id.
func TestTelemetryNestedOcallTrace(t *testing.T) {
	w, tel := kvTelemetryWorld(t, simcfg.ForTest())
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain: %v", err)
	}

	var put, record *telemetry.Span
	spans := tel.Tracer().Dump()
	for i := range spans {
		sp := &spans[i]
		switch {
		case strings.Contains(sp.Name, "KVStore.relay$put"):
			put = sp
		case strings.Contains(sp.Name, "AuditLog.relay$record"):
			record = sp
		}
	}
	if put == nil || record == nil {
		t.Fatalf("missing spans: put=%v record=%v (of %d)", put != nil, record != nil, len(spans))
	}
	if put.Dir != "ecall" {
		t.Fatalf("put span dir = %q, want ecall", put.Dir)
	}
	if record.Dir != "ocall" {
		t.Fatalf("record span dir = %q, want ocall", record.Dir)
	}
	if put.Route == "" {
		t.Fatal("put span has no routing decision")
	}
	if put.MarshalBytes == 0 {
		t.Fatal("put span recorded no marshalled bytes")
	}
	// The dump is oldest-first and ring-bounded; the surviving put and
	// record spans need not be from the same put call, but every record
	// must be parented by some put of the same trace. Find a matched
	// pair to pin the chain shape.
	matched := false
	byID := make(map[uint64]telemetry.Span, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	for _, sp := range spans {
		if !strings.Contains(sp.Name, "AuditLog.relay$record") || sp.ParentID == 0 {
			continue
		}
		parent, ok := byID[sp.ParentID]
		if ok && parent.TraceID == sp.TraceID && strings.Contains(parent.Name, "KVStore.relay$put") {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatal("no record span parented by a put span of the same trace")
	}
}

// TestTelemetryTraceThroughSwitchlessAndBatching exercises span
// propagation across pool worker goroutines and batched flush roots.
func TestTelemetryTraceThroughSwitchlessAndBatching(t *testing.T) {
	cfg := simcfg.ForTest()
	cfg.Switchless = true
	cfg.Batching = true
	w, tel := kvTelemetryWorld(t, cfg)
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	spans := tel.Tracer().Dump()
	var sawFlush, sawChildRecord bool
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, "batch-flush") {
			sawFlush = true
			if sp.BatchSize == 0 {
				t.Fatalf("flush span without batch size: %+v", sp)
			}
		}
		if strings.Contains(sp.Name, "AuditLog.relay$record") && sp.ParentID != 0 {
			sawChildRecord = true
		}
	}
	if !sawFlush {
		t.Fatalf("no batch-flush span among %d spans", len(spans))
	}
	// With batching on, put relays ride in flush frames; their nested
	// record ocalls must still join the flush's trace.
	if !sawChildRecord {
		t.Fatal("no record span joined a parent trace under batching")
	}
	if tel.Registry().Snapshot().Histograms["montsalvat_boundary_batch_size"].Count == 0 {
		t.Fatal("batch-size histogram empty")
	}
}

// TestTelemetryDisabledIsInert pins the nil-layer contract the overhead
// guard relies on: a world with no telemetry takes the exact same
// simulated-cycle path.
func TestTelemetryDisabledIsInert(t *testing.T) {
	opts := world.DefaultOptions()
	w, _, err := core.NewPartitionedWorld(demo.MustKVProgram(), opts)
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	defer w.Close()
	if w.Telemetry() != nil {
		t.Fatal("telemetry must default to nil")
	}
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain: %v", err)
	}
}
