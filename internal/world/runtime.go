package world

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"montsalvat/internal/boundary"
	"montsalvat/internal/classmodel"
	"montsalvat/internal/edl"
	"montsalvat/internal/heap"
	"montsalvat/internal/image"
	"montsalvat/internal/isolate"
	"montsalvat/internal/registry"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/transform"
	"montsalvat/internal/wire"
)

// maxNeutralDepth bounds recursive by-value serialization of neutral
// objects (cyclic neutral graphs cannot be copied by value).
const maxNeutralDepth = 32

// RuntimeStats counts per-runtime activity.
type RuntimeStats struct {
	// RemoteCallsOut counts proxy invocations leaving this runtime.
	RemoteCallsOut uint64
	// ProxiesCreated counts proxy instances materialised locally.
	ProxiesCreated uint64
	// MarshalledBytes counts serialized argument/result traffic.
	MarshalledBytes uint64
	// RegistrySize and WeakListLen snapshot the GC-sync structures.
	RegistrySize int
	WeakListLen  int
}

// SweepStats describes the GC helper's sweep activity over one runtime's
// weak list: how often it ran, how much it reclaimed, and when it last
// fired — the observability needed to tune Options.GCHelperInterval
// under many concurrent gateway sessions.
type SweepStats struct {
	// Sweeps counts completed weak-list scans (helper ticks plus
	// explicit SweepOnce calls).
	Sweeps uint64
	// Released is the total number of dead proxies whose mirrors were
	// released in the opposite registry.
	Released uint64
	// LastReleased is the dead-proxy count of the most recent sweep.
	LastReleased int
	// LastSweep is when the most recent sweep completed (zero until the
	// first sweep).
	LastSweep time.Time
}

// Runtime is one side of the partitioned application: an isolate loaded
// from a native image plus the RMI bookkeeping of §5.2/§5.5.
type Runtime struct {
	w       *World
	name    string
	trusted bool
	img     *image.Image
	iso     *isolate.Isolate
	reg     *registry.Registry // mirrors for proxies living in the opposite runtime
	weaks   *registry.WeakList // weak refs to proxies living here
	fs      shim.FS
	// queue batches this runtime's outbound result-independent calls
	// (nil unless partitioned; active only with Config.Batching).
	queue *boundary.Queue

	// mu serialises all isolate/heap/table access (one mutator at a
	// time, plus the GC helper).
	mu      sync.Mutex
	objects map[int64]*objEntry // identity hash -> cached strong handle
	pins    *frame              // permanent roots (static-field analog)

	remoteOut  uint64
	proxiesNew uint64
	marshalled uint64

	// sweepMu guards the helper-sweep statistics (the GC helper and
	// stats readers race).
	sweepMu sync.Mutex
	sweeps  SweepStats
}

// recordSweep accounts one completed weak-list sweep and the number of
// dead proxies it found.
func (rt *Runtime) recordSweep(dead int) {
	rt.sweepMu.Lock()
	rt.sweeps.Sweeps++
	rt.sweeps.Released += uint64(dead)
	rt.sweeps.LastReleased = dead
	rt.sweeps.LastSweep = time.Now()
	rt.sweepMu.Unlock()
}

// SweepStats snapshots the runtime's GC-helper sweep statistics.
func (rt *Runtime) SweepStats() SweepStats {
	rt.sweepMu.Lock()
	defer rt.sweepMu.Unlock()
	return rt.sweeps
}

// objEntry is a reference-counted strong handle in the local object
// table; frames retain and release entries.
type objEntry struct {
	handle heap.Handle
	refs   int
}

func newRuntime(w *World, name string, trusted bool, img *image.Image, h *heap.Heap) (*Runtime, error) {
	iso, err := isolate.New(0, h, w.nextHash)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		w:       w,
		name:    name,
		trusted: trusted,
		img:     img,
		iso:     iso,
		reg:     registry.New(h),
		weaks:   registry.NewWeakList(h),
		objects: make(map[int64]*objEntry),
		pins:    &frame{},
	}
	for _, c := range img.Classes() {
		if classmodel.IsBuiltin(c.Name) {
			continue
		}
		id, err := img.ClassID(c.Name)
		if err != nil {
			return nil, err
		}
		if err := iso.RegisterClass(c, id); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// Name returns the runtime name ("trusted" or "untrusted").
func (rt *Runtime) Name() string { return rt.name }

// TrustedSide reports whether the runtime executes inside the enclave.
func (rt *Runtime) TrustedSide() bool { return rt.trusted }

// Image returns the loaded native image.
func (rt *Runtime) Image() *image.Image { return rt.img }

// Registry returns the runtime's mirror–proxy registry.
func (rt *Runtime) Registry() *registry.Registry { return rt.reg }

// WeakList returns the runtime's proxy weak-reference list.
func (rt *Runtime) WeakList() *registry.WeakList { return rt.weaks }

// Collect forces a stop-and-copy GC cycle on the runtime's heap.
func (rt *Runtime) Collect() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.iso.Collect()
}

// HeapStats snapshots the heap statistics.
func (rt *Runtime) HeapStats() heap.Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.iso.Heap().Stats()
}

// Stats snapshots the runtime counters.
func (rt *Runtime) Stats() RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return RuntimeStats{
		RemoteCallsOut:  rt.remoteOut,
		ProxiesCreated:  rt.proxiesNew,
		MarshalledBytes: rt.marshalled,
		RegistrySize:    rt.reg.Size(),
		WeakListLen:     rt.weaks.Len(),
	}
}

// Pin adds a permanent strong root for the object behind a ref — the
// analog of storing it in a static field. The object must currently be
// live in this runtime.
func (rt *Runtime) Pin(v wire.Value) error {
	_, hash, ok := v.AsRef()
	if !ok {
		return ErrNotRef
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	_, err := rt.resolveLocked(rt.pins, hash)
	return err
}

// Unpin removes one permanent retention added by Pin.
func (rt *Runtime) Unpin(v wire.Value) error {
	_, hash, ok := v.AsRef()
	if !ok {
		return ErrNotRef
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, h := range rt.pins.owned {
		if h != hash {
			continue
		}
		rt.pins.owned = append(rt.pins.owned[:i], rt.pins.owned[i+1:]...)
		if e, ok := rt.objects[hash]; ok {
			e.refs--
			if e.refs <= 0 {
				_ = rt.iso.Release(e.handle)
				delete(rt.objects, hash)
			}
		}
		return nil
	}
	return fmt.Errorf("%w: %d not pinned", ErrNoSuchObject, hash)
}

// ---- frames ----------------------------------------------------------

// frame tracks the object-table retentions of one method activation (the
// stand-in for stack/register roots in a real VM). It also carries the
// activation's trace span: a relay executing a sampled cross-boundary
// call stores the call's span here, so proxy invocations the body makes
// become child spans of the same trace — including across the worker
// goroutines of the switchless pools, which run the closure that
// captured this frame. Nil when the chain is unsampled or telemetry is
// off.
type frame struct {
	owned []int64
	span  *telemetry.Span
}

func (rt *Runtime) newFrame() *frame { return &frame{} }

// releaseFrame drops the frame's retentions; entries reaching zero lose
// their strong handle, making the objects collectable.
func (rt *Runtime) releaseFrame(fr *frame) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, hash := range fr.owned {
		e, ok := rt.objects[hash]
		if !ok {
			continue
		}
		e.refs--
		if e.refs <= 0 {
			// Best effort: a released handle only pins memory.
			_ = rt.iso.Release(e.handle)
			delete(rt.objects, hash)
		}
	}
	fr.owned = nil
}

// retainLocked records (hash -> handle) in the object table and the
// frame. If the hash is already cached, the redundant handle is released.
// Must be called with rt.mu held.
func (rt *Runtime) retainLocked(fr *frame, hash int64, handle heap.Handle) (heap.Handle, error) {
	if e, ok := rt.objects[hash]; ok {
		e.refs++
		if handle != 0 && handle != e.handle {
			if err := rt.iso.Release(handle); err != nil {
				return 0, err
			}
		}
		fr.owned = append(fr.owned, hash)
		return e.handle, nil
	}
	if handle == 0 {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchObject, hash)
	}
	rt.objects[hash] = &objEntry{handle: handle, refs: 1}
	fr.owned = append(fr.owned, hash)
	return handle, nil
}

// resolveLocked finds a live local object for hash, looking through the
// object table, the mirror–proxy registry, and the weak list (canonical
// proxies). The returned handle is retained in fr.
// Must be called with rt.mu held.
func (rt *Runtime) resolveLocked(fr *frame, hash int64) (heap.Handle, error) {
	if e, ok := rt.objects[hash]; ok {
		e.refs++
		fr.owned = append(fr.owned, hash)
		return e.handle, nil
	}
	if regHandle, ok := rt.reg.Resolve(hash); ok {
		addr, err := rt.iso.Heap().Deref(regHandle)
		if err != nil {
			return 0, err
		}
		fresh, err := rt.iso.HandleAt(addr)
		if err != nil {
			return 0, err
		}
		return rt.retainLocked(fr, hash, fresh)
	}
	if addr, ok := rt.weaks.LiveHash(hash); ok {
		fresh, err := rt.iso.HandleAt(addr)
		if err != nil {
			return 0, err
		}
		return rt.retainLocked(fr, hash, fresh)
	}
	return 0, fmt.Errorf("%w: %d", ErrNoSuchObject, hash)
}

// resolveRef resolves a ref value to a live handle retained in fr.
func (rt *Runtime) resolveRef(fr *frame, v wire.Value) (heap.Handle, error) {
	_, hash, ok := v.AsRef()
	if !ok {
		return 0, fmt.Errorf("%w: got %s", ErrNotRef, v.Kind())
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.resolveLocked(fr, hash)
}

// classDecl returns the image declaration of a ref's class.
func (rt *Runtime) classDecl(class string) (*classmodel.Class, error) {
	c, ok := rt.img.Program().Class(class)
	if !ok {
		return nil, fmt.Errorf("%w: class %s", image.ErrClosedWorld, class)
	}
	return c, nil
}

// ---- marshalling across the boundary ---------------------------------

// marshalOut prepares an argument/result vector for the boundary
// crossing: neutral values are serialized; references to local concrete
// annotated objects are exported into the registry so the opposite
// runtime may hold proxies to them; references to local proxies cross as
// their bare hash (the opposite runtime resolves its mirror).
func (rt *Runtime) marshalOut(fr *frame, vals []wire.Value) ([]byte, error) {
	out := make([]wire.Value, len(vals))
	for i, v := range vals {
		cv, err := rt.marshalValue(fr, v, 0)
		if err != nil {
			return nil, err
		}
		out[i] = cv
	}
	// Size-precompute plus a pooled buffer: the hot path neither grows
	// nor allocates. Callers recycle the buffer with w.bufs.Put once the
	// receiver has decoded it (decoding copies).
	buf := wire.AppendValues(rt.w.bufs.Get(wire.SizeValues(out)), out)
	rt.chargeSerialization(out, simcfg.SerializeCyclesPerValue)
	rt.mu.Lock()
	rt.marshalled += uint64(len(buf))
	rt.mu.Unlock()
	return buf, nil
}

// chargeSerialization charges the Java-serialization cost of a value
// vector: perCycles per leaf element, multiplied when performed inside
// the enclave (Fig. 4b's in-vs-out asymmetry).
func (rt *Runtime) chargeSerialization(vals []wire.Value, perCycles int64) {
	leaves := 0
	for _, v := range vals {
		leaves += leafCount(v)
	}
	cost := float64(leaves) * float64(perCycles)
	if rt.trusted {
		cost *= simcfg.EnclaveSerializeFactor
	}
	rt.w.clock.Charge(int64(cost))
}

// leafCount counts the scalar elements of a value tree.
func leafCount(v wire.Value) int {
	switch v.Kind() {
	case wire.KindList:
		elems, _ := v.AsList()
		n := 0
		for _, e := range elems {
			n += leafCount(e)
		}
		return n
	case wire.KindMap:
		pairs, _ := v.AsMap()
		n := 0
		for _, p := range pairs {
			n += leafCount(p.Val)
		}
		return n
	default:
		return 1
	}
}

func (rt *Runtime) marshalValue(fr *frame, v wire.Value, depth int) (wire.Value, error) {
	if depth > maxNeutralDepth {
		return wire.Value{}, errors.New("world: neutral value too deep (cycle?)")
	}
	switch v.Kind() {
	case wire.KindList:
		elems, _ := v.AsList()
		for i, e := range elems {
			ce, err := rt.marshalValue(fr, e, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			elems[i] = ce
		}
		return wire.List(elems...), nil
	case wire.KindMap:
		pairs, _ := v.AsMap()
		for i, p := range pairs {
			cv, err := rt.marshalValue(fr, p.Val, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			pairs[i].Val = cv
		}
		return wire.Map(pairs...), nil
	case wire.KindRef:
		return rt.marshalRef(fr, v)
	default:
		return v, nil
	}
}

// marshalRef handles an object reference crossing the boundary.
func (rt *Runtime) marshalRef(fr *frame, v wire.Value) (wire.Value, error) {
	class, hash, _ := v.AsRef()
	if classmodel.IsBuiltin(class) {
		return wire.Value{}, fmt.Errorf("%w: %s#%d", ErrNeutralByValue, class, hash)
	}
	decl, err := rt.classDecl(class)
	if err != nil {
		return wire.Value{}, err
	}
	if decl.Proxy {
		// A proxy crossing back to its object's home runtime: the bare
		// hash suffices; the mirror is in the opposite registry.
		return v, nil
	}
	switch decl.Ann {
	case classmodel.Neutral:
		return wire.Value{}, fmt.Errorf("%w: neutral class %s", ErrNeutralByValue, class)
	default:
		// A local concrete annotated object leaves the runtime: export
		// a strong reference into OUR registry so the opposite runtime's
		// new proxy keeps the mirror alive (§5.2).
		rt.mu.Lock()
		defer rt.mu.Unlock()
		h, err := rt.resolveLocked(fr, hash)
		if err != nil {
			return wire.Value{}, err
		}
		addr, err := rt.iso.Heap().Deref(h)
		if err != nil {
			return wire.Value{}, err
		}
		regHandle, err := rt.iso.HandleAt(addr)
		if err != nil {
			return wire.Value{}, err
		}
		if err := rt.reg.Export(hash, regHandle); err != nil {
			return wire.Value{}, err
		}
		return v, nil
	}
}

// unmarshalIn decodes an incoming argument/result vector, materialising
// local representatives for every reference: mirrors are resolved through
// the registry, and refs to remote objects become (or reuse) local proxy
// instances, weak-tracked for GC synchronisation.
func (rt *Runtime) unmarshalIn(fr *frame, buf []byte) ([]wire.Value, error) {
	vals, err := wire.UnmarshalList(buf)
	if err != nil {
		return nil, fmt.Errorf("world: corrupt boundary buffer: %w", err)
	}
	rt.chargeSerialization(vals, simcfg.DeserializeCyclesPerValue)
	rt.mu.Lock()
	rt.marshalled += uint64(len(buf))
	rt.mu.Unlock()
	for i, v := range vals {
		lv, err := rt.localiseValue(fr, v, 0)
		if err != nil {
			return nil, err
		}
		vals[i] = lv
	}
	return vals, nil
}

func (rt *Runtime) localiseValue(fr *frame, v wire.Value, depth int) (wire.Value, error) {
	if depth > maxNeutralDepth {
		return wire.Value{}, errors.New("world: neutral value too deep (cycle?)")
	}
	switch v.Kind() {
	case wire.KindList:
		elems, _ := v.AsList()
		for i, e := range elems {
			le, err := rt.localiseValue(fr, e, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			elems[i] = le
		}
		return wire.List(elems...), nil
	case wire.KindMap:
		pairs, _ := v.AsMap()
		for i, p := range pairs {
			lv, err := rt.localiseValue(fr, p.Val, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			pairs[i].Val = lv
		}
		return wire.Map(pairs...), nil
	case wire.KindRef:
		if err := rt.localiseRef(fr, v); err != nil {
			return wire.Value{}, err
		}
		return v, nil
	default:
		return v, nil
	}
}

// localiseRef ensures a live local object exists for an incoming ref.
// It never holds rt.mu while touching the opposite runtime (lock-order
// discipline: at most one runtime mutex at a time).
func (rt *Runtime) localiseRef(fr *frame, v wire.Value) error {
	class, hash, _ := v.AsRef()
	decl, err := rt.classDecl(class)
	if err != nil {
		return err
	}

	dropDuplicateExport := false
	err = func() error {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		if !decl.Proxy {
			// The object lives here: it must be a registered mirror (or
			// an already-known local object).
			if _, err := rt.resolveLocked(fr, hash); err != nil {
				return fmt.Errorf("%w (class %s, hash %d)", ErrStaleMirror, class, hash)
			}
			return nil
		}
		// The ref names a remote object: reuse the canonical live proxy
		// if one exists, otherwise materialise a new proxy instance.
		if _, ok := rt.objects[hash]; ok {
			if _, err := rt.resolveLocked(fr, hash); err != nil {
				return err
			}
			dropDuplicateExport = true
			return nil
		}
		if addr, ok := rt.weaks.LiveHash(hash); ok {
			fresh, err := rt.iso.HandleAt(addr)
			if err != nil {
				return err
			}
			if _, err := rt.retainLocked(fr, hash, fresh); err != nil {
				return err
			}
			dropDuplicateExport = true
			return nil
		}
		return rt.newProxyLocked(fr, class, hash)
	}()
	if err != nil {
		return err
	}
	if dropDuplicateExport {
		// A live local representative already holds a registry export;
		// drop the duplicate export made by the sender.
		if opp := rt.w.opposite(rt); opp != nil {
			opp.mu.Lock()
			_, rerr := opp.reg.Release(hash)
			opp.mu.Unlock()
			if rerr != nil {
				return rerr
			}
		}
	}
	return nil
}

// newProxyLocked materialises a proxy instance for a remote object and
// weak-tracks it. Must be called with rt.mu held.
func (rt *Runtime) newProxyLocked(fr *frame, class string, hash int64) error {
	h, err := rt.iso.NewObject(class, hash)
	if err != nil {
		return err
	}
	w, err := rt.iso.NewWeak(h)
	if err != nil {
		return err
	}
	rt.weaks.Track(w, hash)
	rt.proxiesNew++
	_, err = rt.retainLocked(fr, hash, h)
	return err
}

// ---- dispatch ---------------------------------------------------------

// dispatch runs a method body locally. self is a ref (or null for static
// methods); refs in args must already be live locally. Refs inside the
// result are re-retained into adoptInto (when non-nil) before the callee
// frame is released, so they stay live for the caller.
func (rt *Runtime) dispatch(ref classmodel.MethodRef, self wire.Value, args []wire.Value, adoptInto *frame) (wire.Value, error) {
	_, m, err := rt.img.Lookup(ref)
	if err != nil {
		return wire.Value{}, err
	}
	if m.Body == nil {
		return wire.Value{}, fmt.Errorf("world: method %s has no body (abstract or runtime-native)", ref)
	}
	if len(m.Params) != len(args) {
		return wire.Value{}, fmt.Errorf("%w: %s wants %d args, got %d", ErrBadArity, ref, len(m.Params), len(args))
	}
	rt.w.clock.Charge(simcfg.LocalCallCycles)
	fr := rt.newFrame()
	if adoptInto != nil {
		fr.span = adoptInto.span
	}
	defer rt.releaseFrame(fr)
	// Retain self and ref arguments for the duration of the activation.
	for _, v := range append([]wire.Value{self}, args...) {
		if v.Kind() == wire.KindRef {
			if _, err := rt.resolveRef(fr, v); err != nil {
				return wire.Value{}, err
			}
		}
	}
	e := &env{rt: rt, fr: fr}
	result, err := m.Body(e, self, args)
	if err != nil {
		return wire.Value{}, fmt.Errorf("%s: %w", ref, err)
	}
	if adoptInto != nil {
		if err := rt.adoptResult(adoptInto, result); err != nil {
			return wire.Value{}, err
		}
	}
	return result, nil
}

// adoptResult re-retains any refs inside a callee's result into the
// caller's frame, so they survive the callee frame release.
func (rt *Runtime) adoptResult(fr *frame, v wire.Value) error {
	switch v.Kind() {
	case wire.KindRef:
		_, err := rt.resolveRef(fr, v)
		return err
	case wire.KindList:
		elems, _ := v.AsList()
		for _, e := range elems {
			if err := rt.adoptResult(fr, e); err != nil {
				return err
			}
		}
	case wire.KindMap:
		pairs, _ := v.AsMap()
		for _, p := range pairs {
			if err := rt.adoptResult(fr, p.Val); err != nil {
				return err
			}
		}
	}
	return nil
}

// remoteCall performs a proxy invocation: marshal, transition through the
// enclave boundary, dispatch the relay in the opposite runtime, and
// localise the result (§5.2).
func (rt *Runtime) remoteCall(fr *frame, class, method string, hash int64, args []wire.Value) (wire.Value, error) {
	w := rt.w
	to := w.opposite(rt)
	if to == nil {
		return wire.Value{}, fmt.Errorf("%w: no opposite runtime for remote call", ErrWrongRuntime)
	}
	relayName := transform.RelayName(method)
	dir := edl.Ocall
	if to.trusted {
		dir = edl.Ecall
	}
	routine, ok := w.iface.Lookup(dir, class, relayName)
	if !ok {
		return wire.Value{}, fmt.Errorf("%w: no edge routine for %s.%s", image.ErrClosedWorld, class, relayName)
	}

	argBuf, err := rt.marshalOut(fr, args)
	if err != nil {
		return wire.Value{}, err
	}

	if rt.queue != nil {
		// Result-independent calls (void-returning relays) are queued
		// and coalesced into one batched transition; the caller observes
		// null immediately and any call error at the flush.
		if w.batching && !routine.ReturnsValue {
			rt.mu.Lock()
			rt.remoteOut++
			rt.mu.Unlock()
			return wire.Null(), rt.queue.Enqueue(boundary.Entry{ID: routine.ID, Class: class, Method: relayName, Hash: hash, Args: argBuf})
		}
		// A result-dependent call must observe the effects of every
		// queued call: flush first.
		if err := rt.queue.Flush(); err != nil {
			w.bufs.Put(argBuf)
			return wire.Value{}, fmt.Errorf("world: flushing batched calls before %s.%s: %w", class, relayName, err)
		}
	}

	// Start the call's trace span: a child when the current activation
	// is already part of a sampled chain (nested ocall under an ecall
	// relay), otherwise a freshly sampled root. Nil in the common case.
	var sp *telemetry.Span
	if tracer := w.tel.Tracer(); tracer != nil {
		name := "relay " + class + "." + relayName
		if fr.span != nil {
			sp = tracer.StartChild(fr.span, name)
		} else {
			sp = tracer.StartRoot(name)
		}
		sp.AddMarshalBytes(len(argBuf))
	}

	var resultBuf []byte
	invoke := func() error {
		var rerr error
		resultBuf, rerr = to.dispatchRelay(class, relayName, hash, argBuf, true, sp)
		return rerr
	}
	if w.enclave != nil {
		// Copying the argument and result buffers across the boundary
		// streams them through the MEE.
		w.clock.ChargeBytes(len(argBuf), simcfg.MEEBytesPerCycle)
		err = w.disp.InvokeSpan(dir == edl.Ecall, routine.ID, false, sp, invoke)
		if err == nil {
			w.clock.ChargeBytes(len(resultBuf), simcfg.MEEBytesPerCycle)
		}
	} else {
		err = invoke()
	}
	sp.AddMarshalBytes(len(resultBuf))
	sp.Finish(err)
	w.hMarshal.Observe(int64(len(argBuf) + len(resultBuf)))
	w.bufs.Put(argBuf)
	if err != nil {
		return wire.Value{}, err
	}
	rt.mu.Lock()
	rt.remoteOut++
	rt.mu.Unlock()

	results, err := rt.unmarshalIn(fr, resultBuf)
	w.bufs.Put(resultBuf)
	if err != nil {
		return wire.Value{}, err
	}
	if len(results) != 1 {
		return wire.Value{}, fmt.Errorf("world: relay %s.%s returned %d values", class, relayName, len(results))
	}
	return results[0], nil
}

// dispatchRelay executes a relay method natively (the generated
// @CEntryPoint wrappers of Listing 4): constructor relays instantiate the
// mirror and register it; instance relays resolve the mirror in the
// registry and invoke the concrete method. Batched void calls pass
// wantResult=false to skip serializing (and charging for) the result.
// parent is the caller's trace span (nil when unsampled); it is threaded
// into the relay's frame so calls the body makes back across the
// boundary become children of the same trace.
func (rt *Runtime) dispatchRelay(class, relayName string, hash int64, argBuf []byte, wantResult bool, parent *telemetry.Span) ([]byte, error) {
	_, relay, err := rt.img.Lookup(classmodel.MethodRef{Class: class, Method: relayName})
	if err != nil {
		return nil, err
	}
	if !relay.Relay {
		return nil, fmt.Errorf("world: %s.%s is not a relay method", class, relayName)
	}
	target := relay.RelayFor

	fr := rt.newFrame()
	fr.span = parent
	defer rt.releaseFrame(fr)

	args, err := rt.unmarshalIn(fr, argBuf)
	if err != nil {
		return nil, err
	}

	var result wire.Value
	switch {
	case target == classmodel.CtorName:
		// Mirror instantiation: allocate the concrete object under the
		// proxy's hash, run the constructor, and export a strong
		// reference into the mirror–proxy registry.
		rt.mu.Lock()
		h, err := rt.iso.NewObject(class, hash)
		if err != nil {
			rt.mu.Unlock()
			return nil, err
		}
		if _, err := rt.retainLocked(fr, hash, h); err != nil {
			rt.mu.Unlock()
			return nil, err
		}
		addr, err := rt.iso.Heap().Deref(h)
		if err != nil {
			rt.mu.Unlock()
			return nil, err
		}
		regHandle, err := rt.iso.HandleAt(addr)
		if err != nil {
			rt.mu.Unlock()
			return nil, err
		}
		if err := rt.reg.Export(hash, regHandle); err != nil {
			rt.mu.Unlock()
			return nil, err
		}
		rt.mu.Unlock()
		self := wire.Ref(class, hash)
		// The relay frame is passed through so the ctor body inherits
		// the trace span (its null result adopts nothing).
		if _, err := rt.dispatch(classmodel.MethodRef{Class: class, Method: target}, self, args, fr); err != nil {
			return nil, err
		}
		result = wire.Null()

	default:
		var self wire.Value
		targetRef := classmodel.MethodRef{Class: class, Method: target}
		_, tm, err := rt.img.Lookup(targetRef)
		if err != nil {
			return nil, err
		}
		if !tm.Static {
			// Resolve the mirror: it must still be registered.
			rt.mu.Lock()
			_, rerr := rt.resolveLocked(fr, hash)
			rt.mu.Unlock()
			if rerr != nil {
				return nil, fmt.Errorf("%w: %s#%d", ErrStaleMirror, class, hash)
			}
			self = wire.Ref(class, hash)
		}
		result, err = rt.dispatch(targetRef, self, args, fr)
		if err != nil {
			return nil, err
		}
	}

	if !wantResult {
		return nil, nil
	}
	return rt.marshalOut(fr, []wire.Value{result})
}
