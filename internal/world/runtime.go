package world

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"montsalvat/internal/boundary"
	"montsalvat/internal/classmodel"
	"montsalvat/internal/edl"
	"montsalvat/internal/heap"
	"montsalvat/internal/image"
	"montsalvat/internal/isolate"
	"montsalvat/internal/lockrank"
	"montsalvat/internal/registry"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/telemetry"
	"montsalvat/internal/transform"
	"montsalvat/internal/wire"
)

// maxNeutralDepth bounds recursive by-value serialization of neutral
// objects (cyclic neutral graphs cannot be copied by value).
const maxNeutralDepth = 32

// RuntimeStats counts per-runtime activity.
type RuntimeStats struct {
	// RemoteCallsOut counts proxy invocations leaving this runtime.
	RemoteCallsOut uint64
	// ProxiesCreated counts proxy instances materialised locally.
	ProxiesCreated uint64
	// MarshalledBytes counts serialized argument/result traffic.
	MarshalledBytes uint64
	// RegistrySize and WeakListLen snapshot the GC-sync structures.
	RegistrySize int
	WeakListLen  int
	// ObjectTableLen snapshots the live entries of the sharded object
	// table (frames and pins currently retaining objects).
	ObjectTableLen int
}

// SweepStats describes the GC helper's sweep activity over one runtime's
// weak list: how often it ran, how much it reclaimed, and when it last
// fired — the observability needed to tune Options.GCHelperInterval
// under many concurrent gateway sessions.
type SweepStats struct {
	// Sweeps counts completed weak-list scans (helper ticks plus
	// explicit SweepOnce calls).
	Sweeps uint64
	// Released is the total number of dead proxies whose mirrors were
	// released in the opposite registry.
	Released uint64
	// LastReleased is the dead-proxy count of the most recent sweep.
	LastReleased int
	// LastSweep is when the most recent sweep completed (zero until the
	// first sweep).
	LastSweep time.Time
}

// Runtime is one side of the partitioned application: an isolate loaded
// from a native image plus the RMI bookkeeping of §5.2/§5.5.
type Runtime struct {
	w       *World
	name    string
	trusted bool
	img     *image.Image
	iso     *isolate.Isolate
	reg     *registry.Registry // mirrors for proxies living in the opposite runtime
	weaks   *registry.WeakList // weak refs to proxies living here
	fs      shim.FS
	// queue batches this runtime's outbound result-independent calls
	// (nil unless partitioned; active only with Config.Batching).
	queue *boundary.Queue

	// heapMu is the narrow isolate/heap lock of the concurrent crossing
	// engine: it serialises actual heap mutation (allocation — which may
	// trigger a collection — field access, GC, weak dereference) and
	// nothing else. It is never held across a boundary transition, while
	// calling into the opposite runtime, or around a table/registry
	// mutation. Handles are GC-stable and may cross heapMu critical
	// sections; raw heap addresses may not (a collection between
	// sections moves objects).
	heapMu lockrank.Mutex
	// table is the sharded object table: identity hash → refcounted
	// strong handle, retained and released by activation frames.
	table *objTable
	// pinMu guards the permanent-root frame (static-field analog);
	// outermost in the lock order.
	pinMu lockrank.Mutex
	pins  *frame

	remoteOut  atomic.Uint64
	proxiesNew atomic.Uint64
	marshalled atomic.Uint64

	// sweepMu guards the helper-sweep statistics (the GC helper and
	// stats readers race).
	sweepMu sync.Mutex
	sweeps  SweepStats
}

// recordSweep accounts one completed weak-list sweep and the number of
// dead proxies it found.
func (rt *Runtime) recordSweep(dead int) {
	rt.sweepMu.Lock()
	rt.sweeps.Sweeps++
	rt.sweeps.Released += uint64(dead)
	rt.sweeps.LastReleased = dead
	rt.sweeps.LastSweep = time.Now()
	rt.sweepMu.Unlock()
}

// SweepStats snapshots the runtime's GC-helper sweep statistics.
func (rt *Runtime) SweepStats() SweepStats {
	rt.sweepMu.Lock()
	defer rt.sweepMu.Unlock()
	return rt.sweeps
}

func newRuntime(w *World, name string, trusted bool, img *image.Image, h *heap.Heap) (*Runtime, error) {
	iso, err := isolate.New(0, h, w.nextHash)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		w:       w,
		name:    name,
		trusted: trusted,
		img:     img,
		iso:     iso,
		reg:     registry.New(h),
		weaks:   registry.NewWeakList(h),
		table:   newObjTable(),
		pins:    &frame{},
	}
	rt.pinMu.SetRank(lockrank.RankWorldPin, "world."+name+".pinMu")
	rt.heapMu.SetRank(lockrank.RankWorldHeap, "world."+name+".heapMu")
	// Registry strong-handle drops run outside every registry shard lock
	// (the registry defers them), so taking the heap lock here cannot
	// deadlock against the shard locks. Callers therefore must not hold
	// heapMu across mutating registry calls (Export/Release).
	rt.reg.SetReleaser(func(hd heap.Handle) error {
		rt.heapMu.Lock()
		defer rt.heapMu.Unlock()
		return rt.iso.Release(hd)
	})
	for _, c := range img.Classes() {
		if classmodel.IsBuiltin(c.Name) {
			continue
		}
		id, err := img.ClassID(c.Name)
		if err != nil {
			return nil, err
		}
		if err := iso.RegisterClass(c, id); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// Name returns the runtime name ("trusted" or "untrusted").
func (rt *Runtime) Name() string { return rt.name }

// TrustedSide reports whether the runtime executes inside the enclave.
func (rt *Runtime) TrustedSide() bool { return rt.trusted }

// Image returns the loaded native image.
func (rt *Runtime) Image() *image.Image { return rt.img }

// Registry returns the runtime's mirror–proxy registry.
func (rt *Runtime) Registry() *registry.Registry { return rt.reg }

// WeakList returns the runtime's proxy weak-reference list.
func (rt *Runtime) WeakList() *registry.WeakList { return rt.weaks }

// Collect forces a stop-and-copy GC cycle on the runtime's heap.
func (rt *Runtime) Collect() error {
	rt.heapMu.Lock()
	defer rt.heapMu.Unlock()
	return rt.iso.Collect()
}

// HeapStats snapshots the heap statistics.
func (rt *Runtime) HeapStats() heap.Stats {
	rt.heapMu.Lock()
	defer rt.heapMu.Unlock()
	return rt.iso.Heap().Stats()
}

// Stats snapshots the runtime counters.
func (rt *Runtime) Stats() RuntimeStats {
	return RuntimeStats{
		RemoteCallsOut:  rt.remoteOut.Load(),
		ProxiesCreated:  rt.proxiesNew.Load(),
		MarshalledBytes: rt.marshalled.Load(),
		RegistrySize:    rt.reg.Size(),
		WeakListLen:     rt.weaks.Len(),
		ObjectTableLen:  rt.table.len(),
	}
}

// ObjectTableLen reports the number of live object-table entries — zero
// once every frame and pin retaining objects has been released.
func (rt *Runtime) ObjectTableLen() int { return rt.table.len() }

// Pin adds a permanent strong root for the object behind a ref — the
// analog of storing it in a static field. The object must currently be
// live in this runtime.
func (rt *Runtime) Pin(v wire.Value) error {
	_, hash, ok := v.AsRef()
	if !ok {
		return ErrNotRef
	}
	rt.pinMu.Lock()
	defer rt.pinMu.Unlock()
	_, err := rt.resolve(rt.pins, hash)
	return err
}

// Unpin removes one permanent retention added by Pin.
func (rt *Runtime) Unpin(v wire.Value) error {
	_, hash, ok := v.AsRef()
	if !ok {
		return ErrNotRef
	}
	rt.pinMu.Lock()
	defer rt.pinMu.Unlock()
	for i, h := range rt.pins.owned {
		if h != hash {
			continue
		}
		rt.pins.owned = append(rt.pins.owned[:i], rt.pins.owned[i+1:]...)
		if drop := rt.table.release(hash); drop != 0 {
			rt.heapMu.Lock()
			_ = rt.iso.Release(drop)
			rt.heapMu.Unlock()
		}
		return nil
	}
	return fmt.Errorf("%w: %d not pinned", ErrNoSuchObject, hash)
}

// ---- frames ----------------------------------------------------------

// frame tracks the object-table retentions of one method activation (the
// stand-in for stack/register roots in a real VM). It also carries the
// activation's trace span: a relay executing a sampled cross-boundary
// call stores the call's span here, so proxy invocations the body makes
// become child spans of the same trace — including across the worker
// goroutines of the switchless pools, which run the closure that
// captured this frame. Nil when the chain is unsampled or telemetry is
// off.
type frame struct {
	owned []int64
	span  *telemetry.Span
}

// own records a table retention taken on behalf of this frame. A frame
// belongs to exactly one activation, so no lock guards the slice.
func (fr *frame) own(hash int64) { fr.owned = append(fr.owned, hash) }

func (rt *Runtime) newFrame() *frame { return &frame{} }

// releaseFrame drops the frame's retentions; entries reaching zero lose
// their strong handle — and leave the table eagerly — making the objects
// collectable. The handle drops batch into one heap critical section.
func (rt *Runtime) releaseFrame(fr *frame) {
	var drops []heap.Handle
	for _, hash := range fr.owned {
		if d := rt.table.release(hash); d != 0 {
			drops = append(drops, d)
		}
	}
	fr.owned = nil
	if len(drops) == 0 {
		return
	}
	rt.heapMu.Lock()
	for _, d := range drops {
		// Best effort: a released handle only pins memory.
		_ = rt.iso.Release(d)
	}
	rt.heapMu.Unlock()
}

// adoptHandle installs a freshly created strong handle into the object
// table and retains it in fr. When a racing goroutine adopted the hash
// first, the table keeps the established handle and the redundant fresh
// one is dropped here, under the heap lock, outside all table locks.
func (rt *Runtime) adoptHandle(fr *frame, hash int64, fresh heap.Handle) (heap.Handle, error) {
	kept, dup := rt.table.adopt(hash, fresh)
	if dup != 0 {
		rt.heapMu.Lock()
		err := rt.iso.Release(dup)
		rt.heapMu.Unlock()
		if err != nil {
			return 0, err
		}
	}
	fr.own(hash)
	return kept, nil
}

// resolve finds a live local object for hash, looking through the object
// table, the mirror–proxy registry, and the weak list (canonical
// proxies). The returned handle is retained in fr. The slow path
// materialises a fresh handle under the heap lock, then adopts it —
// losing an adoption race only costs the redundant handle.
func (rt *Runtime) resolve(fr *frame, hash int64) (heap.Handle, error) {
	if h, ok := rt.table.retain(hash); ok {
		fr.own(hash)
		return h, nil
	}
	rt.heapMu.Lock()
	var (
		fresh heap.Handle
		err   error
	)
	// reg.Resolve is a read — it never triggers the registry's releaser
	// hook — so calling it under heapMu preserves the lock order.
	if regHandle, ok := rt.reg.Resolve(hash); ok {
		var addr heap.Addr
		addr, err = rt.iso.Heap().Deref(regHandle)
		if err == nil {
			fresh, err = rt.iso.HandleAt(addr)
		}
	} else if addr, ok := rt.weaks.LiveHash(hash); ok {
		fresh, err = rt.iso.HandleAt(addr)
	}
	rt.heapMu.Unlock()
	if err != nil {
		return 0, err
	}
	if fresh == 0 {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchObject, hash)
	}
	return rt.adoptHandle(fr, hash, fresh)
}

// resolveRef resolves a ref value to a live handle retained in fr.
func (rt *Runtime) resolveRef(fr *frame, v wire.Value) (heap.Handle, error) {
	_, hash, ok := v.AsRef()
	if !ok {
		return 0, fmt.Errorf("%w: got %s", ErrNotRef, v.Kind())
	}
	return rt.resolve(fr, hash)
}

// classDecl returns the image declaration of a ref's class.
func (rt *Runtime) classDecl(class string) (*classmodel.Class, error) {
	c, ok := rt.img.Program().Class(class)
	if !ok {
		return nil, fmt.Errorf("%w: class %s", image.ErrClosedWorld, class)
	}
	return c, nil
}

// ---- marshalling across the boundary ---------------------------------

// marshalOut prepares an argument/result vector for the boundary
// crossing: neutral values are serialized; references to local concrete
// annotated objects are exported into the registry so the opposite
// runtime may hold proxies to them; references to local proxies cross as
// their bare hash (the opposite runtime resolves its mirror).
func (rt *Runtime) marshalOut(fr *frame, vals []wire.Value) ([]byte, error) {
	out, err := rt.marshalVals(fr, vals)
	if err != nil {
		return nil, err
	}
	return rt.encodeVals(out), nil
}

// marshalVals is marshalOut's value pass — registry exports, proxy-hash
// substitution and the serialization charge — without committing to an
// output buffer, so the ring path can encode the prepared vector
// straight into a slot while the frame path uses a pooled buffer.
func (rt *Runtime) marshalVals(fr *frame, vals []wire.Value) ([]wire.Value, error) {
	out := make([]wire.Value, len(vals))
	for i, v := range vals {
		cv, err := rt.marshalValue(fr, v, 0)
		if err != nil {
			return nil, err
		}
		out[i] = cv
	}
	rt.chargeSerialization(out, simcfg.SerializeCyclesPerValue)
	return out, nil
}

// encodeVals encodes a prepared value vector into a pooled buffer.
// Size-precompute plus a pooled buffer: the hot path neither grows nor
// allocates. Callers recycle the buffer with w.bufs.Put once the
// receiver has decoded it (decoding copies).
func (rt *Runtime) encodeVals(vals []wire.Value) []byte {
	buf := wire.AppendValues(rt.w.bufs.Get(wire.SizeValues(vals)), vals)
	rt.marshalled.Add(uint64(len(buf)))
	return buf
}

// chargeSerialization charges the Java-serialization cost of a value
// vector: perCycles per leaf element, multiplied when performed inside
// the enclave (Fig. 4b's in-vs-out asymmetry).
func (rt *Runtime) chargeSerialization(vals []wire.Value, perCycles int64) {
	leaves := 0
	for _, v := range vals {
		leaves += leafCount(v)
	}
	cost := float64(leaves) * float64(perCycles)
	if rt.trusted {
		cost *= simcfg.EnclaveSerializeFactor
	}
	rt.w.clock.Charge(int64(cost))
}

// leafCount counts the scalar elements of a value tree.
func leafCount(v wire.Value) int {
	switch v.Kind() {
	case wire.KindList:
		elems, _ := v.AsList()
		n := 0
		for _, e := range elems {
			n += leafCount(e)
		}
		return n
	case wire.KindMap:
		pairs, _ := v.AsMap()
		n := 0
		for _, p := range pairs {
			n += leafCount(p.Val)
		}
		return n
	default:
		return 1
	}
}

func (rt *Runtime) marshalValue(fr *frame, v wire.Value, depth int) (wire.Value, error) {
	if depth > maxNeutralDepth {
		return wire.Value{}, errors.New("world: neutral value too deep (cycle?)")
	}
	switch v.Kind() {
	case wire.KindList:
		elems, _ := v.AsList()
		for i, e := range elems {
			ce, err := rt.marshalValue(fr, e, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			elems[i] = ce
		}
		return wire.List(elems...), nil
	case wire.KindMap:
		pairs, _ := v.AsMap()
		for i, p := range pairs {
			cv, err := rt.marshalValue(fr, p.Val, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			pairs[i].Val = cv
		}
		return wire.Map(pairs...), nil
	case wire.KindRef:
		return rt.marshalRef(fr, v)
	default:
		return v, nil
	}
}

// marshalRef handles an object reference crossing the boundary.
func (rt *Runtime) marshalRef(fr *frame, v wire.Value) (wire.Value, error) {
	class, hash, _ := v.AsRef()
	if classmodel.IsBuiltin(class) {
		return wire.Value{}, fmt.Errorf("%w: %s#%d", ErrNeutralByValue, class, hash)
	}
	decl, err := rt.classDecl(class)
	if err != nil {
		return wire.Value{}, err
	}
	if decl.Proxy {
		// A proxy crossing back to its object's home runtime: the bare
		// hash suffices; the mirror is in the opposite registry.
		return v, nil
	}
	switch decl.Ann {
	case classmodel.Neutral:
		return wire.Value{}, fmt.Errorf("%w: neutral class %s", ErrNeutralByValue, class)
	default:
		// A local concrete annotated object leaves the runtime: export
		// a strong reference into OUR registry so the opposite runtime's
		// new proxy keeps the mirror alive (§5.2). The frame's retention
		// keeps h valid between the critical sections; the address is
		// derefed and re-handled inside one, so no collection can move
		// the object in between.
		h, err := rt.resolve(fr, hash)
		if err != nil {
			return wire.Value{}, err
		}
		rt.heapMu.Lock()
		addr, err := rt.iso.Heap().Deref(h)
		var regHandle heap.Handle
		if err == nil {
			regHandle, err = rt.iso.HandleAt(addr)
		}
		rt.heapMu.Unlock()
		if err != nil {
			return wire.Value{}, err
		}
		// Export outside heapMu: a duplicate export triggers the
		// registry's releaser, which takes heapMu itself.
		if err := rt.reg.Export(hash, regHandle); err != nil {
			return wire.Value{}, err
		}
		return v, nil
	}
}

// unmarshalIn decodes an incoming argument/result vector, materialising
// local representatives for every reference: mirrors are resolved through
// the registry, and refs to remote objects become (or reuse) local proxy
// instances, weak-tracked for GC synchronisation.
func (rt *Runtime) unmarshalIn(fr *frame, buf []byte) ([]wire.Value, error) {
	vals, err := wire.UnmarshalList(buf)
	if err != nil {
		return nil, fmt.Errorf("world: corrupt boundary buffer: %w", err)
	}
	rt.chargeSerialization(vals, simcfg.DeserializeCyclesPerValue)
	rt.marshalled.Add(uint64(len(buf)))
	for i, v := range vals {
		lv, err := rt.localiseValue(fr, v, 0)
		if err != nil {
			return nil, err
		}
		vals[i] = lv
	}
	return vals, nil
}

func (rt *Runtime) localiseValue(fr *frame, v wire.Value, depth int) (wire.Value, error) {
	if depth > maxNeutralDepth {
		return wire.Value{}, errors.New("world: neutral value too deep (cycle?)")
	}
	switch v.Kind() {
	case wire.KindList:
		elems, _ := v.AsList()
		for i, e := range elems {
			le, err := rt.localiseValue(fr, e, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			elems[i] = le
		}
		return wire.List(elems...), nil
	case wire.KindMap:
		pairs, _ := v.AsMap()
		for i, p := range pairs {
			lv, err := rt.localiseValue(fr, p.Val, depth+1)
			if err != nil {
				return wire.Value{}, err
			}
			pairs[i].Val = lv
		}
		return wire.Map(pairs...), nil
	case wire.KindRef:
		if err := rt.localiseRef(fr, v); err != nil {
			return wire.Value{}, err
		}
		return v, nil
	default:
		return v, nil
	}
}

// localiseRef ensures a live local object exists for an incoming ref.
// It never touches the opposite runtime while holding the local heap
// lock (lock-order discipline: at most one runtime's heap lock at a
// time — the duplicate-export release below takes the opposite one via
// the registry's releaser hook).
func (rt *Runtime) localiseRef(fr *frame, v wire.Value) error {
	class, hash, _ := v.AsRef()
	decl, err := rt.classDecl(class)
	if err != nil {
		return err
	}

	if !decl.Proxy {
		// The object lives here: it must be a registered mirror (or an
		// already-known local object).
		if _, err := rt.resolve(fr, hash); err != nil {
			return fmt.Errorf("%w (class %s, hash %d)", ErrStaleMirror, class, hash)
		}
		return nil
	}

	// The ref names a remote object: reuse the canonical live proxy if
	// one exists, otherwise materialise a new proxy instance. Two
	// goroutines importing the same hash at once may both materialise;
	// the adoption race keeps one canonical proxy, the loser's becomes
	// garbage and its sender export is reclaimed by a later sweep.
	dropDuplicateExport := false
	if _, ok := rt.table.retain(hash); ok {
		fr.own(hash)
		dropDuplicateExport = true
	} else {
		rt.heapMu.Lock()
		var fresh heap.Handle
		addr, live := rt.weaks.LiveHash(hash)
		if live {
			fresh, err = rt.iso.HandleAt(addr)
		}
		rt.heapMu.Unlock()
		if err != nil {
			return err
		}
		switch {
		case live:
			if _, err := rt.adoptHandle(fr, hash, fresh); err != nil {
				return err
			}
			dropDuplicateExport = true
		default:
			if err := rt.newProxy(fr, class, hash); err != nil {
				return err
			}
		}
	}
	if dropDuplicateExport {
		// A live local representative already holds a registry export;
		// drop the duplicate export made by the sender.
		if opp := rt.w.opposite(rt); opp != nil {
			if _, rerr := opp.reg.Release(hash); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}

// newProxy materialises a proxy instance for a remote object and
// weak-tracks it.
func (rt *Runtime) newProxy(fr *frame, class string, hash int64) error {
	rt.heapMu.Lock()
	h, err := rt.iso.NewObject(class, hash)
	var w heap.WeakRef
	if err == nil {
		w, err = rt.iso.NewWeak(h)
	}
	rt.heapMu.Unlock()
	if err != nil {
		return err
	}
	rt.weaks.Track(w, hash)
	rt.proxiesNew.Add(1)
	_, err = rt.adoptHandle(fr, hash, h)
	return err
}

// ---- dispatch ---------------------------------------------------------

// dispatch runs a method body locally. self is a ref (or null for static
// methods); refs in args must already be live locally. Refs inside the
// result are re-retained into adoptInto (when non-nil) before the callee
// frame is released, so they stay live for the caller.
func (rt *Runtime) dispatch(ref classmodel.MethodRef, self wire.Value, args []wire.Value, adoptInto *frame) (wire.Value, error) {
	_, m, err := rt.img.Lookup(ref)
	if err != nil {
		return wire.Value{}, err
	}
	if m.Body == nil {
		return wire.Value{}, fmt.Errorf("world: method %s has no body (abstract or runtime-native)", ref)
	}
	if len(m.Params) != len(args) {
		return wire.Value{}, fmt.Errorf("%w: %s wants %d args, got %d", ErrBadArity, ref, len(m.Params), len(args))
	}
	rt.w.clock.Charge(simcfg.LocalCallCycles)
	fr := rt.newFrame()
	if adoptInto != nil {
		fr.span = adoptInto.span
	}
	defer rt.releaseFrame(fr)
	// Retain self and ref arguments for the duration of the activation.
	for _, v := range append([]wire.Value{self}, args...) {
		if v.Kind() == wire.KindRef {
			if _, err := rt.resolveRef(fr, v); err != nil {
				return wire.Value{}, err
			}
		}
	}
	e := &env{rt: rt, fr: fr}
	result, err := m.Body(e, self, args)
	if err != nil {
		return wire.Value{}, fmt.Errorf("%s: %w", ref, err)
	}
	if adoptInto != nil {
		if err := rt.adoptResult(adoptInto, result); err != nil {
			return wire.Value{}, err
		}
	}
	return result, nil
}

// adoptResult re-retains any refs inside a callee's result into the
// caller's frame, so they survive the callee frame release.
func (rt *Runtime) adoptResult(fr *frame, v wire.Value) error {
	switch v.Kind() {
	case wire.KindRef:
		_, err := rt.resolveRef(fr, v)
		return err
	case wire.KindList:
		elems, _ := v.AsList()
		for _, e := range elems {
			if err := rt.adoptResult(fr, e); err != nil {
				return err
			}
		}
	case wire.KindMap:
		pairs, _ := v.AsMap()
		for _, p := range pairs {
			if err := rt.adoptResult(fr, p.Val); err != nil {
				return err
			}
		}
	}
	return nil
}

// remoteCall performs a proxy invocation: marshal, transition through the
// enclave boundary, dispatch the relay in the opposite runtime, and
// localise the result (§5.2).
func (rt *Runtime) remoteCall(fr *frame, class, method string, hash int64, args []wire.Value) (wire.Value, error) {
	w := rt.w
	to := w.opposite(rt)
	if to == nil {
		return wire.Value{}, fmt.Errorf("%w: no opposite runtime for remote call", ErrWrongRuntime)
	}
	relayName := transform.RelayName(method)
	dir := edl.Ocall
	if to.trusted {
		dir = edl.Ecall
	}
	routine, ok := w.iface.Lookup(dir, class, relayName)
	if !ok {
		return wire.Value{}, fmt.Errorf("%w: no edge routine for %s.%s", image.ErrClosedWorld, class, relayName)
	}

	vals, err := rt.marshalVals(fr, args)
	if err != nil {
		return wire.Value{}, err
	}

	if rt.queue != nil {
		// Result-independent calls (void-returning relays) are queued
		// and coalesced into one batched transition; the caller observes
		// null immediately and any call error at the flush.
		if w.batching && !routine.ReturnsValue {
			rt.remoteOut.Add(1)
			return wire.Null(), rt.queue.Enqueue(boundary.Entry{ID: routine.ID, Class: class, Method: relayName, Hash: hash, Args: rt.encodeVals(vals)})
		}
		// A result-dependent call must observe the effects of every
		// queued call: flush first.
		if err := rt.queue.Flush(); err != nil {
			return wire.Value{}, fmt.Errorf("world: flushing batched calls before %s.%s: %w", class, relayName, err)
		}
	}

	// Start the call's trace span: a child when the current activation
	// is already part of a sampled chain (nested ocall under an ecall
	// relay), otherwise a freshly sampled root. Nil in the common case.
	var sp *telemetry.Span
	if tracer := w.tel.Tracer(); tracer != nil {
		name := "relay " + class + "." + relayName
		if fr.span != nil {
			sp = tracer.StartChild(fr.span, name)
		} else {
			sp = tracer.StartRoot(name)
		}
	}

	// Ring route first: encode the call straight into a shared slot
	// (zero intermediate copies, in-place crypto) with the opened
	// response decoded in place. Oversized, busy or ring-less calls fall
	// through to the frame path below.
	if w.enclave != nil && w.disp.HasRings(dir == edl.Ecall) {
		argsLen := wire.SizeValues(vals)
		need := wire.CallSize(class, relayName, hash, argsLen)
		var (
			results []wire.Value
			respLen int
		)
		fill := func(slot []byte) ([]byte, error) {
			slot = wire.AppendCallHeader(slot, class, relayName, hash, wire.CallWantResult, argsLen)
			return wire.AppendValues(slot, vals), nil
		}
		done := func(resp []byte) error {
			respLen = len(resp)
			var derr error
			results, derr = rt.unmarshalIn(fr, resp)
			return derr
		}
		ran, rerr := w.disp.InvokeRing(dir == edl.Ecall, routine.ID, need, sp, fill, done)
		if ran {
			rt.marshalled.Add(uint64(need))
			sp.AddMarshalBytes(need + respLen)
			sp.Finish(rerr)
			w.hMarshal.Observe(int64(need + respLen))
			if rerr != nil {
				return wire.Value{}, rerr
			}
			rt.remoteOut.Add(1)
			if len(results) != 1 {
				return wire.Value{}, fmt.Errorf("world: relay %s.%s returned %d values", class, relayName, len(results))
			}
			return results[0], nil
		}
	}

	argBuf := rt.encodeVals(vals)
	sp.AddMarshalBytes(len(argBuf))

	var resultBuf []byte
	invoke := func() error {
		var rerr error
		resultBuf, rerr = to.dispatchRelay(class, relayName, hash, argBuf, true, sp)
		return rerr
	}
	if w.enclave != nil {
		// Copying the argument and result buffers across the boundary
		// streams them through the MEE.
		w.clock.ChargeBytes(len(argBuf), simcfg.MEEBytesPerCycle)
		w.meeBytes.Add(uint64(len(argBuf)))
		err = w.disp.InvokeSpan(dir == edl.Ecall, routine.ID, false, sp, invoke)
		if err == nil {
			w.clock.ChargeBytes(len(resultBuf), simcfg.MEEBytesPerCycle)
			w.meeBytes.Add(uint64(len(resultBuf)))
		}
	} else {
		err = invoke()
	}
	sp.AddMarshalBytes(len(resultBuf))
	sp.Finish(err)
	w.hMarshal.Observe(int64(len(argBuf) + len(resultBuf)))
	w.bufs.Put(argBuf)
	if err != nil {
		return wire.Value{}, err
	}
	rt.remoteOut.Add(1)

	results, err := rt.unmarshalIn(fr, resultBuf)
	w.bufs.Put(resultBuf)
	if err != nil {
		return wire.Value{}, err
	}
	if len(results) != 1 {
		return wire.Value{}, fmt.Errorf("world: relay %s.%s returned %d values", class, relayName, len(results))
	}
	return results[0], nil
}

// dispatchRelay executes a relay method natively (the generated
// @CEntryPoint wrappers of Listing 4): constructor relays instantiate the
// mirror and register it; instance relays resolve the mirror in the
// registry and invoke the concrete method. Batched void calls pass
// wantResult=false to skip serializing (and charging for) the result.
// parent is the caller's trace span (nil when unsampled); it is threaded
// into the relay's frame so calls the body makes back across the
// boundary become children of the same trace.
func (rt *Runtime) dispatchRelay(class, relayName string, hash int64, argBuf []byte, wantResult bool, parent *telemetry.Span) ([]byte, error) {
	if !wantResult {
		return nil, rt.relayCore(class, relayName, hash, argBuf, parent, nil)
	}
	var out []byte
	err := rt.relayCore(class, relayName, hash, argBuf, parent, func(fr *frame, result wire.Value) error {
		var merr error
		out, merr = rt.marshalOut(fr, []wire.Value{result})
		return merr
	})
	return out, err
}

// dispatchRelaySlot is dispatchRelay for the ring data plane: the relay
// result is marshalled directly into the response slot (the returned
// buffer aliases slot), or — when it does not fit — into a fresh
// overflow buffer reported with overflow=true, which the ring producer
// side charges at MEE rate as a plain copy.
func (rt *Runtime) dispatchRelaySlot(class, relayName string, hash int64, argBuf, slot []byte, wantResult bool, parent *telemetry.Span) (out []byte, overflow bool, err error) {
	if !wantResult {
		return nil, false, rt.relayCore(class, relayName, hash, argBuf, parent, nil)
	}
	err = rt.relayCore(class, relayName, hash, argBuf, parent, func(fr *frame, result wire.Value) error {
		vals, merr := rt.marshalVals(fr, []wire.Value{result})
		if merr != nil {
			return merr
		}
		enc, serr := wire.AppendValuesSlot(slot, vals)
		if serr == nil {
			rt.marshalled.Add(uint64(len(enc)))
			out = enc
			return nil
		}
		overflow = true
		out = wire.AppendValues(make([]byte, 0, wire.SizeValues(vals)), vals)
		rt.marshalled.Add(uint64(len(out)))
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return out, overflow, nil
}

// relayCore is the shared body of the relay entry points: look up the
// relay, decode the arguments, run the constructor or instance
// dispatch, and hand the raw result to finish (nil for void calls)
// before the relay frame is released — result marshalling must happen
// while the frame still retains the exports.
func (rt *Runtime) relayCore(class, relayName string, hash int64, argBuf []byte, parent *telemetry.Span, finish func(fr *frame, result wire.Value) error) error {
	_, relay, err := rt.img.Lookup(classmodel.MethodRef{Class: class, Method: relayName})
	if err != nil {
		return err
	}
	if !relay.Relay {
		return fmt.Errorf("world: %s.%s is not a relay method", class, relayName)
	}
	target := relay.RelayFor

	fr := rt.newFrame()
	fr.span = parent
	defer rt.releaseFrame(fr)

	args, err := rt.unmarshalIn(fr, argBuf)
	if err != nil {
		return err
	}

	var result wire.Value
	switch {
	case target == classmodel.CtorName:
		// Mirror instantiation: allocate the concrete object under the
		// proxy's hash, run the constructor, and export a strong
		// reference into the mirror–proxy registry. Allocation and the
		// registry handle share one heap critical section (the address
		// must not cross it); the export itself runs outside heapMu
		// because a duplicate export triggers the registry's releaser.
		rt.heapMu.Lock()
		h, err := rt.iso.NewObject(class, hash)
		var regHandle heap.Handle
		if err == nil {
			var addr heap.Addr
			addr, err = rt.iso.Heap().Deref(h)
			if err == nil {
				regHandle, err = rt.iso.HandleAt(addr)
			}
		}
		rt.heapMu.Unlock()
		if err != nil {
			return err
		}
		if _, err := rt.adoptHandle(fr, hash, h); err != nil {
			return err
		}
		if err := rt.reg.Export(hash, regHandle); err != nil {
			return err
		}
		self := wire.Ref(class, hash)
		// The relay frame is passed through so the ctor body inherits
		// the trace span (its null result adopts nothing).
		if _, err := rt.dispatch(classmodel.MethodRef{Class: class, Method: target}, self, args, fr); err != nil {
			return err
		}
		result = wire.Null()

	default:
		var self wire.Value
		targetRef := classmodel.MethodRef{Class: class, Method: target}
		_, tm, err := rt.img.Lookup(targetRef)
		if err != nil {
			return err
		}
		if !tm.Static {
			// Resolve the mirror: it must still be registered.
			if _, rerr := rt.resolve(fr, hash); rerr != nil {
				return fmt.Errorf("%w: %s#%d", ErrStaleMirror, class, hash)
			}
			self = wire.Ref(class, hash)
		}
		result, err = rt.dispatch(targetRef, self, args, fr)
		if err != nil {
			return err
		}
	}

	if finish == nil {
		return nil
	}
	return finish(fr, result)
}
