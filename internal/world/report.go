package world

import (
	"fmt"
	"sort"
	"strings"

	"montsalvat/internal/shim"
)

// TransitionProfile is a per-routine transition count, the analog of an
// sgx-perf report (the tool the paper cites for transition costs).
type TransitionProfile struct {
	// Name is the edge-routine symbol (or a runtime-internal label).
	Name string
	// Direction is "ecall" or "ocall".
	Direction string
	// Count is the number of completed transitions.
	Count uint64
}

// TransitionReport returns per-routine transition counts sorted by count
// (descending) — which proxies are chattiest, where the shim relays I/O,
// and how often the GC helpers cross the boundary. Identifying such hot
// boundaries is how a developer decides what to annotate.
func (w *World) TransitionReport() []TransitionProfile {
	if w.enclave == nil {
		return nil
	}
	stats := w.enclave.Stats()
	var out []TransitionProfile
	for id, count := range stats.EcallsByID {
		out = append(out, TransitionProfile{Name: w.routineName(id), Direction: "ecall", Count: count})
	}
	for id, count := range stats.OcallsByID {
		out = append(out, TransitionProfile{Name: w.routineName(id), Direction: "ocall", Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderTransitionReport formats the report as aligned text.
func (w *World) RenderTransitionReport() string {
	profiles := w.TransitionReport()
	if len(profiles) == 0 {
		return "no enclave transitions\n"
	}
	var sb strings.Builder
	sb.WriteString("transitions by routine (sgx-perf style):\n")
	for _, p := range profiles {
		fmt.Fprintf(&sb, "  %-6s %-52s %8d\n", p.Direction, p.Name, p.Count)
	}
	return sb.String()
}

// routineName resolves a transition id to its edge-routine symbol or a
// runtime-internal label.
func (w *World) routineName(id int) string {
	switch id {
	case idGCHelper:
		return "<gc-helper thread>"
	case idGCSweep:
		return "<gc-helper mirror release>"
	case idMain:
		return "<main>"
	case idExec:
		return "<harness exec>"
	case shim.OcallWriteAt:
		return "shim:write"
	case shim.OcallAppend:
		return "shim:append"
	case shim.OcallReadAt:
		return "shim:read"
	case shim.OcallSize:
		return "shim:size"
	case shim.OcallRemove:
		return "shim:remove"
	case shim.OcallList:
		return "shim:list"
	}
	if w.iface != nil {
		for _, r := range append(w.iface.Ecalls(), w.iface.Ocalls()...) {
			if r.ID == id {
				return r.Name
			}
		}
	}
	return fmt.Sprintf("<routine %d>", id)
}
