package world

import (
	"fmt"
	"sort"
	"strings"

	"montsalvat/internal/ring"
	"montsalvat/internal/shim"
)

// TransitionProfile is a per-routine transition count, the analog of an
// sgx-perf report (the tool the paper cites for transition costs).
type TransitionProfile struct {
	// Name is the edge-routine symbol (or a runtime-internal label).
	Name string
	// Direction is "ecall" or "ocall".
	Direction string
	// Count is the number of completed transitions.
	Count uint64
}

// TransitionReport returns per-routine transition counts sorted by count
// (descending) — which proxies are chattiest, where the shim relays I/O,
// and how often the GC helpers cross the boundary. Identifying such hot
// boundaries is how a developer decides what to annotate.
func (w *World) TransitionReport() []TransitionProfile {
	if w.enclave == nil {
		return nil
	}
	stats := w.enclave.Stats()
	var out []TransitionProfile
	for id, count := range stats.EcallsByID {
		out = append(out, TransitionProfile{Name: w.routineName(id), Direction: "ecall", Count: count})
	}
	for id, count := range stats.OcallsByID {
		out = append(out, TransitionProfile{Name: w.routineName(id), Direction: "ocall", Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderTransitionReport formats the report as aligned text.
func (w *World) RenderTransitionReport() string {
	profiles := w.TransitionReport()
	if len(profiles) == 0 {
		return "no enclave transitions\n"
	}
	var sb strings.Builder
	sb.WriteString("transitions by routine (sgx-perf style):\n")
	for _, p := range profiles {
		fmt.Fprintf(&sb, "  %-6s %-52s %8d\n", p.Direction, p.Name, p.Count)
	}
	return sb.String()
}

// DispatchStats aggregates the boundary dispatch layer's counters: how
// cross-runtime calls were routed (full transitions, switchless worker
// mailboxes, fallbacks when the mailbox was busy) and how effectively
// result-independent calls were coalesced into batched frames.
type DispatchStats struct {
	// FullCalls is the number of calls routed through full transitions.
	FullCalls uint64
	// SwitchlessCalls is the number of calls served by worker pools.
	SwitchlessCalls uint64
	// FallbackCalls counts switchless attempts that fell back to a full
	// transition because the mailbox was busy or stopped.
	FallbackCalls uint64
	// SwitchlessEcalls/SwitchlessOcalls are the enclave-level counters
	// (a subset of the Stats totals).
	SwitchlessEcalls uint64
	SwitchlessOcalls uint64
	// BatchFlushes is the number of batched transitions performed.
	BatchFlushes uint64
	// BatchedCalls is the total number of calls those flushes carried.
	BatchedCalls uint64
	// PendingCalls is the number of calls still queued (0 after Close).
	PendingCalls int
	// AvgBatchSize is BatchedCalls / BatchFlushes (0 when no flushes).
	AvgBatchSize float64
	// RingCalls crossed through the zero-copy ring data plane;
	// RingFallbacks wanted a ring but found it busy; RingOversize
	// exceeded the slot capacity and took the frame path.
	RingCalls     uint64
	RingFallbacks uint64
	RingOversize  uint64
	// RingSubmits/RingDoorbells/RingStalls/RingSealedBytes aggregate the
	// ring groups' activity counters (both directions); RingOverflowBytes
	// is response bytes that crossed as plain bounce buffers.
	RingSubmits       uint64
	RingDoorbells     uint64
	RingStalls        uint64
	RingSealedBytes   uint64
	RingOverflowBytes uint64
	// MEECopiedBytes is the total bytes charged at the MEE per-byte copy
	// rate on the frame path (argument/result buffers and batch frames)
	// — the "copies" component of the dispatch cycle breakdown, which
	// the ring path converts into RingSealedBytes crypto work.
	MEECopiedBytes uint64
}

// DispatchStats snapshots the boundary dispatch counters.
func (w *World) DispatchStats() DispatchStats {
	var ds DispatchStats
	if w.disp != nil {
		bs := w.disp.Stats()
		ds.FullCalls = bs.FullCalls
		ds.SwitchlessCalls = bs.SwitchlessCalls
		ds.FallbackCalls = bs.FallbackCalls
		rs := w.disp.RingStats()
		ds.RingCalls = rs.RingCalls
		ds.RingFallbacks = rs.RingFallbacks
		ds.RingOversize = rs.RingOversize
	}
	for _, g := range []*ring.Group{w.erings, w.orings} {
		gs := g.Stats() // nil-safe: zero for a missing group
		ds.RingSubmits += gs.Submits
		ds.RingDoorbells += gs.Doorbells
		ds.RingStalls += gs.Stalls
		ds.RingSealedBytes += gs.SealedBytes
		ds.RingOverflowBytes += gs.OverflowBytes
	}
	ds.MEECopiedBytes = w.meeBytes.Load()
	if w.enclave != nil {
		es := w.enclave.Stats()
		ds.SwitchlessEcalls = es.SwitchlessEcalls
		ds.SwitchlessOcalls = es.SwitchlessOcalls
	}
	for _, rt := range []*Runtime{w.untrusted, w.trusted} {
		if rt == nil || rt.queue == nil {
			continue
		}
		qs := rt.queue.Stats()
		ds.BatchFlushes += qs.Flushes
		ds.BatchedCalls += qs.BatchedCalls
		ds.PendingCalls += rt.queue.Len()
	}
	if ds.BatchFlushes > 0 {
		ds.AvgBatchSize = float64(ds.BatchedCalls) / float64(ds.BatchFlushes)
	}
	return ds
}

// routineName resolves a transition id to its edge-routine symbol or a
// runtime-internal label.
func (w *World) routineName(id int) string {
	switch id {
	case idGCHelper:
		return "<gc-helper thread>"
	case idGCSweep:
		return "<gc-helper mirror release>"
	case idMain:
		return "<main>"
	case idExec:
		return "<harness exec>"
	case idBatch:
		return "<batched relay frame>"
	case shim.OcallWriteAt:
		return "shim:write"
	case shim.OcallAppend:
		return "shim:append"
	case shim.OcallReadAt:
		return "shim:read"
	case shim.OcallSize:
		return "shim:size"
	case shim.OcallRemove:
		return "shim:remove"
	case shim.OcallList:
		return "shim:list"
	}
	if w.iface != nil {
		for _, r := range append(w.iface.Ecalls(), w.iface.Ocalls()...) {
			if r.ID == id {
				return r.Name
			}
		}
	}
	return fmt.Sprintf("<routine %d>", id)
}
