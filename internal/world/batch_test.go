package world_test

import (
	"errors"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// batchingWorld builds the partitioned bank app with transition batching
// enabled (and optionally switchless worker pools).
func batchingWorld(t *testing.T, switchless bool) *world.World {
	t.Helper()
	opts := world.DefaultOptions()
	opts.Cfg.Batching = true
	opts.Cfg.Switchless = switchless
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), opts)
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	t.Cleanup(w.Close)
	return w
}

// TestBatchOrderingPreserved: queued void calls (ctor + updates) must be
// applied in submission order before a result-dependent call observes
// the object.
func TestBatchOrderingPreserved(t *testing.T) {
	w := batchingWorld(t, false)
	err := w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("Ada"), wire.Int(100))
		if err != nil {
			return err
		}
		// All void: the ctor and the updates ride the queue together.
		for _, delta := range []int64{10, -30, 5} {
			if _, err := env.Call(acct, "updateBalance", wire.Int(delta)); err != nil {
				return err
			}
		}
		bal, err := env.Call(acct, "getBalance")
		if err != nil {
			return err
		}
		if !bal.Equal(wire.Int(85)) {
			t.Errorf("balance = %v, want 85 (ctor before updates, in order)", bal)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := w.DispatchStats()
	if ds.BatchFlushes == 0 || ds.BatchedCalls < 4 {
		t.Fatalf("no batching happened: %+v", ds)
	}
}

// TestBatchFlushOnResultDependency: result-independent calls coalesce
// into one transition, flushed only when a result-dependent call needs
// their effects — strictly fewer ecalls than unbatched dispatch.
func TestBatchFlushOnResultDependency(t *testing.T) {
	const updates = 8
	run := func(w *world.World) uint64 {
		before := w.Stats().Enclave.Ecalls
		err := w.Exec(false, func(env classmodel.Env) error {
			acct, err := env.New(demo.Account, wire.Str("Bo"), wire.Int(0))
			if err != nil {
				return err
			}
			for i := 0; i < updates; i++ {
				if _, err := env.Call(acct, "updateBalance", wire.Int(1)); err != nil {
					return err
				}
			}
			bal, err := env.Call(acct, "getBalance")
			if err != nil {
				return err
			}
			if !bal.Equal(wire.Int(updates)) {
				t.Errorf("balance = %v, want %d", bal, updates)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Stats().Enclave.Ecalls - before
	}

	batched := run(batchingWorld(t, false))
	full := run(bankWorld(t))
	// Batched: one frame ecall (ctor + 8 updates) plus the getBalance
	// ecall. Full dispatch pays one transition per call.
	if batched != 2 {
		t.Fatalf("batched ecalls = %d, want 2 (one frame + one get)", batched)
	}
	if full != updates+2 {
		t.Fatalf("full ecalls = %d, want %d", full, updates+2)
	}
}

// TestBatchErrorDoesNotCorruptLaterCalls: a failing call in the middle
// of a batch surfaces at the flush, and calls after it still run.
func TestBatchErrorDoesNotCorruptLaterCalls(t *testing.T) {
	w := batchingWorld(t, false)
	err := w.Exec(false, func(env classmodel.Env) error {
		stale, err := env.New(demo.Account, wire.Str("Eve"), wire.Int(1))
		if err != nil {
			return err
		}
		good, err := env.New(demo.Account, wire.Str("Flo"), wire.Int(1))
		if err != nil {
			return err
		}
		// Materialize both mirrors, then kill Eve's.
		if err := w.Flush(); err != nil {
			return err
		}
		_, staleHash, _ := stale.AsRef()
		if _, err := w.Trusted().Registry().Release(staleHash); err != nil {
			return err
		}

		// Queue a doomed call before a good one.
		if _, err := env.Call(stale, "updateBalance", wire.Int(5)); err != nil {
			return err
		}
		if _, err := env.Call(good, "updateBalance", wire.Int(5)); err != nil {
			return err
		}
		flushErr := w.Flush()
		if !errors.Is(flushErr, world.ErrStaleMirror) {
			t.Errorf("flush err = %v, want ErrStaleMirror", flushErr)
		}
		// The call after the failing one was still applied.
		bal, err := env.Call(good, "getBalance")
		if err != nil {
			return err
		}
		if !bal.Equal(wire.Int(6)) {
			t.Errorf("balance = %v, want 6 (later batched call applied)", bal)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCloseFlushesPendingBatch: World.Close drains queued calls before
// tearing the enclave down.
func TestCloseFlushesPendingBatch(t *testing.T) {
	opts := world.DefaultOptions()
	opts.Cfg.Batching = true
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("Gil"), wire.Int(0))
		if err != nil {
			return err
		}
		_, err = env.Call(acct, "updateBalance", wire.Int(3))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds := w.DispatchStats(); ds.PendingCalls == 0 {
		t.Fatalf("nothing pending before Close: %+v", ds)
	}
	w.Close()
	ds := w.DispatchStats()
	if ds.PendingCalls != 0 {
		t.Fatalf("Close left %d pending calls", ds.PendingCalls)
	}
	if ds.BatchFlushes == 0 || ds.BatchedCalls != 2 {
		t.Fatalf("Close did not flush the queue: %+v", ds)
	}
}

// TestExplicitWorldFlush: World.Flush drains the queues on demand and
// the effects are immediately visible on the trusted side.
func TestExplicitWorldFlush(t *testing.T) {
	w := batchingWorld(t, false)
	err := w.Exec(false, func(env classmodel.Env) error {
		if _, err := env.New(demo.Account, wire.Str("Hal"), wire.Int(9)); err != nil {
			return err
		}
		if w.Trusted().Registry().Size() != 0 {
			t.Error("ctor crossed the boundary before any flush")
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if got := w.Trusted().Registry().Size(); got != 1 {
			t.Errorf("registry size after Flush = %d, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	if ds := w.DispatchStats(); ds.BatchFlushes != 1 {
		t.Fatalf("flushes = %d, want 1 (empty flush must not count)", ds.BatchFlushes)
	}
}

// TestSweepBatchesReleases: with batching on, the GC sweep coalesces all
// mirror releases into a single batched transition.
func TestSweepBatchesReleases(t *testing.T) {
	w := batchingWorld(t, false)
	if _, err := w.RunMain(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := w.Trusted().Registry().Size(); got != 3 {
		t.Fatalf("registry size after main = %d, want 3", got)
	}
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatal(err)
	}
	before := w.Stats().Enclave.Ecalls
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		t.Fatal(err)
	}
	if got := w.Trusted().Registry().Size(); got != 0 {
		t.Fatalf("registry size after sweep = %d, want 0", got)
	}
	if got := w.Stats().Enclave.Ecalls - before; got != 1 {
		t.Fatalf("sweep used %d ecalls, want 1 batched frame", got)
	}
}

// TestSwitchlessEndToEnd: with worker pools on, proxy calls are served
// through the mailbox instead of full transitions.
func TestSwitchlessEndToEnd(t *testing.T) {
	w := batchingWorld(t, true)
	result, err := w.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	wantBankResult(t, result)
	ds := w.DispatchStats()
	if ds.SwitchlessCalls == 0 {
		t.Fatalf("no switchless calls: %+v", ds)
	}
	if ds.SwitchlessEcalls == 0 {
		t.Fatalf("enclave saw no switchless ecalls: %+v", ds)
	}
	if ds.SwitchlessCalls != ds.SwitchlessEcalls+ds.SwitchlessOcalls {
		t.Fatalf("dispatcher (%d) and enclave (%d+%d) disagree on switchless calls",
			ds.SwitchlessCalls, ds.SwitchlessEcalls, ds.SwitchlessOcalls)
	}
}
