package world_test

import (
	"errors"
	"fmt"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/heap"
	"montsalvat/internal/shim"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// TestEnclaveHeapExhaustion injects EPC/heap pressure: a tiny trusted
// heap fills with pinned mirrors until allocation fails; the error
// surfaces cleanly through the RMI path instead of corrupting state.
func TestEnclaveHeapExhaustion(t *testing.T) {
	opts := world.DefaultOptions()
	opts.TrustedHeap = heap.Config{InitialSemi: 1 << 13, MaxSemi: 1 << 13}
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var oomErr error
	created := 0
	err = w.Exec(false, func(env classmodel.Env) error {
		for i := 0; i < 10_000; i++ {
			// Pinned mirrors cannot be collected: the enclave heap must
			// eventually refuse.
			ref, err := env.New(demo.Account, wire.Str("hog-with-a-long-owner-name"), wire.Int(int64(i)))
			if err != nil {
				oomErr = err
				return nil
			}
			if err := w.Untrusted().Pin(ref); err != nil {
				return err
			}
			created++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if oomErr == nil {
		t.Fatalf("created %d mirrors in an 8 KiB enclave heap without OOM", created)
	}
	if !errors.Is(oomErr, heap.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", oomErr)
	}
	// The world remains usable for untrusted-local work.
	err = w.Exec(false, func(env classmodel.Env) error {
		_, err := env.New(demo.Person, wire.Str("still fine"), wire.Int(1))
		// Person's ctor creates an Account mirror too, which may also
		// OOM; either a clean error or success is acceptable — no panic,
		// no corruption.
		if err != nil && !errors.Is(err, heap.ErrOutOfMemory) {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// denyFS rejects writes after a budget, simulating the untrusted side
// denying service to the enclave's shim ocalls.
type denyFS struct {
	shim.FS
	budget int
}

var errDenied = errors.New("untrusted runtime denied I/O")

func (d *denyFS) Append(name string, data []byte) (int64, error) {
	if d.budget <= 0 {
		return 0, errDenied
	}
	d.budget--
	return d.FS.Append(name, data)
}

// TestOcallDenial injects an untrusted FS that starts failing: trusted
// code observes clean errors through the shim (the enclave cannot be
// crashed by a hostile I/O helper, matching the §4 threat model where
// the OS controls I/O results).
func TestOcallDenial(t *testing.T) {
	prog := classmodel.NewProgram()
	logger := classmodel.NewClass("SecureLogger", classmodel.Trusted)
	if err := logger.AddMethod(&classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := logger.AddMethod(&classmodel.Method{
		Name: "log", Public: true, Returns: wire.KindBool,
		Params: []classmodel.Param{{Name: "line", Kind: wire.KindString}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			line, _ := args[0].AsStr()
			if _, err := env.FS().Append("audit.log", []byte(line+"\n")); err != nil {
				// Degrade gracefully: report failure to the caller.
				return wire.Bool(false), nil
			}
			return wire.Bool(true), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := prog.AddClass(logger); err != nil {
		t.Fatal(err)
	}
	mainC := classmodel.NewClass("LogMain", classmodel.Untrusted)
	if err := mainC.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
		Allocates: []string{"SecureLogger"},
		Calls:     []classmodel.MethodRef{{Class: "SecureLogger", Method: "log"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := prog.AddClass(mainC); err != nil {
		t.Fatal(err)
	}
	prog.MainClass = "LogMain"

	opts := world.DefaultOptions()
	opts.HostFS = &denyFS{FS: shim.NewMemFS(), budget: 3}
	w, _, err := core.NewPartitionedWorld(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ok, denied := 0, 0
	err = w.Exec(false, func(env classmodel.Env) error {
		lg, err := env.New("SecureLogger")
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			res, err := env.Call(lg, "log", wire.Str(fmt.Sprintf("event %d", i)))
			if err != nil {
				return err
			}
			if b, _ := res.AsBool(); b {
				ok++
			} else {
				denied++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok != 3 || denied != 5 {
		t.Fatalf("ok=%d denied=%d, want 3/5", ok, denied)
	}
}
