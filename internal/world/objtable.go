package world

import (
	"sync/atomic"

	"montsalvat/internal/heap"
	"montsalvat/internal/lockrank"
)

// tableShards is the stripe count of the runtime object table. Identity
// hashes are issued sequentially by the world, so hash & (tableShards-1)
// distributes entries uniformly.
const tableShards = 16

// objEntry is a reference-counted strong handle in the object table;
// frames retain and release entries.
type objEntry struct {
	handle heap.Handle
	refs   int
}

// tableShard is one stripe of the object table.
type tableShard struct {
	mu      lockrank.Mutex
	entries map[int64]*objEntry
}

// objTable is a runtime's sharded object table: identity hash →
// refcounted strong handle, striped over per-shard mutexes so
// concurrently executing activations touching different objects do not
// serialise. Table operations are pure map-and-refcount work — no shard
// critical section ever touches the heap. Operations that make an entry's
// strong handle redundant (racing adopts, last-reference releases) hand
// the handle back to the caller, who drops it under the runtime's heap
// lock; handles are never reused by the heap, so a stale drop fails
// cleanly rather than aliasing.
type objTable struct {
	shards [tableShards]tableShard
	// waits counts shard-lock acquisitions that found the lock held —
	// the table's contention telemetry.
	waits atomic.Uint64
}

func newObjTable() *objTable {
	t := &objTable{}
	for i := range t.shards {
		t.shards[i].entries = make(map[int64]*objEntry)
		t.shards[i].mu.SetRank(lockrank.RankWorldTable, "world.tableShard.mu")
	}
	return t
}

func (t *objTable) shard(hash int64) *tableShard {
	return &t.shards[uint64(hash)&(tableShards-1)]
}

// lock acquires a shard mutex, counting contended acquisitions.
func (t *objTable) lock(s *tableShard) {
	if !s.mu.TryLock() {
		t.waits.Add(1)
		s.mu.Lock()
	}
}

// retain bumps the reference count of an existing entry, reporting its
// handle. A miss leaves the table untouched.
func (t *objTable) retain(hash int64) (heap.Handle, bool) {
	s := t.shard(hash)
	t.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return 0, false
	}
	e.refs++
	return e.handle, true
}

// adopt installs (hash → handle) with one reference. When another
// goroutine installed an entry first, the existing entry is retained
// instead and the now-redundant handle is returned as dup for the caller
// to drop outside all table locks.
func (t *objTable) adopt(hash int64, handle heap.Handle) (kept, dup heap.Handle) {
	s := t.shard(hash)
	t.lock(s)
	defer s.mu.Unlock()
	if e, ok := s.entries[hash]; ok {
		e.refs++
		if handle != 0 && handle != e.handle {
			return e.handle, handle
		}
		return e.handle, 0
	}
	s.entries[hash] = &objEntry{handle: handle, refs: 1}
	return handle, 0
}

// release drops one reference. An entry reaching zero references is
// removed eagerly — the table never accumulates dead entries — and its
// strong handle is returned for the caller to drop. Unknown hashes are
// ignored (the entry was already fully released).
func (t *objTable) release(hash int64) (drop heap.Handle) {
	s := t.shard(hash)
	t.lock(s)
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return 0
	}
	e.refs--
	if e.refs > 0 {
		return 0
	}
	delete(s.entries, hash)
	return e.handle
}

// len folds the live entry count over the shards.
func (t *objTable) len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
