package world_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// ringWorld builds a partitioned world with the zero-copy ring data
// plane enabled, letting the caller tweak the options first.
func ringWorld(t *testing.T, prog *classmodel.Program, mutate func(*world.Options)) *world.World {
	t.Helper()
	opts := world.DefaultOptions()
	opts.Cfg.Rings = true
	if mutate != nil {
		mutate(&opts)
	}
	w, _, err := core.NewPartitionedWorld(prog, opts)
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	t.Cleanup(w.Close)
	return w
}

// TestRingDataPlaneBank runs the Listing 1 application with rings on:
// the result must be identical to the frame path, and the RMIs must
// actually have ridden the rings (sealed in place, not MEE-copied).
func TestRingDataPlaneBank(t *testing.T) {
	w := ringWorld(t, demo.MustBankProgram(), nil)
	result, err := w.RunMain()
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	wantBankResult(t, result)

	ds := w.DispatchStats()
	if ds.RingCalls == 0 {
		t.Fatalf("no calls rode the rings: %+v", ds)
	}
	if ds.RingSealedBytes == 0 {
		t.Fatalf("ring calls without sealed bytes: %+v", ds)
	}
	if ds.RingSubmits < ds.RingCalls {
		t.Fatalf("submits %d < ring calls %d", ds.RingSubmits, ds.RingCalls)
	}
	// Default 64 KiB slots hold every bank RMI.
	if ds.RingOversize != 0 {
		t.Fatalf("unexpected oversize fallbacks: %+v", ds)
	}
}

// TestRingOversizeAndOverflow shrinks the slots so both escape hatches
// fire: a large request falls back to the frame path before submission
// (oversize), and a small request with a large result crosses back as a
// plain bounce buffer (overflow). Both must stay correct.
func TestRingOversizeAndOverflow(t *testing.T) {
	w := ringWorld(t, demo.MustBankProgram(), func(o *world.Options) {
		o.Cfg.RingSlotBytes = 256
	})
	bigOwner := strings.Repeat("O", 8<<10)
	err := w.Exec(false, func(env classmodel.Env) error {
		// Ctor args exceed the 256-byte slot: oversize, frame fallback.
		acct, err := env.New(demo.Account, wire.Str(bigOwner), wire.Int(11))
		if err != nil {
			return err
		}
		// Small request, 8 KiB result: rides the ring, returns overflow.
		owner, err := env.Call(acct, "getOwner")
		if err != nil {
			return err
		}
		if !owner.Equal(wire.Str(bigOwner)) {
			t.Errorf("getOwner returned %d bytes, want %d", len(owner.String()), len(bigOwner))
		}
		bal, err := env.Call(acct, "getBalance")
		if err != nil {
			return err
		}
		if !bal.Equal(wire.Int(11)) {
			t.Errorf("balance = %v, want 11", bal)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := w.DispatchStats()
	if ds.RingOversize == 0 {
		t.Fatalf("oversized ctor did not fall back: %+v", ds)
	}
	if ds.RingCalls == 0 {
		t.Fatalf("small calls did not ride the rings: %+v", ds)
	}
	if ds.RingOverflowBytes < uint64(len(bigOwner)) {
		t.Fatalf("overflow bytes %d, want >= %d (getOwner result)", ds.RingOverflowBytes, len(bigOwner))
	}
}

// TestRingKillRestart: rings are torn down with the enclave on Kill and
// rebuilt on Restart, and calls ride them again afterwards.
func TestRingKillRestart(t *testing.T) {
	w := ringWorld(t, demo.MustBankProgram(), nil)
	if _, err := w.RunMain(); err != nil {
		t.Fatal(err)
	}
	before := w.DispatchStats().RingCalls
	if before == 0 {
		t.Fatal("no ring calls before kill")
	}
	w.Kill()
	if err := w.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	result, err := w.RunMain()
	if err != nil {
		t.Fatalf("RunMain after restart: %v", err)
	}
	wantBankResult(t, result)
	// The boundary (and its counters) is rebuilt from scratch: the fresh
	// ring plane must carry the rerun.
	if after := w.DispatchStats().RingCalls; after == 0 {
		t.Fatal("no ring calls on the rebuilt plane")
	}
}

// TestRingConcurrentStress hammers the rings from both directions while
// the GC helpers sweep and the batch queues flush — run under -race
// (internal/world is in the Makefile race list) this exercises the ring
// producer locks and Dekker doorbells against the crossing engine's
// shard and heap locks.
func TestRingConcurrentStress(t *testing.T) {
	opts := func(o *world.Options) {
		o.Cfg.Batching = true
		o.Cfg.RingSlots = 8 // small rings: force wraparound and stalls
		o.GCHelperInterval = time.Millisecond
	}
	w := ringWorld(t, twoWayProgram(t), opts)
	w.StartGCHelpers()
	defer w.StopGCHelpers()

	const goroutines = 6
	iters := 25
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*goroutines+1)

	// Untrusted side: trusted mirrors, queued void calls, flushes.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := w.Exec(false, func(env classmodel.Env) error {
					acct, err := env.New(demo.Account, wire.Str("Ring"), wire.Int(3))
					if err != nil {
						return err
					}
					for _, d := range []int64{5, -2} {
						if _, err := env.Call(acct, "updateBalance", wire.Int(d)); err != nil {
							return err
						}
					}
					bal, err := env.Call(acct, "getBalance")
					if err != nil {
						return err
					}
					if !bal.Equal(wire.Int(6)) {
						return fmt.Errorf("balance = %v, want 6", bal)
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// Trusted side: untrusted proxies, ocall-direction rings.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := w.Exec(true, func(env classmodel.Env) error {
					p, err := env.New(demo.Person, wire.Str("Dave"), wire.Int(1))
					if err != nil {
						return err
					}
					name, err := env.Call(p, "getName")
					if err != nil {
						return err
					}
					if !name.Equal(wire.Str("Dave")) {
						return fmt.Errorf("name = %v, want Dave", name)
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// Sweeper: explicit collections racing the crossings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := w.SweepOnce(w.Untrusted()); err != nil {
				errs <- err
				return
			}
			if err := w.Flush(); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}

	ds := w.DispatchStats()
	if ds.RingCalls == 0 {
		t.Fatalf("stress run never rode the rings: %+v", ds)
	}
	if ds.PendingCalls != 0 {
		t.Fatalf("pending calls %d after quiesce", ds.PendingCalls)
	}
}
