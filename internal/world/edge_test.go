package world_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/sgx"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

func TestRunAfterClose(t *testing.T) {
	w := bankWorld(t)
	w.Close()
	if _, err := w.RunMain(); !errors.Is(err, sgx.ErrDestroyed) {
		t.Fatalf("RunMain after Close: %v", err)
	}
	if err := w.Exec(false, func(env classmodel.Env) error {
		// Untrusted-local work still runs, but crossing the boundary
		// fails.
		_, err := env.New(demo.Account, wire.Str("x"), wire.Int(1))
		return err
	}); !errors.Is(err, sgx.ErrDestroyed) {
		t.Fatalf("proxy creation after Close: %v", err)
	}
	// Close is idempotent.
	w.Close()
}

func TestStartStopHelpersIdempotent(t *testing.T) {
	w := bankWorld(t)
	w.StartGCHelpers()
	w.StartGCHelpers() // second start is a no-op
	w.StopGCHelpers()
	w.StopGCHelpers() // second stop is a no-op
	w.StartGCHelpers()
	w.StopGCHelpers()
}

func TestHelpersUnderChurn(t *testing.T) {
	// Helpers sweep concurrently while the mutator churns proxies;
	// everything must stay consistent at the end.
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.StartGCHelpers()

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				err := w.Exec(false, func(env classmodel.Env) error {
					acct, err := env.New(demo.Account, wire.Str("churn"), wire.Int(int64(i)))
					if err != nil {
						return err
					}
					if _, err := env.Call(acct, "updateBalance", wire.Int(1)); err != nil {
						return err
					}
					return nil
				})
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if i%5 == 0 {
					if err := w.Untrusted().Collect(); err != nil {
						t.Errorf("collect: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	w.StopGCHelpers()

	// Drain: after a final collect + sweep the registries agree with the
	// surviving proxies.
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatal(err)
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		t.Fatal(err)
	}
	if got, want := w.Trusted().Registry().Size(), w.Untrusted().WeakList().Len(); got != want {
		t.Fatalf("registry %d != live proxies %d", got, want)
	}
}

func TestGetFieldOnProxyRejected(t *testing.T) {
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("f"), wire.Int(1))
		if err != nil {
			return err
		}
		if _, gerr := env.GetField(acct, "balance"); gerr == nil || !strings.Contains(gerr.Error(), "proxy") {
			t.Errorf("GetField on proxy: %v", gerr)
		}
		if serr := env.SetField(acct, "balance", wire.Int(0)); serr == nil || !strings.Contains(serr.Error(), "proxy") {
			t.Errorf("SetField on proxy: %v", serr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallOnNonRef(t *testing.T) {
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		if _, cerr := env.Call(wire.Int(7), "anything"); !errors.Is(cerr, world.ErrNotRef) {
			t.Errorf("Call on int: %v", cerr)
		}
		if _, gerr := env.GetField(wire.Str("x"), "f"); !errors.Is(gerr, world.ErrNotRef) {
			t.Errorf("GetField on string: %v", gerr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinMisuse(t *testing.T) {
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		// Array cannot be instantiated directly.
		if _, err := env.New(classmodel.BuiltinArray, wire.Int(4)); err == nil {
			t.Error("Array instantiated directly")
		}
		// Wrong constructor arguments.
		if _, err := env.New(classmodel.BuiltinString, wire.Int(1)); err == nil {
			t.Error("String(int) accepted")
		}
		if _, err := env.New(classmodel.BuiltinList, wire.Int(1)); !errors.Is(err, world.ErrBadArity) {
			t.Errorf("List(int): %v", err)
		}
		// Unknown builtin method.
		list, err := env.New(classmodel.BuiltinList)
		if err != nil {
			return err
		}
		if _, err := env.Call(list, "shuffle"); err == nil {
			t.Error("List.shuffle accepted")
		}
		// List.add of a non-ref.
		if _, err := env.Call(list, "add", wire.Int(1)); err == nil {
			t.Error("List.add(int) accepted")
		}
		// Builtin value methods.
		s, err := env.New(classmodel.BuiltinString, wire.Str("hello"))
		if err != nil {
			return err
		}
		if v, err := env.Call(s, "length"); err != nil || !v.Equal(wire.Int(5)) {
			t.Errorf("String.length = %v, %v", v, err)
		}
		if v, err := env.Call(s, "value"); err != nil || !v.Equal(wire.Str("hello")) {
			t.Errorf("String.value = %v, %v", v, err)
		}
		b, err := env.New(classmodel.BuiltinBytes, wire.Bytes([]byte{1, 2}))
		if err != nil {
			return err
		}
		if v, err := env.Call(b, "length"); err != nil || !v.Equal(wire.Int(2)) {
			t.Errorf("Bytes.length = %v, %v", v, err)
		}
		blob, err := env.New(classmodel.BuiltinBlob, wire.List(wire.Int(1)))
		if err != nil {
			return err
		}
		if v, err := env.Call(blob, "value"); err != nil || !v.Equal(wire.List(wire.Int(1))) {
			t.Errorf("Blob.value = %v, %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestListSurvivesRemoteRoundTrips(t *testing.T) {
	// A trusted object's List field holding trusted elements works
	// across many boundary interactions and collections.
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		reg, err := env.New(demo.AccountRegistry)
		if err != nil {
			return err
		}
		var total int64
		for i := 0; i < 10; i++ {
			acct, err := env.New(demo.Account, wire.Str("u"), wire.Int(int64(i)))
			if err != nil {
				return err
			}
			if _, err := env.Call(reg, "addAccount", acct); err != nil {
				return err
			}
			total += int64(i)
		}
		if err := w.Trusted().Collect(); err != nil {
			return err
		}
		sum, err := env.Call(reg, "totalBalance")
		if err != nil {
			return err
		}
		if !sum.Equal(wire.Int(total)) {
			t.Errorf("totalBalance = %v, want %d", sum, total)
		}
		size, err := env.Call(reg, "size")
		if err != nil {
			return err
		}
		if !size.Equal(wire.Int(10)) {
			t.Errorf("size = %v", size)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValuesThroughBoundaryPreserved(t *testing.T) {
	// Neutral values (strings, lists, maps, bytes, floats) cross by
	// value in both directions without corruption.
	w, _, err := core.NewPartitionedWorld(twoWayProgram(t), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("héllo ∀ unicode"), wire.Int(-1))
		if err != nil {
			return err
		}
		owner, err := env.Call(acct, "getOwner")
		if err != nil {
			return err
		}
		if !owner.Equal(wire.Str("héllo ∀ unicode")) {
			t.Errorf("owner round trip = %v", owner)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
