package world_test

import (
	"errors"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/sgx"
	"montsalvat/internal/world"
)

// TestKillRestart drives the whole crash/recover lifecycle of a
// partitioned world: a live run, the kill (accessors go nil, execution
// refuses), the restart (fresh enclave, fresh runtimes), and a second
// live run on the reborn world.
func TestKillRestart(t *testing.T) {
	w := bankWorld(t)
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("first RunMain: %v", err)
	}
	firstMR := w.Enclave().Measurement()
	firstSigner := w.Enclave().MRSigner()

	w.Kill()
	if !w.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	if w.Enclave() != nil || w.Trusted() != nil || w.Untrusted() != nil {
		t.Fatal("killed world still exposes live state")
	}
	if err := w.Exec(true, func(classmodel.Env) error { return nil }); !errors.Is(err, world.ErrWrongRuntime) {
		t.Fatalf("Exec on killed world: %v, want ErrWrongRuntime", err)
	}
	w.Kill() // idempotent

	if err := w.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if w.Killed() {
		t.Fatal("Killed() true after Restart")
	}
	// Re-attestation: the same image re-measures to the same MRENCLAVE,
	// and the retained signing identity yields the same MRSIGNER.
	if w.Enclave().Measurement() != firstMR {
		t.Fatal("restarted enclave has a different measurement")
	}
	if w.Enclave().MRSigner() != firstSigner {
		t.Fatal("restarted enclave has a different MRSIGNER")
	}
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain after restart: %v", err)
	}
	if s := w.Stats(); s.Enclave.Ecalls == 0 {
		t.Fatal("restarted world recorded no ecalls")
	}
}

// TestRestartSealedStateSurvives is the property the whole durability
// layer leans on: a blob sealed by the first enclave incarnation must
// unseal in the next one. MRSIGNER survives because the signer is
// retained; MRENCLAVE survives because the image is retained (same
// measurement), which is exactly the simulated analog of restarting the
// same enclave binary.
func TestRestartSealedStateSurvives(t *testing.T) {
	w := bankWorld(t)
	secret, err := sgx.NewPlatformSecret()
	if err != nil {
		t.Fatal(err)
	}
	aad := []byte("restart-test")
	signerBlob, err := w.Enclave().Seal(secret, sgx.SealToMRSIGNER, []byte("durable"), aad)
	if err != nil {
		t.Fatal(err)
	}
	enclaveBlob, err := w.Enclave().Seal(secret, sgx.SealToMRENCLAVE, []byte("measured"), aad)
	if err != nil {
		t.Fatal(err)
	}

	w.Kill()
	if err := w.Restart(); err != nil {
		t.Fatal(err)
	}

	got, err := w.Enclave().Unseal(secret, sgx.SealToMRSIGNER, signerBlob, aad)
	if err != nil {
		t.Fatalf("MRSIGNER blob did not survive restart: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("unsealed %q", got)
	}
	got, err = w.Enclave().Unseal(secret, sgx.SealToMRENCLAVE, enclaveBlob, aad)
	if err != nil {
		t.Fatalf("MRENCLAVE blob did not survive same-image restart: %v", err)
	}
	if string(got) != "measured" {
		t.Fatalf("unsealed %q", got)
	}
}

// TestRestartGuards pins the misuse surface: restarting a live world,
// and kill/restart outside partitioned mode.
func TestRestartGuards(t *testing.T) {
	w := bankWorld(t)
	if err := w.Restart(); !errors.Is(err, world.ErrNotKilled) {
		t.Fatalf("Restart of live world: %v, want ErrNotKilled", err)
	}

	solo, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	solo.Kill() // no-op
	if solo.Killed() {
		t.Fatal("Kill marked an unpartitioned world killed")
	}
	if err := solo.Restart(); !errors.Is(err, world.ErrWrongRuntime) {
		t.Fatalf("Restart of unpartitioned world: %v, want ErrWrongRuntime", err)
	}
}

// TestCloseAfterKill: tearing down a killed world must degrade cleanly
// (nil runtimes, nil dispatcher, no enclave) — the gateway calls
// CloseErr on shutdown regardless of recovery state.
func TestCloseAfterKill(t *testing.T) {
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w.Kill()
	if err := w.CloseErr(); err != nil {
		t.Fatalf("CloseErr after Kill: %v", err)
	}
}

// TestRestartRevivesGCHelpers: helpers running at kill time come back
// after restart (and stop cleanly on Close).
func TestRestartRevivesGCHelpers(t *testing.T) {
	w := bankWorld(t)
	w.StartGCHelpers()
	w.Kill()
	if err := w.Restart(); err != nil {
		t.Fatal(err)
	}
	// Close stops the revived helpers; a leaked helper would deadlock the
	// test (helperWG.Wait) or panic on the dead enclave.
	w.StopGCHelpers()
}
