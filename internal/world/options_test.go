package world_test

import (
	"testing"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/world"
)

// TestCloseErrSurfacesFlushResult: CloseErr is Close with the final
// flush error surfaced; on a healthy world it must be nil, and the world
// is unusable afterwards.
func TestCloseErrSurfacesFlushResult(t *testing.T) {
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if err := w.CloseErr(); err != nil {
		t.Fatalf("CloseErr: %v", err)
	}
	// The enclave is destroyed: trusted execution must now fail.
	if err := w.Exec(true, func(env classmodel.Env) error { return nil }); err == nil {
		t.Fatal("trusted Exec after CloseErr succeeded")
	}
}

// TestGCHelperIntervalOption: a positive Options.GCHelperInterval
// overrides the platform config, and sweep statistics report helper
// activity (sweep count and released proxies) without manual SweepOnce
// calls.
func TestGCHelperIntervalOption(t *testing.T) {
	opts := world.DefaultOptions()
	opts.GCHelperInterval = time.Millisecond
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), opts)
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	defer w.Close()
	w.StartGCHelpers()

	// Create proxy garbage: run main, whose frame-held proxies become
	// unreachable when the activation ends.
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatalf("Collect: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := w.Stats()
		if st.UntrustedSweeps.Sweeps > 0 && st.UntrustedSweeps.Released > 0 {
			if st.UntrustedSweeps.LastSweep.IsZero() {
				t.Fatal("LastSweep not recorded")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("helper sweeps not observed: %+v", st.UntrustedSweeps)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSweepStatsManual: SweepOnce accounts into the runtime's sweep
// stats even without helpers.
func TestSweepStatsManual(t *testing.T) {
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	defer w.Close()
	if _, err := w.RunMain(); err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	rt := w.Untrusted()
	if err := rt.Collect(); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if err := w.SweepOnce(rt); err != nil {
		t.Fatalf("SweepOnce: %v", err)
	}
	st := rt.SweepStats()
	if st.Sweeps == 0 {
		t.Fatalf("Sweeps = 0 after SweepOnce: %+v", st)
	}
	if st.Released == 0 || st.LastReleased == 0 {
		t.Fatalf("no released proxies recorded: %+v", st)
	}
	if time.Since(st.LastSweep) > time.Minute {
		t.Fatalf("LastSweep stale: %v", st.LastSweep)
	}
}
