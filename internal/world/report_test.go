package world_test

import (
	"errors"
	"strings"
	"testing"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

func TestTransitionReport(t *testing.T) {
	w := bankWorld(t)
	if _, err := w.RunMain(); err != nil {
		t.Fatal(err)
	}
	// Force some shim traffic and a sweep too.
	err := w.Exec(true, func(env classmodel.Env) error {
		_, aerr := env.FS().Append("x", []byte("y"))
		return aerr
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatal(err)
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		t.Fatal(err)
	}

	profiles := w.TransitionReport()
	if len(profiles) == 0 {
		t.Fatal("empty report")
	}
	// Sorted descending.
	for i := 1; i < len(profiles); i++ {
		if profiles[i].Count > profiles[i-1].Count {
			t.Fatalf("report not sorted: %v", profiles)
		}
	}
	text := w.RenderTransitionReport()
	for _, want := range []string{"ecall_relay_Account", "shim:append", "<gc-helper mirror release>", "<harness exec>"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestTransitionReportNoSGX(t *testing.T) {
	w, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.TransitionReport(); got != nil {
		t.Fatalf("NoSGX report = %v, want nil", got)
	}
	if !strings.Contains(w.RenderTransitionReport(), "no enclave transitions") {
		t.Fatal("render missing placeholder")
	}
}

func TestPinUnpin(t *testing.T) {
	w := bankWorld(t)
	var ref wire.Value
	err := w.Exec(false, func(env classmodel.Env) error {
		var err error
		ref, err = env.New(demo.Account, wire.Str("Pinned"), wire.Int(5))
		if err != nil {
			return err
		}
		return w.Untrusted().Pin(ref)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The frame is gone but the pin keeps the proxy (and thus mirror)
	// alive across GC + sweep.
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatal(err)
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		t.Fatal(err)
	}
	if got := w.Trusted().Registry().Size(); got != 1 {
		t.Fatalf("registry = %d, want 1 (pin lost the proxy)", got)
	}
	// And the object is still usable from a fresh frame.
	err = w.Exec(false, func(env classmodel.Env) error {
		bal, err := env.Call(ref, "getBalance")
		if err != nil {
			return err
		}
		if !bal.Equal(wire.Int(5)) {
			t.Errorf("balance = %v", bal)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Unpin releases it.
	if err := w.Untrusted().Unpin(ref); err != nil {
		t.Fatal(err)
	}
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatal(err)
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		t.Fatal(err)
	}
	if got := w.Trusted().Registry().Size(); got != 0 {
		t.Fatalf("registry = %d after unpin, want 0", got)
	}

	// Double unpin and bad values error.
	if err := w.Untrusted().Unpin(ref); !errors.Is(err, world.ErrNoSuchObject) {
		t.Fatalf("double unpin: %v", err)
	}
	if err := w.Untrusted().Pin(wire.Int(1)); !errors.Is(err, world.ErrNotRef) {
		t.Fatalf("pin non-ref: %v", err)
	}
}

func TestExecMainPerMode(t *testing.T) {
	// Partitioned: ExecMain runs untrusted.
	wp := bankWorld(t)
	if err := wp.ExecMain(func(env classmodel.Env) error {
		if env.Trusted() {
			t.Error("partitioned ExecMain ran trusted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Unpartitioned-SGX: ExecMain runs inside the enclave.
	wu, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer wu.Close()
	before := wu.Stats().Enclave.Ecalls
	if err := wu.ExecMain(func(env classmodel.Env) error {
		if !env.Trusted() {
			t.Error("unpartitioned-SGX ExecMain ran untrusted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if wu.Stats().Enclave.Ecalls <= before {
		t.Error("ExecMain did not enter the enclave")
	}

	// NoSGX: trusted Exec is unavailable.
	wn, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer wn.Close()
	if err := wn.Exec(true, func(env classmodel.Env) error { return nil }); !errors.Is(err, world.ErrWrongRuntime) {
		t.Fatalf("Exec(true) in NoSGX: %v", err)
	}
}

func TestRemoteCallChargesCycles(t *testing.T) {
	// A proxy constructor charges at least the ecall cost plus the
	// serialization of its arguments; a local field read charges only a
	// few cycles.
	w := bankWorld(t)
	var remote, local int64
	err := w.Exec(false, func(env classmodel.Env) error {
		start := w.Clock().Total()
		acct, err := env.New(demo.Account, wire.Str("X"), wire.Int(1))
		if err != nil {
			return err
		}
		remote = w.Clock().Total() - start

		p, err := env.New(demo.Person, wire.Str("Y"), wire.Int(1))
		if err != nil {
			return err
		}
		start = w.Clock().Total()
		if _, err := env.Call(p, "getName"); err != nil {
			return err
		}
		local = w.Clock().Total() - start
		_ = acct
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if remote < 13100 {
		t.Fatalf("remote ctor charged %d cycles, want >= ecall cost", remote)
	}
	if local >= remote/10 {
		t.Fatalf("local call charged %d cycles vs remote %d; want orders cheaper", local, remote)
	}
}
