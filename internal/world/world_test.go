package world_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/image"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// bankWorld builds and starts the partitioned Listing 1 application.
func bankWorld(t *testing.T) *world.World {
	t.Helper()
	w, _, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatalf("NewPartitionedWorld: %v", err)
	}
	t.Cleanup(w.Close)
	return w
}

func wantBankResult(t *testing.T, got wire.Value) {
	t.Helper()
	want := wire.List(wire.Int(75), wire.Int(50), wire.Int(1))
	if !got.Equal(want) {
		t.Fatalf("main returned %v, want %v", got, want)
	}
}

func TestBankPartitioned(t *testing.T) {
	w := bankWorld(t)
	result, err := w.RunMain()
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	wantBankResult(t, result)

	s := w.Stats()
	// Proxy constructors and RMIs crossed the boundary.
	if s.Enclave.Ecalls < 5 {
		t.Fatalf("Ecalls = %d, want >= 5", s.Enclave.Ecalls)
	}
	// Three trusted mirrors exist: Alice's and Bob's accounts plus the
	// registry.
	if got := s.Trusted.RegistrySize; got != 3 {
		t.Fatalf("trusted registry size = %d, want 3", got)
	}
	// The untrusted runtime holds weak-tracked proxies for them.
	if got := s.Untrusted.WeakListLen; got != 3 {
		t.Fatalf("untrusted weak list = %d, want 3", got)
	}
	if s.Untrusted.RemoteCallsOut == 0 {
		t.Fatal("no remote calls recorded")
	}
	if s.Enclave.MEE.LinesEncrypted == 0 {
		t.Fatal("trusted heap did not touch the MEE")
	}
}

func TestBankUnpartitionedSGX(t *testing.T) {
	w, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), true)
	if err != nil {
		t.Fatalf("NewUnpartitionedWorld: %v", err)
	}
	defer w.Close()
	result, err := w.RunMain()
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	wantBankResult(t, result)
	s := w.Stats()
	// Exactly one ecall: main. No proxies anywhere.
	if s.Enclave.Ecalls != 1 {
		t.Fatalf("Ecalls = %d, want 1 (just main)", s.Enclave.Ecalls)
	}
	if s.Trusted.ProxiesCreated != 0 {
		t.Fatalf("proxies created = %d, want 0", s.Trusted.ProxiesCreated)
	}
	if s.Trusted.RegistrySize != 0 {
		t.Fatalf("registry size = %d, want 0", s.Trusted.RegistrySize)
	}
}

func TestBankNoSGX(t *testing.T) {
	w, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), false)
	if err != nil {
		t.Fatalf("NewUnpartitionedWorld: %v", err)
	}
	defer w.Close()
	result, err := w.RunMain()
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	wantBankResult(t, result)
	if w.Enclave() != nil {
		t.Fatal("NoSGX world has an enclave")
	}
}

func TestResultsAgreeAcrossModes(t *testing.T) {
	// The same program must compute identical results in all three
	// deployment modes — partitioning is transparent to semantics.
	var results []wire.Value
	wp := bankWorld(t)
	r, err := wp.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, r)
	for _, inEnclave := range []bool{true, false} {
		w, _, err := core.NewUnpartitionedWorld(demo.MustBankProgram(), world.DefaultOptions(), inEnclave)
		if err != nil {
			t.Fatal(err)
		}
		r, err := w.RunMain()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
		w.Close()
	}
	for i := 1; i < len(results); i++ {
		if !results[i].Equal(results[0]) {
			t.Fatalf("mode %d result %v != %v", i, results[i], results[0])
		}
	}
}

func TestGCConsistencySweep(t *testing.T) {
	w := bankWorld(t)
	if _, err := w.RunMain(); err != nil {
		t.Fatal(err)
	}
	if got := w.Trusted().Registry().Size(); got != 3 {
		t.Fatalf("registry size after main = %d, want 3", got)
	}
	// Main's frame is gone: collecting the untrusted heap kills the
	// proxies; one helper sweep must release all mirrors.
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatal(err)
	}
	if err := w.SweepOnce(w.Untrusted()); err != nil {
		t.Fatalf("SweepOnce: %v", err)
	}
	if got := w.Trusted().Registry().Size(); got != 0 {
		t.Fatalf("registry size after sweep = %d, want 0", got)
	}
	if got := w.Untrusted().Stats().WeakListLen; got != 0 {
		t.Fatalf("weak list after sweep = %d, want 0", got)
	}
	// The sweep removal message crossed the boundary as one ecall.
	if w.Stats().Enclave.EcallsByID[9101] == 0 {
		t.Fatal("sweep did not transition into the enclave")
	}
	// And the mirrors are now actually collectable in the enclave.
	before := w.Trusted().HeapStats().LiveBytes
	if err := w.Trusted().Collect(); err != nil {
		t.Fatal(err)
	}
	after := w.Trusted().HeapStats().LiveBytes
	if after >= before {
		t.Fatalf("trusted heap %d -> %d, want mirrors reclaimed", before, after)
	}
}

func TestGCHelperThreads(t *testing.T) {
	w := bankWorld(t)
	if _, err := w.RunMain(); err != nil {
		t.Fatal(err)
	}
	w.StartGCHelpers()
	defer w.StopGCHelpers()
	if err := w.Untrusted().Collect(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Trusted().Registry().Size() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("helper did not drain registry: size = %d", w.Trusted().Registry().Size())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// twoWayProgram extends the bank program with a trusted Auditor class
// whose method references Person, so the Person proxy is reachable in the
// trusted image and trusted->untrusted calls are possible.
func twoWayProgram(t *testing.T) *classmodel.Program {
	t.Helper()
	p := demo.MustBankProgram()
	auditor := classmodel.NewClass("Auditor", classmodel.Trusted)
	if err := auditor.AddMethod(&classmodel.Method{
		Name: classmodel.CtorName, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := auditor.AddMethod(&classmodel.Method{
		Name: "audit", Public: true, Returns: wire.KindString,
		Allocates: []string{demo.Person},
		Calls:     []classmodel.MethodRef{{Class: demo.Person, Method: "getName"}},
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			p, err := env.New(demo.Person, wire.Str("Dave"), wire.Int(1))
			if err != nil {
				return wire.Value{}, err
			}
			return env.Call(p, "getName")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(auditor); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecFromBothSides(t *testing.T) {
	w, _, err := core.NewPartitionedWorld(twoWayProgram(t), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Untrusted code instantiates a trusted class -> ecall.
	err = w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("Carol"), wire.Int(7))
		if err != nil {
			return err
		}
		bal, err := env.Call(acct, "getBalance")
		if err != nil {
			return err
		}
		if !bal.Equal(wire.Int(7)) {
			t.Errorf("balance = %v, want 7", bal)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Exec(untrusted): %v", err)
	}

	// Trusted code instantiates an untrusted class -> ocalls out of the
	// enclave (proxy ctor + getName RMI).
	before := w.Stats().Enclave.Ocalls
	err = w.Exec(true, func(env classmodel.Env) error {
		p, err := env.New(demo.Person, wire.Str("Dave"), wire.Int(1))
		if err != nil {
			return err
		}
		name, err := env.Call(p, "getName")
		if err != nil {
			return err
		}
		if !name.Equal(wire.Str("Dave")) {
			t.Errorf("name = %v, want Dave", name)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Exec(trusted): %v", err)
	}
	if w.Stats().Enclave.Ocalls <= before {
		t.Fatal("trusted->untrusted instantiation did not ocall")
	}
	// Dave's Person constructor itself instantiated a trusted Account,
	// whose mirror must be registered on the trusted side... and the
	// Person mirror on the untrusted side.
	if got := w.Untrusted().Registry().Size(); got < 1 {
		t.Fatalf("untrusted registry = %d, want >= 1 (Person mirror)", got)
	}
}

func TestStaleMirrorDetected(t *testing.T) {
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		acct, err := env.New(demo.Account, wire.Str("Eve"), wire.Int(1))
		if err != nil {
			return err
		}
		_, hash, _ := acct.AsRef()
		// Force-release the mirror (simulating a helper bug / premature
		// release) and then invoke through the proxy.
		if _, err := w.Trusted().Registry().Release(hash); err != nil {
			return err
		}
		_, callErr := env.Call(acct, "getBalance")
		if !errors.Is(callErr, world.ErrStaleMirror) {
			t.Errorf("err = %v, want ErrStaleMirror", callErr)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
}

func TestNeutralObjectsCrossByValueOnly(t *testing.T) {
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		list, err := env.New(classmodel.BuiltinList)
		if err != nil {
			return err
		}
		reg, err := env.New(demo.AccountRegistry)
		if err != nil {
			return err
		}
		// Passing a local List REFERENCE through a proxy call must be
		// rejected: neutral objects are serialized by value (§5.2).
		_, callErr := env.Call(reg, "addAccount", list)
		if !errors.Is(callErr, world.ErrNeutralByValue) {
			t.Errorf("err = %v, want ErrNeutralByValue", callErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProxyCanonicalisation(t *testing.T) {
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		p, err := env.New(demo.Person, wire.Str("Frank"), wire.Int(10))
		if err != nil {
			return err
		}
		a1, err := env.Call(p, "getAccount")
		if err != nil {
			return err
		}
		a2, err := env.Call(p, "getAccount")
		if err != nil {
			return err
		}
		if !a1.Equal(a2) {
			t.Errorf("getAccount returned different refs: %v vs %v", a1, a2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only one proxy instance + one registry entry for Frank's account.
	if got := w.Untrusted().Stats().WeakListLen; got != 1 {
		t.Fatalf("weak list = %d, want 1 (canonical proxy)", got)
	}
	if got := w.Trusted().Registry().Size(); got != 1 {
		t.Fatalf("registry = %d, want 1", got)
	}
}

func TestArityMismatch(t *testing.T) {
	w := bankWorld(t)
	err := w.Exec(false, func(env classmodel.Env) error {
		if _, err := env.New(demo.Account, wire.Str("x")); !errors.Is(err, world.ErrBadArity) {
			t.Errorf("short ctor args: err = %v, want ErrBadArity", err)
		}
		p, err := env.New(demo.Person, wire.Str("G"), wire.Int(1))
		if err != nil {
			return err
		}
		if _, err := env.Call(p, "getName", wire.Int(1)); !errors.Is(err, world.ErrBadArity) {
			t.Errorf("extra args: err = %v, want ErrBadArity", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClosedWorldViolation(t *testing.T) {
	// A method present in the source but with no call edge from any
	// entry point is pruned; invoking it at run time must fail.
	p := classmodel.NewProgram()
	c := classmodel.NewClass("App", classmodel.Untrusted)
	if err := c.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			// Undeclared call: "hidden" is not in Calls, so the image
			// pruned it.
			return env.CallStatic("App", "hidden")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMethod(&classmodel.Method{
		Name: "hidden", Static: true, Public: false,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(c); err != nil {
		t.Fatal(err)
	}
	p.MainClass = "App"

	w, _, err := core.NewUnpartitionedWorld(p, world.DefaultOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, err = w.RunMain()
	if !errors.Is(err, image.ErrClosedWorld) {
		t.Fatalf("err = %v, want ErrClosedWorld", err)
	}
}

func TestFileIOThroughShim(t *testing.T) {
	w := bankWorld(t)
	// Trusted writes relay through ocalls.
	before := w.Stats().Enclave.Ocalls
	err := w.Exec(true, func(env classmodel.Env) error {
		if !env.Trusted() {
			t.Error("Exec(true) ran untrusted")
		}
		for i := 0; i < 4; i++ {
			if _, err := env.FS().Append("log.txt", []byte("entry\n")); err != nil {
				return err
			}
		}
		data, err := env.FS().ReadAt("log.txt", 0, 6)
		if err != nil {
			return err
		}
		if string(data) != "entry\n" {
			t.Errorf("read %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Enclave.Ocalls - before; got < 5 {
		t.Fatalf("shim ocalls = %d, want >= 5 (4 appends + 1 read)", got)
	}
	if w.Stats().Shim.Ocalls < 5 {
		t.Fatalf("shim stats = %+v", w.Stats().Shim)
	}

	// Untrusted writes go straight to the host FS — no transitions.
	beforeE, beforeO := w.Stats().Enclave.Ecalls, w.Stats().Enclave.Ocalls
	err = w.Exec(false, func(env classmodel.Env) error {
		_, aerr := env.FS().Append("ulog.txt", []byte("direct"))
		return aerr
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Enclave.Ecalls != beforeE || w.Stats().Enclave.Ocalls != beforeO {
		t.Fatal("untrusted file I/O crossed the boundary")
	}
	// Both files visible on the host FS.
	if _, err := w.HostFS().Size("log.txt"); err != nil {
		t.Fatalf("log.txt: %v", err)
	}
	if _, err := w.HostFS().Size("ulog.txt"); err != nil {
		t.Fatalf("ulog.txt: %v", err)
	}
}

func TestMainMustBeUntrusted(t *testing.T) {
	p := classmodel.NewProgram()
	c := classmodel.NewClass("TrustedMain", classmodel.Trusted)
	if err := c.AddMethod(&classmodel.Method{
		Name: classmodel.MainMethodName, Static: true, Public: true,
		Body: func(env classmodel.Env, self wire.Value, args []wire.Value) (wire.Value, error) {
			return wire.Null(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClass(c); err != nil {
		t.Fatal(err)
	}
	p.MainClass = "TrustedMain"
	_, _, err := core.NewPartitionedWorld(p, world.DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "untrusted image") {
		t.Fatalf("err = %v, want main-in-untrusted error", err)
	}
}

func TestTrustedImageExcludesUntrustedBodies(t *testing.T) {
	_, build, err := core.NewPartitionedWorld(demo.MustBankProgram(), world.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tProg := build.TrustedImage.Program()
	// Person exists in the trusted set only as a proxy.
	person, ok := tProg.Class(demo.Person)
	if !ok {
		t.Fatal("Person missing from trusted set")
	}
	if !person.Proxy {
		t.Fatal("Person in trusted set is not a proxy")
	}
	for _, m := range person.Methods {
		if m.Body != nil {
			t.Fatalf("proxy method %s has a concrete body", m.Name)
		}
	}
	// Account in the trusted set is concrete with relays.
	acct, _ := tProg.Class(demo.Account)
	if acct.Proxy {
		t.Fatal("Account in trusted set is a proxy")
	}
	if _, ok := acct.Method("relay$updateBalance"); !ok {
		t.Fatal("Account missing relay method")
	}
	// §5.3: "proxy class Person will not be included inside the trusted
	// image since it is not reachable from any of the trusted classes."
	if _, err := build.TrustedImage.ClassID(demo.Person); !errors.Is(err, image.ErrClosedWorld) {
		t.Fatalf("Person proxy not pruned from trusted image: %v", err)
	}
	if build.TrustedImage.Report().ProxiesPruned == 0 {
		t.Fatal("no proxies pruned from trusted image")
	}
}
