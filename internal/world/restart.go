package world

import (
	"errors"
	"fmt"
)

// ErrNotKilled is returned by Restart when the world is still live.
var ErrNotKilled = errors.New("world: restart of a live world (call Kill first)")

// Kill tears down the trusted side of a partitioned world in place: GC
// helpers stop, the dispatcher and its switchless pools shut down, and
// the enclave is destroyed — the simulation of the enclave process
// dying (crash, host restart, EPC eviction storm). The World object
// itself survives: the clock keeps running, telemetry stays registered,
// and the retained build inputs (images, options, signing identity) let
// Restart re-create the trusted runtime with the same MRSIGNER, so
// MRSIGNER-sealed persistent state written before the kill remains
// unsealable after it.
//
// After Kill, Enclave/Trusted/Untrusted return nil, Exec returns
// ErrWrongRuntime, and CloseErr degrades to a plain clock stop.
// Kill is idempotent and a no-op outside ModePartitioned.
func (w *World) Kill() {
	if w.mode != ModePartitioned {
		return
	}
	// Helpers hold a long-running ecall; stop them before destroying the
	// enclave, and outside the state lock (their sweep paths read state).
	helpersOn := w.helperOn
	w.StopGCHelpers()

	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	if w.killed {
		return
	}
	w.helpersOn = helpersOn
	if w.disp != nil {
		w.disp.Close() // stops both switchless pools and ring groups
	}
	if w.enclave != nil {
		w.enclave.Destroy()
	}
	w.enclave = nil
	w.trusted = nil
	w.untrusted = nil
	w.disp = nil
	w.epool = nil
	w.opool = nil
	w.erings = nil
	w.orings = nil
	w.killed = true
}

// Killed reports whether the world is between Kill and Restart.
func (w *World) Killed() bool {
	w.stateMu.RLock()
	defer w.stateMu.RUnlock()
	return w.killed
}

// Restart rebuilds a killed partitioned world: a fresh enclave is
// created, measured and verified from the retained trusted image
// (re-attestation — same lifecycle as first boot), both runtimes are
// re-created empty, the boundary dispatch layer is rebuilt, and static
// initialisers run again. Application state does NOT come back by
// itself: callers recover it from the persistence layer (unseal the
// latest counter-valid checkpoint, replay the WAL tail) after Restart
// returns — see internal/persist and serve.Server.Recover.
//
// Because the build options retain the original signing identity, the
// new enclave reports the same MRSIGNER: sealed blobs written under
// sgx.SealToMRSIGNER before the kill unseal cleanly after it, while
// MRENCLAVE-sealed blobs survive only if the trusted image is
// bit-identical (it is — the image is retained, not rebuilt).
//
// If the GC helpers were running when Kill hit, Restart revives them.
func (w *World) Restart() error {
	w.stateMu.Lock()
	if w.mode != ModePartitioned {
		w.stateMu.Unlock()
		return ErrWrongRuntime
	}
	if !w.killed {
		w.stateMu.Unlock()
		return ErrNotKilled
	}
	if err := w.rebuildLocked(); err != nil {
		// A half-built world is torn back down to the killed state so the
		// caller can retry.
		if w.disp != nil {
			w.disp.Close()
		}
		if w.enclave != nil {
			w.enclave.Destroy()
		}
		w.enclave, w.trusted, w.untrusted = nil, nil, nil
		w.disp, w.epool, w.opool = nil, nil, nil
		w.erings, w.orings = nil, nil
		w.stateMu.Unlock()
		return fmt.Errorf("world: restart: %w", err)
	}
	w.killed = false
	revive := w.helpersOn
	w.helpersOn = false
	w.stateMu.Unlock()

	if revive {
		w.StartGCHelpers()
	}
	return nil
}

// rebuildLocked re-runs the boot sequence of NewPartitioned from the
// retained inputs. Caller holds stateMu.
func (w *World) rebuildLocked() error {
	if err := w.initEnclave(w.buildOpts, w.tImg); err != nil {
		return err
	}
	var err error
	w.trusted, err = w.newRuntime("trusted", true, w.tImg, w.buildOpts.TrustedHeap)
	if err != nil {
		return err
	}
	w.untrusted, err = w.newRuntime("untrusted", false, w.uImg, w.buildOpts.UntrustedHeap)
	if err != nil {
		return err
	}
	if err := w.initBoundary(); err != nil {
		return err
	}
	return w.runStaticInits()
}
