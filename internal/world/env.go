package world

import (
	"fmt"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/heap"
	"montsalvat/internal/image"
	"montsalvat/internal/shim"
	"montsalvat/internal/simcfg"
	"montsalvat/internal/wire"
)

// env implements classmodel.Env for one method activation. Method bodies
// observe identical semantics in either runtime; only the costs differ —
// instantiating or calling a proxy class triggers an enclave transition.
type env struct {
	rt *Runtime
	fr *frame
}

var _ classmodel.Env = (*env)(nil)

// New implements classmodel.Env.
func (e *env) New(class string, args ...wire.Value) (wire.Value, error) {
	rt := e.rt
	if classmodel.IsBuiltin(class) {
		return e.newBuiltin(class, args)
	}
	decl, err := rt.classDecl(class)
	if err != nil {
		return wire.Value{}, err
	}

	if decl.Proxy {
		// Instantiating a class of the opposite runtime: create the
		// local proxy object, then transition to create the mirror
		// (Listing 2/3 constructor stubs).
		hash := rt.w.nextHash()
		if err := rt.newProxy(e.fr, class, hash); err != nil {
			return wire.Value{}, err
		}
		// Constructor relays return no value, so under Config.Batching
		// this call may be queued: the mirror is materialized lazily at
		// the next flush, and a constructor error surfaces there instead
		// of here. Queue ordering guarantees the mirror exists before
		// any later call on this proxy reaches the other runtime.
		if _, err := rt.remoteCall(e.fr, class, classmodel.CtorName, hash, args); err != nil {
			return wire.Value{}, err
		}
		return wire.Ref(class, hash), nil
	}

	// Local concrete instantiation.
	ctorRef := classmodel.MethodRef{Class: class, Method: classmodel.CtorName}
	if _, _, err := rt.img.Lookup(ctorRef); err != nil {
		return wire.Value{}, err
	}
	rt.w.clock.Charge(simcfg.LocalAllocCycles)
	hash := rt.w.nextHash()
	rt.heapMu.Lock()
	h, err := rt.iso.NewObject(class, hash)
	rt.heapMu.Unlock()
	if err == nil {
		_, err = rt.adoptHandle(e.fr, hash, h)
	}
	if err != nil {
		return wire.Value{}, err
	}
	self := wire.Ref(class, hash)
	if _, err := rt.dispatch(ctorRef, self, args, nil); err != nil {
		return wire.Value{}, err
	}
	return self, nil
}

// Call implements classmodel.Env.
func (e *env) Call(recv wire.Value, method string, args ...wire.Value) (wire.Value, error) {
	class, hash, ok := recv.AsRef()
	if !ok {
		return wire.Value{}, fmt.Errorf("%w: cannot call %s on %s", ErrNotRef, method, recv.Kind())
	}
	rt := e.rt
	if classmodel.IsBuiltin(class) {
		return e.callBuiltin(recv, method, args)
	}
	decl, err := rt.classDecl(class)
	if err != nil {
		return wire.Value{}, err
	}
	if decl.Proxy {
		return rt.remoteCall(e.fr, class, method, hash, args)
	}
	return rt.dispatch(classmodel.MethodRef{Class: class, Method: method}, recv, args, e.fr)
}

// CallStatic implements classmodel.Env.
func (e *env) CallStatic(class, method string, args ...wire.Value) (wire.Value, error) {
	rt := e.rt
	decl, err := rt.classDecl(class)
	if err != nil {
		return wire.Value{}, err
	}
	if decl.Proxy {
		return rt.remoteCall(e.fr, class, method, 0, args)
	}
	ref := classmodel.MethodRef{Class: class, Method: method}
	_, m, err := rt.img.Lookup(ref)
	if err != nil {
		return wire.Value{}, err
	}
	if !m.Static {
		return wire.Value{}, fmt.Errorf("world: %s is not static", ref)
	}
	return rt.dispatch(ref, wire.Null(), args, e.fr)
}

// GetField implements classmodel.Env.
func (e *env) GetField(recv wire.Value, field string) (wire.Value, error) {
	rt := e.rt
	class, hash, ok := recv.AsRef()
	if !ok {
		return wire.Value{}, ErrNotRef
	}
	decl, err := rt.classDecl(class)
	if err != nil {
		return wire.Value{}, err
	}
	if decl.Proxy {
		return wire.Value{}, fmt.Errorf("world: proxy %s has no fields (access fields via methods)", class)
	}
	rt.w.clock.Charge(simcfg.FieldAccessCycles)
	h, err := rt.resolve(e.fr, hash)
	if err != nil {
		return wire.Value{}, err
	}
	// The field read and the ref-handle creation share one heap critical
	// section, so the slot cannot change between them; the fresh handle
	// is then adopted (a racing adopter's entry wins, the duplicate
	// handle is dropped).
	rt.heapMu.Lock()
	v, err := rt.iso.GetField(h, field)
	var fh heap.Handle
	_, refHash, isRef := v.AsRef()
	if err == nil && isRef {
		fh, err = rt.iso.GetFieldRefHandle(h, field)
	}
	rt.heapMu.Unlock()
	if err != nil {
		return wire.Value{}, err
	}
	if isRef && fh != 0 {
		if _, err := rt.adoptHandle(e.fr, refHash, fh); err != nil {
			return wire.Value{}, err
		}
	}
	return v, nil
}

// SetField implements classmodel.Env.
func (e *env) SetField(recv wire.Value, field string, v wire.Value) error {
	rt := e.rt
	class, hash, ok := recv.AsRef()
	if !ok {
		return ErrNotRef
	}
	decl, err := rt.classDecl(class)
	if err != nil {
		return err
	}
	if decl.Proxy {
		return fmt.Errorf("world: proxy %s has no fields (access fields via methods)", class)
	}
	f, ok := decl.Field(field)
	if !ok {
		return fmt.Errorf("world: unknown field %s.%s", class, field)
	}
	rt.w.clock.Charge(simcfg.FieldAccessCycles)
	h, err := rt.resolve(e.fr, hash)
	if err != nil {
		return err
	}
	// Receiver and target stay live across the heap critical section via
	// the frame's retentions; handles are GC-stable, so resolving first
	// and writing second is safe.
	switch f.Kind {
	case classmodel.FieldRef:
		if v.IsNull() {
			rt.heapMu.Lock()
			defer rt.heapMu.Unlock()
			return rt.iso.SetFieldRef(h, field, 0)
		}
		_, targetHash, isRef := v.AsRef()
		if !isRef {
			return fmt.Errorf("world: field %s.%s wants a reference, got %s", class, field, v.Kind())
		}
		th, err := rt.resolve(e.fr, targetHash)
		if err != nil {
			return err
		}
		rt.heapMu.Lock()
		defer rt.heapMu.Unlock()
		return rt.iso.SetFieldRef(h, field, th)
	case classmodel.FieldInt, classmodel.FieldFloat, classmodel.FieldBool:
		rt.heapMu.Lock()
		defer rt.heapMu.Unlock()
		return rt.iso.SetFieldScalar(h, field, v)
	default:
		rt.heapMu.Lock()
		defer rt.heapMu.Unlock()
		return rt.iso.SetFieldData(h, field, v)
	}
}

// MemTouch implements classmodel.Env: streaming n bytes of workload data
// through enclave memory pays MEE cost; untrusted memory is free.
func (e *env) MemTouch(n int) {
	if e.rt.trusted && e.rt.w.enclave != nil {
		e.rt.w.clock.ChargeBytes(n, simcfg.MEEBytesPerCycle)
	}
}

// Trusted implements classmodel.Env.
func (e *env) Trusted() bool { return e.rt.trusted }

// FS implements classmodel.Env.
func (e *env) FS() shim.FS { return e.rt.fs }

// ---- builtin (neutral utility class) dispatch -------------------------

func (e *env) newBuiltin(class string, args []wire.Value) (wire.Value, error) {
	rt := e.rt
	rt.w.clock.Charge(simcfg.LocalAllocCycles)
	// Validate arguments before entering the heap critical section, so
	// the section is a straight-line allocate-and-hash.
	var alloc func() (heap.Handle, error)
	switch class {
	case classmodel.BuiltinList:
		if len(args) != 0 {
			return wire.Value{}, fmt.Errorf("%w: List() takes no arguments", ErrBadArity)
		}
		alloc = rt.iso.NewList
	case classmodel.BuiltinString:
		s, ok := oneArg(args).AsStr()
		if !ok {
			return wire.Value{}, fmt.Errorf("world: String(value) wants a string argument")
		}
		alloc = func() (heap.Handle, error) { return rt.iso.NewString(s) }
	case classmodel.BuiltinBytes:
		b, ok := oneArg(args).AsBytes()
		if !ok {
			return wire.Value{}, fmt.Errorf("world: Bytes(value) wants a bytes argument")
		}
		alloc = func() (heap.Handle, error) { return rt.iso.NewBytes(b) }
	case classmodel.BuiltinBlob:
		v := oneArg(args)
		alloc = func() (heap.Handle, error) { return rt.iso.NewBlob(v) }
	default:
		return wire.Value{}, fmt.Errorf("world: cannot instantiate builtin %s directly", class)
	}
	rt.heapMu.Lock()
	h, err := alloc()
	var hash int64
	if err == nil {
		hash, err = rt.iso.HashOf(h)
	}
	rt.heapMu.Unlock()
	if err != nil {
		return wire.Value{}, err
	}
	if _, err := rt.adoptHandle(e.fr, hash, h); err != nil {
		return wire.Value{}, err
	}
	return wire.Ref(class, hash), nil
}

func (e *env) callBuiltin(recv wire.Value, method string, args []wire.Value) (wire.Value, error) {
	rt := e.rt
	class, hash, _ := recv.AsRef()
	rt.w.clock.Charge(simcfg.LocalCallCycles)
	h, err := rt.resolve(e.fr, hash)
	if err != nil {
		return wire.Value{}, err
	}
	switch class {
	case classmodel.BuiltinList:
		return e.callList(h, method, args)
	case classmodel.BuiltinString:
		rt.heapMu.Lock()
		s, err := rt.iso.StrValue(h)
		rt.heapMu.Unlock()
		if err != nil {
			return wire.Value{}, err
		}
		switch method {
		case "value":
			return wire.Str(s), nil
		case "length":
			return wire.Int(int64(len(s))), nil
		}
	case classmodel.BuiltinBytes:
		rt.heapMu.Lock()
		b, err := rt.iso.BytesValue(h)
		rt.heapMu.Unlock()
		if err != nil {
			return wire.Value{}, err
		}
		switch method {
		case "value":
			return wire.Bytes(b), nil
		case "length":
			return wire.Int(int64(len(b))), nil
		}
	case classmodel.BuiltinBlob:
		if method == "value" {
			rt.heapMu.Lock()
			defer rt.heapMu.Unlock()
			return rt.iso.BlobValue(h)
		}
	}
	return wire.Value{}, fmt.Errorf("%w: method %s.%s", image.ErrClosedWorld, class, method)
}

// callList dispatches List methods. The list handle is retained by the
// activation frame, so it stays valid across the heap critical sections
// below.
func (e *env) callList(list heap.Handle, method string, args []wire.Value) (wire.Value, error) {
	rt := e.rt
	switch method {
	case "size":
		rt.heapMu.Lock()
		n, err := rt.iso.ListSize(list)
		rt.heapMu.Unlock()
		if err != nil {
			return wire.Value{}, err
		}
		return wire.Int(int64(n)), nil
	case "add", "set":
		idx := 0
		if method == "set" {
			if len(args) != 2 {
				return wire.Value{}, fmt.Errorf("%w: List.set(index, element)", ErrBadArity)
			}
			i, ok := args[0].AsInt()
			if !ok {
				return wire.Value{}, fmt.Errorf("world: List.set index must be int")
			}
			idx = int(i)
			args = args[1:]
		} else if len(args) != 1 {
			return wire.Value{}, fmt.Errorf("%w: List.add(element)", ErrBadArity)
		}
		_, elemHash, ok := args[0].AsRef()
		if !ok {
			return wire.Value{}, fmt.Errorf("world: List elements are object references, got %s", args[0].Kind())
		}
		eh, err := rt.resolve(e.fr, elemHash)
		if err != nil {
			return wire.Value{}, err
		}
		rt.heapMu.Lock()
		defer rt.heapMu.Unlock()
		if method == "add" {
			return wire.Null(), rt.iso.ListAdd(list, eh)
		}
		return wire.Null(), rt.iso.ListSet(list, idx, eh)
	case "get":
		if len(args) != 1 {
			return wire.Value{}, fmt.Errorf("%w: List.get(index)", ErrBadArity)
		}
		i, ok := args[0].AsInt()
		if !ok {
			return wire.Value{}, fmt.Errorf("world: List.get index must be int")
		}
		// Element handle, hash and class name come from one critical
		// section; the fresh handle is then adopted into the table.
		rt.heapMu.Lock()
		eh, err := rt.iso.ListGet(list, int(i))
		var (
			elemHash int64
			name     string
		)
		if err == nil && eh != 0 {
			elemHash, err = rt.iso.HashOf(eh)
			if err == nil {
				name, err = rt.iso.ClassNameOf(eh)
			}
		}
		rt.heapMu.Unlock()
		if err != nil {
			return wire.Value{}, err
		}
		if eh == 0 {
			return wire.Null(), nil
		}
		if _, err := rt.adoptHandle(e.fr, elemHash, eh); err != nil {
			return wire.Value{}, err
		}
		return wire.Ref(name, elemHash), nil
	default:
		return wire.Value{}, fmt.Errorf("%w: method List.%s", image.ErrClosedWorld, method)
	}
}

func oneArg(args []wire.Value) wire.Value {
	if len(args) != 1 {
		return wire.Value{}
	}
	return args[0]
}
