package world_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"montsalvat/internal/classmodel"
	"montsalvat/internal/core"
	"montsalvat/internal/demo"
	"montsalvat/internal/wire"
	"montsalvat/internal/world"
)

// TestObjectTableDrainsAfterFrames pins the eager-removal contract of
// the sharded object table: every entry is frame- or pin-owned, so once
// all frames close (and nothing is pinned) both runtimes' tables must be
// empty — the table never accumulates garbage across calls.
func TestObjectTableDrainsAfterFrames(t *testing.T) {
	w := bankWorld(t)
	if _, err := w.RunMain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := w.Exec(false, func(env classmodel.Env) error {
			acct, err := env.New(demo.Account, wire.Str("Eve"), wire.Int(10))
			if err != nil {
				return err
			}
			_, err = env.Call(acct, "getBalance")
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, rt := range []*world.Runtime{w.Untrusted(), w.Trusted()} {
		if got := rt.ObjectTableLen(); got != 0 {
			t.Errorf("%s object table has %d entries after all frames closed, want 0", rt.Name(), got)
		}
	}

	// A pin keeps its entry alive past the frame; unpinning drops it.
	var pinned wire.Value
	err := w.Exec(false, func(env classmodel.Env) error {
		v, err := env.New(demo.Account, wire.Str("Pin"), wire.Int(1))
		if err != nil {
			return err
		}
		pinned = v
		return w.Untrusted().Pin(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Untrusted().ObjectTableLen(); got == 0 {
		t.Fatal("pinned object not retained in table")
	}
	if err := w.Untrusted().Unpin(pinned); err != nil {
		t.Fatal(err)
	}
	if got := w.Untrusted().ObjectTableLen(); got != 0 {
		t.Errorf("object table has %d entries after unpin, want 0", got)
	}
}

// TestConcurrentCrossingStress hammers the crossing engine from both
// directions while the GC helpers sweep: G goroutines per side run
// proxy-creating, proxy-calling frames concurrently with collections,
// across batching on/off. Run under -race (it is in the Makefile race
// list) this exercises the shard locks, the narrow heap locks, and the
// lock-order rule between opposite runtimes.
func TestConcurrentCrossingStress(t *testing.T) {
	for _, batching := range []bool{false, true} {
		t.Run(fmt.Sprintf("batching=%v", batching), func(t *testing.T) {
			opts := world.DefaultOptions()
			opts.Cfg.Batching = batching
			opts.GCHelperInterval = time.Millisecond
			w, _, err := core.NewPartitionedWorld(twoWayProgram(t), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			w.StartGCHelpers()
			defer w.StopGCHelpers()

			const goroutines = 8
			iters := 30
			if testing.Short() {
				iters = 10
			}
			var wg sync.WaitGroup
			errs := make(chan error, 2*goroutines+1)

			// Untrusted side: allocate trusted mirrors and invoke them.
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						err := w.Exec(false, func(env classmodel.Env) error {
							acct, err := env.New(demo.Account, wire.Str("Stress"), wire.Int(3))
							if err != nil {
								return err
							}
							bal, err := env.Call(acct, "getBalance")
							if err != nil {
								return err
							}
							if !bal.Equal(wire.Int(3)) {
								return fmt.Errorf("balance = %v, want 3", bal)
							}
							return nil
						})
						if err != nil {
							errs <- err
							return
						}
					}
				}()
			}

			// Trusted side: allocate untrusted proxies and call out.
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						err := w.Exec(true, func(env classmodel.Env) error {
							p, err := env.New(demo.Person, wire.Str("Dave"), wire.Int(1))
							if err != nil {
								return err
							}
							name, err := env.Call(p, "getName")
							if err != nil {
								return err
							}
							if !name.Equal(wire.Str("Dave")) {
								return fmt.Errorf("name = %v, want Dave", name)
							}
							return nil
						})
						if err != nil {
							errs <- err
							return
						}
					}
				}()
			}

			// Collector: force proxy deaths so the helper sweeps run
			// against live traffic. Not part of wg — it runs until the
			// callers finish, then is told to stop.
			done := make(chan struct{})
			collectorDone := make(chan struct{})
			go func() {
				defer close(collectorDone)
				for {
					select {
					case <-done:
						return
					case <-time.After(2 * time.Millisecond):
					}
					if err := w.Untrusted().Collect(); err != nil {
						errs <- fmt.Errorf("collect: %w", err)
						return
					}
				}
			}()

			waitCalls := make(chan struct{})
			go func() {
				wg.Wait()
				close(waitCalls)
			}()
			select {
			case <-waitCalls:
			case <-time.After(60 * time.Second):
				t.Fatal("stress run wedged")
			}
			close(done)
			<-collectorDone
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Quiesce: tables must drain once all frames are gone.
			for _, rt := range []*world.Runtime{w.Untrusted(), w.Trusted()} {
				if got := rt.ObjectTableLen(); got != 0 {
					t.Errorf("%s object table has %d entries after stress, want 0", rt.Name(), got)
				}
			}
		})
	}
}
