package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Monotonic counters — the sgx_create_monotonic_counter facility of the
// SGX platform services. A monotonic counter is a small non-volatile
// integer the platform promises only ever moves forward; enclaves stamp
// its value into sealed state so that a host restoring an older sealed
// blob (a rollback or fork attack) is detected: the blob's stamp no
// longer matches the counter.
//
// The simulation mirrors the hardware trust split. The counter VALUE
// lives in untrusted persistence (a CounterStore — the analog of the
// platform-services non-volatile storage, reachable across enclave
// restarts), but every stored value is authenticated by a MAC under a
// key derived from the per-platform hardware secret. The host can delete
// or corrupt the stored value — that is detectable (ErrCounterTampered)
// — but it cannot fabricate a valid older value without the platform
// secret, which is exactly the hardware guarantee.
//
// This is the rollback-protection primitive of internal/persist: every
// sealed checkpoint and WAL segment header carries a counter stamp (see
// sealing.go for the seal/unseal half of that protocol).

// Counter errors.
var (
	// ErrCounterTampered reports a persisted counter whose MAC does not
	// verify: the untrusted store returned a forged or corrupted value.
	ErrCounterTampered = errors.New("sgx: monotonic counter tampered")
	// ErrCounterWrap reports an increment that would wrap the counter
	// past its maximum — monotonicity cannot be preserved.
	ErrCounterWrap = errors.New("sgx: monotonic counter would wrap")
	// ErrCounterRegressed reports a persisted value lower than one this
	// counter instance already observed — a rolled-back counter store.
	ErrCounterRegressed = errors.New("sgx: monotonic counter regressed")
)

// CounterStore is the per-platform persistence hook for monotonic
// counters: where authenticated (value, MAC) pairs survive enclave —
// and process — restarts. Implementations live in untrusted storage;
// integrity comes from the MAC, not from the store.
type CounterStore interface {
	// LoadCounter returns the persisted value and MAC for id;
	// ok=false when the counter has never been stored.
	LoadCounter(id string) (value uint64, mac [32]byte, ok bool, err error)
	// StoreCounter persists the value and MAC for id.
	StoreCounter(id string, value uint64, mac [32]byte) error
}

// MemCounterStore is an in-memory CounterStore for tests and
// single-process worlds. Safe for concurrent use.
type MemCounterStore struct {
	mu       sync.Mutex
	counters map[string]memCounter
}

type memCounter struct {
	value uint64
	mac   [32]byte
}

// NewMemCounterStore returns an empty in-memory counter store.
func NewMemCounterStore() *MemCounterStore {
	return &MemCounterStore{counters: make(map[string]memCounter)}
}

// LoadCounter implements CounterStore.
func (s *MemCounterStore) LoadCounter(id string) (uint64, [32]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[id]
	return c.value, c.mac, ok, nil
}

// StoreCounter implements CounterStore.
func (s *MemCounterStore) StoreCounter(id string, value uint64, mac [32]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[id] = memCounter{value: value, mac: mac}
	return nil
}

// MonotonicCounter is one named platform counter. Safe for concurrent
// use. A fresh counter starts at 0; Increment persists the new value
// before returning it, so a crash can lose at most an increment the
// caller was never told about.
type MonotonicCounter struct {
	mu    sync.Mutex
	key   [32]byte
	store CounterStore
	id    string
	value uint64
}

// NewMonotonicCounter creates or reopens the platform counter named id.
// Reopening verifies the persisted MAC and rejects tampered values.
func NewMonotonicCounter(secret PlatformSecret, store CounterStore, id string) (*MonotonicCounter, error) {
	if store == nil {
		return nil, errors.New("sgx: nil counter store")
	}
	c := &MonotonicCounter{store: store, id: id, key: counterKey(secret, id)}
	value, mac, ok, err := store.LoadCounter(id)
	if err != nil {
		return nil, fmt.Errorf("sgx: load counter %q: %w", id, err)
	}
	if ok {
		if !hmac.Equal(mac[:], c.mac(value)) {
			return nil, fmt.Errorf("%w: counter %q", ErrCounterTampered, id)
		}
		c.value = value
		return c, nil
	}
	// First use: persist the authenticated zero so a later deletion of
	// the store entry is distinguishable from a fresh counter only by
	// the caller's own bookkeeping (the hardware has the same limit).
	if err := store.StoreCounter(id, 0, c.macArr(0)); err != nil {
		return nil, fmt.Errorf("sgx: init counter %q: %w", id, err)
	}
	return c, nil
}

// Read returns the current counter value, re-verifying the persisted
// copy so a store rolled back underneath a live counter is detected.
func (c *MonotonicCounter) Read() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	value, mac, ok, err := c.store.LoadCounter(c.id)
	if err != nil {
		return 0, fmt.Errorf("sgx: read counter %q: %w", c.id, err)
	}
	if !ok {
		return 0, fmt.Errorf("%w: counter %q deleted from store", ErrCounterTampered, c.id)
	}
	if !hmac.Equal(mac[:], c.mac(value)) {
		return 0, fmt.Errorf("%w: counter %q", ErrCounterTampered, c.id)
	}
	if value < c.value {
		return 0, fmt.Errorf("%w: store has %d, observed %d", ErrCounterRegressed, value, c.value)
	}
	c.value = value
	return value, nil
}

// Increment advances the counter by one, persisting the new
// authenticated value before returning it.
func (c *MonotonicCounter) Increment() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.value == math.MaxUint64 {
		return 0, fmt.Errorf("%w: counter %q at %d", ErrCounterWrap, c.id, c.value)
	}
	next := c.value + 1
	if err := c.store.StoreCounter(c.id, next, c.macArr(next)); err != nil {
		return 0, fmt.Errorf("sgx: store counter %q: %w", c.id, err)
	}
	c.value = next
	return next, nil
}

// ID returns the counter's name.
func (c *MonotonicCounter) ID() string { return c.id }

func (c *MonotonicCounter) mac(value uint64) []byte {
	h := hmac.New(sha256.New, c.key[:])
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], value)
	h.Write(buf[:])
	return h.Sum(nil)
}

func (c *MonotonicCounter) macArr(value uint64) [32]byte {
	var out [32]byte
	copy(out[:], c.mac(value))
	return out
}

// counterKey derives the per-counter MAC key from the platform secret,
// like SealingKey derives seal keys (EGETKEY with a distinct key name).
func counterKey(secret PlatformSecret, id string) [32]byte {
	h := hmac.New(sha256.New, secret[:])
	h.Write([]byte("sgx-monotonic-counter-v1"))
	h.Write([]byte(id))
	var key [32]byte
	copy(key[:], h.Sum(nil))
	return key
}
