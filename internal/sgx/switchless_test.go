package sgx

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"montsalvat/internal/simcfg"
)

// Regression for the shutdown race: a request posted concurrently with
// Stop must either run or fail with ErrPoolStopped — never leave the
// caller blocked on an abandoned reply channel. The test hammers many
// pool lifetimes with callers racing Stop; a hang here is the bug.
func TestSwitchlessCallStopRace(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("race image"))
	for round := 0; round < 50; round++ {
		pool, err := e.StartSwitchless(2)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					err := pool.Call(1, func() error { return nil })
					if err != nil && !errors.Is(err, ErrPoolStopped) {
						t.Errorf("Call: %v", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Stop()
		}()
		wg.Wait()
		pool.Stop()
	}
}

func TestSwitchlessTryCallBusy(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("busy image"))
	pool, err := e.StartSwitchless(1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	// Occupy the single worker and fill the one-slot mailbox, then
	// TryCall must refuse rather than queue behind them.
	block := make(chan struct{})
	var wg sync.WaitGroup
	started := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = pool.Call(1, func() error { close(started); <-block; return nil })
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = pool.Call(1, func() error { <-block; return nil }) // sits in the mailbox buffer
	}()
	for len(pool.mb.reqs) == 0 {
		runtime.Gosched()
	}
	if got := pool.TryCall(1, func() error { return nil }); !errors.Is(got, ErrPoolBusy) {
		t.Fatalf("TryCall with saturated pool = %v, want ErrPoolBusy", got)
	}
	close(block)
	wg.Wait()
}

func TestSwitchlessStats(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("stats image"))
	pool, err := e.StartSwitchless(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()
	base := e.Stats()
	const calls = 10
	for i := 0; i < calls; i++ {
		if err := pool.Call(3, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if got := st.SwitchlessEcalls - base.SwitchlessEcalls; got != calls {
		t.Fatalf("SwitchlessEcalls delta = %d, want %d", got, calls)
	}
	// Totals keep including switchless calls.
	if got := st.Ecalls - base.Ecalls; got != calls {
		t.Fatalf("Ecalls delta = %d, want %d", got, calls)
	}
}

func TestHostPool(t *testing.T) {
	e, clk := initializedEnclave(t, []byte("host image"))
	pool, err := e.StartSwitchlessHost(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	// Like Ocall, calling out requires an executing enclave thread.
	if err := pool.Call(5, func() error { return nil }); !errors.Is(err, ErrOcallOutside) {
		t.Fatalf("outside enclave: %v, want ErrOcallOutside", err)
	}

	const calls = 20
	var ran atomic.Int64
	var before, after int64
	err = e.Ecall(1, func() error {
		before = clk.Total()
		for i := 0; i < calls; i++ {
			if err := pool.Call(5, func() error { ran.Add(1); return nil }); err != nil {
				return err
			}
		}
		after = clk.Total()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != calls {
		t.Fatalf("ran %d bodies, want %d", ran.Load(), calls)
	}
	if perCall := (after - before) / calls; perCall != simcfg.SwitchlessCallCycles {
		t.Fatalf("per-call cost = %d cycles, want %d", perCall, simcfg.SwitchlessCallCycles)
	}
	st := e.Stats()
	if st.SwitchlessOcalls != calls {
		t.Fatalf("SwitchlessOcalls = %d, want %d", st.SwitchlessOcalls, calls)
	}
	if st.OcallsByID[5] != calls {
		t.Fatalf("OcallsByID[5] = %d, want %d", st.OcallsByID[5], calls)
	}
	if st.Ocalls != calls {
		t.Fatalf("Ocalls = %d, want %d", st.Ocalls, calls)
	}

	pool.Stop()
	err = e.Ecall(1, func() error { return pool.Call(5, func() error { return nil }) })
	if !errors.Is(err, ErrPoolStopped) {
		t.Fatalf("after stop: %v, want ErrPoolStopped", err)
	}
}

func TestHostPoolStopRace(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("host race image"))
	for round := 0; round < 30; round++ {
		pool, err := e.StartSwitchlessHost(2)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = e.Ecall(1, func() error {
					for i := 0; i < 20; i++ {
						err := pool.Call(2, func() error { return nil })
						if err != nil && !errors.Is(err, ErrPoolStopped) {
							t.Errorf("Call: %v", err)
							return err
						}
					}
					return nil
				})
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Stop()
		}()
		wg.Wait()
	}
}
