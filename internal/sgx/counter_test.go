package sgx

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestMonotonicCounterRoundTrip(t *testing.T) {
	secret := testSecret(t)
	store := NewMemCounterStore()

	c, err := NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read(); err != nil || v != 0 {
		t.Fatalf("fresh counter = %d, %v; want 0, nil", v, err)
	}
	for i := uint64(1); i <= 5; i++ {
		v, err := c.Increment()
		if err != nil {
			t.Fatalf("Increment %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("Increment = %d, want %d", v, i)
		}
	}

	// Reopening from the same store (a restarted enclave) sees the value.
	c2, err := NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c2.Read(); err != nil || v != 5 {
		t.Fatalf("reopened counter = %d, %v; want 5, nil", v, err)
	}

	// Counters are independent per id.
	other, err := NewMonotonicCounter(secret, store, "other")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := other.Read(); v != 0 {
		t.Fatalf("other counter = %d, want 0", v)
	}
}

func TestMonotonicCounterTamperRejected(t *testing.T) {
	secret := testSecret(t)
	store := NewMemCounterStore()
	c, err := NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Increment(); err != nil {
		t.Fatal(err)
	}

	// The host rewrites the stored value without the platform key.
	_, mac, _, _ := store.LoadCounter("ckpt")
	if err := store.StoreCounter("ckpt", 99, mac); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(); !errors.Is(err, ErrCounterTampered) {
		t.Fatalf("forged value: err = %v, want ErrCounterTampered", err)
	}
	if _, err := NewMonotonicCounter(secret, store, "ckpt"); !errors.Is(err, ErrCounterTampered) {
		t.Fatalf("reopen forged: err = %v, want ErrCounterTampered", err)
	}

	// A MAC from a different platform secret is rejected too.
	other := testSecret(t)
	forged := MonotonicCounter{key: counterKey(other, "ckpt")}
	if err := store.StoreCounter("ckpt", 1, forged.macArr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonotonicCounter(secret, store, "ckpt"); !errors.Is(err, ErrCounterTampered) {
		t.Fatalf("foreign-platform MAC: err = %v, want ErrCounterTampered", err)
	}
}

func TestMonotonicCounterRegression(t *testing.T) {
	secret := testSecret(t)
	store := NewMemCounterStore()
	c, err := NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	// The host restores an older, validly-MACed snapshot of the store
	// (a fork attack): the live counter notices the regression.
	if err := store.StoreCounter("ckpt", 1, c.macArr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(); !errors.Is(err, ErrCounterRegressed) {
		t.Fatalf("rolled-back store: err = %v, want ErrCounterRegressed", err)
	}
	// Deleting the entry outright is tampering, not a fresh counter.
	store2 := NewMemCounterStore()
	c.store = store2
	if _, err := c.Read(); !errors.Is(err, ErrCounterTampered) {
		t.Fatalf("deleted entry: err = %v, want ErrCounterTampered", err)
	}
}

func TestMonotonicCounterWraparound(t *testing.T) {
	secret := testSecret(t)
	store := NewMemCounterStore()
	c, err := NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	// Drive the counter to the ceiling directly through the store with a
	// valid MAC, then reopen — incrementing must refuse to wrap.
	if err := store.StoreCounter("ckpt", math.MaxUint64, c.macArr(math.MaxUint64)); err != nil {
		t.Fatal(err)
	}
	c2, err := NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Increment(); !errors.Is(err, ErrCounterWrap) {
		t.Fatalf("err = %v, want ErrCounterWrap", err)
	}
	// The stored value is untouched by the failed increment.
	if v, err := c2.Read(); err != nil || v != math.MaxUint64 {
		t.Fatalf("after failed wrap: %d, %v", v, err)
	}
}

func TestMonotonicCounterConcurrent(t *testing.T) {
	secret := testSecret(t)
	store := NewMemCounterStore()
	c, err := NewMonotonicCounter(secret, store, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, err := c.Increment(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, err := c.Read(); err != nil || v != goroutines*each {
		t.Fatalf("final = %d, %v; want %d", v, err, goroutines*each)
	}
}
