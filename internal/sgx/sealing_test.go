package sgx

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"montsalvat/internal/cycles"
	"montsalvat/internal/simcfg"
)

func testSecret(t *testing.T) PlatformSecret {
	t.Helper()
	s, err := NewPlatformSecret()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("seal image"))
	secret := testSecret(t)
	data := []byte("the enclave's persistent secret state")
	aad := []byte("store-v1")

	for _, policy := range []SealPolicy{SealToMRENCLAVE, SealToMRSIGNER} {
		blob, err := e.Seal(secret, policy, data, aad)
		if err != nil {
			t.Fatalf("Seal(%v): %v", policy, err)
		}
		if bytes.Contains(blob, data) {
			t.Fatalf("sealed blob leaks plaintext (%v)", policy)
		}
		got, err := e.Unseal(secret, policy, blob, aad)
		if err != nil {
			t.Fatalf("Unseal(%v): %v", policy, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Unseal(%v) = %q", policy, got)
		}
	}
}

func TestUnsealRejectsTamper(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("seal image"))
	secret := testSecret(t)
	blob, err := e.Seal(secret, SealToMRENCLAVE, []byte("data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 1
	if _, err := e.Unseal(secret, SealToMRENCLAVE, blob, nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("err = %v, want ErrUnseal", err)
	}
	// Wrong AAD fails too.
	blob2, _ := e.Seal(secret, SealToMRENCLAVE, []byte("data"), []byte("v1"))
	if _, err := e.Unseal(secret, SealToMRENCLAVE, blob2, []byte("v2")); !errors.Is(err, ErrUnseal) {
		t.Fatalf("wrong aad: %v", err)
	}
	// Truncated blob.
	if _, err := e.Unseal(secret, SealToMRENCLAVE, blob2[:10], nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("short blob: %v", err)
	}
}

func TestSealBindsEnclaveIdentity(t *testing.T) {
	secret := testSecret(t)
	e1, _ := initializedEnclave(t, []byte("image A"))
	e2, _ := initializedEnclave(t, []byte("image B"))

	blob, err := e1.Seal(secret, SealToMRENCLAVE, []byte("for A only"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A different enclave image cannot unseal under MRENCLAVE policy.
	if _, err := e2.Unseal(secret, SealToMRENCLAVE, blob, nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("foreign enclave unsealed: %v", err)
	}
	// But both are signed by the shared test signer: MRSIGNER policy
	// lets the upgraded image unseal.
	blobSigner, err := e1.Seal(secret, SealToMRSIGNER, []byte("for the author"), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Unseal(secret, SealToMRSIGNER, blobSigner, nil)
	if err != nil {
		t.Fatalf("MRSIGNER unseal across versions: %v", err)
	}
	if string(got) != "for the author" {
		t.Fatalf("got %q", got)
	}
}

// TestSealCrossPolicyUpgrade simulates an enclave software upgrade: the
// image (and hence MRENCLAVE) changes while the signing identity stays
// fixed. Sealed state that must survive upgrades is sealed to MRSIGNER;
// MRENCLAVE blobs are pinned to the exact measurement and become
// unrecoverable — by typed error, not an incidental failure.
func TestSealCrossPolicyUpgrade(t *testing.T) {
	secret := testSecret(t)
	v1, _ := initializedEnclave(t, []byte("service v1"))
	v2, _ := initializedEnclave(t, []byte("service v2")) // same signer, new measurement
	if v1.Measurement() == v2.Measurement() {
		t.Fatal("upgrade did not change the measurement")
	}

	aad := []byte("persist/ckpt/1")
	mrenclave, err := v1.Seal(secret, SealToMRENCLAVE, []byte("pinned"), aad)
	if err != nil {
		t.Fatal(err)
	}
	mrsigner, err := v1.Seal(secret, SealToMRSIGNER, []byte("durable"), aad)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-upgrade, both unseal.
	if _, err := v1.Unseal(secret, SealToMRENCLAVE, mrenclave, aad); err != nil {
		t.Fatalf("v1 MRENCLAVE unseal: %v", err)
	}
	// Post-upgrade, the MRENCLAVE blob is lost...
	if _, err := v2.Unseal(secret, SealToMRENCLAVE, mrenclave, aad); !errors.Is(err, ErrUnseal) {
		t.Fatalf("v2 MRENCLAVE unseal: err = %v, want ErrUnseal", err)
	}
	// ...and the MRSIGNER blob survives.
	got, err := v2.Unseal(secret, SealToMRSIGNER, mrsigner, aad)
	if err != nil {
		t.Fatalf("v2 MRSIGNER unseal: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("got %q", got)
	}
	// Policies are part of the key derivation: a blob sealed under one
	// policy cannot be opened under the other even on the same enclave.
	if _, err := v1.Unseal(secret, SealToMRSIGNER, mrenclave, aad); !errors.Is(err, ErrUnseal) {
		t.Fatalf("policy confusion: err = %v, want ErrUnseal", err)
	}
}

func TestSealBindsPlatform(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("image"))
	s1 := testSecret(t)
	s2 := testSecret(t)
	blob, err := e.Seal(s1, SealToMRENCLAVE, []byte("local"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Unseal(s2, SealToMRENCLAVE, blob, nil); !errors.Is(err, ErrUnseal) {
		t.Fatalf("cross-platform unseal: %v", err)
	}
}

func TestSealRequiresInit(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := Create(simcfg.ForTest(), clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Seal(testSecret(t), SealToMRENCLAVE, []byte("x"), nil); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("err = %v, want ErrNotInitialized", err)
	}
}

func TestSwitchlessPool(t *testing.T) {
	e, clk := initializedEnclave(t, []byte("sw image"))
	before := clk.Total()
	pool, err := e.StartSwitchless(2)
	if err != nil {
		t.Fatal(err)
	}
	startup := clk.Total() - before

	// Calls run inside the enclave (ocalls are legal) at switchless cost.
	before = clk.Total()
	const calls = 50
	for i := 0; i < calls; i++ {
		ran := false
		err := pool.Call(7, func() error {
			ran = true
			return e.Ocall(8, func() error { return nil })
		})
		if err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
		if !ran {
			t.Fatal("body did not run")
		}
	}
	perCall := (clk.Total() - before - calls*simcfg.OcallCycles) / calls
	if perCall != simcfg.SwitchlessCallCycles {
		t.Fatalf("per-call cost = %d cycles, want %d", perCall, simcfg.SwitchlessCallCycles)
	}
	// Workers paid their one-time entry ecalls.
	if startup < 2*int64(simcfg.EcallCycles) {
		t.Fatalf("startup charged %d, want >= 2 ecalls", startup)
	}

	// Errors propagate.
	wantErr := errors.New("boom")
	if err := pool.Call(7, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}

	// Stats count switchless calls as ecalls per routine id.
	if got := e.Stats().EcallsByID[7]; got != calls+1 {
		t.Fatalf("EcallsByID[7] = %d, want %d", got, calls+1)
	}

	pool.Stop()
	if err := pool.Call(7, func() error { return nil }); !errors.Is(err, ErrPoolStopped) {
		t.Fatalf("after stop: %v", err)
	}
	// Stop is idempotent and releases the TCS slots: a regular ecall
	// still works.
	pool.Stop()
	if err := e.Ecall(1, func() error { return nil }); err != nil {
		t.Fatalf("ecall after pool stop: %v", err)
	}
}

func TestSwitchlessConcurrentCallers(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("sw image"))
	pool, err := e.StartSwitchless(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- pool.Call(1, func() error { return nil })
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
