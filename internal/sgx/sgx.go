// Package sgx simulates the Intel SGX enclave abstraction used by
// Montsalvat.
//
// The lifecycle mirrors the hardware: an enclave is created (ECREATE),
// pages of the signed image are added while a SHA-256 measurement is
// extended (EADD/EEXTEND), and initialisation (EINIT) verifies an
// RSA-signed SIGSTRUCT over the final measurement — "all enclave code is
// ... cryptographically hashed for verification at runtime when it is
// loaded into enclave memory" (paper §2.1).
//
// Ecall/ocall transitions charge their calibrated cycle costs ("costly
// context switches that last up to 13,100 CPU cycles", §2.1), count
// against per-routine statistics, and respect a bounded number of TCS
// (thread control structure) slots. Enclave memory regions are allocated
// from a shared EPC residency with the configured usable size (§6.1).
//
// Remote attestation (§4) is simulated by a Platform holding an
// attestation key: quotes are HMACs over the measurement and report data.
package sgx

import (
	"crypto"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"montsalvat/internal/cycles"
	"montsalvat/internal/epc"
	"montsalvat/internal/mee"
	"montsalvat/internal/simcfg"
)

// Errors returned by enclave operations.
var (
	ErrNotInitialized  = errors.New("sgx: enclave not initialized")
	ErrAlreadyInit     = errors.New("sgx: enclave already initialized")
	ErrDestroyed       = errors.New("sgx: enclave destroyed")
	ErrBadSignature    = errors.New("sgx: SIGSTRUCT signature verification failed")
	ErrBadMeasurement  = errors.New("sgx: measurement mismatch")
	ErrHeapExhausted   = errors.New("sgx: enclave heap bound exhausted")
	ErrOcallOutside    = errors.New("sgx: ocall issued outside enclave")
	ErrQuoteForged     = errors.New("sgx: quote verification failed")
	ErrNotInitializedQ = errors.New("sgx: cannot quote uninitialized enclave")
)

// Signer holds the enclave author's signing key (the analog of the RSA
// key used to sign the SIGSTRUCT of an enclave shared object).
type Signer struct {
	key *rsa.PrivateKey

	// sigMu/sigs memoize SIGSTRUCTs per measurement: re-signing the same
	// retained image on every World.Restart (and on every reset of the
	// orderly explorer, which rebuilds thousands of worlds per run) would
	// pay a full RSA-PSS signature each time for a bit-identical input.
	sigMu sync.Mutex
	sigs  map[[32]byte]SigStruct
}

// NewSigner generates a fresh signing key.
func NewSigner() (*Signer, error) {
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return nil, fmt.Errorf("sgx: generate signer key: %w", err)
	}
	return &Signer{key: key}, nil
}

// SigStruct is a signed statement binding an enclave measurement to its
// author.
type SigStruct struct {
	// Measurement is the expected MRENCLAVE.
	Measurement [32]byte
	// Signature is the RSA-PSS signature over the measurement.
	Signature []byte
	// PublicKey identifies the signer; MRSIGNER is its SHA-256 hash.
	PublicKey *rsa.PublicKey
}

// Sign produces a SIGSTRUCT for the given measurement. Signatures are
// memoized per measurement: signing the same image twice returns the
// same (still valid) SIGSTRUCT without re-running RSA-PSS.
func (s *Signer) Sign(measurement [32]byte) (SigStruct, error) {
	s.sigMu.Lock()
	if ss, ok := s.sigs[measurement]; ok {
		s.sigMu.Unlock()
		return ss, nil
	}
	s.sigMu.Unlock()
	sig, err := rsa.SignPSS(rand.Reader, s.key, crypto.SHA256, measurement[:], nil)
	if err != nil {
		return SigStruct{}, fmt.Errorf("sgx: sign sigstruct: %w", err)
	}
	ss := SigStruct{Measurement: measurement, Signature: sig, PublicKey: &s.key.PublicKey}
	s.sigMu.Lock()
	if s.sigs == nil {
		s.sigs = make(map[[32]byte]SigStruct)
	}
	s.sigs[measurement] = ss
	s.sigMu.Unlock()
	return ss, nil
}

// MRSigner derives the signer identity from a SIGSTRUCT.
func (ss SigStruct) MRSigner() [32]byte {
	return sha256.Sum256(ss.PublicKey.N.Bytes())
}

type state int

const (
	stateCreated state = iota + 1
	stateInitialized
	stateDestroyed
)

// Stats holds enclave transition and memory counters.
type Stats struct {
	// Ecalls and Ocalls count completed transitions, including
	// switchless calls served by resident worker pools.
	Ecalls uint64
	Ocalls uint64
	// SwitchlessEcalls and SwitchlessOcalls count the subset of the
	// above that went through a switchless mailbox (charged
	// simcfg.SwitchlessCallCycles instead of a full transition).
	SwitchlessEcalls uint64
	SwitchlessOcalls uint64
	// EcallsByID and OcallsByID break transitions down per edge routine.
	EcallsByID map[int]uint64
	OcallsByID map[int]uint64
	// HeapBytesInUse is the enclave heap memory handed out so far.
	HeapBytesInUse int
	// Residency reports EPC paging counters.
	Residency epc.ResidencyStats
	// MEE reports encryption-engine counters.
	MEE mee.Stats
}

// Enclave is a simulated SGX enclave.
type Enclave struct {
	cfg   simcfg.Config
	clock *cycles.Clock
	eng   *mee.Engine
	res   *epc.Residency

	mu          sync.Mutex
	st          state
	measurement [32]byte
	mrsigner    [32]byte
	heapInUse   int
	ecallsByID  map[int]uint64
	ocallsByID  map[int]uint64

	tcs chan struct{}

	depth    atomic.Int64 // current nesting of enclave execution
	ecalls   atomic.Uint64
	ocalls   atomic.Uint64
	swEcalls atomic.Uint64
	swOcalls atomic.Uint64
}

// Create performs ECREATE: a new enclave shell with empty measurement.
// numTCS bounds concurrently executing enclave threads (<=0 means 8).
func Create(cfg simcfg.Config, clock *cycles.Clock, numTCS int) (*Enclave, error) {
	if clock == nil {
		return nil, errors.New("sgx: nil clock")
	}
	if numTCS <= 0 {
		numTCS = 8
	}
	eng, err := mee.New()
	if err != nil {
		return nil, err
	}
	res, err := epc.NewResidency(cfg.EPCBytes, clock)
	if err != nil {
		return nil, fmt.Errorf("sgx: residency: %w", err)
	}
	e := &Enclave{
		cfg:         cfg,
		clock:       clock,
		eng:         eng,
		res:         res,
		st:          stateCreated,
		measurement: sha256.Sum256(nil),
		ecallsByID:  make(map[int]uint64),
		ocallsByID:  make(map[int]uint64),
		tcs:         make(chan struct{}, numTCS),
	}
	for i := 0; i < numTCS; i++ {
		e.tcs <- struct{}{}
	}
	return e, nil
}

// AddPages performs EADD/EEXTEND: loads image bytes into the enclave and
// extends the measurement over them.
func (e *Enclave) AddPages(data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.st {
	case stateInitialized:
		return ErrAlreadyInit
	case stateDestroyed:
		return ErrDestroyed
	}
	h := sha256.New()
	h.Write(e.measurement[:])
	h.Write(data)
	h.Sum(e.measurement[:0])
	// Loading pages into the EPC costs MEE encryption of the image.
	e.clock.ChargeBytes(len(data), simcfg.MEEBytesPerCycle)
	return nil
}

// Init performs EINIT: the SIGSTRUCT signature is verified and its
// measurement compared against the enclave's accumulated MRENCLAVE.
func (e *Enclave) Init(ss SigStruct) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.st {
	case stateInitialized:
		return ErrAlreadyInit
	case stateDestroyed:
		return ErrDestroyed
	}
	if ss.PublicKey == nil {
		return fmt.Errorf("%w: missing public key", ErrBadSignature)
	}
	if err := verifySigStruct(ss); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if ss.Measurement != e.measurement {
		return fmt.Errorf("%w: sigstruct %x != mrenclave %x", ErrBadMeasurement, ss.Measurement[:8], e.measurement[:8])
	}
	e.mrsigner = ss.MRSigner()
	e.st = stateInitialized
	return nil
}

// verifiedSigs memoizes successful SIGSTRUCT verifications keyed by a
// digest of (public key, measurement, signature). Signature
// verification is deterministic, so re-verifying a bit-identical
// SIGSTRUCT — which World.Restart and the orderly explorer's
// replay-from-scratch resets do thousands of times per run — can skip
// the RSA-PSS arithmetic after the first success. Failures are never
// cached.
var verifiedSigs sync.Map // [32]byte -> struct{}

func verifySigStruct(ss SigStruct) error {
	d := sha256.New()
	d.Write(ss.PublicKey.N.Bytes())
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(ss.PublicKey.E))
	d.Write(e[:])
	d.Write(ss.Measurement[:])
	d.Write(ss.Signature)
	var key [32]byte
	d.Sum(key[:0])
	if _, ok := verifiedSigs.Load(key); ok {
		return nil
	}
	if err := rsa.VerifyPSS(ss.PublicKey, crypto.SHA256, ss.Measurement[:], ss.Signature, nil); err != nil {
		return err
	}
	verifiedSigs.Store(key, struct{}{})
	return nil
}

// Destroy tears the enclave down; subsequent transitions fail.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st = stateDestroyed
}

// Measurement returns the current MRENCLAVE.
func (e *Enclave) Measurement() [32]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.measurement
}

// MRSigner returns the signer identity recorded at Init.
func (e *Enclave) MRSigner() [32]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mrsigner
}

// Ecall enters the enclave, runs fn as enclave code, and returns. The
// round-trip transition cost is charged and a TCS slot is held for the
// duration (long-running ecalls, such as the in-enclave GC helper thread,
// occupy their slot until they return).
func (e *Enclave) Ecall(id int, fn func() error) error {
	if err := e.checkRunnable(); err != nil {
		return err
	}
	<-e.tcs
	defer func() { e.tcs <- struct{}{} }()
	e.clock.Charge(e.cfg.TransitionCycles(true))
	e.ecalls.Add(1)
	e.mu.Lock()
	e.ecallsByID[id]++
	e.mu.Unlock()
	e.depth.Add(1)
	defer e.depth.Add(-1)
	return fn()
}

// Ocall exits the enclave, runs fn as untrusted code, and re-enters. It
// is an error to issue an ocall when no enclave thread is executing.
func (e *Enclave) Ocall(id int, fn func() error) error {
	if err := e.checkRunnable(); err != nil {
		return err
	}
	if e.depth.Load() == 0 {
		return ErrOcallOutside
	}
	e.clock.Charge(e.cfg.TransitionCycles(false))
	e.ocalls.Add(1)
	e.mu.Lock()
	e.ocallsByID[id]++
	e.mu.Unlock()
	return fn()
}

// InEnclave reports whether any enclave thread is currently executing.
func (e *Enclave) InEnclave() bool { return e.depth.Load() > 0 }

// TCSCap returns the number of TCS slots the enclave was created with.
func (e *Enclave) TCSCap() int { return cap(e.tcs) }

// TCSInUse returns how many TCS slots are currently held — by in-flight
// ecalls and by resident switchless workers pinning a slot each.
func (e *Enclave) TCSInUse() int { return cap(e.tcs) - len(e.tcs) }

// NewMemory allocates an encrypted memory region of the given size inside
// the enclave, counted against the configured enclave heap bound. It is
// the backend factory for the trusted isolate's heap semispaces.
func (e *Enclave) NewMemory(size int) (*epc.Memory, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st == stateDestroyed {
		return nil, ErrDestroyed
	}
	if e.heapInUse+size > e.cfg.EnclaveHeapBytes {
		return nil, fmt.Errorf("%w: in use %d + %d > bound %d", ErrHeapExhausted, e.heapInUse, size, e.cfg.EnclaveHeapBytes)
	}
	m, err := epc.New(size, e.res, e.eng, e.clock)
	if err != nil {
		return nil, err
	}
	e.heapInUse += size
	return m, nil
}

// Clock returns the cycle clock all enclave costs are charged to.
func (e *Enclave) Clock() *cycles.Clock { return e.clock }

// Config returns the platform configuration the enclave was created with.
func (e *Enclave) Config() simcfg.Config { return e.cfg }

// Stats returns a snapshot of transition and memory counters.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	ecallsByID := make(map[int]uint64, len(e.ecallsByID))
	for k, v := range e.ecallsByID {
		ecallsByID[k] = v
	}
	ocallsByID := make(map[int]uint64, len(e.ocallsByID))
	for k, v := range e.ocallsByID {
		ocallsByID[k] = v
	}
	heap := e.heapInUse
	e.mu.Unlock()
	return Stats{
		Ecalls:           e.ecalls.Load(),
		Ocalls:           e.ocalls.Load(),
		SwitchlessEcalls: e.swEcalls.Load(),
		SwitchlessOcalls: e.swOcalls.Load(),
		EcallsByID:       ecallsByID,
		OcallsByID:       ocallsByID,
		HeapBytesInUse:   heap,
		Residency:        e.res.Stats(),
		MEE:              e.eng.Stats(),
	}
}

func (e *Enclave) checkRunnable() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.st {
	case stateCreated:
		return ErrNotInitialized
	case stateDestroyed:
		return ErrDestroyed
	}
	return nil
}

// Quote is a simulated attestation quote: a MAC by the platform's
// attestation key over the enclave and signer identities plus
// caller-chosen report data (e.g. a channel-binding nonce).
type Quote struct {
	Measurement [32]byte
	MRSigner    [32]byte
	ReportData  []byte
	MAC         [32]byte
}

// Platform models the attestation infrastructure (quoting enclave plus
// Intel attestation service) sharing a symmetric attestation key.
type Platform struct {
	key [32]byte
}

// NewPlatform creates a platform with a fresh attestation key.
func NewPlatform() (*Platform, error) {
	var p Platform
	if _, err := rand.Read(p.key[:]); err != nil {
		return nil, fmt.Errorf("sgx: platform key: %w", err)
	}
	return &p, nil
}

// NewPlatformFromSeed derives the attestation key from a seed, so two
// processes (an enclave gateway and its remote clients) can model sharing
// one attestation infrastructure: quotes issued under a seed verify only
// against a platform built from the same seed.
func NewPlatformFromSeed(seed []byte) *Platform {
	var p Platform
	h := hmac.New(sha256.New, []byte("sgx-attestation-platform-v1"))
	h.Write(seed)
	copy(p.key[:], h.Sum(nil))
	return &p
}

// Quote produces an attestation quote for an initialized enclave.
func (p *Platform) Quote(e *Enclave, reportData []byte) (Quote, error) {
	e.mu.Lock()
	st := e.st
	meas := e.measurement
	signer := e.mrsigner
	e.mu.Unlock()
	if st != stateInitialized {
		return Quote{}, ErrNotInitializedQ
	}
	q := Quote{
		Measurement: meas,
		MRSigner:    signer,
		ReportData:  append([]byte(nil), reportData...),
	}
	copy(q.MAC[:], p.mac(q))
	return q, nil
}

// Verify checks a quote's MAC and that it attests the expected
// measurement.
func (p *Platform) Verify(q Quote, expectedMeasurement [32]byte) error {
	if !hmac.Equal(q.MAC[:], p.mac(q)) {
		return ErrQuoteForged
	}
	if q.Measurement != expectedMeasurement {
		return fmt.Errorf("%w: quote attests %x, expected %x", ErrBadMeasurement, q.Measurement[:8], expectedMeasurement[:8])
	}
	return nil
}

func (p *Platform) mac(q Quote) []byte {
	h := hmac.New(sha256.New, p.key[:])
	h.Write(q.Measurement[:])
	h.Write(q.MRSigner[:])
	h.Write(q.ReportData)
	return h.Sum(nil)
}
