package sgx

import (
	"errors"
	"sync"
	"testing"

	"montsalvat/internal/cycles"
	"montsalvat/internal/simcfg"
)

// sharedSigner avoids regenerating RSA keys in every test.
var (
	signerOnce sync.Once
	signer     *Signer
	signerErr  error
)

func testSigner(t *testing.T) *Signer {
	t.Helper()
	signerOnce.Do(func() { signer, signerErr = NewSigner() })
	if signerErr != nil {
		t.Fatalf("NewSigner: %v", signerErr)
	}
	return signer
}

func initializedEnclave(t *testing.T, image []byte) (*Enclave, *cycles.Clock) {
	t.Helper()
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := Create(simcfg.ForTest(), clk, 4)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := e.AddPages(image); err != nil {
		t.Fatalf("AddPages: %v", err)
	}
	ss, err := testSigner(t).Sign(e.Measurement())
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := e.Init(ss); err != nil {
		t.Fatalf("Init: %v", err)
	}
	return e, clk
}

func TestLifecycleHappyPath(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("trusted image bytes"))
	ran := false
	if err := e.Ecall(1, func() error { ran = true; return nil }); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	if !ran {
		t.Fatal("ecall body did not run")
	}
}

func TestEcallBeforeInitFails(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := Create(simcfg.ForTest(), clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ecall(1, func() error { return nil }); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("err = %v, want ErrNotInitialized", err)
	}
}

func TestInitRejectsTamperedImage(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := Create(simcfg.ForTest(), clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPages([]byte("genuine image")); err != nil {
		t.Fatal(err)
	}
	// Sign a DIFFERENT measurement (the attacker's image).
	var wrong [32]byte
	wrong[0] = 0xde
	ss, err := testSigner(t).Sign(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(ss); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("err = %v, want ErrBadMeasurement", err)
	}
}

func TestInitRejectsForgedSignature(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := Create(simcfg.ForTest(), clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPages([]byte("image")); err != nil {
		t.Fatal(err)
	}
	ss, err := testSigner(t).Sign(e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	ss.Signature[0] ^= 0xff
	if err := e.Init(ss); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestMeasurementDependsOnImage(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	e1, _ := Create(simcfg.ForTest(), clk, 1)
	e2, _ := Create(simcfg.ForTest(), clk, 1)
	if err := e1.AddPages([]byte("image A")); err != nil {
		t.Fatal(err)
	}
	if err := e2.AddPages([]byte("image B")); err != nil {
		t.Fatal(err)
	}
	if e1.Measurement() == e2.Measurement() {
		t.Fatal("different images produced identical measurements")
	}
}

func TestAddPagesAfterInitFails(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("img"))
	if err := e.AddPages([]byte("more")); !errors.Is(err, ErrAlreadyInit) {
		t.Fatalf("err = %v, want ErrAlreadyInit", err)
	}
	ss, _ := testSigner(t).Sign(e.Measurement())
	if err := e.Init(ss); !errors.Is(err, ErrAlreadyInit) {
		t.Fatalf("double init: err = %v, want ErrAlreadyInit", err)
	}
}

func TestDestroyBlocksEverything(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("img"))
	e.Destroy()
	if err := e.Ecall(1, func() error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("Ecall: err = %v, want ErrDestroyed", err)
	}
	if _, err := e.NewMemory(1024); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("NewMemory: err = %v, want ErrDestroyed", err)
	}
}

func TestTransitionCostsCharged(t *testing.T) {
	e, clk := initializedEnclave(t, []byte("img"))
	before := clk.Total()
	if err := e.Ecall(7, func() error {
		return e.Ocall(3, func() error { return nil })
	}); err != nil {
		t.Fatal(err)
	}
	charged := clk.Total() - before
	want := simcfg.EcallCycles + simcfg.OcallCycles
	if charged != int64(want) {
		t.Fatalf("charged %d cycles, want %d", charged, want)
	}
}

func TestSwitchlessModeIsCheaper(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	cfg := simcfg.ForTest()
	cfg.Switchless = true
	e, err := Create(cfg, clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPages([]byte("img")); err != nil {
		t.Fatal(err)
	}
	ss, _ := testSigner(t).Sign(e.Measurement())
	if err := e.Init(ss); err != nil {
		t.Fatal(err)
	}
	before := clk.Total()
	if err := e.Ecall(1, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := clk.Total() - before; got != simcfg.SwitchlessCallCycles {
		t.Fatalf("switchless ecall charged %d, want %d", got, simcfg.SwitchlessCallCycles)
	}
}

func TestOcallOutsideEnclaveRejected(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("img"))
	if err := e.Ocall(1, func() error { return nil }); !errors.Is(err, ErrOcallOutside) {
		t.Fatalf("err = %v, want ErrOcallOutside", err)
	}
}

func TestNestedEcallFromOcall(t *testing.T) {
	// Montsalvat relay chains re-enter the enclave: ecall -> ocall ->
	// ecall must work.
	e, _ := initializedEnclave(t, []byte("img"))
	depth2 := false
	err := e.Ecall(1, func() error {
		return e.Ocall(2, func() error {
			return e.Ecall(3, func() error { depth2 = true; return nil })
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !depth2 {
		t.Fatal("nested ecall did not run")
	}
	s := e.Stats()
	if s.Ecalls != 2 || s.Ocalls != 1 {
		t.Fatalf("stats = %d ecalls %d ocalls, want 2/1", s.Ecalls, s.Ocalls)
	}
	if s.EcallsByID[1] != 1 || s.EcallsByID[3] != 1 || s.OcallsByID[2] != 1 {
		t.Fatalf("per-id stats = %v / %v", s.EcallsByID, s.OcallsByID)
	}
}

func TestTCSLimitsConcurrency(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("img"))
	// 4 TCS slots: run 8 concurrent ecalls that each record peak
	// concurrency.
	var (
		mu      sync.Mutex
		cur     int
		peak    int
		barrier = make(chan struct{})
	)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-barrier
			_ = e.Ecall(1, func() error {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				// Hold the slot briefly.
				for i := 0; i < 1000; i++ {
					_ = i
				}
				mu.Lock()
				cur--
				mu.Unlock()
				return nil
			})
		}()
	}
	close(barrier)
	wg.Wait()
	if peak > 4 {
		t.Fatalf("peak concurrent enclave threads = %d, want <= 4 (TCS limit)", peak)
	}
}

func TestEnclaveHeapBound(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	cfg := simcfg.ForTest()
	cfg.EnclaveHeapBytes = 1 << 20
	e, err := Create(cfg, clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewMemory(1 << 19); err != nil {
		t.Fatalf("first region: %v", err)
	}
	if _, err := e.NewMemory(1 << 19); err != nil {
		t.Fatalf("second region: %v", err)
	}
	if _, err := e.NewMemory(1); !errors.Is(err, ErrHeapExhausted) {
		t.Fatalf("err = %v, want ErrHeapExhausted", err)
	}
	if got := e.Stats().HeapBytesInUse; got != 1<<20 {
		t.Fatalf("HeapBytesInUse = %d, want %d", got, 1<<20)
	}
}

func TestEnclaveMemoryIsEncrypted(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("img"))
	m, err := e.NewMemory(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, []byte("plaintext secret")); err != nil {
		t.Fatal(err)
	}
	if e.Stats().MEE.LinesEncrypted == 0 {
		t.Fatal("write to enclave memory did not use the MEE")
	}
}

func TestQuoteVerification(t *testing.T) {
	e, _ := initializedEnclave(t, []byte("attested image"))
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Quote(e, []byte("nonce-123"))
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if err := p.Verify(q, e.Measurement()); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// Forged report data fails.
	forged := q
	forged.ReportData = []byte("evil")
	if err := p.Verify(forged, e.Measurement()); !errors.Is(err, ErrQuoteForged) {
		t.Fatalf("forged quote: err = %v, want ErrQuoteForged", err)
	}

	// Wrong expected measurement fails.
	var other [32]byte
	if err := p.Verify(q, other); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("wrong measurement: err = %v, want ErrBadMeasurement", err)
	}

	// A different platform cannot verify (different attestation key).
	p2, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Verify(q, e.Measurement()); !errors.Is(err, ErrQuoteForged) {
		t.Fatalf("cross-platform quote: err = %v, want ErrQuoteForged", err)
	}
}

func TestQuoteRequiresInit(t *testing.T) {
	clk := cycles.New(simcfg.CPUHz, false)
	e, err := Create(simcfg.ForTest(), clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Quote(e, nil); !errors.Is(err, ErrNotInitializedQ) {
		t.Fatalf("err = %v, want ErrNotInitializedQ", err)
	}
}
